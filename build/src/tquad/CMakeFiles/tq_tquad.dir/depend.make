# Empty dependencies file for tq_tquad.
# This may be replaced when dependencies are built.
