
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tquad/bandwidth.cpp" "src/tquad/CMakeFiles/tq_tquad.dir/bandwidth.cpp.o" "gcc" "src/tquad/CMakeFiles/tq_tquad.dir/bandwidth.cpp.o.d"
  "/root/repo/src/tquad/callstack.cpp" "src/tquad/CMakeFiles/tq_tquad.dir/callstack.cpp.o" "gcc" "src/tquad/CMakeFiles/tq_tquad.dir/callstack.cpp.o.d"
  "/root/repo/src/tquad/consensus.cpp" "src/tquad/CMakeFiles/tq_tquad.dir/consensus.cpp.o" "gcc" "src/tquad/CMakeFiles/tq_tquad.dir/consensus.cpp.o.d"
  "/root/repo/src/tquad/phase.cpp" "src/tquad/CMakeFiles/tq_tquad.dir/phase.cpp.o" "gcc" "src/tquad/CMakeFiles/tq_tquad.dir/phase.cpp.o.d"
  "/root/repo/src/tquad/report.cpp" "src/tquad/CMakeFiles/tq_tquad.dir/report.cpp.o" "gcc" "src/tquad/CMakeFiles/tq_tquad.dir/report.cpp.o.d"
  "/root/repo/src/tquad/tquad_tool.cpp" "src/tquad/CMakeFiles/tq_tquad.dir/tquad_tool.cpp.o" "gcc" "src/tquad/CMakeFiles/tq_tquad.dir/tquad_tool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minipin/CMakeFiles/tq_minipin.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tq_support.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/tq_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/tq_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
