file(REMOVE_RECURSE
  "libtq_tquad.a"
)
