file(REMOVE_RECURSE
  "CMakeFiles/tq_tquad.dir/bandwidth.cpp.o"
  "CMakeFiles/tq_tquad.dir/bandwidth.cpp.o.d"
  "CMakeFiles/tq_tquad.dir/callstack.cpp.o"
  "CMakeFiles/tq_tquad.dir/callstack.cpp.o.d"
  "CMakeFiles/tq_tquad.dir/consensus.cpp.o"
  "CMakeFiles/tq_tquad.dir/consensus.cpp.o.d"
  "CMakeFiles/tq_tquad.dir/phase.cpp.o"
  "CMakeFiles/tq_tquad.dir/phase.cpp.o.d"
  "CMakeFiles/tq_tquad.dir/report.cpp.o"
  "CMakeFiles/tq_tquad.dir/report.cpp.o.d"
  "CMakeFiles/tq_tquad.dir/tquad_tool.cpp.o"
  "CMakeFiles/tq_tquad.dir/tquad_tool.cpp.o.d"
  "libtq_tquad.a"
  "libtq_tquad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tq_tquad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
