file(REMOVE_RECURSE
  "CMakeFiles/tq_workloads.dir/workloads.cpp.o"
  "CMakeFiles/tq_workloads.dir/workloads.cpp.o.d"
  "libtq_workloads.a"
  "libtq_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tq_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
