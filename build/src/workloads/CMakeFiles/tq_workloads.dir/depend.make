# Empty dependencies file for tq_workloads.
# This may be replaced when dependencies are built.
