file(REMOVE_RECURSE
  "libtq_workloads.a"
)
