
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quad/buffer_report.cpp" "src/quad/CMakeFiles/tq_quad.dir/buffer_report.cpp.o" "gcc" "src/quad/CMakeFiles/tq_quad.dir/buffer_report.cpp.o.d"
  "/root/repo/src/quad/instrumented_profile.cpp" "src/quad/CMakeFiles/tq_quad.dir/instrumented_profile.cpp.o" "gcc" "src/quad/CMakeFiles/tq_quad.dir/instrumented_profile.cpp.o.d"
  "/root/repo/src/quad/quad_tool.cpp" "src/quad/CMakeFiles/tq_quad.dir/quad_tool.cpp.o" "gcc" "src/quad/CMakeFiles/tq_quad.dir/quad_tool.cpp.o.d"
  "/root/repo/src/quad/shadow.cpp" "src/quad/CMakeFiles/tq_quad.dir/shadow.cpp.o" "gcc" "src/quad/CMakeFiles/tq_quad.dir/shadow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minipin/CMakeFiles/tq_minipin.dir/DependInfo.cmake"
  "/root/repo/build/src/tquad/CMakeFiles/tq_tquad.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tq_support.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/tq_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/tq_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
