file(REMOVE_RECURSE
  "CMakeFiles/tq_quad.dir/buffer_report.cpp.o"
  "CMakeFiles/tq_quad.dir/buffer_report.cpp.o.d"
  "CMakeFiles/tq_quad.dir/instrumented_profile.cpp.o"
  "CMakeFiles/tq_quad.dir/instrumented_profile.cpp.o.d"
  "CMakeFiles/tq_quad.dir/quad_tool.cpp.o"
  "CMakeFiles/tq_quad.dir/quad_tool.cpp.o.d"
  "CMakeFiles/tq_quad.dir/shadow.cpp.o"
  "CMakeFiles/tq_quad.dir/shadow.cpp.o.d"
  "libtq_quad.a"
  "libtq_quad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tq_quad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
