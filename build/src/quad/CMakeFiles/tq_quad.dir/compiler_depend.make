# Empty compiler generated dependencies file for tq_quad.
# This may be replaced when dependencies are built.
