file(REMOVE_RECURSE
  "libtq_quad.a"
)
