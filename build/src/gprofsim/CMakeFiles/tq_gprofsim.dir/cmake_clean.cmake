file(REMOVE_RECURSE
  "CMakeFiles/tq_gprofsim.dir/gprof_tool.cpp.o"
  "CMakeFiles/tq_gprofsim.dir/gprof_tool.cpp.o.d"
  "libtq_gprofsim.a"
  "libtq_gprofsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tq_gprofsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
