# Empty compiler generated dependencies file for tq_gprofsim.
# This may be replaced when dependencies are built.
