file(REMOVE_RECURSE
  "libtq_gprofsim.a"
)
