
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wfs/golden.cpp" "src/wfs/CMakeFiles/tq_wfs.dir/golden.cpp.o" "gcc" "src/wfs/CMakeFiles/tq_wfs.dir/golden.cpp.o.d"
  "/root/repo/src/wfs/runner.cpp" "src/wfs/CMakeFiles/tq_wfs.dir/runner.cpp.o" "gcc" "src/wfs/CMakeFiles/tq_wfs.dir/runner.cpp.o.d"
  "/root/repo/src/wfs/wav.cpp" "src/wfs/CMakeFiles/tq_wfs.dir/wav.cpp.o" "gcc" "src/wfs/CMakeFiles/tq_wfs.dir/wav.cpp.o.d"
  "/root/repo/src/wfs/wfs_program.cpp" "src/wfs/CMakeFiles/tq_wfs.dir/wfs_program.cpp.o" "gcc" "src/wfs/CMakeFiles/tq_wfs.dir/wfs_program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gasm/CMakeFiles/tq_gasm.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/tq_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tq_support.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/tq_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
