file(REMOVE_RECURSE
  "libtq_wfs.a"
)
