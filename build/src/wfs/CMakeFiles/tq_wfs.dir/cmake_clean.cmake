file(REMOVE_RECURSE
  "CMakeFiles/tq_wfs.dir/golden.cpp.o"
  "CMakeFiles/tq_wfs.dir/golden.cpp.o.d"
  "CMakeFiles/tq_wfs.dir/runner.cpp.o"
  "CMakeFiles/tq_wfs.dir/runner.cpp.o.d"
  "CMakeFiles/tq_wfs.dir/wav.cpp.o"
  "CMakeFiles/tq_wfs.dir/wav.cpp.o.d"
  "CMakeFiles/tq_wfs.dir/wfs_program.cpp.o"
  "CMakeFiles/tq_wfs.dir/wfs_program.cpp.o.d"
  "libtq_wfs.a"
  "libtq_wfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tq_wfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
