# Empty dependencies file for tq_wfs.
# This may be replaced when dependencies are built.
