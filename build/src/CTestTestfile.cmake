# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("isa")
subdirs("vm")
subdirs("gasm")
subdirs("minipin")
subdirs("trace")
subdirs("quad")
subdirs("cluster")
subdirs("tquad")
subdirs("gprofsim")
subdirs("wfs")
subdirs("workloads")
subdirs("dctc")
