file(REMOVE_RECURSE
  "CMakeFiles/tq_cluster.dir/cluster.cpp.o"
  "CMakeFiles/tq_cluster.dir/cluster.cpp.o.d"
  "libtq_cluster.a"
  "libtq_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tq_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
