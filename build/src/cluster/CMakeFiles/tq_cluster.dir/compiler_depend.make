# Empty compiler generated dependencies file for tq_cluster.
# This may be replaced when dependencies are built.
