file(REMOVE_RECURSE
  "libtq_cluster.a"
)
