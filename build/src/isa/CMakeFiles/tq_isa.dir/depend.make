# Empty dependencies file for tq_isa.
# This may be replaced when dependencies are built.
