file(REMOVE_RECURSE
  "CMakeFiles/tq_isa.dir/isa.cpp.o"
  "CMakeFiles/tq_isa.dir/isa.cpp.o.d"
  "libtq_isa.a"
  "libtq_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tq_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
