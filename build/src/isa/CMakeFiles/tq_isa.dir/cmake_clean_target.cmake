file(REMOVE_RECURSE
  "libtq_isa.a"
)
