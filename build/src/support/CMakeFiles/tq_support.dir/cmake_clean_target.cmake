file(REMOVE_RECURSE
  "libtq_support.a"
)
