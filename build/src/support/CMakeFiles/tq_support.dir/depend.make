# Empty dependencies file for tq_support.
# This may be replaced when dependencies are built.
