file(REMOVE_RECURSE
  "CMakeFiles/tq_support.dir/address_set.cpp.o"
  "CMakeFiles/tq_support.dir/address_set.cpp.o.d"
  "CMakeFiles/tq_support.dir/ascii_chart.cpp.o"
  "CMakeFiles/tq_support.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/tq_support.dir/cli.cpp.o"
  "CMakeFiles/tq_support.dir/cli.cpp.o.d"
  "CMakeFiles/tq_support.dir/paged_memory.cpp.o"
  "CMakeFiles/tq_support.dir/paged_memory.cpp.o.d"
  "CMakeFiles/tq_support.dir/stats.cpp.o"
  "CMakeFiles/tq_support.dir/stats.cpp.o.d"
  "CMakeFiles/tq_support.dir/table.cpp.o"
  "CMakeFiles/tq_support.dir/table.cpp.o.d"
  "CMakeFiles/tq_support.dir/thread_pool.cpp.o"
  "CMakeFiles/tq_support.dir/thread_pool.cpp.o.d"
  "libtq_support.a"
  "libtq_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tq_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
