
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/address_set.cpp" "src/support/CMakeFiles/tq_support.dir/address_set.cpp.o" "gcc" "src/support/CMakeFiles/tq_support.dir/address_set.cpp.o.d"
  "/root/repo/src/support/ascii_chart.cpp" "src/support/CMakeFiles/tq_support.dir/ascii_chart.cpp.o" "gcc" "src/support/CMakeFiles/tq_support.dir/ascii_chart.cpp.o.d"
  "/root/repo/src/support/cli.cpp" "src/support/CMakeFiles/tq_support.dir/cli.cpp.o" "gcc" "src/support/CMakeFiles/tq_support.dir/cli.cpp.o.d"
  "/root/repo/src/support/paged_memory.cpp" "src/support/CMakeFiles/tq_support.dir/paged_memory.cpp.o" "gcc" "src/support/CMakeFiles/tq_support.dir/paged_memory.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/support/CMakeFiles/tq_support.dir/stats.cpp.o" "gcc" "src/support/CMakeFiles/tq_support.dir/stats.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/support/CMakeFiles/tq_support.dir/table.cpp.o" "gcc" "src/support/CMakeFiles/tq_support.dir/table.cpp.o.d"
  "/root/repo/src/support/thread_pool.cpp" "src/support/CMakeFiles/tq_support.dir/thread_pool.cpp.o" "gcc" "src/support/CMakeFiles/tq_support.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
