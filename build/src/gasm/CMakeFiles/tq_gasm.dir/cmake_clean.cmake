file(REMOVE_RECURSE
  "CMakeFiles/tq_gasm.dir/asm_parser.cpp.o"
  "CMakeFiles/tq_gasm.dir/asm_parser.cpp.o.d"
  "CMakeFiles/tq_gasm.dir/builder.cpp.o"
  "CMakeFiles/tq_gasm.dir/builder.cpp.o.d"
  "libtq_gasm.a"
  "libtq_gasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tq_gasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
