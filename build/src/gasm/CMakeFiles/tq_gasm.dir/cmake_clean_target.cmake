file(REMOVE_RECURSE
  "libtq_gasm.a"
)
