# Empty dependencies file for tq_gasm.
# This may be replaced when dependencies are built.
