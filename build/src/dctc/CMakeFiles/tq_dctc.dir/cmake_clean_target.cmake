file(REMOVE_RECURSE
  "libtq_dctc.a"
)
