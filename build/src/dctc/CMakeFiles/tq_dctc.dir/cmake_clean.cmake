file(REMOVE_RECURSE
  "CMakeFiles/tq_dctc.dir/dctc.cpp.o"
  "CMakeFiles/tq_dctc.dir/dctc.cpp.o.d"
  "libtq_dctc.a"
  "libtq_dctc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tq_dctc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
