# Empty dependencies file for tq_dctc.
# This may be replaced when dependencies are built.
