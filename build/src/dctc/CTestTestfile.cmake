# CMake generated Testfile for 
# Source directory: /root/repo/src/dctc
# Build directory: /root/repo/build/src/dctc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
