file(REMOVE_RECURSE
  "libtq_minipin.a"
)
