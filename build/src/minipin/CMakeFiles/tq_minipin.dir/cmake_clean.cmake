file(REMOVE_RECURSE
  "CMakeFiles/tq_minipin.dir/minipin.cpp.o"
  "CMakeFiles/tq_minipin.dir/minipin.cpp.o.d"
  "libtq_minipin.a"
  "libtq_minipin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tq_minipin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
