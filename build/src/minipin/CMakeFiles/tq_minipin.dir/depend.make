# Empty dependencies file for tq_minipin.
# This may be replaced when dependencies are built.
