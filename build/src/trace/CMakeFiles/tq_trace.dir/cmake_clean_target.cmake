file(REMOVE_RECURSE
  "libtq_trace.a"
)
