file(REMOVE_RECURSE
  "CMakeFiles/tq_trace.dir/trace.cpp.o"
  "CMakeFiles/tq_trace.dir/trace.cpp.o.d"
  "libtq_trace.a"
  "libtq_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tq_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
