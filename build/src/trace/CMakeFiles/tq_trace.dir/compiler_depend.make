# Empty compiler generated dependencies file for tq_trace.
# This may be replaced when dependencies are built.
