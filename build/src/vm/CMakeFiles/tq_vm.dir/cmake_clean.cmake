file(REMOVE_RECURSE
  "CMakeFiles/tq_vm.dir/host_env.cpp.o"
  "CMakeFiles/tq_vm.dir/host_env.cpp.o.d"
  "CMakeFiles/tq_vm.dir/machine.cpp.o"
  "CMakeFiles/tq_vm.dir/machine.cpp.o.d"
  "CMakeFiles/tq_vm.dir/program.cpp.o"
  "CMakeFiles/tq_vm.dir/program.cpp.o.d"
  "libtq_vm.a"
  "libtq_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tq_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
