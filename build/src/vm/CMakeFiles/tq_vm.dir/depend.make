# Empty dependencies file for tq_vm.
# This may be replaced when dependencies are built.
