file(REMOVE_RECURSE
  "libtq_vm.a"
)
