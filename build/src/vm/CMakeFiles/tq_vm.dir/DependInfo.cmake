
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/host_env.cpp" "src/vm/CMakeFiles/tq_vm.dir/host_env.cpp.o" "gcc" "src/vm/CMakeFiles/tq_vm.dir/host_env.cpp.o.d"
  "/root/repo/src/vm/machine.cpp" "src/vm/CMakeFiles/tq_vm.dir/machine.cpp.o" "gcc" "src/vm/CMakeFiles/tq_vm.dir/machine.cpp.o.d"
  "/root/repo/src/vm/program.cpp" "src/vm/CMakeFiles/tq_vm.dir/program.cpp.o" "gcc" "src/vm/CMakeFiles/tq_vm.dir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/tq_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
