# Empty dependencies file for bench_ablation_shadow.
# This may be replaced when dependencies are built.
