# Empty dependencies file for bench_table4_phases.
# This may be replaced when dependencies are built.
