# Empty dependencies file for bench_workload_signatures.
# This may be replaced when dependencies are built.
