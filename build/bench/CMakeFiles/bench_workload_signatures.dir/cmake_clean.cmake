file(REMOVE_RECURSE
  "CMakeFiles/bench_workload_signatures.dir/bench_workload_signatures.cpp.o"
  "CMakeFiles/bench_workload_signatures.dir/bench_workload_signatures.cpp.o.d"
  "bench_workload_signatures"
  "bench_workload_signatures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workload_signatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
