# Empty dependencies file for bench_table3_instrumented_profile.
# This may be replaced when dependencies are built.
