# Empty compiler generated dependencies file for bench_ablation_slices.
# This may be replaced when dependencies are built.
