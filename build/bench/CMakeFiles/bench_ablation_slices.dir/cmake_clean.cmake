file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_slices.dir/bench_ablation_slices.cpp.o"
  "CMakeFiles/bench_ablation_slices.dir/bench_ablation_slices.cpp.o.d"
  "bench_ablation_slices"
  "bench_ablation_slices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_slices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
