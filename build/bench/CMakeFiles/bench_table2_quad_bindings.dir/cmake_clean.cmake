file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_quad_bindings.dir/bench_table2_quad_bindings.cpp.o"
  "CMakeFiles/bench_table2_quad_bindings.dir/bench_table2_quad_bindings.cpp.o.d"
  "bench_table2_quad_bindings"
  "bench_table2_quad_bindings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_quad_bindings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
