# Empty compiler generated dependencies file for bench_table2_quad_bindings.
# This may be replaced when dependencies are built.
