
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_quad_bindings.cpp" "bench/CMakeFiles/bench_table2_quad_bindings.dir/bench_table2_quad_bindings.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_quad_bindings.dir/bench_table2_quad_bindings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wfs/CMakeFiles/tq_wfs.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/tq_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tq_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tq_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/quad/CMakeFiles/tq_quad.dir/DependInfo.cmake"
  "/root/repo/build/src/tquad/CMakeFiles/tq_tquad.dir/DependInfo.cmake"
  "/root/repo/build/src/gprofsim/CMakeFiles/tq_gprofsim.dir/DependInfo.cmake"
  "/root/repo/build/src/minipin/CMakeFiles/tq_minipin.dir/DependInfo.cmake"
  "/root/repo/build/src/gasm/CMakeFiles/tq_gasm.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/tq_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/tq_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
