.func libc_read @library
0:	sys 2
1:	ret

.func libc_write @library
0:	sys 3
1:	ret

.func libc_seek @library
0:	sys 4
1:	ret

.func ldint
0:	movi r8, 268435456
1:	movi r9, 0
2:	sltsi r0, r9, 64
3:	brz r0, @12
4:	movi r0, 0
5:	movi r10, 1
6:	shl r10, r10, r9
7:	shli r11, r9, 3
8:	add r11, r11, r8
9:	store8 [r11+0], r10
10:	addi r9, r9, 1
11:	jmp @2
12:	movi r0, 0
13:	ret

.func bitrev
0:	addi sp, sp, -16
1:	mov r5, r1
2:	movi r3, 0
3:	movi r6, 268435456
4:	load8 r7, [r6+0]
5:	and r7, r5, r7
6:	shli r3, r3, 1
7:	or r3, r3, r7
8:	shrli r5, r5, 1
9:	store8 [sp+8], r3
10:	load8 r7, [r6+0]
11:	and r7, r5, r7
12:	shli r3, r3, 1
13:	or r3, r3, r7
14:	shrli r5, r5, 1
15:	store8 [sp+8], r3
16:	load8 r7, [r6+0]
17:	and r7, r5, r7
18:	shli r3, r3, 1
19:	or r3, r3, r7
20:	shrli r5, r5, 1
21:	store8 [sp+8], r3
22:	load8 r7, [r6+0]
23:	and r7, r5, r7
24:	shli r3, r3, 1
25:	or r3, r3, r7
26:	shrli r5, r5, 1
27:	store8 [sp+8], r3
28:	load8 r7, [r6+0]
29:	and r7, r5, r7
30:	shli r3, r3, 1
31:	or r3, r3, r7
32:	shrli r5, r5, 1
33:	store8 [sp+8], r3
34:	load8 r7, [r6+0]
35:	and r7, r5, r7
36:	shli r3, r3, 1
37:	or r3, r3, r7
38:	shrli r5, r5, 1
39:	store8 [sp+8], r3
40:	load8 r7, [r6+0]
41:	and r7, r5, r7
42:	shli r3, r3, 1
43:	or r3, r3, r7
44:	shrli r5, r5, 1
45:	store8 [sp+8], r3
46:	load8 r1, [sp+8]
47:	addi sp, sp, 16
48:	ret

.func perm
0:	addi sp, sp, -32
1:	store8 [sp+0], r1
2:	store8 [sp+8], r2
3:	store8 [sp+16], r3
4:	movi r8, 0
5:	load8 r9, [sp+8]
6:	slts r0, r8, r9
7:	brz r0, @28
8:	mov r1, r8
9:	load8 r2, [sp+16]
10:	call fn#4
11:	slts r0, r8, r1
12:	brz r0, @26
13:	load8 r10, [sp+0]
14:	shli r11, r8, 4
15:	add r11, r11, r10
16:	shli r12, r1, 4
17:	add r12, r12, r10
18:	fload f8, [r11+0]
19:	fload f9, [r12+0]
20:	fstore [r11+0], f9
21:	fstore [r12+0], f8
22:	fload f8, [r11+8]
23:	fload f9, [r12+8]
24:	fstore [r11+8], f9
25:	fstore [r12+8], f8
26:	addi r8, r8, 1
27:	jmp @5
28:	addi sp, sp, 32
29:	ret

.func fft1d
0:	addi sp, sp, -64
1:	store8 [sp+0], r1
2:	store8 [sp+8], r2
3:	store8 [sp+16], r3
4:	store8 [sp+24], r4
5:	mov r2, r3
6:	mov r3, r4
7:	call fn#5
8:	movi r14, 2
9:	load8 r15, [sp+16]
10:	slts r0, r15, r14
11:	brnz r0, @73
12:	load8 r16, [sp+8]
13:	i2f f10, r16
14:	fmovi f11, 6.28319
15:	fmul f10, f10, f11
16:	i2f f11, r14
17:	fdiv f10, f10, f11
18:	fcos f12, f10
19:	fsin f13, f10
20:	fstore [sp+32], f12
21:	fstore [sp+40], f13
22:	movi r16, 0
23:	slts r0, r16, r15
24:	brz r0, @71
25:	fmovi f14, 1
26:	fmovi f15, 0
27:	movi r17, 0
28:	shrli r18, r14, 1
29:	slts r0, r17, r18
30:	brz r0, @69
31:	add r19, r16, r17
32:	shli r19, r19, 4
33:	load8 r2, [sp+0]
34:	add r19, r19, r2
35:	add r3, r16, r17
36:	add r3, r3, r18
37:	shli r3, r3, 4
38:	add r3, r3, r2
39:	fload f1, [r19+0]
40:	fload f2, [r19+8]
41:	fload f3, [r3+0]
42:	fload f4, [r3+8]
43:	fmul f5, f3, f14
44:	fmul f6, f4, f15
45:	fsub f5, f5, f6
46:	fmul f6, f3, f15
47:	fmul f7, f4, f14
48:	fadd f6, f6, f7
49:	fadd f7, f1, f5
50:	fstore [r19+0], f7
51:	fadd f7, f2, f6
52:	fstore [r19+8], f7
53:	fsub f7, f1, f5
54:	fstore [r3+0], f7
55:	fsub f7, f2, f6
56:	fstore [r3+8], f7
57:	fload f12, [sp+32]
58:	fload f13, [sp+40]
59:	fmul f5, f14, f12
60:	fmul f6, f15, f13
61:	fsub f5, f5, f6
62:	fmul f6, f14, f13
63:	fmul f7, f15, f12
64:	fadd f6, f6, f7
65:	fmov f14, f5
66:	fmov f15, f6
67:	addi r17, r17, 1
68:	jmp @29
69:	add r16, r16, r14
70:	jmp @23
71:	shli r14, r14, 1
72:	jmp @9
73:	load8 r16, [sp+8]
74:	sltsi r0, r16, 0
75:	brz r0, @92
76:	load8 r15, [sp+16]
77:	i2f f10, r15
78:	fmovi f11, 1
79:	fdiv f10, f11, f10
80:	load8 r2, [sp+0]
81:	shli r17, r15, 1
82:	movi r16, 0
83:	slts r0, r16, r17
84:	brz r0, @92
85:	shli r3, r16, 3
86:	add r3, r3, r2
87:	fload f11, [r3+0]
88:	fmul f11, f11, f10
89:	fstore [r3+0], f11
90:	addi r16, r16, 1
91:	jmp @83
92:	addi sp, sp, 64
93:	ret

.func cmult
0:	addi sp, sp, -16
1:	store8 [sp+0], r1
2:	fload f1, [r1+0]
3:	fload f2, [r1+8]
4:	fload f3, [r2+0]
5:	fload f4, [r2+8]
6:	fmul f5, f1, f3
7:	fmul f6, f2, f4
8:	fsub f5, f5, f6
9:	fmul f6, f1, f4
10:	fmul f7, f2, f3
11:	fadd f6, f6, f7
12:	load8 r4, [sp+0]
13:	fstore [r3+0], f5
14:	fstore [r3+8], f6
15:	addi sp, sp, 16
16:	ret

.func cadd
0:	addi sp, sp, -16
1:	store8 [sp+0], r1
2:	fload f1, [r1+0]
3:	fload f2, [r1+8]
4:	fload f3, [r2+0]
5:	fload f4, [r2+8]
6:	fadd f5, f1, f3
7:	fadd f6, f2, f4
8:	load8 r4, [sp+0]
9:	fstore [r3+0], f5
10:	fstore [r3+8], f6
11:	addi sp, sp, 16
12:	ret

.func zeroRealVec
0:	addi sp, sp, -16
1:	movi r3, 0
2:	store8 [sp+0], r3
3:	fmovi f1, 0
4:	load8 r3, [sp+0]
5:	slts r0, r3, r2
6:	brz r0, @13
7:	shli r4, r3, 2
8:	add r4, r4, r1
9:	fstore4 [r4+0], f1
10:	addi r3, r3, 1
11:	store8 [sp+0], r3
12:	jmp @4
13:	addi sp, sp, 16
14:	ret

.func zeroCplxVec
0:	addi sp, sp, -16
1:	movi r3, 0
2:	store8 [sp+0], r3
3:	load8 r3, [sp+0]
4:	slts r0, r3, r2
5:	brz r0, @14
6:	shli r4, r3, 4
7:	add r4, r4, r1
8:	fmovi f1, 0
9:	fstore [r4+0], f1
10:	fstore [r4+8], f1
11:	addi r3, r3, 1
12:	store8 [sp+0], r3
13:	jmp @3
14:	addi sp, sp, 16
15:	ret

.func r2c
0:	movi r8, 0
1:	slts r0, r8, r3
2:	brz r0, @14
3:	movi r0, 0
4:	shli r9, r8, 3
5:	add r9, r9, r1
6:	fload f8, [r9+0]
7:	shli r10, r8, 4
8:	add r10, r10, r2
9:	fstore [r10+0], f8
10:	fmovi f9, 0
11:	fstore [r10+8], f9
12:	addi r8, r8, 1
13:	jmp @1
14:	movi r0, 0
15:	ret

.func c2r
0:	sub r8, r4, r3
1:	movi r9, 0
2:	slts r0, r9, r3
3:	brz r0, @14
4:	movi r0, 0
5:	add r10, r8, r9
6:	shli r10, r10, 4
7:	add r10, r10, r1
8:	fload f8, [r10+0]
9:	shli r11, r9, 3
10:	add r11, r11, r2
11:	fstore [r11+0], f8
12:	addi r9, r9, 1
13:	jmp @2
14:	movi r0, 0
15:	ret

.func vsmult2d
0:	fload f2, [r2+0]
1:	fmul f2, f2, f1
2:	fstore [r1+0], f2
3:	fload f2, [r2+8]
4:	fmul f2, f2, f1
5:	fstore [r1+8], f2
6:	ret

.func calculateGainPQ
0:	addi sp, sp, -16
1:	store8 [sp+0], r1
2:	movi r14, 268473472
3:	fload f10, [r14+0]
4:	fload f11, [r14+8]
5:	movi r15, 268473552
6:	shli r16, r1, 3
7:	add r16, r16, r15
8:	fload f12, [r16+0]
9:	fsub f10, f10, f12
10:	fmul f12, f10, f10
11:	fmul f13, f11, f11
12:	fadd f12, f12, f13
13:	fsqrt f12, f12
14:	movi r14, 268473520
15:	fstore [r14+0], f10
16:	fstore [r14+8], f11
17:	fmovi f13, 1
18:	fdiv f1, f13, f12
19:	fstore [sp+8], f12
20:	movi r1, 268473536
21:	movi r2, 268473520
22:	call fn#13
23:	fload f12, [sp+8]
24:	fmovi f13, 0.5
25:	fmax f13, f12, f13
26:	fmovi f14, 0.25
27:	fdiv f14, f14, f13
28:	load8 r14, [sp+0]
29:	movi r15, 268473344
30:	shli r16, r14, 3
31:	add r16, r16, r15
32:	fstore [r16+0], f14
33:	fmovi f13, 139.942
34:	fmul f13, f12, f13
35:	f2i r17, f13
36:	movi r18, 959
37:	slts r0, r18, r17
38:	mov r17, r18  ?r0
39:	movi r18, 0
40:	slts r0, r17, r18
41:	mov r17, r18  ?r0
42:	movi r15, 268473408
43:	shli r16, r14, 3
44:	add r16, r16, r15
45:	store8 [r16+0], r17
46:	addi sp, sp, 16
47:	ret

.func PrimarySource_deriveTP
0:	fmovi f1, 0.00133333
1:	movi r1, 268473504
2:	movi r2, 268473488
3:	call fn#13
4:	movi r14, 268473472
5:	movi r15, 268473504
6:	fload f10, [r14+0]
7:	fload f11, [r15+0]
8:	fadd f10, f10, f11
9:	fstore [r14+0], f10
10:	fload f10, [r14+8]
11:	fload f11, [r15+8]
12:	fadd f10, f10, f11
13:	fstore [r14+8], f10
14:	ret

.func AudioIo_getFrames
0:	muli r20, r1, 256
1:	movi r21, 268471808
2:	add r20, r20, r21
3:	movi r21, 268448256
4:	movi r22, 0
5:	sltsi r0, r22, 64
6:	brz r0, @16
7:	movi r0, 0
8:	shli r23, r22, 2
9:	add r23, r23, r20
10:	fload4 f16, [r23+0]
11:	shli r24, r22, 3
12:	add r24, r24, r21
13:	fstore [r24+0], f16
14:	addi r22, r22, 1
15:	jmp @5
16:	movi r0, 0
17:	ret

.func Filter_process_pre_
0:	movi r20, 268447232
1:	movi r21, 0
2:	sltsi r0, r21, 64
3:	brz r0, @11
4:	movi r0, 0
5:	shli r22, r21, 3
6:	add r22, r22, r20
7:	fload f16, [r22+512]
8:	fstore [r22+0], f16
9:	addi r21, r21, 1
10:	jmp @2
11:	movi r0, 0
12:	movi r23, 268448256
13:	movi r21, 0
14:	sltsi r0, r21, 64
15:	brz r0, @24
16:	movi r0, 0
17:	shli r22, r21, 3
18:	add r24, r22, r23
19:	fload f16, [r24+0]
20:	add r24, r22, r20
21:	fstore [r24+512], f16
22:	addi r21, r21, 1
23:	jmp @14
24:	movi r0, 0
25:	ret

.func Filter_process
0:	addi sp, sp, -32
1:	movi r1, 268441088
2:	movi r2, 128
3:	call fn#10
4:	movi r1, 268447232
5:	movi r2, 268441088
6:	movi r3, 128
7:	call fn#11
8:	movi r1, 268441088
9:	movi r2, 1
10:	movi r3, 128
11:	movi r4, 7
12:	call fn#6
13:	movi r20, 0
14:	store8 [sp+0], r20
15:	load8 r20, [sp+0]
16:	sltsi r0, r20, 128
17:	brz r0, @39
18:	shli r21, r20, 4
19:	movi r1, 268441088
20:	add r1, r1, r21
21:	movi r2, 268436992
22:	add r2, r2, r21
23:	movi r3, 268443136
24:	add r3, r3, r21
25:	call fn#7
26:	load8 r20, [sp+0]
27:	shli r21, r20, 4
28:	movi r1, 268443136
29:	add r1, r1, r21
30:	movi r2, 268439040
31:	add r2, r2, r21
32:	movi r3, 268445184
33:	add r3, r3, r21
34:	call fn#8
35:	load8 r20, [sp+0]
36:	addi r20, r20, 1
37:	store8 [sp+0], r20
38:	jmp @15
39:	movi r1, 268445184
40:	movi r2, -1
41:	movi r3, 128
42:	movi r4, 7
43:	call fn#6
44:	movi r1, 268445184
45:	movi r2, 268448768
46:	movi r3, 64
47:	movi r4, 128
48:	call fn#12
49:	addi sp, sp, 32
50:	ret

.func DelayLine_processChunk
0:	addi sp, sp, -32
1:	muli r20, r1, 64
2:	store8 [sp+0], r20
3:	movi r21, 268449280
4:	movi r22, 268448768
5:	movi r23, 0
6:	sltsi r0, r23, 64
7:	brz r0, @19
8:	movi r0, 0
9:	add r24, r20, r23
10:	andi r24, r24, 1023
11:	shli r24, r24, 3
12:	add r24, r24, r21
13:	shli r25, r23, 3
14:	add r25, r25, r22
15:	fload f16, [r25+0]
16:	fstore [r24+0], f16
17:	addi r23, r23, 1
18:	jmp @6
19:	movi r0, 0
20:	movi r26, 0
21:	sltsi r0, r26, 8
22:	brz r0, @61
23:	movi r27, 268457472
24:	muli r1, r26, 256
25:	add r1, r1, r27
26:	movi r2, 64
27:	call fn#9
28:	movi r2, 268473344
29:	shli r3, r26, 3
30:	add r2, r2, r3
31:	fload f17, [r2+0]
32:	movi r2, 268473408
33:	shli r3, r26, 3
34:	add r2, r2, r3
35:	load8 r24, [r2+0]
36:	load8 r20, [sp+0]
37:	muli r25, r26, 256
38:	add r25, r25, r27
39:	movi r23, 0
40:	sltsi r0, r23, 64
41:	brz r0, @59
42:	add r2, r20, r23
43:	sub r2, r2, r24
44:	fmovi f16, 0
45:	sltsi r3, r2, 0
46:	xori r5, r3, 1
47:	andi r2, r2, 1023
48:	shli r2, r2, 3
49:	add r2, r2, r21
50:	fload f16, [r2+0]  ?r5
51:	shli r4, r23, 2
52:	add r4, r4, r25
53:	fload4 f18, [r4+0]
54:	fmul f19, f17, f16
55:	fadd f18, f18, f19
56:	fstore4 [r4+0], f18
57:	addi r23, r23, 1
58:	jmp @40
59:	addi r26, r26, 1
60:	jmp @21
61:	addi sp, sp, 32
62:	ret

.func AudioIo_setFrames
0:	muli r20, r1, 256
1:	movi r21, 268459520
2:	add r20, r20, r21
3:	movi r22, 268457472
4:	movi r23, 0
5:	sltsi r0, r23, 8
6:	brz r0, @18
7:	mov r24, r20
8:	mov r25, r22
9:	movi r26, 4
10:	brz r26, @14
11:	movs64 [r24], [r25]
12:	addi r26, r26, -1
13:	jmp @10
14:	addi r20, r20, 1536
15:	addi r22, r22, 256
16:	addi r23, r23, 1
17:	jmp @5
18:	ret

.func ffw
0:	addi sp, sp, -32
1:	store8 [sp+0], r1
2:	movi r20, 268435968
3:	movi r21, 0
4:	sltsi r0, r21, 128
5:	brz r0, @13
6:	movi r0, 0
7:	fmovi f16, 0
8:	shli r22, r21, 3
9:	add r22, r22, r20
10:	fstore [r22+0], f16
11:	addi r21, r21, 1
12:	jmp @4
13:	movi r0, 0
14:	load8 r1, [sp+0]
15:	brnz r1, @30
16:	fmovi f16, 0.0313258
17:	fmovi f17, 0.97
18:	movi r21, 0
19:	sltsi r0, r21, 65
20:	brz r0, @28
21:	movi r0, 0
22:	shli r22, r21, 3
23:	add r22, r22, r20
24:	fstore [r22+0], f16
25:	fmul f16, f16, f17
26:	addi r21, r21, 1
27:	jmp @19
28:	movi r0, 0
29:	jmp @34
30:	fmovi f16, 0.05
31:	fstore [r20+0], f16
32:	fmovi f16, 0.025
33:	fstore [r20+256], f16
34:	movi r1, 268443136
35:	movi r2, 128
36:	call fn#10
37:	movi r1, 268435968
38:	movi r2, 268443136
39:	movi r3, 128
40:	call fn#11
41:	movi r1, 268443136
42:	movi r2, 1
43:	movi r3, 128
44:	movi r4, 7
45:	call fn#6
46:	load8 r1, [sp+0]
47:	movi r23, 268436992
48:	movi r24, 268439040
49:	mov r23, r24  ?r1
50:	movi r24, 268443136
51:	movi r21, 0
52:	sltsi r0, r21, 256
53:	brz r0, @62
54:	movi r0, 0
55:	shli r22, r21, 3
56:	add r25, r22, r24
57:	fload f16, [r25+0]
58:	add r25, r22, r23
59:	fstore [r25+0], f16
60:	addi r21, r21, 1
61:	jmp @52
62:	movi r0, 0
63:	addi sp, sp, 32
64:	ret

.func wav_load
0:	addi sp, sp, -64
1:	movi r1, 0
2:	movi r2, 268473664
3:	movi r3, 44
4:	call fn#0
5:	movi r20, 268473664
6:	load4 r21, [r20+0]
7:	movi r22, 1179011410
8:	seq r21, r21, r22
9:	brz r21, @18
10:	load4 r21, [r20+8]
11:	movi r22, 1163280727
12:	seq r21, r21, r22
13:	brz r21, @18
14:	load4 r21, [r20+36]
15:	movi r22, 1635017060
16:	seq r21, r21, r22
17:	brnz r21, @21
18:	movi r1, -1
19:	sys 6
20:	halt
21:	load4 r23, [r20+40]
22:	shrli r23, r23, 1
23:	movi r24, 384
24:	slts r0, r24, r23
25:	mov r23, r24  ?r0
26:	store8 [sp+0], r23
27:	movi r25, 268471808
28:	movi r26, 0
29:	load8 r23, [sp+0]
30:	slts r0, r26, r23
31:	brz r0, @58
32:	sub r27, r23, r26
33:	movi r24, 1024
34:	slts r0, r24, r27
35:	mov r27, r24  ?r0
36:	movi r1, 0
37:	movi r2, 268473664
38:	shli r3, r27, 1
39:	call fn#0
40:	movi r20, 268473664
41:	movi r21, 0
42:	slts r0, r21, r27
43:	brz r0, @56
44:	shli r22, r21, 1
45:	add r22, r22, r20
46:	loads2 r2, [r22+0]
47:	i2f f16, r2
48:	fmovi f17, 3.05176e-05
49:	fmul f16, f16, f17
50:	add r3, r26, r21
51:	shli r3, r3, 2
52:	add r3, r3, r25
53:	fstore4 [r3+0], f16
54:	addi r21, r21, 1
55:	jmp @42
56:	add r26, r26, r27
57:	jmp @29
58:	movi r24, 384
59:	slts r0, r26, r24
60:	brz r0, @67
61:	shli r3, r26, 2
62:	add r3, r3, r25
63:	fmovi f16, 0
64:	fstore4 [r3+0], f16
65:	addi r26, r26, 1
66:	jmp @58
67:	addi sp, sp, 64
68:	ret

.func wav_store
0:	addi sp, sp, -64
1:	movi r20, 268473664
2:	movi r21, 1179011410
3:	store4 [r20+0], r21
4:	movi r21, 6180
5:	store4 [r20+4], r21
6:	movi r21, 1163280727
7:	store4 [r20+8], r21
8:	movi r21, 544501094
9:	store4 [r20+12], r21
10:	movi r21, 16
11:	store4 [r20+16], r21
12:	movi r21, 1
13:	store2 [r20+20], r21
14:	movi r21, 8
15:	store2 [r20+22], r21
16:	movi r21, 48000
17:	store4 [r20+24], r21
18:	movi r21, 768000
19:	store4 [r20+28], r21
20:	movi r21, 16
21:	store2 [r20+32], r21
22:	movi r21, 16
23:	store2 [r20+34], r21
24:	movi r21, 1635017060
25:	store4 [r20+36], r21
26:	movi r21, 6144
27:	store4 [r20+40], r21
28:	movi r1, 1
29:	movi r2, 268473664
30:	movi r3, 44
31:	call fn#1
32:	fmovi f16, 0
33:	movi r20, 0
34:	sltsi r0, r20, 1
35:	brz r0, @52
36:	fmovi f17, 0
37:	movi r21, 268459520
38:	movi r22, 0
39:	movi r23, 3072
40:	slts r0, r22, r23
41:	brz r0, @49
42:	shli r23, r22, 2
43:	add r23, r23, r21
44:	fload4 f18, [r23+0]
45:	fabs f18, f18
46:	fmax f17, f17, f18
47:	addi r22, r22, 1
48:	jmp @39
49:	fmov f16, f17
50:	addi r20, r20, 1
51:	jmp @34
52:	fmovi f17, 1e-09
53:	fmax f17, f16, f17
54:	fmovi f18, 0.9
55:	fdiv f17, f18, f17
56:	movi r20, 0
57:	movi r24, 268473664
58:	movi r25, 0
59:	movi r2, 384
60:	slts r0, r20, r2
61:	brz r0, @99
62:	movi r21, 0
63:	sltsi r0, r21, 8
64:	brz r0, @97
65:	movi r2, 384
66:	mul r3, r21, r2
67:	add r3, r3, r20
68:	shli r3, r3, 2
69:	movi r2, 268459520
70:	add r3, r3, r2
71:	fload4 f19, [r3+0]
72:	fstore [sp+0], f19
73:	fload f19, [sp+0]
74:	fmul f19, f19, f17
75:	fmovi f20, 32767
76:	fmul f19, f19, f20
77:	fmovi f20, -32768
78:	fmax f19, f19, f20
79:	fmovi f20, 32767
80:	fmin f19, f19, f20
81:	f2i r2, f19
82:	store8 [sp+8], r2
83:	load8 r2, [sp+8]
84:	add r3, r24, r25
85:	store2 [r3+0], r2
86:	addi r25, r25, 2
87:	movi r2, 2048
88:	slts r0, r25, r2
89:	brnz r0, @95
90:	movi r1, 1
91:	mov r2, r24
92:	mov r3, r25
93:	call fn#1
94:	movi r25, 0
95:	addi r21, r21, 1
96:	jmp @63
97:	addi r20, r20, 1
98:	jmp @59
99:	brz r25, @104
100:	movi r1, 1
101:	mov r2, r24
102:	mov r3, r25
103:	call fn#1
104:	addi sp, sp, 64
105:	ret

.func main
0:	call fn#3
1:	movi r1, 0
2:	call fn#21
3:	movi r1, 1
4:	call fn#21
5:	call fn#22
6:	movi r28, 0
7:	sltsi r0, r28, 6
8:	brz r0, @29
9:	sltsi r29, r28, 3
10:	brz r29, @19
11:	call fn#15
12:	movi r29, 0
13:	sltsi r0, r29, 8
14:	brz r0, @19
15:	mov r1, r29
16:	call fn#14
17:	addi r29, r29, 1
18:	jmp @13
19:	mov r1, r28
20:	call fn#16
21:	call fn#17
22:	call fn#18
23:	mov r1, r28
24:	call fn#19
25:	mov r1, r28
26:	call fn#20
27:	addi r28, r28, 1
28:	jmp @7
29:	call fn#23
30:	halt

