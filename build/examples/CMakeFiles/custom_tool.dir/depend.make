# Empty dependencies file for custom_tool.
# This may be replaced when dependencies are built.
