file(REMOVE_RECURSE
  "CMakeFiles/wfs_case_study.dir/wfs_case_study.cpp.o"
  "CMakeFiles/wfs_case_study.dir/wfs_case_study.cpp.o.d"
  "wfs_case_study"
  "wfs_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfs_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
