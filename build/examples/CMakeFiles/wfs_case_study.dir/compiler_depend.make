# Empty compiler generated dependencies file for wfs_case_study.
# This may be replaced when dependencies are built.
