# Empty dependencies file for codec_case_study.
# This may be replaced when dependencies are built.
