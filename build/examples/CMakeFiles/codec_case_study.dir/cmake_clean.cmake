file(REMOVE_RECURSE
  "CMakeFiles/codec_case_study.dir/codec_case_study.cpp.o"
  "CMakeFiles/codec_case_study.dir/codec_case_study.cpp.o.d"
  "codec_case_study"
  "codec_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
