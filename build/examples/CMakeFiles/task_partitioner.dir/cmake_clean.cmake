file(REMOVE_RECURSE
  "CMakeFiles/task_partitioner.dir/task_partitioner.cpp.o"
  "CMakeFiles/task_partitioner.dir/task_partitioner.cpp.o.d"
  "task_partitioner"
  "task_partitioner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_partitioner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
