# Empty compiler generated dependencies file for task_partitioner.
# This may be replaced when dependencies are built.
