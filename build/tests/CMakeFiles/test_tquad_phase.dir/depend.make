# Empty dependencies file for test_tquad_phase.
# This may be replaced when dependencies are built.
