file(REMOVE_RECURSE
  "CMakeFiles/test_tquad_phase.dir/test_tquad_phase.cpp.o"
  "CMakeFiles/test_tquad_phase.dir/test_tquad_phase.cpp.o.d"
  "test_tquad_phase"
  "test_tquad_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tquad_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
