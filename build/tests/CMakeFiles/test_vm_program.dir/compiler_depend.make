# Empty compiler generated dependencies file for test_vm_program.
# This may be replaced when dependencies are built.
