file(REMOVE_RECURSE
  "CMakeFiles/test_vm_program.dir/test_vm_program.cpp.o"
  "CMakeFiles/test_vm_program.dir/test_vm_program.cpp.o.d"
  "test_vm_program"
  "test_vm_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
