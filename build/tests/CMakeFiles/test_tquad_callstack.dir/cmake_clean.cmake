file(REMOVE_RECURSE
  "CMakeFiles/test_tquad_callstack.dir/test_tquad_callstack.cpp.o"
  "CMakeFiles/test_tquad_callstack.dir/test_tquad_callstack.cpp.o.d"
  "test_tquad_callstack"
  "test_tquad_callstack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tquad_callstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
