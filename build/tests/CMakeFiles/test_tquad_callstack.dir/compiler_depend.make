# Empty compiler generated dependencies file for test_tquad_callstack.
# This may be replaced when dependencies are built.
