file(REMOVE_RECURSE
  "CMakeFiles/test_tquad_tool.dir/test_tquad_tool.cpp.o"
  "CMakeFiles/test_tquad_tool.dir/test_tquad_tool.cpp.o.d"
  "test_tquad_tool"
  "test_tquad_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tquad_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
