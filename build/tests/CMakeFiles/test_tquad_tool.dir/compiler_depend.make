# Empty compiler generated dependencies file for test_tquad_tool.
# This may be replaced when dependencies are built.
