# Empty dependencies file for test_fuzz_decoders.
# This may be replaced when dependencies are built.
