file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_decoders.dir/test_fuzz_decoders.cpp.o"
  "CMakeFiles/test_fuzz_decoders.dir/test_fuzz_decoders.cpp.o.d"
  "test_fuzz_decoders"
  "test_fuzz_decoders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_decoders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
