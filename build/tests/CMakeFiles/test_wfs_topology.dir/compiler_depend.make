# Empty compiler generated dependencies file for test_wfs_topology.
# This may be replaced when dependencies are built.
