file(REMOVE_RECURSE
  "CMakeFiles/test_wfs_topology.dir/test_wfs_topology.cpp.o"
  "CMakeFiles/test_wfs_topology.dir/test_wfs_topology.cpp.o.d"
  "test_wfs_topology"
  "test_wfs_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wfs_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
