file(REMOVE_RECURSE
  "CMakeFiles/test_quad_tool.dir/test_quad_tool.cpp.o"
  "CMakeFiles/test_quad_tool.dir/test_quad_tool.cpp.o.d"
  "test_quad_tool"
  "test_quad_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quad_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
