# Empty dependencies file for test_quad_tool.
# This may be replaced when dependencies are built.
