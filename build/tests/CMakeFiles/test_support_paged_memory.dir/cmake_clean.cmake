file(REMOVE_RECURSE
  "CMakeFiles/test_support_paged_memory.dir/test_support_paged_memory.cpp.o"
  "CMakeFiles/test_support_paged_memory.dir/test_support_paged_memory.cpp.o.d"
  "test_support_paged_memory"
  "test_support_paged_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_paged_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
