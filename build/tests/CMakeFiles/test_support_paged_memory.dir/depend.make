# Empty dependencies file for test_support_paged_memory.
# This may be replaced when dependencies are built.
