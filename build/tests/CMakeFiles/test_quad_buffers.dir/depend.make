# Empty dependencies file for test_quad_buffers.
# This may be replaced when dependencies are built.
