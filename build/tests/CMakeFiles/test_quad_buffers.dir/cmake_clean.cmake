file(REMOVE_RECURSE
  "CMakeFiles/test_quad_buffers.dir/test_quad_buffers.cpp.o"
  "CMakeFiles/test_quad_buffers.dir/test_quad_buffers.cpp.o.d"
  "test_quad_buffers"
  "test_quad_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quad_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
