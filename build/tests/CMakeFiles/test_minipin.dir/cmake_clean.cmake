file(REMOVE_RECURSE
  "CMakeFiles/test_minipin.dir/test_minipin.cpp.o"
  "CMakeFiles/test_minipin.dir/test_minipin.cpp.o.d"
  "test_minipin"
  "test_minipin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minipin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
