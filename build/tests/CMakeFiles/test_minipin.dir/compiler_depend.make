# Empty compiler generated dependencies file for test_minipin.
# This may be replaced when dependencies are built.
