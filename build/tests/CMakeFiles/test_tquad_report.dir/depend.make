# Empty dependencies file for test_tquad_report.
# This may be replaced when dependencies are built.
