file(REMOVE_RECURSE
  "CMakeFiles/test_tquad_report.dir/test_tquad_report.cpp.o"
  "CMakeFiles/test_tquad_report.dir/test_tquad_report.cpp.o.d"
  "test_tquad_report"
  "test_tquad_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tquad_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
