file(REMOVE_RECURSE
  "CMakeFiles/test_vm_machine.dir/test_vm_machine.cpp.o"
  "CMakeFiles/test_vm_machine.dir/test_vm_machine.cpp.o.d"
  "test_vm_machine"
  "test_vm_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
