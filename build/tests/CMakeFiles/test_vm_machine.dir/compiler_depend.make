# Empty compiler generated dependencies file for test_vm_machine.
# This may be replaced when dependencies are built.
