# Empty dependencies file for test_wfs_wav_golden.
# This may be replaced when dependencies are built.
