file(REMOVE_RECURSE
  "CMakeFiles/test_wfs_wav_golden.dir/test_wfs_wav_golden.cpp.o"
  "CMakeFiles/test_wfs_wav_golden.dir/test_wfs_wav_golden.cpp.o.d"
  "test_wfs_wav_golden"
  "test_wfs_wav_golden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wfs_wav_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
