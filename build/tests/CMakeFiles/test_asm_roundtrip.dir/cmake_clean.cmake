file(REMOVE_RECURSE
  "CMakeFiles/test_asm_roundtrip.dir/test_asm_roundtrip.cpp.o"
  "CMakeFiles/test_asm_roundtrip.dir/test_asm_roundtrip.cpp.o.d"
  "test_asm_roundtrip"
  "test_asm_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asm_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
