file(REMOVE_RECURSE
  "CMakeFiles/test_dctc.dir/test_dctc.cpp.o"
  "CMakeFiles/test_dctc.dir/test_dctc.cpp.o.d"
  "test_dctc"
  "test_dctc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dctc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
