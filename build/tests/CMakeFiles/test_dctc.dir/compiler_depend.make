# Empty compiler generated dependencies file for test_dctc.
# This may be replaced when dependencies are built.
