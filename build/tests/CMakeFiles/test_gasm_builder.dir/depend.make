# Empty dependencies file for test_gasm_builder.
# This may be replaced when dependencies are built.
