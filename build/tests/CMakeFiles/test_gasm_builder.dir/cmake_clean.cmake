file(REMOVE_RECURSE
  "CMakeFiles/test_gasm_builder.dir/test_gasm_builder.cpp.o"
  "CMakeFiles/test_gasm_builder.dir/test_gasm_builder.cpp.o.d"
  "test_gasm_builder"
  "test_gasm_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gasm_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
