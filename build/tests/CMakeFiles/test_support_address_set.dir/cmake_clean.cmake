file(REMOVE_RECURSE
  "CMakeFiles/test_support_address_set.dir/test_support_address_set.cpp.o"
  "CMakeFiles/test_support_address_set.dir/test_support_address_set.cpp.o.d"
  "test_support_address_set"
  "test_support_address_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_address_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
