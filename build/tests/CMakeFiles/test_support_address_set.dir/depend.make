# Empty dependencies file for test_support_address_set.
# This may be replaced when dependencies are built.
