# Empty dependencies file for test_vm_hostenv.
# This may be replaced when dependencies are built.
