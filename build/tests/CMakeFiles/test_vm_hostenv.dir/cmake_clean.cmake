file(REMOVE_RECURSE
  "CMakeFiles/test_vm_hostenv.dir/test_vm_hostenv.cpp.o"
  "CMakeFiles/test_vm_hostenv.dir/test_vm_hostenv.cpp.o.d"
  "test_vm_hostenv"
  "test_vm_hostenv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_hostenv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
