# Empty compiler generated dependencies file for test_tquad_bandwidth.
# This may be replaced when dependencies are built.
