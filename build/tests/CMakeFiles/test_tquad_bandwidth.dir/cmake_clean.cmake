file(REMOVE_RECURSE
  "CMakeFiles/test_tquad_bandwidth.dir/test_tquad_bandwidth.cpp.o"
  "CMakeFiles/test_tquad_bandwidth.dir/test_tquad_bandwidth.cpp.o.d"
  "test_tquad_bandwidth"
  "test_tquad_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tquad_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
