file(REMOVE_RECURSE
  "CMakeFiles/test_wfs_pipeline.dir/test_wfs_pipeline.cpp.o"
  "CMakeFiles/test_wfs_pipeline.dir/test_wfs_pipeline.cpp.o.d"
  "test_wfs_pipeline"
  "test_wfs_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wfs_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
