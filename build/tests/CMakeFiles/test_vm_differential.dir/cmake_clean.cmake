file(REMOVE_RECURSE
  "CMakeFiles/test_vm_differential.dir/test_vm_differential.cpp.o"
  "CMakeFiles/test_vm_differential.dir/test_vm_differential.cpp.o.d"
  "test_vm_differential"
  "test_vm_differential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
