# Empty dependencies file for test_vm_differential.
# This may be replaced when dependencies are built.
