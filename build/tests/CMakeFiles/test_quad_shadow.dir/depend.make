# Empty dependencies file for test_quad_shadow.
# This may be replaced when dependencies are built.
