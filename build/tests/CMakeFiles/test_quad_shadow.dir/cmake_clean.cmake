file(REMOVE_RECURSE
  "CMakeFiles/test_quad_shadow.dir/test_quad_shadow.cpp.o"
  "CMakeFiles/test_quad_shadow.dir/test_quad_shadow.cpp.o.d"
  "test_quad_shadow"
  "test_quad_shadow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quad_shadow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
