file(REMOVE_RECURSE
  "CMakeFiles/test_tquad_consensus.dir/test_tquad_consensus.cpp.o"
  "CMakeFiles/test_tquad_consensus.dir/test_tquad_consensus.cpp.o.d"
  "test_tquad_consensus"
  "test_tquad_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tquad_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
