# Empty compiler generated dependencies file for test_tquad_consensus.
# This may be replaced when dependencies are built.
