# Empty compiler generated dependencies file for wfs_gen.
# This may be replaced when dependencies are built.
