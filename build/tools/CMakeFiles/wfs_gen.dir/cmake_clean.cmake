file(REMOVE_RECURSE
  "CMakeFiles/wfs_gen.dir/wfs_gen.cpp.o"
  "CMakeFiles/wfs_gen.dir/wfs_gen.cpp.o.d"
  "wfs_gen"
  "wfs_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfs_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
