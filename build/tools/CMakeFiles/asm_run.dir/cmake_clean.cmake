file(REMOVE_RECURSE
  "CMakeFiles/asm_run.dir/asm_run.cpp.o"
  "CMakeFiles/asm_run.dir/asm_run.cpp.o.d"
  "asm_run"
  "asm_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asm_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
