# Empty dependencies file for asm_run.
# This may be replaced when dependencies are built.
