# Empty dependencies file for tquad_cli.
# This may be replaced when dependencies are built.
