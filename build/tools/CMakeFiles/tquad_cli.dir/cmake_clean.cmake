file(REMOVE_RECURSE
  "CMakeFiles/tquad_cli.dir/tquad_cli.cpp.o"
  "CMakeFiles/tquad_cli.dir/tquad_cli.cpp.o.d"
  "tquad_cli"
  "tquad_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tquad_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
