file(REMOVE_RECURSE
  "CMakeFiles/quad_cli.dir/quad_cli.cpp.o"
  "CMakeFiles/quad_cli.dir/quad_cli.cpp.o.d"
  "quad_cli"
  "quad_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quad_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
