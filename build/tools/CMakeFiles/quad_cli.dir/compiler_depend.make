# Empty compiler generated dependencies file for quad_cli.
# This may be replaced when dependencies are built.
