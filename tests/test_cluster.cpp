// Task clustering: graph-level properties on synthetic topologies, then the
// wfs pipeline end to end.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "minipin/minipin.hpp"
#include "wfs/runner.hpp"

namespace tq::cluster {
namespace {

TEST(ClusterEdges, TwoCliquesSeparate) {
  // 0-1-2 heavily connected, 3-4-5 heavily connected, one thin bridge.
  std::vector<Edge> edges{
      {0, 1, 1000}, {1, 2, 900}, {0, 2, 800},
      {3, 4, 1000}, {4, 5, 900}, {3, 5, 800},
      {2, 3, 10},  // bridge
  };
  ClusterOptions options;
  options.target_clusters = 2;
  const Clustering result = cluster_edges(6, edges, {}, options);
  ASSERT_EQ(result.clusters.size(), 2u);
  EXPECT_EQ(result.cluster_of(0), result.cluster_of(1));
  EXPECT_EQ(result.cluster_of(0), result.cluster_of(2));
  EXPECT_EQ(result.cluster_of(3), result.cluster_of(4));
  EXPECT_EQ(result.cluster_of(3), result.cluster_of(5));
  EXPECT_NE(result.cluster_of(0), result.cluster_of(3));
  EXPECT_EQ(result.inter_bytes, 10u);
  EXPECT_EQ(result.intra_bytes, 1000u + 900 + 800 + 1000 + 900 + 800);
  EXPECT_GT(result.intra_fraction(), 0.99);
}

TEST(ClusterEdges, TargetOneMergesEverything) {
  std::vector<Edge> edges{{0, 1, 5}, {1, 2, 5}, {2, 3, 5}};
  ClusterOptions options;
  options.target_clusters = 1;
  const Clustering result = cluster_edges(4, edges, {}, options);
  ASSERT_EQ(result.clusters.size(), 1u);
  EXPECT_EQ(result.inter_bytes, 0u);
}

TEST(ClusterEdges, WeightCapPreventsMerging) {
  std::vector<Edge> edges{{0, 1, 100}, {1, 2, 90}, {0, 2, 80}};
  std::vector<std::uint64_t> weights{60, 60, 60};
  ClusterOptions options;
  options.target_clusters = 1;
  options.max_cluster_weight = 125;  // room for two kernels, never three
  const Clustering result = cluster_edges(3, edges, weights, options);
  EXPECT_EQ(result.clusters.size(), 2u);
  std::size_t largest = 0;
  for (const auto& cluster : result.clusters) {
    largest = std::max(largest, cluster.size());
  }
  EXPECT_EQ(largest, 2u);
}

TEST(ClusterEdges, NoiseFloorIgnoresThinEdges) {
  std::vector<Edge> edges{{0, 1, 2}, {2, 3, 500}};
  ClusterOptions options;
  options.target_clusters = 1;
  options.min_edge_bytes = 10;
  const Clustering result = cluster_edges(4, edges, {}, options);
  // 2-3 merge; 0-1 stays split (edge below the floor), isolated nodes absent.
  EXPECT_EQ(result.cluster_of(2), result.cluster_of(3));
  EXPECT_NE(result.cluster_of(0), result.cluster_of(1));
}

TEST(ClusterEdges, SelfLoopsAndIsolatedKernelsIgnored) {
  std::vector<Edge> edges{{0, 0, 999999}, {1, 2, 10}};
  ClusterOptions options;
  options.target_clusters = 1;
  const Clustering result = cluster_edges(5, edges, {}, options);
  // Kernel 0's self-loop does not appear; kernels 3,4 are not in the graph.
  EXPECT_EQ(result.cluster_of(3), SIZE_MAX);
  EXPECT_EQ(result.cluster_of(4), SIZE_MAX);
  EXPECT_EQ(result.cluster_of(1), result.cluster_of(2));
}

TEST(ClusterEdges, MergingNeverIncreasesInterBytes) {
  // Property: with decreasing target cluster counts, inter-cluster bytes are
  // non-increasing (each merge moves an edge bundle inside).
  std::vector<Edge> edges;
  for (std::uint32_t i = 0; i < 12; ++i) {
    for (std::uint32_t j = i + 1; j < 12; ++j) {
      edges.push_back(Edge{i, j, (i * 7 + j * 13) % 97 + 1});
    }
  }
  std::uint64_t previous = ~0ull;
  for (std::size_t target : {8, 6, 4, 2, 1}) {
    ClusterOptions options;
    options.target_clusters = target;
    const Clustering result = cluster_edges(12, edges, {}, options);
    EXPECT_LE(result.inter_bytes, previous) << "target " << target;
    previous = result.inter_bytes;
  }
}

TEST(ClusterWfs, PipelineNeighboursClusterTogether) {
  const wfs::WfsConfig cfg = wfs::WfsConfig::tiny();
  wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
  pin::Engine engine(run.artifacts.program, run.host);
  quad::QuadTool tool(engine);
  engine.run();

  ClusterOptions options;
  options.target_clusters = 4;
  const Clustering result = cluster_kernels(tool, options);
  ASSERT_GE(result.clusters.size(), 2u);
  auto id = [&](const char* name) { return *run.artifacts.program.find(name); };
  // The FFT convolution pipeline communicates heavily internally:
  // ffw/cmult share H; cmult->cadd via T; fft1d feeds them via X/Y.
  EXPECT_EQ(result.cluster_of(id("cmult")), result.cluster_of(id("cadd")));
  EXPECT_EQ(result.cluster_of(id("fft1d")), result.cluster_of(id("cmult")));
  // Most communication ends up intra-cluster — the paper's objective.
  EXPECT_GT(result.intra_fraction(), 0.5);
}

TEST(ClusterWfs, DescribeNamesKernels) {
  const wfs::WfsConfig cfg = wfs::WfsConfig::tiny();
  wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
  pin::Engine engine(run.artifacts.program, run.host);
  quad::QuadTool tool(engine);
  engine.run();
  const Clustering result = cluster_kernels(tool, ClusterOptions{.target_clusters = 3});
  const std::string text = describe_clustering(tool, result);
  EXPECT_NE(text.find("cluster 1:"), std::string::npos);
  EXPECT_NE(text.find("fft1d"), std::string::npos);
  EXPECT_NE(text.find("intra-cluster bytes"), std::string::npos);
}

}  // namespace
}  // namespace tq::cluster
