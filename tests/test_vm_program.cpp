#include <gtest/gtest.h>

#include "gasm/builder.hpp"
#include "support/check.hpp"
#include "vm/program.hpp"

namespace tq::vm {
namespace {

Program sample_program() {
  gasm::ProgramBuilder prog;
  auto& lib = prog.begin_function("libc_read", ImageKind::kLibrary);
  lib.sys(isa::Sys::kRead);
  lib.ret();
  auto& osfn = prog.begin_function("os_stub", ImageKind::kOs);
  osfn.ret();
  const auto addr = prog.alloc_global("table", 32);
  prog.init_data(addr, {1, 2, 3, 4});
  auto& main_fn = prog.begin_function("main");
  main_fn.movi(gasm::R{1}, 42);
  main_fn.halt();
  return prog.build("main");
}

TEST(Program, FindByName) {
  const Program prog = sample_program();
  EXPECT_TRUE(prog.find("main").has_value());
  EXPECT_TRUE(prog.find("libc_read").has_value());
  EXPECT_FALSE(prog.find("nope").has_value());
}

TEST(Program, ImageKindsPreserved) {
  const Program prog = sample_program();
  EXPECT_EQ(prog.function(*prog.find("libc_read")).image, ImageKind::kLibrary);
  EXPECT_EQ(prog.function(*prog.find("os_stub")).image, ImageKind::kOs);
  EXPECT_EQ(prog.function(*prog.find("main")).image, ImageKind::kMain);
}

TEST(Program, ImageKindNames) {
  EXPECT_STREQ(image_kind_name(ImageKind::kMain), "main");
  EXPECT_STREQ(image_kind_name(ImageKind::kLibrary), "library");
  EXPECT_STREQ(image_kind_name(ImageKind::kOs), "os");
}

TEST(Program, StaticInstructionCount) {
  const Program prog = sample_program();
  EXPECT_EQ(prog.static_instructions(), 2u + 1u + 2u);
}

TEST(Program, SerializeRoundTrip) {
  const Program prog = sample_program();
  const auto bytes = prog.serialize();
  const Program back = Program::deserialize(bytes);
  ASSERT_EQ(back.functions().size(), prog.functions().size());
  for (std::size_t i = 0; i < prog.functions().size(); ++i) {
    EXPECT_EQ(back.functions()[i].name, prog.functions()[i].name);
    EXPECT_EQ(back.functions()[i].image, prog.functions()[i].image);
    EXPECT_EQ(back.functions()[i].code, prog.functions()[i].code);
  }
  EXPECT_EQ(back.entry(), prog.entry());
  ASSERT_EQ(back.data().size(), prog.data().size());
  EXPECT_EQ(back.data()[0].addr, prog.data()[0].addr);
  EXPECT_EQ(back.data()[0].bytes, prog.data()[0].bytes);
}

TEST(Program, DeserializeRejectsGarbage) {
  std::vector<std::uint8_t> garbage{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_THROW(Program::deserialize(garbage), Error);
}

TEST(Program, DeserializeRejectsTruncation) {
  const Program prog = sample_program();
  auto bytes = prog.serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(Program::deserialize(bytes), Error);
}

TEST(Program, DeserializeRejectsBadMagic) {
  const Program prog = sample_program();
  auto bytes = prog.serialize();
  bytes[0] ^= 0xff;
  EXPECT_THROW(Program::deserialize(bytes), Error);
}

TEST(Program, ValidateRejectsNoFunctions) {
  Program prog;
  EXPECT_THROW(prog.validate(), Error);
}

TEST(Program, ValidateNamesOffendingFunction) {
  Program prog;
  Function fn;
  fn.name = "broken";
  fn.code = {isa::Instr{.op = isa::Op::kJmp, .imm = 99}};
  prog.add_function(std::move(fn));
  try {
    prog.validate();
    FAIL() << "expected Error";
  } catch (const Error& err) {
    EXPECT_NE(std::string(err.what()).find("broken"), std::string::npos);
  }
}

}  // namespace
}  // namespace tq::vm
