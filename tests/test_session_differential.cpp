// Differential sweep for the single-pass ProfileSession: for every synthetic
// workload plus the wfs pipeline, running tQUAD + QUAD + gprofsim + the trace
// recorder simultaneously on ONE guest execution must be bit-identical to
// running each tool standalone on its own execution (the paper's four
// separate runs). This is the acceptance property of the session layer: the
// shared KernelAttribution pass loses nothing relative to each tool's
// private call stack.
#include <gtest/gtest.h>

#include "gprofsim/gprof_tool.hpp"
#include "minipin/minipin.hpp"
#include "quad/quad_tool.hpp"
#include "session/session.hpp"
#include "trace/trace.hpp"
#include "tquad/tquad_tool.hpp"
#include "wfs/runner.hpp"
#include "workloads/workloads.hpp"

#include "session_tool_compare.hpp"

namespace tq::session {
namespace {

constexpr std::uint64_t kSlice = 1000;
constexpr std::uint64_t kSamplePeriod = 700;

/// Five hosts: four standalone runs (one per tool, the paper's workflow) and
/// one session run feeding all four at once.
struct Hosts {
  vm::HostEnv tquad, quad, gprof, trace, combined;
};

void check_program(const vm::Program& program, Hosts& hosts,
                   tquad::LibraryPolicy policy) {
  const tquad::Options tquad_options{.slice_interval = kSlice,
                                     .library_policy = policy};
  const quad::QuadOptions quad_options{policy};
  gprof::Options gprof_options;
  gprof_options.sample_period = kSamplePeriod;
  gprof_options.library_policy = policy;

  // Standalone: one dedicated execution per tool.
  pin::Engine tquad_engine(program, hosts.tquad);
  tquad::TQuadTool tquad_alone(tquad_engine, tquad_options);
  tquad_engine.run();

  pin::Engine quad_engine(program, hosts.quad);
  quad::QuadTool quad_alone(quad_engine, quad_options);
  quad_engine.run();

  pin::Engine gprof_engine(program, hosts.gprof);
  gprof::GprofTool gprof_alone(gprof_engine, gprof_options);
  gprof_engine.run();

  trace::TraceRecorder recorder_alone(program, policy, trace::TraceFormat::kV2);
  vm::Machine machine(program, hosts.trace);
  machine.run(&recorder_alone);

  // Session: all four tools share one execution and one attribution pass.
  ProfileSession session(program, SessionConfig{.library_policy = policy});
  tquad::TQuadTool tquad_session(program, tquad_options);
  quad::QuadTool quad_session(program, quad_options);
  gprof::GprofTool gprof_session(program, gprof_options);
  trace::TraceRecorder recorder_session(program, policy, trace::TraceFormat::kV2);
  session.add_consumer(tquad_session);
  session.add_consumer(quad_session);
  session.add_consumer(gprof_session);
  session.add_consumer(recorder_session);
  session.run_live(hosts.combined);

  testutil::expect_tquad_equal(tquad_alone, tquad_session);
  testutil::expect_quad_equal(quad_alone, quad_session);
  testutil::expect_gprof_equal(gprof_alone, gprof_session);
  EXPECT_EQ(recorder_alone.take_encoded(), recorder_session.take_encoded());
}

void check_workload(const vm::Program& program,
                    tquad::LibraryPolicy policy = tquad::LibraryPolicy::kExclude) {
  Hosts hosts;
  check_program(program, hosts, policy);
}

TEST(SessionDifferential, Stream) {
  check_workload(workloads::build_stream(128, 1).program);
}

TEST(SessionDifferential, MatmulNaive) {
  check_workload(workloads::build_matmul(10, false).program);
}

TEST(SessionDifferential, MatmulTiled) {
  check_workload(workloads::build_matmul(12, true, 4).program);
}

TEST(SessionDifferential, Chase) {
  check_workload(workloads::build_chase(64, 400).program);
}

TEST(SessionDifferential, Histogram) {
  check_workload(workloads::build_histogram(32, 800).program);
}

class SessionDifferentialWfs
    : public ::testing::TestWithParam<tquad::LibraryPolicy> {};

// wfs is the policy-sensitive workload: it is the only one with library-image
// routines (libc_*), so it exercises exclude/caller/track attribution paths.
TEST_P(SessionDifferentialWfs, AllPolicies) {
  const wfs::WfsConfig cfg = wfs::WfsConfig::tiny();
  wfs::WfsRun runs[5] = {wfs::prepare_wfs_run(cfg), wfs::prepare_wfs_run(cfg),
                         wfs::prepare_wfs_run(cfg), wfs::prepare_wfs_run(cfg),
                         wfs::prepare_wfs_run(cfg)};
  for (int i = 1; i < 5; ++i) {
    ASSERT_EQ(runs[0].artifacts.program.serialize(),
              runs[i].artifacts.program.serialize());
  }
  Hosts hosts{std::move(runs[0].host), std::move(runs[1].host),
              std::move(runs[2].host), std::move(runs[3].host),
              std::move(runs[4].host)};
  check_program(runs[0].artifacts.program, hosts, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Policies, SessionDifferentialWfs,
                         ::testing::Values(tquad::LibraryPolicy::kExclude,
                                           tquad::LibraryPolicy::kAttributeToCaller,
                                           tquad::LibraryPolicy::kTrack));

}  // namespace
}  // namespace tq::session
