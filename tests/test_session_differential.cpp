// Differential sweep for the single-pass ProfileSession: for every workload
// in the zoo registry (all memory shapes, wfs included), running tQUAD +
// QUAD + gprofsim + the trace recorder simultaneously on ONE guest execution
// must be bit-identical to running each tool standalone on its own execution
// (the paper's four separate runs). This is the acceptance property of the
// session layer: the shared KernelAttribution pass loses nothing relative to
// each tool's private call stack. The standalone tQUAD run doubles as the
// golden-model check that the guest computed the right answer.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "gprofsim/gprof_tool.hpp"
#include "minipin/minipin.hpp"
#include "quad/quad_tool.hpp"
#include "session/session.hpp"
#include "trace/trace.hpp"
#include "tquad/tquad_tool.hpp"
#include "wfs/runner.hpp"
#include "workloads/registry.hpp"

#include "session_tool_compare.hpp"

namespace tq::session {
namespace {

constexpr std::uint64_t kSlice = 1000;
constexpr std::uint64_t kSamplePeriod = 700;

/// Five hosts: four standalone runs (one per tool, the paper's workflow) and
/// one session run feeding all four at once. `inspect_tquad_run`, when set,
/// sees the machine of the standalone tQUAD execution after it halts (the
/// hook the golden-model verification uses).
void check_program(const vm::Program& program, vm::HostEnv* (&hosts)[5],
                   tquad::LibraryPolicy policy,
                   const std::function<void(vm::Machine&)>& inspect_tquad_run = {}) {
  const tquad::Options tquad_options{.slice_interval = kSlice,
                                     .library_policy = policy};
  const quad::QuadOptions quad_options{policy};
  gprof::Options gprof_options;
  gprof_options.sample_period = kSamplePeriod;
  gprof_options.library_policy = policy;

  // Standalone: one dedicated execution per tool.
  pin::Engine tquad_engine(program, *hosts[0]);
  tquad::TQuadTool tquad_alone(tquad_engine, tquad_options);
  tquad_engine.run();
  if (inspect_tquad_run) inspect_tquad_run(tquad_engine.machine());

  pin::Engine quad_engine(program, *hosts[1]);
  quad::QuadTool quad_alone(quad_engine, quad_options);
  quad_engine.run();

  pin::Engine gprof_engine(program, *hosts[2]);
  gprof::GprofTool gprof_alone(gprof_engine, gprof_options);
  gprof_engine.run();

  trace::TraceRecorder recorder_alone(program, policy, trace::TraceFormat::kV2);
  vm::Machine machine(program, *hosts[3]);
  machine.run(&recorder_alone);

  // Session: all four tools share one execution and one attribution pass.
  ProfileSession session(program, SessionConfig{.library_policy = policy});
  tquad::TQuadTool tquad_session(program, tquad_options);
  quad::QuadTool quad_session(program, quad_options);
  gprof::GprofTool gprof_session(program, gprof_options);
  trace::TraceRecorder recorder_session(program, policy, trace::TraceFormat::kV2);
  session.add_consumer(tquad_session);
  session.add_consumer(quad_session);
  session.add_consumer(gprof_session);
  session.add_consumer(recorder_session);
  session.run_live(*hosts[4]);

  testutil::expect_tquad_equal(tquad_alone, tquad_session);
  testutil::expect_quad_equal(quad_alone, quad_session);
  testutil::expect_gprof_equal(gprof_alone, gprof_session);
  EXPECT_EQ(recorder_alone.take_encoded(), recorder_session.take_encoded());
}

/// One test per registered workload: every memory shape in the zoo gets the
/// combined-equals-standalone contract, plus the golden-model verification
/// of the standalone tQUAD execution.
class SessionDifferentialZoo : public ::testing::TestWithParam<std::string> {};

TEST_P(SessionDifferentialZoo, CombinedEqualsStandalone) {
  const workloads::Entry& entry = workloads::find_workload(GetParam());
  workloads::Instance runs[5] = {entry.build(), entry.build(), entry.build(),
                                 entry.build(), entry.build()};
  // Registry builds are deterministic: every run profiles the same bytes.
  const auto image = runs[0].program.serialize();
  for (int i = 1; i < 5; ++i) {
    ASSERT_EQ(image, runs[i].program.serialize()) << entry.name;
  }
  vm::HostEnv* hosts[5] = {&runs[0].host, &runs[1].host, &runs[2].host,
                           &runs[3].host, &runs[4].host};
  check_program(runs[0].program, hosts, tquad::LibraryPolicy::kExclude,
                [&](vm::Machine& machine) {
                  ASSERT_TRUE(runs[0].verify) << entry.name;
                  EXPECT_EQ(runs[0].verify(runs[0], machine), "") << entry.name;
                });
}

INSTANTIATE_TEST_SUITE_P(Zoo, SessionDifferentialZoo,
                         ::testing::ValuesIn(workloads::workload_names()),
                         [](const auto& info) { return info.param; });

class SessionDifferentialWfs
    : public ::testing::TestWithParam<tquad::LibraryPolicy> {};

// wfs is the policy-sensitive workload: it is the only one with library-image
// routines (libc_*), so it exercises exclude/caller/track attribution paths.
TEST_P(SessionDifferentialWfs, AllPolicies) {
  const wfs::WfsConfig cfg = wfs::WfsConfig::tiny();
  wfs::WfsRun runs[5] = {wfs::prepare_wfs_run(cfg), wfs::prepare_wfs_run(cfg),
                         wfs::prepare_wfs_run(cfg), wfs::prepare_wfs_run(cfg),
                         wfs::prepare_wfs_run(cfg)};
  for (int i = 1; i < 5; ++i) {
    ASSERT_EQ(runs[0].artifacts.program.serialize(),
              runs[i].artifacts.program.serialize());
  }
  vm::HostEnv* hosts[5] = {&runs[0].host, &runs[1].host, &runs[2].host,
                           &runs[3].host, &runs[4].host};
  check_program(runs[0].artifacts.program, hosts, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Policies, SessionDifferentialWfs,
                         ::testing::Values(tquad::LibraryPolicy::kExclude,
                                           tquad::LibraryPolicy::kAttributeToCaller,
                                           tquad::LibraryPolicy::kTrack));

}  // namespace
}  // namespace tq::session
