#include <gtest/gtest.h>

#include "tquad/bandwidth.hpp"
#include "tquad/report.hpp"

namespace tq::tquad {
namespace {

TEST(BandwidthRecorder, AccountsBytesToCorrectSlices) {
  BandwidthRecorder rec(2, 100);  // 2 kernels, 100-instruction slices
  rec.on_access(0, 10, 8, /*is_read=*/true, /*is_stack=*/false);
  rec.on_access(0, 50, 4, true, true);
  rec.on_access(0, 150, 16, false, false);  // next slice
  rec.on_access(1, 150, 2, true, false);
  rec.finish();

  const KernelBandwidth& k0 = rec.kernel(0);
  ASSERT_EQ(k0.series.size(), 2u);
  EXPECT_EQ(k0.series[0].slice, 0u);
  EXPECT_EQ(k0.series[0].counters.read_incl, 12u);
  EXPECT_EQ(k0.series[0].counters.read_excl, 8u);  // the stack access excluded
  EXPECT_EQ(k0.series[0].counters.write_incl, 0u);
  EXPECT_EQ(k0.series[1].slice, 1u);
  EXPECT_EQ(k0.series[1].counters.write_incl, 16u);
  EXPECT_EQ(k0.series[1].counters.write_excl, 16u);
  EXPECT_EQ(k0.totals.read_incl, 12u);
  EXPECT_EQ(k0.totals.write_incl, 16u);

  const KernelBandwidth& k1 = rec.kernel(1);
  ASSERT_EQ(k1.series.size(), 1u);
  EXPECT_EQ(k1.series[0].slice, 1u);
  EXPECT_EQ(rec.max_slice(), 1u);
}

TEST(BandwidthRecorder, SkippedSlicesProduceNoSamples) {
  BandwidthRecorder rec(1, 10);
  rec.on_access(0, 5, 1, true, false);
  rec.on_access(0, 95, 1, true, false);   // slice 9; slices 1..8 silent
  rec.on_access(0, 9999, 1, true, false); // slice 999
  rec.finish();
  const KernelBandwidth& k = rec.kernel(0);
  ASSERT_EQ(k.series.size(), 3u);
  EXPECT_EQ(k.series[0].slice, 0u);
  EXPECT_EQ(k.series[1].slice, 9u);
  EXPECT_EQ(k.series[2].slice, 999u);
  EXPECT_EQ(k.active_slices(), 3u);
  EXPECT_EQ(k.first_active_slice(), 0u);
  EXPECT_EQ(k.last_active_slice(), 999u);
}

TEST(BandwidthRecorder, FinishIsIdempotentAndFlushes) {
  BandwidthRecorder rec(1, 100);
  rec.on_access(0, 42, 8, false, false);
  EXPECT_EQ(rec.kernel(0).series.size(), 0u);  // still buffered
  rec.finish();
  EXPECT_EQ(rec.kernel(0).series.size(), 1u);
  rec.finish();
  EXPECT_EQ(rec.kernel(0).series.size(), 1u);
}

TEST(BandwidthRecorder, SeriesAscendingBySlicePerKernel) {
  BandwidthRecorder rec(3, 7);
  // Interleave kernels at increasing times.
  for (std::uint64_t t = 0; t < 700; t += 13) {
    rec.on_access(t % 3, t, 4, t % 2 == 0, false);
  }
  rec.finish();
  for (std::uint32_t k = 0; k < 3; ++k) {
    const auto& series = rec.kernel(k).series;
    for (std::size_t i = 1; i < series.size(); ++i) {
      EXPECT_LT(series[i - 1].slice, series[i].slice);
    }
  }
}

TEST(BandwidthStats, AveragesOverActiveSlicesOnly) {
  BandwidthRecorder rec(1, 1000);
  rec.on_access(0, 0, 500, true, false);       // slice 0: 500 B read
  rec.on_access(0, 5000, 1500, true, false);   // slice 5: 1500 B read
  rec.on_access(0, 5100, 1000, false, true);   // slice 5: 1000 B stack write
  rec.finish();
  const BandwidthStats stats = bandwidth_stats(rec.kernel(0), 1000);
  EXPECT_EQ(stats.activity_span, 2u);
  EXPECT_EQ(stats.first_slice, 0u);
  EXPECT_EQ(stats.last_slice, 5u);
  // avg read incl = (500 + 1500) / (2 active slices * 1000 instr) = 1.0 B/i.
  EXPECT_DOUBLE_EQ(stats.avg_read_incl, 1.0);
  EXPECT_DOUBLE_EQ(stats.avg_read_excl, 1.0);
  EXPECT_DOUBLE_EQ(stats.avg_write_incl, 0.5);
  EXPECT_DOUBLE_EQ(stats.avg_write_excl, 0.0);
  // Peak slice is slice 5: (1500 + 1000) / 1000 = 2.5 B/i including stack.
  EXPECT_DOUBLE_EQ(stats.max_rw_incl, 2.5);
  EXPECT_DOUBLE_EQ(stats.max_rw_excl, 1.5);
}

TEST(BandwidthStats, EmptyKernel) {
  BandwidthRecorder rec(1, 10);
  rec.finish();
  const BandwidthStats stats = bandwidth_stats(rec.kernel(0), 10);
  EXPECT_EQ(stats.activity_span, 0u);
  EXPECT_EQ(stats.avg_read_incl, 0.0);
  EXPECT_EQ(stats.max_rw_incl, 0.0);
}

TEST(BandwidthRecorder, ZeroSliceIntervalAborts) {
  EXPECT_DEATH(BandwidthRecorder(1, 0), "slice interval");
}

/// Property: totals equal the sum over the series, per counter.
class BandwidthTotalsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BandwidthTotalsProperty, TotalsMatchSeriesSum) {
  const std::uint64_t interval = GetParam();
  BandwidthRecorder rec(4, interval);
  std::uint64_t t = 0;
  for (int i = 0; i < 5000; ++i) {
    t += 1 + (i % 37);
    rec.on_access(i % 4, t, 1 + (i % 9), i % 3 != 0, i % 5 == 0);
  }
  rec.finish();
  for (std::uint32_t k = 0; k < 4; ++k) {
    SliceCounters sum;
    for (const auto& sample : rec.kernel(k).series) sum.merge(sample.counters);
    const auto& totals = rec.kernel(k).totals;
    EXPECT_EQ(sum.read_incl, totals.read_incl);
    EXPECT_EQ(sum.read_excl, totals.read_excl);
    EXPECT_EQ(sum.write_incl, totals.write_incl);
    EXPECT_EQ(sum.write_excl, totals.write_excl);
  }
}

INSTANTIATE_TEST_SUITE_P(Intervals, BandwidthTotalsProperty,
                         ::testing::Values(1, 7, 100, 5000, 100000));

}  // namespace
}  // namespace tq::tquad
