#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "support/rng.hpp"
#include "tquad/bandwidth.hpp"
#include "tquad/report.hpp"

namespace tq::tquad {
namespace {

TEST(BandwidthRecorder, AccountsBytesToCorrectSlices) {
  BandwidthRecorder rec(2, 100);  // 2 kernels, 100-instruction slices
  rec.on_access(0, 10, 8, /*is_read=*/true, /*is_stack=*/false);
  rec.on_access(0, 50, 4, true, true);
  rec.on_access(0, 150, 16, false, false);  // next slice
  rec.on_access(1, 150, 2, true, false);
  rec.finish();

  const KernelBandwidth& k0 = rec.kernel(0);
  ASSERT_EQ(k0.series.size(), 2u);
  EXPECT_EQ(k0.series[0].slice, 0u);
  EXPECT_EQ(k0.series[0].counters.read_incl, 12u);
  EXPECT_EQ(k0.series[0].counters.read_excl, 8u);  // the stack access excluded
  EXPECT_EQ(k0.series[0].counters.write_incl, 0u);
  EXPECT_EQ(k0.series[1].slice, 1u);
  EXPECT_EQ(k0.series[1].counters.write_incl, 16u);
  EXPECT_EQ(k0.series[1].counters.write_excl, 16u);
  EXPECT_EQ(k0.totals.read_incl, 12u);
  EXPECT_EQ(k0.totals.write_incl, 16u);

  const KernelBandwidth& k1 = rec.kernel(1);
  ASSERT_EQ(k1.series.size(), 1u);
  EXPECT_EQ(k1.series[0].slice, 1u);
  EXPECT_EQ(rec.max_slice(), 1u);
}

TEST(BandwidthRecorder, SkippedSlicesProduceNoSamples) {
  BandwidthRecorder rec(1, 10);
  rec.on_access(0, 5, 1, true, false);
  rec.on_access(0, 95, 1, true, false);   // slice 9; slices 1..8 silent
  rec.on_access(0, 9999, 1, true, false); // slice 999
  rec.finish();
  const KernelBandwidth& k = rec.kernel(0);
  ASSERT_EQ(k.series.size(), 3u);
  EXPECT_EQ(k.series[0].slice, 0u);
  EXPECT_EQ(k.series[1].slice, 9u);
  EXPECT_EQ(k.series[2].slice, 999u);
  EXPECT_EQ(k.active_slices(), 3u);
  EXPECT_EQ(k.first_active_slice(), 0u);
  EXPECT_EQ(k.last_active_slice(), 999u);
}

TEST(BandwidthRecorder, FinishIsIdempotentAndFlushes) {
  BandwidthRecorder rec(1, 100);
  rec.on_access(0, 42, 8, false, false);
  EXPECT_EQ(rec.kernel(0).series.size(), 0u);  // still buffered
  rec.finish();
  EXPECT_EQ(rec.kernel(0).series.size(), 1u);
  rec.finish();
  EXPECT_EQ(rec.kernel(0).series.size(), 1u);
}

TEST(BandwidthRecorder, SeriesAscendingBySlicePerKernel) {
  BandwidthRecorder rec(3, 7);
  // Interleave kernels at increasing times.
  for (std::uint64_t t = 0; t < 700; t += 13) {
    rec.on_access(t % 3, t, 4, t % 2 == 0, false);
  }
  rec.finish();
  for (std::uint32_t k = 0; k < 3; ++k) {
    const auto& series = rec.kernel(k).series;
    for (std::size_t i = 1; i < series.size(); ++i) {
      EXPECT_LT(series[i - 1].slice, series[i].slice);
    }
  }
}

TEST(BandwidthStats, AveragesOverActiveSlicesOnly) {
  BandwidthRecorder rec(1, 1000);
  rec.on_access(0, 0, 500, true, false);       // slice 0: 500 B read
  rec.on_access(0, 5000, 1500, true, false);   // slice 5: 1500 B read
  rec.on_access(0, 5100, 1000, false, true);   // slice 5: 1000 B stack write
  rec.finish();
  const BandwidthStats stats = bandwidth_stats(rec.kernel(0), 1000);
  EXPECT_EQ(stats.activity_span, 2u);
  EXPECT_EQ(stats.first_slice, 0u);
  EXPECT_EQ(stats.last_slice, 5u);
  // avg read incl = (500 + 1500) / (2 active slices * 1000 instr) = 1.0 B/i.
  EXPECT_DOUBLE_EQ(stats.avg_read_incl, 1.0);
  EXPECT_DOUBLE_EQ(stats.avg_read_excl, 1.0);
  EXPECT_DOUBLE_EQ(stats.avg_write_incl, 0.5);
  EXPECT_DOUBLE_EQ(stats.avg_write_excl, 0.0);
  // Peak slice is slice 5: (1500 + 1000) / 1000 = 2.5 B/i including stack.
  EXPECT_DOUBLE_EQ(stats.max_rw_incl, 2.5);
  EXPECT_DOUBLE_EQ(stats.max_rw_excl, 1.5);
}

TEST(BandwidthStats, EmptyKernel) {
  BandwidthRecorder rec(1, 10);
  rec.finish();
  const BandwidthStats stats = bandwidth_stats(rec.kernel(0), 10);
  EXPECT_EQ(stats.activity_span, 0u);
  EXPECT_EQ(stats.avg_read_incl, 0.0);
  EXPECT_EQ(stats.max_rw_incl, 0.0);
}

TEST(BandwidthRecorder, ZeroSliceIntervalAborts) {
  EXPECT_DEATH(BandwidthRecorder(1, 0), "slice interval");
}

/// Property: totals equal the sum over the series, per counter.
class BandwidthTotalsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BandwidthTotalsProperty, TotalsMatchSeriesSum) {
  const std::uint64_t interval = GetParam();
  BandwidthRecorder rec(4, interval);
  std::uint64_t t = 0;
  for (int i = 0; i < 5000; ++i) {
    t += 1 + (i % 37);
    rec.on_access(i % 4, t, 1 + (i % 9), i % 3 != 0, i % 5 == 0);
  }
  rec.finish();
  for (std::uint32_t k = 0; k < 4; ++k) {
    SliceCounters sum;
    for (const auto& sample : rec.kernel(k).series) sum.merge(sample.counters);
    const auto& totals = rec.kernel(k).totals;
    EXPECT_EQ(sum.read_incl, totals.read_incl);
    EXPECT_EQ(sum.read_excl, totals.read_excl);
    EXPECT_EQ(sum.write_incl, totals.write_incl);
    EXPECT_EQ(sum.write_excl, totals.write_excl);
  }
}

INSTANTIATE_TEST_SUITE_P(Intervals, BandwidthTotalsProperty,
                         ::testing::Values(1, 7, 100, 5000, 100000));

// Boundary placement: an access with retired == K * interval is the first
// instruction *of* slice K (retired counts instructions completed before the
// event), never the last of slice K-1.
TEST(BandwidthRecorder, BoundaryExactRetiredLandsInNewSlice) {
  for (std::uint64_t interval : {1ull, 7ull, 5000ull}) {
    SCOPED_TRACE("interval=" + std::to_string(interval));
    BandwidthRecorder rec(1, interval);
    for (std::uint64_t k : {0ull, 1ull, 3ull}) {
      rec.on_access(0, k * interval, 8, true, false);
    }
    rec.finish();
    // Three distinct slices — 0, 1 and 3 — one per boundary-exact access.
    const auto& series = rec.kernel(0).series;
    ASSERT_EQ(series.size(), 3u);
    for (std::size_t i = 0; i < series.size(); ++i) {
      EXPECT_EQ(series[i].slice, i < 2 ? i : 3u);
    }
  }
}

/// Property over adversarial random streams: for every kernel, the slice
/// series must partition the byte totals exactly — all four counters, with
/// accesses forced onto exact slice boundaries and long slice gaps mixed in.
class BandwidthRandomStreamProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BandwidthRandomStreamProperty, SeriesPartitionsRunningTotals) {
  const std::uint64_t interval = GetParam();
  constexpr std::uint32_t kKernels = 5;
  SplitMix64 rng(0x7157ull * interval + 1);
  BandwidthRecorder rec(kKernels, interval);
  SliceCounters expect[kKernels];
  std::map<std::pair<std::uint32_t, std::uint64_t>, SliceCounters> by_slice;

  std::uint64_t t = 0;
  for (int i = 0; i < 20000; ++i) {
    // Mostly small steps, occasionally a multi-slice jump, and one access in
    // eight pinned to an exact slice boundary (retired = K * interval).
    if (rng.next_below(8) == 0) {
      t = ((t / interval) + 1 + rng.next_below(3)) * interval;
    } else {
      t += rng.next_below(interval + 3);
    }
    const std::uint32_t kernel = static_cast<std::uint32_t>(rng.next_below(kKernels));
    const std::uint32_t bytes = 1 + static_cast<std::uint32_t>(rng.next_below(64));
    const bool is_read = rng.next_below(2) == 0;
    const bool is_stack = rng.next_below(4) == 0;
    rec.on_access(kernel, t, bytes, is_read, is_stack);
    SliceCounters c;
    (is_read ? c.read_incl : c.write_incl) = bytes;
    if (!is_stack) (is_read ? c.read_excl : c.write_excl) = bytes;
    expect[kernel].merge(c);
    by_slice[{kernel, t / interval}].merge(c);
  }
  rec.finish();

  for (std::uint32_t k = 0; k < kKernels; ++k) {
    SCOPED_TRACE("kernel=" + std::to_string(k));
    const KernelBandwidth& kernel = rec.kernel(k);
    SliceCounters sum;
    for (const auto& sample : kernel.series) {
      sum.merge(sample.counters);
      // Each flushed sample equals the independently tracked per-slice total.
      const auto it = by_slice.find({k, sample.slice});
      ASSERT_NE(it, by_slice.end()) << "phantom slice " << sample.slice;
      EXPECT_EQ(sample.counters.read_incl, it->second.read_incl);
      EXPECT_EQ(sample.counters.read_excl, it->second.read_excl);
      EXPECT_EQ(sample.counters.write_incl, it->second.write_incl);
      EXPECT_EQ(sample.counters.write_excl, it->second.write_excl);
    }
    EXPECT_EQ(sum.read_incl, expect[k].read_incl);
    EXPECT_EQ(sum.read_excl, expect[k].read_excl);
    EXPECT_EQ(sum.write_incl, expect[k].write_incl);
    EXPECT_EQ(sum.write_excl, expect[k].write_excl);
    EXPECT_EQ(kernel.totals.read_incl, expect[k].read_incl);
    EXPECT_EQ(kernel.totals.read_excl, expect[k].read_excl);
    EXPECT_EQ(kernel.totals.write_incl, expect[k].write_incl);
    EXPECT_EQ(kernel.totals.write_excl, expect[k].write_excl);
  }
}

INSTANTIATE_TEST_SUITE_P(Intervals, BandwidthRandomStreamProperty,
                         ::testing::Values(1, 7, 5000));

// The final-partial-slice fix: a run ending mid-slice must weight the tail
// by its true width, both in the averages' denominator and the tail slice's
// peak sample.
TEST(BandwidthStats, PartialFinalSliceWeightedByTrueWidth) {
  BandwidthRecorder rec(1, 1000);
  rec.on_access(0, 100, 500, true, false);    // slice 0 (full)
  rec.on_access(0, 2050, 300, true, false);   // slice 2 (the tail)
  rec.finish();
  // The run retired 2100 instructions: slice 2 spans only 100 of them.
  const BandwidthStats stats = bandwidth_stats(rec.kernel(0), 1000, 2100);
  EXPECT_EQ(stats.activity_span, 2u);
  // denom = 1000 (slice 0) + 100 (tail) instead of 2000.
  EXPECT_DOUBLE_EQ(stats.avg_read_incl, 800.0 / 1100.0);
  // Tail peak: 300 bytes over 100 instructions = 3.0 B/i, beating slice 0's
  // 0.5 — under full-width weighting it would have been a wrong 0.5 peak.
  EXPECT_DOUBLE_EQ(stats.max_rw_incl, 3.0);
}

TEST(BandwidthStats, ExactMultipleRunHasNoTailCorrection) {
  BandwidthRecorder rec(1, 1000);
  rec.on_access(0, 100, 500, true, false);
  rec.on_access(0, 1900, 300, true, false);
  rec.finish();
  // total_retired = 2000 ends exactly on the slice-2 boundary: the final
  // slice is slice 1 with full width, so the weighted stats equal the
  // unweighted ones.
  const BandwidthStats weighted = bandwidth_stats(rec.kernel(0), 1000, 2000);
  const BandwidthStats uniform = bandwidth_stats(rec.kernel(0), 1000);
  EXPECT_DOUBLE_EQ(weighted.avg_read_incl, uniform.avg_read_incl);
  EXPECT_DOUBLE_EQ(weighted.max_rw_incl, uniform.max_rw_incl);
  EXPECT_DOUBLE_EQ(weighted.avg_read_incl, 800.0 / 2000.0);
}

// A kernel whose last activity is *not* in the run's final slice keeps
// uniform weighting even when the run itself ends mid-slice.
TEST(BandwidthStats, KernelEndingBeforeTailUnaffected) {
  BandwidthRecorder rec(1, 1000);
  rec.on_access(0, 100, 500, true, false);  // slice 0 only
  rec.finish();
  const BandwidthStats weighted = bandwidth_stats(rec.kernel(0), 1000, 2100);
  const BandwidthStats uniform = bandwidth_stats(rec.kernel(0), 1000);
  EXPECT_DOUBLE_EQ(weighted.avg_read_incl, uniform.avg_read_incl);
  EXPECT_DOUBLE_EQ(weighted.max_rw_incl, uniform.max_rw_incl);
}

}  // namespace
}  // namespace tq::tquad
