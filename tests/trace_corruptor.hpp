// Byte-level trace corruptors for the salvage and fuzz suites: deterministic
// single-fault injections into an encoded TQTR image (no randomness — each
// test names the exact byte it damages, so failures reproduce exactly).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tq::testutil {

/// Flip one bit: `bit` indexes into the whole image (byte = bit / 8).
inline std::vector<std::uint8_t> flip_bit(std::vector<std::uint8_t> bytes,
                                          std::size_t bit) {
  bytes.at(bit / 8) ^= static_cast<std::uint8_t>(1u << (bit % 8));
  return bytes;
}

/// Cut the image at `size` bytes (models a crash mid-write).
inline std::vector<std::uint8_t> truncate_at(std::vector<std::uint8_t> bytes,
                                             std::size_t size) {
  if (size < bytes.size()) bytes.resize(size);
  return bytes;
}

/// Zero `count` bytes starting at `offset` (models a lost disk sector).
inline std::vector<std::uint8_t> zero_range(std::vector<std::uint8_t> bytes,
                                            std::size_t offset,
                                            std::size_t count) {
  for (std::size_t i = 0; i < count && offset + i < bytes.size(); ++i) {
    bytes[offset + i] = 0;
  }
  return bytes;
}

}  // namespace tq::testutil
