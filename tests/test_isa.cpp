#include <gtest/gtest.h>

#include "isa/isa.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace tq::isa {
namespace {

TEST(IsaClassify, MemoryReads) {
  EXPECT_TRUE(is_memory_read(Op::kLoad));
  EXPECT_TRUE(is_memory_read(Op::kLoadS));
  EXPECT_TRUE(is_memory_read(Op::kFLoad));
  EXPECT_TRUE(is_memory_read(Op::kFLoad4));
  EXPECT_TRUE(is_memory_read(Op::kRet));   // pops the return address
  EXPECT_TRUE(is_memory_read(Op::kMovs));  // string move reads the source
  EXPECT_FALSE(is_memory_read(Op::kStore));
  EXPECT_FALSE(is_memory_read(Op::kAdd));
  EXPECT_FALSE(is_memory_read(Op::kPrefetch));  // prefetch is its own class
}

TEST(IsaClassify, MemoryWrites) {
  EXPECT_TRUE(is_memory_write(Op::kStore));
  EXPECT_TRUE(is_memory_write(Op::kFStore));
  EXPECT_TRUE(is_memory_write(Op::kFStore4));
  EXPECT_TRUE(is_memory_write(Op::kCall));  // pushes the return address
  EXPECT_TRUE(is_memory_write(Op::kMovs));
  EXPECT_FALSE(is_memory_write(Op::kLoad));
  EXPECT_FALSE(is_memory_write(Op::kRet));
}

TEST(IsaClassify, ControlFlow) {
  EXPECT_TRUE(is_branch(Op::kJmp));
  EXPECT_TRUE(is_branch(Op::kBrZ));
  EXPECT_TRUE(is_branch(Op::kBrNZ));
  EXPECT_FALSE(is_branch(Op::kCall));
  EXPECT_TRUE(is_call(Op::kCall));
  EXPECT_TRUE(is_ret(Op::kRet));
  EXPECT_TRUE(is_prefetch(Op::kPrefetch));
  EXPECT_TRUE(references_memory(Op::kPrefetch));
  EXPECT_FALSE(references_memory(Op::kFAdd));
}

TEST(IsaClassify, EveryOpcodeHasMnemonic) {
  for (unsigned op = 0; op < static_cast<unsigned>(Op::kOpCount_); ++op) {
    const char* name = mnemonic(static_cast<Op>(op));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "<bad>") << "opcode " << op;
  }
}

TEST(IsaEncode, SingleInstructionRoundTrip) {
  Instr ins;
  ins.op = Op::kLoad;
  ins.rd = 5;
  ins.ra = 31;
  ins.size = 4;
  ins.imm = -12345;
  const auto bytes = encode(std::span<const Instr>(&ins, 1));
  EXPECT_EQ(bytes.size(), kEncodedSize);
  const auto decoded = decode(bytes);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0], ins);
}

TEST(IsaEncode, TruncatedStreamThrows) {
  Instr ins;
  auto bytes = encode(std::span<const Instr>(&ins, 1));
  bytes.pop_back();
  EXPECT_THROW(decode(bytes), Error);
}

TEST(IsaEncode, InvalidOpcodeThrows) {
  Instr ins;
  auto bytes = encode(std::span<const Instr>(&ins, 1));
  bytes[0] = 0xff;
  EXPECT_THROW(decode(bytes), Error);
}

/// Property: encode/decode is an exact round trip over random instructions.
class IsaEncodeRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IsaEncodeRandomized, RoundTrip) {
  SplitMix64 rng(GetParam());
  std::vector<Instr> code;
  for (int i = 0; i < 500; ++i) {
    Instr ins;
    ins.op = static_cast<Op>(rng.next_below(static_cast<unsigned>(Op::kOpCount_)));
    ins.rd = static_cast<std::uint8_t>(rng.next_below(32));
    ins.ra = static_cast<std::uint8_t>(rng.next_below(32));
    ins.rb = static_cast<std::uint8_t>(rng.next_below(32));
    ins.size = static_cast<std::uint8_t>(1u << rng.next_below(4));
    ins.flags = static_cast<std::uint8_t>(rng.next_below(2));
    ins.pr = static_cast<std::uint8_t>(rng.next_below(32));
    ins.imm = static_cast<std::int64_t>(rng.next());
    code.push_back(ins);
  }
  const auto decoded = decode(encode(code));
  EXPECT_EQ(decoded, code);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsaEncodeRandomized, ::testing::Values(3, 5, 8));

TEST(IsaValidate, AcceptsWellFormedFunction) {
  std::vector<Instr> code{
      Instr{.op = Op::kMovI, .rd = 1, .imm = 7},
      Instr{.op = Op::kRet},
  };
  EXPECT_EQ(validate(code, 1), "");
}

TEST(IsaValidate, RejectsEmptyFunction) {
  EXPECT_NE(validate({}, 1), "");
}

TEST(IsaValidate, RejectsBranchOutOfRange) {
  std::vector<Instr> code{
      Instr{.op = Op::kJmp, .imm = 5},
      Instr{.op = Op::kRet},
  };
  EXPECT_NE(validate(code, 1), "");
}

TEST(IsaValidate, RejectsCallToUnknownFunction) {
  std::vector<Instr> code{
      Instr{.op = Op::kCall, .imm = 3},
      Instr{.op = Op::kRet},
  };
  EXPECT_NE(validate(code, 2), "");
  EXPECT_EQ(validate(code, 4), "");
}

TEST(IsaValidate, RejectsBadMemorySize) {
  std::vector<Instr> code{
      Instr{.op = Op::kLoad, .rd = 1, .ra = 2, .size = 3, .imm = 0},
      Instr{.op = Op::kRet},
  };
  EXPECT_NE(validate(code, 1), "");
}

TEST(IsaValidate, EnforcesFixedFpSizes) {
  std::vector<Instr> code{
      Instr{.op = Op::kFLoad, .rd = 1, .ra = 2, .size = 4, .imm = 0},
      Instr{.op = Op::kRet},
  };
  EXPECT_NE(validate(code, 1), "");
  code[0].size = 8;
  EXPECT_EQ(validate(code, 1), "");
}

TEST(IsaValidate, MovsSizes) {
  std::vector<Instr> code{
      Instr{.op = Op::kMovs, .rd = 1, .ra = 2, .size = 64},
      Instr{.op = Op::kRet},
  };
  EXPECT_EQ(validate(code, 1), "");
  code[0].size = 4;
  EXPECT_NE(validate(code, 1), "");
  code[0].size = 128;  // overflows uint8 to 128; not an allowed size
  EXPECT_NE(validate(code, 1), "");
}

TEST(IsaValidate, RequiresTerminator) {
  std::vector<Instr> code{Instr{.op = Op::kAdd, .rd = 1, .ra = 1, .rb = 1}};
  EXPECT_NE(validate(code, 1), "");
}

TEST(IsaDisassemble, ReadableOutput) {
  Instr load{.op = Op::kLoad, .rd = 3, .ra = 31, .size = 8, .imm = 16};
  EXPECT_EQ(disassemble(load), "load8 r3, [sp+16]");
  Instr add{.op = Op::kAdd, .rd = 1, .ra = 2, .rb = 3};
  EXPECT_EQ(disassemble(add), "add r1, r2, r3");
  Instr movs{.op = Op::kMovs, .rd = 4, .ra = 5, .size = 64};
  EXPECT_EQ(disassemble(movs), "movs64 [r4], [r5]");
  Instr pred{.op = Op::kMov, .rd = 1, .ra = 2,
             .flags = kFlagPredicated, .pr = 9};
  EXPECT_EQ(disassemble(pred), "mov r1, r2  ?r9");
}

TEST(IsaDisassemble, WholeFunctionNumbersLines) {
  std::vector<Instr> code{
      Instr{.op = Op::kNop},
      Instr{.op = Op::kRet},
  };
  const std::string listing = disassemble(code);
  EXPECT_NE(listing.find("0:\tnop"), std::string::npos);
  EXPECT_NE(listing.find("1:\tret"), std::string::npos);
}

}  // namespace
}  // namespace tq::isa
