// Call-topology invariants of the wfs application.
//
// The paper's Table I call counts encode the application's structure:
//   fft1d  = 2 per chunk + 2 (from ffw)        (984 ~ 2x493 - 2 in the paper)
//   bitrev = fft_size per fft1d call           (2'015'232 = 984 x 2048)
//   cadd = cmult = chunks x fft_size           (1'009'664 = 493 x 2048)
//   zeroRealVec ~ chunks x speakers            (15'782 ~ 493 x 32)
//   calculateGainPQ ~ move_chunks x speakers   (6'994 ~ 236 x ~32)
//   vsmult2d = calculateGainPQ + move_chunks   (7'026 ~ 6'994 + 236*)
//   wav_load = wav_store = ldint = 1
//   per-chunk kernels = chunks
//
// These relations must hold for *any* configuration — they are parameterised
// properties of the reimplementation, checked against both gsim's exact call
// counts and the static program structure.
#include <gtest/gtest.h>

#include "gprofsim/gprof_tool.hpp"
#include "minipin/minipin.hpp"
#include "wfs/runner.hpp"

namespace tq::wfs {
namespace {

class WfsTopology : public ::testing::TestWithParam<WfsConfig> {};

TEST_P(WfsTopology, CallCountRelationsHold) {
  const WfsConfig cfg = GetParam();
  WfsRun run = prepare_wfs_run(cfg);
  pin::Engine engine(run.artifacts.program, run.host);
  gprof::GprofTool tool(engine, {});
  engine.run();
  auto calls = [&](const char* name) {
    return tool.calls(*run.artifacts.program.find(name));
  };
  const std::uint64_t K = cfg.chunks;
  const std::uint64_t N = cfg.fft_size;
  const std::uint64_t NS = cfg.speakers;
  const std::uint64_t M = cfg.move_chunks;

  EXPECT_EQ(calls("ldint"), 1u);
  EXPECT_EQ(calls("ffw"), 2u);
  EXPECT_EQ(calls("wav_load"), 1u);
  EXPECT_EQ(calls("wav_store"), 1u);
  // fft1d: forward+inverse per chunk, plus one per ffw.
  EXPECT_EQ(calls("fft1d"), 2 * K + 2);
  // perm: once per fft.
  EXPECT_EQ(calls("perm"), calls("fft1d"));
  // bitrev: once per element per fft.
  EXPECT_EQ(calls("bitrev"), calls("fft1d") * N);
  // cadd/cmult: once per bin per chunk, and equal to each other.
  EXPECT_EQ(calls("cmult"), K * N);
  EXPECT_EQ(calls("cadd"), calls("cmult"));
  // per-chunk kernels.
  for (const char* name : {"AudioIo_getFrames", "Filter_process_pre_",
                           "Filter_process", "DelayLine_processChunk",
                           "AudioIo_setFrames", "c2r"}) {
    EXPECT_EQ(calls(name), K) << name;
  }
  // r2c: per chunk plus two from ffw; zeroCplxVec identical.
  EXPECT_EQ(calls("r2c"), K + 2);
  EXPECT_EQ(calls("zeroCplxVec"), K + 2);
  // zeroRealVec: per speaker per chunk.
  EXPECT_EQ(calls("zeroRealVec"), K * NS);
  // propagation kernels: while the source moves.
  EXPECT_EQ(calls("PrimarySource_deriveTP"), M);
  EXPECT_EQ(calls("calculateGainPQ"), M * NS);
  EXPECT_EQ(calls("vsmult2d"), M * NS + M);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, WfsTopology,
    ::testing::Values(WfsConfig::tiny(),
                      [] {
                        WfsConfig cfg = WfsConfig::tiny();
                        cfg.chunks = 10;
                        cfg.move_chunks = 7;
                        cfg.speakers = 5;
                        return cfg;
                      }(),
                      [] {
                        WfsConfig cfg = WfsConfig::tiny();
                        cfg.fft_size = 256;
                        cfg.chunk_size = 128;
                        cfg.move_chunks = 0;
                        return cfg;
                      }()),
    [](const ::testing::TestParamInfo<WfsConfig>& info) {
      return "chunks" + std::to_string(info.param.chunks) + "_spk" +
             std::to_string(info.param.speakers) + "_fft" +
             std::to_string(info.param.fft_size);
    });

TEST(WfsTopology, LibraryRoutinesAreLibraryImage) {
  const WfsArtifacts art = build_wfs_program(WfsConfig::tiny());
  for (const char* name : {"libc_read", "libc_write", "libc_seek"}) {
    const auto id = art.program.find(name);
    ASSERT_TRUE(id.has_value()) << name;
    EXPECT_EQ(art.program.function(*id).image, vm::ImageKind::kLibrary) << name;
  }
  // All Table I kernels are main image.
  for (const char* name : {"wav_store", "fft1d", "bitrev", "AudioIo_setFrames"}) {
    EXPECT_EQ(art.program.function(*art.program.find(name)).image,
              vm::ImageKind::kMain)
        << name;
  }
}

TEST(WfsTopology, AllTableOneKernelsExist) {
  const WfsArtifacts art = build_wfs_program(WfsConfig::tiny());
  for (const char* name :
       {"wav_store", "fft1d", "DelayLine_processChunk", "bitrev", "zeroRealVec",
        "AudioIo_setFrames", "perm", "cadd", "cmult", "Filter_process",
        "wav_load", "Filter_process_pre_", "zeroCplxVec", "r2c", "c2r",
        "AudioIo_getFrames", "ffw", "vsmult2d", "calculateGainPQ",
        "PrimarySource_deriveTP", "ldint"}) {
    EXPECT_TRUE(art.program.find(name).has_value()) << name;
  }
}

TEST(WfsTopology, ProgramSerializesAndReloads) {
  // The wfs image survives a TQIM round trip and still runs correctly.
  const WfsConfig cfg = WfsConfig::tiny();
  WfsRun run = prepare_wfs_run(cfg);
  const auto bytes = run.artifacts.program.serialize();
  const vm::Program reloaded = vm::Program::deserialize(bytes);
  vm::HostEnv host;
  host.attach_input(wav_encode(run.input));
  host.create_output();
  vm::Machine machine(reloaded, host);
  machine.run();
  const GoldenResult golden = run_golden(cfg, run.input);
  const WavData out = wav_decode(host.output(WfsArtifacts::kOutputFd));
  ASSERT_EQ(out.samples.size(), golden.output.size());
  EXPECT_EQ(out.samples, golden.output);
}

}  // namespace
}  // namespace tq::wfs
