// Deep-equality assertions over finished profiling tools, shared by the
// session differential sweep (session vs standalone) and the fault-injection
// suite (faulted prefix vs budget-truncated prefix). Each comparator walks
// every externally observable counter of its tool, so "equal" means the two
// runs are indistinguishable to any report.
#pragma once

#include <gtest/gtest.h>

#include "gprofsim/gprof_tool.hpp"
#include "quad/quad_tool.hpp"
#include "tquad/tquad_tool.hpp"

namespace tq::testutil {

inline void expect_tquad_equal(const tquad::TQuadTool& a, const tquad::TQuadTool& b) {
  ASSERT_EQ(a.kernel_count(), b.kernel_count());
  EXPECT_EQ(a.total_retired(), b.total_retired());
  EXPECT_EQ(a.unattributed_instructions(), b.unattributed_instructions());
  EXPECT_EQ(a.bandwidth().max_slice(), b.bandwidth().max_slice());
  for (std::uint32_t k = 0; k < a.kernel_count(); ++k) {
    SCOPED_TRACE("kernel " + a.kernel_name(k));
    EXPECT_EQ(a.activity(k).calls, b.activity(k).calls);
    EXPECT_EQ(a.activity(k).instructions, b.activity(k).instructions);
    const auto& ka = a.bandwidth().kernel(k);
    const auto& kb = b.bandwidth().kernel(k);
    EXPECT_EQ(ka.totals.read_incl, kb.totals.read_incl);
    EXPECT_EQ(ka.totals.read_excl, kb.totals.read_excl);
    EXPECT_EQ(ka.totals.write_incl, kb.totals.write_incl);
    EXPECT_EQ(ka.totals.write_excl, kb.totals.write_excl);
    ASSERT_EQ(ka.series.size(), kb.series.size());
    for (std::size_t i = 0; i < ka.series.size(); ++i) {
      EXPECT_EQ(ka.series[i].slice, kb.series[i].slice);
      EXPECT_EQ(ka.series[i].counters.read_incl, kb.series[i].counters.read_incl);
      EXPECT_EQ(ka.series[i].counters.read_excl, kb.series[i].counters.read_excl);
      EXPECT_EQ(ka.series[i].counters.write_incl, kb.series[i].counters.write_incl);
      EXPECT_EQ(ka.series[i].counters.write_excl, kb.series[i].counters.write_excl);
    }
  }
}

inline void expect_quad_equal(const quad::QuadTool& a, const quad::QuadTool& b) {
  ASSERT_EQ(a.kernel_count(), b.kernel_count());
  const quad::CostModel model;
  for (std::uint32_t k = 0; k < a.kernel_count(); ++k) {
    SCOPED_TRACE("kernel " + a.kernel_name(k));
    EXPECT_EQ(a.reported(k), b.reported(k));
    EXPECT_EQ(a.instructions(k), b.instructions(k));
    EXPECT_EQ(a.calls(k), b.calls(k));
    // instrumented_cost covers the private mem_refs_/global_* counters too.
    EXPECT_EQ(a.instrumented_cost(k, model), b.instrumented_cost(k, model));
    for (const bool incl : {false, true}) {
      const auto& ca = incl ? a.including_stack(k) : a.excluding_stack(k);
      const auto& cb = incl ? b.including_stack(k) : b.excluding_stack(k);
      EXPECT_EQ(ca.in_bytes, cb.in_bytes);
      EXPECT_EQ(ca.out_bytes, cb.out_bytes);
      EXPECT_EQ(ca.in_unma.count(), cb.in_unma.count());
      EXPECT_EQ(ca.out_unma.count(), cb.out_unma.count());
    }
  }
  const auto ba = a.bindings();
  const auto bb = b.bindings();
  ASSERT_EQ(ba.size(), bb.size());
  for (std::size_t i = 0; i < ba.size(); ++i) {
    EXPECT_EQ(ba[i].producer, bb[i].producer);
    EXPECT_EQ(ba[i].consumer, bb[i].consumer);
    EXPECT_EQ(ba[i].bytes, bb[i].bytes);
    EXPECT_EQ(ba[i].unma, bb[i].unma);
  }
}

inline void expect_gprof_equal(const gprof::GprofTool& a, const gprof::GprofTool& b) {
  ASSERT_EQ(a.kernel_count(), b.kernel_count());
  EXPECT_EQ(a.total_samples(), b.total_samples());
  EXPECT_EQ(a.total_retired(), b.total_retired());
  for (std::uint32_t k = 0; k < a.kernel_count(); ++k) {
    SCOPED_TRACE("kernel " + a.kernel_name(k));
    EXPECT_EQ(a.exact_self_instructions(k), b.exact_self_instructions(k));
    EXPECT_EQ(a.samples(k), b.samples(k));
    EXPECT_EQ(a.calls(k), b.calls(k));
    EXPECT_EQ(a.inclusive_instructions(k), b.inclusive_instructions(k));
  }
  const auto ea = a.call_graph();
  const auto eb = b.call_graph();
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].caller, eb[i].caller);
    EXPECT_EQ(ea[i].callee, eb[i].callee);
    EXPECT_EQ(ea[i].calls, eb[i].calls);
  }
}

}  // namespace tq::testutil
