#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "support/thread_pool.hpp"

namespace tq {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelForBlocks, CoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_blocks(pool, 0, 1000,
                      [&](std::uint64_t begin, std::uint64_t end, unsigned) {
                        for (std::uint64_t i = begin; i < end; ++i) {
                          hits[i].fetch_add(1, std::memory_order_relaxed);
                        }
                      });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForBlocks, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for_blocks(pool, 10, 10,
                      [&](std::uint64_t, std::uint64_t, unsigned) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForBlocks, SmallRangeFewerBlocksThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> blocks{0};
  std::atomic<std::uint64_t> total{0};
  parallel_for_blocks(pool, 0, 3,
                      [&](std::uint64_t begin, std::uint64_t end, unsigned) {
                        blocks.fetch_add(1);
                        total.fetch_add(end - begin);
                      });
  EXPECT_EQ(blocks.load(), 3);
  EXPECT_EQ(total.load(), 3u);
}

TEST(ParallelForBlocks, NonZeroOffsetRange) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> sum{0};
  parallel_for_blocks(pool, 100, 200,
                      [&](std::uint64_t begin, std::uint64_t end, unsigned) {
                        std::uint64_t local = 0;
                        for (std::uint64_t i = begin; i < end; ++i) local += i;
                        sum.fetch_add(local);
                      });
  std::uint64_t want = 0;
  for (std::uint64_t i = 100; i < 200; ++i) want += i;
  EXPECT_EQ(sum.load(), want);
}

}  // namespace
}  // namespace tq
