#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "support/spsc_ring.hpp"
#include "support/thread_pool.hpp"

namespace tq {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelForBlocks, CoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_blocks(pool, 0, 1000,
                      [&](std::uint64_t begin, std::uint64_t end, unsigned) {
                        for (std::uint64_t i = begin; i < end; ++i) {
                          hits[i].fetch_add(1, std::memory_order_relaxed);
                        }
                      });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForBlocks, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for_blocks(pool, 10, 10,
                      [&](std::uint64_t, std::uint64_t, unsigned) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForBlocks, SmallRangeFewerBlocksThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> blocks{0};
  std::atomic<std::uint64_t> total{0};
  parallel_for_blocks(pool, 0, 3,
                      [&](std::uint64_t begin, std::uint64_t end, unsigned) {
                        blocks.fetch_add(1);
                        total.fetch_add(end - begin);
                      });
  EXPECT_EQ(blocks.load(), 3);
  EXPECT_EQ(total.load(), 3u);
}

TEST(ParallelForBlocks, NonZeroOffsetRange) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> sum{0};
  parallel_for_blocks(pool, 100, 200,
                      [&](std::uint64_t begin, std::uint64_t end, unsigned) {
                        std::uint64_t local = 0;
                        for (std::uint64_t i = begin; i < end; ++i) local += i;
                        sum.fetch_add(local);
                      });
  std::uint64_t want = 0;
  for (std::uint64_t i = 100; i < 200; ++i) want += i;
  EXPECT_EQ(sum.load(), want);
}

TEST(SpscRing, FifoSingleThread) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  ring.push(1);
  ring.push(2);
  ring.push(3);
  int out = 0;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);
  ring.push(4);  // wraps around the storage
  for (int want : {2, 3, 4}) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, want);
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(ring.pushes(), 4u);
  EXPECT_EQ(ring.push_waits(), 0u);
}

TEST(SpscRing, DoneOnlyWhenClosedAndDrained) {
  SpscRing<int> ring(2);
  ring.push(7);
  EXPECT_FALSE(ring.done());
  ring.close();
  EXPECT_FALSE(ring.done());  // closed but not drained
  ring.close();               // idempotent
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(ring.done());
}

// Capacity 1 forces the producer through the backpressure wait on nearly
// every push; the consumer must still see every value exactly once, in order.
TEST(SpscRing, CapacityOneStressPreservesOrder) {
  static constexpr int kValues = 20000;
  SpscRing<int> ring(1);
  std::thread consumer([&ring] {
    int expected = 0;
    int out = 0;
    while (!ring.done()) {
      if (ring.try_pop(out)) {
        ASSERT_EQ(out, expected);
        ++expected;
      } else {
        std::this_thread::yield();
      }
    }
    EXPECT_EQ(expected, kValues);
  });
  for (int i = 0; i < kValues; ++i) ring.push(i);
  ring.close();
  consumer.join();
  EXPECT_EQ(ring.pushes(), static_cast<std::uint64_t>(kValues));
}

// Pushing after close is a defined outcome, not a crash: the value is
// dropped, push reports false, and the drop is counted so a teardown race
// shows up in the metrics rather than aborting the process.
TEST(SpscRing, PushAfterCloseDropsAndCounts) {
  SpscRing<int> ring(2);
  EXPECT_TRUE(ring.push(1));
  ring.close();
  EXPECT_FALSE(ring.push(2));
  EXPECT_FALSE(ring.push(3));
  EXPECT_EQ(ring.pushes(), 1u);
  EXPECT_EQ(ring.dropped_after_close(), 2u);
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);          // the accepted value survives
  EXPECT_FALSE(ring.try_pop(out));  // the dropped ones never landed
  EXPECT_TRUE(ring.done());
}

// A producer blocked on a full ring must wake when the ring is closed out
// from under it (the abort path) instead of waiting forever on space that
// will never come.
TEST(SpscRing, CloseWakesBlockedProducer) {
  SpscRing<int> ring(1);
  ASSERT_TRUE(ring.push(1));  // ring now full
  std::atomic<bool> returned{false};
  std::thread producer([&] {
    const bool accepted = ring.push(2);  // blocks: full and nobody pops
    EXPECT_FALSE(accepted);
    returned.store(true);
  });
  while (ring.push_waits() == 0) std::this_thread::yield();
  ring.close();
  producer.join();
  EXPECT_TRUE(returned.load());
  EXPECT_EQ(ring.dropped_after_close(), 1u);
}

TEST(SpscRing, StatsSnapshotTracksOccupancyHighWater) {
  SpscRing<int> ring(4);
  ring.push(1);
  ring.push(2);
  ring.push(3);
  int out = 0;
  ring.try_pop(out);
  ring.push(4);
  const auto stats = ring.stats();
  EXPECT_EQ(stats.pushes, 4u);
  EXPECT_EQ(stats.occupancy_high_water, 3u);
  EXPECT_EQ(stats.dropped_after_close, 0u);
}

TEST(SpscRing, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(2);
  ring.push(std::make_unique<int>(42));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

// The scan-then-sleep protocol: a worker that snapshots the epoch, finds all
// rings empty, and sleeps must be woken by a push that lands at any point
// after the snapshot — including between scan and sleep (the lost-wakeup
// window wait_past closes).
TEST(Doorbell, PushWakesSleepingWorker) {
  Doorbell bell;
  SpscRing<int> a(4);
  SpscRing<int> b(4);
  a.set_doorbell(&bell);
  b.set_doorbell(&bell);

  std::atomic<int> drained{0};
  std::thread worker([&] {
    for (;;) {
      const std::uint64_t seen = bell.epoch();
      bool progress = false;
      int out = 0;
      while (a.try_pop(out)) {
        drained.fetch_add(out);
        progress = true;
      }
      while (b.try_pop(out)) {
        drained.fetch_add(out);
        progress = true;
      }
      if (a.done() && b.done()) return;
      if (!progress) bell.wait_past(seen);
    }
  });

  for (int i = 1; i <= 50; ++i) {
    a.push(i);
    b.push(100 + i);
  }
  a.close();
  b.close();
  worker.join();
  // 1+..+50 plus 101+..+150.
  EXPECT_EQ(drained.load(), 50 * 51 / 2 + 100 * 50 + 50 * 51 / 2);
}

TEST(Doorbell, CloseRingsTheBell) {
  Doorbell bell;
  SpscRing<int> ring(1);
  ring.set_doorbell(&bell);
  const std::uint64_t before = bell.epoch();
  std::thread waiter([&] { bell.wait_past(before); });
  ring.close();  // close on an empty ring must still wake sleepers
  waiter.join();
  EXPECT_GT(bell.epoch(), before);
}

// The Doorbell fast path: with no waiter registered, ring() and epoch() are
// plain atomic operations. Observable contract: every ring() advances the
// epoch exactly once, and a wait_past() whose snapshot is already stale
// returns without sleeping.
TEST(Doorbell, RingAdvancesEpochWithoutWaiters) {
  Doorbell bell;
  const std::uint64_t start = bell.epoch();
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    bell.ring();
    EXPECT_EQ(bell.epoch(), start + i);
  }
  bell.wait_past(start);  // stale snapshot: must return immediately
}

// Hammer ring() against a repeatedly sleeping waiter to stress the
// waiter-registration window of the eventcount protocol (run under TSan in
// tier1). A lost wakeup hangs this test; the trailing ring-until-done loop
// guarantees the waiter's final sleep is always released.
TEST(Doorbell, RingStressNeverLosesWakeups) {
  Doorbell bell;
  std::atomic<bool> stop{false};
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> wakeups{0};
  std::thread waiter([&] {
    while (!stop.load()) {
      const std::uint64_t seen = bell.epoch();
      bell.wait_past(seen);
      wakeups.fetch_add(1);
    }
    done.store(true);
  });
  // Ring until the waiter has observably cycled through wait_past() many
  // times (a fixed ring count could finish before the thread even starts).
  while (wakeups.load() < 1000) bell.ring();
  stop.store(true);
  while (!done.load()) {
    bell.ring();
    std::this_thread::yield();
  }
  waiter.join();
  EXPECT_GT(wakeups.load(), 0u);
}

// PushFeedback reports what each push observed — the empty->non-empty edge
// and post-insert depth feed the lanes' adaptive batch controller — and
// try_push is the non-blocking variant the freelists use: a full ring
// refuses without counting a drop, a closed ring drops and counts.
TEST(SpscRing, PushFeedbackAndTryPush) {
  SpscRing<int> ring(4);
  SpscRing<int>::PushFeedback feedback;
  ASSERT_TRUE(ring.push(1, &feedback));
  EXPECT_TRUE(feedback.was_empty);
  EXPECT_EQ(feedback.depth_after, 1u);
  EXPECT_FALSE(feedback.stalled);
  ASSERT_TRUE(ring.push(2, &feedback));
  EXPECT_FALSE(feedback.was_empty);
  EXPECT_EQ(feedback.depth_after, 2u);
  ASSERT_TRUE(ring.try_push(3));
  ASSERT_TRUE(ring.try_push(4));
  EXPECT_FALSE(ring.try_push(5));  // full: refused, not a drop
  EXPECT_EQ(ring.stats().dropped_after_close, 0u);
  ring.close();
  EXPECT_FALSE(ring.try_push(6));  // closed: dropped and counted
  EXPECT_EQ(ring.stats().dropped_after_close, 1u);
}

// Capacity auto-tune: the first full-ring encounter blocks (one stall is
// noise), but once a stall has been observed further full encounters grow
// the ring — doubling up to the limit — instead of parking the producer.
// FIFO order must survive the circular-buffer re-lay.
TEST(SpscRing, CapacityGrowsAfterFirstStall) {
  SpscRing<int> ring(1);
  ring.set_capacity_limit(4);
  ASSERT_TRUE(ring.push(1));  // full at the starting capacity
  std::thread consumer([&] {
    while (ring.push_waits() == 0) std::this_thread::yield();
    int out = 0;
    EXPECT_TRUE(ring.try_pop(out));
  });
  ASSERT_TRUE(ring.push(2));  // stalls until the consumer frees the slot
  consumer.join();
  ASSERT_TRUE(ring.push(3));  // full again, stall on record: grows 1 -> 2
  ASSERT_TRUE(ring.push(4));  // full again: grows 2 -> 4
  const auto stats = ring.stats();
  EXPECT_EQ(stats.capacity_grows, 2u);
  EXPECT_EQ(stats.capacity, 4u);
  EXPECT_EQ(stats.push_waits, 1u);
  int out = 0;
  for (int expected = 2; expected <= 4; ++expected) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, expected);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

// A limit at the constructed capacity keeps the ring fixed: every full
// encounter blocks, forever, and the wait accounting reflects each episode.
TEST(SpscRing, WaitAccountingAccumulatesAcrossStalls) {
  SpscRing<int> ring(1);
  ASSERT_TRUE(ring.push(0));
  for (std::uint64_t i = 1; i <= 3; ++i) {
    std::thread consumer([&] {
      while (ring.push_waits() < i) std::this_thread::yield();
      // Measurable stall: the producer is registered asleep by now.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      int out = 0;
      EXPECT_TRUE(ring.try_pop(out));
    });
    ASSERT_TRUE(ring.push(static_cast<int>(i)));
    consumer.join();
  }
  const auto stats = ring.stats();
  EXPECT_EQ(stats.push_waits, 3u);
  EXPECT_GE(stats.stall_ns, 1'000'000u);  // three >=5 ms sleeps behind it
  EXPECT_EQ(stats.occupancy_high_water, 1u);
  EXPECT_EQ(stats.capacity_grows, 0u);
}

// occupancy_high_water reflects real queue depth even when close races the
// producer: accepted pushes raise it, dropped ones don't.
TEST(SpscRing, HighWaterIgnoresDroppedPushes) {
  SpscRing<int> ring(3);
  ASSERT_TRUE(ring.push(1));
  ASSERT_TRUE(ring.push(2));
  ring.close();
  EXPECT_FALSE(ring.push(3));
  const auto stats = ring.stats();
  EXPECT_EQ(stats.occupancy_high_water, 2u);
  EXPECT_EQ(stats.dropped_after_close, 1u);
  EXPECT_EQ(stats.pushes, 2u);
  EXPECT_EQ(stats.push_waits, 0u);
}

}  // namespace
}  // namespace tq
