// Property: the text assembler parses the disassembler's output back to the
// identical instruction, for the mnemonic families whose textual form is
// lossless (everything except call targets, which disassemble as raw ids,
// and f64 immediates, which print at reduced precision).
#include <gtest/gtest.h>

#include "gasm/asm_parser.hpp"
#include "gasm/builder.hpp"
#include "isa/isa.hpp"
#include "support/rng.hpp"
#include "vm/machine.hpp"

namespace tq::gasm {
namespace {

isa::Instr random_roundtrippable(SplitMix64& rng) {
  using isa::Op;
  static const Op kOps[] = {
      Op::kNop,   Op::kAdd,   Op::kSub,  Op::kMul,   Op::kDivS,  Op::kRemS,
      Op::kAnd,   Op::kOr,    Op::kXor,  Op::kShl,   Op::kShrL,  Op::kShrA,
      Op::kSltS,  Op::kSltU,  Op::kSeq,  Op::kAddI,  Op::kMulI,  Op::kAndI,
      Op::kOrI,   Op::kXorI,  Op::kShlI, Op::kShrLI, Op::kShrAI, Op::kSltSI,
      Op::kMovI,  Op::kMov,   Op::kFAdd, Op::kFSub,  Op::kFMul,  Op::kFDiv,
      Op::kFNeg,  Op::kFAbs,  Op::kFSqrt, Op::kFSin, Op::kFCos,  Op::kFMov,
      Op::kFMin,  Op::kFMax,  Op::kFCmpLt, Op::kFCmpLe, Op::kFCmpEq,
      Op::kI2F,   Op::kF2I,   Op::kLoad, Op::kLoadS, Op::kStore, Op::kFLoad,
      Op::kFStore, Op::kFLoad4, Op::kFStore4, Op::kPrefetch, Op::kMovs,
      Op::kRet,
  };
  isa::Instr ins;
  ins.op = kOps[rng.next_below(sizeof kOps / sizeof kOps[0])];
  ins.rd = static_cast<std::uint8_t>(rng.next_below(32));
  ins.ra = static_cast<std::uint8_t>(rng.next_below(32));
  ins.rb = static_cast<std::uint8_t>(rng.next_below(32));
  ins.imm = static_cast<std::int64_t>(rng.next() >> 20) - (1ll << 42);
  if (isa::references_memory(ins.op) && !isa::is_ret(ins.op)) {
    if (ins.op == isa::Op::kMovs) {
      ins.size = static_cast<std::uint8_t>(8u << rng.next_below(4));
      ins.imm = 0;  // movs takes no displacement
    } else if (ins.op == isa::Op::kFLoad || ins.op == isa::Op::kFStore) {
      ins.size = 8;
    } else if (ins.op == isa::Op::kFLoad4 || ins.op == isa::Op::kFStore4) {
      ins.size = 4;
    } else {
      ins.size = static_cast<std::uint8_t>(1u << rng.next_below(4));
    }
  }
  if (rng.next_below(6) == 0 && ins.op != isa::Op::kNop &&
      ins.op != isa::Op::kRet) {
    ins.flags |= isa::kFlagPredicated;
    ins.pr = static_cast<std::uint8_t>(rng.next_below(32));
  }
  return ins;
}

/// Normalise fields the textual form legitimately does not carry.
isa::Instr normalized(isa::Instr ins) {
  using isa::Op;
  switch (ins.op) {
    case Op::kNop:
    case Op::kRet:
      ins.rd = ins.ra = ins.rb = 0;
      ins.size = 0;
      ins.imm = 0;
      break;
    case Op::kMov:
    case Op::kI2F:
    case Op::kF2I:
    case Op::kFNeg:
    case Op::kFAbs:
    case Op::kFSqrt:
    case Op::kFSin:
    case Op::kFCos:
    case Op::kFMov:
      ins.rb = 0;
      ins.imm = 0;
      ins.size = 0;
      break;
    case Op::kMovI:
      ins.ra = ins.rb = 0;
      ins.size = 0;
      break;
    case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kDivS:
    case Op::kRemS: case Op::kAnd: case Op::kOr: case Op::kXor:
    case Op::kShl: case Op::kShrL: case Op::kShrA: case Op::kSltS:
    case Op::kSltU: case Op::kSeq:
    case Op::kFAdd: case Op::kFSub: case Op::kFMul: case Op::kFDiv:
    case Op::kFMin: case Op::kFMax:
    case Op::kFCmpLt: case Op::kFCmpLe: case Op::kFCmpEq:
      ins.imm = 0;
      ins.size = 0;
      break;
    case Op::kAddI: case Op::kMulI: case Op::kAndI: case Op::kOrI:
    case Op::kXorI: case Op::kShlI: case Op::kShrLI: case Op::kShrAI:
    case Op::kSltSI:
      ins.rb = 0;
      ins.size = 0;
      break;
    case Op::kLoad: case Op::kLoadS: case Op::kFLoad: case Op::kFLoad4:
      ins.rb = 0;
      break;
    case Op::kStore: case Op::kFStore: case Op::kFStore4:
      ins.rd = 0;
      break;
    case Op::kPrefetch:
      ins.rd = ins.rb = 0;
      break;
    case Op::kMovs:
      ins.rb = 0;
      ins.imm = 0;
      break;
    default:
      break;
  }
  if (!ins.predicated()) ins.pr = 0;
  return ins;
}

class AsmRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AsmRoundTrip, DisassembleThenAssembleIsIdentity) {
  SplitMix64 rng(GetParam());
  for (int round = 0; round < 300; ++round) {
    const isa::Instr original = random_roundtrippable(rng);
    const std::string text = isa::disassemble(original);
    const std::string source = ".func main\n  " + text + "\n  halt\n";
    vm::Program program;
    ASSERT_NO_THROW(program = assemble(source))
        << "text: '" << text << "' seed " << GetParam() << " round " << round;
    const isa::Instr& parsed = program.function(0).code[0];
    EXPECT_EQ(parsed, normalized(original))
        << "text: '" << text << "'\nparsed: " << isa::disassemble(parsed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsmRoundTrip, ::testing::Values(9, 19, 29));

TEST(MachineTrapExtra, StackOverflowOnRunawayRecursion) {
  ProgramBuilder prog;
  auto& rec = prog.begin_function("rec");
  rec.call("rec");  // no base case
  rec.ret();
  auto& main_fn = prog.begin_function("main");
  main_fn.call("rec");
  main_fn.halt();
  const vm::Program program = prog.build("main");
  vm::HostEnv host;
  vm::Machine machine(program, host);
  const vm::RunOutcome outcome = machine.run();
  ASSERT_EQ(outcome.status, vm::RunStatus::kTrapped);
  EXPECT_NE(outcome.trap_kind.find("stack overflow"), std::string::npos);
}

}  // namespace
}  // namespace tq::gasm
