// Replay-vs-live differential for the session layer: a ProfileSession fed
// from a recorded TQTR trace (v1 or v2) must reproduce the live tool state.
//
// tQUAD and gprofsim replay exactly. QUAD replays exactly for every counter
// except the private per-kernel memory-reference count used by the Table III
// cost model: predicated-off memory instructions leave no trace records, so
// their operand widths cannot be reconstructed offline (see docs/FORMATS.md).
// The trace recorder itself round-trips: replaying a trace through a fresh
// recorder regenerates the input byte-for-byte.
#include <gtest/gtest.h>

#include "gprofsim/gprof_tool.hpp"
#include "quad/quad_tool.hpp"
#include "session/session.hpp"
#include "trace/trace.hpp"
#include "tquad/tquad_tool.hpp"
#include "wfs/runner.hpp"
#include "workloads/workloads.hpp"

namespace tq::session {
namespace {

constexpr std::uint64_t kSlice = 1000;
constexpr std::uint64_t kSamplePeriod = 700;

struct ToolBundle {
  tquad::TQuadTool tquad;
  gprof::GprofTool gprof;
  quad::QuadTool quad;

  explicit ToolBundle(const vm::Program& program)
      : tquad(program, tquad::Options{.slice_interval = kSlice}),
        gprof(program,
              [] {
                gprof::Options o;
                o.sample_period = kSamplePeriod;
                return o;
              }()),
        quad(program, quad::QuadOptions{}) {}

  void attach(ProfileSession& session) {
    session.add_consumer(tquad);
    session.add_consumer(gprof);
    session.add_consumer(quad);
  }
};

void expect_replay_matches_live(const ToolBundle& live, const ToolBundle& replay) {
  // tQUAD: complete per-slice equality.
  ASSERT_EQ(live.tquad.kernel_count(), replay.tquad.kernel_count());
  EXPECT_EQ(live.tquad.total_retired(), replay.tquad.total_retired());
  EXPECT_EQ(live.tquad.unattributed_instructions(),
            replay.tquad.unattributed_instructions());
  for (std::uint32_t k = 0; k < live.tquad.kernel_count(); ++k) {
    SCOPED_TRACE("kernel " + live.tquad.kernel_name(k));
    EXPECT_EQ(live.tquad.activity(k).calls, replay.tquad.activity(k).calls);
    EXPECT_EQ(live.tquad.activity(k).instructions,
              replay.tquad.activity(k).instructions);
    const auto& ka = live.tquad.bandwidth().kernel(k);
    const auto& kb = replay.tquad.bandwidth().kernel(k);
    ASSERT_EQ(ka.series.size(), kb.series.size());
    for (std::size_t i = 0; i < ka.series.size(); ++i) {
      EXPECT_EQ(ka.series[i].slice, kb.series[i].slice);
      EXPECT_EQ(ka.series[i].counters.read_incl, kb.series[i].counters.read_incl);
      EXPECT_EQ(ka.series[i].counters.read_excl, kb.series[i].counters.read_excl);
      EXPECT_EQ(ka.series[i].counters.write_incl, kb.series[i].counters.write_incl);
      EXPECT_EQ(ka.series[i].counters.write_excl, kb.series[i].counters.write_excl);
    }
  }

  // gprofsim: exact counts, samples, call graph, inclusive windows.
  EXPECT_EQ(live.gprof.total_samples(), replay.gprof.total_samples());
  EXPECT_EQ(live.gprof.total_retired(), replay.gprof.total_retired());
  for (std::uint32_t k = 0; k < live.gprof.kernel_count(); ++k) {
    SCOPED_TRACE("kernel " + live.gprof.kernel_name(k));
    EXPECT_EQ(live.gprof.exact_self_instructions(k),
              replay.gprof.exact_self_instructions(k));
    EXPECT_EQ(live.gprof.samples(k), replay.gprof.samples(k));
    EXPECT_EQ(live.gprof.calls(k), replay.gprof.calls(k));
    EXPECT_EQ(live.gprof.inclusive_instructions(k),
              replay.gprof.inclusive_instructions(k));
  }
  const auto ea = live.gprof.call_graph();
  const auto eb = replay.gprof.call_graph();
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].caller, eb[i].caller);
    EXPECT_EQ(ea[i].callee, eb[i].callee);
    EXPECT_EQ(ea[i].calls, eb[i].calls);
  }

  // QUAD: everything except the cost model's memory-reference counter (the
  // documented predicated-off divergence).
  for (std::uint32_t k = 0; k < live.quad.kernel_count(); ++k) {
    SCOPED_TRACE("kernel " + live.quad.kernel_name(k));
    EXPECT_EQ(live.quad.instructions(k), replay.quad.instructions(k));
    EXPECT_EQ(live.quad.calls(k), replay.quad.calls(k));
    for (const bool incl : {false, true}) {
      const auto& ca =
          incl ? live.quad.including_stack(k) : live.quad.excluding_stack(k);
      const auto& cb =
          incl ? replay.quad.including_stack(k) : replay.quad.excluding_stack(k);
      EXPECT_EQ(ca.in_bytes, cb.in_bytes);
      EXPECT_EQ(ca.out_bytes, cb.out_bytes);
      EXPECT_EQ(ca.in_unma.count(), cb.in_unma.count());
      EXPECT_EQ(ca.out_unma.count(), cb.out_unma.count());
    }
  }
  const auto ba = live.quad.bindings();
  const auto bb = replay.quad.bindings();
  ASSERT_EQ(ba.size(), bb.size());
  for (std::size_t i = 0; i < ba.size(); ++i) {
    EXPECT_EQ(ba[i].producer, bb[i].producer);
    EXPECT_EQ(ba[i].consumer, bb[i].consumer);
    EXPECT_EQ(ba[i].bytes, bb[i].bytes);
    EXPECT_EQ(ba[i].unma, bb[i].unma);
  }
}

void check_program(const vm::Program& program, vm::HostEnv& host) {
  // Live session: tools plus both recorder formats in one pass.
  ProfileSession live_session(program);
  ToolBundle live(program);
  trace::TraceRecorder rec_v1(program, tquad::LibraryPolicy::kExclude,
                              trace::TraceFormat::kV1);
  trace::TraceRecorder rec_v2(program, tquad::LibraryPolicy::kExclude,
                              trace::TraceFormat::kV2);
  live.attach(live_session);
  live_session.add_consumer(rec_v1);
  live_session.add_consumer(rec_v2);
  const std::uint64_t live_retired = live_session.run_live(host).retired;

  const auto v1_bytes = rec_v1.take_encoded();
  const auto v2_bytes = rec_v2.take_encoded();

  for (const auto* bytes : {&v1_bytes, &v2_bytes}) {
    ProfileSession replay_session(program);
    ToolBundle replayed(program);
    trace::TraceRecorder re_recorder(program, tquad::LibraryPolicy::kExclude,
                                     trace::TraceFormat::kV2);
    replayed.attach(replay_session);
    replay_session.add_consumer(re_recorder);
    EXPECT_EQ(replay_session.replay(*bytes).retired, live_retired);
    expect_replay_matches_live(live, replayed);
    // Round trip: the replay-driven recording equals the live v2 recording.
    EXPECT_EQ(re_recorder.take_encoded(), v2_bytes);
  }
}

void check_workload(const vm::Program& program) {
  vm::HostEnv host;
  check_program(program, host);
}

TEST(SessionReplay, Stream) {
  check_workload(workloads::build_stream(128, 1).program);
}

TEST(SessionReplay, MatmulNaive) {
  check_workload(workloads::build_matmul(10, false).program);
}

TEST(SessionReplay, MatmulTiled) {
  check_workload(workloads::build_matmul(12, true, 4).program);
}

TEST(SessionReplay, Chase) {
  check_workload(workloads::build_chase(64, 400).program);
}

TEST(SessionReplay, Histogram) {
  check_workload(workloads::build_histogram(32, 800).program);
}

// wfs contains the repo's one predicated memory instruction, so it proves
// the replay path handles record-less ticks, and its libc routines exercise
// untracked-function replay.
TEST(SessionReplay, WfsPipeline) {
  wfs::WfsRun run = wfs::prepare_wfs_run(wfs::WfsConfig::tiny());
  check_program(run.artifacts.program, run.host);
}

}  // namespace
}  // namespace tq::session
