// Trace record/replay: equivalence with online analysis, serialisation, and
// parallel offline aggregation.
#include <gtest/gtest.h>

#include "gasm/builder.hpp"
#include "minipin/minipin.hpp"
#include "support/thread_pool.hpp"
#include "trace/trace.hpp"
#include "tquad/tquad_tool.hpp"
#include "wfs/runner.hpp"

namespace tq::trace {
namespace {

using gasm::ProgramBuilder;
using gasm::R;
using gasm::SP;

vm::Program make_mixed_program() {
  ProgramBuilder prog;
  const auto buf = prog.alloc_global("buf", 2048);
  auto& writer = prog.begin_function("writer");
  writer.movi(R{1}, static_cast<std::int64_t>(buf));
  writer.count_loop_imm(R{2}, 0, 200, [&] {
    writer.andi(R{3}, R{2}, 255);
    writer.shli(R{3}, R{3}, 3);
    writer.add(R{3}, R{3}, R{1});
    writer.store(R{3}, 0, R{2}, 8);
  });
  writer.ret();
  auto& stacker = prog.begin_function("stacker");
  stacker.enter(32);
  stacker.count_loop_imm(R{2}, 0, 50, [&] {
    stacker.store(SP, 8, R{2}, 8);
    stacker.load(R{3}, SP, 8, 8);
  });
  stacker.leave(32);
  stacker.ret();
  auto& main_fn = prog.begin_function("main");
  main_fn.count_loop_imm(R{28}, 0, 5, [&] {
    main_fn.call("writer");
    main_fn.call("stacker");
  });
  main_fn.halt();
  return prog.build("main");
}

Trace record_trace(const vm::Program& program) {
  vm::HostEnv host;
  TraceRecorder recorder(program);
  vm::Machine machine(program, host);
  machine.run(&recorder);
  return recorder.take();
}

TEST(TraceRecorder, CapturesMemoryAndControlEvents) {
  const vm::Program program = make_mixed_program();
  const Trace trace = record_trace(program);
  EXPECT_GT(trace.total_retired, 0u);
  EXPECT_EQ(trace.kernel_count, program.functions().size());
  std::size_t reads = 0, writes = 0, enters = 0, rets = 0;
  for (const Record& record : trace.records) {
    switch (record.kind) {
      case EventKind::kRead: ++reads; break;
      case EventKind::kWrite: ++writes; break;
      case EventKind::kEnter: ++enters; break;
      case EventKind::kRet: ++rets; break;
    }
  }
  EXPECT_EQ(enters, 1u + 5u + 5u);  // main + 5x writer + 5x stacker
  EXPECT_EQ(rets, 10u);
  EXPECT_GT(reads, 250u);   // stacker loads + ret pops
  EXPECT_GT(writes, 1000u);  // writer stores + stacker stores + call pushes
  // retired values are non-decreasing.
  for (std::size_t i = 1; i < trace.records.size(); ++i) {
    EXPECT_GE(trace.records[i].retired, trace.records[i - 1].retired);
  }
}

TEST(TraceRecorder, StackClassificationMatchesOnlineTool) {
  const vm::Program program = make_mixed_program();
  const Trace trace = record_trace(program);
  const auto stacker = *program.find("stacker");
  std::uint64_t stack_bytes = 0, global_bytes = 0;
  for (const Record& record : trace.records) {
    if (record.kernel != stacker || record.kind != EventKind::kWrite) continue;
    (record.flags & kFlagStackArea ? stack_bytes : global_bytes) += record.size;
  }
  EXPECT_EQ(stack_bytes, 5u * 50u * 8u);
  EXPECT_EQ(global_bytes, 0u);
}

TEST(TraceSerialization, RoundTrip) {
  const Trace trace = record_trace(make_mixed_program());
  const auto bytes = trace.serialize();
  // v1 records are serialised field-by-field (kRecordDiskBytes each), so the
  // file is independent of host struct padding.
  EXPECT_EQ(bytes.size(), 32 + trace.records.size() * kRecordDiskBytes);
  const Trace back = Trace::deserialize(bytes);
  EXPECT_EQ(back.total_retired, trace.total_retired);
  EXPECT_EQ(back.kernel_count, trace.kernel_count);
  ASSERT_EQ(back.records.size(), trace.records.size());
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    const Record& a = trace.records[i];
    const Record& b = back.records[i];
    EXPECT_TRUE(a.retired == b.retired && a.ea == b.ea && a.pc == b.pc &&
                a.kernel == b.kernel && a.func == b.func && a.kind == b.kind &&
                a.size == b.size && a.flags == b.flags)
        << "record " << i;
  }
}

TEST(TraceSerialization, RejectsCorruption) {
  const Trace trace = record_trace(make_mixed_program());
  auto bytes = trace.serialize();
  EXPECT_THROW(Trace::deserialize({bytes.data(), 10}), Error);
  auto bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(Trace::deserialize(bad_magic), Error);
  auto truncated = bytes;
  truncated.resize(truncated.size() - 7);
  EXPECT_THROW(Trace::deserialize(truncated), Error);
}

TEST(TraceReplay, VisitsEveryRecordInOrder) {
  const Trace trace = record_trace(make_mixed_program());
  struct CountingSink : TraceSink {
    std::size_t count = 0;
    std::uint64_t last_retired = 0;
    bool ended = false;
    void on_record(const Record& record) override {
      EXPECT_GE(record.retired, last_retired);
      last_retired = record.retired;
      ++count;
    }
    void on_end(const Trace&) override { ended = true; }
  } sink;
  replay(trace, sink);
  EXPECT_EQ(sink.count, trace.records.size());
  EXPECT_TRUE(sink.ended);
}

/// The central equivalence property: offline aggregation of a recorded trace
/// must equal the online BandwidthRecorder, slice for slice.
class OfflineEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OfflineEquivalence, OfflineEqualsOnline) {
  const std::uint64_t slice = GetParam();
  const vm::Program program = make_mixed_program();

  // Online run.
  vm::HostEnv host1;
  pin::Engine engine(program, host1);
  tquad::TQuadTool online(engine, tquad::Options{.slice_interval = slice});
  engine.run();

  // Offline from a recorded trace.
  const Trace trace = record_trace(program);
  OfflineBandwidth offline(trace.kernel_count, slice);
  offline.aggregate(trace);

  ASSERT_EQ(offline.kernel_count(), online.kernel_count());
  for (std::uint32_t k = 0; k < online.kernel_count(); ++k) {
    const auto& a = online.bandwidth().kernel(k);
    const auto& b = offline.kernel(k);
    ASSERT_EQ(a.series.size(), b.series.size()) << "kernel " << k;
    for (std::size_t i = 0; i < a.series.size(); ++i) {
      EXPECT_EQ(a.series[i].slice, b.series[i].slice);
      EXPECT_EQ(a.series[i].counters.read_incl, b.series[i].counters.read_incl);
      EXPECT_EQ(a.series[i].counters.read_excl, b.series[i].counters.read_excl);
      EXPECT_EQ(a.series[i].counters.write_incl, b.series[i].counters.write_incl);
      EXPECT_EQ(a.series[i].counters.write_excl, b.series[i].counters.write_excl);
    }
    EXPECT_EQ(a.totals.read_incl, b.totals.read_incl);
    EXPECT_EQ(a.totals.write_incl, b.totals.write_incl);
  }
}

INSTANTIATE_TEST_SUITE_P(Slices, OfflineEquivalence,
                         ::testing::Values(1, 13, 100, 1000, 1'000'000));

/// Parallel offline aggregation must equal sequential, regardless of pool
/// size (shard seams merge by addition).
class ParallelEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelEquivalence, ParallelEqualsSequential) {
  const Trace trace = record_trace(make_mixed_program());
  OfflineBandwidth sequential(trace.kernel_count, 37);
  sequential.aggregate(trace);
  OfflineBandwidth parallel(trace.kernel_count, 37);
  ThreadPool pool(GetParam());
  parallel.aggregate_parallel(trace, pool);
  ASSERT_EQ(parallel.max_slice(), sequential.max_slice());
  for (std::uint32_t k = 0; k < trace.kernel_count; ++k) {
    const auto& a = sequential.kernel(k);
    const auto& b = parallel.kernel(k);
    ASSERT_EQ(a.series.size(), b.series.size()) << "kernel " << k;
    for (std::size_t i = 0; i < a.series.size(); ++i) {
      EXPECT_EQ(a.series[i].slice, b.series[i].slice);
      EXPECT_EQ(a.series[i].counters.read_incl, b.series[i].counters.read_incl);
      EXPECT_EQ(a.series[i].counters.write_incl, b.series[i].counters.write_incl);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Pools, ParallelEquivalence, ::testing::Values(1, 2, 3, 7));

TEST(OfflineBandwidth, WfsTraceMatchesOnline) {
  // Integration: the full (tiny) wfs run, online vs offline.
  const wfs::WfsConfig cfg = wfs::WfsConfig::tiny();
  wfs::WfsRun online_run = wfs::prepare_wfs_run(cfg);
  pin::Engine engine(online_run.artifacts.program, online_run.host);
  tquad::TQuadTool online(engine, tquad::Options{.slice_interval = 500});
  engine.run();

  wfs::WfsRun trace_run = wfs::prepare_wfs_run(cfg);
  TraceRecorder recorder(trace_run.artifacts.program);
  vm::Machine machine(trace_run.artifacts.program, trace_run.host);
  machine.run(&recorder);
  const Trace trace = recorder.take();

  OfflineBandwidth offline(trace.kernel_count, 500);
  ThreadPool pool(3);
  offline.aggregate_parallel(trace, pool);
  for (std::uint32_t k = 0; k < online.kernel_count(); ++k) {
    EXPECT_EQ(online.bandwidth().kernel(k).totals.read_incl,
              offline.kernel(k).totals.read_incl)
        << online.kernel_name(k);
    EXPECT_EQ(online.bandwidth().kernel(k).totals.write_excl,
              offline.kernel(k).totals.write_excl)
        << online.kernel_name(k);
    EXPECT_EQ(online.bandwidth().kernel(k).active_slices(),
              offline.kernel(k).active_slices())
        << online.kernel_name(k);
  }
}

}  // namespace
}  // namespace tq::trace
