// TQTR v2.1 integrity and salvage: per-block CRC-32C catches single-bit
// damage anywhere in a block (header or payload), salvage-mode decoding
// loses only the damaged block, and a trace truncated mid-write — no trailer
// index, placeholder header counters — is still replayable from its block
// headers alone. These are the durability guarantees that make an on-disk
// trace of a multi-hour run worth keeping after a crash.
#include <gtest/gtest.h>

#include "support/crc32c.hpp"
#include "trace/trace_v2.hpp"

#include "trace_corruptor.hpp"

namespace tq::trace {
namespace {

using testutil::flip_bit;
using testutil::truncate_at;
using testutil::zero_range;

constexpr std::uint32_t kKernels = 4;
constexpr std::uint32_t kBlockCapacity = 64;

/// A deterministic synthetic stream exercising every record kind, spanning
/// many blocks at the small test capacity.
std::vector<Record> make_records(std::size_t count) {
  std::vector<Record> records;
  records.reserve(count);
  std::uint64_t retired = 0;
  for (std::size_t i = 0; i < count; ++i) {
    Record record{};
    record.retired = retired;
    record.kernel = static_cast<std::uint16_t>(i % kKernels);
    record.func = record.kernel;
    record.pc = static_cast<std::uint32_t>(i % 97);
    switch (i % 4) {
      case 0:
        record.kind = EventKind::kRead;
        record.ea = 0x1000 + (i * 24) % 4096;
        record.size = 8;
        break;
      case 1:
        record.kind = EventKind::kWrite;
        record.ea = 0x8000 + (i * 16) % 2048;
        record.size = 4;
        record.flags = kFlagStackArea;
        break;
      case 2:
        record.kind = EventKind::kEnter;
        record.ea = (i / 4) % kKernels;
        break;
      default:
        record.kind = EventKind::kRet;
        break;
    }
    records.push_back(record);
    retired += 1 + (i % 3);
  }
  return records;
}

std::vector<std::uint8_t> encode(const std::vector<Record>& records,
                                 std::uint32_t minor) {
  TraceV2Writer writer(kKernels, kBlockCapacity, minor);
  for (const Record& record : records) writer.add(record);
  return writer.finish(records.back().retired + 1);
}

// ---- CRC plumbing -----------------------------------------------------------------

TEST(Crc32c, KnownVectorAndChaining) {
  // RFC 3720 test vector: 32 zero bytes.
  const std::uint8_t zeros[32] = {};
  EXPECT_EQ(crc32c(zeros, sizeof zeros), 0x8a9136aau);
  // Chaining two halves must equal one pass.
  const std::uint32_t half = crc32c(zeros, 16);
  EXPECT_EQ(crc32c(zeros + 16, 16, half),
            crc32c(zeros, sizeof zeros));
}

TEST(TraceSalvage, CleanV21RoundTripsWithCrcs) {
  const std::vector<Record> records = make_records(1000);
  const std::vector<std::uint8_t> bytes = encode(records, kV2MinorCrc);
  const TraceV2View view = TraceV2View::open(bytes);
  EXPECT_EQ(view.minor_version(), 1u);
  ASSERT_GT(view.block_count(), 4u);  // interior blocks exist
  for (std::size_t b = 0; b < view.block_count(); ++b) {
    EXPECT_NE(view.block(b).crc, 0u);
  }
  const Trace decoded = view.decode_all();
  ASSERT_EQ(decoded.records.size(), records.size());
  EXPECT_TRUE(std::equal(records.begin(), records.end(), decoded.records.begin(),
                         [](const Record& a, const Record& b) {
                           return a.retired == b.retired && a.ea == b.ea &&
                                  a.kind == b.kind && a.size == b.size &&
                                  a.flags == b.flags && a.kernel == b.kernel &&
                                  a.func == b.func && a.pc == b.pc;
                         }));

  // A clean file salvages cleanly, too.
  SalvageReport report;
  (void)TraceV2View::salvage(bytes, &report);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.blocks_recovered, view.block_count());
  EXPECT_EQ(report.records_recovered, records.size());
}

TEST(TraceSalvage, V20FilesStillDecode) {
  const std::vector<Record> records = make_records(300);
  const std::vector<std::uint8_t> bytes = encode(records, 0);
  const TraceV2View view = TraceV2View::open(bytes);
  EXPECT_EQ(view.minor_version(), 0u);
  EXPECT_EQ(view.decode_all().records.size(), records.size());
  // v2.1 files are strictly larger (8 bytes per block) but only slightly.
  const std::vector<std::uint8_t> crc_bytes = encode(records, kV2MinorCrc);
  EXPECT_EQ(crc_bytes.size(), bytes.size() + view.block_count() * 8);
}

// ---- single-block damage ----------------------------------------------------------

TEST(TraceSalvage, PayloadBitFlipLosesOnlyThatBlock) {
  const std::vector<Record> records = make_records(1000);
  std::vector<std::uint8_t> bytes = encode(records, kV2MinorCrc);
  const TraceV2View clean = TraceV2View::open(bytes);
  ASSERT_GT(clean.block_count(), 3u);
  const BlockInfo target = clean.block(2);

  // Flip one payload bit of interior block 2.
  const std::size_t bit =
      (static_cast<std::size_t>(target.file_offset) + kV2BlockHeaderBytes + 5) * 8 + 3;
  const std::vector<std::uint8_t> damaged = flip_bit(bytes, bit);

  // Strict open still walks the structure, but decoding block 2 must fail
  // loudly on the CRC, and decode_all must not silently return wrong data.
  const TraceV2View strict = TraceV2View::open(damaged);
  EXPECT_NO_THROW((void)strict.decode_block(1));
  EXPECT_THROW((void)strict.decode_block(2), Error);

  SalvageReport report;
  const TraceV2View view = TraceV2View::salvage(damaged, &report);
  EXPECT_FALSE(report.index_rebuilt);  // the trailer index survived
  EXPECT_EQ(report.blocks_found, clean.block_count());
  EXPECT_EQ(report.blocks_recovered, clean.block_count() - 1);
  ASSERT_EQ(report.dropped.size(), 1u);
  EXPECT_EQ(report.dropped[0].index, 2u);
  EXPECT_EQ(report.dropped[0].file_offset, target.file_offset);
  EXPECT_EQ(report.records_dropped, target.record_count);
  EXPECT_EQ(report.records_recovered, records.size() - target.record_count);

  // Everything outside block 2 decodes bit-exact; the stream re-anchors at
  // block 3 because blocks are independently coded.
  const Trace decoded = view.decode_all();
  std::vector<Record> expect = records;
  expect.erase(expect.begin() + 2 * kBlockCapacity,
               expect.begin() + 3 * kBlockCapacity);
  ASSERT_EQ(decoded.records.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(decoded.records[i].retired, expect[i].retired) << "record " << i;
    EXPECT_EQ(decoded.records[i].ea, expect[i].ea) << "record " << i;
  }
}

TEST(TraceSalvage, BlockHeaderDamageIsCaughtByTheCrc) {
  const std::vector<Record> records = make_records(600);
  std::vector<std::uint8_t> bytes = encode(records, kV2MinorCrc);
  const TraceV2View clean = TraceV2View::open(bytes);
  ASSERT_GT(clean.block_count(), 2u);
  const BlockInfo target = clean.block(1);

  // Damage the block header's first_retired field (offset 8 in the header):
  // the CRC covers the 32 semantic header bytes, so this cannot slip through
  // as plausibly-valid metadata.
  const std::vector<std::uint8_t> damaged =
      flip_bit(bytes, (static_cast<std::size_t>(target.file_offset) + 8) * 8);
  SalvageReport report;
  (void)TraceV2View::salvage(damaged, &report);
  ASSERT_EQ(report.dropped.size(), 1u);
  EXPECT_EQ(report.dropped[0].index, 1u);
}

TEST(TraceSalvage, TwoDamagedBlocksDropIndependently) {
  const std::vector<Record> records = make_records(1000);
  std::vector<std::uint8_t> bytes = encode(records, kV2MinorCrc);
  const TraceV2View clean = TraceV2View::open(bytes);
  ASSERT_GT(clean.block_count(), 5u);
  std::vector<std::uint8_t> damaged = flip_bit(
      bytes, (static_cast<std::size_t>(clean.block(1).file_offset) +
              kV2BlockHeaderBytes) * 8);
  damaged = flip_bit(damaged, (static_cast<std::size_t>(clean.block(4).file_offset) +
                               kV2BlockHeaderBytes + 2) * 8 + 6);
  SalvageReport report;
  (void)TraceV2View::salvage(damaged, &report);
  EXPECT_EQ(report.blocks_recovered, clean.block_count() - 2);
  ASSERT_EQ(report.dropped.size(), 2u);
  EXPECT_EQ(report.dropped[0].index, 1u);
  EXPECT_EQ(report.dropped[1].index, 4u);
}

// ---- truncation -------------------------------------------------------------------

TEST(TraceSalvage, MidWriteTruncationIsReplayableFromBlockHeaders) {
  const std::vector<Record> records = make_records(1000);
  std::vector<std::uint8_t> bytes = encode(records, kV2MinorCrc);
  const TraceV2View clean = TraceV2View::open(bytes);
  ASSERT_GT(clean.block_count(), 4u);

  // Model a crash mid-run: the header still holds its placeholder zeros
  // (total_retired, record_count, index_offset are only patched at finish)
  // and the file ends partway into a block payload.
  const std::size_t cut = static_cast<std::size_t>(clean.block(3).file_offset) +
                          kV2BlockHeaderBytes + 7;
  std::vector<std::uint8_t> truncated =
      zero_range(truncate_at(bytes, cut), 16, 24);

  EXPECT_THROW((void)TraceV2View::open(truncated), Error);

  SalvageReport report;
  const TraceV2View view = TraceV2View::salvage(truncated, &report);
  EXPECT_TRUE(report.index_rebuilt);
  EXPECT_EQ(report.blocks_recovered, 3u);
  const Trace decoded = view.decode_all();
  ASSERT_EQ(decoded.records.size(), 3u * kBlockCapacity);
  for (std::size_t i = 0; i < decoded.records.size(); ++i) {
    EXPECT_EQ(decoded.records[i].retired, records[i].retired) << "record " << i;
  }
  // total_retired reconstructs from the last recovered block header, so the
  // replay's silent-tick fill still terminates at the right place.
  EXPECT_EQ(view.total_retired(),
            records[3 * kBlockCapacity - 1].retired + 1);
}

TEST(TraceSalvage, TruncationInsideTheIndexFallsBackToScan) {
  const std::vector<Record> records = make_records(500);
  std::vector<std::uint8_t> bytes = encode(records, kV2MinorCrc);
  const TraceV2View clean = TraceV2View::open(bytes);
  // Cut inside the trailer index: all blocks are intact, only the index is
  // unusable. Header fields still claim the full file, so strict open fails;
  // salvage rescans and recovers every block.
  const std::vector<std::uint8_t> truncated = truncate_at(bytes, bytes.size() - 9);
  EXPECT_THROW((void)TraceV2View::open(truncated), Error);
  SalvageReport report;
  const TraceV2View view = TraceV2View::salvage(truncated, &report);
  EXPECT_TRUE(report.index_rebuilt);
  EXPECT_EQ(report.blocks_recovered, clean.block_count());
  EXPECT_EQ(view.decode_all().records.size(), records.size());
}

TEST(TraceSalvage, NothingRecoverableThrows) {
  const std::vector<Record> records = make_records(100);
  const std::vector<std::uint8_t> bytes = encode(records, kV2MinorCrc);
  // A file cut inside its own header has no salvageable structure.
  EXPECT_THROW((void)TraceV2View::salvage(truncate_at(bytes, 17)), Error);
  // Wrong magic: not a trace at all.
  EXPECT_THROW((void)TraceV2View::salvage(flip_bit(bytes, 1)), Error);
}

}  // namespace
}  // namespace tq::trace
