// Cross-tool integration: multiple tools composed on one engine, and the
// consistency invariants that must hold between independent tools measuring
// the same run.
#include <gtest/gtest.h>

#include "gprofsim/gprof_tool.hpp"
#include "minipin/minipin.hpp"
#include "quad/quad_tool.hpp"
#include "tquad/phase.hpp"
#include "tquad/report.hpp"
#include "tquad/tquad_tool.hpp"
#include "wfs/runner.hpp"
#include "workloads/workloads.hpp"

namespace tq {
namespace {

TEST(Integration, ThreeToolsComposeOnOneEngine) {
  // Pin runs one tool per process; minipin happily multiplexes — all three
  // tools attach their instrumentation to the same engine and must observe
  // identical, correct data from a single run.
  const wfs::WfsConfig cfg = wfs::WfsConfig::tiny();
  wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
  pin::Engine engine(run.artifacts.program, run.host);
  tquad::TQuadTool tq_tool(engine, tquad::Options{.slice_interval = 1000});
  quad::QuadTool quad_tool(engine);
  gprof::GprofTool gprof_tool(engine, {});
  const vm::RunResult result = engine.run();

  EXPECT_EQ(tq_tool.total_retired(), result.retired);
  EXPECT_EQ(gprof_tool.total_retired(), result.retired);
  // The output is still correct with three tools attached.
  const wfs::GoldenResult golden = wfs::run_golden(cfg, run.input);
  EXPECT_EQ(run.decode_output().samples, golden.output);
}

TEST(Integration, TquadAndQuadAgreeOnBytes) {
  // tQUAD's stack-included read/write totals per kernel must equal QUAD's
  // IN bytes / "bytes written" view of the same run: both count the same
  // accesses through independent data paths.
  const wfs::WfsConfig cfg = wfs::WfsConfig::tiny();
  wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
  pin::Engine engine(run.artifacts.program, run.host);
  tquad::TQuadTool tq_tool(engine, tquad::Options{.slice_interval = 5000});
  quad::QuadTool quad_tool(engine);
  engine.run();

  for (std::uint32_t k = 0; k < tq_tool.kernel_count(); ++k) {
    if (!tq_tool.reported(k)) continue;
    const auto& bw = tq_tool.bandwidth().kernel(k).totals;
    EXPECT_EQ(bw.read_incl, quad_tool.including_stack(k).in_bytes)
        << tq_tool.kernel_name(k);
    EXPECT_EQ(bw.read_excl, quad_tool.excluding_stack(k).in_bytes)
        << tq_tool.kernel_name(k);
  }
}

TEST(Integration, GprofAndTquadAgreeOnCallsAndInstructions) {
  const wfs::WfsConfig cfg = wfs::WfsConfig::tiny();
  wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
  pin::Engine engine(run.artifacts.program, run.host);
  tquad::TQuadTool tq_tool(engine, tquad::Options{});
  gprof::GprofTool gprof_tool(engine, {});
  engine.run();
  for (std::uint32_t k = 0; k < tq_tool.kernel_count(); ++k) {
    if (!tq_tool.reported(k)) continue;
    EXPECT_EQ(tq_tool.activity(k).calls, gprof_tool.calls(k))
        << tq_tool.kernel_name(k);
  }
}

TEST(Integration, InstructionConservation) {
  // Attributed + unattributed instruction counts cover the whole run.
  const wfs::WfsConfig cfg = wfs::WfsConfig::tiny();
  wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
  pin::Engine engine(run.artifacts.program, run.host);
  tquad::TQuadTool tool(engine, tquad::Options{});
  const vm::RunResult result = engine.run();
  std::uint64_t attributed = 0;
  for (std::uint32_t k = 0; k < tool.kernel_count(); ++k) {
    attributed += tool.activity(k).instructions;
  }
  EXPECT_EQ(attributed + tool.unattributed_instructions(), result.retired);
}

TEST(Integration, ByteConservationAgainstGroundTruth) {
  // The sum of per-kernel attributed bytes equals an independent raw count
  // of all memory traffic (direct ExecListener, no tools).
  const workloads::StreamArtifacts art = workloads::build_stream(256, 2);

  struct RawCounter : vm::ExecListener {
    std::uint64_t read_bytes = 0;
    std::uint64_t write_bytes = 0;
    void on_instr(const vm::InstrEvent& ev) override {
      if (!ev.executed || ev.prefetch) return;
      read_bytes += ev.read.size;
      write_bytes += ev.write.size;
    }
  } raw;
  {
    vm::HostEnv host;
    vm::Machine machine(art.program, host);
    machine.run(&raw);
  }

  vm::HostEnv host;
  pin::Engine engine(art.program, host);
  tquad::TQuadTool tool(engine,
                        tquad::Options{.library_policy = tquad::LibraryPolicy::kTrack});
  engine.run();
  std::uint64_t attributed_reads = 0;
  std::uint64_t attributed_writes = 0;
  for (std::uint32_t k = 0; k < tool.kernel_count(); ++k) {
    attributed_reads += tool.bandwidth().kernel(k).totals.read_incl;
    attributed_writes += tool.bandwidth().kernel(k).totals.write_incl;
  }
  EXPECT_EQ(attributed_reads, raw.read_bytes);
  EXPECT_EQ(attributed_writes, raw.write_bytes);
}

TEST(Integration, QuadOutNeverExceedsConsumedBytes) {
  // Global invariant: sum of OUT bytes over producers == sum over bindings
  // == bytes read from produced locations <= total IN bytes.
  const wfs::WfsConfig cfg = wfs::WfsConfig::tiny();
  wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
  pin::Engine engine(run.artifacts.program, run.host);
  quad::QuadTool tool(engine);
  engine.run();
  std::uint64_t total_out = 0;
  std::uint64_t total_in = 0;
  for (std::uint32_t k = 0; k < tool.kernel_count(); ++k) {
    total_out += tool.including_stack(k).out_bytes;
    total_in += tool.including_stack(k).in_bytes;
  }
  std::uint64_t binding_sum = 0;
  for (const auto& edge : tool.bindings()) binding_sum += edge.bytes;
  EXPECT_EQ(total_out, binding_sum);
  EXPECT_LE(total_out, total_in);
}

TEST(Integration, PhasesCoverEveryActiveKernelOnWfs) {
  const wfs::WfsConfig cfg = wfs::WfsConfig::tiny();
  wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
  pin::Engine engine(run.artifacts.program, run.host);
  tquad::TQuadTool tool(engine, tquad::Options{.slice_interval = 500});
  engine.run();
  const auto phases = tquad::detect_phases(tool);
  std::size_t member_count = 0;
  for (const auto& phase : phases) member_count += phase.kernels.size();
  std::size_t active_count = 0;
  for (std::uint32_t k = 0; k < tool.kernel_count(); ++k) {
    if (tool.reported(k) && tool.bandwidth().kernel(k).active_slices() > 0) {
      ++active_count;
    }
  }
  EXPECT_EQ(member_count, active_count);
  // wav_store ends up in a phase of its own even at tiny scale.
  bool store_alone = false;
  for (const auto& phase : phases) {
    if (phase.kernels.size() == 1 &&
        tool.kernel_name(phase.kernels[0]) == "wav_store") {
      store_alone = true;
    }
  }
  EXPECT_TRUE(store_alone);
}

}  // namespace
}  // namespace tq
