// TQTR v2 codec: property-based round-trips over adversarial record
// streams, streaming-writer/batch-encoder equivalence, block/index
// structure invariants, and index-driven range replay.
#include <gtest/gtest.h>

#include <cstring>

#include "gasm/builder.hpp"
#include "support/rng.hpp"
#include "trace/trace.hpp"
#include "trace/trace_v2.hpp"
#include "vm/machine.hpp"

namespace tq::trace {
namespace {

using gasm::ProgramBuilder;
using gasm::R;

constexpr std::uint32_t kKernels = 17;

/// Adversarial but *valid* stream: zero and max-u64 retired/ea jumps,
/// unattributed 0xffff kernels, prefetch flags, odd access sizes that force
/// the literal-size escape, enter/ret records with nonzero sizes.
Trace random_trace(SplitMix64& rng, std::size_t count) {
  Trace trace;
  trace.kernel_count = kKernels;
  trace.records.reserve(count);
  std::uint64_t retired = 0;
  for (std::size_t i = 0; i < count; ++i) {
    Record record{};
    switch (rng.next_below(5)) {
      case 0: break;                             // zero delta
      case 1: retired += 1 + rng.next_below(64); break;
      case 2: retired += rng.next_below(1u << 20); break;
      case 3: retired += rng.next(); break;      // wild jump (wraps)
      case 4: retired = ~0ull - rng.next_below(16); break;  // near max-u64
    }
    record.retired = retired;
    record.ea = rng.next_below(3) == 0 ? 0 : rng.next();
    record.pc = static_cast<std::uint32_t>(rng.next());
    record.kernel = rng.next_below(4) == 0
                        ? kNoKernel16
                        : static_cast<std::uint16_t>(rng.next_below(kKernels));
    record.func = static_cast<std::uint16_t>(rng.next());
    record.kind = static_cast<EventKind>(rng.next_below(4));
    if (record.kind == EventKind::kRead || record.kind == EventKind::kWrite) {
      const std::uint8_t sizes[] = {0, 1, 2, 3, 4, 7, 8, 16, 32, 64, 100, 255};
      record.size = sizes[rng.next_below(sizeof sizes)];
      record.flags = static_cast<std::uint8_t>(rng.next_below(4));
    } else if (rng.next_below(8) == 0) {
      record.size = static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    trace.records.push_back(record);
  }
  trace.total_retired = retired;
  return trace;
}

/// Field-wise equality (memcmp would also compare indeterminate struct
/// padding, which the formats deliberately do not carry).
bool record_eq(const Record& a, const Record& b) {
  return a.retired == b.retired && a.ea == b.ea && a.pc == b.pc &&
         a.kernel == b.kernel && a.func == b.func && a.kind == b.kind &&
         a.size == b.size && a.flags == b.flags && a.reserved == b.reserved;
}

void expect_records_equal(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  EXPECT_EQ(a.total_retired, b.total_retired);
  EXPECT_EQ(a.kernel_count, b.kernel_count);
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    ASSERT_TRUE(record_eq(a.records[i], b.records[i])) << "record " << i;
  }
}

class V2RoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(V2RoundTrip, AdversarialStreamsSurviveEncodeDecode) {
  SplitMix64 rng(GetParam());
  const std::uint32_t capacities[] = {1, 3, 64, 4096};
  for (int round = 0; round < 20; ++round) {
    const Trace trace = random_trace(rng, rng.next_below(600));
    for (const std::uint32_t capacity : capacities) {
      const auto bytes = serialize_v2(trace, capacity);
      // Auto-detected by the shared entry point...
      expect_records_equal(trace, Trace::deserialize(bytes));
      // ...and block by block through the view.
      const TraceV2View view = TraceV2View::open(bytes);
      EXPECT_EQ(view.record_count(), trace.records.size());
      expect_records_equal(trace, view.decode_all());
    }
  }
}

TEST_P(V2RoundTrip, BlockHeadersDescribeTheirRecords) {
  SplitMix64 rng(GetParam() ^ 0xb10cull);
  const Trace trace = random_trace(rng, 1000);
  const auto bytes = serialize_v2(trace, 64);
  const TraceV2View view = TraceV2View::open(bytes);
  ASSERT_EQ(view.block_count(), (trace.records.size() + 63) / 64);
  std::size_t base = 0;
  for (std::size_t b = 0; b < view.block_count(); ++b) {
    const BlockInfo& info = view.block(b);
    ASSERT_LE(base + info.record_count, trace.records.size());
    EXPECT_EQ(info.first_retired, trace.records[base].retired);
    EXPECT_EQ(info.last_retired,
              trace.records[base + info.record_count - 1].retired);
    for (std::uint32_t i = 0; i < info.record_count; ++i) {
      const std::uint16_t kernel = trace.records[base + i].kernel;
      EXPECT_NE(info.kernel_bloom & (1ull << (kernel & 63)), 0u);
    }
    base += info.record_count;
  }
  EXPECT_EQ(base, trace.records.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, V2RoundTrip, ::testing::Values(11, 22, 33, 44));

TEST(V2RoundTrip, EmptyTrace) {
  Trace trace;
  trace.kernel_count = 3;
  trace.total_retired = 99;
  const auto bytes = serialize_v2(trace);
  const TraceV2View view = TraceV2View::open(bytes);
  EXPECT_EQ(view.block_count(), 0u);
  EXPECT_EQ(view.record_count(), 0u);
  EXPECT_EQ(view.total_retired(), 99u);
  expect_records_equal(trace, Trace::deserialize(bytes));
}

TEST(V2RoundTrip, UndefinedFlagBitsAreRejectedAtEncode) {
  Trace trace;
  trace.kernel_count = 1;
  Record record{};
  record.kind = EventKind::kRead;
  record.size = 8;
  record.flags = 0xf0;  // outside the defined kFlag* set
  trace.records.push_back(record);
  EXPECT_THROW(serialize_v2(trace), Error);
}

TEST(V2Writer, StreamingRecorderMatchesBatchEncoder) {
  // The streaming block writer inside TraceRecorder must produce the exact
  // bytes serialize_v2() produces for the buffered record array.
  ProgramBuilder prog;
  const auto buf = prog.alloc_global("buf", 1024);
  auto& kernel = prog.begin_function("kernel");
  kernel.movi(R{1}, static_cast<std::int64_t>(buf));
  kernel.count_loop_imm(R{2}, 0, 100, [&] {
    kernel.andi(R{3}, R{2}, 127);
    kernel.shli(R{3}, R{3}, 3);
    kernel.add(R{3}, R{3}, R{1});
    kernel.store(R{3}, 0, R{2}, 8);
    kernel.load(R{4}, R{3}, 0, 8);
  });
  kernel.ret();
  auto& main_fn = prog.begin_function("main");
  main_fn.count_loop_imm(R{28}, 0, 3, [&] { main_fn.call("kernel"); });
  main_fn.halt();
  const vm::Program program = prog.build("main");

  auto run = [&](TraceFormat format) {
    vm::HostEnv host;
    TraceRecorder recorder(program, tquad::LibraryPolicy::kExclude, format);
    vm::Machine machine(program, host);
    machine.run(&recorder);
    return recorder.take_encoded();
  };
  const auto streamed = run(TraceFormat::kV2);
  const Trace buffered = [&] {
    vm::HostEnv host;
    TraceRecorder recorder(program);
    vm::Machine machine(program, host);
    machine.run(&recorder);
    return recorder.take();
  }();
  EXPECT_GT(buffered.records.size(), 500u);
  EXPECT_EQ(streamed, serialize_v2(buffered));
  expect_records_equal(buffered, Trace::deserialize(streamed));
  // v1 take_encoded() keeps producing the flat format.
  const auto flat = run(TraceFormat::kV1);
  expect_records_equal(buffered, Trace::deserialize(flat));
}

TEST(V2Replay, RangeReplaySkipsThePrefix) {
  // Monotonic trace with known retired counts: replay_range must deliver
  // exactly the records in [lo, hi) and agree with a brute-force filter.
  Trace trace;
  trace.kernel_count = 4;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    Record record{};
    record.retired = i * 3;  // strictly increasing
    record.ea = 0x1000 + 8 * i;
    record.pc = static_cast<std::uint32_t>(i % 97);
    record.kernel = static_cast<std::uint16_t>(i % 4);
    record.func = record.kernel;
    record.kind = (i % 2) ? EventKind::kWrite : EventKind::kRead;
    record.size = 8;
    trace.records.push_back(record);
    trace.total_retired = record.retired;
  }
  const auto bytes = serialize_v2(trace, 128);
  const TraceV2View view = TraceV2View::open(bytes);

  struct CollectingSink : TraceSink {
    std::vector<Record> seen;
    void on_record(const Record& record) override { seen.push_back(record); }
  };

  SplitMix64 rng(7);
  for (int round = 0; round < 50; ++round) {
    const std::uint64_t lo = rng.next_below(trace.total_retired + 100);
    const std::uint64_t hi = lo + rng.next_below(trace.total_retired / 2);
    CollectingSink sink;
    const std::uint64_t delivered = replay_range(view, lo, hi, sink);
    std::vector<Record> expected;
    for (const Record& record : trace.records) {
      if (record.retired >= lo && record.retired < hi) expected.push_back(record);
    }
    ASSERT_EQ(delivered, expected.size()) << "[" << lo << ", " << hi << ")";
    ASSERT_EQ(sink.seen.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_TRUE(record_eq(sink.seen[i], expected[i])) << "record " << i;
    }
  }

  // Seeking past the end touches nothing.
  CollectingSink sink;
  EXPECT_EQ(replay_range(view, trace.total_retired + 1, ~0ull, sink), 0u);
  EXPECT_EQ(view.first_block_at(trace.total_retired + 1), view.block_count());
  EXPECT_EQ(view.first_block_at(0), 0u);
}

TEST(V2Size, CompressesTheMixedProgramTrace) {
  // Not the headline stream-workload ratio (bench_trace_codec asserts that);
  // just a sanity floor for a generic trace.
  ProgramBuilder prog;
  const auto buf = prog.alloc_global("buf", 4096);
  auto& main_fn = prog.begin_function("main");
  main_fn.movi(R{1}, static_cast<std::int64_t>(buf));
  main_fn.count_loop_imm(R{2}, 0, 400, [&] {
    main_fn.andi(R{3}, R{2}, 255);
    main_fn.shli(R{3}, R{3}, 3);
    main_fn.add(R{3}, R{3}, R{1});
    main_fn.store(R{3}, 0, R{2}, 8);
  });
  main_fn.halt();
  const vm::Program program = prog.build("main");
  vm::HostEnv host;
  TraceRecorder recorder(program);
  vm::Machine machine(program, host);
  machine.run(&recorder);
  const Trace trace = recorder.take();
  const auto v1 = trace.serialize();
  const auto v2 = serialize_v2(trace);
  EXPECT_GT(v1.size(), 3 * v2.size())
      << "v1 " << v1.size() << " bytes vs v2 " << v2.size();
}

}  // namespace
}  // namespace tq::trace
