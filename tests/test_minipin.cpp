// The Pin-substitute DBI engine: lazy instrument-once semantics, analysis
// call dispatch, predication, argument marshalling.
#include <gtest/gtest.h>

#include "gasm/builder.hpp"
#include "minipin/minipin.hpp"

namespace tq::pin {
namespace {

using gasm::F;
using gasm::ProgramBuilder;
using gasm::R;

/// Counts analysis events, pintool style.
struct CountingTool {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t all_calls = 0;
  std::uint64_t predicated_calls = 0;
  std::uint64_t entries = 0;
  std::uint64_t fini_retired = 0;
  std::vector<std::string> entry_names;

  static void on_read(void* tool, const InsArgs& args) {
    auto& self = *static_cast<CountingTool*>(tool);
    ++self.reads;
    self.read_bytes += args.read_size;
  }
  static void on_write(void* tool, const InsArgs& args) {
    auto& self = *static_cast<CountingTool*>(tool);
    ++self.writes;
    self.write_bytes += args.write_size;
  }
  static void on_any(void* tool, const InsArgs&) {
    ++static_cast<CountingTool*>(tool)->all_calls;
  }
  static void on_pred(void* tool, const InsArgs&) {
    ++static_cast<CountingTool*>(tool)->predicated_calls;
  }
  static void on_entry(void* tool, const RtnArgs& args) {
    auto& self = *static_cast<CountingTool*>(tool);
    ++self.entries;
    self.entry_names.push_back(*args.name);
  }
};

vm::Program two_function_program() {
  ProgramBuilder prog;
  auto& helper = prog.begin_function("helper");
  helper.movi(R{4}, 9);
  helper.ret();
  const auto buf = prog.alloc_global("buf", 64);
  auto& main_fn = prog.begin_function("main");
  main_fn.movi(R{1}, static_cast<std::int64_t>(buf));
  main_fn.movi(R{2}, 5);
  main_fn.store(R{1}, 0, R{2}, 4);
  main_fn.load(R{3}, R{1}, 0, 8);
  main_fn.call("helper");
  main_fn.call("helper");
  main_fn.halt();
  return prog.build("main");
}

TEST(Minipin, InstrumentsRoutinesLazilyExactlyOnce) {
  const vm::Program program = two_function_program();
  vm::HostEnv host;
  Engine engine(program, host);
  int rtn_callbacks = 0;
  int ins_callbacks = 0;
  engine.add_rtn_instrument_function([&](Rtn&) { ++rtn_callbacks; });
  engine.add_ins_instrument_function([&](Ins&) { ++ins_callbacks; });
  engine.run();
  // Two routines; helper entered twice but instrumented once.
  EXPECT_EQ(engine.instrumented_routines(), 2u);
  EXPECT_EQ(rtn_callbacks, 2);
  EXPECT_EQ(ins_callbacks, static_cast<int>(program.static_instructions()));
}

TEST(Minipin, NeverEnteredRoutineIsNeverInstrumented) {
  ProgramBuilder prog;
  auto& unused = prog.begin_function("unused");
  unused.ret();
  auto& main_fn = prog.begin_function("main");
  main_fn.halt();
  const vm::Program program = prog.build("main");
  vm::HostEnv host;
  Engine engine(program, host);
  std::vector<std::string> instrumented;
  engine.add_rtn_instrument_function(
      [&](Rtn& rtn) { instrumented.push_back(rtn.name()); });
  engine.run();
  EXPECT_EQ(engine.instrumented_routines(), 1u);
  ASSERT_EQ(instrumented.size(), 1u);
  EXPECT_EQ(instrumented[0], "main");
}

TEST(Minipin, MemoryAnalysisCallsSeeSizesAndAddresses) {
  const vm::Program program = two_function_program();
  vm::HostEnv host;
  Engine engine(program, host);
  CountingTool tool;
  engine.add_ins_instrument_function([&](Ins& ins) {
    if (ins.is_memory_read()) ins.insert_predicated_call(&CountingTool::on_read, &tool);
    if (ins.is_memory_write()) ins.insert_predicated_call(&CountingTool::on_write, &tool);
  });
  engine.run();
  // Reads: 1 load (8B) + 2 rets (8B each). Writes: 1 store (4B) + 2 calls.
  EXPECT_EQ(tool.reads, 3u);
  EXPECT_EQ(tool.read_bytes, 24u);
  EXPECT_EQ(tool.writes, 3u);
  EXPECT_EQ(tool.write_bytes, 20u);
}

TEST(Minipin, RoutineEntryCallsFirePerDynamicEntry) {
  const vm::Program program = two_function_program();
  vm::HostEnv host;
  Engine engine(program, host);
  CountingTool tool;
  engine.add_rtn_instrument_function(
      [&](Rtn& rtn) { rtn.insert_entry_call(&CountingTool::on_entry, &tool); });
  engine.run();
  // main once, helper twice.
  EXPECT_EQ(tool.entries, 3u);
  ASSERT_EQ(tool.entry_names.size(), 3u);
  EXPECT_EQ(tool.entry_names[0], "main");
  EXPECT_EQ(tool.entry_names[1], "helper");
  EXPECT_EQ(tool.entry_names[2], "helper");
}

TEST(Minipin, PredicatedCallSkippedWhenPredicateFalse) {
  ProgramBuilder prog;
  auto& main_fn = prog.begin_function("main");
  main_fn.movi(R{2}, 0);  // predicate off
  main_fn.movi(R{3}, 1);
  main_fn.mov(R{4}, R{3});
  main_fn.predicate_last(R{2});
  main_fn.halt();
  const vm::Program program = prog.build("main");
  vm::HostEnv host;
  Engine engine(program, host);
  CountingTool tool;
  engine.add_ins_instrument_function([&](Ins& ins) {
    if (ins.is_predicated()) {
      ins.insert_call(&CountingTool::on_any, &tool);
      ins.insert_predicated_call(&CountingTool::on_pred, &tool);
    }
  });
  engine.run();
  EXPECT_EQ(tool.all_calls, 1u);        // InsertCall fires regardless
  EXPECT_EQ(tool.predicated_calls, 0u);  // InsertPredicatedCall does not
}

TEST(Minipin, FiniFunctionsReceiveFinalCount) {
  const vm::Program program = two_function_program();
  vm::HostEnv host;
  Engine engine(program, host);
  std::uint64_t fini_value = 0;
  engine.add_fini_function([&](std::uint64_t retired) { fini_value = retired; });
  const vm::RunResult result = engine.run();
  EXPECT_EQ(fini_value, result.retired);
  EXPECT_GT(fini_value, 0u);
}

TEST(Minipin, InsViewExposesStaticProperties) {
  const vm::Program program = two_function_program();
  vm::HostEnv host;
  Engine engine(program, host);
  bool saw_call = false;
  bool saw_ret = false;
  engine.add_ins_instrument_function([&](Ins& ins) {
    if (ins.is_call()) {
      saw_call = true;
      EXPECT_EQ(ins.memory_size(), 8u);  // return-address push
    }
    if (ins.is_ret()) {
      saw_ret = true;
      EXPECT_EQ(ins.memory_size(), 8u);
    }
  });
  engine.run();
  EXPECT_TRUE(saw_call);
  EXPECT_TRUE(saw_ret);
}

TEST(Minipin, RtnViewExposesImageAndSize) {
  ProgramBuilder prog;
  auto& lib = prog.begin_function("libc_x", vm::ImageKind::kLibrary);
  lib.ret();
  auto& main_fn = prog.begin_function("main");
  main_fn.call("libc_x");
  main_fn.halt();
  const vm::Program program = prog.build("main");
  vm::HostEnv host;
  Engine engine(program, host);
  bool checked = false;
  engine.add_rtn_instrument_function([&](Rtn& rtn) {
    if (rtn.name() == "libc_x") {
      checked = true;
      EXPECT_FALSE(rtn.in_main_image());
      EXPECT_EQ(rtn.instruction_count(), 1u);
    }
  });
  engine.run();
  EXPECT_TRUE(checked);
}

TEST(Minipin, ArgsCarryStackPointerAndIp) {
  ProgramBuilder prog;
  auto& main_fn = prog.begin_function("main");
  main_fn.enter(32);
  main_fn.movi(R{2}, 7);
  main_fn.store(gasm::SP, 8, R{2}, 8);
  main_fn.leave(32);
  main_fn.halt();
  const vm::Program program = prog.build("main");
  vm::HostEnv host;
  Engine engine(program, host);
  struct Capture {
    std::uint64_t sp = 0;
    std::uint64_t ea = 0;
    std::uint64_t ip = 0;
    static void fn(void* tool, const InsArgs& args) {
      auto& self = *static_cast<Capture*>(tool);
      self.sp = args.sp;
      self.ea = args.write_ea;
      self.ip = args.ip;
    }
  } capture;
  engine.add_ins_instrument_function([&](Ins& ins) {
    if (ins.opcode() == isa::Op::kStore) {
      ins.insert_predicated_call(&Capture::fn, &capture);
    }
  });
  engine.run();
  EXPECT_EQ(capture.sp, vm::kStackBase - 32);
  EXPECT_EQ(capture.ea, capture.sp + 8);
  EXPECT_EQ(capture.ip & 0xffffffffu, 2u);  // pc of the store
}

TEST(Minipin, EngineRunIsSingleShot) {
  const vm::Program program = two_function_program();
  vm::HostEnv host;
  Engine engine(program, host);
  engine.run();
  EXPECT_DEATH(engine.run(), "single-shot");
}

}  // namespace
}  // namespace tq::pin
