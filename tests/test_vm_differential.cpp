// Differential testing of the interpreter: random straight-line programs
// are executed by the VM and by an independent reference evaluator written
// directly against the ISA semantics; final register and memory states must
// match exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "support/rng.hpp"
#include "vm/machine.hpp"

namespace tq::vm {
namespace {

/// Minimal reference state: registers plus a byte-level memory model.
struct RefState {
  std::uint64_t regs[isa::kNumIntRegs] = {};
  double fregs[isa::kNumFpRegs] = {};
  std::map<std::uint64_t, std::uint8_t> memory;

  std::uint64_t load(std::uint64_t addr, unsigned size) const {
    std::uint64_t value = 0;
    for (unsigned b = 0; b < size; ++b) {
      auto it = memory.find(addr + b);
      const std::uint8_t byte = it == memory.end() ? 0 : it->second;
      value |= static_cast<std::uint64_t>(byte) << (8 * b);
    }
    return value;
  }
  void store(std::uint64_t addr, std::uint64_t value, unsigned size) {
    for (unsigned b = 0; b < size; ++b) {
      memory[addr + b] = static_cast<std::uint8_t>(value >> (8 * b));
    }
  }
};

/// Execute one instruction on the reference state (straight-line subset).
void ref_step(RefState& s, const isa::Instr& ins) {
  using isa::Op;
  auto& r = s.regs;
  auto& f = s.fregs;
  if (ins.predicated() && r[ins.pr] == 0) return;
  switch (ins.op) {
    case Op::kAdd: r[ins.rd] = r[ins.ra] + r[ins.rb]; break;
    case Op::kSub: r[ins.rd] = r[ins.ra] - r[ins.rb]; break;
    case Op::kMul: r[ins.rd] = r[ins.ra] * r[ins.rb]; break;
    case Op::kAnd: r[ins.rd] = r[ins.ra] & r[ins.rb]; break;
    case Op::kOr: r[ins.rd] = r[ins.ra] | r[ins.rb]; break;
    case Op::kXor: r[ins.rd] = r[ins.ra] ^ r[ins.rb]; break;
    case Op::kShl: r[ins.rd] = r[ins.ra] << (r[ins.rb] & 63); break;
    case Op::kShrL: r[ins.rd] = r[ins.ra] >> (r[ins.rb] & 63); break;
    case Op::kShrA:
      r[ins.rd] = static_cast<std::uint64_t>(static_cast<std::int64_t>(r[ins.ra]) >>
                                             (r[ins.rb] & 63));
      break;
    case Op::kSltS:
      r[ins.rd] =
          static_cast<std::int64_t>(r[ins.ra]) < static_cast<std::int64_t>(r[ins.rb]);
      break;
    case Op::kSltU: r[ins.rd] = r[ins.ra] < r[ins.rb]; break;
    case Op::kSeq: r[ins.rd] = r[ins.ra] == r[ins.rb]; break;
    case Op::kAddI: r[ins.rd] = r[ins.ra] + static_cast<std::uint64_t>(ins.imm); break;
    case Op::kMulI: r[ins.rd] = r[ins.ra] * static_cast<std::uint64_t>(ins.imm); break;
    case Op::kAndI: r[ins.rd] = r[ins.ra] & static_cast<std::uint64_t>(ins.imm); break;
    case Op::kOrI: r[ins.rd] = r[ins.ra] | static_cast<std::uint64_t>(ins.imm); break;
    case Op::kXorI: r[ins.rd] = r[ins.ra] ^ static_cast<std::uint64_t>(ins.imm); break;
    case Op::kShlI: r[ins.rd] = r[ins.ra] << (ins.imm & 63); break;
    case Op::kShrLI: r[ins.rd] = r[ins.ra] >> (ins.imm & 63); break;
    case Op::kShrAI:
      r[ins.rd] = static_cast<std::uint64_t>(static_cast<std::int64_t>(r[ins.ra]) >>
                                             (ins.imm & 63));
      break;
    case Op::kSltSI:
      r[ins.rd] = static_cast<std::int64_t>(r[ins.ra]) < ins.imm;
      break;
    case Op::kMovI: r[ins.rd] = static_cast<std::uint64_t>(ins.imm); break;
    case Op::kMov: r[ins.rd] = r[ins.ra]; break;
    case Op::kFAdd: f[ins.rd] = f[ins.ra] + f[ins.rb]; break;
    case Op::kFSub: f[ins.rd] = f[ins.ra] - f[ins.rb]; break;
    case Op::kFMul: f[ins.rd] = f[ins.ra] * f[ins.rb]; break;
    case Op::kFNeg: f[ins.rd] = -f[ins.ra]; break;
    case Op::kFAbs: f[ins.rd] = std::fabs(f[ins.ra]); break;
    case Op::kFMov: f[ins.rd] = f[ins.ra]; break;
    case Op::kFMovI: f[ins.rd] = std::bit_cast<double>(ins.imm); break;
    case Op::kFMin: f[ins.rd] = std::fmin(f[ins.ra], f[ins.rb]); break;
    case Op::kFMax: f[ins.rd] = std::fmax(f[ins.ra], f[ins.rb]); break;
    case Op::kI2F:
      f[ins.rd] = static_cast<double>(static_cast<std::int64_t>(r[ins.ra]));
      break;
    case Op::kLoad:
      r[ins.rd] = s.load(r[ins.ra] + static_cast<std::uint64_t>(ins.imm), ins.size);
      break;
    case Op::kStore:
      s.store(r[ins.ra] + static_cast<std::uint64_t>(ins.imm), r[ins.rb], ins.size);
      break;
    default:
      FAIL() << "reference does not model opcode " << isa::mnemonic(ins.op);
  }
}

/// Generate one random straight-line instruction from the modelled subset.
/// Memory accesses are confined to a 4 KiB scratch window so loads read back
/// earlier stores.
isa::Instr random_instr(SplitMix64& rng, std::uint64_t scratch_base) {
  using isa::Op;
  static const Op kOps[] = {
      Op::kAdd,  Op::kSub,   Op::kMul,  Op::kAnd,   Op::kOr,    Op::kXor,
      Op::kShl,  Op::kShrL,  Op::kShrA, Op::kSltS,  Op::kSltU,  Op::kSeq,
      Op::kAddI, Op::kMulI,  Op::kAndI, Op::kOrI,   Op::kXorI,  Op::kShlI,
      Op::kShrLI, Op::kShrAI, Op::kSltSI, Op::kMovI, Op::kMov,  Op::kFAdd,
      Op::kFSub, Op::kFMul,  Op::kFNeg, Op::kFAbs,  Op::kFMov,  Op::kFMovI,
      Op::kFMin, Op::kFMax,  Op::kI2F,  Op::kLoad,  Op::kStore,
  };
  isa::Instr ins;
  ins.op = kOps[rng.next_below(sizeof kOps / sizeof kOps[0])];
  // Avoid r0 (loop scratch convention) and SP.
  auto reg = [&] { return static_cast<std::uint8_t>(1 + rng.next_below(29)); };
  ins.rd = reg();
  ins.ra = reg();
  ins.rb = reg();
  ins.imm = static_cast<std::int64_t>(rng.next() >> 32) - (1 << 30);
  if (ins.op == Op::kFMovI) {
    ins.imm = std::bit_cast<std::int64_t>(rng.next_range(-1e6, 1e6));
  }
  if (ins.op == Op::kLoad || ins.op == Op::kStore) {
    ins.size = static_cast<std::uint8_t>(1u << rng.next_below(4));
    // Base register forced to a scratch pointer register (r30) set up by the
    // prologue; displacement stays inside the window.
    ins.ra = 30;
    ins.imm = static_cast<std::int64_t>(rng.next_below(4096 - 8));
    (void)scratch_base;
  }
  if (rng.next_below(8) == 0) {
    ins.flags |= isa::kFlagPredicated;
    ins.pr = reg();
  }
  return ins;
}

class VmDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VmDifferential, RandomStraightLineProgramsMatchReference) {
  SplitMix64 rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    const std::uint64_t scratch = kGlobalBase + 0x1000;
    std::vector<isa::Instr> code;
    // Prologue: r30 = scratch pointer; seed a few registers.
    code.push_back(isa::Instr{.op = isa::Op::kMovI,
                              .rd = 30,
                              .imm = static_cast<std::int64_t>(scratch)});
    for (std::uint8_t reg = 1; reg <= 8; ++reg) {
      code.push_back(isa::Instr{.op = isa::Op::kMovI,
                                .rd = reg,
                                .imm = static_cast<std::int64_t>(rng.next())});
    }
    for (int i = 0; i < 300; ++i) code.push_back(random_instr(rng, scratch));
    code.push_back(isa::Instr{.op = isa::Op::kHalt});

    // Reference execution.
    RefState ref;
    for (const auto& ins : code) {
      if (ins.op == isa::Op::kHalt) break;
      ref_step(ref, ins);
    }

    // VM execution.
    Program prog;
    Function fn;
    fn.name = "main";
    fn.code = code;
    prog.add_function(std::move(fn));
    prog.set_entry(0);
    HostEnv host;
    Machine machine(prog, host);
    machine.run();

    for (unsigned reg = 1; reg < 31; ++reg) {
      ASSERT_EQ(machine.cpu().regs[reg], ref.regs[reg])
          << "seed " << GetParam() << " round " << round << " r" << reg;
    }
    for (unsigned reg = 0; reg < isa::kNumFpRegs; ++reg) {
      const double vm_value = machine.cpu().fregs[reg];
      const double ref_value = ref.fregs[reg];
      ASSERT_EQ(std::bit_cast<std::uint64_t>(vm_value),
                std::bit_cast<std::uint64_t>(ref_value))
          << "seed " << GetParam() << " round " << round << " f" << reg;
    }
    for (const auto& [addr, byte] : ref.memory) {
      ASSERT_EQ(machine.memory().load(addr, 1), byte)
          << "seed " << GetParam() << " round " << round << " addr " << addr;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmDifferential,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace tq::vm
