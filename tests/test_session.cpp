// Unit tests for the session layer itself: event stream invariants of
// KernelAttribution, ProfileSession lifecycle guards, and the replay
// source's input validation.
#include <gtest/gtest.h>

#include "session/session.hpp"
#include "trace/trace.hpp"
#include "trace/trace_v2.hpp"
#include "workloads/workloads.hpp"

namespace tq::session {
namespace {

/// Captures the full attributed event stream for invariant checks.
class CapturingConsumer : public AnalysisConsumer {
 public:
  std::vector<EnterEvent> enters;
  std::vector<TickEvent> ticks;
  std::vector<AccessEvent> accesses;
  std::vector<RetEvent> rets;
  std::uint64_t total = 0;
  int end_calls = 0;

  void on_kernel_enter(const EnterEvent& event) override { enters.push_back(event); }
  void on_tick(const TickEvent& event) override { ticks.push_back(event); }
  void on_access(const AccessEvent& event) override { accesses.push_back(event); }
  void on_kernel_ret(const RetEvent& event) override { rets.push_back(event); }
  void on_session_end(std::uint64_t total_retired) override {
    total = total_retired;
    ++end_calls;
  }
};

TEST(Session, LiveEventStreamInvariants) {
  const auto workload = workloads::build_stream(64, 1);
  ProfileSession session(workload.program);
  CapturingConsumer capture;
  session.add_consumer(capture);
  vm::HostEnv host;
  const std::uint64_t retired = session.run_live(host).retired;

  EXPECT_GT(retired, 0u);
  EXPECT_EQ(session.total_retired(), retired);
  EXPECT_EQ(capture.total, retired);
  EXPECT_EQ(capture.end_calls, 1);

  // The first enter is program entry: no caller, zero retired.
  ASSERT_FALSE(capture.enters.empty());
  EXPECT_EQ(capture.enters.front().caller, tquad::kNoKernel);
  EXPECT_EQ(capture.enters.front().retired, 0u);
  EXPECT_EQ(capture.enters.front().kernel, capture.enters.front().func);

  // Exactly one tick per retired instruction, in order.
  ASSERT_EQ(capture.ticks.size(), retired);
  for (std::size_t i = 0; i < capture.ticks.size(); ++i) {
    EXPECT_EQ(capture.ticks[i].retired, i);
  }

  // Every enter/ret pairs up (the entry function's activation stays open).
  EXPECT_EQ(capture.rets.size() + 1, capture.enters.size());

  // Accesses carry the kernel on top of the stack at their tick.
  for (const AccessEvent& access : capture.accesses) {
    EXPECT_LT(access.retired, retired);
    EXPECT_GT(access.size, 0u);
  }
}

TEST(Session, RunIsSingleShot) {
  const auto workload = workloads::build_stream(16, 1);
  ProfileSession session(workload.program);
  vm::HostEnv host;
  session.run_live(host);
  vm::HostEnv host2;
  EXPECT_DEATH(session.run_live(host2), "single-shot");
}

TEST(Session, AddConsumerAfterRunAborts) {
  const auto workload = workloads::build_stream(16, 1);
  ProfileSession session(workload.program);
  vm::HostEnv host;
  session.run_live(host);
  CapturingConsumer late;
  EXPECT_DEATH(session.add_consumer(late), "must precede");
}

TEST(Session, RunRejectsForeignProgramSource) {
  const auto a = workloads::build_stream(16, 1);
  const auto b = workloads::build_chase(16, 10);
  ProfileSession session(a.program);
  vm::HostEnv host;
  LiveEngineSource source(b.program, host);
  EXPECT_DEATH(session.run(source), "different program");
}

TEST(Session, ReplayRejectsKernelCountMismatch) {
  // Record a trace of one program, replay into a session for another with a
  // different function count.
  const auto recorded = workloads::build_stream(16, 1);
  const auto other = workloads::build_matmul(4, false);
  ASSERT_NE(recorded.program.functions().size(), other.program.functions().size());

  ProfileSession record_session(recorded.program);
  trace::TraceRecorder recorder(recorded.program);
  record_session.add_consumer(recorder);
  vm::HostEnv host;
  record_session.run_live(host);
  const auto bytes = recorder.take_encoded();

  ProfileSession replay_session(other.program);
  EXPECT_THROW(replay_session.replay(bytes), Error);
}

TEST(Session, ReplayRejectsOutOfRangeFunctionIds) {
  // A structurally valid trace whose records reference function ids beyond
  // the image must be rejected, not index out of bounds.
  const auto workload = workloads::build_stream(16, 1);
  trace::Trace hostile;
  hostile.kernel_count =
      static_cast<std::uint32_t>(workload.program.functions().size());
  hostile.total_retired = 1;
  trace::Record record{};
  record.kind = trace::EventKind::kEnter;
  record.func = 0;
  record.ea = 0xfff;  // entered function id way out of range
  hostile.records.push_back(record);
  const auto bytes = hostile.serialize();

  ProfileSession session(workload.program);
  EXPECT_THROW(session.replay(bytes), Error);
}

TEST(Session, ReplayEmptyTraceYieldsSilentTicks) {
  // A trace with no records but nonzero total_retired replays as pure
  // silent ticks attributed to function 0.
  const auto workload = workloads::build_stream(16, 1);
  trace::Trace empty;
  empty.kernel_count =
      static_cast<std::uint32_t>(workload.program.functions().size());
  empty.total_retired = 5;
  const auto bytes = empty.serialize();

  ProfileSession session(workload.program);
  CapturingConsumer capture;
  session.add_consumer(capture);
  EXPECT_EQ(session.replay(bytes).retired, 5u);
  EXPECT_EQ(capture.ticks.size(), 5u);
  EXPECT_TRUE(capture.accesses.empty());
}

TEST(Session, AttributionDispatchOrderFollowsAddOrder) {
  const auto workload = workloads::build_stream(16, 1);
  KernelAttribution attribution(workload.program, tquad::LibraryPolicy::kExclude);

  std::vector<int> order;
  class Tagger : public AnalysisConsumer {
   public:
    Tagger(std::vector<int>& order, int tag) : order_(order), tag_(tag) {}
    void on_tick(const TickEvent&) override { order_.push_back(tag_); }

   private:
    std::vector<int>& order_;
    int tag_;
  };
  Tagger first(order, 1);
  Tagger second(order, 2);
  attribution.add_consumer(first);
  attribution.add_consumer(second);
  EXPECT_EQ(attribution.consumer_count(), 2u);
  attribution.input_tick(0, 0, 0, 0);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

}  // namespace
}  // namespace tq::session
