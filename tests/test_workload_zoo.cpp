// The workload-zoo registry itself: deterministic builds, golden-model
// verification through the registry interface, randomized property tests for
// the new generators, and the AddressMapTool accounting contract (every
// delivered access counted exactly once; a phase-sharp workload paints
// disjoint hot write ranges per phase kernel).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "session/session.hpp"
#include "support/check.hpp"
#include "tquad/address_map.hpp"
#include "tquad/callstack.hpp"
#include "vm/machine.hpp"
#include "workloads/registry.hpp"
#include "workloads/workloads.hpp"

namespace tq::workloads {
namespace {

// ---------------------------------------------------------------------------
// Registry surface.

TEST(ZooRegistry, NamesAreUniqueAndLookupRoundTrips) {
  const std::vector<std::string> names = workload_names();
  ASSERT_EQ(names.size(), registry().size());
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
  for (const std::string& name : names) {
    const Entry& entry = find_workload(name);
    EXPECT_EQ(entry.name, name);
    EXPECT_NE(shape_name(entry.shape), nullptr);
    EXPECT_TRUE(entry.build) << name;
    EXPECT_TRUE(entry.build_bench) << name;
  }
  EXPECT_THROW((void)find_workload("no_such_workload"), Error);
}

TEST(ZooRegistry, EveryShapeIsRepresented) {
  std::set<Shape> shapes;
  for (const Entry& entry : registry()) shapes.insert(entry.shape);
  EXPECT_EQ(shapes.size(), 5u) << "zoo must cover all five declared shapes";
  EXPECT_EQ(find_workload("phased").expected_phases, 4u);
}

/// Round trip through the registry interface: two builds serialize to the
/// same bytes, the guest halts, and the golden verifier accepts the run.
class ZooRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooRoundTrip, BuildRunVerify) {
  const Entry& entry = find_workload(GetParam());
  Instance a = entry.build();
  Instance b = entry.build();
  ASSERT_EQ(a.program.serialize(), b.program.serialize());
  vm::Machine machine(a.program, a.host);
  const vm::RunOutcome outcome = machine.run();
  ASSERT_EQ(outcome.status, vm::RunStatus::kHalted) << outcome.trap_kind;
  ASSERT_TRUE(a.verify);
  EXPECT_EQ(a.verify(a, machine), "");
}

INSTANTIATE_TEST_SUITE_P(Zoo, ZooRoundTrip,
                         ::testing::ValuesIn(workload_names()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Randomized property tests for the new generators: for arbitrary sizes and
// seeds the guest must still match the host golden model exactly.

TEST(ZooProperty, HashJoinMatchesGoldenOnRandomShapes) {
  std::mt19937_64 rng(0xfeed5eed);
  for (int round = 0; round < 8; ++round) {
    const auto build_rows = static_cast<std::uint32_t>(rng() % 200 + 1);
    const auto probe_rows = static_cast<std::uint32_t>(rng() % 300 + 1);
    const std::uint64_t seed = rng() | 1;
    SCOPED_TRACE("build=" + std::to_string(build_rows) +
                 " probe=" + std::to_string(probe_rows) +
                 " seed=" + std::to_string(seed));
    HashJoinArtifacts art = build_hashjoin(build_rows, probe_rows, seed);
    vm::HostEnv host;
    vm::Machine machine(art.program, host);
    ASSERT_EQ(machine.run().status, vm::RunStatus::kHalted);
    EXPECT_EQ(machine.memory().load(art.result_addr, 8), art.expected_sum);
    EXPECT_EQ(machine.memory().load(art.result_addr + 8, 8),
              art.expected_matches);
  }
}

TEST(ZooProperty, PhasedMatchesGoldenOnRandomShapes) {
  std::mt19937_64 rng(0xabcd1234);
  for (int round = 0; round < 6; ++round) {
    const auto elements = std::uint32_t{1} << (rng() % 8 + 1);  // 2..256
    const auto reps = static_cast<std::uint32_t>(rng() % 4 + 1);
    const std::uint64_t seed = rng() | 1;
    SCOPED_TRACE("elements=" + std::to_string(elements) +
                 " reps=" + std::to_string(reps) +
                 " seed=" + std::to_string(seed));
    PhasedArtifacts art = build_phased(elements, reps, seed);
    vm::HostEnv host;
    vm::Machine machine(art.program, host);
    ASSERT_EQ(machine.run().status, vm::RunStatus::kHalted);
    for (std::uint32_t p = 0; p < PhasedArtifacts::kPhases; ++p) {
      for (std::uint32_t i = 0; i < elements; ++i) {
        ASSERT_EQ(machine.memory().load(art.buffer_addr[p] + 8 * i, 8),
                  art.expected[p][i])
            << "phase " << p << " element " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// AddressMapTool accounting contract.

/// Run one registry workload with an AddressMapTool riding the session.
struct MapRun {
  explicit MapRun(const std::string& name,
                  tquad::AddressMapOptions options = {})
      : instance(find_workload(name).build()),
        session(instance.program, session::SessionConfig{}),
        map(instance.program, options) {
    session.add_consumer(map);
    outcome = session.run_live(instance.host);
  }

  Instance instance;
  session::ProfileSession session;
  tquad::AddressMapTool map;
  vm::RunOutcome outcome;
};

class ZooAddressMap : public ::testing::TestWithParam<std::string> {};

// Conservation on every zoo member: per kernel, accesses == stack_accesses +
// sum of cell reads+writes; over kernels, the total equals the session's
// delivered access-event count.
TEST_P(ZooAddressMap, CountsEveryDeliveredAccessExactlyOnce) {
  MapRun run(GetParam(), {.slice_interval = 500, .bucket_bytes = 128});
  ASSERT_EQ(run.outcome.status, vm::RunStatus::kHalted);
  std::uint64_t total = 0;
  for (const auto& [kernel, map] : run.map.kernels()) {
    std::uint64_t cells = 0;
    for (const auto& [key, counts] : map.cells) {
      EXPECT_GT(counts.reads + counts.writes, 0u) << "empty cell stored";
      cells += counts.reads + counts.writes;
    }
    EXPECT_EQ(map.accesses, map.stack_accesses + cells)
        << run.map.kernel_label(kernel);
    total += map.accesses;
  }
  EXPECT_EQ(total, run.map.total_accesses());
  EXPECT_EQ(run.map.total_accesses(),
            run.session.attribution().event_counts().accesses);
}

INSTANTIATE_TEST_SUITE_P(Zoo, ZooAddressMap,
                         ::testing::ValuesIn(workload_names()),
                         [](const auto& info) { return info.param; });

// The phase-sharp workload's heatmap: each phase kernel writes its own
// buffer, so the per-kernel sets of hot *written* address buckets must be
// pairwise disjoint (reads overlap by design — phase_scan reads A while
// writing B).
TEST(ZooAddressMap, PhasedKernelsWriteDisjointAddressRanges) {
  MapRun run("phased", {.slice_interval = 500, .bucket_bytes = 64});
  ASSERT_EQ(run.outcome.status, vm::RunStatus::kHalted);
  std::vector<std::pair<std::string, std::set<std::uint64_t>>> written;
  for (const auto& [kernel, map] : run.map.kernels()) {
    const std::string label = run.map.kernel_label(kernel);
    if (label.rfind("phase_", 0) != 0) continue;
    std::set<std::uint64_t> buckets;
    for (const auto& [key, counts] : map.cells) {
      if (counts.writes > 0) buckets.insert(key.second);
    }
    EXPECT_FALSE(buckets.empty()) << label;
    written.emplace_back(label, std::move(buckets));
  }
  ASSERT_EQ(written.size(), PhasedArtifacts::kPhases);
  for (std::size_t i = 0; i < written.size(); ++i) {
    for (std::size_t j = i + 1; j < written.size(); ++j) {
      for (const std::uint64_t bucket : written[i].second) {
        EXPECT_EQ(written[j].second.count(bucket), 0u)
            << written[i].first << " and " << written[j].first
            << " both write bucket " << bucket;
      }
    }
  }
}

// Unattributed accesses (kNoKernel) get their own labelled row instead of
// vanishing: feed the tool a raw event stream directly.
TEST(ZooAddressMap, UnattributedAndStackAccessesAreAccounted) {
  const auto art = build_stream(16, 1);
  tquad::AddressMapTool map(art.program,
                            {.slice_interval = 100, .bucket_bytes = 256});
  session::AccessEvent event;
  event.kernel = tquad::kNoKernel;
  event.ea = 4096;
  event.size = 8;
  event.retired = 250;  // slice 2
  event.is_read = true;
  map.on_access(event);
  event.is_stack = true;
  map.on_access(event);

  ASSERT_EQ(map.kernels().size(), 1u);
  const auto& m = map.kernels().begin()->second;
  EXPECT_EQ(map.kernel_label(map.kernels().begin()->first), "(unattributed)");
  EXPECT_EQ(m.accesses, 2u);
  EXPECT_EQ(m.stack_accesses, 1u);
  ASSERT_EQ(m.cells.size(), 1u);
  EXPECT_EQ(m.cells.begin()->first,
            (tquad::AddressMapTool::CellKey{2, 4096 / 256}));
  EXPECT_EQ(m.cells.begin()->second.reads, 1u);
  EXPECT_EQ(m.cells.begin()->second.writes, 0u);
  EXPECT_EQ(map.total_accesses(), 2u);

  const std::string json = map.render_json();
  EXPECT_NE(json.find("\"(unattributed)\""), std::string::npos);
  EXPECT_NE(json.find("\"total_accesses\": 2"), std::string::npos);
}

}  // namespace
}  // namespace tq::workloads
