// Tests for the smaller support utilities: statistics, RNG, CLI parsing,
// table rendering and ASCII charts.
#include <gtest/gtest.h>

#include <cmath>

#include "support/ascii_chart.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace tq {
namespace {

// ---- stats -----------------------------------------------------------------

TEST(RunningStat, BasicMoments) {
  RunningStat stat;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.add(x);
  EXPECT_EQ(stat.count(), 8u);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stat.sum(), 40.0);
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStat, EmptyIsSafe) {
  RunningStat stat;
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.min(), 0.0);
  EXPECT_EQ(stat.max(), 0.0);
  EXPECT_EQ(stat.stddev(), 0.0);
}

TEST(Quantile, InterpolatesLinearly) {
  std::vector<double> samples{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(samples, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(samples, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(samples, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(Log2Histogram, BucketsPowersOfTwo) {
  Log2Histogram hist;
  hist.add(0);
  hist.add(1);
  hist.add(2);
  hist.add(3);
  hist.add(4);
  hist.add(1024);
  EXPECT_EQ(hist.total(), 6u);
  EXPECT_EQ(hist.bucket(0), 2u);  // 0 and 1
  EXPECT_EQ(hist.bucket(1), 2u);  // 2 and 3
  EXPECT_EQ(hist.bucket(2), 1u);  // 4
  EXPECT_EQ(hist.bucket(10), 1u);
}

// ---- rng ---------------------------------------------------------------------

TEST(SplitMix64, DeterministicAndSeedSensitive) {
  SplitMix64 a(1), b(1), c(2);
  EXPECT_EQ(a.next(), b.next());
  SplitMix64 a2(1);
  EXPECT_NE(a2.next(), c.next());
}

TEST(SplitMix64, UnitRangeBounds) {
  SplitMix64 rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

// ---- cli ---------------------------------------------------------------------

TEST(CliParser, ParsesAllTypes) {
  CliParser cli("test");
  cli.add_flag("verbose", false, "chatty output");
  cli.add_int("slice", 5000, "slice interval");
  cli.add_string("mode", "both", "stack mode");
  cli.add_double("scale", 1.0, "scaling");
  const char* argv[] = {"prog", "-verbose", "-slice", "123", "--mode=excl",
                        "-scale", "2.5", "positional"};
  cli.parse(8, argv);
  EXPECT_TRUE(cli.flag("verbose"));
  EXPECT_EQ(cli.integer("slice"), 123);
  EXPECT_EQ(cli.str("mode"), "excl");
  EXPECT_DOUBLE_EQ(cli.real("scale"), 2.5);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(CliParser, DefaultsWhenAbsent) {
  CliParser cli("test");
  cli.add_int("slice", 5000, "slice interval");
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_EQ(cli.integer("slice"), 5000);
}

TEST(CliParser, UnknownOptionThrows) {
  CliParser cli("test");
  const char* argv[] = {"prog", "-nope"};
  EXPECT_THROW(cli.parse(2, argv), Error);
}

TEST(CliParser, BadIntegerThrows) {
  CliParser cli("test");
  cli.add_int("n", 0, "number");
  const char* argv[] = {"prog", "-n", "12x"};
  EXPECT_THROW(cli.parse(3, argv), Error);
}

TEST(CliParser, MissingValueThrows) {
  CliParser cli("test");
  cli.add_int("n", 0, "number");
  const char* argv[] = {"prog", "-n"};
  EXPECT_THROW(cli.parse(2, argv), Error);
}

TEST(CliParser, HelpListsOptions) {
  CliParser cli("demo tool");
  cli.add_flag("x", true, "the x flag");
  cli.add_string("name", "abc", "a name");
  const std::string help = cli.help();
  EXPECT_NE(help.find("demo tool"), std::string::npos);
  EXPECT_NE(help.find("-x"), std::string::npos);
  EXPECT_NE(help.find("the x flag"), std::string::npos);
  EXPECT_NE(help.find("'abc'"), std::string::npos);
}

// ---- table ---------------------------------------------------------------------

TEST(TextTable, AlignsColumns) {
  TextTable table({"kernel", "bytes"});
  table.add_row({"fft1d", "123"});
  table.add_row({"wav_store", "7"});
  const std::string ascii = table.to_ascii();
  // Header and rows line up: every line has the same position for column 2.
  EXPECT_NE(ascii.find("kernel"), std::string::npos);
  EXPECT_NE(ascii.find("wav_store"), std::string::npos);
  // Right-aligned number column: "  7" with padding.
  EXPECT_NE(ascii.find("    7"), std::string::npos);
}

TEST(TextTable, CsvEscapesSpecials) {
  TextTable table({"name", "note"});
  table.add_row({"a,b", "say \"hi\""});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, RowWidthMismatchAborts) {
  TextTable table({"a", "b"});
  EXPECT_DEATH(table.add_row({"only one"}), "row width mismatch");
}

TEST(Format, Helpers) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(12), "12");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_percent(0.3169), "31.69");
}

// ---- ascii chart -----------------------------------------------------------------

TEST(AsciiChart, HeatStripsCoverAllSeries) {
  std::vector<ChartSeries> series{
      {"fft1d", {0, 0, 5, 9, 5, 0}},
      {"wav_store", {0, 0, 0, 0, 8, 8}},
  };
  ChartOptions options;
  options.width = 12;
  const std::string chart = render_heat_strips(series, options);
  EXPECT_NE(chart.find("fft1d"), std::string::npos);
  EXPECT_NE(chart.find("wav_store"), std::string::npos);
  // Active region renders non-space glyphs, silent region spaces.
  const auto first_line_end = chart.find('\n');
  const std::string first_line = chart.substr(0, first_line_end);
  EXPECT_NE(first_line.find_first_of(".:-=+*#%@"), std::string::npos);
}

TEST(AsciiChart, EmptySeriesRendersBlank) {
  std::vector<ChartSeries> series{{"silent", {0, 0, 0}}};
  ChartOptions options;
  options.show_scale = false;  // keep only the strip row
  const std::string chart = render_heat_strips(series, options);
  EXPECT_NE(chart.find("silent"), std::string::npos);
  // The strip between the pipes contains only spaces.
  const auto open = chart.find('|');
  const auto close = chart.find('|', open + 1);
  ASSERT_NE(open, std::string::npos);
  ASSERT_NE(close, std::string::npos);
  const std::string strip = chart.substr(open + 1, close - open - 1);
  EXPECT_EQ(strip.find_first_not_of(' '), std::string::npos);
}

TEST(AsciiChart, BlockChartHeight) {
  ChartSeries series{"k", {1, 2, 3, 4, 5, 6, 7, 8}};
  ChartOptions options;
  options.width = 8;
  const std::string chart = render_block_chart(series, 4, options);
  // 1 title + 4 rows + 1 axis.
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '\n'), 6);
}

}  // namespace
}  // namespace tq
