// Report helpers: CPU-model unit conversions, table rendering, metric
// extraction branches.
#include <gtest/gtest.h>

#include "gasm/builder.hpp"
#include "minipin/minipin.hpp"
#include "tquad/report.hpp"
#include "tquad/tquad_tool.hpp"

namespace tq::tquad {
namespace {

using gasm::ProgramBuilder;
using gasm::R;
using gasm::SP;

TEST(CpuModel, UnitConversions) {
  CpuModel model;
  model.clock_ghz = 2.0;
  model.cpi = 1.0;
  EXPECT_DOUBLE_EQ(model.to_bytes_per_cycle(4.0), 4.0);
  EXPECT_DOUBLE_EQ(model.to_bytes_per_second(1.0), 2e9);
  EXPECT_DOUBLE_EQ(model.to_seconds(2'000'000'000), 1.0);

  model.cpi = 2.0;  // slower PE: half the bytes per cycle, double the time
  EXPECT_DOUBLE_EQ(model.to_bytes_per_cycle(4.0), 2.0);
  EXPECT_DOUBLE_EQ(model.to_bytes_per_second(1.0), 1e9);
  EXPECT_DOUBLE_EQ(model.to_seconds(2'000'000'000), 2.0);
}

TEST(CpuModel, PaperDefaults) {
  const CpuModel model;
  EXPECT_DOUBLE_EQ(model.clock_ghz, 2.83);
  // 2.83e9 instructions at CPI 1 = one second on the paper's Q9550.
  EXPECT_NEAR(model.to_seconds(2'830'000'000), 1.0, 1e-12);
}

struct ReportRun {
  vm::Program program;
  vm::HostEnv host;
  std::unique_ptr<pin::Engine> engine;
  std::unique_ptr<TQuadTool> tool;

  explicit ReportRun(vm::Program prog, std::uint64_t slice = 100)
      : program(std::move(prog)) {
    engine = std::make_unique<pin::Engine>(program, host);
    tool = std::make_unique<TQuadTool>(*engine, Options{.slice_interval = slice});
    engine->run();
  }
};

vm::Program simple_two_kernel_program() {
  ProgramBuilder prog;
  const auto buf = prog.alloc_global("buf", 1024);
  auto& reader = prog.begin_function("reader");
  reader.movi(R{1}, static_cast<std::int64_t>(buf));
  reader.count_loop_imm(R{2}, 0, 50, [&] {
    reader.andi(R{3}, R{2}, 63);
    reader.shli(R{3}, R{3}, 3);
    reader.add(R{3}, R{3}, R{1});
    reader.load(R{4}, R{3}, 0, 8);
  });
  reader.ret();
  auto& writer = prog.begin_function("writer");
  writer.movi(R{1}, static_cast<std::int64_t>(buf));
  writer.count_loop_imm(R{2}, 0, 50, [&] {
    writer.andi(R{3}, R{2}, 63);
    writer.shli(R{3}, R{3}, 3);
    writer.add(R{3}, R{3}, R{1});
    writer.store(R{3}, 0, R{2}, 8);
  });
  writer.ret();
  auto& main_fn = prog.begin_function("main");
  main_fn.call("writer");
  main_fn.call("reader");
  main_fn.halt();
  return prog.build("main");
}

TEST(BandwidthTable, RendersMbPerSecondColumns) {
  ReportRun run(simple_two_kernel_program());
  CpuModel model;
  model.clock_ghz = 1.0;
  model.cpi = 1.0;
  const std::string text = bandwidth_table(*run.tool, model).to_ascii();
  EXPECT_NE(text.find("avg read MB/s"), std::string::npos);
  EXPECT_NE(text.find("reader"), std::string::npos);
  EXPECT_NE(text.find("writer"), std::string::npos);
}

TEST(DenseSeries, EveryMetricBranch) {
  ReportRun run(simple_two_kernel_program(), 10);
  const auto reader = *run.program.find("reader");
  const auto writer = *run.program.find("writer");
  const auto& reader_totals = run.tool->bandwidth().kernel(reader).totals;
  const auto& writer_totals = run.tool->bandwidth().kernel(writer).totals;

  auto sum = [&](std::uint32_t kernel, Metric metric) {
    std::uint64_t total = 0;
    for (double v : dense_series(*run.tool, kernel, metric)) {
      total += static_cast<std::uint64_t>(v);
    }
    return total;
  };
  EXPECT_EQ(sum(reader, Metric::kReadIncl), reader_totals.read_incl);
  EXPECT_EQ(sum(reader, Metric::kReadExcl), reader_totals.read_excl);
  EXPECT_EQ(sum(writer, Metric::kWriteIncl), writer_totals.write_incl);
  EXPECT_EQ(sum(writer, Metric::kWriteExcl), writer_totals.write_excl);
  EXPECT_EQ(sum(reader, Metric::kReadWriteIncl),
            reader_totals.read_incl + reader_totals.write_incl);
  EXPECT_EQ(sum(reader, Metric::kReadWriteExcl),
            reader_totals.read_excl + reader_totals.write_excl);
}

TEST(FlatProfile, TieBreaksByName) {
  // reader and writer execute identical instruction counts; order must be
  // deterministic (alphabetical on ties).
  ReportRun run(simple_two_kernel_program());
  const auto rows = flat_profile(*run.tool);
  ASSERT_GE(rows.size(), 2u);
  std::size_t reader_pos = 99, writer_pos = 99;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].name == "reader") reader_pos = i;
    if (rows[i].name == "writer") writer_pos = i;
  }
  ASSERT_NE(reader_pos, 99u);
  ASSERT_NE(writer_pos, 99u);
  if (rows[reader_pos].instructions == rows[writer_pos].instructions) {
    EXPECT_LT(reader_pos, writer_pos);  // "reader" < "writer"
  }
}

TEST(FlatProfile, FractionsSumToOneWhenAllTracked) {
  ReportRun run(simple_two_kernel_program());
  double total = 0.0;
  for (const auto& row : flat_profile(*run.tool)) total += row.time_fraction;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

}  // namespace
}  // namespace tq::tquad
