#include <gtest/gtest.h>

#include "gasm/builder.hpp"
#include "tquad/callstack.hpp"

namespace tq::tquad {
namespace {

/// Program fixture: main (id varies), lib (library image), os (OS image).
vm::Program make_program() {
  gasm::ProgramBuilder prog;
  auto& a = prog.begin_function("alpha");
  a.ret();
  auto& b = prog.begin_function("beta");
  b.ret();
  auto& lib = prog.begin_function("lib", vm::ImageKind::kLibrary);
  lib.ret();
  auto& osf = prog.begin_function("osf", vm::ImageKind::kOs);
  osf.ret();
  auto& main_fn = prog.begin_function("main");
  main_fn.halt();
  return prog.build("main");
}

TEST(CallStack, PushPopBalancedAttribution) {
  const vm::Program prog = make_program();
  CallStack stack(prog, LibraryPolicy::kExclude);
  const auto alpha = *prog.find("alpha");
  const auto beta = *prog.find("beta");
  EXPECT_EQ(stack.top(), kNoKernel);
  stack.on_enter(alpha);
  EXPECT_EQ(stack.top(), alpha);
  stack.on_enter(beta);
  EXPECT_EQ(stack.top(), beta);
  stack.on_ret(beta);
  EXPECT_EQ(stack.top(), alpha);
  stack.on_ret(alpha);
  EXPECT_EQ(stack.top(), kNoKernel);
  EXPECT_EQ(stack.mismatched_pops(), 0u);
  EXPECT_EQ(stack.max_depth(), 2u);
}

TEST(CallStack, ExcludePolicySuspendsAttribution) {
  const vm::Program prog = make_program();
  CallStack stack(prog, LibraryPolicy::kExclude);
  const auto alpha = *prog.find("alpha");
  const auto lib = *prog.find("lib");
  stack.on_enter(alpha);
  stack.on_enter(lib);  // pushed as a suspension marker
  EXPECT_EQ(stack.top(), kNoKernel) << "library code must not be attributed";
  stack.on_ret(lib);
  EXPECT_EQ(stack.top(), alpha);
  EXPECT_FALSE(stack.tracked(lib));
  EXPECT_TRUE(stack.tracked(alpha));
}

TEST(CallStack, AttributeToCallerPolicy) {
  const vm::Program prog = make_program();
  CallStack stack(prog, LibraryPolicy::kAttributeToCaller);
  const auto alpha = *prog.find("alpha");
  const auto lib = *prog.find("lib");
  stack.on_enter(alpha);
  stack.on_enter(lib);  // invisible
  EXPECT_EQ(stack.top(), alpha) << "library work accrues to the caller";
  stack.on_ret(lib);  // ignored, not a mismatch
  EXPECT_EQ(stack.top(), alpha);
  EXPECT_EQ(stack.mismatched_pops(), 0u);
}

TEST(CallStack, TrackPolicyReportsLibraries) {
  const vm::Program prog = make_program();
  CallStack stack(prog, LibraryPolicy::kTrack);
  const auto lib = *prog.find("lib");
  const auto osf = *prog.find("osf");
  stack.on_enter(lib);
  EXPECT_EQ(stack.top(), lib);
  EXPECT_TRUE(stack.tracked(lib));
  EXPECT_TRUE(stack.tracked(osf));
  stack.on_ret(lib);
}

TEST(CallStack, OsImageFollowsLibraryPolicy) {
  const vm::Program prog = make_program();
  CallStack stack(prog, LibraryPolicy::kExclude);
  const auto osf = *prog.find("osf");
  stack.on_enter(osf);
  EXPECT_EQ(stack.top(), kNoKernel);
  stack.on_ret(osf);
}

TEST(CallStack, RecursionDepthTracking) {
  const vm::Program prog = make_program();
  CallStack stack(prog, LibraryPolicy::kExclude);
  const auto alpha = *prog.find("alpha");
  for (int i = 0; i < 10; ++i) stack.on_enter(alpha);
  EXPECT_EQ(stack.depth(), 10u);
  EXPECT_EQ(stack.max_depth(), 10u);
  for (int i = 0; i < 10; ++i) stack.on_ret(alpha);
  EXPECT_EQ(stack.depth(), 0u);
  EXPECT_EQ(stack.mismatched_pops(), 0u);
}

TEST(CallStack, MismatchedPopCounted) {
  const vm::Program prog = make_program();
  CallStack stack(prog, LibraryPolicy::kExclude);
  const auto alpha = *prog.find("alpha");
  const auto beta = *prog.find("beta");
  stack.on_enter(alpha);
  stack.on_ret(beta);  // beta was never pushed
  EXPECT_EQ(stack.mismatched_pops(), 1u);
  EXPECT_EQ(stack.top(), alpha) << "stack must be preserved on mismatch";
}

}  // namespace
}  // namespace tq::tquad
