#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>

#include "support/paged_memory.hpp"
#include "support/rng.hpp"

namespace tq {
namespace {

TEST(PagedMemory, ReadsOfUntouchedMemoryAreZero) {
  PagedMemory mem;
  EXPECT_EQ(mem.load(0, 8), 0u);
  EXPECT_EQ(mem.load(0xdeadbeef, 4), 0u);
  std::uint8_t buf[16];
  std::memset(buf, 0xff, sizeof buf);
  mem.read(1234, buf);
  for (std::uint8_t b : buf) EXPECT_EQ(b, 0);
  EXPECT_EQ(mem.resident_pages(), 0u);
}

TEST(PagedMemory, StoreLoadRoundTripAllSizes) {
  PagedMemory mem;
  const std::uint64_t addr = 0x1000'0000;
  for (unsigned size : {1u, 2u, 4u, 8u}) {
    const std::uint64_t value = 0x1122334455667788ull;
    mem.store(addr, value, size);
    const std::uint64_t mask = size == 8 ? ~0ull : ((1ull << (8 * size)) - 1);
    EXPECT_EQ(mem.load(addr, size), value & mask) << "size " << size;
  }
}

TEST(PagedMemory, LittleEndianLayout) {
  PagedMemory mem;
  mem.store(100, 0x0A0B0C0D, 4);
  EXPECT_EQ(mem.load(100, 1), 0x0Du);
  EXPECT_EQ(mem.load(101, 1), 0x0Cu);
  EXPECT_EQ(mem.load(102, 1), 0x0Bu);
  EXPECT_EQ(mem.load(103, 1), 0x0Au);
}

TEST(PagedMemory, CrossPageAccess) {
  PagedMemory mem;
  const std::uint64_t addr = PagedMemory::kPageSize - 3;  // straddles pages
  mem.store(addr, 0x1234567890abcdefull, 8);
  EXPECT_EQ(mem.load(addr, 8), 0x1234567890abcdefull);
  EXPECT_EQ(mem.resident_pages(), 2u);
}

TEST(PagedMemory, SpanReadWriteAcrossManyPages) {
  PagedMemory mem;
  std::vector<std::uint8_t> data(3 * PagedMemory::kPageSize + 17);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  const std::uint64_t addr = 5 * PagedMemory::kPageSize - 9;
  mem.write(addr, data);
  std::vector<std::uint8_t> back(data.size());
  mem.read(addr, back);
  EXPECT_EQ(back, data);
}

TEST(PagedMemory, F64RoundTrip) {
  PagedMemory mem;
  mem.store_f64(64, 3.14159265358979);
  EXPECT_DOUBLE_EQ(mem.load_f64(64), 3.14159265358979);
  mem.store_f64(72, -0.0);
  EXPECT_EQ(std::signbit(mem.load_f64(72)), true);
}

TEST(PagedMemory, ClearDropsAllPages) {
  PagedMemory mem;
  mem.store(0, 1, 8);
  mem.store(1 << 20, 2, 8);
  EXPECT_GT(mem.resident_pages(), 0u);
  mem.clear();
  EXPECT_EQ(mem.resident_pages(), 0u);
  EXPECT_EQ(mem.load(0, 8), 0u);
}

TEST(PagedMemory, MoveTransfersPages) {
  PagedMemory mem;
  mem.store(42, 0x99, 1);
  PagedMemory other = std::move(mem);
  EXPECT_EQ(other.load(42, 1), 0x99u);
}

/// Property: random stores/loads agree with a std::map byte-level model.
class PagedMemoryRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PagedMemoryRandomized, AgreesWithReferenceModel) {
  SplitMix64 rng(GetParam());
  PagedMemory mem;
  std::map<std::uint64_t, std::uint8_t> model;
  for (int op = 0; op < 2000; ++op) {
    // Confine to a 64 KiB window so reads frequently hit written bytes.
    const std::uint64_t addr = 0x2000 + rng.next_below(1 << 16);
    const unsigned size = 1u << rng.next_below(4);
    if (rng.next_below(2) == 0) {
      const std::uint64_t value = rng.next();
      mem.store(addr, value, size);
      for (unsigned b = 0; b < size; ++b) {
        model[addr + b] = static_cast<std::uint8_t>(value >> (8 * b));
      }
    } else {
      const std::uint64_t got = mem.load(addr, size);
      std::uint64_t want = 0;
      for (unsigned b = 0; b < size; ++b) {
        auto it = model.find(addr + b);
        const std::uint8_t byte = it == model.end() ? 0 : it->second;
        want |= static_cast<std::uint64_t>(byte) << (8 * b);
      }
      ASSERT_EQ(got, want) << "addr " << addr << " size " << size;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PagedMemoryRandomized,
                         ::testing::Values(1, 2, 3, 17, 99, 12345));

}  // namespace
}  // namespace tq
