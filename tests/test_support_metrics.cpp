#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "support/metrics.hpp"

namespace tq::metrics {
namespace {

TEST(Histogram, BucketOfPowerOfTwoBoundaries) {
  // Bucket 0 holds zeros; bucket b holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64u);
}

TEST(Histogram, BucketLimitsAreInclusiveUpperBounds) {
  EXPECT_EQ(Histogram::bucket_limit(0), 0u);
  EXPECT_EQ(Histogram::bucket_limit(1), 1u);
  EXPECT_EQ(Histogram::bucket_limit(2), 3u);
  EXPECT_EQ(Histogram::bucket_limit(10), 1023u);
  EXPECT_EQ(Histogram::bucket_limit(64), ~std::uint64_t{0});
  // Every value lands in the bucket whose limit is >= the value and whose
  // predecessor's limit is < the value.
  for (std::uint64_t v : {0ull, 1ull, 2ull, 7ull, 8ull, 4095ull, 4096ull}) {
    const std::size_t b = Histogram::bucket_of(v);
    EXPECT_LE(v, Histogram::bucket_limit(b)) << v;
    if (b > 0) EXPECT_GT(v, Histogram::bucket_limit(b - 1)) << v;
  }
}

TEST(Histogram, ObserveAndMerge) {
  Histogram a;
  a.observe(0);
  a.observe(5);
  a.observe(5);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 10u);
  EXPECT_EQ(a.max(), 5u);
  EXPECT_EQ(a.bucket(0), 1u);
  EXPECT_EQ(a.bucket(3), 2u);  // 5 is in [4,7]

  Histogram b;
  b.observe(100);
  b.merge(a);
  EXPECT_EQ(b.count(), 4u);
  EXPECT_EQ(b.sum(), 110u);
  EXPECT_EQ(b.max(), 100u);
  EXPECT_EQ(b.bucket(3), 2u);
  EXPECT_EQ(b.bucket(7), 1u);  // 100 is in [64,127]

  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.bucket(3), 0u);
}

TEST(Registry, CountersAccumulate) {
  Registry registry;
  registry.add("a.count", 2);
  registry.add("a.count", 3);
  registry.add("b.count", 0);  // creation at zero still registers the name
  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.count");
  EXPECT_EQ(snap.counters[0].second, 5u);
  EXPECT_EQ(snap.counters[1].first, "b.count");
  EXPECT_EQ(snap.counters[1].second, 0u);
}

TEST(Registry, GaugeSetMaxAndHighWater) {
  Registry registry;
  registry.set_gauge("g", 10);
  registry.set_gauge("g", 4);  // value drops, high-water stays
  registry.max_gauge("m", 7);
  registry.max_gauge("m", 3);  // lower value ignored
  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.gauges.size(), 2u);
  EXPECT_EQ(snap.gauges[0].second.value, 4u);
  EXPECT_EQ(snap.gauges[0].second.high_water, 10u);
  EXPECT_EQ(snap.gauges[1].second.value, 7u);
  EXPECT_EQ(snap.gauges[1].second.high_water, 7u);
}

TEST(Registry, FoldGaugeAddsValuesMaxesHighWater) {
  // Per-thread gauges describe partitioned state: values add, peaks max.
  Registry registry;
  registry.fold_gauge("occ", GaugeValue{3, 8});
  registry.fold_gauge("occ", GaugeValue{2, 5});
  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second.value, 5u);
  EXPECT_EQ(snap.gauges[0].second.high_water, 8u);
}

TEST(ThreadSinkTest, FoldMovesEverythingAndResets) {
  Registry registry;
  ThreadSink sink(registry);
  auto& c = sink.counter("t.count");
  auto& g = sink.gauge("t.gauge");
  auto& h = sink.histogram("t.hist");
  c.add(4);
  c.add();
  g.set(9);
  g.set(2);
  h.observe(16);
  sink.fold();
  // Slot references stay valid and zeroed after fold; new updates fold again.
  c.add(10);
  sink.fold();

  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].second, 15u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second.value, 2u);
  EXPECT_EQ(snap.gauges[0].second.high_water, 9u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count(), 1u);
  EXPECT_EQ(snap.histograms[0].second.sum(), 16u);
}

TEST(ThreadSinkTest, SameNameReturnsSameSlot) {
  Registry registry;
  ThreadSink sink(registry);
  EXPECT_EQ(&sink.counter("x"), &sink.counter("x"));
  EXPECT_EQ(&sink.gauge("y"), &sink.gauge("y"));
  EXPECT_EQ(&sink.histogram("z"), &sink.histogram("z"));
}

TEST(ThreadSinkTest, DestructorFoldsLeftovers) {
  Registry registry;
  {
    ThreadSink sink(registry);
    sink.counter("leftover").add(42);
  }
  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].second, 42u);
}

TEST(ThreadSinkTest, ConcurrentSinksFoldWithoutLoss) {
  Registry registry;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      ThreadSink sink(registry);
      auto& c = sink.counter("conc.count");
      auto& g = sink.gauge("conc.gauge");
      auto& h = sink.histogram("conc.hist");
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add();
        h.observe(i & 0xff);
      }
      g.set(static_cast<std::uint64_t>(t) + 1);
    });
  }
  for (auto& th : threads) th.join();
  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].second, kThreads * kPerThread);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second.value, 1u + 2u + 3u + 4u);
  EXPECT_EQ(snap.gauges[0].second.high_water, 4u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count(), kThreads * kPerThread);
}

TEST(Render, TextIsSortedAndStable) {
  Registry registry;
  registry.add("z.last", 1);
  registry.add("a.first", 2);
  registry.add("m.middle", 3);
  const std::string text = registry.render_text();
  const std::size_t a = text.find("a.first");
  const std::size_t m = text.find("m.middle");
  const std::size_t z = text.find("z.last");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, m);
  EXPECT_LT(m, z);
}

TEST(Render, JsonKeysStableAcrossEquivalentRuns) {
  // Two registries populated in different orders with the same names must
  // render byte-identical JSON (std::map iteration sorts the keys).
  Registry first;
  first.add("b", 1);
  first.add("a", 2);
  first.set_gauge("g", 3);
  first.observe("h", 4);
  Registry second;
  second.observe("h", 4);
  second.set_gauge("g", 3);
  second.add("a", 2);
  second.add("b", 1);
  EXPECT_EQ(first.render_json(), second.render_json());
}

TEST(Render, JsonEscapesAndStructure) {
  Registry registry;
  registry.add("plain", 7);
  registry.observe("hist", 0);
  registry.observe("hist", 5);
  const std::string json = registry.render_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"plain\": 7"), std::string::npos);
  // Non-empty buckets only: value 5 lands in bucket 3 (limit 7), zero in
  // bucket 0 (limit 0).
  EXPECT_NE(json.find("[0, 1]"), std::string::npos);
  EXPECT_NE(json.find("[7, 1]"), std::string::npos);
}

}  // namespace
}  // namespace tq::metrics
