#!/bin/sh
# CLI option-validation test: incoherent flag values must fail at parse time
# with exit code 1 and a clear message naming the offending option — before
# any guest execution or file I/O. Also exercises the multi-tool session
# modes the smoke test does not cover.
# Usage: cli_validation.sh <build-tools-dir> <workdir>
set -e
TOOLS="$1"
WORK="$2"
mkdir -p "$WORK"
cd "$WORK"

# expect_error <grep-pattern> -- <command...>
# The command must exit 1 and print the pattern on stderr.
expect_error() {
  pattern="$1"
  shift 2  # drop pattern and the "--" separator
  status=0
  "$@" > /dev/null 2> err.txt || status=$?
  if [ "$status" -ne 1 ]; then
    echo "expected exit 1, got $status: $*" >&2
    cat err.txt >&2
    exit 1
  fi
  if ! grep -q "$pattern" err.txt; then
    echo "missing error message '$pattern' for: $*" >&2
    cat err.txt >&2
    exit 1
  fi
}

"$TOOLS/wfs_gen" -tiny -image wfs.tqim -wav in.wav

# tquad_cli: interval/period/thread/budget flags must be strictly positive.
expect_error "option -slice must be a positive integer (got 0)" -- \
    "$TOOLS/tquad_cli" -image wfs.tqim -slice 0
expect_error "option -slice must be a positive integer (got -5)" -- \
    "$TOOLS/tquad_cli" -image wfs.tqim -slice -5
expect_error "option -sample must be a positive integer (got 0)" -- \
    "$TOOLS/tquad_cli" -image wfs.tqim -sample 0
expect_error "option -threads must be a positive integer (got 0)" -- \
    "$TOOLS/tquad_cli" -replay x.tqtr -threads 0
expect_error "option -budget must be a positive integer (got 0)" -- \
    "$TOOLS/tquad_cli" -image wfs.tqim -budget 0
expect_error "unknown -report" -- \
    "$TOOLS/tquad_cli" -image wfs.tqim -report bogus
expect_error "unknown -libs policy" -- \
    "$TOOLS/tquad_cli" -image wfs.tqim -libs sometimes
expect_error "unknown -trace-format" -- \
    "$TOOLS/tquad_cli" -image wfs.tqim -trace t.tqtr -trace-format v3
expect_error "unknown tool 'bogus'" -- \
    "$TOOLS/tquad_cli" -image wfs.tqim -tools bogus
expect_error "unknown tool ''" -- \
    "$TOOLS/tquad_cli" -image wfs.tqim -tools "tquad,,quad"
expect_error "cannot be combined with -replay" -- \
    "$TOOLS/tquad_cli" -replay run.tqtr -trace out.tqtr
expect_error "needs -image" -- \
    "$TOOLS/tquad_cli" -replay run.tqtr -tools tquad
expect_error "unknown -on-trap mode" -- \
    "$TOOLS/tquad_cli" -image wfs.tqim -on-trap retry
expect_error "only applies to -replay" -- \
    "$TOOLS/tquad_cli" -image wfs.tqim -salvage
expect_error "unknown -on-trap mode" -- \
    "$TOOLS/quad_cli" -image wfs.tqim -on-trap never

# quad_cli validation.
expect_error "option -budget must be a positive integer (got -1)" -- \
    "$TOOLS/quad_cli" -image wfs.tqim -budget -1
expect_error "option -clusters must not be negative (got -2)" -- \
    "$TOOLS/quad_cli" -image wfs.tqim -clusters -2
expect_error "unknown -trace-format" -- \
    "$TOOLS/quad_cli" -image wfs.tqim -trace t.tqtr -trace-format flat

# Multi-tool session: one pass produces all three reports plus a trace.
"$TOOLS/tquad_cli" -image wfs.tqim -in in.wav -tools tquad,quad,gprof \
    -report flat -slice 2000 -trace multi.tqtr > multi.txt
grep -q "== flat profile ==" multi.txt
grep -q "== quad kernel table" multi.txt
grep -q "producer->consumer bindings" multi.txt
grep -q "== gprof flat profile" multi.txt
test -s multi.tqtr

# Session replay: the same trace replays into the same tquad flat profile.
"$TOOLS/tquad_cli" -replay multi.tqtr -image wfs.tqim -tools tquad,gprof \
    -report flat -slice 2000 > replayed.txt
grep -q "replayed session" replayed.txt
grep -q "== gprof flat profile" replayed.txt
# Identical flat-profile tables, live vs replay (strip the header lines and
# the other tools' sections: compare just the tquad flat profile block).
sed -n '/== flat profile ==/,/^$/p' multi.txt > flat_live.txt
sed -n '/== flat profile ==/,/^$/p' replayed.txt > flat_replay.txt
cmp flat_live.txt flat_replay.txt

# A non-tquad tool subset runs without the bandwidth machinery.
"$TOOLS/tquad_cli" -image wfs.tqim -in in.wav -tools gprof > gprof_only.txt
grep -q "retired" gprof_only.txt
grep -q "== gprof flat profile" gprof_only.txt
if grep -q "== flat profile ==" gprof_only.txt; then
  echo "tquad report printed without tquad tool" >&2
  exit 1
fi

# --- exit-code contract: 0 ok/truncated, 1 tool error, 2 usage, 3 guest trap ---

# expect_status <want> <stdout-file> -- <command...>
expect_status() {
  want="$1"
  out="$2"
  shift 3  # drop want, stdout file, and the "--" separator
  status=0
  "$@" > "$out" 2> err.txt || status=$?
  if [ "$status" -ne "$want" ]; then
    echo "expected exit $want, got $status: $*" >&2
    cat err.txt >&2
    exit 1
  fi
}

# Usage errors exit 2.
expect_status 2 usage.txt -- "$TOOLS/tquad_cli"
expect_status 2 usage.txt -- "$TOOLS/quad_cli"
expect_status 2 usage.txt -- "$TOOLS/asm_run"

# Malformed -pipeline specs are usage errors (exit 2), validated before any
# guest execution, on both CLIs.
expect_status 2 usage.txt -- \
    "$TOOLS/tquad_cli" -image wfs.tqim -pipeline bogus
grep -q "unknown -pipeline mode 'bogus'" err.txt
expect_status 2 usage.txt -- \
    "$TOOLS/tquad_cli" -image wfs.tqim -pipeline parallel:x
grep -q "bad -pipeline worker count" err.txt
expect_status 2 usage.txt -- \
    "$TOOLS/tquad_cli" -image wfs.tqim -pipeline parallel:
grep -q "bad -pipeline worker count" err.txt
expect_status 2 usage.txt -- \
    "$TOOLS/tquad_cli" -image wfs.tqim -pipeline parallel:99999
grep -q "bad -pipeline worker count" err.txt
# An explicit worker count of 0 must not silently fall through to the auto
# (hardware-concurrency) path — it is a usage error, leading zeros included.
expect_status 2 usage.txt -- \
    "$TOOLS/tquad_cli" -image wfs.tqim -pipeline parallel:0
grep -q "bad -pipeline worker count '0'" err.txt
expect_status 2 usage.txt -- \
    "$TOOLS/tquad_cli" -image wfs.tqim -pipeline parallel:0000
grep -q "bad -pipeline worker count '0000'" err.txt
expect_status 2 usage.txt -- \
    "$TOOLS/quad_cli" -image wfs.tqim -pipeline parallel:0
grep -q "bad -pipeline worker count '0'" err.txt
expect_status 2 usage.txt -- \
    "$TOOLS/quad_cli" -image wfs.tqim -pipeline Serial
grep -q "unknown -pipeline mode" err.txt

# Malformed -engine names are usage errors (exit 2) on both CLIs, validated
# before any guest execution.
expect_status 2 usage.txt -- \
    "$TOOLS/tquad_cli" -image wfs.tqim -engine bogus
grep -q "unknown -engine 'bogus'" err.txt
expect_status 2 usage.txt -- \
    "$TOOLS/tquad_cli" -image wfs.tqim -engine Compiled
grep -q "unknown -engine" err.txt
expect_status 2 usage.txt -- \
    "$TOOLS/quad_cli" -image wfs.tqim -engine jit
grep -q "unknown -engine 'jit'" err.txt

# Malformed -metrics specs are usage errors too.
expect_status 2 usage.txt -- \
    "$TOOLS/tquad_cli" -image wfs.tqim -metrics xml
grep -q "unknown -metrics format 'xml'" err.txt
expect_status 2 usage.txt -- \
    "$TOOLS/tquad_cli" -image wfs.tqim -metrics json:
grep -q "empty -metrics path" err.txt
expect_status 2 usage.txt -- \
    "$TOOLS/quad_cli" -image wfs.tqim -metrics yaml
grep -q "unknown -metrics format" err.txt
expect_error "option -heartbeat must not be negative" -- \
    "$TOOLS/tquad_cli" -image wfs.tqim -heartbeat -1

# Malformed -viz specs are usage errors; a replay without an analysis session
# has no access stream to map.
expect_status 2 usage.txt -- \
    "$TOOLS/tquad_cli" -image wfs.tqim -viz svg
grep -q "unknown -viz format 'svg'" err.txt
expect_status 2 usage.txt -- \
    "$TOOLS/tquad_cli" -image wfs.tqim -viz json:
grep -q "empty -viz path" err.txt
expect_status 2 usage.txt -- \
    "$TOOLS/tquad_cli" -replay run.tqtr -viz json
grep -q "needs a profiling session" err.txt
expect_error "option -viz-bucket must be a positive integer (got 0)" -- \
    "$TOOLS/tquad_cli" -image wfs.tqim -viz json -viz-bucket 0

# A valid -pipeline parallel run produces the same reports as the serial
# multi-tool run above, and records a byte-identical trace.
"$TOOLS/tquad_cli" -image wfs.tqim -in in.wav -tools tquad,quad,gprof \
    -report flat -slice 2000 -trace multi_par.tqtr \
    -pipeline parallel:3 > multi_par.txt
grep -v "trace written to" multi.txt > multi_serial_body.txt
grep -v "trace written to" multi_par.txt > multi_par_body.txt
cmp multi_serial_body.txt multi_par_body.txt
cmp multi.tqtr multi_par.tqtr

# Engine parity at the CLI surface: -engine interp and -engine compiled
# produce byte-identical reports and traces (multi.txt above ran under the
# default, which is the compiled engine).
"$TOOLS/tquad_cli" -image wfs.tqim -in in.wav -tools tquad,quad,gprof \
    -report flat -slice 2000 -trace multi_interp.tqtr \
    -engine interp > multi_interp.txt
grep -v "trace written to" multi_interp.txt > multi_interp_body.txt
cmp multi_serial_body.txt multi_interp_body.txt
cmp multi.tqtr multi_interp.tqtr

# A trapping guest: partial reports and exit 3 by default, no reports under
# -on-trap abort, and a graceful TRUNCATED exit 0 under a tight -budget.
cat > trap.s <<'EOF'
.entry main
.func work
    movi   r1, 5
    movi   r2, 0
    divs   r3, r1, r2
    ret
.func main
    movi   r10, 0
spin:
    addi   r10, r10, 1
    sltsi  r0, r10, 50
    brnz   r0, spin
    call   work
    halt
EOF
expect_status 3 trap_run.txt -- "$TOOLS/asm_run" trap.s -image trap.tqim
grep -q "guest trap" err.txt
grep -q "division" err.txt

expect_status 3 trap_report.txt -- "$TOOLS/tquad_cli" -image trap.tqim
grep -q "status: PARTIAL (guest trap:" trap_report.txt
grep -q "in 'work'" trap_report.txt
grep -q "== flat profile ==" trap_report.txt

expect_status 3 trap_abort.txt -- \
    "$TOOLS/tquad_cli" -image trap.tqim -on-trap abort
if grep -q "flat profile" trap_abort.txt; then
  echo "reports printed despite -on-trap abort" >&2
  exit 1
fi
grep -q "guest trap" err.txt

expect_status 3 trap_quad.txt -- "$TOOLS/quad_cli" -image trap.tqim
grep -q "status: PARTIAL" trap_quad.txt

expect_status 0 truncated.txt -- \
    "$TOOLS/tquad_cli" -image trap.tqim -budget 20 -report flat
grep -q "status: TRUNCATED (instruction budget exhausted" truncated.txt

# A trace recorded up to the trap is finalized and replayable.
expect_status 3 trap_traced.txt -- \
    "$TOOLS/tquad_cli" -image trap.tqim -trace trap.tqtr -report flat
test -s trap.tqtr
"$TOOLS/tqtr_doctor" verify trap.tqtr > /dev/null
expect_status 0 trap_replay.txt -- \
    "$TOOLS/tquad_cli" -replay trap.tqtr -image trap.tqim -slice 5000

# -pipeline auto resolves before the run (to parallel on this host iff it
# has >= 4 hardware threads) and produces the same reports and trace as the
# serial multi-tool run above.
"$TOOLS/tquad_cli" -image wfs.tqim -in in.wav -tools tquad,quad,gprof \
    -report flat -slice 2000 -trace multi_auto.tqtr \
    -pipeline auto > multi_auto.txt
grep -v "trace written to" multi_auto.txt > multi_auto_body.txt
cmp multi_serial_body.txt multi_auto_body.txt
cmp multi.tqtr multi_auto.tqtr

# auto is consumer-aware: one attached tool with nothing to shard means the
# workers would be pure transport overhead, so auto must say why it stayed
# serial. The note prefix is shared with the small-host branch, so the grep
# holds on any machine.
"$TOOLS/tquad_cli" -image wfs.tqim -in in.wav -tools tquad -report flat \
    -slice 2000 -pipeline auto > auto_single.txt 2> auto_note.txt
grep -q "note: -pipeline auto selected serial (" auto_note.txt
# ...and the resolved-serial run reports exactly what -pipeline serial does.
"$TOOLS/tquad_cli" -image wfs.tqim -in in.wav -tools tquad -report flat \
    -slice 2000 -pipeline serial > serial_single.txt
cmp serial_single.txt auto_single.txt

# tquad_farm usage errors exit 2, validated before any worker is spawned.
expect_status 2 usage.txt -- "$TOOLS/tquad_farm"
grep -q "missing -traces" err.txt
expect_status 2 usage.txt -- "$TOOLS/tquad_farm" -traces multi.tqtr
grep -q "missing -state" err.txt
expect_error "option -workers must be a positive integer (got 0)" -- \
    "$TOOLS/tquad_farm" -traces multi.tqtr -state farm_state -workers 0
expect_error "option -max-attempts must be a positive integer (got 0)" -- \
    "$TOOLS/tquad_farm" -traces multi.tqtr -state farm_state -max-attempts 0
expect_error "option -shard-blocks must not be negative (got -1)" -- \
    "$TOOLS/tquad_farm" -traces multi.tqtr -state farm_state -shard-blocks -1
expect_status 2 usage.txt -- \
    "$TOOLS/tquad_farm" -traces multi.tqtr -state farm_state -chaos-kill 1.5
grep -q "chaos-kill/-chaos-hang must be in" err.txt
expect_status 2 usage.txt -- "$TOOLS/tquad_farm" -worker -trace multi.tqtr
grep -q "worker needs -trace and -sidecar" err.txt

echo "cli validation: OK"
