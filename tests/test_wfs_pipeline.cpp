// End-to-end validation of the wfs guest application against the native
// golden model: same input, same arithmetic, outputs must agree.
#include <gtest/gtest.h>

#include <cmath>

#include "vm/machine.hpp"
#include "wfs/runner.hpp"

namespace tq::wfs {
namespace {

TEST(WfsPipeline, GuestRunsToCompletion) {
  WfsRun run = prepare_wfs_run(WfsConfig::tiny());
  vm::Machine machine(run.artifacts.program, run.host);
  machine.set_instruction_budget(200'000'000);
  const vm::RunResult result = machine.run();
  EXPECT_GT(result.retired, 100'000u);
  // Output WAV must exist: header + all interleaved PCM16 samples.
  const auto& bytes = run.host.output(WfsArtifacts::kOutputFd);
  const WfsConfig& cfg = run.config;
  EXPECT_EQ(bytes.size(), kWavHeaderSize + cfg.output_samples() * 2);
}

TEST(WfsPipeline, OutputMatchesGoldenModel) {
  const WfsConfig cfg = WfsConfig::tiny();
  WfsRun run = prepare_wfs_run(cfg);
  vm::Machine machine(run.artifacts.program, run.host);
  machine.set_instruction_budget(200'000'000);
  machine.run();

  const GoldenResult golden = run_golden(cfg, run.input);
  const WavData out = run.decode_output();
  ASSERT_EQ(out.channels, cfg.speakers);
  ASSERT_EQ(out.samples.size(), golden.output.size());
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < out.samples.size(); ++i) {
    // The guest mirrors the golden arithmetic operation for operation, so
    // allow at most one LSB of quantisation wobble.
    if (std::abs(static_cast<int>(out.samples[i]) -
                 static_cast<int>(golden.output[i])) > 1) {
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u) << "first guest sample: " << out.samples[0]
                            << " golden: " << golden.output[0];
  // The output must not be silence.
  std::int16_t peak = 0;
  for (std::int16_t s : out.samples) {
    peak = std::max<std::int16_t>(peak, static_cast<std::int16_t>(std::abs(int(s))));
  }
  EXPECT_GT(peak, 1000);
}

TEST(WfsPipeline, GainsAndDelaysMatchGolden) {
  const WfsConfig cfg = WfsConfig::tiny();
  WfsRun run = prepare_wfs_run(cfg);
  vm::Machine machine(run.artifacts.program, run.host);
  machine.run();
  const GoldenResult golden = run_golden(cfg, run.input);
  for (std::uint32_t s = 0; s < cfg.speakers; ++s) {
    const double gain = machine.memory().load_f64(run.artifacts.gains_addr + 8 * s);
    const auto delay = static_cast<std::int64_t>(
        machine.memory().load(run.artifacts.delays_addr + 8 * s, 8));
    EXPECT_DOUBLE_EQ(gain, golden.gains[s]) << "speaker " << s;
    EXPECT_EQ(delay, golden.delays[s]) << "speaker " << s;
  }
}


TEST(WfsPipeline, StandardConfigMatchesGoldenBitExactly) {
  // The full-size workload (~43M instructions): the guest and the golden
  // model must agree on every output sample, proving numeric fidelity does
  // not drift with scale.
  const WfsConfig cfg = WfsConfig::standard();
  WfsRun run = prepare_wfs_run(cfg);
  vm::Machine machine(run.artifacts.program, run.host);
  machine.set_instruction_budget(500'000'000);
  machine.run();
  const GoldenResult golden = run_golden(cfg, run.input);
  const WavData out = run.decode_output();
  ASSERT_EQ(out.samples.size(), golden.output.size());
  EXPECT_EQ(out.samples, golden.output);
  EXPECT_EQ(out.channels, cfg.speakers);
}


TEST(WfsPipeline, MalformedInputWavAbortsGracefully) {
  // wav_load verifies the RIFF/WAVE/data magics and halts the guest (after
  // logging -1) on garbage input — the guest's error path, not a VM trap.
  const WfsConfig cfg = WfsConfig::tiny();
  WfsArtifacts artifacts = build_wfs_program(cfg);
  vm::HostEnv host;
  host.attach_input({0xde, 0xad, 0xbe, 0xef, 0x00, 0x11});  // not a WAV
  host.create_output();
  vm::Machine machine(artifacts.program, host);
  const vm::RunResult result = machine.run();  // must not throw
  // The guest stopped during wav_load: only initialisation (ldint + the two
  // ffw filter builds) ran — a tenth of the full ~716k-instruction run.
  EXPECT_LT(result.retired, 100'000u);
  // ...logged the error marker, and wrote no samples.
  ASSERT_FALSE(host.log().empty());
  EXPECT_EQ(host.log().back(), "-1");
  EXPECT_TRUE(host.output(WfsArtifacts::kOutputFd).empty());
}

TEST(WfsPipeline, TruncatedInputZeroFills) {
  // A valid but short WAV: the guest zero-fills the remainder, exactly like
  // the golden model.
  const WfsConfig cfg = WfsConfig::tiny();
  WavData input = make_test_signal(cfg.input_samples() / 3);
  WfsArtifacts artifacts = build_wfs_program(cfg);
  vm::HostEnv host;
  host.attach_input(wav_encode(input));
  host.create_output();
  vm::Machine machine(artifacts.program, host);
  machine.run();
  const GoldenResult golden = run_golden(cfg, input);
  const WavData out = wav_decode(host.output(WfsArtifacts::kOutputFd));
  EXPECT_EQ(out.samples, golden.output);
}

}  // namespace
}  // namespace tq::wfs
