// Determinism matrix for the parallel live-analysis pipeline: a session
// running its consumers on drain workers (-pipeline parallel) must produce
// byte-identical tool state to the serial reference dispatch — for every
// tool combination, on every workload, under injected guest traps, and with
// the ring squeezed down to one single-event batch (pure backpressure).
// The pipeline is only allowed to change *when* accounting runs, never what
// it accumulates.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "gprofsim/gprof_tool.hpp"
#include "quad/quad_tool.hpp"
#include "session/session.hpp"
#include "support/metrics.hpp"
#include "support/paged_memory.hpp"
#include "support/spsc_ring.hpp"
#include "trace/trace.hpp"
#include "tquad/tquad_tool.hpp"
#include "vm/machine.hpp"
#include "workloads/registry.hpp"
#include "workloads/workloads.hpp"

#include "session_tool_compare.hpp"

namespace tq::session {
namespace {

constexpr std::uint64_t kSlice = 1000;
constexpr std::uint64_t kSamplePeriod = 700;

/// Which consumers ride the session (bit i of the matrix loop).
struct ToolMask {
  bool tquad = false;
  bool quad = false;
  bool gprof = false;
  bool trace = false;
};

constexpr ToolMask kAllTools{true, true, true, true};

PipelineOptions parallel_options(unsigned workers, std::size_t batch_events = 256,
                                 std::size_t ring_batches = 2,
                                 unsigned access_shards = 0) {
  PipelineOptions options;
  options.mode = PipelineMode::kParallel;
  options.workers = workers;
  options.batch_events = batch_events;
  options.ring_batches = ring_batches;
  options.access_shards = access_shards;
  return options;
}

/// Pin the transport exactly at the configured sizes: no batch resizing
/// (min == max == start, so every controller policy — including one forced
/// via TQ_PIPELINE_FORCE_ADAPTIVE — is a clamped no-op) and no ring growth.
/// The backpressure-torture tests need this: their point is a ring that
/// stays squeezed.
PipelineOptions pin_transport(PipelineOptions options) {
  options.batch_events_min = options.batch_events;
  options.batch_events_max = options.batch_events;
  options.ring_batches_max = options.ring_batches;
  return options;
}

/// Scoped removal of TQ_PIPELINE_FORCE_ADAPTIVE, for tests that assert the
/// stats of one specific controller schedule (tier1 replays this whole
/// binary with the knob set; those runs must not flip a pinned schedule).
class ForceAdaptiveEnvGuard {
 public:
  ForceAdaptiveEnvGuard() {
    const char* value = std::getenv(kName);
    if (value != nullptr) {
      saved_ = value;
      had_value_ = true;
    }
    ::unsetenv(kName);
  }
  ~ForceAdaptiveEnvGuard() {
    if (had_value_) ::setenv(kName, saved_.c_str(), 1);
  }

 private:
  static constexpr const char* kName = "TQ_PIPELINE_FORCE_ADAPTIVE";
  std::string saved_;
  bool had_value_ = false;
};

/// One session plus the masked subset of consumers.
struct SessionRun {
  SessionRun(const vm::Program& program, const SessionConfig& config, ToolMask mask)
      : session(program, config) {
    if (mask.tquad) {
      tquad_tool.emplace(program,
                         tquad::Options{.slice_interval = kSlice,
                                        .library_policy = config.library_policy});
      session.add_consumer(*tquad_tool);
    }
    if (mask.quad) {
      quad_tool.emplace(program, quad::QuadOptions{config.library_policy});
      session.add_consumer(*quad_tool);
    }
    if (mask.gprof) {
      gprof::Options options;
      options.sample_period = kSamplePeriod;
      options.library_policy = config.library_policy;
      gprof_tool.emplace(program, options);
      session.add_consumer(*gprof_tool);
    }
    if (mask.trace) {
      recorder.emplace(program, config.library_policy, trace::TraceFormat::kV2);
      session.add_consumer(*recorder);
    }
  }

  ProfileSession session;
  std::optional<tquad::TQuadTool> tquad_tool;
  std::optional<quad::QuadTool> quad_tool;
  std::optional<gprof::GprofTool> gprof_tool;
  std::optional<trace::TraceRecorder> recorder;
};

/// Compare every tool the parallel run carried against the serial reference.
/// `serial_trace` is the reference trace taken once (take_encoded consumes).
void expect_matches_serial(SessionRun& serial, const std::vector<std::uint8_t>& serial_trace,
                           SessionRun& parallel, ToolMask mask) {
  if (mask.tquad) {
    testutil::expect_tquad_equal(*serial.tquad_tool, *parallel.tquad_tool);
  }
  if (mask.quad) {
    testutil::expect_quad_equal(*serial.quad_tool, *parallel.quad_tool);
  }
  if (mask.gprof) {
    testutil::expect_gprof_equal(*serial.gprof_tool, *parallel.gprof_tool);
  }
  if (mask.trace) {
    EXPECT_EQ(serial_trace, parallel.recorder->take_encoded());
  }
}

/// One fresh guest execution's inputs, built from the workload registry.
/// Each Instance is single-shot: the host accumulates guest output.
workloads::Instance make_guest(const std::string& name) {
  return workloads::find_workload(name).build();
}

/// Serial all-tools reference for one workload, run once per test.
struct Reference {
  explicit Reference(const std::string& name) : guest(make_guest(name)) {
    run.emplace(guest.program, SessionConfig{}, kAllTools);
    outcome = run->session.run_live(guest.host);
    trace = run->recorder->take_encoded();
  }

  workloads::Instance guest;
  std::optional<SessionRun> run;
  vm::RunOutcome outcome;
  std::vector<std::uint8_t> trace;
};

// ---------------------------------------------------------------------------
// Full tool-combination matrix: 15 non-empty consumer subsets per workload,
// one test per registered memory shape.

class PipelineMatrixZoo : public ::testing::TestWithParam<std::string> {};

TEST_P(PipelineMatrixZoo, ParallelEqualsSerial) {
  Reference ref(GetParam());
  for (unsigned bits = 1; bits < 16; ++bits) {
    const ToolMask mask{(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0,
                        (bits & 8) != 0};
    SCOPED_TRACE("tool mask bits=" + std::to_string(bits));
    workloads::Instance guest = make_guest(GetParam());
    ASSERT_EQ(ref.guest.program.serialize(), guest.program.serialize());
    SessionConfig config;
    config.pipeline = parallel_options(/*workers=*/3, /*batch_events=*/256,
                                       /*ring_batches=*/2, /*access_shards=*/3);
    SessionRun run(guest.program, config, mask);
    const vm::RunOutcome outcome = run.session.run_live(guest.host);
    EXPECT_EQ(outcome.status, ref.outcome.status);
    EXPECT_EQ(outcome.retired, ref.outcome.retired);
    EXPECT_GT(run.session.pipeline_stats().batches_published, 0u);
    expect_matches_serial(*ref.run, ref.trace, run, mask);
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, PipelineMatrixZoo,
                         ::testing::ValuesIn(workloads::workload_names()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Fault-tolerance parity: a guest trap mid-run must drain the rings and
// leave exactly the serial trapped run's state (the PR 3 PARTIAL contract
// survives the thread hop).

class PipelineFaultZoo : public ::testing::TestWithParam<std::string> {};

TEST_P(PipelineFaultZoo, TrapParityUnderParallelDispatch) {
  workloads::Instance probe = make_guest(GetParam());
  vm::Machine machine(probe.program, probe.host);
  const std::uint64_t total = machine.run().retired;
  ASSERT_GT(total, 2u);
  const std::uint64_t cut = total / 2;

  SessionConfig fault_config;
  fault_config.fault_plan.trap_at_retired = cut;

  workloads::Instance serial_guest = make_guest(GetParam());
  SessionRun serial(serial_guest.program, fault_config, kAllTools);
  const vm::RunOutcome serial_outcome = serial.session.run_live(serial_guest.host);
  ASSERT_EQ(serial_outcome.status, vm::RunStatus::kTrapped);
  ASSERT_EQ(serial_outcome.retired, cut);
  const std::vector<std::uint8_t> serial_trace = serial.recorder->take_encoded();

  workloads::Instance parallel_guest = make_guest(GetParam());
  SessionConfig parallel_config = fault_config;
  parallel_config.pipeline = parallel_options(/*workers=*/3, /*batch_events=*/64,
                                              /*ring_batches=*/2,
                                              /*access_shards=*/2);
  SessionRun parallel(parallel_guest.program, parallel_config, kAllTools);
  const vm::RunOutcome outcome = parallel.session.run_live(parallel_guest.host);
  ASSERT_EQ(outcome.status, vm::RunStatus::kTrapped);
  ASSERT_EQ(outcome.retired, cut);

  // The drain barrier ran before on_finish: every tool saw the trap outcome.
  EXPECT_EQ(parallel.tquad_tool->outcome().status, vm::RunStatus::kTrapped);
  EXPECT_EQ(parallel.quad_tool->outcome().status, vm::RunStatus::kTrapped);
  EXPECT_EQ(parallel.gprof_tool->outcome().status, vm::RunStatus::kTrapped);

  expect_matches_serial(serial, serial_trace, parallel, kAllTools);
}

INSTANTIATE_TEST_SUITE_P(Zoo, PipelineFaultZoo,
                         ::testing::ValuesIn(workloads::workload_names()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Backpressure torture: ring capacity 1 batch of 1 event makes the VM thread
// block on nearly every publish. Throughput dies; the reports must not care.

class PipelineBackpressureZoo : public ::testing::TestWithParam<std::string> {};

TEST_P(PipelineBackpressureZoo, CapacityOneParity) {
  Reference ref(GetParam());
  workloads::Instance guest = make_guest(GetParam());
  SessionConfig config;
  config.pipeline = pin_transport(parallel_options(
      /*workers=*/2, /*batch_events=*/1, /*ring_batches=*/1,
      /*access_shards=*/2));
  SessionRun run(guest.program, config, kAllTools);
  const vm::RunOutcome outcome = run.session.run_live(guest.host);
  EXPECT_EQ(outcome.status, ref.outcome.status);
  EXPECT_EQ(outcome.retired, ref.outcome.retired);
  expect_matches_serial(*ref.run, ref.trace, run, kAllTools);

  // Single-event batches in depth-1 rings: the publisher must have hit a
  // full ring at least once on any workload with thousands of events.
  const PipelineStats stats = run.session.pipeline_stats();
  EXPECT_GT(stats.batches_published, 0u);
  EXPECT_GT(stats.backpressure_waits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Zoo, PipelineBackpressureZoo,
                         ::testing::ValuesIn(workloads::workload_names()),
                         [](const auto& info) { return info.param; });

// Backpressure under a trap: the abort/drain path with a full ring is the
// nastiest corner (publisher mid-push when the guest faults).
TEST(PipelineBackpressure, HistogramFaultCapacityOne) {
  workloads::Instance probe = make_guest("histogram");
  vm::Machine machine(probe.program, probe.host);
  const std::uint64_t cut = machine.run().retired / 2;
  ASSERT_GT(cut, 0u);

  SessionConfig fault_config;
  fault_config.fault_plan.trap_at_retired = cut;
  workloads::Instance serial_guest = make_guest("histogram");
  SessionRun serial(serial_guest.program, fault_config, kAllTools);
  ASSERT_EQ(serial.session.run_live(serial_guest.host).status,
            vm::RunStatus::kTrapped);
  const std::vector<std::uint8_t> serial_trace = serial.recorder->take_encoded();

  SessionConfig parallel_config = fault_config;
  parallel_config.pipeline = pin_transport(parallel_options(
      /*workers=*/2, /*batch_events=*/1, /*ring_batches=*/1,
      /*access_shards=*/2));
  workloads::Instance parallel_guest = make_guest("histogram");
  SessionRun parallel(parallel_guest.program, parallel_config, kAllTools);
  const vm::RunOutcome outcome = parallel.session.run_live(parallel_guest.host);
  ASSERT_EQ(outcome.status, vm::RunStatus::kTrapped);
  ASSERT_EQ(outcome.retired, cut);
  expect_matches_serial(serial, serial_trace, parallel, kAllTools);
}

// ---------------------------------------------------------------------------
// QUAD shard sweep: every shard count must merge back to the serial answer
// (matmul naive has the richest producer/consumer binding structure).

TEST(PipelineShards, MatmulShardSweep) {
  Reference ref("matmul_naive");
  for (unsigned shards = 1; shards <= 4; ++shards) {
    SCOPED_TRACE("access_shards=" + std::to_string(shards));
    workloads::Instance guest = make_guest("matmul_naive");
    SessionConfig config;
    config.pipeline = parallel_options(/*workers=*/2, /*batch_events=*/128,
                                       /*ring_batches=*/2, shards);
    SessionRun run(guest.program, config, kAllTools);
    run.session.run_live(guest.host);
    expect_matches_serial(*ref.run, ref.trace, run, kAllTools);
  }
}

// Worker-count sweep, including more workers than lanes (the pipeline clamps)
// and the auto (0 = hardware concurrency) setting.
TEST(PipelineShards, WorkerSweep) {
  Reference ref("histogram");
  for (unsigned workers : {0u, 1u, 2u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    workloads::Instance guest = make_guest("histogram");
    SessionConfig config;
    config.pipeline = parallel_options(workers);
    SessionRun run(guest.program, config, kAllTools);
    run.session.run_live(guest.host);
    expect_matches_serial(*ref.run, ref.trace, run, kAllTools);
  }
}

// ---------------------------------------------------------------------------
// Direct unit for the sharded-consumer contract: feeding QuadTool's shard
// facet a split page-crossing access (count_access on the first piece only)
// and merging must equal the serial on_access of the unsplit access.

TEST(PipelineShards, QuadShardedFacetSplitAccess) {
  static const auto artifacts = workloads::build_stream(16, 1);
  const vm::Program& program = artifacts.program;
  constexpr std::uint64_t kPage = 1ull << PagedMemory::kPageBits;
  constexpr unsigned kShards = 3;

  quad::QuadTool serial(program);
  quad::QuadTool sharded(program);
  EXPECT_EQ(sharded.shard_count(), 1u);
  sharded.prepare_shards(kShards);
  EXPECT_EQ(sharded.shard_count(), kShards);

  const auto shard_of = [](std::uint64_t ea) {
    return static_cast<unsigned>((ea >> PagedMemory::kPageBits) % kShards);
  };
  const auto feed = [&](AccessEvent event) {
    serial.on_access(event);
    // Mirror the router: split per page, count_access on the first piece.
    std::uint64_t cursor = event.ea;
    std::uint32_t remaining = event.size;
    bool first = true;
    while (remaining > 0) {
      const std::uint64_t page_end =
          ((cursor >> PagedMemory::kPageBits) + 1) << PagedMemory::kPageBits;
      AccessEvent piece = event;
      piece.ea = cursor;
      piece.size = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(remaining, page_end - cursor));
      sharded.apply_access_shard(shard_of(cursor), piece, first);
      first = false;
      cursor += piece.size;
      remaining -= piece.size;
    }
  };

  // Writer kernel 0 produces across a page boundary; reader kernel 1
  // consumes the same bytes (also split), creating a 0→1 binding whose byte
  // and unique-address counts must survive the split + merge exactly.
  AccessEvent write;
  write.func = 0;
  write.kernel = 0;
  write.ea = 3 * kPage - 4;
  write.size = 8;  // crosses from page 2 into page 3
  write.is_read = false;
  feed(write);

  AccessEvent read = write;
  read.func = 1;
  read.kernel = 1;
  read.is_read = true;
  feed(read);

  // Same-page accesses land whole in their shard.
  AccessEvent aligned = write;
  aligned.ea = 7 * kPage + 64;
  aligned.size = 8;
  feed(aligned);
  AccessEvent aligned_read = aligned;
  aligned_read.kernel = 1;
  aligned_read.func = 1;
  aligned_read.is_read = true;
  feed(aligned_read);

  sharded.merge_shards();
  EXPECT_EQ(sharded.shard_count(), 1u);
  testutil::expect_quad_equal(serial, sharded);
  EXPECT_EQ(serial.binding_bytes(0, 1), 16u);
  EXPECT_EQ(sharded.binding_bytes(0, 1), 16u);
}

// ---------------------------------------------------------------------------
// Replay through the parallel pipeline: a recorded trace replayed with
// parallel dispatch equals the live serial run that produced it.

// ---------------------------------------------------------------------------
// Push racing close is a defined outcome (drop + count), not an abort. This
// is the TSan regression for the teardown path: a producer hammering the
// ring while another thread closes it must terminate with every accepted
// value delivered and every rejected one counted.

TEST(PipelineShutdown, PushRacingCloseStress) {
  for (int round = 0; round < 50; ++round) {
    SpscRing<int> ring(2);
    std::atomic<std::uint64_t> accepted{0};
    std::thread producer([&] {
      for (int i = 0; i < 1000; ++i) {
        if (ring.push(i)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        } else {
          return;  // closed under us: stop publishing, nothing lost silently
        }
      }
    });
    std::thread consumer([&] {
      int out = 0;
      std::uint64_t popped = 0;
      while (!ring.done()) {
        if (ring.try_pop(out)) {
          ++popped;
        } else {
          std::this_thread::yield();
        }
      }
      // Every accepted push is eventually popped; pops never exceed accepts.
      EXPECT_LE(popped, 1000u);
    });
    ring.close();  // race the close against both sides
    producer.join();
    consumer.join();
    EXPECT_EQ(ring.pushes(), accepted.load());
    EXPECT_LE(ring.dropped_after_close(), 1u);  // at most the racing push
  }
}

// A producer parked on a full ring during close must wake and report the
// drop instead of deadlocking (the latent teardown hang this PR fixes).
TEST(PipelineShutdown, CloseReleasesBlockedPublisher) {
  SpscRing<int> ring(1);
  ASSERT_TRUE(ring.push(0));
  std::thread producer([&] { EXPECT_FALSE(ring.push(1)); });
  while (ring.push_waits() == 0) std::this_thread::yield();
  ring.close();
  producer.join();
  EXPECT_EQ(ring.stats().dropped_after_close, 1u);
}

// ---------------------------------------------------------------------------
// Metrics parity: attaching a registry must not change any tool state, and
// the drain-barrier fold must account for every published batch.

TEST(PipelineMetrics, RegistryAttachedKeepsParityAndCountsBatches) {
  Reference ref("histogram");
  workloads::Instance guest = make_guest("histogram");
  metrics::Registry registry;
  SessionConfig config;
  config.metrics = &registry;
  config.pipeline = parallel_options(/*workers=*/2, /*batch_events=*/64,
                                     /*ring_batches=*/2, /*access_shards=*/2);
  SessionRun run(guest.program, config, kAllTools);
  const vm::RunOutcome outcome = run.session.run_live(guest.host);
  EXPECT_EQ(outcome.retired, ref.outcome.retired);
  expect_matches_serial(*ref.run, ref.trace, run, kAllTools);

  const metrics::Snapshot snap = registry.snapshot();
  const auto counter = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [key, value] : snap.counters) {
      if (key == name) return value;
    }
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  EXPECT_EQ(counter("pipeline.batches_published"),
            run.session.pipeline_stats().batches_published);
  // Every flush consults the freelist exactly once (hit or miss) before its
  // push is accepted, so on a clean run the two sides tie out.
  EXPECT_EQ(counter("pipeline.freelist.hits") +
                counter("pipeline.freelist.misses"),
            counter("pipeline.batches_published"));
  // The adaptive counters are always published, even when zero.
  EXPECT_EQ(counter("pipeline.batch.grows"),
            run.session.pipeline_stats().batch_grows);
  EXPECT_EQ(counter("pipeline.batch.shrinks"),
            run.session.pipeline_stats().batch_shrinks);
  EXPECT_EQ(counter("pipeline.ring.capacity_grows"),
            run.session.pipeline_stats().ring_capacity_grows);
  EXPECT_EQ(counter("session.events.access"),
            run.session.attribution().event_counts().accesses);
  EXPECT_GT(counter("session.events.tick"), 0u);
  // Workers folded their sinks at the drain barrier: the per-worker batch
  // histogram saw every drained batch.
  bool found_hist = false;
  for (const auto& [key, hist] : snap.histograms) {
    if (key == "pipeline.worker.batch_events") {
      found_hist = true;
      EXPECT_GT(hist.count(), 0u);
    }
  }
  EXPECT_TRUE(found_hist);
}

// ---------------------------------------------------------------------------
// Adaptivity invariance: the batch controller may resize lanes however it
// likes — reports must stay byte-identical to serial. Forced schedules pin
// each controller branch so the assertions are deterministic; the EnvGuard
// keeps an outer TQ_PIPELINE_FORCE_ADAPTIVE (tier1 stress legs) from
// flipping the schedule under us.

TEST(PipelineAdaptive, ForcedGrowKeepsParityAndGrows) {
  ForceAdaptiveEnvGuard guard;
  Reference ref("histogram");
  workloads::Instance guest = make_guest("histogram");
  SessionConfig config;
  config.pipeline = parallel_options(/*workers=*/2, /*batch_events=*/8,
                                     /*ring_batches=*/2, /*access_shards=*/2);
  config.pipeline.adaptive = AdaptiveBatch::kForceGrow;
  config.pipeline.batch_events_max = 1024;
  SessionRun run(guest.program, config, kAllTools);
  const vm::RunOutcome outcome = run.session.run_live(guest.host);
  EXPECT_EQ(outcome.retired, ref.outcome.retired);
  expect_matches_serial(*ref.run, ref.trace, run, kAllTools);

  const PipelineStats stats = run.session.pipeline_stats();
  EXPECT_GT(stats.batch_grows, 0u);
  EXPECT_EQ(stats.batch_shrinks, 0u);
  // Recycled buffers come back through the freelist once the lanes warm up.
  EXPECT_GT(stats.freelist_hits, 0u);
}

TEST(PipelineAdaptive, ForcedShrinkKeepsParityAndShrinks) {
  ForceAdaptiveEnvGuard guard;
  Reference ref("histogram");
  workloads::Instance guest = make_guest("histogram");
  SessionConfig config;
  config.pipeline = parallel_options(/*workers=*/2, /*batch_events=*/256,
                                     /*ring_batches=*/2, /*access_shards=*/2);
  config.pipeline.adaptive = AdaptiveBatch::kForceShrink;
  SessionRun run(guest.program, config, kAllTools);
  const vm::RunOutcome outcome = run.session.run_live(guest.host);
  EXPECT_EQ(outcome.retired, ref.outcome.retired);
  expect_matches_serial(*ref.run, ref.trace, run, kAllTools);

  const PipelineStats stats = run.session.pipeline_stats();
  EXPECT_GT(stats.batch_shrinks, 0u);
  EXPECT_EQ(stats.batch_grows, 0u);
}

class PipelineAdaptiveZoo : public ::testing::TestWithParam<std::string> {};

// The nastiest transport: every lane cycling its batch size through the
// whole [min, max] range over a capacity-1 ring that is pinned so the
// auto-tuner cannot relieve the pressure. Pure adaptivity + backpressure.
TEST_P(PipelineAdaptiveZoo, ForcedCycleCapacityOneParity) {
  ForceAdaptiveEnvGuard guard;
  Reference ref(GetParam());
  workloads::Instance guest = make_guest(GetParam());
  SessionConfig config;
  config.pipeline = parallel_options(/*workers=*/2, /*batch_events=*/16,
                                     /*ring_batches=*/1, /*access_shards=*/2);
  config.pipeline.adaptive = AdaptiveBatch::kForceCycle;
  config.pipeline.batch_events_min = 1;
  config.pipeline.batch_events_max = 64;
  config.pipeline.ring_batches_max = 1;  // pin: no capacity relief
  SessionRun run(guest.program, config, kAllTools);
  const vm::RunOutcome outcome = run.session.run_live(guest.host);
  EXPECT_EQ(outcome.retired, ref.outcome.retired);
  expect_matches_serial(*ref.run, ref.trace, run, kAllTools);

  const PipelineStats stats = run.session.pipeline_stats();
  EXPECT_GT(stats.batch_grows, 0u);
  EXPECT_GT(stats.batch_shrinks, 0u);
  EXPECT_EQ(stats.ring_capacity_grows, 0u);
}

INSTANTIATE_TEST_SUITE_P(Zoo, PipelineAdaptiveZoo,
                         ::testing::ValuesIn(workloads::workload_names()),
                         [](const auto& info) { return info.param; });

TEST(PipelineReplay, StreamReplayParallel) {
  Reference ref("stream");

  SessionConfig config;
  config.pipeline = parallel_options(/*workers=*/3, /*batch_events=*/32,
                                     /*ring_batches=*/2, /*access_shards=*/3);
  SessionRun replayed(ref.guest.program, config, kAllTools);
  const vm::RunOutcome outcome = replayed.session.replay(ref.trace);
  EXPECT_EQ(outcome.retired, ref.outcome.retired);
  expect_matches_serial(*ref.run, ref.trace, replayed, kAllTools);
}

}  // namespace
}  // namespace tq::session
