#include <gtest/gtest.h>

#include "gasm/builder.hpp"
#include "vm/machine.hpp"

namespace tq::gasm {
namespace {

TEST(GasmBuilder, LabelsResolveForwardAndBackward) {
  ProgramBuilder prog;
  auto& f = prog.begin_function("main");
  const auto fwd = f.new_label();
  f.movi(R{1}, 1);
  f.jmp(fwd);
  f.movi(R{1}, 2);  // skipped
  f.bind(fwd);
  f.halt();
  vm::Program program = prog.build("main");
  vm::HostEnv host;
  vm::Machine machine(program, host);
  machine.run();
  EXPECT_EQ(machine.cpu().regs[1], 1u);
}

TEST(GasmBuilder, CountLoopImmEmptyRange) {
  ProgramBuilder prog;
  auto& f = prog.begin_function("main");
  f.movi(R{5}, 0);
  f.count_loop_imm(R{6}, 3, 3, [&] { f.addi(R{5}, R{5}, 1); });
  f.count_loop_imm(R{7}, 5, 2, [&] { f.addi(R{5}, R{5}, 1); });
  f.halt();
  vm::Program program = prog.build("main");
  vm::HostEnv host;
  vm::Machine machine(program, host);
  machine.run();
  EXPECT_EQ(machine.cpu().regs[5], 0u);
}

TEST(GasmBuilder, NestedCountLoops) {
  ProgramBuilder prog;
  auto& f = prog.begin_function("main");
  f.movi(R{5}, 0);
  f.count_loop_imm(R{6}, 0, 7, [&] {
    f.count_loop_imm(R{7}, 0, 11, [&] { f.addi(R{5}, R{5}, 1); });
  });
  f.halt();
  vm::Program program = prog.build("main");
  vm::HostEnv host;
  vm::Machine machine(program, host);
  machine.run();
  EXPECT_EQ(machine.cpu().regs[5], 77u);
}

TEST(GasmBuilder, UnboundLabelAborts) {
  ProgramBuilder prog;
  auto& f = prog.begin_function("main");
  const auto label = f.new_label();
  f.jmp(label);
  f.halt();
  EXPECT_DEATH((void)prog.build("main"), "unbound label");
}

TEST(GasmBuilder, DoubleBindAborts) {
  ProgramBuilder prog;
  auto& f = prog.begin_function("main");
  const auto label = f.new_label();
  f.bind(label);
  EXPECT_DEATH(f.bind(label), "label bound twice");
}

TEST(GasmBuilder, UnknownCalleeThrows) {
  ProgramBuilder prog;
  auto& f = prog.begin_function("main");
  f.call("missing");
  f.halt();
  EXPECT_THROW((void)prog.build("main"), Error);
}

TEST(GasmBuilder, MissingEntryThrows) {
  ProgramBuilder prog;
  auto& f = prog.begin_function("other");
  f.halt();
  EXPECT_THROW((void)prog.build("main"), Error);
}

TEST(GasmBuilder, DuplicateFunctionAborts) {
  ProgramBuilder prog;
  prog.begin_function("dup");
  EXPECT_DEATH(prog.begin_function("dup"), "duplicate function");
}

TEST(GasmBuilder, GlobalsAlignedAndDistinct) {
  ProgramBuilder prog;
  const auto a = prog.alloc_global("a", 3);
  const auto b = prog.alloc_global("b", 8, 64);
  const auto c = prog.alloc_global("c", 1);
  EXPECT_GE(a, vm::kGlobalBase);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 3);
  EXPECT_GE(c, b + 8);
  EXPECT_EQ(prog.global("a"), a);
  EXPECT_EQ(prog.global("b"), b);
}

TEST(GasmBuilder, DuplicateGlobalAborts) {
  ProgramBuilder prog;
  prog.alloc_global("g", 8);
  EXPECT_DEATH(prog.alloc_global("g", 8), "duplicate global");
}

TEST(GasmBuilder, UnknownGlobalAborts) {
  ProgramBuilder prog;
  EXPECT_DEATH((void)prog.global("nope"), "unknown global");
}

TEST(GasmBuilder, InitDataAppearsInMemory) {
  ProgramBuilder prog;
  const auto addr = prog.alloc_global("blob", 8);
  prog.init_data(addr, {0xde, 0xad, 0xbe, 0xef});
  auto& f = prog.begin_function("main");
  f.halt();
  vm::Program program = prog.build("main");
  vm::HostEnv host;
  vm::Machine machine(program, host);
  machine.run();
  EXPECT_EQ(machine.memory().load(addr, 1), 0xdeu);
  EXPECT_EQ(machine.memory().load(addr + 3, 1), 0xefu);
}

TEST(GasmBuilder, PredicateLastSetsFlagAndRegister) {
  ProgramBuilder prog;
  auto& f = prog.begin_function("main");
  f.mov(R{1}, R{2});
  f.predicate_last(R{9});
  f.halt();
  vm::Program program = prog.build("main");
  const auto& ins = program.function(*program.find("main")).code[0];
  EXPECT_TRUE(ins.predicated());
  EXPECT_EQ(ins.pr, 9);
}

TEST(GasmBuilder, BuilderIsSingleShot) {
  ProgramBuilder prog;
  auto& f = prog.begin_function("main");
  f.halt();
  (void)prog.build("main");
  EXPECT_DEATH((void)prog.build("main"), "consumed");
}

TEST(GasmBuilder, CallSitesResolveAcrossDefinitionOrder) {
  // Caller defined before callee: resolution happens at build time.
  ProgramBuilder prog;
  auto& main_fn = prog.begin_function("main");
  main_fn.call("late");
  main_fn.halt();
  auto& late = prog.begin_function("late");
  late.movi(R{4}, 5);
  late.ret();
  vm::Program program = prog.build("main");
  vm::HostEnv host;
  vm::Machine machine(program, host);
  machine.run();
  EXPECT_EQ(machine.cpu().regs[4], 5u);
}

}  // namespace
}  // namespace tq::gasm
