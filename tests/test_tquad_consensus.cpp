// Multi-pass bandwidth consensus (Table IV methodology).
#include <gtest/gtest.h>

#include "gasm/builder.hpp"
#include "minipin/minipin.hpp"
#include "tquad/consensus.hpp"

namespace tq::tquad {
namespace {

using gasm::ProgramBuilder;
using gasm::R;

vm::Program steady_program() {
  ProgramBuilder prog;
  const auto buf = prog.alloc_global("buf", 4096);
  auto& worker = prog.begin_function("worker");
  worker.movi(R{1}, static_cast<std::int64_t>(buf));
  worker.count_loop_imm(R{2}, 0, 400, [&] {
    worker.andi(R{3}, R{2}, 255);
    worker.shli(R{3}, R{3}, 3);
    worker.add(R{3}, R{3}, R{1});
    worker.store(R{3}, 0, R{2}, 8);
  });
  worker.ret();
  auto& main_fn = prog.begin_function("main");
  main_fn.count_loop_imm(R{28}, 0, 10, [&] { main_fn.call("worker"); });
  main_fn.halt();
  return prog.build("main");
}

void run_pass(const vm::Program& program, std::uint64_t slice,
              BandwidthConsensus& consensus) {
  vm::HostEnv host;
  pin::Engine engine(program, host);
  TQuadTool tool(engine, Options{.slice_interval = slice});
  engine.run();
  consensus.add_pass(tool);
}

TEST(Consensus, SteadyKernelIsConsistentAcrossSlices) {
  // A steady streaming kernel has slice-interval-independent *average*
  // bandwidth: the consensus across very different intervals stays tight.
  const vm::Program program = steady_program();
  BandwidthConsensus consensus(0.10);
  for (std::uint64_t slice : {500u, 2'000u, 10'000u}) {
    run_pass(program, slice, consensus);
  }
  EXPECT_EQ(consensus.passes(), 3u);
  const auto rows = consensus.rows();
  const auto worker = std::find_if(rows.begin(), rows.end(), [](const auto& row) {
    return row.name == "worker";
  });
  ASSERT_NE(worker, rows.end());
  EXPECT_FALSE(worker->avg_write_incl.inconsistent);
  EXPECT_GT(worker->avg_write_incl.mean, 0.5);
  // Consistent columns print without the bound marker.
  EXPECT_EQ(BandwidthConsensus::format_column(worker->avg_write_incl)[0] != '<', true);
}

TEST(Consensus, BurstyPeakIsFlaggedAsUpperBound) {
  // A kernel that runs one short burst per long call: its *peak* B/instr
  // depends strongly on the slice interval (fine slices isolate the burst,
  // coarse slices dilute it) -> the max column must come out inconsistent.
  ProgramBuilder prog;
  const auto buf = prog.alloc_global("buf", 8192);
  auto& bursty = prog.begin_function("bursty");
  // burst: 64 contiguous movs (128B per instruction)...
  bursty.movi(R{1}, static_cast<std::int64_t>(buf));
  bursty.movi(R{2}, static_cast<std::int64_t>(buf) + 4096);
  bursty.count_loop_imm(R{3}, 0, 32, [&] { bursty.movs(R{2}, R{1}, 64); });
  // ...then a long silent spin.
  bursty.count_loop_imm(R{4}, 0, 2000, [&] { bursty.addi(R{5}, R{5}, 1); });
  bursty.ret();
  auto& main_fn = prog.begin_function("main");
  main_fn.count_loop_imm(R{28}, 0, 8, [&] { main_fn.call("bursty"); });
  main_fn.halt();
  const vm::Program program = prog.build("main");

  BandwidthConsensus consensus(0.10);
  for (std::uint64_t slice : {100u, 1'000u, 10'000u}) {
    run_pass(program, slice, consensus);
  }
  const auto rows = consensus.rows();
  const auto bursty_row =
      std::find_if(rows.begin(), rows.end(),
                   [](const auto& row) { return row.name == "bursty"; });
  ASSERT_NE(bursty_row, rows.end());
  EXPECT_TRUE(bursty_row->max_rw_incl.inconsistent)
      << "peak spread: " << bursty_row->max_rw_incl.spread;
  const std::string printed =
      BandwidthConsensus::format_column(bursty_row->max_rw_incl);
  EXPECT_EQ(printed[0], '<') << printed;  // the paper's "<" upper bound
}

TEST(Consensus, ActivitySpanComesFromFinestPass) {
  const vm::Program program = steady_program();
  BandwidthConsensus consensus;
  run_pass(program, 10'000, consensus);
  run_pass(program, 100, consensus);  // finest, added second
  const auto rows = consensus.rows();
  const auto worker = std::find_if(rows.begin(), rows.end(), [](const auto& row) {
    return row.name == "worker";
  });
  ASSERT_NE(worker, rows.end());
  // At slice 100 the worker is active in far more slices than at 10'000.
  EXPECT_GT(worker->activity_span, 50u);
}

TEST(Consensus, MismatchedProgramsAbort) {
  const vm::Program a = steady_program();
  ProgramBuilder prog;
  auto& main_fn = prog.begin_function("main");
  main_fn.halt();
  const vm::Program b = prog.build("main");
  BandwidthConsensus consensus;
  run_pass(a, 100, consensus);
  EXPECT_DEATH(run_pass(b, 100, consensus), "same program");
}

}  // namespace
}  // namespace tq::tquad
