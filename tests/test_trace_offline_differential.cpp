// Differential sweep: for every workload in the zoo registry (wfs included),
// the online BandwidthRecorder counters, the offline aggregation of a v1
// trace (sequential and sharded), and the offline aggregation of a v2 trace
// (sequential decode and block-parallel straight from the encoded bytes)
// must be bit-exact, slice for slice.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "minipin/minipin.hpp"
#include "support/thread_pool.hpp"
#include "trace/trace.hpp"
#include "trace/trace_v2.hpp"
#include "tquad/tquad_tool.hpp"
#include "workloads/registry.hpp"

namespace tq::trace {
namespace {

// Small enough that the sweep stays fast, multi-block at this capacity.
constexpr std::uint32_t kBlockCapacity = 512;

void expect_matches_online(const tquad::TQuadTool& online,
                           const OfflineBandwidth& offline, const char* label) {
  ASSERT_EQ(offline.kernel_count(), online.kernel_count()) << label;
  for (std::uint32_t k = 0; k < online.kernel_count(); ++k) {
    const auto& a = online.bandwidth().kernel(k);
    const auto& b = offline.kernel(k);
    ASSERT_EQ(a.series.size(), b.series.size())
        << label << ": kernel " << online.kernel_name(k);
    for (std::size_t i = 0; i < a.series.size(); ++i) {
      EXPECT_EQ(a.series[i].slice, b.series[i].slice) << label;
      EXPECT_EQ(a.series[i].counters.read_incl, b.series[i].counters.read_incl)
          << label;
      EXPECT_EQ(a.series[i].counters.read_excl, b.series[i].counters.read_excl)
          << label;
      EXPECT_EQ(a.series[i].counters.write_incl, b.series[i].counters.write_incl)
          << label;
      EXPECT_EQ(a.series[i].counters.write_excl, b.series[i].counters.write_excl)
          << label;
    }
    EXPECT_EQ(a.totals.read_incl, b.totals.read_incl) << label;
    EXPECT_EQ(a.totals.read_excl, b.totals.read_excl) << label;
    EXPECT_EQ(a.totals.write_incl, b.totals.write_incl) << label;
    EXPECT_EQ(a.totals.write_excl, b.totals.write_excl) << label;
    EXPECT_EQ(a.active_slices(), b.active_slices()) << label;
  }
}

/// Online run and trace-recording run on fresh hosts; then every offline
/// path must reproduce the online counters exactly.
void check_program(const vm::Program& program, vm::HostEnv& online_host,
                   vm::HostEnv& trace_host, std::uint64_t slice) {
  pin::Engine engine(program, online_host);
  tquad::TQuadTool online(engine, tquad::Options{.slice_interval = slice});
  engine.run();

  TraceRecorder recorder(program);
  vm::Machine machine(program, trace_host);
  machine.run(&recorder);
  const Trace trace = recorder.take();

  ThreadPool pool(3);

  OfflineBandwidth v1_seq(trace.kernel_count, slice);
  v1_seq.aggregate(trace);
  expect_matches_online(online, v1_seq, "v1 sequential");

  OfflineBandwidth v1_par(trace.kernel_count, slice);
  v1_par.aggregate_parallel(trace, pool);
  expect_matches_online(online, v1_par, "v1 sharded");

  const auto v2_bytes = serialize_v2(trace, kBlockCapacity);
  const Trace v2_trace = Trace::deserialize(v2_bytes);  // auto-detected
  OfflineBandwidth v2_seq(v2_trace.kernel_count, slice);
  v2_seq.aggregate(v2_trace);
  expect_matches_online(online, v2_seq, "v2 sequential");

  const TraceV2View view = TraceV2View::open(v2_bytes);
  OfflineBandwidth v2_par(view.kernel_count(), slice);
  v2_par.aggregate_parallel(view, pool);
  expect_matches_online(online, v2_par, "v2 block-parallel");

  // All offline variants agree on the timeline length too.
  EXPECT_EQ(v1_par.max_slice(), v1_seq.max_slice());
  EXPECT_EQ(v2_seq.max_slice(), v1_seq.max_slice());
  EXPECT_EQ(v2_par.max_slice(), v1_seq.max_slice());
}

/// (workload name, slice interval): the zoo cross slice granularities — an
/// awkward prime slice and one coarse enough that most workloads fit a
/// single slice.
class OfflineDifferential
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {};

TEST_P(OfflineDifferential, OfflineEqualsOnline) {
  const workloads::Entry& entry =
      workloads::find_workload(std::get<0>(GetParam()));
  workloads::Instance online_run = entry.build();
  workloads::Instance trace_run = entry.build();
  ASSERT_EQ(online_run.program.serialize(), trace_run.program.serialize());
  check_program(online_run.program, online_run.host, trace_run.host,
                std::get<1>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, OfflineDifferential,
    ::testing::Combine(::testing::ValuesIn(workloads::workload_names()),
                       ::testing::Values(37, 5000)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_slice" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace tq::trace
