// Phase identification on synthetic kernel activity patterns.
//
// Each staged workload interleaves its kernels finely (many short calls per
// stage, like the per-chunk loop of the wfs application), with time slices
// spanning several interleave rounds so that co-active kernels share slices.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "gasm/builder.hpp"
#include "minipin/minipin.hpp"
#include "tquad/phase.hpp"
#include "tquad/tquad_tool.hpp"

namespace tq::tquad {
namespace {

using gasm::ProgramBuilder;
using gasm::R;

constexpr std::uint64_t kSlice = 2000;
constexpr std::int64_t kIters = 40;   // iterations per kernel call
constexpr int kRounds = 40;           // interleave rounds per stage

/// Per phase, the kernels that should be co-active.
struct StageSpec {
  std::vector<std::string> kernels;
};

vm::Program make_staged_program(const std::vector<StageSpec>& stages) {
  ProgramBuilder prog;
  const auto buf = prog.alloc_global("buf", 4096);
  for (const auto& stage : stages) {
    for (const auto& name : stage.kernels) {
      auto& f = prog.begin_function(name);
      f.movi(R{1}, static_cast<std::int64_t>(buf));
      f.count_loop_imm(R{2}, 0, kIters, [&] {
        f.andi(R{3}, R{2}, 511);
        f.shli(R{3}, R{3}, 3);
        f.add(R{3}, R{3}, R{1});
        f.store(R{3}, 0, R{2}, 8);
      });
      f.ret();
    }
  }
  auto& main_fn = prog.begin_function("main");
  for (const auto& stage : stages) {
    for (int round = 0; round < kRounds; ++round) {
      for (const auto& name : stage.kernels) main_fn.call(name);
    }
  }
  main_fn.halt();
  return prog.build("main");
}

struct PhaseRun {
  vm::Program program;
  vm::HostEnv host;
  std::unique_ptr<pin::Engine> engine;
  std::unique_ptr<TQuadTool> tool;

  explicit PhaseRun(vm::Program prog, std::uint64_t slice = kSlice)
      : program(std::move(prog)) {
    engine = std::make_unique<pin::Engine>(program, host);
    tool = std::make_unique<TQuadTool>(*engine, Options{.slice_interval = slice});
    engine->run();
  }
};

std::vector<std::string> phase_kernels(const TQuadTool& tool, const Phase& phase) {
  std::vector<std::string> names;
  for (auto k : phase.kernels) names.push_back(tool.kernel_name(k));
  return names;
}

bool contains(const std::vector<std::string>& names, const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

TEST(PhaseDetect, TwoDisjointPhases) {
  PhaseRun run(make_staged_program({
      StageSpec{{"early_a", "early_b"}},
      StageSpec{{"late_a", "late_b"}},
  }));
  const auto phases = detect_phases(*run.tool);
  ASSERT_GE(phases.size(), 2u);
  const auto first = phase_kernels(*run.tool, phases.front());
  const auto last = phase_kernels(*run.tool, phases.back());
  EXPECT_TRUE(contains(first, "early_a"));
  EXPECT_TRUE(contains(first, "early_b"));
  EXPECT_FALSE(contains(first, "late_a"));
  EXPECT_TRUE(contains(last, "late_a"));
  EXPECT_TRUE(contains(last, "late_b"));
  EXPECT_FALSE(contains(last, "early_a"));
}

TEST(PhaseDetect, ThreePhaseStructureOrdered) {
  PhaseRun run(make_staged_program({
      StageSpec{{"p1"}},
      StageSpec{{"p2_a", "p2_b"}},
      StageSpec{{"p3"}},
  }));
  const auto phases = detect_phases(*run.tool);
  ASSERT_GE(phases.size(), 3u);
  for (std::size_t i = 1; i < phases.size(); ++i) {
    EXPECT_LE(phases[i - 1].segment_begin, phases[i].segment_begin);
  }
  std::size_t p1_phase = 99, p3_phase = 99;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    for (const auto& name : phase_kernels(*run.tool, phases[i])) {
      if (name == "p1") p1_phase = i;
      if (name == "p3") p3_phase = i;
    }
  }
  EXPECT_LT(p1_phase, p3_phase);
}

TEST(PhaseDetect, SingleUniformPhase) {
  PhaseRun run(make_staged_program({
      StageSpec{{"only_a", "only_b"}},
  }));
  const auto phases = detect_phases(*run.tool);
  ASSERT_GE(phases.size(), 1u);
  const auto names = phase_kernels(*run.tool, phases.front());
  EXPECT_TRUE(contains(names, "only_a"));
  EXPECT_TRUE(contains(names, "only_b"));
}

TEST(PhaseDetect, EveryActiveKernelAssignedExactlyOnce) {
  PhaseRun run(make_staged_program({
      StageSpec{{"k1", "k2"}},
      StageSpec{{"k3", "k4"}},
  }));
  const auto phases = detect_phases(*run.tool);
  std::map<std::uint32_t, int> seen;
  for (const auto& phase : phases) {
    for (auto k : phase.kernels) ++seen[k];
  }
  for (const auto& [kernel, count] : seen) {
    EXPECT_EQ(count, 1) << run.tool->kernel_name(kernel);
  }
  for (std::uint32_t k = 0; k < run.tool->kernel_count(); ++k) {
    if (run.tool->reported(k) &&
        run.tool->bandwidth().kernel(k).active_slices() > 0) {
      EXPECT_TRUE(seen.contains(k)) << run.tool->kernel_name(k);
    }
  }
}

TEST(PhaseDetect, SpanFractionsAreSane) {
  PhaseRun run(make_staged_program({
      StageSpec{{"a"}},
      StageSpec{{"b"}},
  }));
  const auto phases = detect_phases(*run.tool);
  for (const auto& phase : phases) {
    EXPECT_GT(phase.span_fraction, 0.0);
    EXPECT_LE(phase.span_fraction, 1.0);
    EXPECT_LE(phase.span_begin, phase.span_end);
  }
}

TEST(PhaseDetect, DescribePhasesMentionsKernels) {
  PhaseRun run(make_staged_program({
      StageSpec{{"alpha"}},
      StageSpec{{"omega"}},
  }));
  const auto phases = detect_phases(*run.tool);
  const std::string text = describe_phases(*run.tool, phases);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("omega"), std::string::npos);
  EXPECT_NE(text.find("phase 1"), std::string::npos);
}

TEST(CoreSpan, TrimsOutlierBlips) {
  // A kernel active in slices 100..199, plus one blip at slice 3.
  BandwidthRecorder rec(1, 10);
  rec.on_access(0, 35, 8, true, false);  // slice 3 blip
  for (std::uint64_t s = 100; s < 200; ++s) {
    rec.on_access(0, s * 10 + 5, 8, true, false);
  }
  rec.finish();
  const CoreSpan trimmed = core_span(rec.kernel(0), 0.02);
  EXPECT_GE(trimmed.begin, 100u) << "the slice-3 blip must be trimmed";
  EXPECT_LE(trimmed.end, 199u);
  const CoreSpan untrimmed = core_span(rec.kernel(0), 0.0);
  EXPECT_EQ(untrimmed.begin, 3u);
}

TEST(CoreSpan, EmptyKernel) {
  BandwidthRecorder rec(1, 10);
  rec.finish();
  const CoreSpan span = core_span(rec.kernel(0), 0.02);
  EXPECT_EQ(span.active_slices, 0u);
}

TEST(PhaseDetect, NoActivityYieldsNoPhases) {
  ProgramBuilder prog;
  auto& main_fn = prog.begin_function("main");
  main_fn.movi(R{1}, 1);
  main_fn.halt();
  PhaseRun run(prog.build("main"), 10);
  const auto phases = detect_phases(*run.tool);
  EXPECT_TRUE(phases.empty());
}

}  // namespace
}  // namespace tq::tquad
