#include <gtest/gtest.h>

#include <set>

#include "support/address_set.hpp"
#include "support/rng.hpp"

namespace tq {
namespace {

TEST(AddressSet, EmptySet) {
  AddressSet set;
  EXPECT_EQ(set.count(), 0u);
  EXPECT_FALSE(set.contains(0));
  EXPECT_EQ(set.resident_pages(), 0u);
}

TEST(AddressSet, SingleBytes) {
  AddressSet set;
  set.insert_range(100, 1);
  set.insert_range(102, 1);
  EXPECT_EQ(set.count(), 2u);
  EXPECT_TRUE(set.contains(100));
  EXPECT_FALSE(set.contains(101));
  EXPECT_TRUE(set.contains(102));
}

TEST(AddressSet, RangeInsertCountsDistinctBytes) {
  AddressSet set;
  set.insert_range(1000, 8);
  EXPECT_EQ(set.count(), 8u);
  // Overlapping insert adds only the new bytes.
  set.insert_range(1004, 8);
  EXPECT_EQ(set.count(), 12u);
  // Fully covered insert adds nothing.
  set.insert_range(1000, 12);
  EXPECT_EQ(set.count(), 12u);
}

TEST(AddressSet, IdempotentInserts) {
  AddressSet set;
  for (int i = 0; i < 10; ++i) set.insert_range(0x4000, 4);
  EXPECT_EQ(set.count(), 4u);
}

TEST(AddressSet, CrossesPageBoundary) {
  AddressSet set;
  const std::uint64_t addr = AddressSet::kPageSize - 2;
  set.insert_range(addr, 5);
  EXPECT_EQ(set.count(), 5u);
  EXPECT_TRUE(set.contains(addr));
  EXPECT_TRUE(set.contains(addr + 4));
  EXPECT_FALSE(set.contains(addr + 5));
  EXPECT_EQ(set.resident_pages(), 2u);
}

TEST(AddressSet, CrossesWordBoundaryWithinPage) {
  AddressSet set;
  set.insert_range(60, 10);  // bits 60..69 straddle the first 64-bit word
  EXPECT_EQ(set.count(), 10u);
  for (std::uint64_t a = 60; a < 70; ++a) EXPECT_TRUE(set.contains(a));
  EXPECT_FALSE(set.contains(59));
  EXPECT_FALSE(set.contains(70));
}

TEST(AddressSet, LargeRange) {
  AddressSet set;
  set.insert_range(0, 3 * AddressSet::kPageSize);
  EXPECT_EQ(set.count(), 3 * AddressSet::kPageSize);
}

TEST(AddressSet, ClearResets) {
  AddressSet set;
  set.insert_range(10, 100);
  set.clear();
  EXPECT_EQ(set.count(), 0u);
  EXPECT_FALSE(set.contains(10));
}

/// Property: matches a std::set<uint64> reference under random ranges.
class AddressSetRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AddressSetRandomized, MatchesReferenceSet) {
  SplitMix64 rng(GetParam());
  AddressSet set;
  std::set<std::uint64_t> model;
  for (int op = 0; op < 600; ++op) {
    const std::uint64_t addr = rng.next_below(1 << 14);
    const std::uint32_t size = 1 + static_cast<std::uint32_t>(rng.next_below(100));
    set.insert_range(addr, size);
    for (std::uint64_t a = addr; a < addr + size; ++a) model.insert(a);
    ASSERT_EQ(set.count(), model.size());
  }
  // Spot-check membership.
  for (int probe = 0; probe < 500; ++probe) {
    const std::uint64_t addr = rng.next_below(1 << 14);
    EXPECT_EQ(set.contains(addr), model.contains(addr)) << addr;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AddressSetRandomized,
                         ::testing::Values(7, 21, 42, 1001));

}  // namespace
}  // namespace tq
