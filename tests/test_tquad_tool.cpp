// The tQUAD tool end to end on small synthetic guest programs with exactly
// known memory traffic.
#include <gtest/gtest.h>

#include "gasm/builder.hpp"
#include "minipin/minipin.hpp"
#include "tquad/phase.hpp"
#include "tquad/report.hpp"
#include "tquad/tquad_tool.hpp"

namespace tq::tquad {
namespace {

using gasm::F;
using gasm::ProgramBuilder;
using gasm::R;
using gasm::SP;

/// writer: stores 10 x 8B to a global buffer. reader: loads the same back.
/// stacker: does 5 x 8B stack stores. Each kernel's traffic is exact.
vm::Program make_traffic_program() {
  ProgramBuilder prog;
  const auto buf = prog.alloc_global("buf", 128);

  auto& writer = prog.begin_function("writer");
  writer.movi(R{1}, static_cast<std::int64_t>(buf));
  writer.count_loop_imm(R{2}, 0, 10, [&] {
    writer.shli(R{3}, R{2}, 3);
    writer.add(R{3}, R{3}, R{1});
    writer.store(R{3}, 0, R{2}, 8);
  });
  writer.ret();

  auto& reader = prog.begin_function("reader");
  reader.movi(R{1}, static_cast<std::int64_t>(buf));
  reader.count_loop_imm(R{2}, 0, 10, [&] {
    reader.shli(R{3}, R{2}, 3);
    reader.add(R{3}, R{3}, R{1});
    reader.load(R{4}, R{3}, 0, 8);
  });
  reader.ret();

  auto& stacker = prog.begin_function("stacker");
  stacker.enter(64);
  stacker.count_loop_imm(R{2}, 0, 5, [&] {
    stacker.shli(R{3}, R{2}, 3);
    stacker.add(R{3}, R{3}, SP);
    stacker.store(R{3}, 0, R{2}, 8);
  });
  stacker.leave(64);
  stacker.ret();

  auto& main_fn = prog.begin_function("main");
  main_fn.call("writer");
  main_fn.call("reader");
  main_fn.call("stacker");
  main_fn.halt();
  return prog.build("main");
}

struct ToolRun {
  vm::Program program;
  vm::HostEnv host;
  std::unique_ptr<pin::Engine> engine;
  std::unique_ptr<TQuadTool> tool;

  explicit ToolRun(vm::Program prog, Options options = {})
      : program(std::move(prog)) {
    engine = std::make_unique<pin::Engine>(program, host);
    tool = std::make_unique<TQuadTool>(*engine, options);
    engine->run();
  }
};

TEST(TQuadTool, ExactByteAttributionPerKernel) {
  ToolRun run(make_traffic_program(), Options{.slice_interval = 1'000'000});
  const auto writer = *run.program.find("writer");
  const auto reader = *run.program.find("reader");
  const auto& bw_writer = run.tool->bandwidth().kernel(writer);
  const auto& bw_reader = run.tool->bandwidth().kernel(reader);
  // writer: 10 x 8B global stores; its ret pops 8B (a stack read).
  EXPECT_EQ(bw_writer.totals.write_excl, 80u);
  EXPECT_EQ(bw_writer.totals.write_incl, 80u);
  EXPECT_EQ(bw_writer.totals.read_incl, 8u);   // the ret
  EXPECT_EQ(bw_writer.totals.read_excl, 0u);   // ...which is stack
  // reader: 10 x 8B global loads + ret.
  EXPECT_EQ(bw_reader.totals.read_excl, 80u);
  EXPECT_EQ(bw_reader.totals.read_incl, 88u);
}

TEST(TQuadTool, StackClassificationSeparatesCounters) {
  ToolRun run(make_traffic_program(), Options{.slice_interval = 1'000'000});
  const auto stacker = *run.program.find("stacker");
  const auto& bw = run.tool->bandwidth().kernel(stacker);
  // 5 x 8B stores into the frame: stack-included only.
  EXPECT_EQ(bw.totals.write_incl, 40u);
  EXPECT_EQ(bw.totals.write_excl, 0u);
}

TEST(TQuadTool, CallPushAttributedToCaller) {
  ToolRun run(make_traffic_program(), Options{.slice_interval = 1'000'000});
  const auto main_id = *run.program.find("main");
  const auto& bw = run.tool->bandwidth().kernel(main_id);
  // main performs 3 calls: 3 x 8B return-address pushes (stack writes).
  EXPECT_EQ(bw.totals.write_incl, 24u);
  EXPECT_EQ(bw.totals.write_excl, 0u);
}

TEST(TQuadTool, ActivityAndFlatProfile) {
  ToolRun run(make_traffic_program(), Options{.slice_interval = 10});
  const auto writer = *run.program.find("writer");
  EXPECT_EQ(run.tool->activity(writer).calls, 1u);
  EXPECT_GT(run.tool->activity(writer).instructions, 30u);
  const auto rows = flat_profile(*run.tool);
  ASSERT_GE(rows.size(), 4u);
  double total = 0.0;
  for (const auto& row : rows) total += row.time_fraction;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // writer and reader do the same loop; their shares should be comparable.
  double writer_frac = 0, reader_frac = 0;
  for (const auto& row : rows) {
    if (row.name == "writer") writer_frac = row.time_fraction;
    if (row.name == "reader") reader_frac = row.time_fraction;
  }
  EXPECT_NEAR(writer_frac, reader_frac, 0.02);
}

TEST(TQuadTool, SliceIntervalControlsResolution) {
  ToolRun coarse(make_traffic_program(), Options{.slice_interval = 1'000'000});
  ToolRun fine(make_traffic_program(), Options{.slice_interval = 5});
  const auto writer = *coarse.program.find("writer");
  EXPECT_EQ(coarse.tool->bandwidth().kernel(writer).active_slices(), 1u);
  EXPECT_GT(fine.tool->bandwidth().kernel(writer).active_slices(), 5u);
  // Totals are invariant under the slice interval.
  EXPECT_EQ(coarse.tool->bandwidth().kernel(writer).totals.write_incl,
            fine.tool->bandwidth().kernel(writer).totals.write_incl);
}

vm::Program make_prefetch_program() {
  ProgramBuilder prog;
  const auto buf = prog.alloc_global("buf", 64);
  auto& main_fn = prog.begin_function("main");
  main_fn.movi(R{1}, static_cast<std::int64_t>(buf));
  main_fn.prefetch(R{1}, 0, 8);
  main_fn.load(R{2}, R{1}, 0, 8);
  main_fn.halt();
  return prog.build("main");
}

TEST(TQuadTool, PrefetchesAreSkippedByDefault) {
  ToolRun run(make_prefetch_program(), Options{.slice_interval = 100});
  const auto main_id = *run.program.find("main");
  EXPECT_EQ(run.tool->bandwidth().kernel(main_id).totals.read_incl, 8u)
      << "only the real load counts";
}

TEST(TQuadTool, PrefetchCountingOption) {
  Options opt{.slice_interval = 100, .count_prefetch = true};
  ToolRun run(make_prefetch_program(), opt);
  const auto main_id = *run.program.find("main");
  EXPECT_EQ(run.tool->bandwidth().kernel(main_id).totals.read_incl, 16u)
      << "prefetch counted as an 8B read when enabled";
}

TEST(TQuadTool, PredicatedOffAccessesNotCounted) {
  ProgramBuilder prog;
  const auto buf = prog.alloc_global("buf", 64);
  auto& main_fn = prog.begin_function("main");
  main_fn.movi(R{1}, static_cast<std::int64_t>(buf));
  main_fn.movi(R{2}, 0);  // predicate off
  main_fn.movi(R{3}, 1);  // predicate on
  main_fn.load(R{4}, R{1}, 0, 8);
  main_fn.predicate_last(R{2});
  main_fn.load(R{5}, R{1}, 0, 8);
  main_fn.predicate_last(R{3});
  main_fn.halt();
  ToolRun run(prog.build("main"), Options{.slice_interval = 100});
  const auto main_id = *run.program.find("main");
  EXPECT_EQ(run.tool->bandwidth().kernel(main_id).totals.read_incl, 8u);
}

TEST(TQuadTool, LibraryExclusionDropsLibraryTraffic) {
  auto build = [] {
    ProgramBuilder prog;
    const auto buf = prog.alloc_global("buf", 64);
    auto& lib = prog.begin_function("libwork", vm::ImageKind::kLibrary);
    lib.movi(R{1}, static_cast<std::int64_t>(buf));
    lib.count_loop_imm(R{2}, 0, 8, [&] {
      lib.shli(R{3}, R{2}, 3);
      lib.add(R{3}, R{3}, R{1});
      lib.store(R{3}, 0, R{2}, 8);
    });
    lib.ret();
    auto& main_fn = prog.begin_function("main");
    main_fn.call("libwork");
    main_fn.halt();
    return prog.build("main");
  };

  ToolRun excl(build(), Options{.library_policy = LibraryPolicy::kExclude});
  const auto lib_id = *excl.program.find("libwork");
  const auto main_id = *excl.program.find("main");
  EXPECT_FALSE(excl.tool->reported(lib_id));
  EXPECT_EQ(excl.tool->bandwidth().kernel(lib_id).totals.write_incl, 0u);
  EXPECT_EQ(excl.tool->bandwidth().kernel(main_id).totals.write_incl, 8u)
      << "main keeps only its own call push";
  EXPECT_GT(excl.tool->unattributed_instructions(), 0u);

  ToolRun caller(build(), Options{.library_policy = LibraryPolicy::kAttributeToCaller});
  EXPECT_EQ(caller.tool->bandwidth().kernel(*caller.program.find("main")).totals.write_incl,
            8u + 64u)
      << "library stores accrue to the caller";

  ToolRun track(build(), Options{.library_policy = LibraryPolicy::kTrack});
  EXPECT_EQ(track.tool->bandwidth().kernel(*track.program.find("libwork")).totals.write_incl,
            64u);
  EXPECT_TRUE(track.tool->reported(*track.program.find("libwork")));
}

TEST(TQuadTool, DenseSeriesMatchesSamples) {
  ToolRun run(make_traffic_program(), Options{.slice_interval = 20});
  const auto writer = *run.program.find("writer");
  const auto series = dense_series(*run.tool, writer, Metric::kWriteIncl);
  std::uint64_t sum = 0;
  for (double v : series) sum += static_cast<std::uint64_t>(v);
  EXPECT_EQ(sum, run.tool->bandwidth().kernel(writer).totals.write_incl);
}

TEST(TQuadTool, MismatchFreeCallStackOnRealProgram) {
  ToolRun run(make_traffic_program(), Options{});
  EXPECT_EQ(run.tool->callstack().mismatched_pops(), 0u);
  EXPECT_EQ(run.tool->callstack().depth(), 1u) << "main never returns (halts)";
}

}  // namespace
}  // namespace tq::tquad
