#!/bin/sh
# End-to-end smoke test of the command-line tools:
#   wfs_gen -> tquad_cli (reports + trace + output) -> quad_cli (dot + csv).
# Usage: cli_smoke.sh <build-tools-dir> <workdir>
set -e
TOOLS="$1"
WORK="$2"
SRCDIR="$(dirname "$0")"
mkdir -p "$WORK"
cd "$WORK"
"$TOOLS/wfs_gen" -tiny -image wfs.tqim -wav in.wav -asm wfs.s
test -s wfs.tqim && test -s in.wav && test -s wfs.s
"$TOOLS/tquad_cli" -image wfs.tqim -in in.wav -report all -slice 2000 \
    -csv flat.csv -trace run.tqtr -out out.wav > tquad.txt
grep -q "flat profile" tquad.txt
grep -q "phases" tquad.txt
grep -q "wav_store" tquad.txt
test -s flat.csv && test -s run.tqtr && test -s out.wav
"$TOOLS/quad_cli" -image wfs.tqim -in in.wav -clusters 4 -dot qdu.dot -csv quad.csv > quad.txt
grep -q "task clustering" quad.txt
grep -q "digraph QDU" qdu.dot
test -s quad.csv
# Trace formats: default trace is v2 (blocked) and must replay offline with
# kernel names; an explicit v1 trace replays to the same table.
"$TOOLS/tquad_cli" -replay run.tqtr -image wfs.tqim -slice 2000 > replay_v2.txt
grep -q "replayed v2 trace" replay_v2.txt
grep -q "wav_store" replay_v2.txt
"$TOOLS/tquad_cli" -image wfs.tqim -in in.wav -trace run_v1.tqtr \
    -trace-format v1 -report flat > /dev/null
"$TOOLS/tquad_cli" -replay run_v1.tqtr -image wfs.tqim -slice 2000 > replay_v1.txt
grep -q "replayed v1 trace" replay_v1.txt
# Same events either way: the per-kernel tables must be identical.
tail -n +2 replay_v2.txt > table_v2.txt
tail -n +2 replay_v1.txt > table_v1.txt
cmp table_v2.txt table_v1.txt
# quad_cli records traces too.
"$TOOLS/quad_cli" -image wfs.tqim -in in.wav -trace quad_run.tqtr > /dev/null
test -s quad_run.tqtr
"$TOOLS/tquad_cli" -replay quad_run.tqtr -slice 2000 > replay_quad.txt
grep -q "replayed v2 trace" replay_quad.txt
# Error paths: missing image must fail with a message, not crash.
if "$TOOLS/tquad_cli" -image does_not_exist.tqim 2> err.txt; then
  echo "expected failure on missing image" >&2
  exit 1
fi
grep -q "cannot open" err.txt
"$TOOLS/asm_run" "$SRCDIR/../examples/saxpy.s" -profile > saxpy.txt
grep -q "saxpy" saxpy.txt
grep -q "guest: 1024" saxpy.txt
echo "cli smoke: OK"
