#!/bin/sh
# End-to-end smoke test of the command-line tools:
#   wfs_gen -> tquad_cli (reports + trace + output) -> quad_cli (dot + csv).
# Usage: cli_smoke.sh <build-tools-dir> <workdir>
set -e
TOOLS="$1"
WORK="$2"
SRCDIR="$(dirname "$0")"
mkdir -p "$WORK"
cd "$WORK"
"$TOOLS/wfs_gen" -tiny -image wfs.tqim -wav in.wav -asm wfs.s
test -s wfs.tqim && test -s in.wav && test -s wfs.s
"$TOOLS/tquad_cli" -image wfs.tqim -in in.wav -report all -slice 2000 \
    -csv flat.csv -trace run.tqtr -out out.wav > tquad.txt
grep -q "flat profile" tquad.txt
grep -q "phases" tquad.txt
grep -q "wav_store" tquad.txt
test -s flat.csv && test -s run.tqtr && test -s out.wav
"$TOOLS/quad_cli" -image wfs.tqim -in in.wav -clusters 4 -dot qdu.dot -csv quad.csv > quad.txt
grep -q "task clustering" quad.txt
grep -q "digraph QDU" qdu.dot
test -s quad.csv
# Error paths: missing image must fail with a message, not crash.
if "$TOOLS/tquad_cli" -image does_not_exist.tqim 2> err.txt; then
  echo "expected failure on missing image" >&2
  exit 1
fi
grep -q "cannot open" err.txt
"$TOOLS/asm_run" "$SRCDIR/../examples/saxpy.s" -profile > saxpy.txt
grep -q "saxpy" saxpy.txt
grep -q "guest: 1024" saxpy.txt
echo "cli smoke: OK"
