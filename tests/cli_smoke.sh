#!/bin/sh
# End-to-end smoke test of the command-line tools:
#   wfs_gen -> tquad_cli (reports + trace + output) -> quad_cli (dot + csv).
# Usage: cli_smoke.sh <build-tools-dir> <workdir>
set -e
TOOLS="$1"
WORK="$2"
SRCDIR="$(dirname "$0")"
mkdir -p "$WORK"
cd "$WORK"
"$TOOLS/wfs_gen" -tiny -image wfs.tqim -wav in.wav -asm wfs.s
test -s wfs.tqim && test -s in.wav && test -s wfs.s
"$TOOLS/tquad_cli" -image wfs.tqim -in in.wav -report all -slice 2000 \
    -csv flat.csv -trace run.tqtr -out out.wav > tquad.txt
grep -q "flat profile" tquad.txt
grep -q "phases" tquad.txt
grep -q "wav_store" tquad.txt
test -s flat.csv && test -s run.tqtr && test -s out.wav
"$TOOLS/quad_cli" -image wfs.tqim -in in.wav -clusters 4 -dot qdu.dot -csv quad.csv > quad.txt
grep -q "task clustering" quad.txt
grep -q "digraph QDU" qdu.dot
test -s quad.csv
# Trace formats: default trace is v2 (blocked) and must replay offline with
# kernel names; an explicit v1 trace replays to the same table.
"$TOOLS/tquad_cli" -replay run.tqtr -image wfs.tqim -slice 2000 > replay_v2.txt
grep -q "replayed v2 trace" replay_v2.txt
grep -q "wav_store" replay_v2.txt
"$TOOLS/tquad_cli" -image wfs.tqim -in in.wav -trace run_v1.tqtr \
    -trace-format v1 -report flat > /dev/null
"$TOOLS/tquad_cli" -replay run_v1.tqtr -image wfs.tqim -slice 2000 > replay_v1.txt
grep -q "replayed v1 trace" replay_v1.txt
# Same events either way: the per-kernel tables must be identical.
tail -n +2 replay_v2.txt > table_v2.txt
tail -n +2 replay_v1.txt > table_v1.txt
cmp table_v2.txt table_v1.txt
# quad_cli records traces too.
"$TOOLS/quad_cli" -image wfs.tqim -in in.wav -trace quad_run.tqtr > /dev/null
test -s quad_run.tqtr
"$TOOLS/tquad_cli" -replay quad_run.tqtr -slice 2000 > replay_quad.txt
grep -q "replayed v2 trace" replay_quad.txt
# tqtr_doctor: a freshly recorded trace verifies clean and summarizes.
"$TOOLS/tqtr_doctor" verify run.tqtr > doctor.txt
grep -q "^ok: v2.1" doctor.txt
"$TOOLS/tqtr_doctor" summarize run.tqtr > summary.txt
grep -q "TQTR v2.1" summary.txt
grep -q "crc32c" summary.txt
# Corrupt one payload byte: verify pinpoints the block, strict replay fails,
# -salvage replays what survives, and repair writes a clean file again.
cp run.tqtr bad.tqtr
printf '\377\377\377\377' | dd of=bad.tqtr bs=1 seek=100 conv=notrunc 2> /dev/null
if "$TOOLS/tqtr_doctor" verify bad.tqtr > doctor_bad.txt; then
  echo "verify accepted a corrupt trace" >&2
  exit 1
fi
grep -q "corrupt: block 0" doctor_bad.txt
if "$TOOLS/tquad_cli" -replay bad.tqtr -slice 2000 > /dev/null 2>&1; then
  echo "strict replay accepted a corrupt trace" >&2
  exit 1
fi
"$TOOLS/tquad_cli" -replay bad.tqtr -slice 2000 -salvage > salvaged.txt
grep -q "salvage: dropped block 0" salvaged.txt
grep -q "replayed v2 trace" salvaged.txt
"$TOOLS/tqtr_doctor" repair bad.tqtr -out repaired.tqtr > /dev/null
"$TOOLS/tqtr_doctor" verify repaired.tqtr > /dev/null

# tqtr_doctor exit-code matrix: 0 ok, 1 corrupt/unreadable, 2 usage.
# expect_exit <want> -- <command...>
expect_exit() {
  want="$1"
  shift 2  # drop want and the "--" separator
  status=0
  "$@" > /dev/null 2>&1 || status=$?
  if [ "$status" -ne "$want" ]; then
    echo "expected exit $want, got $status: $*" >&2
    exit 1
  fi
}
expect_exit 0 -- "$TOOLS/tqtr_doctor" verify run.tqtr
expect_exit 0 -- "$TOOLS/tqtr_doctor" summarize run.tqtr
expect_exit 0 -- "$TOOLS/tqtr_doctor" repair bad.tqtr -out repaired2.tqtr
expect_exit 1 -- "$TOOLS/tqtr_doctor" verify bad.tqtr
expect_exit 1 -- "$TOOLS/tqtr_doctor" verify run_v1.tqtr   # v1: not a v2 file
expect_exit 1 -- "$TOOLS/tqtr_doctor" verify does_not_exist.tqtr
expect_exit 2 -- "$TOOLS/tqtr_doctor"
expect_exit 2 -- "$TOOLS/tqtr_doctor" verify
expect_exit 2 -- "$TOOLS/tqtr_doctor" verify run.tqtr extra_arg
expect_exit 2 -- "$TOOLS/tqtr_doctor" frobnicate run.tqtr
expect_exit 2 -- "$TOOLS/tqtr_doctor" repair bad.tqtr      # repair needs -out

# Parallel pipeline smoke: same reports and byte-identical trace as the
# serial run at the top of this script.
"$TOOLS/tquad_cli" -image wfs.tqim -in in.wav -report all -slice 2000 \
    -csv flat_par.csv -trace run_par.tqtr -out out_par.wav \
    -pipeline parallel:2 > tquad_par.txt
grep -v "written to" tquad.txt > tquad_body.txt
grep -v "written to" tquad_par.txt > tquad_par_body.txt
cmp tquad_body.txt tquad_par_body.txt
cmp flat.csv flat_par.csv
cmp run.tqtr run_par.tqtr
cmp out.wav out_par.wav
# Self-observability: -metrics json:path writes valid JSON with the expected
# sections and leaves every report byte untouched (stdout and files compare
# equal to the metrics-off run at the top of this script).
"$TOOLS/tquad_cli" -image wfs.tqim -in in.wav -report all -slice 2000 \
    -csv flat_m.csv -trace run_m.tqtr -out out_m.wav \
    -metrics json:metrics.json > tquad_m.txt
grep -v "written to" tquad.txt > tquad_nowrite.txt
grep -v "written to" tquad_m.txt > tquad_m_nowrite.txt
cmp tquad_nowrite.txt tquad_m_nowrite.txt
cmp flat.csv flat_m.csv
cmp run.tqtr run_m.tqtr
cmp out.wav out_m.wav
python3 - <<'EOF'
import json
m = json.load(open("metrics.json"))
for section in ("counters", "gauges", "histograms"):
    assert section in m, section
c = m["counters"]
assert c["session.events.access"] > 0, c
assert c["trace.write.records"] > 0, c
assert c["trace.write.bytes"] > 0, c
assert m["gauges"]["session.retired"]["value"] > 0, m["gauges"]
assert m["gauges"]["trace.write.compression_ratio_x1000"]["value"] > 0, m["gauges"]
EOF
# Stable keys: a second identical run must expose the identical metric name
# set (values may differ only in timing counters; names never).
"$TOOLS/tquad_cli" -image wfs.tqim -in in.wav -report all -slice 2000 \
    -csv flat_m2.csv -trace run_m2.tqtr -out out_m2.wav \
    -metrics json:metrics2.json > /dev/null
python3 - <<'EOF'
import json
a, b = json.load(open("metrics.json")), json.load(open("metrics2.json"))
def keys(m):
    return {(s, k) for s in m for k in m[s]}
assert keys(a) == keys(b), keys(a) ^ keys(b)
EOF
# Parallel run with text metrics to stdout: the metrics block comes strictly
# after the reports (report prefix identical), ring/worker telemetry present.
"$TOOLS/tquad_cli" -image wfs.tqim -in in.wav -report all -slice 2000 \
    -pipeline parallel:2 -metrics text > tquad_pm.txt
sed -n '1,/== metrics ==/p' tquad_pm.txt | sed '$d' > tquad_pm_body.txt
grep -v "written to" tquad_pm_body.txt > tquad_pm_cmp.txt
cmp tquad_body.txt tquad_pm_cmp.txt
grep -q "pipeline.batches_published" tquad_pm.txt
grep -q "pipeline.worker.batch_events" tquad_pm.txt
grep -q "session.events.access" tquad_pm.txt
# quad_cli metrics + replay-side metrics cover the quad and trace.read names.
"$TOOLS/quad_cli" -image wfs.tqim -in in.wav -metrics json:quad_metrics.json > /dev/null
python3 - <<'EOF'
import json
m = json.load(open("quad_metrics.json"))
assert m["gauges"]["quad.shadow.pages"]["value"] > 0
assert m["gauges"]["quad.unma.in_incl"]["value"] > 0
assert m["gauges"]["quad.bindings"]["value"] > 0
EOF
"$TOOLS/tquad_cli" -replay run.tqtr -image wfs.tqim -slice 2000 \
    -metrics json:replay_metrics.json > /dev/null
python3 - <<'EOF'
import json
m = json.load(open("replay_metrics.json"))
assert m["counters"]["trace.read.bytes"] > 0
assert m["counters"]["trace.read.records"] > 0
EOF
# Heartbeat: pulses go to stderr only, the final pulse carries the status,
# and stdout is still byte-identical to the quiet run at the top.
"$TOOLS/tquad_cli" -image wfs.tqim -in in.wav -report all -slice 2000 \
    -csv flat_hb.csv -trace run_hb.tqtr -out out_hb.wav \
    -heartbeat 1 > tquad_hb.txt 2> hb.txt
grep -v "written to" tquad_hb.txt > tquad_hb_body.txt
cmp tquad_body.txt tquad_hb_body.txt
grep -q "heartbeat: done" hb.txt
grep -q "status=ok" hb.txt

# Workload zoo: zoo_gen exports any registered shape; unknown names are
# usage errors (exit 2).
"$TOOLS/zoo_gen" -list > zoo.txt
for w in stream matmul_naive matmul_tiled chase histogram hashjoin phased wfs; do
  grep -q "^$w " zoo.txt
done
grep -q "phase-sharp" zoo.txt
expect_exit 2 -- "$TOOLS/zoo_gen" -workload bogus -image x.tqim
expect_exit 2 -- "$TOOLS/zoo_gen" -workload wfs -image wfs_zoo.tqim  # needs -input
"$TOOLS/zoo_gen" -workload phased -image phased.tqim > /dev/null
"$TOOLS/zoo_gen" -workload wfs -image wfs_zoo.tqim -input wfs_zoo.wav > /dev/null
test -s phased.tqim && test -s wfs_zoo.tqim && test -s wfs_zoo.wav

# -viz json[:path]: the address-map export must leave every report byte
# untouched (compare to the viz-off run) whether it goes to a file or to
# stdout, and the stdout rendering must equal the file rendering.
"$TOOLS/tquad_cli" -image phased.tqim -report all -slice 500 > phased_plain.txt
"$TOOLS/tquad_cli" -image phased.tqim -report all -slice 500 \
    -viz json:map.json -metrics json:viz_metrics.json > phased_viz.txt
grep -v "written to" phased_viz.txt > phased_viz_body.txt
cmp phased_plain.txt phased_viz_body.txt
"$TOOLS/tquad_cli" -image phased.tqim -report all -slice 500 \
    -viz json > phased_viz_stdout.txt
grep '"address_map"' phased_viz_stdout.txt > map_stdout.json
cmp map.json map_stdout.json
grep -v '"address_map"' phased_viz_stdout.txt > phased_viz_stdout_body.txt
cmp phased_plain.txt phased_viz_stdout_body.txt
# Schema: keys sorted and stable at every level, per-kernel accounting
# conserved, and the map total equals the session's delivered access count.
python3 - <<'EOF'
import json
m = json.load(open("map.json"))["address_map"]
assert sorted(m) == list(m), list(m)
names = [k["name"] for k in m["kernels"]]
assert names == sorted(names), names
total = 0
for k in m["kernels"]:
    assert sorted(k) == list(k), list(k)
    assert k["cells"] == sorted(k["cells"]), k["name"]
    cell_sum = sum(reads + writes for _, _, reads, writes in k["cells"])
    assert k["accesses"] == k["stack_accesses"] + cell_sum, k["name"]
    total += k["accesses"]
assert total == m["total_accesses"], (total, m["total_accesses"])
metrics = json.load(open("viz_metrics.json"))
assert total == metrics["counters"]["session.events.access"], total
EOF
# Heatmap shape: the phase-sharp workload shows one disjoint hot written
# address range per phase kernel, in distinct time slices.
python3 - <<'EOF'
import json
m = json.load(open("map.json"))["address_map"]
phases = [k for k in m["kernels"] if k["name"].startswith("phase_")]
assert len(phases) == 4, [k["name"] for k in m["kernels"]]
written = {k["name"]: {b for _, b, _, w in k["cells"] if w} for k in phases}
slices = {k["name"]: {s for s, _, _, _ in k["cells"]} for k in phases}
names = list(written)
for i, a in enumerate(names):
    assert written[a], a
    for b in names[i + 1:]:
        assert not (written[a] & written[b]), (a, b)
        # Phases run back to back: consecutive ones may share the boundary
        # slice, never more.
        assert len(slices[a] & slices[b]) <= 1, (a, b)
EOF
# Replay sessions render the map too, and the wfs pipeline keeps its report
# bytes with -viz on.
"$TOOLS/tquad_cli" -replay run.tqtr -image wfs.tqim -tools tquad -slice 2000 \
    -viz json:replay_map.json > /dev/null
python3 -c "import json; json.load(open('replay_map.json'))"
"$TOOLS/tquad_cli" -image wfs.tqim -in in.wav -report all -slice 2000 \
    -viz json:wfs_map.json -out out_viz.wav > tquad_viz.txt
grep -v "written to" tquad_viz.txt > tquad_viz_body.txt
cmp tquad_body.txt tquad_viz_body.txt
cmp out.wav out_viz.wav

# Error paths: missing image must fail with a message, not crash.
if "$TOOLS/tquad_cli" -image does_not_exist.tqim 2> err.txt; then
  echo "expected failure on missing image" >&2
  exit 1
fi
grep -q "cannot open" err.txt
"$TOOLS/asm_run" "$SRCDIR/../examples/saxpy.s" -profile > saxpy.txt
grep -q "saxpy" saxpy.txt
grep -q "guest: 1024" saxpy.txt
echo "cli smoke: OK"
