// CRC-32C (Castagnoli): the RFC 3720 reference vectors, hardware-vs-software
// agreement across lengths and alignments, and the chaining contract. The
// checksum guards every TQTR v2 block, so a silent implementation divergence
// (e.g. the SSE4.2 path disagreeing with slicing-by-8 on some tail length)
// would make traces written on one host "corrupt" on another.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "support/crc32c.hpp"

namespace tq {
namespace {

// RFC 3720 B.4 test vectors (iSCSI CRC32C: init/xorout 0xffffffff,
// reflected Castagnoli polynomial).
TEST(Crc32c, Rfc3720Vectors) {
  const std::vector<std::uint8_t> zeros(32, 0x00);
  const std::vector<std::uint8_t> ones(32, 0xff);
  std::vector<std::uint8_t> ramp(32);
  std::iota(ramp.begin(), ramp.end(), std::uint8_t{0});
  std::vector<std::uint8_t> ramp_down(32);
  for (std::size_t i = 0; i < 32; ++i)
    ramp_down[i] = static_cast<std::uint8_t>(31 - i);
  const std::string digits = "123456789";  // the classic "check" input

  const struct {
    const void* data;
    std::size_t size;
    std::uint32_t expected;
  } vectors[] = {
      {zeros.data(), zeros.size(), 0x8a9136aau},
      {ones.data(), ones.size(), 0x62a8ab43u},
      {ramp.data(), ramp.size(), 0x46dd794eu},
      {ramp_down.data(), ramp_down.size(), 0x113fdb5cu},
      {digits.data(), digits.size(), 0xe3069283u},
  };
  for (const auto& v : vectors) {
    EXPECT_EQ(crc32c(v.data, v.size), v.expected);
    EXPECT_EQ(crc32c_software(v.data, v.size), v.expected);
  }
}

TEST(Crc32c, EmptyInput) {
  EXPECT_EQ(crc32c(nullptr, 0), 0u);
  EXPECT_EQ(crc32c_software(nullptr, 0), 0u);
  const std::uint8_t byte = 0xab;
  // Empty chained onto a seed is the identity.
  const std::uint32_t seed = crc32c(&byte, 1);
  EXPECT_EQ(crc32c(&byte, 0, seed), seed);
  EXPECT_EQ(crc32c_software(&byte, 0, seed), seed);
}

// The dispatching entry point and the software seam must agree on every
// length (covering the slicing-by-8 remainder cases and the hardware path's
// 8/4/2/1-byte tail ladder) and on every starting alignment within a word.
TEST(Crc32c, HardwareMatchesSoftware) {
  std::mt19937 rng(0xc0ffee);
  std::vector<std::uint8_t> buffer(4096 + 64);
  for (auto& b : buffer) b = static_cast<std::uint8_t>(rng());

  for (std::size_t offset = 0; offset < 9; ++offset) {
    for (std::size_t size : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                             std::size_t{3}, std::size_t{7}, std::size_t{8},
                             std::size_t{9}, std::size_t{15}, std::size_t{16},
                             std::size_t{63}, std::size_t{64}, std::size_t{65},
                             std::size_t{255}, std::size_t{1024},
                             std::size_t{3072}, std::size_t{4096}}) {
      const std::uint8_t* p = buffer.data() + offset;
      EXPECT_EQ(crc32c(p, size), crc32c_software(p, size))
          << "offset=" << offset << " size=" << size;
    }
  }
}

TEST(Crc32c, RandomizedLengthsAgree) {
  std::mt19937 rng(20260806);
  std::vector<std::uint8_t> buffer(8192);
  for (auto& b : buffer) b = static_cast<std::uint8_t>(rng());
  std::uniform_int_distribution<std::size_t> offset_dist(0, 128);
  std::uniform_int_distribution<std::size_t> size_dist(0, 7000);
  for (int i = 0; i < 200; ++i) {
    const std::size_t offset = offset_dist(rng);
    const std::size_t size = std::min(size_dist(rng), buffer.size() - offset);
    const std::uint8_t* p = buffer.data() + offset;
    ASSERT_EQ(crc32c(p, size), crc32c_software(p, size))
        << "offset=" << offset << " size=" << size;
  }
}

// Chaining: checksumming a buffer in arbitrary splits via the seed argument
// must equal the one-shot checksum — that is how the v2 writer folds a
// block header and its payload into one CRC.
TEST(Crc32c, IncrementalMatchesOneShot) {
  std::mt19937 rng(7);
  std::vector<std::uint8_t> buffer(2048);
  for (auto& b : buffer) b = static_cast<std::uint8_t>(rng());
  const std::uint32_t whole = crc32c(buffer.data(), buffer.size());

  for (std::size_t cut : {std::size_t{1}, std::size_t{5}, std::size_t{512},
                          std::size_t{2047}}) {
    const std::uint32_t chained =
        crc32c(buffer.data() + cut, buffer.size() - cut,
               crc32c(buffer.data(), cut));
    EXPECT_EQ(chained, whole) << "cut=" << cut;
    const std::uint32_t chained_sw =
        crc32c_software(buffer.data() + cut, buffer.size() - cut,
                        crc32c_software(buffer.data(), cut));
    EXPECT_EQ(chained_sw, whole) << "cut=" << cut;
  }

  // Many tiny increments (every byte its own call).
  std::uint32_t crc = 0;
  for (std::size_t i = 0; i < buffer.size(); ++i)
    crc = crc32c(&buffer[i], 1, crc);
  EXPECT_EQ(crc, whole);
}

TEST(Crc32c, SeedAndDataSensitivity) {
  const std::uint8_t a[] = {1, 2, 3, 4};
  std::uint8_t b[] = {1, 2, 3, 4};
  EXPECT_EQ(crc32c(a, sizeof a), crc32c(b, sizeof b));
  b[3] ^= 0x01;  // single-bit flip must change the checksum
  EXPECT_NE(crc32c(a, sizeof a), crc32c(b, sizeof b));
  EXPECT_NE(crc32c(a, sizeof a, 0), crc32c(a, sizeof a, 1));
}

}  // namespace
}  // namespace tq
