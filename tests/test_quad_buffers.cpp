// Buffer-level data maps: ranged UnMA popcounts and the report over named
// globals, including the wfs buffer-signature checks the paper's Table II
// discussion rests on.
#include <gtest/gtest.h>

#include "gasm/builder.hpp"
#include "minipin/minipin.hpp"
#include "quad/buffer_report.hpp"
#include "support/address_set.hpp"
#include "wfs/runner.hpp"

namespace tq::quad {
namespace {

using gasm::ProgramBuilder;
using gasm::R;

// ---- AddressSet::count_range -------------------------------------------------

TEST(AddressSetRange, CountsWithinWindow) {
  AddressSet set;
  set.insert_range(100, 50);   // 100..149
  set.insert_range(300, 10);   // 300..309
  EXPECT_EQ(set.count_range(0, 1000), 60u);
  EXPECT_EQ(set.count_range(100, 50), 50u);
  EXPECT_EQ(set.count_range(120, 10), 10u);
  EXPECT_EQ(set.count_range(140, 50), 10u);  // 140..149 only
  EXPECT_EQ(set.count_range(150, 100), 0u);
  EXPECT_EQ(set.count_range(295, 10), 5u);   // 300..304
}

TEST(AddressSetRange, CrossesPagesAndWords) {
  AddressSet set;
  const std::uint64_t near_page = AddressSet::kPageSize - 20;
  set.insert_range(near_page, 40);  // straddles the page boundary
  EXPECT_EQ(set.count_range(near_page, 40), 40u);
  EXPECT_EQ(set.count_range(near_page + 10, 40), 30u);
  EXPECT_EQ(set.count_range(0, 2 * AddressSet::kPageSize), 40u);
  // Word-straddling window.
  set.insert_range(60, 10);
  EXPECT_EQ(set.count_range(62, 6), 6u);
}

TEST(AddressSetRange, EmptyAndZeroSize) {
  AddressSet set;
  EXPECT_EQ(set.count_range(0, 100), 0u);
  set.insert_range(5, 5);
  EXPECT_EQ(set.count_range(5, 0), 0u);
}

// ---- buffer report -------------------------------------------------------------

TEST(BufferReport, AttributesAccessesToNamedBuffers) {
  ProgramBuilder prog;
  const auto in_buf = prog.alloc_global("input", 128);
  const auto out_buf = prog.alloc_global("output", 64);
  auto& worker = prog.begin_function("worker");
  worker.movi(R{1}, static_cast<std::int64_t>(in_buf));
  worker.movi(R{4}, static_cast<std::int64_t>(out_buf));
  worker.count_loop_imm(R{2}, 0, 8, [&] {  // read 64 of input's 128 bytes
    worker.shli(R{3}, R{2}, 3);
    worker.add(R{3}, R{3}, R{1});
    worker.load(R{5}, R{3}, 0, 8);
    worker.shli(R{3}, R{2}, 2);             // write 32 of output's 64 bytes
    worker.add(R{3}, R{3}, R{4});
    worker.store(R{3}, 0, R{5}, 4);
  });
  worker.ret();
  auto& main_fn = prog.begin_function("main");
  main_fn.call("worker");
  main_fn.halt();
  vm::Program program = prog.build("main");
  ASSERT_EQ(program.globals().size(), 2u);

  vm::HostEnv host;
  pin::Engine engine(program, host);
  QuadTool tool(engine);
  engine.run();

  const auto rows = buffer_report(tool, program);
  const auto worker_id = *program.find("worker");
  const BufferRow* input_row = nullptr;
  const BufferRow* output_row = nullptr;
  for (const auto& row : rows) {
    if (row.kernel == worker_id && row.buffer == "input") input_row = &row;
    if (row.kernel == worker_id && row.buffer == "output") output_row = &row;
  }
  ASSERT_NE(input_row, nullptr);
  ASSERT_NE(output_row, nullptr);
  EXPECT_EQ(input_row->read_unma, 64u);
  EXPECT_EQ(input_row->write_unma, 0u);
  EXPECT_DOUBLE_EQ(input_row->read_coverage, 0.5);
  EXPECT_EQ(output_row->write_unma, 32u);
  EXPECT_DOUBLE_EQ(output_row->write_coverage, 0.5);
}

TEST(BufferReport, GlobalsSurviveImageRoundTrip) {
  ProgramBuilder prog;
  prog.alloc_global("table", 256, 64);
  auto& main_fn = prog.begin_function("main");
  main_fn.halt();
  const vm::Program program = prog.build("main");
  const vm::Program back = vm::Program::deserialize(program.serialize());
  ASSERT_EQ(back.globals().size(), 1u);
  EXPECT_EQ(back.globals()[0].name, "table");
  EXPECT_EQ(back.globals()[0].addr, program.globals()[0].addr);
  EXPECT_EQ(back.globals()[0].size, 256u);
}

TEST(BufferReport, WfsBufferSignatures) {
  // The buffer-level view behind the paper's Table II narrative.
  const wfs::WfsConfig cfg = wfs::WfsConfig::tiny();
  wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
  pin::Engine engine(run.artifacts.program, run.host);
  QuadTool tool(engine);
  engine.run();
  const auto rows = buffer_report(tool, run.artifacts.program);
  auto find = [&](const char* kernel, const char* buffer) -> const BufferRow* {
    for (const auto& row : rows) {
      if (row.kernel_name == kernel && row.buffer == buffer) return &row;
    }
    return nullptr;
  };
  // AudioIo_setFrames writes the frame store completely, byte for byte.
  const BufferRow* frames = find("AudioIo_setFrames", "frames");
  ASSERT_NE(frames, nullptr);
  EXPECT_DOUBLE_EQ(frames->write_coverage, 1.0);
  // wav_store reads the whole frame store and never writes it.
  const BufferRow* store_frames = find("wav_store", "frames");
  ASSERT_NE(store_frames, nullptr);
  EXPECT_DOUBLE_EQ(store_frames->read_coverage, 1.0);
  EXPECT_EQ(store_frames->write_unma, 0u);
  // fft1d works in the spectra, not in the audio frame store.
  EXPECT_EQ(find("fft1d", "frames"), nullptr);
  const BufferRow* fft_x = find("fft1d", "X");
  ASSERT_NE(fft_x, nullptr);
  EXPECT_GT(fft_x->read_coverage, 0.99);
  // cmult consumes the filter table ffw produced.
  const BufferRow* cmult_h = find("cmult", "H");
  ASSERT_NE(cmult_h, nullptr);
  EXPECT_DOUBLE_EQ(cmult_h->read_coverage, 1.0);
  EXPECT_EQ(cmult_h->write_unma, 0u);
}

TEST(BufferReport, TableRendersAndFilters) {
  const wfs::WfsConfig cfg = wfs::WfsConfig::tiny();
  wfs::WfsRun run = wfs::prepare_wfs_run(cfg);
  pin::Engine engine(run.artifacts.program, run.host);
  QuadTool tool(engine);
  engine.run();
  const std::string all = buffer_table(tool, run.artifacts.program).to_ascii();
  EXPECT_NE(all.find("fft1d"), std::string::npos);
  EXPECT_NE(all.find("frames"), std::string::npos);
  const std::string filtered =
      buffer_table(tool, run.artifacts.program, "fft1d").to_ascii();
  EXPECT_NE(filtered.find("fft1d"), std::string::npos);
  EXPECT_EQ(filtered.find("wav_store"), std::string::npos);
}

}  // namespace
}  // namespace tq::quad
