#include <gtest/gtest.h>

#include <vector>

#include "quad/shadow.hpp"

namespace tq::quad {
namespace {

TEST(ShadowMemory, UnwrittenBytesHaveNoProducer) {
  ShadowMemory shadow;
  EXPECT_EQ(shadow.producer_of(0), kNoProducer);
  EXPECT_EQ(shadow.producer_of(0x12345678), kNoProducer);
  EXPECT_EQ(shadow.resident_pages(), 0u);
}

TEST(ShadowMemory, MarkAndQuery) {
  ShadowMemory shadow;
  shadow.mark_write(100, 8, 7);
  for (std::uint64_t a = 100; a < 108; ++a) EXPECT_EQ(shadow.producer_of(a), 7);
  EXPECT_EQ(shadow.producer_of(99), kNoProducer);
  EXPECT_EQ(shadow.producer_of(108), kNoProducer);
}

TEST(ShadowMemory, LastWriterWins) {
  ShadowMemory shadow;
  shadow.mark_write(100, 8, 1);
  shadow.mark_write(104, 8, 2);
  EXPECT_EQ(shadow.producer_of(100), 1);
  EXPECT_EQ(shadow.producer_of(103), 1);
  EXPECT_EQ(shadow.producer_of(104), 2);
  EXPECT_EQ(shadow.producer_of(111), 2);
}

TEST(ShadowMemory, CrossPageMark) {
  ShadowMemory shadow;
  const std::uint64_t addr = ShadowMemory::kPageSize - 3;
  shadow.mark_write(addr, 6, 9);
  for (std::uint64_t a = addr; a < addr + 6; ++a) EXPECT_EQ(shadow.producer_of(a), 9);
  EXPECT_EQ(shadow.resident_pages(), 2u);
}

struct Run {
  ProducerId producer;
  std::uint32_t length;
};

std::vector<Run> collect_runs(const ShadowMemory& shadow, std::uint64_t addr,
                              std::uint32_t size) {
  std::vector<Run> runs;
  shadow.for_each_producer(addr, size, [&](ProducerId p, std::uint32_t len) {
    runs.push_back(Run{p, len});
  });
  return runs;
}

TEST(ShadowMemory, VisitorCoalescesRuns) {
  ShadowMemory shadow;
  shadow.mark_write(200, 4, 1);
  shadow.mark_write(204, 4, 2);
  const auto runs = collect_runs(shadow, 200, 8);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].producer, 1);
  EXPECT_EQ(runs[0].length, 4u);
  EXPECT_EQ(runs[1].producer, 2);
  EXPECT_EQ(runs[1].length, 4u);
}

TEST(ShadowMemory, VisitorCoversUnwrittenGaps) {
  ShadowMemory shadow;
  shadow.mark_write(300, 2, 5);
  const auto runs = collect_runs(shadow, 298, 8);
  // none(2), 5(2), none(4)
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].producer, kNoProducer);
  EXPECT_EQ(runs[0].length, 2u);
  EXPECT_EQ(runs[1].producer, 5);
  EXPECT_EQ(runs[1].length, 2u);
  EXPECT_EQ(runs[2].producer, kNoProducer);
  EXPECT_EQ(runs[2].length, 4u);
}

TEST(ShadowMemory, VisitorTotalLengthAlwaysMatches) {
  ShadowMemory shadow;
  shadow.mark_write(ShadowMemory::kPageSize - 10, 20, 3);
  std::uint32_t total = 0;
  shadow.for_each_producer(ShadowMemory::kPageSize - 30, 64,
                           [&](ProducerId, std::uint32_t len) { total += len; });
  EXPECT_EQ(total, 64u);
}

TEST(ShadowMemory, VisitorOnEmptyPageSingleRun) {
  ShadowMemory shadow;
  const auto runs = collect_runs(shadow, 5000, 16);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].producer, kNoProducer);
  EXPECT_EQ(runs[0].length, 16u);
}

}  // namespace
}  // namespace tq::quad
