// The gprof-equivalent sampling profiler.
#include <gtest/gtest.h>

#include "gasm/builder.hpp"
#include "gprofsim/gprof_tool.hpp"
#include "minipin/minipin.hpp"

namespace tq::gprof {
namespace {

using gasm::ProgramBuilder;
using gasm::R;
using gasm::SP;

/// busy(iters): spin `iters` times. main calls busy_long once (heavy) and
/// busy_short many times (light).
vm::Program make_workload() {
  ProgramBuilder prog;
  auto make_spinner = [&](const std::string& name, std::int64_t iters) {
    auto& f = prog.begin_function(name);
    f.count_loop_imm(R{8}, 0, iters, [&] { f.addi(R{9}, R{9}, 1); });
    f.ret();
  };
  make_spinner("busy_long", 5000);
  make_spinner("busy_short", 50);
  auto& main_fn = prog.begin_function("main");
  main_fn.call("busy_long");
  main_fn.count_loop_imm(R{20}, 0, 10, [&] { main_fn.call("busy_short"); });
  main_fn.halt();
  return prog.build("main");
}

struct ProfRun {
  vm::Program program;
  vm::HostEnv host;
  std::unique_ptr<pin::Engine> engine;
  std::unique_ptr<GprofTool> tool;

  explicit ProfRun(vm::Program prog, Options options = {})
      : program(std::move(prog)) {
    engine = std::make_unique<pin::Engine>(program, host);
    tool = std::make_unique<GprofTool>(*engine, options);
    engine->run();
  }
  std::uint32_t id(const std::string& name) const { return *program.find(name); }
};

TEST(GprofTool, CallCountsAreExact) {
  ProfRun run(make_workload(), Options{.sample_period = 100});
  EXPECT_EQ(run.tool->calls(run.id("busy_long")), 1u);
  EXPECT_EQ(run.tool->calls(run.id("busy_short")), 10u);
  EXPECT_EQ(run.tool->calls(run.id("main")), 1u);
}

TEST(GprofTool, ExactSelfInstructionsSumToTotal) {
  ProfRun run(make_workload(), Options{.sample_period = 97});
  std::uint64_t sum = 0;
  for (std::uint32_t k = 0; k < run.tool->kernel_count(); ++k) {
    sum += run.tool->exact_self_instructions(k);
  }
  EXPECT_EQ(sum, run.tool->total_retired());
}

TEST(GprofTool, SamplingApproximatesExactShares) {
  ProfRun run(make_workload(), Options{.sample_period = 23});
  const auto busy_long = run.id("busy_long");
  const double exact_share =
      static_cast<double>(run.tool->exact_self_instructions(busy_long)) /
      static_cast<double>(run.tool->total_retired());
  const double sampled_share =
      static_cast<double>(run.tool->samples(busy_long)) /
      static_cast<double>(run.tool->total_samples());
  EXPECT_NEAR(sampled_share, exact_share, 0.03);
}

TEST(GprofTool, InclusiveCoversCallees) {
  ProfRun run(make_workload(), Options{.sample_period = 100});
  const auto main_id = run.id("main");
  const auto busy_long = run.id("busy_long");
  // main's inclusive time covers nearly the whole program.
  EXPECT_GE(run.tool->inclusive_instructions(main_id),
            run.tool->total_retired() - 2);
  // busy_long's inclusive equals its self time (it calls nothing).
  EXPECT_EQ(run.tool->inclusive_instructions(busy_long),
            run.tool->exact_self_instructions(busy_long));
  // And self < inclusive for main.
  EXPECT_LT(run.tool->exact_self_instructions(main_id),
            run.tool->inclusive_instructions(main_id));
}

TEST(GprofTool, RecursionCountedOncePerOutermostActivation) {
  ProgramBuilder prog;
  auto& rec = prog.begin_function("rec");
  {
    const auto base = rec.new_label();
    rec.sltsi(R{3}, R{1}, 1);
    rec.brnz(R{3}, base);
    rec.enter(16);
    rec.store(SP, 0, R{1}, 8);
    rec.addi(R{1}, R{1}, -1);
    rec.call("rec");
    rec.load(R{1}, SP, 0, 8);
    rec.leave(16);
    rec.ret();
    rec.bind(base);
    rec.ret();
  }
  auto& main_fn = prog.begin_function("main");
  main_fn.movi(R{1}, 20);
  main_fn.call("rec");
  main_fn.halt();
  ProfRun run(prog.build("main"), Options{.sample_period = 10});
  const auto rec_id = run.id("rec");
  EXPECT_EQ(run.tool->calls(rec_id), 21u);
  // Inclusive must not be multiple-counted across nesting: it is bounded by
  // the whole run.
  EXPECT_LE(run.tool->inclusive_instructions(rec_id), run.tool->total_retired());
  EXPECT_GT(run.tool->inclusive_instructions(rec_id),
            run.tool->exact_self_instructions(rec_id) - 1);
}

TEST(GprofTool, FlatProfileSortedAndComplete) {
  ProfRun run(make_workload(), Options{.sample_period = 50});
  const auto rows = run.tool->flat_profile();
  ASSERT_EQ(rows.size(), 3u);  // busy_long, busy_short, main
  EXPECT_EQ(rows[0].name, "busy_long");
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1].time_fraction, rows[i].time_fraction);
  }
  for (const auto& row : rows) {
    EXPECT_GT(row.calls, 0u);
    EXPECT_GE(row.total_ms_per_call, row.self_ms_per_call * 0.99);
  }
}

TEST(GprofTool, SecondsConversionUsesCpuModel) {
  Options opt;
  opt.clock_ghz = 1.0;
  opt.ipc = 1.0;
  ProfRun run(make_workload(), opt);
  // 1e9 instructions at 1 GHz, IPC 1 = 1 second.
  EXPECT_DOUBLE_EQ(run.tool->instructions_to_seconds(1'000'000'000), 1.0);
  Options fast;
  fast.clock_ghz = 2.0;
  fast.ipc = 2.0;
  ProfRun run2(make_workload(), fast);
  EXPECT_DOUBLE_EQ(run2.tool->instructions_to_seconds(1'000'000'000), 0.25);
}

TEST(GprofTool, LibraryRoutinesHiddenFromProfile) {
  ProgramBuilder prog;
  auto& lib = prog.begin_function("libc_thing", vm::ImageKind::kLibrary);
  lib.count_loop_imm(R{8}, 0, 100, [&] { lib.addi(R{9}, R{9}, 1); });
  lib.ret();
  auto& main_fn = prog.begin_function("main");
  main_fn.call("libc_thing");
  main_fn.halt();
  ProfRun run(prog.build("main"), Options{.sample_period = 10});
  for (const auto& row : run.tool->flat_profile()) {
    EXPECT_NE(row.name, "libc_thing");
  }
}

TEST(GprofTool, TableRendersPaperColumns) {
  ProfRun run(make_workload(), Options{.sample_period = 50});
  const std::string table = run.tool->flat_profile_table().to_ascii();
  EXPECT_NE(table.find("%time"), std::string::npos);
  EXPECT_NE(table.find("self seconds"), std::string::npos);
  EXPECT_NE(table.find("calls"), std::string::npos);
  EXPECT_NE(table.find("self ms/call"), std::string::npos);
  EXPECT_NE(table.find("total ms/call"), std::string::npos);
  EXPECT_NE(table.find("busy_long"), std::string::npos);
}


TEST(GprofTool, CallGraphEdgesExact) {
  ProfRun run(make_workload(), Options{.sample_period = 100});
  const auto edges = run.tool->call_graph();
  ASSERT_FALSE(edges.empty());
  // main -> busy_short (10 calls) must be the heaviest edge; main ->
  // busy_long carries exactly 1.
  bool found_short = false, found_long = false;
  for (const auto& edge : edges) {
    if (edge.caller == run.id("main") && edge.callee == run.id("busy_short")) {
      EXPECT_EQ(edge.calls, 10u);
      found_short = true;
    }
    if (edge.caller == run.id("main") && edge.callee == run.id("busy_long")) {
      EXPECT_EQ(edge.calls, 1u);
      found_long = true;
    }
  }
  EXPECT_TRUE(found_short);
  EXPECT_TRUE(found_long);
  EXPECT_EQ(edges.front().calls, 10u) << "edges sorted heaviest first";
}

TEST(GprofTool, CallGraphCoversRecursion) {
  ProgramBuilder prog;
  auto& rec = prog.begin_function("rec");
  {
    const auto base = rec.new_label();
    rec.sltsi(R{3}, R{1}, 1);
    rec.brnz(R{3}, base);
    rec.addi(R{1}, R{1}, -1);
    rec.call("rec");
    rec.ret();
    rec.bind(base);
    rec.ret();
  }
  auto& main_fn = prog.begin_function("main");
  main_fn.movi(R{1}, 5);
  main_fn.call("rec");
  main_fn.halt();
  ProfRun run(prog.build("main"), Options{.sample_period = 10});
  // Edges: main->rec (1) and rec->rec (5 self-recursions).
  std::uint64_t self_calls = 0;
  for (const auto& edge : run.tool->call_graph()) {
    if (edge.caller == run.id("rec") && edge.callee == run.id("rec")) {
      self_calls = edge.calls;
    }
  }
  EXPECT_EQ(self_calls, 5u);
}

}  // namespace
}  // namespace tq::gprof
