// The second case-study application (DCT image encoder): golden-model
// equivalence, DSP properties, and its profile shape under the tools.
#include <gtest/gtest.h>

#include <cmath>

#include "dctc/dctc.hpp"
#include "minipin/minipin.hpp"
#include "tquad/phase.hpp"
#include "tquad/tquad_tool.hpp"
#include "vm/machine.hpp"

namespace tq::dctc {
namespace {

struct DctcRun {
  DctcConfig config;
  DctcArtifacts artifacts;
  std::vector<std::uint8_t> pixels;
  vm::HostEnv host;

  explicit DctcRun(const DctcConfig& cfg)
      : config(cfg), artifacts(build_dctc_program(cfg)), pixels(make_test_image(cfg)) {
    host.attach_input(pixels);
    host.create_output();
  }
};

TEST(Dctc, GuestStreamMatchesGoldenExactly) {
  DctcRun run(DctcConfig::tiny());
  vm::Machine machine(run.artifacts.program, run.host);
  machine.set_instruction_budget(100'000'000);
  machine.run();
  const GoldenEncode golden = run_golden_encode(run.config, run.pixels);
  const auto& stream = run.host.output(DctcArtifacts::kOutputFd);
  ASSERT_EQ(stream.size(), golden.stream.size());
  EXPECT_EQ(stream, golden.stream);
  EXPECT_FALSE(stream.empty());
}

TEST(Dctc, GuestCoefficientsMatchGolden) {
  DctcRun run(DctcConfig::tiny());
  vm::Machine machine(run.artifacts.program, run.host);
  machine.run();
  const GoldenEncode golden = run_golden_encode(run.config, run.pixels);
  for (std::size_t i = 0; i < golden.coefficients.size(); ++i) {
    const auto raw = static_cast<std::uint16_t>(
        machine.memory().load(run.artifacts.coeff_addr + 2 * i, 2));
    EXPECT_EQ(static_cast<std::int16_t>(raw), golden.coefficients[i]) << i;
  }
}

TEST(Dctc, CompressionActuallyCompresses) {
  const DctcConfig cfg = DctcConfig::tiny();
  const auto pixels = make_test_image(cfg);
  const GoldenEncode golden = run_golden_encode(cfg, pixels);
  // Quantised high-frequency coefficients vanish: the stream must be much
  // smaller than 3 bytes per coefficient.
  EXPECT_LT(golden.stream.size(), pixels.size());
  std::size_t zeros = 0;
  for (std::int16_t c : golden.coefficients) zeros += c == 0;
  EXPECT_GT(zeros, golden.coefficients.size() / 2);
}

TEST(Dctc, FlatImageHasOnlyDcCoefficients) {
  const DctcConfig cfg = DctcConfig::tiny();
  std::vector<std::uint8_t> flat(static_cast<std::size_t>(cfg.width) * cfg.height,
                                 200);
  const GoldenEncode golden = run_golden_encode(cfg, flat);
  for (std::uint32_t b = 0; b < cfg.blocks(); ++b) {
    for (int idx = 1; idx < 64; ++idx) {  // every AC coefficient
      EXPECT_EQ(golden.coefficients[static_cast<std::size_t>(b) * 64 + idx], 0);
    }
    // DC carries the block mean: (200-128)*8 / 16q ... nonzero.
    EXPECT_NE(golden.coefficients[static_cast<std::size_t>(b) * 64], 0);
  }
}

TEST(Dctc, DcCoefficientTracksBlockMean) {
  const DctcConfig cfg = DctcConfig::tiny();
  std::vector<std::uint8_t> bright(static_cast<std::size_t>(cfg.width) * cfg.height,
                                   250);
  std::vector<std::uint8_t> dark(bright.size(), 10);
  const auto bright_enc = run_golden_encode(cfg, bright);
  const auto dark_enc = run_golden_encode(cfg, dark);
  EXPECT_GT(bright_enc.coefficients[0], 0);
  EXPECT_LT(dark_enc.coefficients[0], 0);
}

TEST(Dctc, QualityControlsStreamSize) {
  DctcConfig fine = DctcConfig::tiny();
  fine.quality = 1;
  DctcConfig coarse = DctcConfig::tiny();
  coarse.quality = 8;
  const auto pixels = make_test_image(fine);
  EXPECT_GT(run_golden_encode(fine, pixels).stream.size(),
            run_golden_encode(coarse, pixels).stream.size());
}

TEST(Dctc, BadConfigRejected) {
  EXPECT_DEATH(DctcConfig({12, 32, 2}).validate(), "multiples of 8");
  EXPECT_DEATH(DctcConfig({16, 16, 0}).validate(), "quality");
}

TEST(Dctc, ThreePhaseProfileUnderTquad) {
  // The encoder's phase structure: load -> per-block transform pipeline ->
  // entropy encode. Distinct from the wfs five-phase shape.
  DctcRun run(DctcConfig::tiny());
  pin::Engine engine(run.artifacts.program, run.host);
  tquad::TQuadTool tool(engine, tquad::Options{.slice_interval = 500});
  engine.run();
  // Coarse windows must span at least one per-block iteration (~43 slices
  // here) for the per-block kernels to register as co-active; see
  // PhaseOptions::coarse_factor.
  tquad::PhaseOptions options;
  options.coarse_factor = 64;
  const auto phases = tquad::detect_phases(tool, options);
  ASSERT_GE(phases.size(), 2u);
  // img_load first, rle_encode last.
  auto phase_of = [&](const char* name) {
    const auto id = *run.artifacts.program.find(name);
    for (std::size_t p = 0; p < phases.size(); ++p) {
      for (auto k : phases[p].kernels) {
        if (k == id) return p;
      }
    }
    return SIZE_MAX;
  };
  EXPECT_LT(phase_of("img_load"), phase_of("rle_encode"));
  // The transform kernels cluster together.
  const auto fdct_phase = phase_of("fdct8x8");
  EXPECT_EQ(fdct_phase, phase_of("quantize"));
  EXPECT_EQ(fdct_phase, phase_of("zigzag"));
  EXPECT_NE(fdct_phase, phase_of("rle_encode"));
}

TEST(Dctc, TransformDominatesTheProfile) {
  DctcRun run(DctcConfig::tiny());
  pin::Engine engine(run.artifacts.program, run.host);
  tquad::TQuadTool tool(engine, tquad::Options{});
  engine.run();
  const auto fdct = *run.artifacts.program.find("fdct8x8");
  std::uint64_t total = 0;
  for (std::uint32_t k = 0; k < tool.kernel_count(); ++k) {
    total += tool.activity(k).instructions;
  }
  const double share = static_cast<double>(tool.activity(fdct).instructions) /
                       static_cast<double>(total);
  EXPECT_GT(share, 0.6) << "the 2-D DCT is the hot kernel";
}

}  // namespace
}  // namespace tq::dctc
