// The text assembler: syntax coverage, semantics via execution, and errors.
#include <gtest/gtest.h>

#include "gasm/asm_parser.hpp"
#include "support/check.hpp"
#include "vm/machine.hpp"

namespace tq::gasm {
namespace {

vm::Cpu run_source(const std::string& source, vm::HostEnv* env = nullptr) {
  vm::Program program = assemble(source);
  vm::HostEnv local;
  vm::HostEnv& host = env ? *env : local;
  vm::Machine machine(program, host);
  machine.run();
  return machine.cpu();
}

TEST(AsmParser, ArithmeticAndMoves) {
  const auto cpu = run_source(R"(
    .func main
      movi r1, 6
      movi r2, 7
      mul  r3, r1, r2       ; 42
      addi r4, r3, 0x10     ; 58
      sub  r5, r4, r1       ; 52
      halt
  )");
  EXPECT_EQ(cpu.regs[3], 42u);
  EXPECT_EQ(cpu.regs[4], 58u);
  EXPECT_EQ(cpu.regs[5], 52u);
}

TEST(AsmParser, FloatingPoint) {
  const auto cpu = run_source(R"(
    .func main
      fmovi f1, 2.5
      fmovi f2, 1.5
      fadd  f3, f1, f2
      fmul  f4, f3, f1
      fcmplt r1, f2, f1
      halt
  )");
  EXPECT_DOUBLE_EQ(cpu.fregs[3], 4.0);
  EXPECT_DOUBLE_EQ(cpu.fregs[4], 10.0);
  EXPECT_EQ(cpu.regs[1], 1u);
}

TEST(AsmParser, GlobalsAndMemory) {
  const auto cpu = run_source(R"(
    .global buf 64
    .func main
      movi   r1, buf
      movi   r2, -2
      store2 [r1+4], r2
      loads2 r3, [r1+4]
      load2  r4, [r1+4]
      fmovi  f1, 1.5
      fstore [r1+8], f1
      fload  f2, [r1+8]
      halt
  )");
  EXPECT_EQ(static_cast<std::int64_t>(cpu.regs[3]), -2);
  EXPECT_EQ(cpu.regs[4], 0xfffeu);
  EXPECT_DOUBLE_EQ(cpu.fregs[2], 1.5);
}

TEST(AsmParser, LabelsAndBranches) {
  const auto cpu = run_source(R"(
    .func main
      movi r1, 0
      movi r2, 10
    loop:
      addi r1, r1, 3
      addi r2, r2, -1
      brnz r2, loop
      halt
  )");
  EXPECT_EQ(cpu.regs[1], 30u);
}

TEST(AsmParser, ForwardLabelReference) {
  const auto cpu = run_source(R"(
    .func main
      movi r1, 1
      jmp  skip
      movi r1, 2
    skip:
      halt
  )");
  EXPECT_EQ(cpu.regs[1], 1u);
}

TEST(AsmParser, CallsAcrossFunctionsAndEntry) {
  const auto cpu = run_source(R"(
    .func helper
      movi r9, 123
      ret
    .func start
      call helper
      halt
    .entry start
  )");
  EXPECT_EQ(cpu.regs[9], 123u);
}

TEST(AsmParser, LibraryImageAnnotation) {
  vm::Program program = assemble(R"(
    .func libc_read @library
      sys read
      ret
    .func main
      halt
  )");
  EXPECT_EQ(program.function(*program.find("libc_read")).image,
            vm::ImageKind::kLibrary);
  EXPECT_EQ(program.entry(), *program.find("libc_read"));  // first .func
}

TEST(AsmParser, Predication) {
  const auto cpu = run_source(R"(
    .func main
      movi r1, 0
      movi r2, 1
      movi r3, 7
      mov  r4, r3   ?r1     ; predicated off
      mov  r5, r3   ?r2     ; predicated on
      halt
  )");
  EXPECT_EQ(cpu.regs[4], 0u);
  EXPECT_EQ(cpu.regs[5], 7u);
}

TEST(AsmParser, MovsAndSyscalls) {
  vm::HostEnv host;
  host.attach_input({'a', 'b', 'c', 'd'});
  const auto cpu = run_source(R"(
    .global src 64
    .global dst 64
    .func main
      movi r1, 0
      movi r2, src
      movi r3, 4
      sys  read             ; read "abcd" into src
      movi r1, dst
      movi r2, src
      movs8 [r1], [r2]
      halt
  )",
                              &host);
  // After movs the cursors advanced by 8.
  EXPECT_EQ(cpu.regs[1] - cpu.regs[2], 64u);  // dst - src preserved
}

TEST(AsmParser, SysNumericFallback) {
  vm::HostEnv host;
  host.attach_input({1, 2, 3});
  const auto cpu = run_source(R"(
    .global buf 16
    .func main
      movi r1, 0
      sys  5                ; kFileSize
      halt
  )",
                              &host);
  EXPECT_EQ(cpu.regs[1], 3u);
}

TEST(AsmParser, NegativeDisplacement) {
  const auto cpu = run_source(R"(
    .global buf 64
    .func main
      movi   r1, buf
      addi   r1, r1, 32
      movi   r2, 9
      store8 [r1-8], r2
      load8  r3, [r1-8]
      halt
  )");
  EXPECT_EQ(cpu.regs[3], 9u);
}

// ---- error reporting ---------------------------------------------------------

TEST(AsmParserErrors, UnknownMnemonicNamesLine) {
  try {
    assemble(".func main\n  frobnicate r1\n  halt\n");
    FAIL() << "expected Error";
  } catch (const Error& err) {
    EXPECT_NE(std::string(err.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(err.what()).find("frobnicate"), std::string::npos);
  }
}

TEST(AsmParserErrors, RejectsInstructionOutsideFunction) {
  EXPECT_THROW(assemble("movi r1, 1\n"), Error);
}

TEST(AsmParserErrors, RejectsBadRegister) {
  EXPECT_THROW(assemble(".func main\n  movi r99, 1\n  halt\n"), Error);
}

TEST(AsmParserErrors, RejectsBadOperandCount) {
  EXPECT_THROW(assemble(".func main\n  add r1, r2\n  halt\n"), Error);
}

TEST(AsmParserErrors, RejectsBadSizeSuffix) {
  EXPECT_THROW(assemble(".func main\n  movi r1, 0\n  load3 r2, [r1+0]\n  halt\n"),
               Error);
}

TEST(AsmParserErrors, RejectsUnknownCallee) {
  EXPECT_THROW(assemble(".func main\n  call nope\n  halt\n"), Error);
}

TEST(AsmParserErrors, RejectsEmptyProgram) {
  EXPECT_THROW(assemble("; nothing here\n"), Error);
}

TEST(AsmParserErrors, UnboundLabelDies) {
  EXPECT_DEATH((void)assemble(".func main\n  jmp nowhere\n  halt\n"),
               "unbound label");
}

}  // namespace
}  // namespace tq::gasm
