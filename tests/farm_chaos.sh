# Fault-tolerance contract of the replay farm, exercised end to end:
#
#   1. a clean farm over healthy traces completes with a fleet report;
#   2. a chaos farm (workers randomly SIGKILLed / hung, one corrupt trace)
#      quarantines the poison member, retries the healthy ones to success,
#      and produces a merged report BYTE-IDENTICAL to the clean run's;
#   3. sharding a v2 trace into block-range jobs merges to the same fleet
#      report as one whole-trace job;
#   4. a farm killed mid-run resumes from its checkpoint manifest and the
#      final report is byte-identical to an uninterrupted run;
#   5. -resume with mismatched job specs is refused (exit 1).
#
# Usage: farm_chaos.sh <tool-dir> <work-dir>
set -eu
TOOLS="$1"
WORK="$2"
rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

fail() {
  echo "farm_chaos: FAIL: $1" >&2
  exit 1
}

# --- fixtures -------------------------------------------------------------
"$TOOLS/zoo_gen" -workload phased -image phased.tqim > /dev/null
"$TOOLS/tquad_cli" -image phased.tqim -slice 2000 -trace t1.tqtr > /dev/null
"$TOOLS/tquad_cli" -image phased.tqim -slice 2000 -trace t2.tqtr > /dev/null
# A poison member: garbage over the header so every open/deserialize fails.
cp t1.tqtr t3.tqtr
printf 'XXXXXXXX' | dd of=t3.tqtr bs=1 seek=0 conv=notrunc 2> /dev/null

# --- 1. clean farm over the healthy fleet ---------------------------------
"$TOOLS/tquad_farm" -traces t1.tqtr,t2.tqtr -image phased.tqim \
    -state clean_state -slice 2000 -workers 2 -out clean.out > clean.stdout
grep -q "status COMPLETE" clean.stdout || fail "clean farm not COMPLETE"
grep -q "fleet bandwidth" clean.out || fail "clean farm wrote no fleet report"

# --- 2. chaos farm: random worker kills + hangs + one corrupt trace -------
status=0
"$TOOLS/tquad_farm" -traces t1.tqtr,t2.tqtr,t3.tqtr -image phased.tqim \
    -state chaos_state -slice 2000 -workers 2 -max-attempts 3 \
    -timeout-ms 1000 -backoff-ms 10 \
    -chaos-kill 0.5 -chaos-hang 0.3 -chaos-seed 7 \
    -out chaos.out > chaos.stdout || status=$?
[ "$status" -eq 3 ] || fail "chaos farm exit $status, want 3 (quarantine)"
grep -q "status DEGRADED" chaos.stdout || fail "chaos farm not DEGRADED"
grep -q "1 quarantined" chaos.stdout || fail "corrupt trace not quarantined"
# The invariant: chaos must not change the merged numbers. The healthy
# traces' fleet report is byte-identical to the clean run's.
cmp clean.out chaos.out || fail "chaos fleet report differs from clean run"
grep -q '"event":"quarantine"' chaos_state/manifest.jsonl || \
  fail "quarantine not recorded in the manifest"
ls chaos_state/job2.attempt*.stderr > /dev/null 2>&1 || \
  fail "no captured stderr for the quarantined job"

# --- 3. shard-vs-whole equivalence ----------------------------------------
# A guest with 20000 stores records a multi-block v2 trace (4096-record
# blocks), so -shard-blocks genuinely splits it.
cat > multi.s <<'EOF'
.entry main
.global buf 4096 64

.func main
    movi   r8, buf
    movi   r11, 0
loop:
    store8 [r8+0], r11
    addi   r11, r11, 1
    sltsi  r0, r11, 20000
    brnz   r0, loop
    halt
EOF
"$TOOLS/asm_run" multi.s -image multi.tqim > /dev/null || \
  fail "asm_run could not build multi.tqim"
"$TOOLS/tquad_cli" -image multi.tqim -slice 2000 -trace multi.tqtr > /dev/null

"$TOOLS/tquad_farm" -traces multi.tqtr -state whole_state -slice 2000 \
    -out whole.out > whole.stdout
"$TOOLS/tquad_farm" -traces multi.tqtr -state shard_state -slice 2000 \
    -shard-blocks 2 -out shard.out > shard.stdout
jobs=$(grep -o '[0-9]* jobs merged' shard.stdout | grep -o '^[0-9]*')
[ "$jobs" -ge 2 ] || fail "sharding produced $jobs job(s); expected several"
# Worker self-metrics depend on the job shape (a sharded run feeds the same
# records through more workers); every section above them must match exactly.
sed '/fleet worker metrics/,$d' whole.out > whole.cmp
sed '/fleet worker metrics/,$d' shard.out > shard.cmp
cmp whole.cmp shard.cmp || fail "sharded fleet report differs from whole run"

# --- 4. checkpoint-resume -------------------------------------------------
"$TOOLS/tquad_farm" -traces multi.tqtr -state full_state -slice 2000 \
    -shard-blocks 1 -out full.out > /dev/null
# Chaos hangs slow the run down (each hung attempt burns the 300ms watchdog
# timeout) so the kill below lands while jobs are still outstanding; hangs
# never change a completed job's sidecar, so the resumed report still has to
# match the uninterrupted run byte for byte.
"$TOOLS/tquad_farm" -traces multi.tqtr -state resume_state -slice 2000 \
    -shard-blocks 1 -workers 1 -backoff-ms 10 \
    -timeout-ms 300 -chaos-hang 0.8 -chaos-seed 3 -out never.out \
    > /dev/null 2>&1 &
pid=$!
i=0
while [ "$i" -lt 200 ]; do
  if grep -q '"event":"done"' resume_state/manifest.jsonl 2> /dev/null; then
    break
  fi
  i=$((i + 1))
  sleep 0.05
done
kill -9 "$pid" 2> /dev/null || true  # may already have finished; that's fine
wait "$pid" 2> /dev/null || true
grep -q '"event":"done"' resume_state/manifest.jsonl || \
  fail "supervisor died before any job checkpointed"
"$TOOLS/tquad_farm" -traces multi.tqtr -state resume_state -slice 2000 \
    -shard-blocks 1 -resume -out resume.out > resume.stdout
grep -q "status COMPLETE" resume.stdout || fail "resumed farm not COMPLETE"
cmp full.out resume.out || fail "resumed report differs from uninterrupted run"

# --- 5. -resume refuses mismatched job specs ------------------------------
status=0
"$TOOLS/tquad_farm" -traces t1.tqtr -state resume_state -slice 2000 \
    -resume -out bad.out > /dev/null 2> bad.err || status=$?
[ "$status" -eq 1 ] || fail "mismatched -resume exit $status, want 1"
grep -q "mismatch" bad.err || fail "mismatched -resume gave no diagnostic"

echo "farm_chaos: OK"
