// Robustness fuzzing: every decoder in the repository must reject malformed
// input with tq::Error — never crash, never accept garbage silently.
// Deterministic seeds keep the suite reproducible.
#include <gtest/gtest.h>

#include <cstring>
#include <span>

#include "gasm/asm_parser.hpp"
#include "gasm/builder.hpp"
#include "isa/isa.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "trace/trace.hpp"
#include "trace/trace_v2.hpp"
#include "vm/program.hpp"
#include "wfs/wav.hpp"

namespace tq {
namespace {

std::vector<std::uint8_t> random_bytes(SplitMix64& rng, std::size_t size) {
  std::vector<std::uint8_t> bytes(size);
  for (auto& byte : bytes) byte = static_cast<std::uint8_t>(rng.next());
  return bytes;
}

/// A small, valid, multi-block TQTR v2 image with a known layout (block
/// capacity 64, v2.1 with per-block CRC by default), used as the seed for
/// mutation/corruption fuzzing.
std::vector<std::uint8_t> valid_v2_image(std::uint32_t minor = trace::kV2MinorCrc) {
  trace::TraceV2Writer writer(5, 64, minor);
  std::uint64_t total_retired = 0;
  for (std::uint64_t i = 0; i < 300; ++i) {
    trace::Record record{};
    record.retired = 7 * i;
    record.ea = 0x1000'0000 + 8 * (i % 32);
    record.pc = static_cast<std::uint32_t>(i % 11);
    record.kernel = static_cast<std::uint16_t>(i % 5);
    record.func = record.kernel;
    record.kind = (i % 2) ? trace::EventKind::kWrite : trace::EventKind::kRead;
    record.size = 8;
    writer.add(record);
    total_retired = record.retired;
  }
  return writer.finish(total_retired);
}

class DecoderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecoderFuzz, IsaDecodeNeverCrashes) {
  SplitMix64 rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const auto bytes = random_bytes(rng, rng.next_below(256));
    try {
      const auto code = isa::decode(bytes);
      // If it decoded, every opcode must be in range.
      for (const auto& ins : code) {
        EXPECT_LT(static_cast<unsigned>(ins.op),
                  static_cast<unsigned>(isa::Op::kOpCount_));
      }
    } catch (const Error&) {
      // rejection is fine
    }
  }
}

TEST_P(DecoderFuzz, ProgramDeserializeNeverCrashes) {
  SplitMix64 rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const auto bytes = random_bytes(rng, rng.next_below(512));
    try {
      (void)vm::Program::deserialize(bytes);
    } catch (const Error&) {
    }
  }
}

TEST_P(DecoderFuzz, TraceDeserializeNeverCrashes) {
  SplitMix64 rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const auto bytes = random_bytes(rng, rng.next_below(512));
    try {
      (void)trace::Trace::deserialize(bytes);
    } catch (const Error&) {
    }
  }
}

TEST_P(DecoderFuzz, TraceV2OpenNeverCrashes) {
  // Random bytes behind a valid magic + version prefix, so the fuzz actually
  // exercises the v2 header/index/block validation instead of bouncing off
  // the magic check.
  SplitMix64 rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    auto bytes = random_bytes(rng, 8 + rng.next_below(512));
    bytes[0] = 'T'; bytes[1] = 'Q'; bytes[2] = 'T'; bytes[3] = 'R';
    // Alternate between v2.0 and v2.1 header prefixes (version word packs
    // major|minor little-endian), so both block-header layouts get fuzzed.
    bytes[4] = 2; bytes[5] = 0;
    bytes[6] = static_cast<std::uint8_t>(round % 2); bytes[7] = 0;
    try {
      const trace::TraceV2View view = trace::TraceV2View::open(bytes);
      for (std::size_t b = 0; b < view.block_count(); ++b) {
        (void)view.decode_block(b);
      }
    } catch (const Error&) {
    }
    try {
      (void)trace::Trace::deserialize(bytes);
    } catch (const Error&) {
    }
    try {
      (void)trace::TraceV2View::salvage(bytes);
    } catch (const Error&) {
    }
  }
}

TEST_P(DecoderFuzz, WavDecodeNeverCrashes) {
  SplitMix64 rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const auto bytes = random_bytes(rng, rng.next_below(256));
    try {
      (void)wfs::wav_decode(bytes);
    } catch (const Error&) {
    }
  }
}

TEST_P(DecoderFuzz, AssemblerNeverCrashesOnGarbageText) {
  SplitMix64 rng(GetParam());
  const char charset[] = " \t\n,.:;[]+-?rf0123456789abcdefghijklmnopqrstuvwxyz";
  for (int round = 0; round < 100; ++round) {
    std::string source;
    const std::size_t length = rng.next_below(200);
    for (std::size_t i = 0; i < length; ++i) {
      source += charset[rng.next_below(sizeof charset - 1)];
    }
    try {
      (void)gasm::assemble(source);
    } catch (const Error&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz, ::testing::Values(11, 22, 33, 44));

/// Bit-flip fuzzing: start from VALID serialised artefacts and corrupt them;
/// decode must reject or produce internally consistent data.
TEST(DecoderFuzzMutation, FlippedProgramImages) {
  gasm::ProgramBuilder prog;
  auto& f = prog.begin_function("main");
  f.movi(gasm::R{1}, 7);
  f.halt();
  const auto valid = prog.build("main").serialize();
  SplitMix64 rng(5);
  for (int round = 0; round < 300; ++round) {
    auto mutated = valid;
    const std::size_t flips = 1 + rng.next_below(4);
    for (std::size_t i = 0; i < flips; ++i) {
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    try {
      const vm::Program program = vm::Program::deserialize(mutated);
      // A surviving image passed validate(): structurally sound by contract.
      EXPECT_GE(program.functions().size(), 1u);
    } catch (const Error&) {
    }
  }
}

TEST(DecoderFuzzMutation, FlippedV2Traces) {
  const auto valid = valid_v2_image();
  SplitMix64 rng(6);
  for (int round = 0; round < 300; ++round) {
    auto mutated = valid;
    const std::size_t flips = 1 + rng.next_below(4);
    for (std::size_t i = 0; i < flips; ++i) {
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    try {
      const trace::Trace t = trace::Trace::deserialize(mutated);
      // A surviving image must still be internally consistent: declared
      // counts honoured, every record well-formed.
      for (const trace::Record& record : t.records) {
        EXPECT_LE(static_cast<unsigned>(record.kind), 3u);
        EXPECT_TRUE(record.kernel == trace::kNoKernel16 ||
                    record.kernel < t.kernel_count);
      }
    } catch (const Error&) {
    }
  }
}

TEST(DecoderFuzzMutation, TruncatedV2AtEveryLength) {
  // v2 requires the blocks to end exactly at the index and the index to end
  // exactly at EOF, so every strict prefix must be rejected.
  const auto valid = valid_v2_image();
  EXPECT_NO_THROW((void)trace::Trace::deserialize(valid));
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(valid.data(), cut);
    EXPECT_THROW((void)trace::Trace::deserialize(prefix), Error) << cut;
  }
}

TEST(DecoderFuzzMutation, LyingV2HeadersAreRejected) {
  const auto valid = valid_v2_image();
  const auto patch = [&](std::size_t offset, std::uint64_t value, int bytes) {
    auto image = valid;
    ASSERT_LE(offset + bytes, image.size());
    std::memcpy(image.data() + offset, &value, bytes);
    EXPECT_THROW((void)trace::Trace::deserialize(image), Error)
        << "patch at " << offset;
  };
  std::uint64_t index_offset;
  std::memcpy(&index_offset, valid.data() + 32, 8);

  // File header: record count, bogus index offsets (in and out of bounds).
  patch(24, 7, 8);
  patch(32, index_offset + 1, 8);
  patch(32, valid.size() + 100, 8);
  patch(32, 0, 8);
  // First block header at offset 40: record count, payload bytes,
  // last retired count, kernel bloom, the v2.1 CRC itself, and the reserved
  // word — all lies about the payload.
  patch(40, 63, 4);
  patch(40, 0, 4);
  patch(44, 11, 4);
  patch(56, 0xdeadull, 8);
  patch(64, 0, 8);
  patch(72, 0xbadc0deull, 4);
  patch(76, 1, 4);
  // Index entries: block offset and starting retired count must agree with
  // the block chain.
  patch(index_offset + 4, 41, 8);
  patch(index_offset + 12, 3, 8);
}

TEST(DecoderFuzzMutation, CorruptV2VarintsAreRejected) {
  // Stomp the first block's payload with continuation bytes: the reader must
  // reject the unterminated/overlong varint, not read past the block. The
  // v2.0 image (no CRC, payload at 72) proves the varint reader itself
  // rejects; the v2.1 image (payload at 80) is caught by the CRC first.
  auto v20 = valid_v2_image(0);
  for (std::size_t i = 0; i < 16; ++i) v20[72 + 1 + i] = 0xff;
  EXPECT_THROW((void)trace::Trace::deserialize(v20), Error);
  auto v21 = valid_v2_image();
  for (std::size_t i = 0; i < 16; ++i) v21[80 + 1 + i] = 0xff;
  EXPECT_THROW((void)trace::Trace::deserialize(v21), Error);
}

// ---- salvage-mode corpora ---------------------------------------------------------
// Salvage is deliberately permissive, so it gets the adversarial corpus too:
// whatever the damage, it must either throw tq::Error or return a view whose
// every block decodes — never crash, never hand back undecodable blocks.

TEST(DecoderFuzzMutation, SalvageSurvivesBitFlips) {
  const auto valid = valid_v2_image();
  SplitMix64 rng(7);
  for (int round = 0; round < 300; ++round) {
    auto mutated = valid;
    const std::size_t flips = 1 + rng.next_below(6);
    for (std::size_t i = 0; i < flips; ++i) {
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    try {
      trace::SalvageReport report;
      const trace::TraceV2View view = trace::TraceV2View::salvage(mutated, &report);
      for (std::size_t b = 0; b < view.block_count(); ++b) {
        EXPECT_NO_THROW((void)view.decode_block(b)) << "round " << round;
      }
      EXPECT_EQ(report.blocks_recovered, view.block_count());
    } catch (const Error&) {
      // header damage can make the whole file unrecoverable; that's fine
    }
  }
}

TEST(DecoderFuzzMutation, SalvageSurvivesTruncationAtEveryLength) {
  const auto valid = valid_v2_image();
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(valid.begin(),
                                           valid.begin() + static_cast<long>(cut));
    try {
      const trace::TraceV2View view = trace::TraceV2View::salvage(prefix);
      for (std::size_t b = 0; b < view.block_count(); ++b) {
        EXPECT_NO_THROW((void)view.decode_block(b)) << "cut " << cut;
      }
    } catch (const Error&) {
    }
  }
}

TEST(DecoderFuzzMutation, TruncatedWavAtEveryLength) {
  const auto valid = wfs::wav_encode(wfs::make_test_signal(64));
  for (std::size_t cut = 0; cut < valid.size(); cut += 3) {
    std::vector<std::uint8_t> truncated(valid.begin(),
                                        valid.begin() + static_cast<long>(cut));
    try {
      const wfs::WavData data = wfs::wav_decode(truncated);
      // Only a prefix that still covers the declared data chunk may succeed.
      EXPECT_LE(wfs::kWavHeaderSize + data.samples.size() * 2, cut);
    } catch (const Error&) {
    }
  }
}

}  // namespace
}  // namespace tq
