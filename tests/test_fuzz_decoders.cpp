// Robustness fuzzing: every decoder in the repository must reject malformed
// input with tq::Error — never crash, never accept garbage silently.
// Deterministic seeds keep the suite reproducible.
#include <gtest/gtest.h>

#include "gasm/asm_parser.hpp"
#include "gasm/builder.hpp"
#include "isa/isa.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "trace/trace.hpp"
#include "vm/program.hpp"
#include "wfs/wav.hpp"

namespace tq {
namespace {

std::vector<std::uint8_t> random_bytes(SplitMix64& rng, std::size_t size) {
  std::vector<std::uint8_t> bytes(size);
  for (auto& byte : bytes) byte = static_cast<std::uint8_t>(rng.next());
  return bytes;
}

class DecoderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecoderFuzz, IsaDecodeNeverCrashes) {
  SplitMix64 rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const auto bytes = random_bytes(rng, rng.next_below(256));
    try {
      const auto code = isa::decode(bytes);
      // If it decoded, every opcode must be in range.
      for (const auto& ins : code) {
        EXPECT_LT(static_cast<unsigned>(ins.op),
                  static_cast<unsigned>(isa::Op::kOpCount_));
      }
    } catch (const Error&) {
      // rejection is fine
    }
  }
}

TEST_P(DecoderFuzz, ProgramDeserializeNeverCrashes) {
  SplitMix64 rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const auto bytes = random_bytes(rng, rng.next_below(512));
    try {
      (void)vm::Program::deserialize(bytes);
    } catch (const Error&) {
    }
  }
}

TEST_P(DecoderFuzz, TraceDeserializeNeverCrashes) {
  SplitMix64 rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const auto bytes = random_bytes(rng, rng.next_below(512));
    try {
      (void)trace::Trace::deserialize(bytes);
    } catch (const Error&) {
    }
  }
}

TEST_P(DecoderFuzz, WavDecodeNeverCrashes) {
  SplitMix64 rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const auto bytes = random_bytes(rng, rng.next_below(256));
    try {
      (void)wfs::wav_decode(bytes);
    } catch (const Error&) {
    }
  }
}

TEST_P(DecoderFuzz, AssemblerNeverCrashesOnGarbageText) {
  SplitMix64 rng(GetParam());
  const char charset[] = " \t\n,.:;[]+-?rf0123456789abcdefghijklmnopqrstuvwxyz";
  for (int round = 0; round < 100; ++round) {
    std::string source;
    const std::size_t length = rng.next_below(200);
    for (std::size_t i = 0; i < length; ++i) {
      source += charset[rng.next_below(sizeof charset - 1)];
    }
    try {
      (void)gasm::assemble(source);
    } catch (const Error&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz, ::testing::Values(11, 22, 33, 44));

/// Bit-flip fuzzing: start from VALID serialised artefacts and corrupt them;
/// decode must reject or produce internally consistent data.
TEST(DecoderFuzzMutation, FlippedProgramImages) {
  gasm::ProgramBuilder prog;
  auto& f = prog.begin_function("main");
  f.movi(gasm::R{1}, 7);
  f.halt();
  const auto valid = prog.build("main").serialize();
  SplitMix64 rng(5);
  for (int round = 0; round < 300; ++round) {
    auto mutated = valid;
    const std::size_t flips = 1 + rng.next_below(4);
    for (std::size_t i = 0; i < flips; ++i) {
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    try {
      const vm::Program program = vm::Program::deserialize(mutated);
      // A surviving image passed validate(): structurally sound by contract.
      EXPECT_GE(program.functions().size(), 1u);
    } catch (const Error&) {
    }
  }
}

TEST(DecoderFuzzMutation, TruncatedWavAtEveryLength) {
  const auto valid = wfs::wav_encode(wfs::make_test_signal(64));
  for (std::size_t cut = 0; cut < valid.size(); cut += 3) {
    std::vector<std::uint8_t> truncated(valid.begin(),
                                        valid.begin() + static_cast<long>(cut));
    try {
      const wfs::WavData data = wfs::wav_decode(truncated);
      // Only a prefix that still covers the declared data chunk may succeed.
      EXPECT_LE(wfs::kWavHeaderSize + data.samples.size() * 2, cut);
    } catch (const Error&) {
    }
  }
}

}  // namespace
}  // namespace tq
