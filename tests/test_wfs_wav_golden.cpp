// The WAV codec and the native golden model: DSP-level properties.
#include <gtest/gtest.h>

#include <cmath>

#include "support/check.hpp"
#include "wfs/golden.hpp"
#include "wfs/wav.hpp"

namespace tq::wfs {
namespace {

// ---- wav codec ---------------------------------------------------------------

TEST(Wav, EncodeDecodeRoundTrip) {
  WavData data;
  data.sample_rate = 44100;
  data.channels = 2;
  data.samples = {0, 100, -100, 32767, -32768, 7};
  const auto bytes = wav_encode(data);
  EXPECT_EQ(bytes.size(), kWavHeaderSize + data.samples.size() * 2);
  const WavData back = wav_decode(bytes);
  EXPECT_EQ(back.sample_rate, data.sample_rate);
  EXPECT_EQ(back.channels, data.channels);
  EXPECT_EQ(back.samples, data.samples);
}

TEST(Wav, DecodeRejectsShortInput) {
  EXPECT_THROW(wav_decode({1, 2, 3}), Error);
}

TEST(Wav, DecodeRejectsBadMagic) {
  WavData data;
  data.samples = {1, 2, 3};
  auto bytes = wav_encode(data);
  bytes[0] = 'X';
  EXPECT_THROW(wav_decode(bytes), Error);
}

TEST(Wav, DecodeRejectsTruncatedData) {
  WavData data;
  data.samples.assign(100, 5);
  auto bytes = wav_encode(data);
  bytes.resize(bytes.size() - 10);
  EXPECT_THROW(wav_decode(bytes), Error);
}

TEST(Wav, TestSignalDeterministicAndBounded) {
  const WavData a = make_test_signal(1000);
  const WavData b = make_test_signal(1000);
  EXPECT_EQ(a.samples, b.samples);
  std::int16_t peak = 0;
  for (std::int16_t s : a.samples) {
    peak = std::max<std::int16_t>(peak, static_cast<std::int16_t>(std::abs(int(s))));
  }
  EXPECT_GT(peak, 8000);   // audible
  EXPECT_LT(peak, 32767);  // headroom (no clipping)
}

// ---- golden bitrev/fft ----------------------------------------------------------

TEST(GoldenBitrev, KnownValues) {
  EXPECT_EQ(golden_bitrev(0b000, 3), 0b000u);
  EXPECT_EQ(golden_bitrev(0b001, 3), 0b100u);
  EXPECT_EQ(golden_bitrev(0b011, 3), 0b110u);
  EXPECT_EQ(golden_bitrev(0b101, 3), 0b101u);
  EXPECT_EQ(golden_bitrev(1, 10), 512u);
}

TEST(GoldenBitrev, IsAnInvolution) {
  for (std::uint32_t bits : {3u, 5u, 8u, 11u}) {
    for (std::uint32_t i = 0; i < (1u << bits); i += 7) {
      EXPECT_EQ(golden_bitrev(golden_bitrev(i, bits), bits), i);
    }
  }
}

TEST(GoldenFft, DeltaTransformsToFlatSpectrum) {
  const std::uint32_t n = 64;
  std::vector<double> a(2 * n, 0.0);
  a[0] = 1.0;  // delta
  golden_fft(a, n, +1);
  for (std::uint32_t k = 0; k < n; ++k) {
    EXPECT_NEAR(a[2 * k], 1.0, 1e-12);
    EXPECT_NEAR(a[2 * k + 1], 0.0, 1e-12);
  }
}

TEST(GoldenFft, ForwardInverseIsIdentity) {
  const std::uint32_t n = 256;
  std::vector<double> a(2 * n);
  for (std::uint32_t i = 0; i < n; ++i) {
    a[2 * i] = std::sin(0.1 * i) + 0.3 * std::cos(0.05 * i);
    a[2 * i + 1] = 0.0;
  }
  const std::vector<double> original = a;
  golden_fft(a, n, +1);
  golden_fft(a, n, -1);
  for (std::uint32_t i = 0; i < 2 * n; ++i) {
    EXPECT_NEAR(a[i], original[i], 1e-10) << "index " << i;
  }
}

TEST(GoldenFft, ParsevalEnergyConservation) {
  const std::uint32_t n = 128;
  std::vector<double> a(2 * n);
  for (std::uint32_t i = 0; i < n; ++i) {
    a[2 * i] = std::sin(0.7 * i);
    a[2 * i + 1] = 0.0;
  }
  double time_energy = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    time_energy += a[2 * i] * a[2 * i] + a[2 * i + 1] * a[2 * i + 1];
  }
  golden_fft(a, n, +1);
  double freq_energy = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    freq_energy += a[2 * i] * a[2 * i] + a[2 * i + 1] * a[2 * i + 1];
  }
  EXPECT_NEAR(freq_energy / n, time_energy, 1e-9 * n);
}

TEST(GoldenFft, PureToneConcentratesInOneBin) {
  const std::uint32_t n = 128;
  std::vector<double> a(2 * n);
  const std::uint32_t bin = 5;
  for (std::uint32_t i = 0; i < n; ++i) {
    a[2 * i] = std::cos(2.0 * M_PI * bin * i / n);
    a[2 * i + 1] = 0.0;
  }
  golden_fft(a, n, +1);
  // Energy at bins 5 and n-5 only.
  for (std::uint32_t k = 0; k < n; ++k) {
    const double mag = std::hypot(a[2 * k], a[2 * k + 1]);
    if (k == bin || k == n - bin) {
      EXPECT_NEAR(mag, n / 2.0, 1e-9);
    } else {
      EXPECT_NEAR(mag, 0.0, 1e-9);
    }
  }
}

// ---- golden ffw ---------------------------------------------------------------------

TEST(GoldenFfw, MainFilterDcGainNearUnity) {
  const WfsConfig cfg = WfsConfig::tiny();
  std::vector<double> H;
  golden_ffw(cfg, 0, H);
  ASSERT_EQ(H.size(), 2u * cfg.fft_size);
  // DC bin = sum of taps = 0.9 by construction.
  EXPECT_NEAR(H[0], 0.9, 1e-12);
  EXPECT_NEAR(H[1], 0.0, 1e-12);
  // It is a lowpass: DC magnitude exceeds Nyquist magnitude.
  const std::uint32_t nyq = cfg.fft_size / 2;
  EXPECT_GT(std::fabs(H[0]), std::hypot(H[2 * nyq], H[2 * nyq + 1]));
}

TEST(GoldenFfw, BiasFilterSmall) {
  const WfsConfig cfg = WfsConfig::tiny();
  std::vector<double> B;
  golden_ffw(cfg, 1, B);
  for (std::uint32_t k = 0; k < cfg.fft_size; ++k) {
    EXPECT_LE(std::hypot(B[2 * k], B[2 * k + 1]), 0.08);
  }
}

// ---- golden pipeline -----------------------------------------------------------------

TEST(GoldenPipeline, DelaysIncreaseWithDistance) {
  const WfsConfig cfg = WfsConfig::tiny();
  const GoldenResult result = run_golden(cfg, make_test_signal(cfg.input_samples()));
  // The source ends left of centre: the farthest speaker (largest |x - px|)
  // must have the largest delay and the smallest gain.
  const WfsDerived derived(cfg);
  std::int64_t max_delay = 0;
  double max_gain = 0.0;
  for (std::uint32_t s = 0; s < cfg.speakers; ++s) {
    max_delay = std::max(max_delay, result.delays[s]);
    max_gain = std::max(max_gain, result.gains[s]);
    EXPECT_GE(result.delays[s], 0);
    EXPECT_GT(result.gains[s], 0.0);
  }
  // Delays vary across speakers (the wavefront is curved).
  std::int64_t min_delay = max_delay;
  for (std::int64_t d : result.delays) min_delay = std::min(min_delay, d);
  EXPECT_GT(max_delay, min_delay);
}

TEST(GoldenPipeline, OutputPeakNormalisedTo90Percent) {
  const WfsConfig cfg = WfsConfig::tiny();
  const GoldenResult result = run_golden(cfg, make_test_signal(cfg.input_samples()));
  std::int16_t peak = 0;
  for (std::int16_t s : result.output) {
    peak = std::max<std::int16_t>(peak, static_cast<std::int16_t>(std::abs(int(s))));
  }
  // 0.9 * 32767 = 29490, reached within quantisation of the peak sample.
  EXPECT_NEAR(peak, 29490, 2);
}

TEST(GoldenPipeline, SilentInputProducesSilentOutput) {
  const WfsConfig cfg = WfsConfig::tiny();
  WavData silence;
  silence.samples.assign(cfg.input_samples(), 0);
  const GoldenResult result = run_golden(cfg, silence);
  for (std::int16_t s : result.output) EXPECT_EQ(s, 0);
  // The bias spectrum leaves only numerical dust (its impulse response lies
  // outside the overlap-save tail), so the peak is ~1e-19, not exactly 0.
  EXPECT_LT(result.peak, 1e-12);
}

TEST(GoldenPipeline, DeterministicAcrossRuns) {
  const WfsConfig cfg = WfsConfig::tiny();
  const WavData input = make_test_signal(cfg.input_samples());
  const GoldenResult a = run_golden(cfg, input);
  const GoldenResult b = run_golden(cfg, input);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.delays, b.delays);
}

TEST(GoldenPipeline, SpeakerFramesScaleWithGain) {
  const WfsConfig cfg = WfsConfig::tiny();
  const GoldenResult result = run_golden(cfg, make_test_signal(cfg.input_samples()));
  const std::uint64_t total = cfg.input_samples();
  // RMS per speaker roughly tracks the per-speaker gain ordering.
  std::vector<double> rms(cfg.speakers, 0.0);
  for (std::uint32_t s = 0; s < cfg.speakers; ++s) {
    double acc = 0.0;
    for (std::uint64_t g = 0; g < total; ++g) {
      const double v = result.frames[s * total + g];
      acc += v * v;
    }
    rms[s] = std::sqrt(acc / static_cast<double>(total));
  }
  // Strongest speaker by gain also strongest by energy.
  const auto max_gain_s = static_cast<std::uint32_t>(
      std::max_element(result.gains.begin(), result.gains.end()) -
      result.gains.begin());
  const auto max_rms_s = static_cast<std::uint32_t>(
      std::max_element(rms.begin(), rms.end()) - rms.begin());
  EXPECT_EQ(max_gain_s, max_rms_s);
}

}  // namespace
}  // namespace tq::wfs
