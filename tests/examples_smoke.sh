#!/bin/sh
# Run every example binary on its fast configuration and check for the
# load-bearing lines of each one's output.
set -e
EXAMPLES="$1"
"$EXAMPLES/quickstart" > q.txt
grep -q "retired" q.txt && grep -q "fill" q.txt && grep -q "sum" q.txt
"$EXAMPLES/wfs_case_study" -tiny > w.txt
grep -q "flat profile" w.txt
grep -q "detected phases" w.txt
grep -q "bit-exact" w.txt
"$EXAMPLES/custom_tool" > c.txt
grep -q "working-set classification" c.txt
grep -q "streaming" c.txt
"$EXAMPLES/phase_explorer" > p.txt
grep -q "slice interval" p.txt
grep -q "phases" p.txt
"$EXAMPLES/task_partitioner" > t.txt
grep -q "task clusters" t.txt
grep -q "suggestion" t.txt
"$EXAMPLES/codec_case_study" > d.txt
grep -q "encoded" d.txt
grep -q "matches the golden encoder" d.txt
echo "examples smoke: OK"
