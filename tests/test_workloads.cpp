// The synthetic workload generators: computational correctness (host
// reference vs guest memory) and the expected memory-behaviour signatures
// under tQUAD.
#include <gtest/gtest.h>

#include "minipin/minipin.hpp"
#include "tquad/report.hpp"
#include "tquad/tquad_tool.hpp"
#include "vm/machine.hpp"
#include "workloads/workloads.hpp"

namespace tq::workloads {
namespace {

TEST(StreamWorkload, ComputesStreamSemantics) {
  const std::uint32_t n = 64;
  StreamArtifacts art = build_stream(n, 2);
  vm::HostEnv host;
  vm::Machine machine(art.program, host);
  machine.run();
  // Host reference: the four kernels applied twice.
  std::vector<double> a(n, 2.0), b(n, 0.5), c(n, 0.0);
  for (std::uint32_t iter = 0; iter < 2; ++iter) {
    c = a;
    for (auto& v : b) v = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) b[i] = art.scalar * c[i];
    for (std::uint32_t i = 0; i < n; ++i) c[i] = a[i] + b[i];
    for (std::uint32_t i = 0; i < n; ++i) a[i] = b[i] + art.scalar * c[i];
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(machine.memory().load_f64(art.a_addr + 8 * i), a[i]) << i;
    EXPECT_DOUBLE_EQ(machine.memory().load_f64(art.b_addr + 8 * i), b[i]) << i;
    EXPECT_DOUBLE_EQ(machine.memory().load_f64(art.c_addr + 8 * i), c[i]) << i;
  }
}

TEST(StreamWorkload, CopyKernelIsBandwidthDominant) {
  StreamArtifacts art = build_stream(512, 1);
  vm::HostEnv host;
  pin::Engine engine(art.program, host);
  tquad::TQuadTool tool(engine, tquad::Options{.slice_interval = 200});
  engine.run();
  const auto copy_id = *art.program.find("stream_copy");
  const auto scale_id = *art.program.find("stream_scale");
  const auto copy_stats =
      tquad::bandwidth_stats(tool.bandwidth().kernel(copy_id), 200);
  const auto scale_stats =
      tquad::bandwidth_stats(tool.bandwidth().kernel(scale_id), 200);
  // Block moves shift far more bytes per instruction than scalar loops.
  EXPECT_GT(copy_stats.max_rw_incl, 4.0 * scale_stats.max_rw_incl);
}

class MatmulVariants : public ::testing::TestWithParam<bool> {};

TEST_P(MatmulVariants, MatchesHostReference) {
  const bool tiled = GetParam();
  const std::uint32_t n = 16;
  MatmulArtifacts art = build_matmul(n, tiled, 4);
  vm::HostEnv host;
  vm::Machine machine(art.program, host);
  machine.run();
  const std::vector<double> want = matmul_reference(n);
  for (std::uint32_t i = 0; i < n * n; ++i) {
    EXPECT_DOUBLE_EQ(machine.memory().load_f64(art.c_addr + 8 * i), want[i])
        << (tiled ? "tiled" : "naive") << " element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(NaiveAndTiled, MatmulVariants, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "tiled" : "naive";
                         });

TEST(MatmulWorkload, NaiveAndTiledMoveSameDataDifferently) {
  // Same arithmetic, same result; the tiled variant performs the identical
  // number of FLOPs but touches C more often (read-modify-write per tile)
  // while keeping a smaller instantaneous working set.
  const std::uint32_t n = 16;
  auto run_tool = [&](bool tiled) {
    MatmulArtifacts art = build_matmul(n, tiled, 4);
    vm::HostEnv host;
    pin::Engine engine(art.program, host);
    auto tool = std::make_unique<tquad::TQuadTool>(
        engine, tquad::Options{.slice_interval = 1'000'000});
    engine.run();
    const auto id = *art.program.find(tiled ? "matmul_tiled" : "matmul_naive");
    return tool->bandwidth().kernel(id).totals;
  };
  const auto naive = run_tool(false);
  const auto tiled = run_tool(true);
  // Reads of A and B are identical in count (n^3 each side)...
  EXPECT_EQ(naive.read_excl, 2u * 16 * 16 * 16 * 8);
  // ...but the tiled variant re-reads and re-writes C per k-tile.
  EXPECT_GT(tiled.read_excl, naive.read_excl);
  EXPECT_GT(tiled.write_excl, naive.write_excl);
}

TEST(ChaseWorkload, WalksTheCycleCorrectly) {
  ChaseArtifacts art = build_chase(256, 10'000);
  vm::HostEnv host;
  vm::Machine machine(art.program, host);
  machine.run();
  const std::uint64_t final_node =
      (machine.cpu().regs[1] - art.nodes_addr) / 8;
  EXPECT_EQ(final_node, art.expected_final);
}

TEST(ChaseWorkload, CycleVisitsEveryNodeOnce) {
  // With hops == nodes the walk returns to the start (single cycle).
  const std::uint32_t nodes = 128;
  ChaseArtifacts art = build_chase(nodes, nodes);
  vm::HostEnv host;
  vm::Machine machine(art.program, host);
  machine.run();
  EXPECT_EQ(machine.cpu().regs[1], art.nodes_addr);
}

TEST(ChaseWorkload, LowBytesPerInstructionSignature) {
  ChaseArtifacts art = build_chase(1024, 50'000);
  vm::HostEnv host;
  pin::Engine engine(art.program, host);
  tquad::TQuadTool tool(engine, tquad::Options{.slice_interval = 1000});
  engine.run();
  const auto id = *art.program.find("chase");
  const auto stats = tquad::bandwidth_stats(tool.bandwidth().kernel(id), 1000);
  // One 8-byte read per ~4-instruction hop: ~2 B/instr, far below streaming.
  EXPECT_GT(stats.avg_read_incl, 1.0);
  EXPECT_LT(stats.avg_read_incl, 3.0);
  EXPECT_LT(stats.avg_write_incl, 0.01);
}

TEST(HistogramWorkload, CountsMatchHostReference) {
  HistogramArtifacts art = build_histogram(64, 20'000);
  vm::HostEnv host;
  vm::Machine machine(art.program, host);
  machine.run();
  std::uint64_t total = 0;
  for (std::uint32_t bucket = 0; bucket < art.buckets; ++bucket) {
    const std::uint64_t count =
        machine.memory().load(art.buckets_addr + 8 * bucket, 8);
    EXPECT_EQ(count, art.expected[bucket]) << "bucket " << bucket;
    total += count;
  }
  EXPECT_EQ(total, art.samples);
}

TEST(HistogramWorkload, TouchesOnlyTheBucketArray) {
  HistogramArtifacts art = build_histogram(32, 5'000);
  vm::HostEnv host;
  pin::Engine engine(art.program, host);
  tquad::TQuadTool tool(engine, tquad::Options{.slice_interval = 100'000});
  engine.run();
  const auto id = *art.program.find("histogram");
  const auto& totals = tool.bandwidth().kernel(id).totals;
  // Read-modify-write: 8 bytes in, 8 bytes out per sample (plus the ret).
  EXPECT_EQ(totals.write_excl, 5'000u * 8);
  EXPECT_EQ(totals.read_excl, 5'000u * 8);
}

TEST(HashJoinWorkload, JoinMatchesHostReference) {
  HashJoinArtifacts art = build_hashjoin(64, 96);
  vm::HostEnv host;
  vm::Machine machine(art.program, host);
  machine.run();
  EXPECT_EQ(machine.memory().load(art.result_addr, 8), art.expected_sum);
  EXPECT_EQ(machine.memory().load(art.result_addr + 8, 8), art.expected_matches);
  // Roughly half the probe keys come from the build side: both the hit and
  // the miss path of the probe loop must have executed.
  EXPECT_GT(art.expected_matches, 0u);
  EXPECT_LT(art.expected_matches, art.probe_rows);
}

TEST(HashJoinWorkload, TableIsAtMostHalfFull) {
  HashJoinArtifacts art = build_hashjoin(100, 10);
  // Linear probing terminates because slots >= 2 * build_rows (power of two).
  EXPECT_GE(art.slots, 2 * art.build_rows);
  EXPECT_EQ(art.slots & (art.slots - 1), 0u);
}

TEST(PhasedWorkload, AllFourPhasesMatchHostReference) {
  PhasedArtifacts art = build_phased(64, 3);
  vm::HostEnv host;
  vm::Machine machine(art.program, host);
  machine.run();
  for (std::uint32_t p = 0; p < PhasedArtifacts::kPhases; ++p) {
    for (std::uint32_t i = 0; i < art.elements; ++i) {
      EXPECT_EQ(machine.memory().load(art.buffer_addr[p] + 8 * i, 8),
                art.expected[p][i])
          << "phase " << p << " element " << i;
    }
  }
}

TEST(Workloads, BadParametersRejected) {
  EXPECT_DEATH((void)build_stream(12, 1), "multiple of 8");
  EXPECT_DEATH((void)build_matmul(15, true, 4), "multiple of the tile");
  EXPECT_DEATH((void)build_histogram(48, 10), "power of two");
  EXPECT_DEATH((void)build_chase(1, 10), "at least two nodes");
  EXPECT_DEATH((void)build_hashjoin(0, 10), "at least one build row");
  EXPECT_DEATH((void)build_hashjoin(10, 0), "at least one probe row");
  EXPECT_DEATH((void)build_phased(12, 1), "power of two");
  EXPECT_DEATH((void)build_phased(16, 0), "at least one pass");
  EXPECT_DEATH((void)build_phased(16, 1, 0), "nonzero");
}

}  // namespace
}  // namespace tq::workloads
