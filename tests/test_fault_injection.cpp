// Deterministic fault injection: the FaultPlan hooks on the VM and the
// partial-profile guarantee built on them. The load-bearing property is
// prefix equality — a session cut short by an injected guest trap at retired
// N must produce byte-for-byte the same tool state as a session gracefully
// truncated by an instruction budget of N, on every workload and for every
// tool. That is what makes a PARTIAL report trustworthy: it is exactly the
// clean run's prefix, not an approximation of it.
#include <gtest/gtest.h>

#include <string>

#include "gasm/builder.hpp"
#include "gprofsim/gprof_tool.hpp"
#include "quad/quad_tool.hpp"
#include "session/session.hpp"
#include "trace/trace.hpp"
#include "trace/trace_v2.hpp"
#include "tquad/tquad_tool.hpp"
#include "workloads/registry.hpp"
#include "workloads/workloads.hpp"

#include "session_tool_compare.hpp"

namespace tq::session {
namespace {

constexpr std::uint64_t kSlice = 1000;
constexpr std::uint64_t kSamplePeriod = 700;

/// The three profilers plus the trace recorder riding one ProfileSession.
struct SessionRun {
  explicit SessionRun(const vm::Program& program, SessionConfig config)
      : session(program, config),
        tquad(program, tquad::Options{.slice_interval = kSlice}),
        quad(program, quad::QuadOptions{}),
        gprof(program,
              [] {
                gprof::Options options;
                options.sample_period = kSamplePeriod;
                return options;
              }()),
        recorder(program, tquad::LibraryPolicy::kExclude,
                 trace::TraceFormat::kV2) {
    session.add_consumer(tquad);
    session.add_consumer(quad);
    session.add_consumer(gprof);
    session.add_consumer(recorder);
  }

  vm::RunOutcome run_live(vm::HostEnv& host) { return session.run_live(host); }

  ProfileSession session;
  tquad::TQuadTool tquad;
  quad::QuadTool quad;
  gprof::GprofTool gprof;
  trace::TraceRecorder recorder;
};

/// Fault at retired N must equal budget-truncation at N, tool for tool, and
/// the traces both runs recorded must be identical and replayable.
void check_fault_equals_prefix(const vm::Program& program, vm::HostEnv&& fault_host,
                               vm::HostEnv&& budget_host, std::uint64_t clean_total) {
  ASSERT_GT(clean_total, 2u);
  const std::uint64_t cut = clean_total / 2;

  SessionConfig fault_config;
  fault_config.fault_plan.trap_at_retired = cut;
  SessionRun faulted(program, fault_config);
  const vm::RunOutcome fault_outcome = faulted.run_live(fault_host);
  ASSERT_EQ(fault_outcome.status, vm::RunStatus::kTrapped);
  EXPECT_NE(fault_outcome.trap_kind.find("fault injection"), std::string::npos);
  ASSERT_EQ(fault_outcome.retired, cut);

  SessionConfig budget_config;
  budget_config.instruction_budget = cut;
  SessionRun truncated(program, budget_config);
  const vm::RunOutcome budget_outcome = truncated.run_live(budget_host);
  ASSERT_EQ(budget_outcome.status, vm::RunStatus::kTruncated);
  ASSERT_EQ(budget_outcome.retired, cut);

  testutil::expect_tquad_equal(faulted.tquad, truncated.tquad);
  testutil::expect_quad_equal(faulted.quad, truncated.quad);
  testutil::expect_gprof_equal(faulted.gprof, truncated.gprof);

  // Consumers saw the structured outcome, not just the event stream.
  EXPECT_EQ(faulted.tquad.outcome().status, vm::RunStatus::kTrapped);
  EXPECT_EQ(faulted.quad.outcome().status, vm::RunStatus::kTrapped);
  EXPECT_EQ(faulted.gprof.outcome().status, vm::RunStatus::kTrapped);
  EXPECT_EQ(truncated.tquad.outcome().status, vm::RunStatus::kTruncated);

  // Both cut-short traces were finalized on the error path and replay to the
  // same retired count through the session machinery.
  const std::vector<std::uint8_t> fault_trace = faulted.recorder.take_encoded();
  EXPECT_EQ(fault_trace, truncated.recorder.take_encoded());
  ASSERT_NO_THROW((void)trace::TraceV2View::open(fault_trace));
  ProfileSession replay_session(program, SessionConfig{});
  tquad::TQuadTool replay_tool(program, tquad::Options{.slice_interval = kSlice});
  replay_session.add_consumer(replay_tool);
  const vm::RunOutcome replay_outcome = replay_session.replay(fault_trace);
  EXPECT_EQ(replay_outcome.retired, cut);
  testutil::expect_tquad_equal(faulted.tquad, replay_tool);
}

std::uint64_t clean_total(const vm::Program& program, vm::HostEnv& host) {
  vm::Machine machine(program, host);
  const vm::RunOutcome outcome = machine.run();
  EXPECT_EQ(outcome.status, vm::RunStatus::kHalted);
  return outcome.retired;
}

/// One test per registered workload — the registry supplies the workload
/// list (wfs included, no special-casing), so a newly registered shape gets
/// the prefix contract for free.
class FaultDifferentialZoo : public ::testing::TestWithParam<std::string> {};

TEST_P(FaultDifferentialZoo, TrapEqualsBudgetPrefix) {
  const workloads::Entry& entry = workloads::find_workload(GetParam());
  // Three builds: one clean run to measure the cut point, one faulted run,
  // one budget-truncated run (each Instance is single-shot).
  workloads::Instance clean = entry.build();
  workloads::Instance faulted = entry.build();
  workloads::Instance truncated = entry.build();
  const std::uint64_t total = clean_total(clean.program, clean.host);
  check_fault_equals_prefix(clean.program, std::move(faulted.host),
                            std::move(truncated.host), total);
}

INSTANTIATE_TEST_SUITE_P(Zoo, FaultDifferentialZoo,
                         ::testing::ValuesIn(workloads::workload_names()),
                         [](const auto& info) { return info.param; });

// ---- FaultPlan trigger kinds on the bare Machine ----------------------------------

TEST(FaultPlan, TrapAtRetiredIsDeterministic) {
  const vm::Program program = workloads::build_stream(64, 1).program;
  vm::RunOutcome outcomes[2];
  for (vm::RunOutcome& outcome : outcomes) {
    vm::HostEnv host;
    vm::Machine machine(program, host);
    vm::FaultPlan plan;
    plan.trap_at_retired = 123;
    machine.set_fault_plan(plan);
    outcome = machine.run();
  }
  EXPECT_EQ(outcomes[0].status, vm::RunStatus::kTrapped);
  EXPECT_EQ(outcomes[0].retired, 123u);
  EXPECT_EQ(outcomes[0].status, outcomes[1].status);
  EXPECT_EQ(outcomes[0].retired, outcomes[1].retired);
  EXPECT_EQ(outcomes[0].trap_kind, outcomes[1].trap_kind);
  EXPECT_EQ(outcomes[0].trap_func, outcomes[1].trap_func);
  EXPECT_EQ(outcomes[0].trap_pc, outcomes[1].trap_pc);
}

TEST(FaultPlan, FailSyscallTrapsOnTheKthSyscall) {
  gasm::ProgramBuilder prog;
  auto& f = prog.begin_function("main");
  for (int i = 0; i < 3; ++i) {
    f.movi(gasm::R{1}, 16);
    f.sys(isa::Sys::kAlloc);
  }
  f.halt();
  const vm::Program program = prog.build("main");

  vm::HostEnv host;
  vm::Machine machine(program, host);
  vm::FaultPlan plan;
  plan.fail_syscall = 2;
  machine.set_fault_plan(plan);
  const vm::RunOutcome outcome = machine.run();
  ASSERT_EQ(outcome.status, vm::RunStatus::kTrapped);
  EXPECT_NE(outcome.trap_kind.find("syscall 2"), std::string::npos);
  // movi+sys, movi, then the failing sys delivered its tick: 4 retired.
  EXPECT_EQ(outcome.retired, 4u);
  EXPECT_EQ(outcome.trap_function, "main");
}

TEST(FaultPlan, FailFuncTrapsOnTheMthEntry) {
  gasm::ProgramBuilder prog;
  auto& helper = prog.begin_function("helper");
  helper.ret();
  auto& main_fn = prog.begin_function("main");
  for (int i = 0; i < 5; ++i) main_fn.call("helper");
  main_fn.halt();
  const vm::Program program = prog.build("main");

  std::uint32_t helper_id = 0;
  for (std::uint32_t k = 0; k < program.functions().size(); ++k) {
    if (program.functions()[k].name == "helper") helper_id = k;
  }

  vm::HostEnv host;
  vm::Machine machine(program, host);
  vm::FaultPlan plan;
  plan.fail_func = helper_id;
  plan.fail_func_entries = 3;
  machine.set_fault_plan(plan);
  const vm::RunOutcome outcome = machine.run();
  ASSERT_EQ(outcome.status, vm::RunStatus::kTrapped);
  EXPECT_EQ(outcome.trap_function, "helper");
  EXPECT_NE(outcome.trap_kind.find("entered 3 time"), std::string::npos);
  // call+ret per entry: two clean round trips, then the third call's tick.
  EXPECT_EQ(outcome.retired, 5u);
}

TEST(FaultPlan, UnarmedPlanChangesNothing) {
  const vm::Program program = workloads::build_stream(32, 1).program;
  vm::HostEnv clean_host;
  vm::Machine clean(program, clean_host);
  const vm::RunOutcome clean_outcome = clean.run();

  vm::HostEnv planned_host;
  vm::Machine planned(program, planned_host);
  planned.set_fault_plan(vm::FaultPlan{});  // all triggers disarmed
  const vm::RunOutcome planned_outcome = planned.run();
  EXPECT_EQ(planned_outcome.status, vm::RunStatus::kHalted);
  EXPECT_EQ(planned_outcome.retired, clean_outcome.retired);
}

}  // namespace
}  // namespace tq::session
