// Differential matrix for the compiled execution engine: lowering guest
// programs plus their subscribed instrumentation into fused-op threaded
// dispatch must be observationally invisible. For every zoo workload, every
// non-empty tool combination, serial and parallel dispatch, and under
// injected traps, the compiled engine's tool state must equal the
// interpreter reference exactly — and a trap at N must equal the budget-N
// truncated prefix (the PARTIAL contract holds across engines).
//
// The engine edge contracts are pinned here for BOTH engines: run() is
// single-shot, budget == retired is a clean boundary, and a fully disarmed
// FaultPlan is a no-op.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gprofsim/gprof_tool.hpp"
#include "quad/quad_tool.hpp"
#include "session/session.hpp"
#include "trace/trace.hpp"
#include "tquad/tquad_tool.hpp"
#include "vm/compiled.hpp"
#include "vm/machine.hpp"
#include "workloads/registry.hpp"
#include "workloads/workloads.hpp"

#include "session_tool_compare.hpp"

namespace tq::session {
namespace {

constexpr std::uint64_t kSlice = 1000;
constexpr std::uint64_t kSamplePeriod = 700;

/// Which consumers ride the session (bit i of the matrix loop).
struct ToolMask {
  bool tquad = false;
  bool quad = false;
  bool gprof = false;
  bool trace = false;
};

constexpr ToolMask kAllTools{true, true, true, true};

/// One session plus the masked subset of consumers.
struct SessionRun {
  SessionRun(const vm::Program& program, const SessionConfig& config, ToolMask mask)
      : session(program, config) {
    if (mask.tquad) {
      tquad_tool.emplace(program,
                         tquad::Options{.slice_interval = kSlice,
                                        .library_policy = config.library_policy});
      session.add_consumer(*tquad_tool);
    }
    if (mask.quad) {
      quad_tool.emplace(program, quad::QuadOptions{config.library_policy});
      session.add_consumer(*quad_tool);
    }
    if (mask.gprof) {
      gprof::Options options;
      options.sample_period = kSamplePeriod;
      options.library_policy = config.library_policy;
      gprof_tool.emplace(program, options);
      session.add_consumer(*gprof_tool);
    }
    if (mask.trace) {
      recorder.emplace(program, config.library_policy, trace::TraceFormat::kV2);
      session.add_consumer(*recorder);
    }
  }

  ProfileSession session;
  std::optional<tquad::TQuadTool> tquad_tool;
  std::optional<quad::QuadTool> quad_tool;
  std::optional<gprof::GprofTool> gprof_tool;
  std::optional<trace::TraceRecorder> recorder;
};

void expect_matches(SessionRun& reference, const std::vector<std::uint8_t>& reference_trace,
                    SessionRun& candidate, ToolMask mask) {
  if (mask.tquad) {
    testutil::expect_tquad_equal(*reference.tquad_tool, *candidate.tquad_tool);
  }
  if (mask.quad) {
    testutil::expect_quad_equal(*reference.quad_tool, *candidate.quad_tool);
  }
  if (mask.gprof) {
    testutil::expect_gprof_equal(*reference.gprof_tool, *candidate.gprof_tool);
  }
  if (mask.trace) {
    EXPECT_EQ(reference_trace, candidate.recorder->take_encoded());
  }
}

workloads::Instance make_guest(const std::string& name) {
  return workloads::find_workload(name).build();
}

SessionConfig engine_config(vm::EngineKind engine) {
  SessionConfig config;
  config.engine = engine;
  return config;
}

/// Interpreter all-tools reference for one workload, run once per test.
struct InterpReference {
  explicit InterpReference(const std::string& name, SessionConfig config = {})
      : guest(make_guest(name)) {
    config.engine = vm::EngineKind::kInterp;
    run.emplace(guest.program, config, kAllTools);
    outcome = run->session.run_live(guest.host);
    trace = run->recorder->take_encoded();
  }

  workloads::Instance guest;
  std::optional<SessionRun> run;
  vm::RunOutcome outcome;
  std::vector<std::uint8_t> trace;
};

// ---------------------------------------------------------------------------
// Full matrix: 15 non-empty tool subsets per workload, compiled vs interp.
// The trace recorder makes this byte-for-byte (a TQTR image is a serialized
// transcript of every attributed event), the other comparators walk every
// externally observable counter.

class EngineMatrixZoo : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineMatrixZoo, CompiledEqualsInterp) {
  InterpReference ref(GetParam());
  for (unsigned bits = 1; bits < 16; ++bits) {
    const ToolMask mask{(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0,
                        (bits & 8) != 0};
    SCOPED_TRACE("tool mask bits=" + std::to_string(bits));
    workloads::Instance guest = make_guest(GetParam());
    ASSERT_EQ(ref.guest.program.serialize(), guest.program.serialize());
    SessionRun run(guest.program, engine_config(vm::EngineKind::kCompiled), mask);
    const vm::RunOutcome outcome = run.session.run_live(guest.host);
    EXPECT_EQ(outcome.status, ref.outcome.status);
    EXPECT_EQ(outcome.retired, ref.outcome.retired);
    expect_matches(*ref.run, ref.trace, run, mask);
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, EngineMatrixZoo,
                         ::testing::ValuesIn(workloads::workload_names()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Parallel dispatch on top of the compiled engine: batched event emission
// feeding the drain workers must still land on the serial interpreter's
// answer (the two performance layers compose without touching accounting).

class EngineParallelZoo : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineParallelZoo, CompiledParallelEqualsInterpSerial) {
  InterpReference ref(GetParam());
  workloads::Instance guest = make_guest(GetParam());
  SessionConfig config = engine_config(vm::EngineKind::kCompiled);
  config.pipeline.mode = PipelineMode::kParallel;
  config.pipeline.workers = 3;
  config.pipeline.batch_events = 64;
  config.pipeline.ring_batches = 2;
  config.pipeline.access_shards = 2;
  SessionRun run(guest.program, config, kAllTools);
  const vm::RunOutcome outcome = run.session.run_live(guest.host);
  EXPECT_EQ(outcome.status, ref.outcome.status);
  EXPECT_EQ(outcome.retired, ref.outcome.retired);
  expect_matches(*ref.run, ref.trace, run, kAllTools);
}

INSTANTIATE_TEST_SUITE_P(Zoo, EngineParallelZoo,
                         ::testing::ValuesIn(workloads::workload_names()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Trap parity: trap@N on the compiled engine == trap@N on the interpreter
// == the budget-N truncated prefix. Three runs, one accounting answer —
// only the status differs between the faulted and truncated pair.

class EngineFaultZoo : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineFaultZoo, TrapAtNEqualsFirstNPrefix) {
  workloads::Instance probe = make_guest(GetParam());
  vm::Machine machine(probe.program, probe.host);
  const std::uint64_t total = machine.run().retired;
  ASSERT_GT(total, 2u);
  const std::uint64_t cut = total / 2;

  SessionConfig fault_config;
  fault_config.fault_plan.trap_at_retired = cut;
  InterpReference ref(GetParam(), fault_config);
  ASSERT_EQ(ref.outcome.status, vm::RunStatus::kTrapped);
  ASSERT_EQ(ref.outcome.retired, cut);

  // Compiled engine, same trap point.
  {
    workloads::Instance guest = make_guest(GetParam());
    SessionConfig config = engine_config(vm::EngineKind::kCompiled);
    config.fault_plan.trap_at_retired = cut;
    SessionRun run(guest.program, config, kAllTools);
    const vm::RunOutcome outcome = run.session.run_live(guest.host);
    ASSERT_EQ(outcome.status, vm::RunStatus::kTrapped);
    ASSERT_EQ(outcome.retired, cut);
    EXPECT_EQ(outcome.trap_kind, ref.outcome.trap_kind);
    expect_matches(*ref.run, ref.trace, run, kAllTools);
  }

  // Compiled engine, budget-truncated at the same instruction: identical
  // prefix accounting under the graceful status.
  {
    workloads::Instance guest = make_guest(GetParam());
    SessionConfig config = engine_config(vm::EngineKind::kCompiled);
    config.instruction_budget = cut;
    SessionRun run(guest.program, config, kAllTools);
    const vm::RunOutcome outcome = run.session.run_live(guest.host);
    ASSERT_EQ(outcome.status, vm::RunStatus::kTruncated);
    ASSERT_EQ(outcome.retired, cut);
    if (kAllTools.tquad) {
      testutil::expect_tquad_equal(*ref.run->tquad_tool, *run.tquad_tool);
    }
    testutil::expect_quad_equal(*ref.run->quad_tool, *run.quad_tool);
    testutil::expect_gprof_equal(*ref.run->gprof_tool, *run.gprof_tool);
    // The trace stamps the outcome status in its footer, so compare the
    // truncated run against a truncated interpreter run instead.
    workloads::Instance interp_guest = make_guest(GetParam());
    SessionConfig interp_config = engine_config(vm::EngineKind::kInterp);
    interp_config.instruction_budget = cut;
    SessionRun interp_run(interp_guest.program, interp_config, kAllTools);
    ASSERT_EQ(interp_run.session.run_live(interp_guest.host).status,
              vm::RunStatus::kTruncated);
    EXPECT_EQ(interp_run.recorder->take_encoded(), run.recorder->take_encoded());
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, EngineFaultZoo,
                         ::testing::ValuesIn(workloads::workload_names()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Bare-machine differential: no tools, no session — the two engines must
// agree on the architectural outcome (retired count, final registers, heap).

class EngineBareZoo : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineBareZoo, ArchitecturalStateMatches) {
  workloads::Instance interp_guest = make_guest(GetParam());
  vm::Machine machine(interp_guest.program, interp_guest.host);
  const vm::RunOutcome interp_outcome = machine.run();

  workloads::Instance compiled_guest = make_guest(GetParam());
  vm::CompiledMachine compiled(compiled_guest.program, compiled_guest.host);
  const vm::RunOutcome compiled_outcome = compiled.run();

  EXPECT_EQ(compiled_outcome.status, interp_outcome.status);
  EXPECT_EQ(compiled_outcome.retired, interp_outcome.retired);
  EXPECT_EQ(compiled.heap_used(), machine.heap_used());
  for (unsigned reg = 0; reg < isa::kNumIntRegs; ++reg) {
    EXPECT_EQ(compiled.cpu().regs[reg], machine.cpu().regs[reg]) << "r" << reg;
  }
  EXPECT_GT(compiled.lowered_routines(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Zoo, EngineBareZoo,
                         ::testing::ValuesIn(workloads::workload_names()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Edge contracts, pinned for both engines.

// run() is single-shot: a second call must die on the ran_ guard, not
// silently re-execute against mutated memory.
TEST(EngineEdgeDeathTest, InterpSecondRunDiesCleanly) {
  workloads::Instance guest = make_guest("stream");
  vm::Machine machine(guest.program, guest.host);
  machine.run();
  EXPECT_DEATH(machine.run(), "single-shot");
}

TEST(EngineEdgeDeathTest, CompiledSecondRunDiesCleanly) {
  workloads::Instance guest = make_guest("stream");
  vm::CompiledMachine machine(guest.program, guest.host);
  machine.run();
  EXPECT_DEATH(machine.run(), "single-shot");
}

// budget == total retired is a boundary, not a truncation: the run halts
// normally one check before the budget would fire. budget == total - 1
// truncates exactly there. Both engines must agree on both sides.
TEST(EngineEdge, BudgetEqualsRetiredBoundary) {
  workloads::Instance probe = make_guest("chase");
  vm::Machine probe_machine(probe.program, probe.host);
  const std::uint64_t total = probe_machine.run().retired;
  ASSERT_GT(total, 1u);

  for (const vm::EngineKind kind :
       {vm::EngineKind::kInterp, vm::EngineKind::kCompiled}) {
    SCOPED_TRACE(std::string("engine=") + vm::engine_kind_name(kind));
    {
      workloads::Instance guest = make_guest("chase");
      SessionConfig config = engine_config(kind);
      config.instruction_budget = total;
      ProfileSession session(guest.program, config);
      const vm::RunOutcome outcome = session.run_live(guest.host);
      EXPECT_EQ(outcome.status, vm::RunStatus::kHalted);
      EXPECT_EQ(outcome.retired, total);
    }
    {
      workloads::Instance guest = make_guest("chase");
      SessionConfig config = engine_config(kind);
      config.instruction_budget = total - 1;
      ProfileSession session(guest.program, config);
      const vm::RunOutcome outcome = session.run_live(guest.host);
      EXPECT_EQ(outcome.status, vm::RunStatus::kTruncated);
      EXPECT_EQ(outcome.retired, total - 1);
    }
  }
}

// A FaultPlan with every trigger disarmed is indistinguishable from no plan.
TEST(EngineEdge, DisarmedFaultPlanIsNoOp) {
  workloads::Instance probe = make_guest("histogram");
  vm::Machine probe_machine(probe.program, probe.host);
  const vm::RunOutcome clean = probe_machine.run();

  for (const vm::EngineKind kind :
       {vm::EngineKind::kInterp, vm::EngineKind::kCompiled}) {
    SCOPED_TRACE(std::string("engine=") + vm::engine_kind_name(kind));
    workloads::Instance guest = make_guest("histogram");
    SessionConfig config = engine_config(kind);
    config.fault_plan = vm::FaultPlan{};  // all triggers disarmed
    ProfileSession session(guest.program, config);
    const vm::RunOutcome outcome = session.run_live(guest.host);
    EXPECT_EQ(outcome.status, vm::RunStatus::kHalted);
    EXPECT_EQ(outcome.retired, clean.retired);
  }
}

}  // namespace
}  // namespace tq::session
