// Farm plumbing units: the TQFS sidecar codec, the checkpoint manifest
// journal, and the report-merge algebra the fleet aggregation relies on.
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "farm/manifest.hpp"
#include "farm/sidecar.hpp"
#include "support/check.hpp"
#include "tquad/bandwidth.hpp"

namespace tq::farm {
namespace {

tquad::SliceCounters counters(std::uint64_t ri, std::uint64_t re,
                              std::uint64_t wi, std::uint64_t we) {
  tquad::SliceCounters c;
  c.read_incl = ri;
  c.read_excl = re;
  c.write_incl = wi;
  c.write_excl = we;
  return c;
}

JobReport sample_report() {
  JobReport report;
  report.job_id = 7;
  report.trace_path = "state dir/run a.tqtr";  // spaces must survive
  report.whole = false;
  report.block_lo = 4;
  report.block_hi = 9;
  report.retired = 123'456;
  report.slice_interval = 5'000;
  report.kernel_names = {"main", "work_fft", "k2"};
  report.kernels.resize(3);
  report.kernels[0].totals = counters(100, 90, 50, 40);
  report.kernels[0].series = {{2, counters(60, 55, 30, 25)},
                              {5, counters(40, 35, 20, 15)}};
  report.kernels[2].totals = counters(8, 8, 0, 0);
  report.kernels[2].series = {{11, counters(8, 8, 0, 0)}};
  report.quad_excl.resize(3);
  report.quad_incl.resize(3);
  report.quad_excl[1] = {1000, 64, 2000, 32};
  report.quad_incl[1] = {1500, 96, 2500, 48};
  report.metrics = {{"worker.retired", 123'456}, {"worker.records", 42}};
  return report;
}

TEST(SidecarCodec, RoundTripsEveryField) {
  const JobReport original = sample_report();
  const JobReport decoded = decode_sidecar(encode_sidecar(original));

  EXPECT_EQ(decoded.job_id, original.job_id);
  EXPECT_EQ(decoded.trace_path, original.trace_path);
  EXPECT_FALSE(decoded.whole);
  EXPECT_EQ(decoded.block_lo, 4u);
  EXPECT_EQ(decoded.block_hi, 9u);
  EXPECT_EQ(decoded.retired, original.retired);
  EXPECT_EQ(decoded.slice_interval, original.slice_interval);
  ASSERT_EQ(decoded.kernels.size(), 3u);
  EXPECT_EQ(decoded.kernel_names, original.kernel_names);
  EXPECT_EQ(decoded.kernels[0].totals.read_incl, 100u);
  EXPECT_EQ(decoded.kernels[0].totals.write_excl, 40u);
  ASSERT_EQ(decoded.kernels[0].series.size(), 2u);
  EXPECT_EQ(decoded.kernels[0].series[1].slice, 5u);
  EXPECT_EQ(decoded.kernels[0].series[1].counters.read_incl, 40u);
  EXPECT_TRUE(decoded.kernels[1].totals.empty());
  EXPECT_TRUE(decoded.kernels[1].series.empty());
  ASSERT_TRUE(decoded.has_quad());
  EXPECT_EQ(decoded.quad_excl[1].in_bytes, 1000u);
  EXPECT_EQ(decoded.quad_incl[1].out_unma, 48u);
  EXPECT_TRUE(decoded.quad_excl[0].empty());
  ASSERT_EQ(decoded.metrics.size(), 2u);
  EXPECT_EQ(decoded.metrics[0].name, "worker.retired");
  EXPECT_EQ(decoded.metrics[1].value, 42u);
  // A second encode is byte-identical: the codec is canonical.
  EXPECT_EQ(encode_sidecar(decoded), encode_sidecar(original));
}

TEST(SidecarCodec, WholeTraceOmitsRange) {
  JobReport report;
  report.job_id = 1;
  report.trace_path = "run.tqtr";
  report.kernel_names = {"k0"};
  report.kernels.resize(1);
  const std::string text = encode_sidecar(report);
  EXPECT_EQ(text.find("range"), std::string::npos);
  EXPECT_TRUE(decode_sidecar(text).whole);
}

TEST(SidecarCodec, RejectsTruncation) {
  std::string text = encode_sidecar(sample_report());
  // Strip the `end` terminator — the torn-write shape a crashed worker
  // would leave if sidecars were not written atomically.
  text.resize(text.size() - 4);
  EXPECT_THROW(decode_sidecar(text), Error);
  EXPECT_THROW(decode_sidecar("garbage\n"), Error);
  EXPECT_THROW(decode_sidecar("TQFS 1\nbogus-tag 1\nend\n"), Error);
  // Missing required lines.
  EXPECT_THROW(decode_sidecar("TQFS 1\nend\n"), Error);
}

TEST(SidecarCodec, RejectsOutOfRangeKernelIds) {
  EXPECT_THROW(
      decode_sidecar("TQFS 1\ntrace t\nkernels 2\nk 5 1 1 1 1\nend\n"), Error);
  EXPECT_THROW(
      decode_sidecar("TQFS 1\ntrace t\nkernels 1\ns 0 3 1 1 1 1\ns 0 2 1 1 1 1\nend\n"),
      Error);  // series must ascend
}

TEST(QuadCountsMerge, Sums) {
  QuadCounts a{10, 2, 20, 3};
  const QuadCounts b{5, 1, 5, 1};
  a.merge(b);
  EXPECT_EQ(a.in_bytes, 15u);
  EXPECT_EQ(a.in_unma, 3u);
  EXPECT_EQ(a.out_bytes, 25u);
  EXPECT_EQ(a.out_unma, 4u);
}

// ---------------------------------------------------------------------------
// KernelBandwidth::merge — the algebra behind shard folding.

TEST(KernelBandwidthMerge, InterleavesAndFoldsSeamSlices) {
  tquad::KernelBandwidth a;
  a.series = {{1, counters(10, 10, 0, 0)}, {4, counters(5, 5, 1, 1)}};
  a.totals = counters(15, 15, 1, 1);
  tquad::KernelBandwidth b;
  b.series = {{2, counters(7, 6, 0, 0)}, {4, counters(3, 3, 1, 0)}};
  b.totals = counters(10, 9, 1, 0);

  a.merge(b);
  ASSERT_EQ(a.series.size(), 3u);
  EXPECT_EQ(a.series[0].slice, 1u);
  EXPECT_EQ(a.series[1].slice, 2u);
  EXPECT_EQ(a.series[2].slice, 4u);
  // Slice 4 straddled the shard seam: counters add.
  EXPECT_EQ(a.series[2].counters.read_incl, 8u);
  EXPECT_EQ(a.series[2].counters.write_incl, 2u);
  EXPECT_EQ(a.series[2].counters.write_excl, 1u);
  EXPECT_EQ(a.totals.read_incl, 25u);
  EXPECT_EQ(a.totals.read_excl, 24u);
}

TEST(KernelBandwidthMerge, EmptyIsIdentity) {
  tquad::KernelBandwidth a;
  a.series = {{3, counters(1, 1, 1, 1)}};
  a.totals = counters(1, 1, 1, 1);
  a.merge(tquad::KernelBandwidth{});
  ASSERT_EQ(a.series.size(), 1u);

  tquad::KernelBandwidth empty;
  empty.merge(a);
  ASSERT_EQ(empty.series.size(), 1u);
  EXPECT_EQ(empty.totals.read_incl, 1u);
}

TEST(KernelBandwidthMerge, OrderIndependent) {
  // Three shards merged in two different orders give identical results —
  // required for resume, where completion order differs across runs.
  auto shard = [](std::uint64_t slice, std::uint64_t bytes) {
    tquad::KernelBandwidth k;
    k.series = {{slice, counters(bytes, bytes, 0, 0)},
                {slice + 1, counters(1, 1, 1, 1)}};
    k.totals = counters(bytes + 1, bytes + 1, 1, 1);
    return k;
  };
  tquad::KernelBandwidth left = shard(0, 10);
  left.merge(shard(1, 20));
  left.merge(shard(5, 30));

  tquad::KernelBandwidth right = shard(5, 30);
  right.merge(shard(0, 10));
  right.merge(shard(1, 20));

  ASSERT_EQ(left.series.size(), right.series.size());
  for (std::size_t i = 0; i < left.series.size(); ++i) {
    EXPECT_EQ(left.series[i].slice, right.series[i].slice);
    EXPECT_EQ(left.series[i].counters.read_incl,
              right.series[i].counters.read_incl);
  }
  EXPECT_EQ(left.totals.read_incl, right.totals.read_incl);
}

// ---------------------------------------------------------------------------
// Manifest journal

TEST(Manifest, RoundTripsAndDropsTornTail) {
  const std::string path =
      testing::TempDir() + "tq_farm_manifest_test.jsonl";
  std::remove(path.c_str());
  {
    Manifest manifest;
    manifest.open(path);
    manifest.record_farm(3, 5'000);
    manifest.record_job(0, "a.tqtr", true, 0, 0);
    manifest.record_job(1, "dir with \"quotes\"/b.tqtr", false, 2, 6);
    manifest.record_job(2, "c.tqtr", true, 0, 0);
    manifest.record_done(0, 2, "state/job0.tqfs");
    manifest.record_quarantine(2, 3, "signal 9 (Killed)", "state/job2.attempt3.stderr");
  }
  // Simulate a supervisor killed mid-append: a torn, partial final line.
  {
    std::ofstream torn(path, std::ios::app);
    torn << "{\"event\":\"done\",\"id\":1,\"att";
  }
  const ManifestState state = Manifest::load(path);
  EXPECT_EQ(state.job_count, 3u);
  EXPECT_EQ(state.slice_interval, 5'000u);
  ASSERT_EQ(state.jobs.size(), 3u);
  EXPECT_EQ(state.jobs.at(1).trace_path, "dir with \"quotes\"/b.tqtr");
  EXPECT_FALSE(state.jobs.at(1).whole);
  EXPECT_EQ(state.jobs.at(1).block_lo, 2u);
  EXPECT_EQ(state.jobs.at(1).block_hi, 6u);
  ASSERT_EQ(state.done.size(), 1u);  // the torn `done` for job 1 is dropped
  EXPECT_EQ(state.done.at(0).attempts, 2u);
  EXPECT_EQ(state.done.at(0).sidecar_path, "state/job0.tqfs");
  ASSERT_EQ(state.quarantined.size(), 1u);
  EXPECT_EQ(state.quarantined.at(2).reason, "signal 9 (Killed)");
  std::remove(path.c_str());
}

TEST(Manifest, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape(std::string("x\ny")), "x\\u000ay");
}

}  // namespace
}  // namespace tq::farm
