// QUAD producer/consumer semantics on programs with exactly known dataflow.
#include <gtest/gtest.h>

#include "gasm/builder.hpp"
#include "minipin/minipin.hpp"
#include "quad/instrumented_profile.hpp"
#include "quad/quad_tool.hpp"

namespace tq::quad {
namespace {

using gasm::F;
using gasm::ProgramBuilder;
using gasm::R;
using gasm::SP;

struct QuadRun {
  vm::Program program;
  vm::HostEnv host;
  std::unique_ptr<pin::Engine> engine;
  std::unique_ptr<QuadTool> tool;

  explicit QuadRun(vm::Program prog, QuadOptions options = {})
      : program(std::move(prog)) {
    engine = std::make_unique<pin::Engine>(program, host);
    tool = std::make_unique<QuadTool>(*engine, options);
    engine->run();
  }
  std::uint32_t id(const std::string& name) const { return *program.find(name); }
};

/// Simpler, fully explicit program for exact assertions.
vm::Program make_simple_flow() {
  ProgramBuilder prog;
  const auto buf = prog.alloc_global("buf", 64);
  auto& producer = prog.begin_function("producer");
  producer.movi(R{1}, static_cast<std::int64_t>(buf));
  producer.movi(R{2}, 0x11);
  producer.store(R{1}, 0, R{2}, 8);   // 8 bytes at buf
  producer.store(R{1}, 8, R{2}, 4);   // 4 bytes at buf+8
  producer.ret();
  auto& consumer = prog.begin_function("consumer");
  consumer.movi(R{1}, static_cast<std::int64_t>(buf));
  consumer.load(R{3}, R{1}, 0, 8);    // reads 8 produced bytes
  consumer.load(R{4}, R{1}, 0, 8);    // again (re-read)
  consumer.load(R{5}, R{1}, 8, 8);    // 4 produced + 4 unwritten
  consumer.load(R{6}, R{1}, 32, 8);   // fully unwritten
  consumer.ret();
  auto& main_fn = prog.begin_function("main");
  main_fn.call("producer");
  main_fn.call("consumer");
  main_fn.halt();
  return prog.build("main");
}

TEST(QuadTool, InAndOutBytesExact) {
  QuadRun run(make_simple_flow());
  const auto producer = run.id("producer");
  const auto consumer = run.id("consumer");
  // consumer IN (stack excluded): 4 loads x 8B = 32.
  EXPECT_EQ(run.tool->excluding_stack(consumer).in_bytes, 32u);
  // consumer IN including stack adds its ret pop (8B).
  EXPECT_EQ(run.tool->including_stack(consumer).in_bytes, 40u);
  // producer OUT: bytes read by anyone from its writes = 8 + 8 + 4 = 20.
  EXPECT_EQ(run.tool->excluding_stack(producer).out_bytes, 20u);
  EXPECT_EQ(run.tool->including_stack(producer).out_bytes, 20u);
}

TEST(QuadTool, UnMACountsDistinctAddresses) {
  QuadRun run(make_simple_flow());
  const auto producer = run.id("producer");
  const auto consumer = run.id("consumer");
  // producer wrote bytes buf..buf+11 -> 12 distinct global addresses.
  EXPECT_EQ(run.tool->excluding_stack(producer).out_unma.count(), 12u);
  // consumer read buf..buf+15 and buf+32..39 -> 24 distinct (re-read not
  // double counted).
  EXPECT_EQ(run.tool->excluding_stack(consumer).in_unma.count(), 24u);
  // Stack-included adds the 8-byte return-address slot (shared by both).
  EXPECT_EQ(run.tool->including_stack(consumer).in_unma.count(), 32u);
}

TEST(QuadTool, BindingsRecordProducerToConsumerBytes) {
  QuadRun run(make_simple_flow());
  const auto producer = run.id("producer");
  const auto consumer = run.id("consumer");
  EXPECT_EQ(run.tool->binding_bytes(producer, consumer), 20u);
  EXPECT_EQ(run.tool->binding_bytes(consumer, producer), 0u);
  const auto edges = run.tool->bindings();
  ASSERT_FALSE(edges.empty());
  bool found = false;
  for (const auto& edge : edges) {
    if (edge.producer == producer && edge.consumer == consumer) {
      found = true;
      EXPECT_EQ(edge.bytes, 20u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(QuadTool, SelfBindingWhenKernelReadsOwnWrites) {
  ProgramBuilder prog;
  const auto buf = prog.alloc_global("buf", 64);
  auto& selfish = prog.begin_function("selfish");
  selfish.movi(R{1}, static_cast<std::int64_t>(buf));
  selfish.movi(R{2}, 5);
  selfish.store(R{1}, 0, R{2}, 8);
  selfish.load(R{3}, R{1}, 0, 8);
  selfish.ret();
  auto& main_fn = prog.begin_function("main");
  main_fn.call("selfish");
  main_fn.halt();
  QuadRun run(prog.build("main"));
  const auto selfish_id = run.id("selfish");
  EXPECT_EQ(run.tool->binding_bytes(selfish_id, selfish_id), 8u);
  EXPECT_EQ(run.tool->excluding_stack(selfish_id).out_bytes, 8u);
}

TEST(QuadTool, RetPopConsumesCallersPush) {
  // The return-address dataflow: main's call writes the slot, the callee's
  // ret reads it -> a main->callee stack binding of 8 bytes.
  ProgramBuilder prog;
  auto& callee = prog.begin_function("callee");
  callee.ret();
  auto& main_fn = prog.begin_function("main");
  main_fn.call("callee");
  main_fn.halt();
  QuadRun run(prog.build("main"));
  EXPECT_EQ(run.tool->binding_bytes(run.id("main"), run.id("callee")), 8u);
}

TEST(QuadTool, MovsTransfersProducership) {
  ProgramBuilder prog;
  const auto src = prog.alloc_global("src", 64);
  const auto dst = prog.alloc_global("dst", 64);
  auto& writer = prog.begin_function("writer");
  writer.movi(R{1}, static_cast<std::int64_t>(src));
  writer.movi(R{2}, 0xab);
  writer.count_loop_imm(R{3}, 0, 8, [&] {
    writer.shli(R{4}, R{3}, 3);
    writer.add(R{4}, R{4}, R{1});
    writer.store(R{4}, 0, R{2}, 8);
  });
  writer.ret();
  auto& copier = prog.begin_function("copier");
  copier.movi(R{1}, static_cast<std::int64_t>(dst));
  copier.movi(R{2}, static_cast<std::int64_t>(src));
  copier.movs(R{1}, R{2}, 64);
  copier.ret();
  auto& reader = prog.begin_function("reader");
  reader.movi(R{1}, static_cast<std::int64_t>(dst));
  reader.load(R{2}, R{1}, 0, 8);
  reader.ret();
  auto& main_fn = prog.begin_function("main");
  main_fn.call("writer");
  main_fn.call("copier");
  main_fn.call("reader");
  main_fn.halt();
  QuadRun run(prog.build("main"));
  // copier consumed 64 bytes produced by writer...
  EXPECT_EQ(run.tool->binding_bytes(run.id("writer"), run.id("copier")), 64u);
  // ...and produced the dst bytes the reader consumed.
  EXPECT_EQ(run.tool->binding_bytes(run.id("copier"), run.id("reader")), 8u);
  EXPECT_EQ(run.tool->excluding_stack(run.id("copier")).out_unma.count(), 64u);
}

TEST(QuadTool, StackTrafficOnlyInIncludedCounters) {
  ProgramBuilder prog;
  auto& stacky = prog.begin_function("stacky");
  stacky.enter(32);
  stacky.movi(R{2}, 3);
  stacky.store(SP, 0, R{2}, 8);
  stacky.load(R{3}, SP, 0, 8);
  stacky.leave(32);
  stacky.ret();
  auto& main_fn = prog.begin_function("main");
  main_fn.call("stacky");
  main_fn.halt();
  QuadRun run(prog.build("main"));
  const auto stacky_id = run.id("stacky");
  EXPECT_EQ(run.tool->excluding_stack(stacky_id).in_bytes, 0u);
  EXPECT_EQ(run.tool->excluding_stack(stacky_id).out_unma.count(), 0u);
  EXPECT_EQ(run.tool->including_stack(stacky_id).in_bytes, 16u);  // load + ret
  EXPECT_EQ(run.tool->including_stack(stacky_id).out_unma.count(), 8u);
  // The kernel read its own stack write.
  EXPECT_EQ(run.tool->binding_bytes(stacky_id, stacky_id), 8u);
}

TEST(QuadTool, QduGraphDotContainsNodesAndEdges) {
  QuadRun run(make_simple_flow());
  const std::string dot = run.tool->qdu_graph_dot();
  EXPECT_NE(dot.find("digraph QDU"), std::string::npos);
  EXPECT_NE(dot.find("producer"), std::string::npos);
  EXPECT_NE(dot.find("consumer"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(QuadTool, InstrumentedCostChargesGlobalTraffic) {
  QuadRun run(make_simple_flow());
  const CostModel model;
  const auto producer = run.id("producer");
  // Cost must exceed the plain instruction count (memory work is charged).
  EXPECT_GT(run.tool->instrumented_cost(producer, model),
            run.tool->instructions(producer));
  // A kernel with only stack traffic pays the stub but not the trace cost.
  CostModel no_base = model;
  no_base.per_instruction = 0;
  no_base.per_memory_stub = 0;
  EXPECT_EQ(run.tool->instrumented_cost(producer, no_base),
            run.tool->instrumented_cost(producer, no_base));
}

TEST(QuadTool, InstrumentedProfileRanksAndTrends) {
  QuadRun run(make_simple_flow());
  std::vector<BaseShare> base{
      {run.id("producer"), 0.5},
      {run.id("consumer"), 0.5},
  };
  const auto rows = instrumented_profile(*run.tool, base);
  ASSERT_EQ(rows.size(), 2u);
  // Ranks are 1 and 2 in some order.
  EXPECT_EQ(rows[0].rank + rows[1].rank, 3u);
  for (const auto& row : rows) {
    EXPECT_GE(row.instrumented_fraction, 0.0);
    EXPECT_LE(row.instrumented_fraction, 1.0);
  }
}

TEST(QuadTool, TrendArrowsClassifyRatios) {
  EXPECT_STREQ(trend_arrow(Trend::kStrongUp), "↑↑");
  EXPECT_STREQ(trend_arrow(Trend::kFlat), "↔");
  EXPECT_STREQ(trend_arrow(Trend::kStrongDown), "↓↓");
}

TEST(QuadTool, LibraryPolicyExcludesLibraryKernels) {
  ProgramBuilder prog;
  const auto buf = prog.alloc_global("buf", 64);
  auto& lib = prog.begin_function("libcopy", vm::ImageKind::kLibrary);
  lib.movi(R{1}, static_cast<std::int64_t>(buf));
  lib.movi(R{2}, 1);
  lib.store(R{1}, 0, R{2}, 8);
  lib.ret();
  auto& main_fn = prog.begin_function("main");
  main_fn.call("libcopy");
  main_fn.movi(R{1}, static_cast<std::int64_t>(buf));
  main_fn.load(R{3}, R{1}, 0, 8);
  main_fn.halt();
  QuadRun run(prog.build("main"));
  const auto lib_id = run.id("libcopy");
  const auto main_id = run.id("main");
  // The library write is invisible: no producer recorded.
  EXPECT_EQ(run.tool->excluding_stack(lib_id).out_unma.count(), 0u);
  EXPECT_EQ(run.tool->binding_bytes(lib_id, main_id), 0u);
  // main still counts its read.
  EXPECT_EQ(run.tool->excluding_stack(main_id).in_bytes, 8u);
}


TEST(QuadTool, BindingUnmaCountsDistinctTransferAddresses) {
  // The QDU-edge annotation the paper reads buffer sizes from: re-reads
  // raise bytes but not the edge's UnMA.
  ProgramBuilder prog;
  const auto buf = prog.alloc_global("buf", 64);
  auto& producer = prog.begin_function("producer");
  producer.movi(R{1}, static_cast<std::int64_t>(buf));
  producer.movi(R{2}, 1);
  producer.store(R{1}, 0, R{2}, 8);
  producer.ret();
  auto& consumer = prog.begin_function("consumer");
  consumer.movi(R{1}, static_cast<std::int64_t>(buf));
  consumer.count_loop_imm(R{2}, 0, 10, [&] {  // ten re-reads of one slot
    consumer.load(R{3}, R{1}, 0, 8);
  });
  consumer.ret();
  auto& main_fn = prog.begin_function("main");
  main_fn.call("producer");
  main_fn.call("consumer");
  main_fn.halt();
  QuadRun run(prog.build("main"));
  const auto edges = run.tool->bindings();
  const quad::Binding* edge = nullptr;
  for (const auto& e : edges) {
    if (e.producer == run.id("producer") && e.consumer == run.id("consumer")) {
      edge = &e;
    }
  }
  ASSERT_NE(edge, nullptr);
  EXPECT_EQ(edge->bytes, 80u);  // 10 x 8 re-read bytes
  EXPECT_EQ(edge->unma, 8u);    // ... through only 8 distinct addresses
}

TEST(QuadTool, QduDotCarriesEdgeAnnotations) {
  QuadRun run(make_simple_flow());
  const std::string dot = run.tool->qdu_graph_dot();
  EXPECT_NE(dot.find(" B / "), std::string::npos);
  EXPECT_NE(dot.find("addr"), std::string::npos);
}

}  // namespace
}  // namespace tq::quad
