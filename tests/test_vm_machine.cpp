// Interpreter semantics: every opcode family, syscalls, traps, and the
// instrumentation event stream.
#include <gtest/gtest.h>

#include <cmath>

#include "gasm/builder.hpp"
#include "vm/machine.hpp"

namespace tq::vm {
namespace {

using gasm::F;
using gasm::ProgramBuilder;
using gasm::R;
using gasm::SP;

/// Run a single-function program built by `body` and return the Machine for
/// post-mortem register/memory inspection.
template <typename Body>
std::pair<RunResult, std::unique_ptr<Machine>> run_program(HostEnv& host, Body&& body,
                                                           ExecListener* listener = nullptr) {
  ProgramBuilder prog;
  auto& f = prog.begin_function("main");
  body(prog, f);
  f.halt();
  auto program = std::make_unique<Program>(prog.build("main"));
  // Leak-free ownership dance: keep program alive alongside the machine.
  struct Bundle : Machine {
    Bundle(std::unique_ptr<Program> p, HostEnv& h) : Machine(*p, h), prog(std::move(p)) {}
    std::unique_ptr<Program> prog;
  };
  auto machine = std::make_unique<Bundle>(std::move(program), host);
  const RunResult result = machine->run(listener);
  return {result, std::unique_ptr<Machine>(machine.release())};
}

// ---- integer ALU (parameterized sweep) ---------------------------------------

struct AluCase {
  const char* name;
  void (gasm::FunctionBuilder::*emit)(R, R, R);
  std::int64_t a;
  std::int64_t b;
  std::int64_t want;
};

class AluSemantics : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluSemantics, ComputesExpectedValue) {
  const AluCase& c = GetParam();
  HostEnv host;
  auto [result, machine] = run_program(host, [&](ProgramBuilder&, auto& f) {
    f.movi(R{1}, c.a);
    f.movi(R{2}, c.b);
    (f.*c.emit)(R{3}, R{1}, R{2});
  });
  EXPECT_EQ(static_cast<std::int64_t>(machine->cpu().regs[3]), c.want) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, AluSemantics,
    ::testing::Values(
        AluCase{"add", &gasm::FunctionBuilder::add, 7, 5, 12},
        AluCase{"add_wrap", &gasm::FunctionBuilder::add, -1, 1, 0},
        AluCase{"sub", &gasm::FunctionBuilder::sub, 7, 5, 2},
        AluCase{"sub_neg", &gasm::FunctionBuilder::sub, 5, 7, -2},
        AluCase{"mul", &gasm::FunctionBuilder::mul, -3, 9, -27},
        AluCase{"divs", &gasm::FunctionBuilder::divs, -20, 6, -3},
        AluCase{"rems", &gasm::FunctionBuilder::rems, -20, 6, -2},
        AluCase{"and", &gasm::FunctionBuilder::and_, 0b1100, 0b1010, 0b1000},
        AluCase{"or", &gasm::FunctionBuilder::or_, 0b1100, 0b1010, 0b1110},
        AluCase{"xor", &gasm::FunctionBuilder::xor_, 0b1100, 0b1010, 0b0110},
        AluCase{"shl", &gasm::FunctionBuilder::shl, 1, 12, 4096},
        AluCase{"shrl", &gasm::FunctionBuilder::shrl, 4096, 3, 512},
        AluCase{"shra", &gasm::FunctionBuilder::shra, -16, 2, -4},
        AluCase{"slts_true", &gasm::FunctionBuilder::slts, -5, 3, 1},
        AluCase{"slts_false", &gasm::FunctionBuilder::slts, 3, -5, 0},
        AluCase{"sltu", &gasm::FunctionBuilder::sltu, 3, 5, 1},
        AluCase{"sltu_wrapped", &gasm::FunctionBuilder::sltu, -1, 5, 0},
        AluCase{"seq_true", &gasm::FunctionBuilder::seq, 9, 9, 1},
        AluCase{"seq_false", &gasm::FunctionBuilder::seq, 9, 8, 0}),
    [](const ::testing::TestParamInfo<AluCase>& info) { return info.param.name; });

TEST(MachineAlu, ImmediateForms) {
  HostEnv host;
  auto [result, machine] = run_program(host, [](ProgramBuilder&, auto& f) {
    f.movi(R{1}, 10);
    f.addi(R{2}, R{1}, -3);   // 7
    f.muli(R{3}, R{2}, 6);    // 42
    f.andi(R{4}, R{3}, 0xf);  // 10
    f.ori(R{5}, R{4}, 0x30);  // 0x3a
    f.xori(R{6}, R{5}, 0xff); // 0xc5
    f.shli(R{7}, R{1}, 4);    // 160
    f.shrli(R{8}, R{7}, 2);   // 40
    f.movi(R{9}, -64);
    f.shrai(R{9}, R{9}, 3);   // -8
    f.sltsi(R{10}, R{1}, 11); // 1
  });
  const auto& regs = machine->cpu().regs;
  EXPECT_EQ(regs[2], 7u);
  EXPECT_EQ(regs[3], 42u);
  EXPECT_EQ(regs[4], 10u);
  EXPECT_EQ(regs[5], 0x3au);
  EXPECT_EQ(regs[6], 0xc5u);
  EXPECT_EQ(regs[7], 160u);
  EXPECT_EQ(regs[8], 40u);
  EXPECT_EQ(static_cast<std::int64_t>(regs[9]), -8);
  EXPECT_EQ(regs[10], 1u);
}

// ---- floating point -----------------------------------------------------------

TEST(MachineFp, ArithmeticAndTranscendentals) {
  HostEnv host;
  auto [result, machine] = run_program(host, [](ProgramBuilder&, auto& f) {
    f.fmovi(F{1}, 2.0);
    f.fmovi(F{2}, 0.5);
    f.fadd(F{3}, F{1}, F{2});   // 2.5
    f.fsub(F{4}, F{1}, F{2});   // 1.5
    f.fmul(F{5}, F{1}, F{2});   // 1.0
    f.fdiv(F{6}, F{1}, F{2});   // 4.0
    f.fneg(F{7}, F{1});         // -2.0
    f.fabs_(F{8}, F{7});        // 2.0
    f.fsqrt(F{9}, F{6});        // 2.0
    f.fmovi(F{10}, 0.0);
    f.fsin(F{11}, F{10});       // 0.0
    f.fcos(F{12}, F{10});       // 1.0
    f.fmin(F{13}, F{1}, F{2});  // 0.5
    f.fmax(F{14}, F{1}, F{2});  // 2.0
    f.fcmplt(R{1}, F{2}, F{1});
    f.fcmple(R{2}, F{1}, F{1});
    f.fcmpeq(R{3}, F{1}, F{8});
    f.movi(R{4}, -7);
    f.i2f(F{15}, R{4});
    f.fmovi(F{16}, 3.9);
    f.f2i(R{5}, F{16});  // truncates to 3
    f.fmovi(F{17}, -3.9);
    f.f2i(R{6}, F{17});  // truncates to -3
  });
  const auto& f = machine->cpu().fregs;
  const auto& r = machine->cpu().regs;
  EXPECT_DOUBLE_EQ(f[3], 2.5);
  EXPECT_DOUBLE_EQ(f[4], 1.5);
  EXPECT_DOUBLE_EQ(f[5], 1.0);
  EXPECT_DOUBLE_EQ(f[6], 4.0);
  EXPECT_DOUBLE_EQ(f[7], -2.0);
  EXPECT_DOUBLE_EQ(f[8], 2.0);
  EXPECT_DOUBLE_EQ(f[9], 2.0);
  EXPECT_DOUBLE_EQ(f[11], 0.0);
  EXPECT_DOUBLE_EQ(f[12], 1.0);
  EXPECT_DOUBLE_EQ(f[13], 0.5);
  EXPECT_DOUBLE_EQ(f[14], 2.0);
  EXPECT_DOUBLE_EQ(f[15], -7.0);
  EXPECT_EQ(r[1], 1u);
  EXPECT_EQ(r[2], 1u);
  EXPECT_EQ(r[3], 1u);
  EXPECT_EQ(r[5], 3u);
  EXPECT_EQ(static_cast<std::int64_t>(r[6]), -3);
}

// ---- memory ---------------------------------------------------------------------

TEST(MachineMemory, LoadStoreSizesAndSignExtension) {
  HostEnv host;
  auto [result, machine] = run_program(host, [](ProgramBuilder& prog, auto& f) {
    const auto addr = prog.alloc_global("buf", 64);
    f.movi(R{1}, static_cast<std::int64_t>(addr));
    f.movi(R{2}, -2);  // 0xfffffffffffffffe
    f.store(R{1}, 0, R{2}, 2);
    f.load(R{3}, R{1}, 0, 2);   // zero-extended: 0xfffe
    f.loads(R{4}, R{1}, 0, 2);  // sign-extended: -2
    f.loads(R{5}, R{1}, 1, 1);  // sign-extended 0xff: -1
  });
  const auto& r = machine->cpu().regs;
  EXPECT_EQ(r[3], 0xfffeu);
  EXPECT_EQ(static_cast<std::int64_t>(r[4]), -2);
  EXPECT_EQ(static_cast<std::int64_t>(r[5]), -1);
}

TEST(MachineMemory, F32ConversionsRoundTripThroughMemory) {
  HostEnv host;
  auto [result, machine] = run_program(host, [](ProgramBuilder& prog, auto& f) {
    const auto addr = prog.alloc_global("buf", 16);
    f.movi(R{1}, static_cast<std::int64_t>(addr));
    f.fmovi(F{1}, 1.5);  // exactly representable in f32
    f.fstore4(R{1}, 0, F{1});
    f.fload4(F{2}, R{1}, 0);
    f.fmovi(F{3}, 0.1);  // not representable: rounds
    f.fstore4(R{1}, 4, F{3});
    f.fload4(F{4}, R{1}, 4);
  });
  const auto& f = machine->cpu().fregs;
  EXPECT_DOUBLE_EQ(f[2], 1.5);
  EXPECT_DOUBLE_EQ(f[4], static_cast<double>(0.1f));
  EXPECT_NE(f[4], 0.1);
}

TEST(MachineMemory, MovsCopiesAndAdvances) {
  HostEnv host;
  auto [result, machine] = run_program(host, [](ProgramBuilder& prog, auto& f) {
    const auto src = prog.alloc_global("src", 128);
    const auto dst = prog.alloc_global("dst", 128);
    std::vector<std::uint8_t> init(128);
    for (std::size_t i = 0; i < init.size(); ++i) init[i] = static_cast<std::uint8_t>(i);
    prog.init_data(src, init);
    f.movi(R{1}, static_cast<std::int64_t>(dst));
    f.movi(R{2}, static_cast<std::int64_t>(src));
    f.movs(R{1}, R{2}, 64);
    f.movs(R{1}, R{2}, 64);
  });
  // Both cursors advanced by 128; the copy is byte-exact.
  const std::uint64_t dst = machine->cpu().regs[1] - 128;
  const std::uint64_t src = machine->cpu().regs[2] - 128;
  EXPECT_EQ(dst - src, 128u);  // dst was allocated right after the 128-byte src
  for (std::uint64_t i = 0; i < 128; ++i) {
    EXPECT_EQ(machine->memory().load(dst + i, 1), i & 0xff);
  }
}

// ---- control flow, predication, calls ---------------------------------------------

TEST(MachineControl, LoopComputesSum) {
  HostEnv host;
  auto [result, machine] = run_program(host, [](ProgramBuilder&, auto& f) {
    f.movi(R{10}, 0);  // sum
    f.movi(R{11}, 100);
    f.count_loop(R{12}, 1, R{11}, [&] { f.add(R{10}, R{10}, R{12}); });
  });
  EXPECT_EQ(machine->cpu().regs[10], 4950u);  // sum 1..99
}

TEST(MachineControl, PredicatedInstructionSkipsWhenFalse) {
  HostEnv host;
  auto [result, machine] = run_program(host, [](ProgramBuilder&, auto& f) {
    f.movi(R{1}, 111);
    f.movi(R{2}, 0);  // predicate false
    f.movi(R{3}, 222);
    f.mov(R{1}, R{3});
    f.predicate_last(R{2});  // must not execute
    f.movi(R{4}, 1);  // predicate true
    f.mov(R{5}, R{3});
    f.predicate_last(R{4});
  });
  EXPECT_EQ(machine->cpu().regs[1], 111u);
  EXPECT_EQ(machine->cpu().regs[5], 222u);
}

TEST(MachineControl, CallPushesAndRetPops) {
  HostEnv host;
  ProgramBuilder prog;
  auto& callee = prog.begin_function("callee");
  callee.movi(R{9}, 77);
  callee.ret();
  auto& main_fn = prog.begin_function("main");
  main_fn.call("callee");
  main_fn.halt();
  Program program = prog.build("main");
  Machine machine(program, host);
  machine.run();
  EXPECT_EQ(machine.cpu().regs[9], 77u);
  EXPECT_EQ(machine.cpu().sp_value(), kStackBase);  // balanced
}

TEST(MachineControl, RecursionWorks) {
  HostEnv host;
  ProgramBuilder prog;
  // fact(n): r1 -> r2 (accumulating via stack discipline)
  auto& fact = prog.begin_function("fact");
  {
    auto base = fact.new_label();
    fact.sltsi(R{3}, R{1}, 2);
    fact.brnz(R{3}, base);
    fact.enter(16);
    fact.store(SP, 0, R{1}, 8);
    fact.addi(R{1}, R{1}, -1);
    fact.call("fact");  // r2 = fact(n-1)
    fact.load(R{1}, SP, 0, 8);
    fact.leave(16);
    fact.mul(R{2}, R{2}, R{1});
    fact.ret();
    fact.bind(base);
    fact.movi(R{2}, 1);
    fact.ret();
  }
  auto& main_fn = prog.begin_function("main");
  main_fn.movi(R{1}, 10);
  main_fn.call("fact");
  main_fn.halt();
  Program program = prog.build("main");
  Machine machine(program, host);
  machine.run();
  EXPECT_EQ(machine.cpu().regs[2], 3628800u);
}

// ---- syscalls ------------------------------------------------------------------------

TEST(MachineSys, ReadWriteSeekFileSize) {
  HostEnv host;
  const int in = host.attach_input({'h', 'e', 'l', 'l', 'o'});
  const int out = host.create_output();
  ASSERT_EQ(in, 0);
  ASSERT_EQ(out, 1);
  auto [result, machine] = run_program(host, [](ProgramBuilder& prog, auto& f) {
    const auto buf = prog.alloc_global("buf", 64);
    // size = filesize(0)
    f.movi(R{1}, 0);
    f.sys(isa::Sys::kFileSize);
    f.mov(R{10}, R{1});
    // read 3 bytes
    f.movi(R{1}, 0);
    f.movi(R{2}, static_cast<std::int64_t>(buf));
    f.movi(R{3}, 3);
    f.sys(isa::Sys::kRead);
    f.mov(R{11}, R{1});
    // seek back to 1 and read 4 more
    f.movi(R{1}, 0);
    f.movi(R{2}, 1);
    f.sys(isa::Sys::kSeek);
    f.movi(R{1}, 0);
    f.movi(R{2}, static_cast<std::int64_t>(buf) + 8);
    f.movi(R{3}, 10);  // asks for more than remains
    f.sys(isa::Sys::kRead);
    f.mov(R{12}, R{1});
    // write "hel" to the output
    f.movi(R{1}, 1);
    f.movi(R{2}, static_cast<std::int64_t>(buf));
    f.movi(R{3}, 3);
    f.sys(isa::Sys::kWrite);
  });
  EXPECT_EQ(machine->cpu().regs[10], 5u);
  EXPECT_EQ(machine->cpu().regs[11], 3u);
  EXPECT_EQ(machine->cpu().regs[12], 4u);  // "ello"
  const auto& bytes = host.output(1);
  ASSERT_EQ(bytes.size(), 3u);
  EXPECT_EQ(bytes[0], 'h');
  EXPECT_EQ(bytes[2], 'l');
}

TEST(MachineSys, AllocReturnsZeroedAlignedBlocks) {
  HostEnv host;
  auto [result, machine] = run_program(host, [](ProgramBuilder&, auto& f) {
    f.movi(R{1}, 100);
    f.sys(isa::Sys::kAlloc);
    f.mov(R{10}, R{1});
    f.movi(R{1}, 8);
    f.sys(isa::Sys::kAlloc);
    f.mov(R{11}, R{1});
    f.load(R{12}, R{10}, 0, 8);  // zeroed
  });
  const auto& r = machine->cpu().regs;
  EXPECT_EQ(r[10] % 16, 0u);
  EXPECT_EQ(r[11] % 16, 0u);
  EXPECT_GE(r[11], r[10] + 100);
  EXPECT_EQ(r[12], 0u);
  EXPECT_GE(machine->heap_used(), 108u);
}

// ---- traps ------------------------------------------------------------------------------

TEST(MachineTrap, DivisionByZero) {
  HostEnv host;
  auto [result, machine] = run_program(host, [](ProgramBuilder&, auto& f) {
    f.movi(R{1}, 1);
    f.movi(R{2}, 0);
    f.divs(R{3}, R{1}, R{2});
  });
  EXPECT_EQ(result.status, RunStatus::kTrapped);
  EXPECT_FALSE(result.complete());
  EXPECT_NE(result.trap_kind.find("division"), std::string::npos);
}

TEST(MachineTrap, InstructionBudgetExhausted) {
  HostEnv host;
  ProgramBuilder prog;
  auto& f = prog.begin_function("main");
  const auto loop = f.new_label();
  f.bind(loop);
  f.jmp(loop);  // infinite
  Program program = prog.build("main");
  Machine machine(program, host);
  machine.set_instruction_budget(10'000);
  // Running out of budget is a graceful cut, not a guest fault.
  const RunOutcome outcome = machine.run();
  EXPECT_EQ(outcome.status, RunStatus::kTruncated);
  EXPECT_EQ(outcome.retired, 10'000u);
  EXPECT_EQ(machine.retired(), 10'000u);
}

TEST(MachineTrap, ReturnWithEmptyStack) {
  HostEnv host;
  ProgramBuilder prog;
  auto& f = prog.begin_function("main");
  f.ret();  // nothing to return to
  Program program = prog.build("main");
  Machine machine(program, host);
  EXPECT_EQ(machine.run().status, RunStatus::kTrapped);
}

TEST(MachineTrap, BadFileDescriptor) {
  HostEnv host;  // no files attached
  auto [result, machine] = run_program(host, [](ProgramBuilder&, auto& f) {
    f.movi(R{1}, 3);
    f.sys(isa::Sys::kFileSize);
  });
  EXPECT_EQ(result.status, RunStatus::kTrapped);
}

TEST(MachineTrap, OutcomeNamesFunctionAndPc) {
  HostEnv host;
  auto [result, machine] = run_program(host, [](ProgramBuilder&, auto& f) {
    f.movi(R{1}, 1);
    f.movi(R{2}, 0);
    f.divs(R{3}, R{1}, R{2});
  });
  ASSERT_EQ(result.status, RunStatus::kTrapped);
  EXPECT_EQ(result.trap_function, "main");
  EXPECT_EQ(result.trap_pc, 2u);
  // movi, movi, plus the div: its tick was delivered before the fault, so
  // it counts toward the observed prefix.
  EXPECT_EQ(result.retired, 3u);
  EXPECT_NE(result.summary().find("main"), std::string::npos);
}

TEST(MachineTrap, RunIsSingleShot) {
  HostEnv host;
  ProgramBuilder prog;
  auto& f = prog.begin_function("main");
  f.halt();
  Program program = prog.build("main");
  Machine machine(program, host);
  machine.run();
  EXPECT_DEATH(machine.run(), "single-shot");
}

// ---- event stream --------------------------------------------------------------------------

/// Records every event for post-hoc assertions.
class RecordingListener : public ExecListener {
 public:
  struct Rec {
    std::uint32_t func;
    std::uint32_t pc;
    isa::Op op;
    bool executed;
    MemRef read;
    MemRef write;
    bool prefetch;
    std::uint64_t sp;
    std::uint64_t retired;
    std::uint32_t callee;
  };
  std::vector<Rec> events;
  std::vector<std::uint32_t> entries;
  std::uint64_t final_retired = 0;

  void on_rtn_enter(std::uint32_t func) override { entries.push_back(func); }
  void on_instr(const InstrEvent& ev) override {
    events.push_back(Rec{ev.func, ev.pc, ev.ins->op, ev.executed, ev.read, ev.write,
                         ev.prefetch, ev.sp, ev.retired, ev.callee});
  }
  void on_program_end(std::uint64_t retired) override { final_retired = retired; }
};

TEST(MachineEvents, StreamCoversEveryInstructionInOrder) {
  HostEnv host;
  RecordingListener listener;
  auto [result, machine] = run_program(host, [](ProgramBuilder& prog, auto& f) {
    const auto buf = prog.alloc_global("buf", 32);
    f.movi(R{1}, static_cast<std::int64_t>(buf));
    f.movi(R{2}, 42);
    f.store(R{1}, 8, R{2}, 4);
    f.load(R{3}, R{1}, 8, 4);
    f.prefetch(R{1}, 0, 8);
  }, &listener);
  ASSERT_EQ(listener.events.size(), result.retired);
  // retired counts are 0..n-1 in order.
  for (std::size_t i = 0; i < listener.events.size(); ++i) {
    EXPECT_EQ(listener.events[i].retired, i);
  }
  EXPECT_EQ(listener.final_retired, result.retired);
  // The store event carries a write ref, no read ref.
  const auto& st = listener.events[2];
  EXPECT_EQ(st.op, isa::Op::kStore);
  EXPECT_EQ(st.write.size, 4u);
  EXPECT_EQ(st.read.size, 0u);
  // The load carries a read ref at the same address.
  const auto& ld = listener.events[3];
  EXPECT_EQ(ld.read.size, 4u);
  EXPECT_EQ(ld.read.ea, st.write.ea);
  // The prefetch is flagged.
  const auto& pf = listener.events[4];
  EXPECT_TRUE(pf.prefetch);
  EXPECT_EQ(pf.read.size, 8u);
}

TEST(MachineEvents, CallAndRetCarryStackRefsAndEntryOrder) {
  HostEnv host;
  ProgramBuilder prog;
  auto& callee = prog.begin_function("callee");
  callee.ret();
  auto& main_fn = prog.begin_function("main");
  main_fn.call("callee");
  main_fn.halt();
  Program program = prog.build("main");
  RecordingListener listener;
  Machine machine(program, host);
  machine.run(&listener);
  // Entries: main (program start), then callee.
  const auto main_id = *program.find("main");
  const auto callee_id = *program.find("callee");
  ASSERT_EQ(listener.entries.size(), 2u);
  EXPECT_EQ(listener.entries[0], main_id);
  EXPECT_EQ(listener.entries[1], callee_id);
  // The call writes 8 bytes just below the pre-call SP; ret reads them back.
  const auto& call_ev = listener.events[0];
  EXPECT_EQ(call_ev.op, isa::Op::kCall);
  EXPECT_EQ(call_ev.write.size, 8u);
  EXPECT_EQ(call_ev.write.ea, call_ev.sp - 8);
  EXPECT_EQ(call_ev.callee, callee_id);
  const auto& ret_ev = listener.events[1];
  EXPECT_EQ(ret_ev.op, isa::Op::kRet);
  EXPECT_EQ(ret_ev.read.ea, call_ev.write.ea);
}

TEST(MachineEvents, PredicatedOffStillRetiresButMarkedNotExecuted) {
  HostEnv host;
  RecordingListener listener;
  auto [result, machine] = run_program(host, [](ProgramBuilder& prog, auto& f) {
    const auto buf = prog.alloc_global("buf", 16);
    f.movi(R{1}, static_cast<std::int64_t>(buf));
    f.movi(R{2}, 0);  // predicate: false
    f.movi(R{3}, 99);
    f.store(R{1}, 0, R{3}, 8);
    f.predicate_last(R{2});
  }, &listener);
  const auto& st = listener.events[3];
  EXPECT_EQ(st.op, isa::Op::kStore);
  EXPECT_FALSE(st.executed);
  // The store did not happen architecturally.
  EXPECT_EQ(machine->memory().load(machine->cpu().regs[1], 8), 0u);
}

TEST(MachineEvents, MovsCarriesBothRefs) {
  HostEnv host;
  RecordingListener listener;
  auto [result, machine] = run_program(host, [](ProgramBuilder& prog, auto& f) {
    const auto src = prog.alloc_global("src", 64);
    const auto dst = prog.alloc_global("dst", 64);
    f.movi(R{1}, static_cast<std::int64_t>(dst));
    f.movi(R{2}, static_cast<std::int64_t>(src));
    f.movs(R{1}, R{2}, 32);
  }, &listener);
  const auto& mv = listener.events[2];
  EXPECT_EQ(mv.op, isa::Op::kMovs);
  EXPECT_EQ(mv.read.size, 32u);
  EXPECT_EQ(mv.write.size, 32u);
  EXPECT_NE(mv.read.ea, mv.write.ea);
}

}  // namespace
}  // namespace tq::vm
