// HostEnv: descriptor semantics and error paths at the syscall boundary.
#include <gtest/gtest.h>

#include "support/check.hpp"
#include "vm/host_env.hpp"

namespace tq::vm {
namespace {

TEST(HostEnv, DescriptorsShareOneNumberSpace) {
  HostEnv host;
  EXPECT_EQ(host.attach_input({1, 2, 3}), 0);
  EXPECT_EQ(host.create_output(), 1);
  EXPECT_EQ(host.attach_input({4}), 2);
  EXPECT_TRUE(host.is_input(0));
  EXPECT_TRUE(host.is_output(1));
  EXPECT_TRUE(host.is_input(2));
  EXPECT_FALSE(host.is_input(1));
  EXPECT_FALSE(host.is_output(0));
  EXPECT_FALSE(host.is_input(3));
  EXPECT_FALSE(host.is_output(-1));
}

TEST(HostEnv, ReadAdvancesCursorAndClampsAtEof) {
  HostEnv host;
  const int fd = host.attach_input({'a', 'b', 'c', 'd', 'e'});
  std::uint8_t buf[3];
  EXPECT_EQ(host.read(fd, buf), 3u);
  EXPECT_EQ(buf[0], 'a');
  EXPECT_EQ(host.read(fd, buf), 2u);  // only "de" left
  EXPECT_EQ(buf[0], 'd');
  EXPECT_EQ(host.read(fd, buf), 0u);  // eof
}

TEST(HostEnv, SeekRepositionsAndClamps) {
  HostEnv host;
  const int fd = host.attach_input({'x', 'y', 'z'});
  std::uint8_t buf[1];
  host.seek(fd, 2);
  EXPECT_EQ(host.read(fd, buf), 1u);
  EXPECT_EQ(buf[0], 'z');
  host.seek(fd, 99);  // clamps to end
  EXPECT_EQ(host.read(fd, buf), 0u);
  host.seek(fd, 0);
  EXPECT_EQ(host.read(fd, buf), 1u);
  EXPECT_EQ(buf[0], 'x');
}

TEST(HostEnv, OutputAccumulatesWrites) {
  HostEnv host;
  const int fd = host.create_output();
  const std::uint8_t a[] = {1, 2};
  const std::uint8_t b[] = {3};
  host.write(fd, a);
  host.write(fd, b);
  EXPECT_EQ(host.output(fd), (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(HostEnv, WrongDirectionOperationsThrow) {
  HostEnv host;
  const int in = host.attach_input({1});
  const int out = host.create_output();
  std::uint8_t buf[1];
  EXPECT_THROW(host.read(out, buf), Error);
  EXPECT_THROW(host.write(in, buf), Error);
  EXPECT_THROW(host.seek(out, 0), Error);
  EXPECT_THROW((void)host.file_size(out), Error);
}

TEST(HostEnv, BadDescriptorThrows) {
  HostEnv host;
  std::uint8_t buf[1];
  EXPECT_THROW(host.read(0, buf), Error);
  EXPECT_THROW(host.read(-5, buf), Error);
  EXPECT_THROW((void)host.file_size(7), Error);
}

TEST(HostEnv, FileSizeIsStatic) {
  HostEnv host;
  const int fd = host.attach_input({1, 2, 3, 4});
  std::uint8_t buf[2];
  EXPECT_EQ(host.file_size(fd), 4u);
  host.read(fd, buf);
  EXPECT_EQ(host.file_size(fd), 4u) << "size is independent of the cursor";
}

TEST(HostEnv, LogAccumulates) {
  HostEnv host;
  host.append_log("one");
  host.append_log("two");
  ASSERT_EQ(host.log().size(), 2u);
  EXPECT_EQ(host.log()[1], "two");
}

}  // namespace
}  // namespace tq::vm
