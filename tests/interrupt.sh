# Graceful-interrupt contract: SIGINT/SIGTERM mid-run stop the engines at a
# retirement boundary, reports stamp INTERRUPTED, a -trace recording is
# finalized (verifies and replays), and the CLIs exit 4.
#
# Usage: interrupt.sh <tool-dir> <work-dir>
set -eu
TOOLS="$1"
WORK="$2"
rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

fail() {
  echo "interrupt: FAIL: $1" >&2
  exit 1
}

# A guest that stores in a tight loop: ~30000 x 30000 iterations of a
# four-instruction body, far more work than retires before the signal lands
# (the run would otherwise end TRUNCATED at the default budget).
cat > spin.s <<'EOF'
.entry main
.global buf 4096 64

.func main
    movi   r8, buf
    movi   r12, 0
outer:
    movi   r11, 0
inner:
    store8 [r8+0], r11
    addi   r11, r11, 1
    sltsi  r0, r11, 30000
    brnz   r0, inner
    addi   r12, r12, 1
    sltsi  r0, r12, 30000
    brnz   r0, outer
    halt
EOF

# Assemble to an image; -budget keeps the assembly-time run tiny (the image
# is written before execution, and a truncated run still exits 0).
"$TOOLS/asm_run" spin.s -image spin.tqim -budget 1000 > /dev/null 2>&1 || \
  fail "asm_run could not build spin.tqim"
[ -s spin.tqim ] || fail "spin.tqim missing"

# --- tquad_cli: SIGINT mid-run -> exit 4, INTERRUPTED stamp, usable trace.
"$TOOLS/tquad_cli" -image spin.tqim -report flat -slice 5000 \
    -trace spin.tqtr > tquad.out 2> tquad.err &
pid=$!
sleep 1
kill -INT "$pid" 2> /dev/null || fail "tquad_cli finished before the SIGINT"
status=0
wait "$pid" || status=$?
[ "$status" -eq 4 ] || fail "tquad_cli exit $status after SIGINT, want 4"
grep -q "INTERRUPTED" tquad.out || fail "no INTERRUPTED stamp in tquad report"

# The interrupted recording is finalized: it verifies and replays offline.
[ -s spin.tqtr ] || fail "interrupted run left no trace"
"$TOOLS/tqtr_doctor" verify spin.tqtr > /dev/null || \
  fail "interrupted trace fails verification"
"$TOOLS/tquad_cli" -replay spin.tqtr > replay.out || \
  fail "interrupted trace fails replay"
grep -q "k0" replay.out || fail "replay of interrupted trace is empty"

# --- quad_cli: SIGTERM -> the same contract.
"$TOOLS/quad_cli" -image spin.tqim > quad.out 2> quad.err &
pid=$!
sleep 1
kill -TERM "$pid" 2> /dev/null || fail "quad_cli finished before the SIGTERM"
status=0
wait "$pid" || status=$?
[ "$status" -eq 4 ] || fail "quad_cli exit $status after SIGTERM, want 4"
grep -q "INTERRUPTED" quad.out || fail "no INTERRUPTED stamp in quad report"

echo "interrupt: OK"
