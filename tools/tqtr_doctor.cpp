// tqtr_doctor: integrity checking and repair for TQTR v2 trace files.
//
//   tqtr_doctor verify run.tqtr                 # exit 0 clean, 1 corrupt
//   tqtr_doctor summarize run.tqtr [-blocks N]  # header + block table
//   tqtr_doctor repair run.tqtr -out fixed.tqtr # salvage + rewrite as v2.1
//
// `verify` walks the whole file — header, trailer index, every block's
// CRC-32C (v2.1) and payload decode — and, when something is wrong, runs the
// salvage scan to enumerate exactly which blocks are damaged and why.
// `repair` re-encodes whatever salvage recovered into a fresh, clean v2.1
// file (a truncated mid-write trace gains back its trailer index this way).
// The rewrite is crash-safe — staged to a temp file and renamed over -out —
// so an interrupted repair never leaves a half-written trace, and repairing
// a file onto itself is safe.
//
// Exit codes: 0 ok, 1 corrupt file or tool error, 2 usage error.
#include <cstdio>
#include <string>

#include "support/atomic_file.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "trace/trace_v2.hpp"

#include "cli_common.hpp"

namespace {

using namespace tq;

int verify(const std::vector<std::uint8_t>& bytes) {
  try {
    const trace::TraceV2View view = trace::TraceV2View::open(bytes);
    for (std::size_t b = 0; b < view.block_count(); ++b) {
      try {
        (void)view.decode_block(b);
      } catch (const Error& err) {
        std::printf("corrupt: block %zu at offset %llu: %s\n", b,
                    static_cast<unsigned long long>(view.block(b).file_offset),
                    err.what());
        return 1;
      }
    }
    std::printf("ok: v2.%u, %zu blocks, %llu records, %llu retired\n",
                view.minor_version(), view.block_count(),
                static_cast<unsigned long long>(view.record_count()),
                static_cast<unsigned long long>(view.total_retired()));
    return 0;
  } catch (const Error& err) {
    // Structural damage: fall back to the salvage scan so the report names
    // every unrecoverable block instead of just the first failure.
    std::printf("corrupt: %s\n", err.what());
    trace::SalvageReport report;
    try {
      (void)trace::TraceV2View::salvage(bytes, &report);
      cli::print_salvage_report(report);
    } catch (const Error& salvage_err) {
      std::printf("unrecoverable: %s\n", salvage_err.what());
    }
    return 1;
  }
}

int summarize(const std::vector<std::uint8_t>& bytes, std::int64_t max_blocks) {
  trace::SalvageReport report;
  const trace::TraceV2View view = trace::TraceV2View::salvage(bytes, &report);
  std::printf("TQTR v2.%u: kernels %u, block capacity %u, %llu records, "
              "%llu retired\n",
              view.minor_version(), view.kernel_count(), view.block_capacity(),
              static_cast<unsigned long long>(view.record_count()),
              static_cast<unsigned long long>(view.total_retired()));
  if (!report.clean()) cli::print_salvage_report(report);
  TextTable table({"block", "offset", "records", "first retired",
                   "last retired", "payload bytes", "crc32c"});
  char crc_hex[16];
  for (std::size_t b = 0; b < view.block_count(); ++b) {
    if (max_blocks >= 0 && b == static_cast<std::size_t>(max_blocks)) {
      std::printf("(showing %lld of %zu blocks; -blocks -1 for all)\n",
                  static_cast<long long>(max_blocks), view.block_count());
      break;
    }
    const trace::BlockInfo& info = view.block(b);
    std::snprintf(crc_hex, sizeof crc_hex, "%08x", info.crc);
    table.add_row({std::to_string(b), std::to_string(info.file_offset),
                   std::to_string(info.record_count),
                   std::to_string(info.first_retired),
                   std::to_string(info.last_retired),
                   std::to_string(info.payload_bytes), crc_hex});
  }
  std::printf("%s", table.to_ascii().c_str());
  return 0;
}

int repair(const std::vector<std::uint8_t>& bytes, const std::string& out_path) {
  trace::SalvageReport report;
  const trace::TraceV2View view = trace::TraceV2View::salvage(bytes, &report);
  cli::print_salvage_report(report);
  trace::TraceV2Writer writer(view.kernel_count(), view.block_capacity(),
                              trace::kV2MinorCrc);
  for (std::size_t b = 0; b < view.block_count(); ++b) {
    for (const trace::Record& record : view.decode_block(b)) writer.add(record);
  }
  // Crash-safe: repairing a trace in place (-out same as the input) must
  // never leave a half-written file — stage to a temp and rename over.
  write_file_atomic(out_path, writer.finish(view.total_retired()));
  std::printf("repaired trace written to %s (%llu records)\n", out_path.c_str(),
              static_cast<unsigned long long>(view.record_count()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("tqtr_doctor: verify, summarize, and repair TQTR v2 trace files");
  cli.add_string("out", "", "repair: write the salvaged trace to this path");
  cli.add_int("blocks", 32, "summarize: block rows to print (-1 for all)");
  try {
    cli.parse(argc, argv);
    if (cli.positional().size() != 2) {
      std::fprintf(stderr,
                   "usage: tqtr_doctor verify|summarize|repair <file.tqtr> "
                   "[options]\n%s",
                   cli.help().c_str());
      return 2;
    }
    const std::string& command = cli.positional()[0];
    if (command != "verify" && command != "summarize" && command != "repair") {
      std::fprintf(stderr, "tqtr_doctor: unknown command '%s' "
                   "(verify|summarize|repair)\n", command.c_str());
      return 2;
    }
    if (command == "repair" && cli.str("out").empty()) {
      std::fprintf(stderr, "tqtr_doctor: repair needs -out <path>\n");
      return 2;
    }
    const auto bytes = cli::read_file(cli.positional()[1]);
    if (!trace::is_v2_image(bytes)) {
      std::fprintf(stderr, "tqtr_doctor: '%s' is not a TQTR v2 file\n",
                   cli.positional()[1].c_str());
      return 1;
    }
    if (command == "verify") return verify(bytes);
    if (command == "summarize") return summarize(bytes, cli.integer("blocks"));
    return repair(bytes, cli.str("out"));
  } catch (const Error& err) {
    std::fprintf(stderr, "tqtr_doctor: %s\n", err.what());
    return 1;
  }
}
