// quad: the companion data-communication analyser as a command-line tool.
//
//   quad -image app.tqim [-in file] [-libs exclude|caller|track]
//        [-dot qdu.dot] [-csv table2.csv] [-clusters N]
//        [-trace out.tqtr -trace-format v1|v2]
//        [-engine interp|compiled] [-pipeline serial|parallel[:N]]
//        [-metrics text|json[:path]] [-heartbeat N]
//
// Prints the Table II columns for every reported kernel, optionally the QDU
// graph in Graphviz DOT and a communication-driven task clustering. -trace
// additionally records a TQTR event trace (replayable with tquad -replay) —
// the recorder rides the same single-pass ProfileSession as the analysis, so
// the guest executes once. SIGINT/SIGTERM stop the run gracefully: reports
// stamp INTERRUPTED, a -trace recording finalizes, and the tool exits 4.
// Exit codes: 0 ok/truncated, 1 tool error, 2 usage error, 3 guest trap,
// 4 interrupted.
#include <cstdio>
#include <optional>

#include "cluster/cluster.hpp"
#include "quad/buffer_report.hpp"
#include "quad/quad_tool.hpp"
#include "session/session.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "tquad/callstack.hpp"
#include "trace/trace.hpp"

#include "cli_common.hpp"

int main(int argc, char** argv) {
  using namespace tq;
  CliParser cli("quad: producer/consumer memory analysis for TQIM guest images");
  cli.add_string("image", "", "guest image (TQIM) to analyse [required]");
  cli.add_string("in", "", "input file to attach as a guest descriptor");
  cli.add_string("libs", "exclude", "library/OS policy: exclude | caller | track");
  cli.add_string("dot", "", "write the QDU graph (Graphviz) to this path");
  cli.add_string("csv", "", "write the kernel table as CSV to this path");
  cli.add_int("clusters", 0, "if > 0, also print a task clustering");
  cli.add_string("buffers", "", "print per-buffer data maps (kernel name or 'all')");
  cli.add_string("trace", "", "record the event trace (TQTR) to this path");
  cli.add_string("trace-format", "v2", "trace file format: v1 | v2 (blocked)");
  cli.add_int("budget", 2'000'000'000,
              "stop after this many instructions (reports stamp TRUNCATED)");
  cli.add_string("on-trap", "report",
                 "guest-fault handling: report (emit PARTIAL reports, exit 3) "
                 "| abort (print the trap and exit 3 with no reports)");
  cli.add_string("engine", "compiled",
                 "guest execution engine: compiled (fused-op threaded "
                 "dispatch, default) | interp (reference interpreter); "
                 "reports are byte-identical either way");
  cli.add_string("pipeline", "serial",
                 "analysis dispatch: serial (tools run on the VM thread) | "
                 "parallel[:N] (tools drain event rings on N worker threads) | "
                 "auto (parallel when the host has >= 4 hardware threads and "
                 "the attached tools can actually use the workers)");
  cli.add_string("metrics", "",
                 "emit profiler self-metrics after the reports: text | json, "
                 "optionally :path (e.g. json:metrics.json; default stdout)");
  cli.add_int("heartbeat", 0,
              "print a progress pulse to stderr every N million retired "
              "instructions (0 = off; the final pulse carries the outcome)");
  try {
    cli.parse(argc, argv);
    // Validate every flag before any file I/O or the (long) analysis run.
    cli::require_positive(cli, "budget");
    cli::require_non_negative(cli, "clusters");
    cli::require_non_negative(cli, "heartbeat");
    cli::validate_on_trap(cli.str("on-trap"));
    const vm::EngineKind engine = cli::parse_engine(cli.str("engine"));
    const cli::MetricsSpec metrics_spec = cli::parse_metrics(cli.str("metrics"));
    // QUAD itself shards its access stream, so auto only needs the host
    // check; -trace adds a second lane.
    const unsigned consumer_lanes = 1u + (cli.str("trace").empty() ? 0u : 1u);
    const session::PipelineOptions pipeline =
        cli::resolve_pipeline(cli.str("pipeline"), consumer_lanes,
                              /*has_sharded_consumer=*/true);
    cli::warn_parallel_on_small_host(pipeline);
    const trace::TraceFormat trace_format =
        cli::parse_trace_format(cli.str("trace-format"));
    const tquad::LibraryPolicy policy = cli::parse_policy(cli.str("libs"));
    if (cli.str("image").empty()) {
      std::fprintf(stderr, "%s", cli.help().c_str());
      return 2;
    }
    const vm::Program program =
        vm::Program::deserialize(cli::read_file(cli.str("image")));
    vm::HostEnv host;
    if (!cli.str("in").empty()) host.attach_input(cli::read_file(cli.str("in")));
    host.create_output();

    // One guest execution feeds both the analysis and the optional trace
    // recorder through the shared attribution pass.
    metrics::Registry registry;
    session::SessionConfig config;
    config.library_policy = policy;
    config.instruction_budget = static_cast<std::uint64_t>(cli.integer("budget"));
    config.engine = engine;
    config.pipeline = pipeline;
    if (metrics_spec.enabled) config.metrics = &registry;
    config.heartbeat_interval =
        static_cast<std::uint64_t>(cli.integer("heartbeat")) * 1'000'000;
    // Graceful ^C: the engine stops at the next retirement boundary, every
    // consumer flushes (the recorder finalizes its trace), and the reports
    // stamp INTERRUPTED.
    cli::install_interrupt_handler();
    config.interrupt = &cli::g_interrupt;
    session::ProfileSession profile(program, config);
    quad::QuadTool tool(program, quad::QuadOptions{policy});
    profile.add_consumer(tool);
    std::optional<trace::TraceRecorder> recorder;
    if (!cli.str("trace").empty()) {
      recorder.emplace(program, policy, trace_format);
      profile.add_consumer(*recorder);
    }
    const vm::RunOutcome outcome = profile.run_live(host);
    if (outcome.status == vm::RunStatus::kTrapped &&
        cli.str("on-trap") == "abort") {
      std::fprintf(stderr, "quad: %s\n", outcome.summary().c_str());
      return 3;
    }
    cli::print_outcome_status(outcome);

    const TextTable table = cli::quad_kernel_table(tool);
    std::fputs(table.to_ascii().c_str(), stdout);
    std::printf("\n%zu producer->consumer bindings\n", tool.bindings().size());

    if (!cli.str("buffers").empty()) {
      const std::string filter =
          cli.str("buffers") == "all" ? "" : cli.str("buffers");
      std::printf("\n== buffer data maps (stack excluded) ==\n%s",
                  quad::buffer_table(tool, program, filter).to_ascii().c_str());
    }
    if (cli.integer("clusters") > 0) {
      cluster::ClusterOptions cluster_options;
      cluster_options.target_clusters =
          static_cast<std::size_t>(cli.integer("clusters"));
      const auto clustering = cluster::cluster_kernels(tool, cluster_options);
      std::printf("\n== task clustering ==\n%s",
                  cluster::describe_clustering(tool, clustering).c_str());
    }
    if (!cli.str("dot").empty()) {
      cli::write_text(cli.str("dot"), tool.qdu_graph_dot());
      std::printf("QDU graph written to %s\n", cli.str("dot").c_str());
    }
    if (!cli.str("csv").empty()) {
      cli::write_text(cli.str("csv"), table.to_csv());
    }
    if (recorder.has_value()) {
      cli::write_file(cli.str("trace"), recorder->take_encoded());
      std::printf("trace written to %s (%s)\n", cli.str("trace").c_str(),
                  cli.str("trace-format").c_str());
    }
    // Metrics come last, never interleaved with the reports above.
    if (metrics_spec.enabled) {
      tool.publish_metrics(registry);
      if (recorder.has_value()) recorder->publish_metrics(registry);
      cli::emit_metrics(registry, metrics_spec);
    }
    return cli::outcome_exit_code(outcome);
  } catch (const UsageError& err) {
    std::fprintf(stderr, "quad: %s\n", err.what());
    return 2;
  } catch (const Error& err) {
    std::fprintf(stderr, "quad: %s\n", err.what());
    return 1;
  }
}
