// quad: the companion data-communication analyser as a command-line tool.
//
//   quad -image app.tqim [-in file] [-libs exclude|caller|track]
//        [-dot qdu.dot] [-csv table2.csv] [-clusters N]
//        [-trace out.tqtr -trace-format v1|v2]
//
// Prints the Table II columns for every reported kernel, optionally the QDU
// graph in Graphviz DOT and a communication-driven task clustering. -trace
// additionally records a TQTR event trace (replayable with tquad -replay).
#include <cstdio>
#include <fstream>
#include <iterator>

#include "cluster/cluster.hpp"
#include "minipin/minipin.hpp"
#include "quad/buffer_report.hpp"
#include "quad/quad_tool.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "tquad/callstack.hpp"
#include "trace/trace.hpp"

namespace {

using namespace tq;

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) TQUAD_THROW("cannot open '" + path + "'");
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) TQUAD_THROW("cannot write '" + path + "'");
  out << text;
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) TQUAD_THROW("cannot write '" + path + "'");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

trace::TraceFormat parse_trace_format(const std::string& name) {
  if (name == "v1") return trace::TraceFormat::kV1;
  if (name == "v2") return trace::TraceFormat::kV2;
  TQUAD_THROW("unknown -trace-format '" + name + "' (v1|v2)");
}

tquad::LibraryPolicy parse_policy(const std::string& name) {
  if (name == "exclude") return tquad::LibraryPolicy::kExclude;
  if (name == "caller") return tquad::LibraryPolicy::kAttributeToCaller;
  if (name == "track") return tquad::LibraryPolicy::kTrack;
  TQUAD_THROW("unknown -libs policy '" + name + "' (exclude|caller|track)");
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("quad: producer/consumer memory analysis for TQIM guest images");
  cli.add_string("image", "", "guest image (TQIM) to analyse [required]");
  cli.add_string("in", "", "input file to attach as a guest descriptor");
  cli.add_string("libs", "exclude", "library/OS policy: exclude | caller | track");
  cli.add_string("dot", "", "write the QDU graph (Graphviz) to this path");
  cli.add_string("csv", "", "write the kernel table as CSV to this path");
  cli.add_int("clusters", 0, "if > 0, also print a task clustering");
  cli.add_string("buffers", "", "print per-buffer data maps (kernel name or 'all')");
  cli.add_string("trace", "", "record the event trace (TQTR) to this path");
  cli.add_string("trace-format", "v2", "trace file format: v1 | v2 (blocked)");
  cli.add_int("budget", 2'000'000'000, "abort after this many instructions");
  try {
    cli.parse(argc, argv);
    if (cli.str("image").empty()) {
      std::fprintf(stderr, "%s", cli.help().c_str());
      return 2;
    }
    // Validate the format flag before the (long) analysis run, not after.
    const trace::TraceFormat trace_format = parse_trace_format(cli.str("trace-format"));
    const vm::Program program = vm::Program::deserialize(read_file(cli.str("image")));
    vm::HostEnv host;
    if (!cli.str("in").empty()) host.attach_input(read_file(cli.str("in")));
    host.create_output();

    pin::Engine engine(program, host);
    quad::QuadOptions options;
    options.library_policy = parse_policy(cli.str("libs"));
    quad::QuadTool tool(engine, options);
    engine.set_instruction_budget(static_cast<std::uint64_t>(cli.integer("budget")));
    engine.run();

    TextTable table({"kernel", "IN ex", "INunma ex", "OUT ex", "OUTunma ex",
                     "IN in", "INunma in", "OUT in", "OUTunma in"});
    for (std::uint32_t k = 0; k < tool.kernel_count(); ++k) {
      if (!tool.reported(k)) continue;
      const auto& ex = tool.excluding_stack(k);
      const auto& in = tool.including_stack(k);
      if (in.in_bytes == 0 && in.out_unma.count() == 0) continue;  // silent
      table.add_row({tool.kernel_name(k), format_count(ex.in_bytes),
                     format_count(ex.in_unma.count()), format_count(ex.out_bytes),
                     format_count(ex.out_unma.count()), format_count(in.in_bytes),
                     format_count(in.in_unma.count()), format_count(in.out_bytes),
                     format_count(in.out_unma.count())});
    }
    std::fputs(table.to_ascii().c_str(), stdout);
    std::printf("\n%zu producer->consumer bindings\n", tool.bindings().size());

    if (!cli.str("buffers").empty()) {
      const std::string filter =
          cli.str("buffers") == "all" ? "" : cli.str("buffers");
      std::printf("\n== buffer data maps (stack excluded) ==\n%s",
                  quad::buffer_table(tool, program, filter).to_ascii().c_str());
    }
    if (cli.integer("clusters") > 0) {
      cluster::ClusterOptions cluster_options;
      cluster_options.target_clusters =
          static_cast<std::size_t>(cli.integer("clusters"));
      const auto clustering = cluster::cluster_kernels(tool, cluster_options);
      std::printf("\n== task clustering ==\n%s",
                  cluster::describe_clustering(tool, clustering).c_str());
    }
    if (!cli.str("dot").empty()) {
      write_text(cli.str("dot"), tool.qdu_graph_dot());
      std::printf("QDU graph written to %s\n", cli.str("dot").c_str());
    }
    if (!cli.str("csv").empty()) {
      write_text(cli.str("csv"), table.to_csv());
    }
    if (!cli.str("trace").empty()) {
      // Re-run under the recorder for a portable trace file.
      vm::HostEnv trace_host;
      if (!cli.str("in").empty()) trace_host.attach_input(read_file(cli.str("in")));
      trace_host.create_output();
      trace::TraceRecorder recorder(program, options.library_policy, trace_format);
      vm::Machine machine(program, trace_host);
      machine.run(&recorder);
      write_file(cli.str("trace"), recorder.take_encoded());
      std::printf("trace written to %s (%s)\n", cli.str("trace").c_str(),
                  cli.str("trace-format").c_str());
    }
    return 0;
  } catch (const Error& err) {
    std::fprintf(stderr, "quad: %s\n", err.what());
    return 1;
  }
}
