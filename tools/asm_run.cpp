// asm_run: assemble a guest .s file and execute it, optionally under tQUAD —
// the complete edit/assemble/profile loop for hand-written guest programs.
//
//   asm_run program.s                       # just run it
//   asm_run program.s -profile -slice 1000  # run under tQUAD
//   asm_run program.s -in data.bin -image out.tqim
//
// Input files attach as guest descriptors in order; one output descriptor is
// appended; kPrintI64/kPrintF64 syscall output is echoed.
#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>

#include "gasm/asm_parser.hpp"
#include "minipin/minipin.hpp"
#include "support/cli.hpp"
#include "tquad/phase.hpp"
#include "tquad/report.hpp"
#include "tquad/tquad_tool.hpp"

namespace {

using namespace tq;

std::string read_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) TQUAD_THROW("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) TQUAD_THROW("cannot open '" + path + "'");
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) TQUAD_THROW("cannot write '" + path + "'");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("asm_run: assemble and execute a guest .s file");
  cli.add_string("in", "", "input file to attach as a guest descriptor");
  cli.add_string("image", "", "also write the assembled TQIM image here");
  cli.add_string("out", "", "write the guest output descriptor here");
  cli.add_flag("profile", false, "run under tQUAD and print the reports");
  cli.add_int("slice", 1000, "tQUAD slice interval");
  cli.add_int("budget", 1'000'000'000, "stop after this many instructions");
  try {
    cli.parse(argc, argv);
    if (cli.positional().size() != 1) {
      std::fprintf(stderr, "usage: asm_run <program.s> [options]\n%s",
                   cli.help().c_str());
      return 2;
    }
    const vm::Program program = gasm::assemble(read_text(cli.positional()[0]));
    if (!cli.str("image").empty()) {
      write_bytes(cli.str("image"), program.serialize());
    }
    vm::HostEnv host;
    if (!cli.str("in").empty()) host.attach_input(read_bytes(cli.str("in")));
    const int out_fd = host.create_output();

    // A guest trap is still a finished (partial) run: the reports, guest
    // log, and -out contents up to the fault are emitted, and the exit code
    // (3) tells scripts the run did not complete.
    vm::RunOutcome result;
    if (cli.flag("profile")) {
      pin::Engine engine(program, host);
      tquad::TQuadTool tool(
          engine, tquad::Options{.slice_interval =
                                     static_cast<std::uint64_t>(cli.integer("slice"))});
      engine.set_instruction_budget(static_cast<std::uint64_t>(cli.integer("budget")));
      result = engine.run();
      if (!result.complete()) {
        std::fprintf(stderr, "asm_run: %s\n", result.summary().c_str());
      }
      std::printf("retired %s instructions\n\n", format_count(result.retired).c_str());
      std::fputs(tquad::flat_profile_table(tool).to_ascii().c_str(), stdout);
      const auto phases = tquad::detect_phases(tool);
      if (!phases.empty()) {
        std::printf("\n%s", tquad::describe_phases(tool, phases).c_str());
      }
    } else {
      vm::Machine machine(program, host);
      machine.set_instruction_budget(static_cast<std::uint64_t>(cli.integer("budget")));
      result = machine.run();
      if (!result.complete()) {
        std::fprintf(stderr, "asm_run: %s\n", result.summary().c_str());
      }
      std::printf("retired %s instructions\n", format_count(result.retired).c_str());
    }
    for (const std::string& line : host.log()) {
      std::printf("guest: %s\n", line.c_str());
    }
    if (!cli.str("out").empty()) {
      write_bytes(cli.str("out"), host.output(out_fd));
    }
    return result.status == vm::RunStatus::kTrapped ? 3 : 0;
  } catch (const Error& err) {
    std::fprintf(stderr, "asm_run: %s\n", err.what());
    return 1;
  }
}
