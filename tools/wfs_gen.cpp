// wfs_gen: materialise the hArtes-wfs case study as files on disk, so the
// command-line profilers can run it the way the paper ran the real binary:
//
//   wfs_gen -image wfs.tqim -wav input.wav [-tiny] [-asm wfs.s]
//   tquad   -image wfs.tqim -in input.wav -report all
//   quad    -image wfs.tqim -in input.wav -clusters 5 -dot qdu.dot
//
// -asm also dumps the full guest disassembly for inspection.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "isa/isa.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "wfs/runner.hpp"

namespace {

using namespace tq;

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) TQUAD_THROW("cannot write '" + path + "'");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("wfs_gen: emit the wfs guest image and its input WAV");
  cli.add_string("image", "wfs.tqim", "output path for the guest image");
  cli.add_string("wav", "input.wav", "output path for the input WAV");
  cli.add_string("asm", "", "also dump the guest disassembly to this path");
  cli.add_flag("tiny", false, "use the tiny configuration");
  try {
    cli.parse(argc, argv);
    const wfs::WfsConfig cfg =
        cli.flag("tiny") ? wfs::WfsConfig::tiny() : wfs::WfsConfig::standard();
    const wfs::WfsArtifacts artifacts = wfs::build_wfs_program(cfg);
    write_file(cli.str("image"), artifacts.program.serialize());
    const wfs::WavData input = wfs::make_test_signal(
        cfg.input_samples(), static_cast<std::uint32_t>(cfg.sample_rate));
    write_file(cli.str("wav"), wfs::wav_encode(input));
    std::printf("wrote %s (%zu functions, %s static instructions) and %s "
                "(%u mono samples)\n",
                cli.str("image").c_str(), artifacts.program.functions().size(),
                format_count(artifacts.program.static_instructions()).c_str(),
                cli.str("wav").c_str(), cfg.input_samples());
    if (!cli.str("asm").empty()) {
      std::ostringstream listing;
      for (const auto& fn : artifacts.program.functions()) {
        listing << ".func " << fn.name;
        if (fn.image == vm::ImageKind::kLibrary) listing << " @library";
        if (fn.image == vm::ImageKind::kOs) listing << " @os";
        listing << '\n' << isa::disassemble(fn.code) << '\n';
      }
      std::ofstream out(cli.str("asm"));
      out << listing.str();
      std::printf("disassembly written to %s\n", cli.str("asm").c_str());
    }
    return 0;
  } catch (const Error& err) {
    std::fprintf(stderr, "wfs_gen: %s\n", err.what());
    return 1;
  }
}
