// tquad: the command-line profiler, the shape in which the paper's tool
// actually shipped (a pintool with knobs for the time-slice interval, the
// stack-area option, and library exclusion — Section IV-C).
//
//   tquad -image app.tqim [-in file]... [-slice N] [-libs track|exclude|caller]
//         [-tools tquad,quad,gprof] [-report flat|bandwidth|phases|series|all]
//         [-csv out.csv] [-trace out.tqtr -trace-format v1|v2]
//         [-sample N] [-cpu-ghz G -cpi C] [-budget N] [-on-trap report|abort]
//         [-engine interp|compiled] [-pipeline serial|parallel[:N]|auto]
//         [-metrics text|json[:path]] [-viz json[:path] [-viz-bucket B]]
//         [-heartbeat N]
//   tquad -replay run.tqtr [-image app.tqim] [-slice N] [-threads T] [-salvage]
//   tquad -replay run.tqtr -image app.tqim -tools tquad,quad,gprof [-salvage]
//
// The image is a TQIM file (produce one with wfs_gen or Program::serialize);
// -in attaches input files as guest descriptors in order; one output
// descriptor is always appended after the inputs.
//
// All profiling goes through one ProfileSession: the guest executes ONCE and
// every tool selected with -tools (plus the -trace recorder) consumes the
// same attributed event stream — the paper needed a separate execution per
// tool. -replay aggregates a recorded trace offline instead of running a
// guest: without -tools it prints the per-kernel bandwidth totals (the TQTR
// version is auto-detected, v2 traces aggregate block-parallel, and -image
// is only needed for kernel names); with -tools it replays the trace through
// the same session machinery and produces the full reports (requires -image).
//
// Fault tolerance: a guest trap does not discard the run. Under the default
// -on-trap report the tool emits every report stamped `status: PARTIAL`,
// still writes -trace/-csv/-out, and exits 3; -on-trap abort prints the trap
// and exits 3 with no reports. -budget exhaustion stamps `status: TRUNCATED`
// and exits 0. -salvage replays damaged v2 traces block-by-block, skipping
// blocks whose CRC or structure check fails. SIGINT/SIGTERM stop the run
// gracefully: reports stamp INTERRUPTED, a -trace recording finalizes (the
// pre-interrupt prefix replays, as pre-trap traces do), and the tool exits
// 4; a second signal kills immediately. Exit codes: 0 ok/truncated, 1 tool
// error, 2 usage error, 3 guest trap, 4 interrupted.
#include <cstdio>
#include <optional>

#include "gprofsim/gprof_tool.hpp"
#include "quad/quad_tool.hpp"
#include "session/session.hpp"
#include "support/ascii_chart.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "trace/trace.hpp"
#include "trace/trace_v2.hpp"
#include "tquad/address_map.hpp"
#include "tquad/phase.hpp"
#include "tquad/report.hpp"
#include "tquad/tquad_tool.hpp"

#include "cli_common.hpp"

namespace {

using namespace tq;
using cli::read_file;
using cli::write_file;
using cli::write_text;

/// Flag coherence checks, before any file I/O.
void validate_options(const CliParser& cli) {
  cli::require_positive(cli, "slice");
  cli::require_positive(cli, "sample");
  cli::require_positive(cli, "threads");
  cli::require_positive(cli, "budget");
  (void)cli::parse_trace_format(cli.str("trace-format"));
  (void)cli::parse_policy(cli.str("libs"));
  cli::validate_on_trap(cli.str("on-trap"));
  (void)cli::parse_engine(cli.str("engine"));
  (void)cli::parse_pipeline(cli.str("pipeline"));
  (void)cli::parse_metrics(cli.str("metrics"));
  (void)cli::parse_viz(cli.str("viz"));
  cli::require_positive(cli, "viz-bucket");
  cli::require_non_negative(cli, "heartbeat");
  if (cli.flag("salvage") && cli.str("replay").empty()) {
    TQUAD_THROW("-salvage only applies to -replay");
  }
  if (!cli.str("viz").empty() && !cli.str("replay").empty() &&
      cli.str("tools").empty()) {
    throw UsageError(
        "-viz needs a profiling session (a live run, or -replay with -tools)");
  }
  const std::string& report = cli.str("report");
  if (report != "flat" && report != "bandwidth" && report != "phases" &&
      report != "series" && report != "all") {
    TQUAD_THROW("unknown -report '" + report +
                "' (flat|bandwidth|phases|series|all)");
  }
  if (!cli.str("tools").empty()) (void)cli::parse_tools(cli.str("tools"));
  if (!cli.str("replay").empty() && !cli.str("trace").empty()) {
    TQUAD_THROW("-trace records a live run and cannot be combined with -replay");
  }
  if (!cli.str("replay").empty() && !cli.str("tools").empty() &&
      cli.str("image").empty()) {
    TQUAD_THROW("-replay with -tools needs -image for program context");
  }
}

/// Offline -replay mode: aggregate a recorded TQTR file (any version) and
/// print a per-kernel totals table. v2 traces aggregate block-parallel.
int replay_trace(const CliParser& cli) {
  const auto bytes = read_file(cli.str("replay"));
  const auto slice = static_cast<std::uint64_t>(cli.integer("slice"));
  const auto threads = static_cast<unsigned>(cli.integer("threads"));
  const cli::MetricsSpec metrics_spec = cli::parse_metrics(cli.str("metrics"));
  metrics::Registry registry;
  ThreadPool pool(threads);

  std::uint32_t kernel_count = 0;
  std::uint64_t record_count = 0;
  std::uint64_t total_retired = 0;
  const char* version = "v1";
  trace::OfflineBandwidth offline(1, slice);
  if (trace::is_v2_image(bytes)) {
    version = "v2";
    trace::SalvageReport salvage_report;
    const trace::TraceV2View view =
        cli.flag("salvage") ? trace::TraceV2View::salvage(bytes, &salvage_report)
                            : trace::TraceV2View::open(bytes);
    if (cli.flag("salvage")) {
      cli::print_salvage_report(salvage_report);
      cli::publish_salvage_metrics(registry, salvage_report);
    }
    kernel_count = view.kernel_count();
    record_count = view.record_count();
    total_retired = view.total_retired();
    offline = trace::OfflineBandwidth(kernel_count, slice);
    offline.aggregate_parallel(view, pool);
  } else {
    if (cli.flag("salvage")) {
      TQUAD_THROW("salvage replay supports TQTR v2 traces only");
    }
    const trace::Trace t = trace::Trace::deserialize(bytes);
    kernel_count = t.kernel_count;
    record_count = t.records.size();
    total_retired = t.total_retired;
    offline = trace::OfflineBandwidth(kernel_count, slice);
    offline.aggregate_parallel(t, pool);
  }

  // Kernel names come from the image when given; indices otherwise.
  std::vector<std::string> names(kernel_count);
  for (std::uint32_t k = 0; k < kernel_count; ++k) names[k] = "k" + std::to_string(k);
  if (!cli.str("image").empty()) {
    const vm::Program program = vm::Program::deserialize(read_file(cli.str("image")));
    for (std::uint32_t k = 0; k < kernel_count && k < program.functions().size(); ++k) {
      names[k] = program.functions()[k].name;
    }
  }

  std::printf("replayed %s trace: %llu events, %llu retired, %llu slices at interval %llu\n\n",
              version, static_cast<unsigned long long>(record_count),
              static_cast<unsigned long long>(total_retired),
              static_cast<unsigned long long>(offline.max_slice() + 1),
              static_cast<unsigned long long>(slice));
  TextTable table({"kernel", "read incl", "write incl", "read excl",
                   "write excl", "active slices"});
  for (std::uint32_t k = 0; k < kernel_count; ++k) {
    const auto& totals = offline.kernel(k).totals;
    if (totals.read_incl == 0 && totals.write_incl == 0) continue;
    table.add_row({names[k], format_bytes(totals.read_incl),
                   format_bytes(totals.write_incl), format_bytes(totals.read_excl),
                   format_bytes(totals.write_excl),
                   std::to_string(offline.kernel(k).active_slices())});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  if (metrics_spec.enabled) {
    registry.add("trace.read.bytes", bytes.size());
    registry.add("trace.read.records", record_count);
    registry.set_gauge("session.retired", total_retired);
    registry.set_gauge("tquad.slices", offline.max_slice() + 1);
    cli::emit_metrics(registry, metrics_spec);
  }
  return 0;
}

/// Single-pass profiling: one ProfileSession feeds every selected tool from
/// one guest execution (or one trace replay).
int run_profile(const CliParser& cli, const cli::ToolSet& tools) {
  const tquad::LibraryPolicy policy = cli::parse_policy(cli.str("libs"));
  const trace::TraceFormat trace_format =
      cli::parse_trace_format(cli.str("trace-format"));
  const vm::Program program = vm::Program::deserialize(read_file(cli.str("image")));
  const bool replaying = !cli.str("replay").empty();

  const cli::MetricsSpec metrics_spec = cli::parse_metrics(cli.str("metrics"));
  const cli::VizSpec viz_spec = cli::parse_viz(cli.str("viz"));
  metrics::Registry registry;
  session::SessionConfig config;
  config.library_policy = policy;
  config.instruction_budget = static_cast<std::uint64_t>(cli.integer("budget"));
  config.engine = cli::parse_engine(cli.str("engine"));
  // -pipeline auto is consumer-aware: count the lanes this invocation will
  // attach (tools, recorder, address map) and whether any of them shards
  // its access stream (QUAD does) before committing to parallel transport.
  const unsigned consumer_lanes =
      static_cast<unsigned>(tools.tquad) + static_cast<unsigned>(tools.quad) +
      static_cast<unsigned>(tools.gprof) +
      static_cast<unsigned>(!cli.str("trace").empty()) +
      static_cast<unsigned>(!cli.str("viz").empty());
  config.pipeline = cli::resolve_pipeline(cli.str("pipeline"), consumer_lanes,
                                          /*has_sharded_consumer=*/tools.quad);
  cli::warn_parallel_on_small_host(config.pipeline);
  if (metrics_spec.enabled) config.metrics = &registry;
  config.heartbeat_interval =
      static_cast<std::uint64_t>(cli.integer("heartbeat")) * 1'000'000;
  // Graceful ^C: the engines stop at the next retirement boundary, every
  // consumer flushes (the recorder finalizes its trace), reports stamp
  // INTERRUPTED, and the tool exits 4.
  cli::install_interrupt_handler();
  config.interrupt = &cli::g_interrupt;
  session::ProfileSession profile(program, config);

  std::optional<tquad::TQuadTool> tquad_tool;
  std::optional<quad::QuadTool> quad_tool;
  std::optional<gprof::GprofTool> gprof_tool;
  std::optional<trace::TraceRecorder> recorder;
  if (tools.tquad) {
    tquad::Options options;
    options.slice_interval = static_cast<std::uint64_t>(cli.integer("slice"));
    options.library_policy = policy;
    tquad_tool.emplace(program, options);
    profile.add_consumer(*tquad_tool);
  }
  if (tools.quad) {
    quad_tool.emplace(program, quad::QuadOptions{policy});
    profile.add_consumer(*quad_tool);
  }
  if (tools.gprof) {
    gprof::Options options;
    options.sample_period = static_cast<std::uint64_t>(cli.integer("sample"));
    options.clock_ghz = cli.real("cpu-ghz");
    options.ipc = 1.0 / cli.real("cpi");
    options.library_policy = policy;
    gprof_tool.emplace(program, options);
    profile.add_consumer(*gprof_tool);
  }
  if (!cli.str("trace").empty()) {
    recorder.emplace(program, policy, trace_format);
    profile.add_consumer(*recorder);
  }
  std::optional<tquad::AddressMapTool> address_map;
  if (viz_spec.enabled) {
    tquad::AddressMapOptions options;
    options.slice_interval = static_cast<std::uint64_t>(cli.integer("slice"));
    options.bucket_bytes = static_cast<std::uint64_t>(cli.integer("viz-bucket"));
    address_map.emplace(program, options);
    profile.add_consumer(*address_map);
  }

  vm::HostEnv host;
  int out_fd = -1;
  std::size_t replay_bytes = 0;
  vm::RunOutcome outcome;
  if (replaying) {
    const auto trace_bytes = read_file(cli.str("replay"));
    replay_bytes = trace_bytes.size();
    outcome = profile.replay(trace_bytes, cli.flag("salvage"));
  } else {
    if (!cli.str("in").empty()) host.attach_input(read_file(cli.str("in")));
    out_fd = host.create_output();
    outcome = profile.run_live(host);
  }
  if (outcome.status == vm::RunStatus::kTrapped &&
      cli.str("on-trap") == "abort") {
    std::fprintf(stderr, "tquad: %s\n", outcome.summary().c_str());
    return 3;
  }
  cli::print_outcome_status(outcome);
  if (replaying && cli.flag("salvage")) {
    cli::print_salvage_report(profile.salvage_report());
  }
  if (replaying) std::printf("replayed session: ");
  const std::uint64_t retired = outcome.retired;

  const std::string report = cli.str("report");
  if (tools.tquad) {
    std::printf("retired %s instructions; %llu time slices at interval %llu\n\n",
                format_count(retired).c_str(),
                static_cast<unsigned long long>(tquad_tool->bandwidth().max_slice() + 1),
                static_cast<unsigned long long>(
                    tquad_tool->options().slice_interval));
    if (report == "flat" || report == "all") {
      std::printf("== flat profile ==\n%s\n",
                  tquad::flat_profile_table(*tquad_tool).to_ascii().c_str());
    }
    if (report == "bandwidth" || report == "all") {
      tquad::CpuModel model;
      model.clock_ghz = cli.real("cpu-ghz");
      model.cpi = cli.real("cpi");
      std::printf("== bandwidth (at %.2f GHz, CPI %.2f) ==\n%s\n", model.clock_ghz,
                  model.cpi,
                  tquad::bandwidth_table(*tquad_tool, model).to_ascii().c_str());
    }
    if (report == "phases" || report == "all") {
      const auto phases = tquad::detect_phases(*tquad_tool);
      std::printf("== phases ==\n%s\n",
                  tquad::describe_phases(*tquad_tool, phases).c_str());
    }
    if (report == "series" || report == "all") {
      std::vector<ChartSeries> series;
      for (const auto& row : tquad::flat_profile(*tquad_tool)) {
        if (series.size() == 12) break;
        series.push_back(ChartSeries{
            row.name, tquad::dense_series(*tquad_tool, row.kernel,
                                          tquad::Metric::kReadWriteIncl)});
      }
      std::printf("== activity (read+write bytes per slice) ==\n%s\n",
                  render_heat_strips(series).c_str());
    }
  } else {
    std::printf("retired %s instructions\n\n", format_count(retired).c_str());
  }
  if (tools.quad) {
    std::printf("== quad kernel table (Table II) ==\n%s",
                cli::quad_kernel_table(*quad_tool).to_ascii().c_str());
    std::printf("\n%zu producer->consumer bindings\n\n",
                quad_tool->bindings().size());
  }
  if (tools.gprof) {
    std::printf("== gprof flat profile (sample period %llu) ==\n%s\n",
                static_cast<unsigned long long>(cli.integer("sample")),
                gprof_tool->flat_profile_table().to_ascii().c_str());
  }
  if (!cli.str("csv").empty()) {
    if (!tools.tquad) TQUAD_THROW("-csv writes the tquad flat profile; add tquad to -tools");
    write_text(cli.str("csv"), tquad::flat_profile_table(*tquad_tool).to_csv());
  }
  if (recorder.has_value()) {
    write_file(cli.str("trace"), recorder->take_encoded());
    std::printf("trace written to %s (%s)\n", cli.str("trace").c_str(),
                cli.str("trace-format").c_str());
  }
  if (out_fd >= 0 && !cli.str("out").empty()) {
    write_file(cli.str("out"), host.output(out_fd));
    std::printf("guest output written to %s\n", cli.str("out").c_str());
  }
  // The address map rides after every report (and before the metrics that
  // must stay the strictly-last output).
  if (address_map.has_value()) {
    cli::emit_viz(address_map->render_json(), viz_spec);
  }
  // Metrics are the very last output: the session published its event and
  // pipeline counters at the end of run(); the tool-side numbers join here,
  // and the rendering never interleaves with the reports above.
  if (metrics_spec.enabled) {
    if (quad_tool.has_value()) quad_tool->publish_metrics(registry);
    if (recorder.has_value()) recorder->publish_metrics(registry);
    if (replaying) {
      registry.add("trace.read.bytes", replay_bytes);
      if (cli.flag("salvage")) {
        cli::publish_salvage_metrics(registry, profile.salvage_report());
      }
    }
    cli::emit_metrics(registry, metrics_spec);
  }
  return cli::outcome_exit_code(outcome);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("tquad: temporal memory-bandwidth profiler for TQIM guest images");
  cli.add_string("image", "", "guest image (TQIM) to profile [required]");
  cli.add_string("in", "", "input file to attach as a guest descriptor");
  cli.add_int("slice", 5000, "time slice interval in instructions");
  cli.add_string("libs", "exclude",
                 "library/OS routine policy: exclude | caller | track");
  cli.add_string("tools", "",
                 "profilers sharing the single pass: comma-separated subset of "
                 "tquad,quad,gprof (default tquad; with -replay, enables "
                 "session replay of full profiles)");
  cli.add_string("report", "all", "flat | bandwidth | phases | series | all");
  cli.add_string("csv", "", "write the flat profile as CSV to this path");
  cli.add_string("trace", "", "record the event trace (TQTR) to this path");
  cli.add_string("trace-format", "v2", "trace file format: v1 | v2 (blocked)");
  cli.add_string("replay", "", "aggregate this TQTR file offline instead of running");
  cli.add_int("threads", 4, "worker threads for -replay block-parallel aggregation");
  cli.add_int("sample", 10'000, "gprof sample period in instructions");
  cli.add_string("out", "", "write guest output descriptor 's contents here");
  cli.add_double("cpu-ghz", 2.83, "target clock for unit conversion");
  cli.add_double("cpi", 1.0, "target cycles-per-instruction");
  cli.add_int("budget", 2'000'000'000,
              "stop after this many instructions (reports stamp TRUNCATED)");
  cli.add_string("on-trap", "report",
                 "guest-fault handling: report (emit PARTIAL reports, exit 3) "
                 "| abort (print the trap and exit 3 with no reports)");
  cli.add_flag("salvage", false,
               "with -replay: skip corrupt/truncated v2 blocks instead of "
               "failing, and report what was recovered");
  cli.add_string("engine", "compiled",
                 "guest execution engine: compiled (fused-op threaded "
                 "dispatch, default) | interp (reference interpreter); "
                 "reports are byte-identical either way");
  cli.add_string("pipeline", "serial",
                 "analysis dispatch: serial (tools run on the VM thread) | "
                 "parallel[:N] (tools drain event rings on N worker threads) | "
                 "auto (parallel when the host has >= 4 hardware threads and "
                 "the attached tools can actually use the workers)");
  cli.add_string("metrics", "",
                 "emit profiler self-metrics after the reports: text | json, "
                 "optionally :path (e.g. json:metrics.json; default stdout)");
  cli.add_string("viz", "",
                 "export the per-kernel address-map heatmap (address bucket x "
                 "time slice) after the reports: json, optionally :path "
                 "(e.g. json:map.json; default stdout)");
  cli.add_int("viz-bucket", 256, "address bucket granularity for -viz, in bytes");
  cli.add_int("heartbeat", 0,
              "print a progress pulse to stderr every N million retired "
              "instructions (0 = off; the final pulse carries the outcome)");
  try {
    cli.parse(argc, argv);
    validate_options(cli);
    // Plain -replay keeps the classic offline bandwidth aggregation;
    // -replay with -tools drives the full session machinery instead.
    if (!cli.str("replay").empty() && cli.str("tools").empty()) {
      return replay_trace(cli);
    }
    if (cli.str("image").empty()) {
      std::fprintf(stderr, "%s", cli.help().c_str());
      return 2;
    }
    const cli::ToolSet tools =
        cli::parse_tools(cli.str("tools").empty() ? "tquad" : cli.str("tools"));
    return run_profile(cli, tools);
  } catch (const UsageError& err) {
    std::fprintf(stderr, "tquad: %s\n", err.what());
    return 2;
  } catch (const Error& err) {
    std::fprintf(stderr, "tquad: %s\n", err.what());
    return 1;
  }
}
