// tquad: the command-line profiler, the shape in which the paper's tool
// actually shipped (a pintool with knobs for the time-slice interval, the
// stack-area option, and library exclusion — Section IV-C).
//
//   tquad -image app.tqim [-in file]... [-slice N] [-libs track|exclude|caller]
//         [-report flat|bandwidth|phases|series|all] [-csv out.csv]
//         [-trace out.tqtr -trace-format v1|v2] [-cpu-ghz G -cpi C]
//   tquad -replay run.tqtr [-image app.tqim] [-slice N] [-threads T]
//
// The image is a TQIM file (produce one with wfs_gen or Program::serialize);
// -in attaches input files as guest descriptors in order; one output
// descriptor is always appended after the inputs. -replay aggregates a
// recorded trace offline instead of running a guest — the TQTR version is
// auto-detected, v2 traces aggregate block-parallel, and -image is only
// needed for kernel names.
#include <cstdio>
#include <fstream>
#include <iterator>

#include "minipin/minipin.hpp"
#include "support/ascii_chart.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "trace/trace.hpp"
#include "trace/trace_v2.hpp"
#include "tquad/phase.hpp"
#include "tquad/report.hpp"
#include "tquad/tquad_tool.hpp"

namespace {

using namespace tq;

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) TQUAD_THROW("cannot open '" + path + "'");
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) TQUAD_THROW("cannot write '" + path + "'");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) TQUAD_THROW("cannot write '" + path + "'");
  out << text;
}

tquad::LibraryPolicy parse_policy(const std::string& name) {
  if (name == "exclude") return tquad::LibraryPolicy::kExclude;
  if (name == "caller") return tquad::LibraryPolicy::kAttributeToCaller;
  if (name == "track") return tquad::LibraryPolicy::kTrack;
  TQUAD_THROW("unknown -libs policy '" + name + "' (exclude|caller|track)");
}

trace::TraceFormat parse_trace_format(const std::string& name) {
  if (name == "v1") return trace::TraceFormat::kV1;
  if (name == "v2") return trace::TraceFormat::kV2;
  TQUAD_THROW("unknown -trace-format '" + name + "' (v1|v2)");
}

bool is_v2_image(const std::vector<std::uint8_t>& bytes) {
  return bytes.size() >= 8 && bytes[0] == 'T' && bytes[1] == 'Q' &&
         bytes[2] == 'T' && bytes[3] == 'R' && bytes[4] == 2 &&
         bytes[5] == 0 && bytes[6] == 0 && bytes[7] == 0;
}

/// Offline -replay mode: aggregate a recorded TQTR file (any version) and
/// print a per-kernel totals table. v2 traces aggregate block-parallel.
int replay_trace(const CliParser& cli) {
  const auto bytes = read_file(cli.str("replay"));
  const auto slice = static_cast<std::uint64_t>(cli.integer("slice"));
  const auto threads = static_cast<unsigned>(cli.integer("threads"));
  ThreadPool pool(threads);

  std::uint32_t kernel_count = 0;
  std::uint64_t record_count = 0;
  std::uint64_t total_retired = 0;
  const char* version = "v1";
  trace::OfflineBandwidth offline(1, slice);
  if (is_v2_image(bytes)) {
    version = "v2";
    const trace::TraceV2View view = trace::TraceV2View::open(bytes);
    kernel_count = view.kernel_count();
    record_count = view.record_count();
    total_retired = view.total_retired();
    offline = trace::OfflineBandwidth(kernel_count, slice);
    offline.aggregate_parallel(view, pool);
  } else {
    const trace::Trace t = trace::Trace::deserialize(bytes);
    kernel_count = t.kernel_count;
    record_count = t.records.size();
    total_retired = t.total_retired;
    offline = trace::OfflineBandwidth(kernel_count, slice);
    offline.aggregate_parallel(t, pool);
  }

  // Kernel names come from the image when given; indices otherwise.
  std::vector<std::string> names(kernel_count);
  for (std::uint32_t k = 0; k < kernel_count; ++k) names[k] = "k" + std::to_string(k);
  if (!cli.str("image").empty()) {
    const vm::Program program = vm::Program::deserialize(read_file(cli.str("image")));
    for (std::uint32_t k = 0; k < kernel_count && k < program.functions().size(); ++k) {
      names[k] = program.functions()[k].name;
    }
  }

  std::printf("replayed %s trace: %llu events, %llu retired, %llu slices at interval %llu\n\n",
              version, static_cast<unsigned long long>(record_count),
              static_cast<unsigned long long>(total_retired),
              static_cast<unsigned long long>(offline.max_slice() + 1),
              static_cast<unsigned long long>(slice));
  TextTable table({"kernel", "read incl", "write incl", "read excl",
                   "write excl", "active slices"});
  for (std::uint32_t k = 0; k < kernel_count; ++k) {
    const auto& totals = offline.kernel(k).totals;
    if (totals.read_incl == 0 && totals.write_incl == 0) continue;
    table.add_row({names[k], format_bytes(totals.read_incl),
                   format_bytes(totals.write_incl), format_bytes(totals.read_excl),
                   format_bytes(totals.write_excl),
                   std::to_string(offline.kernel(k).active_slices())});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("tquad: temporal memory-bandwidth profiler for TQIM guest images");
  cli.add_string("image", "", "guest image (TQIM) to profile [required]");
  cli.add_string("in", "", "input file to attach as a guest descriptor");
  cli.add_int("slice", 5000, "time slice interval in instructions");
  cli.add_string("libs", "exclude",
                 "library/OS routine policy: exclude | caller | track");
  cli.add_string("report", "all", "flat | bandwidth | phases | series | all");
  cli.add_string("csv", "", "write the flat profile as CSV to this path");
  cli.add_string("trace", "", "record the event trace (TQTR) to this path");
  cli.add_string("trace-format", "v2", "trace file format: v1 | v2 (blocked)");
  cli.add_string("replay", "", "aggregate this TQTR file offline instead of running");
  cli.add_int("threads", 4, "worker threads for -replay block-parallel aggregation");
  cli.add_string("out", "", "write guest output descriptor 's contents here");
  cli.add_double("cpu-ghz", 2.83, "target clock for unit conversion");
  cli.add_double("cpi", 1.0, "target cycles-per-instruction");
  cli.add_int("budget", 2'000'000'000, "abort after this many instructions");
  try {
    cli.parse(argc, argv);
    if (!cli.str("replay").empty()) return replay_trace(cli);
    if (cli.str("image").empty()) {
      std::fprintf(stderr, "%s", cli.help().c_str());
      return 2;
    }
    // Validate the format flag before the (long) profiling run, not after.
    const trace::TraceFormat trace_format = parse_trace_format(cli.str("trace-format"));
    const vm::Program program = vm::Program::deserialize(read_file(cli.str("image")));
    vm::HostEnv host;
    if (!cli.str("in").empty()) host.attach_input(read_file(cli.str("in")));
    const int out_fd = host.create_output();

    pin::Engine engine(program, host);
    tquad::Options options;
    options.slice_interval = static_cast<std::uint64_t>(cli.integer("slice"));
    options.library_policy = parse_policy(cli.str("libs"));
    tquad::TQuadTool tool(engine, options);

    // Optional simultaneous trace recording (listener chaining would need a
    // second run; the recorder is cheap enough to justify one).
    engine.set_instruction_budget(static_cast<std::uint64_t>(cli.integer("budget")));
    const vm::RunResult result = engine.run();

    const std::string report = cli.str("report");
    std::printf("retired %s instructions; %llu time slices at interval %llu\n\n",
                format_count(result.retired).c_str(),
                static_cast<unsigned long long>(tool.bandwidth().max_slice() + 1),
                static_cast<unsigned long long>(options.slice_interval));
    if (report == "flat" || report == "all") {
      std::printf("== flat profile ==\n%s\n",
                  tquad::flat_profile_table(tool).to_ascii().c_str());
    }
    if (report == "bandwidth" || report == "all") {
      tquad::CpuModel model;
      model.clock_ghz = cli.real("cpu-ghz");
      model.cpi = cli.real("cpi");
      std::printf("== bandwidth (at %.2f GHz, CPI %.2f) ==\n%s\n", model.clock_ghz,
                  model.cpi, tquad::bandwidth_table(tool, model).to_ascii().c_str());
    }
    if (report == "phases" || report == "all") {
      const auto phases = tquad::detect_phases(tool);
      std::printf("== phases ==\n%s\n",
                  tquad::describe_phases(tool, phases).c_str());
    }
    if (report == "series" || report == "all") {
      std::vector<ChartSeries> series;
      for (const auto& row : tquad::flat_profile(tool)) {
        if (series.size() == 12) break;
        series.push_back(ChartSeries{
            row.name, tquad::dense_series(tool, row.kernel,
                                          tquad::Metric::kReadWriteIncl)});
      }
      std::printf("== activity (read+write bytes per slice) ==\n%s\n",
                  render_heat_strips(series).c_str());
    }
    if (!cli.str("csv").empty()) {
      write_text(cli.str("csv"), tquad::flat_profile_table(tool).to_csv());
    }
    if (!cli.str("trace").empty()) {
      // Re-run under the recorder for a portable trace file.
      vm::HostEnv trace_host;
      if (!cli.str("in").empty()) trace_host.attach_input(read_file(cli.str("in")));
      trace_host.create_output();
      trace::TraceRecorder recorder(program, options.library_policy, trace_format);
      vm::Machine machine(program, trace_host);
      machine.run(&recorder);
      write_file(cli.str("trace"), recorder.take_encoded());
      std::printf("trace written to %s (%s)\n", cli.str("trace").c_str(),
                  cli.str("trace-format").c_str());
    }
    if (!cli.str("out").empty()) {
      write_file(cli.str("out"), host.output(out_fd));
      std::printf("guest output written to %s\n", cli.str("out").c_str());
    }
    return 0;
  } catch (const Error& err) {
    std::fprintf(stderr, "tquad: %s\n", err.what());
    return 1;
  }
}
