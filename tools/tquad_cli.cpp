// tquad: the command-line profiler, the shape in which the paper's tool
// actually shipped (a pintool with knobs for the time-slice interval, the
// stack-area option, and library exclusion — Section IV-C).
//
//   tquad -image app.tqim [-in file]... [-slice N] [-libs track|exclude|caller]
//         [-report flat|bandwidth|phases|series|all] [-csv out.csv]
//         [-trace out.tqtr] [-cpu-ghz G -cpi C]
//
// The image is a TQIM file (produce one with wfs_gen or Program::serialize);
// -in attaches input files as guest descriptors in order; one output
// descriptor is always appended after the inputs.
#include <cstdio>
#include <fstream>
#include <iterator>

#include "minipin/minipin.hpp"
#include "support/ascii_chart.hpp"
#include "support/cli.hpp"
#include "trace/trace.hpp"
#include "tquad/phase.hpp"
#include "tquad/report.hpp"
#include "tquad/tquad_tool.hpp"

namespace {

using namespace tq;

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) TQUAD_THROW("cannot open '" + path + "'");
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) TQUAD_THROW("cannot write '" + path + "'");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) TQUAD_THROW("cannot write '" + path + "'");
  out << text;
}

tquad::LibraryPolicy parse_policy(const std::string& name) {
  if (name == "exclude") return tquad::LibraryPolicy::kExclude;
  if (name == "caller") return tquad::LibraryPolicy::kAttributeToCaller;
  if (name == "track") return tquad::LibraryPolicy::kTrack;
  TQUAD_THROW("unknown -libs policy '" + name + "' (exclude|caller|track)");
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("tquad: temporal memory-bandwidth profiler for TQIM guest images");
  cli.add_string("image", "", "guest image (TQIM) to profile [required]");
  cli.add_string("in", "", "input file to attach as a guest descriptor");
  cli.add_int("slice", 5000, "time slice interval in instructions");
  cli.add_string("libs", "exclude",
                 "library/OS routine policy: exclude | caller | track");
  cli.add_string("report", "all", "flat | bandwidth | phases | series | all");
  cli.add_string("csv", "", "write the flat profile as CSV to this path");
  cli.add_string("trace", "", "record the event trace (TQTR) to this path");
  cli.add_string("out", "", "write guest output descriptor 's contents here");
  cli.add_double("cpu-ghz", 2.83, "target clock for unit conversion");
  cli.add_double("cpi", 1.0, "target cycles-per-instruction");
  cli.add_int("budget", 2'000'000'000, "abort after this many instructions");
  try {
    cli.parse(argc, argv);
    if (cli.str("image").empty()) {
      std::fprintf(stderr, "%s", cli.help().c_str());
      return 2;
    }
    const vm::Program program = vm::Program::deserialize(read_file(cli.str("image")));
    vm::HostEnv host;
    if (!cli.str("in").empty()) host.attach_input(read_file(cli.str("in")));
    const int out_fd = host.create_output();

    pin::Engine engine(program, host);
    tquad::Options options;
    options.slice_interval = static_cast<std::uint64_t>(cli.integer("slice"));
    options.library_policy = parse_policy(cli.str("libs"));
    tquad::TQuadTool tool(engine, options);

    // Optional simultaneous trace recording (listener chaining would need a
    // second run; the recorder is cheap enough to justify one).
    engine.set_instruction_budget(static_cast<std::uint64_t>(cli.integer("budget")));
    const vm::RunResult result = engine.run();

    const std::string report = cli.str("report");
    std::printf("retired %s instructions; %llu time slices at interval %llu\n\n",
                format_count(result.retired).c_str(),
                static_cast<unsigned long long>(tool.bandwidth().max_slice() + 1),
                static_cast<unsigned long long>(options.slice_interval));
    if (report == "flat" || report == "all") {
      std::printf("== flat profile ==\n%s\n",
                  tquad::flat_profile_table(tool).to_ascii().c_str());
    }
    if (report == "bandwidth" || report == "all") {
      tquad::CpuModel model;
      model.clock_ghz = cli.real("cpu-ghz");
      model.cpi = cli.real("cpi");
      std::printf("== bandwidth (at %.2f GHz, CPI %.2f) ==\n%s\n", model.clock_ghz,
                  model.cpi, tquad::bandwidth_table(tool, model).to_ascii().c_str());
    }
    if (report == "phases" || report == "all") {
      const auto phases = tquad::detect_phases(tool);
      std::printf("== phases ==\n%s\n",
                  tquad::describe_phases(tool, phases).c_str());
    }
    if (report == "series" || report == "all") {
      std::vector<ChartSeries> series;
      for (const auto& row : tquad::flat_profile(tool)) {
        if (series.size() == 12) break;
        series.push_back(ChartSeries{
            row.name, tquad::dense_series(tool, row.kernel,
                                          tquad::Metric::kReadWriteIncl)});
      }
      std::printf("== activity (read+write bytes per slice) ==\n%s\n",
                  render_heat_strips(series).c_str());
    }
    if (!cli.str("csv").empty()) {
      write_text(cli.str("csv"), tquad::flat_profile_table(tool).to_csv());
    }
    if (!cli.str("trace").empty()) {
      // Re-run under the recorder for a portable trace file.
      vm::HostEnv trace_host;
      if (!cli.str("in").empty()) trace_host.attach_input(read_file(cli.str("in")));
      trace_host.create_output();
      trace::TraceRecorder recorder(program, options.library_policy);
      vm::Machine machine(program, trace_host);
      machine.run(&recorder);
      write_file(cli.str("trace"), recorder.take().serialize());
      std::printf("trace written to %s\n", cli.str("trace").c_str());
    }
    if (!cli.str("out").empty()) {
      write_file(cli.str("out"), host.output(out_fd));
      std::printf("guest output written to %s\n", cli.str("out").c_str());
    }
    return 0;
  } catch (const Error& err) {
    std::fprintf(stderr, "tquad: %s\n", err.what());
    return 1;
  }
}
