// zoo_gen: materialise any workload-zoo member as files on disk, so the
// command-line profilers can run every registered memory shape:
//
//   zoo_gen -list
//   zoo_gen -workload phased -image phased.tqim
//   zoo_gen -workload wfs -image wfs.tqim -input wfs_in.wav
//   tquad   -image phased.tqim -report all -viz json:map.json
//
// Workloads with guest input (currently wfs) refuse to export without
// -input: running their image without the attached descriptor would trap.
#include <cstdio>

#include "support/cli.hpp"
#include "workloads/registry.hpp"

#include "cli_common.hpp"

int main(int argc, char** argv) {
  using namespace tq;
  CliParser cli("zoo_gen: emit a workload-zoo guest image (see -list)");
  cli.add_flag("list", false, "list the registered workloads and exit");
  cli.add_string("workload", "", "workload to export (a name from -list)");
  cli.add_string("image", "", "output path for the guest image [required]");
  cli.add_string("input", "", "also write the workload's guest input bytes here");
  try {
    cli.parse(argc, argv);
    if (cli.flag("list")) {
      std::printf("%-14s %-12s %s\n", "name", "shape", "phases");
      for (const auto& entry : workloads::registry()) {
        std::printf("%-14s %-12s %u\n", entry.name.c_str(),
                    workloads::shape_name(entry.shape), entry.expected_phases);
      }
      return 0;
    }
    if (cli.str("workload").empty() || cli.str("image").empty()) {
      std::fprintf(stderr, "%s", cli.help().c_str());
      return 2;
    }
    const workloads::Entry* entry = nullptr;
    for (const auto& candidate : workloads::registry()) {
      if (candidate.name == cli.str("workload")) entry = &candidate;
    }
    if (entry == nullptr) {
      throw UsageError("unknown workload '" + cli.str("workload") +
                       "' (run zoo_gen -list)");
    }
    const workloads::Instance instance = entry->build();
    if (!instance.input.empty() && cli.str("input").empty()) {
      throw UsageError("workload '" + entry->name +
                       "' needs guest input; add -input <path>");
    }
    cli::write_file(cli.str("image"), instance.program.serialize());
    std::printf("wrote %s (%s, %zu functions, %s static instructions)\n",
                cli.str("image").c_str(), workloads::shape_name(entry->shape),
                instance.program.functions().size(),
                format_count(instance.program.static_instructions()).c_str());
    if (!cli.str("input").empty()) {
      cli::write_file(cli.str("input"), instance.input);
      std::printf("guest input written to %s (%zu bytes)\n",
                  cli.str("input").c_str(), instance.input.size());
    }
    return 0;
  } catch (const UsageError& err) {
    std::fprintf(stderr, "zoo_gen: %s\n", err.what());
    return 2;
  } catch (const Error& err) {
    std::fprintf(stderr, "zoo_gen: %s\n", err.what());
    return 1;
  }
}
