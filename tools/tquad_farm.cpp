// tquad_farm: fault-tolerant replay farm — a supervisor that fans TQTR
// replay jobs across worker processes and merges their results into a
// fleet-level bandwidth report.
//
//   tquad_farm -traces a.tqtr,b.tqtr -state state/
//              [-image app.tqim] [-shard-blocks N] [-slice N]
//              [-workers N] [-max-attempts K] [-timeout-ms T]
//              [-backoff-ms B] [-rss-mb M] [-seed S]
//              [-resume] [-out fleet.txt] [-metrics text|json[:path]]
//
// Each job is a whole trace (replayed through the full analysis session
// when -image is given, offline-aggregated otherwise) or, with
// -shard-blocks, a block range of a v2 trace. Jobs run in separate
// processes — a crash, hang (watchdog), or RLIMIT_AS blowout loses one
// attempt, not the farm — and are retried with exponential backoff before
// being quarantined with their captured stderr. Progress is journaled to
// `<state>/manifest.jsonl`; `-resume` re-runs only unfinished jobs and
// reproduces the identical merged report.
//
// The merged fleet report (stdout, and -out) depends only on the completed
// job set — never on retries, timing, or completion order.
//
// Exit codes: 0 all jobs merged, 1 tool error, 2 usage error,
// 3 degraded (some jobs quarantined), 4 interrupted (SIGINT/SIGTERM drain).
//
// The hidden `-worker` mode is the re-exec'd child: it replays exactly one
// job and writes a TQFS sidecar. `-chaos-*` flags inject deterministic
// worker failures (self-SIGKILL, hangs) for the chaos integration test.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "farm/fleet.hpp"
#include "farm/sidecar.hpp"
#include "farm/supervisor.hpp"
#include "quad/quad_tool.hpp"
#include "session/session.hpp"
#include "support/atomic_file.hpp"
#include "support/cli.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "tquad/tquad_tool.hpp"
#include "trace/trace.hpp"
#include "trace/trace_v2.hpp"

#include "cli_common.hpp"

namespace {

using namespace tq;

// ---------------------------------------------------------------------------
// Worker mode

/// Deterministic failure injection: the draw depends only on
/// (chaos_seed, job, attempt), so a chaos run's schedule is reproducible
/// and the supervisor's "no chaos on the final attempt" guarantee makes
/// every healthy job eventually succeed.
void maybe_inject_chaos(std::uint64_t chaos_seed, std::uint32_t job_id,
                        unsigned attempt, double kill_p, double hang_p) {
  if (kill_p <= 0.0 && hang_p <= 0.0) return;
  SplitMix64 rng(chaos_seed ^ (job_id * 0x9E3779B97F4A7C15ull) ^ attempt);
  const double kill_draw = static_cast<double>(rng.next_below(1'000'000)) / 1e6;
  if (kill_draw < kill_p) ::raise(SIGKILL);
  const double hang_draw = static_cast<double>(rng.next_below(1'000'000)) / 1e6;
  if (hang_draw < hang_p) {
    for (;;) ::sleep(3600);  // until the watchdog SIGKILLs us
  }
}

farm::QuadCounts quad_counts(const quad::KernelCounters& counters) {
  farm::QuadCounts out;
  out.in_bytes = counters.in_bytes;
  out.in_unma = counters.in_unma.count();
  out.out_bytes = counters.out_bytes;
  out.out_unma = counters.out_unma.count();
  return out;
}

int run_worker(const CliParser& cli) {
  // Drain contract: a terminal ^C delivers SIGINT to the whole foreground
  // process group, but in-flight jobs are supposed to finish — the
  // supervisor escalates with SIGKILL when it really wants workers gone.
  std::signal(SIGINT, SIG_IGN);
  std::signal(SIGTERM, SIG_IGN);

  if (cli.str("trace").empty() || cli.str("sidecar").empty()) {
    throw UsageError("-worker needs -trace and -sidecar");
  }
  const auto job_id = static_cast<std::uint32_t>(cli.integer("job-id"));
  const auto attempt = static_cast<unsigned>(cli.integer("attempt"));
  maybe_inject_chaos(static_cast<std::uint64_t>(cli.integer("chaos-seed")),
                     job_id, attempt, cli.real("chaos-kill"),
                     cli.real("chaos-hang"));

  const std::uint64_t slice = static_cast<std::uint64_t>(cli.integer("slice"));
  const std::vector<std::uint8_t> bytes = cli::read_file(cli.str("trace"));
  const std::uint64_t block_lo = static_cast<std::uint64_t>(cli.integer("block-lo"));
  const std::uint64_t block_hi = static_cast<std::uint64_t>(cli.integer("block-hi"));

  farm::JobReport report;
  report.job_id = job_id;
  report.trace_path = cli.str("trace");
  report.slice_interval = slice;

  std::uint64_t records_fed = 0;
  if (block_hi > block_lo) {
    // Block-range shard of a v2 trace: decode just [lo, hi) and aggregate
    // offline. No image needed — records are pre-attributed.
    report.whole = false;
    report.block_lo = block_lo;
    report.block_hi = block_hi;
    const trace::TraceV2View view = trace::TraceV2View::open(bytes);
    TQUAD_CHECK(block_hi <= view.block_count(),
                "-block-hi past the end of the trace");
    trace::Trace shard;
    shard.kernel_count = view.kernel_count();
    for (std::uint64_t b = block_lo; b < block_hi; ++b) {
      const std::vector<trace::Record> records = view.decode_block(b);
      shard.records.insert(shard.records.end(), records.begin(), records.end());
    }
    records_fed = shard.records.size();
    report.retired = block_hi == view.block_count()
                         ? view.total_retired()
                         : view.block(block_hi - 1).last_retired + 1;
    trace::OfflineBandwidth offline(view.kernel_count(), slice);
    offline.aggregate(shard);
    for (std::uint32_t k = 0; k < view.kernel_count(); ++k) {
      report.kernel_names.push_back("k" + std::to_string(k));
      report.kernels.push_back(offline.kernel(k));
    }
  } else if (!cli.str("image").empty()) {
    // Whole trace through the full analysis session: bandwidth plus the
    // QUAD communication counters, with real kernel names.
    const vm::Program program =
        vm::Program::deserialize(cli::read_file(cli.str("image")));
    session::SessionConfig config;
    session::ProfileSession profile(program, config);
    tquad::Options options;
    options.slice_interval = slice;
    tquad::TQuadTool bandwidth(program, options);
    quad::QuadTool quad_tool(program, quad::QuadOptions{});
    profile.add_consumer(bandwidth);
    profile.add_consumer(quad_tool);
    (void)profile.replay(bytes, /*salvage=*/false);
    report.retired = bandwidth.total_retired();
    for (std::uint32_t k = 0; k < bandwidth.kernel_count(); ++k) {
      report.kernel_names.push_back(bandwidth.kernel_name(k));
      report.kernels.push_back(bandwidth.bandwidth().kernel(k));
      report.quad_excl.push_back(quad_counts(quad_tool.excluding_stack(k)));
      report.quad_incl.push_back(quad_counts(quad_tool.including_stack(k)));
    }
  } else {
    // Whole trace, no image: offline aggregation (v1 or v2, auto-detected).
    const trace::Trace trace = trace::Trace::deserialize(bytes);
    records_fed = trace.records.size();
    report.retired = trace.total_retired;
    trace::OfflineBandwidth offline(trace.kernel_count, slice);
    offline.aggregate(trace);
    for (std::uint32_t k = 0; k < trace.kernel_count; ++k) {
      report.kernel_names.push_back("k" + std::to_string(k));
      report.kernels.push_back(offline.kernel(k));
    }
  }

  report.metrics.push_back({"worker.retired", report.retired});
  if (records_fed > 0) {
    report.metrics.push_back({"worker.records", records_fed});
  }
  // Atomic: the supervisor treats sidecar existence after exit 0 as "the
  // whole result is here"; a worker killed mid-write must leave nothing.
  write_text_atomic(cli.str("sidecar"), farm::encode_sidecar(report));
  return 0;
}

// ---------------------------------------------------------------------------
// Supervisor mode

std::string self_exe_path(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

std::vector<std::string> split_commas(const std::string& list) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string item = list.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::vector<farm::JobSpec> build_jobs(const std::vector<std::string>& traces,
                                      std::uint64_t shard_blocks) {
  std::vector<farm::JobSpec> jobs;
  for (const std::string& path : traces) {
    bool sharded = false;
    if (shard_blocks > 0) {
      // Probe the trace for its block count. A file we cannot even open as
      // v2 still becomes a whole job: the *worker* fails on it, and the
      // quarantine machinery — not the supervisor — owns poison inputs.
      try {
        const std::vector<std::uint8_t> bytes = cli::read_file(path);
        if (trace::is_v2_image(bytes)) {
          const trace::TraceV2View view = trace::TraceV2View::open(bytes);
          if (view.block_count() > shard_blocks) {
            for (std::uint64_t lo = 0; lo < view.block_count();
                 lo += shard_blocks) {
              farm::JobSpec spec;
              spec.id = static_cast<std::uint32_t>(jobs.size());
              spec.trace_path = path;
              spec.whole = false;
              spec.block_lo = lo;
              spec.block_hi = std::min<std::uint64_t>(lo + shard_blocks,
                                                      view.block_count());
              jobs.push_back(spec);
            }
            sharded = true;
          }
        }
      } catch (const Error&) {
        // fall through to a whole job
      }
    }
    if (!sharded) {
      farm::JobSpec spec;
      spec.id = static_cast<std::uint32_t>(jobs.size());
      spec.trace_path = path;
      jobs.push_back(spec);
    }
  }
  return jobs;
}

int run_supervisor(const CliParser& cli, const char* argv0) {
  if (cli.str("traces").empty()) {
    throw UsageError("missing -traces (comma-separated TQTR paths)");
  }
  if (cli.str("state").empty()) {
    throw UsageError("missing -state (checkpoint/state directory)");
  }
  cli::require_positive(cli, "slice");
  cli::require_positive(cli, "workers");
  cli::require_positive(cli, "max-attempts");
  cli::require_non_negative(cli, "timeout-ms");
  cli::require_positive(cli, "backoff-ms");
  cli::require_non_negative(cli, "rss-mb");
  cli::require_non_negative(cli, "shard-blocks");
  if (cli.real("chaos-kill") < 0.0 || cli.real("chaos-kill") >= 1.0 ||
      cli.real("chaos-hang") < 0.0 || cli.real("chaos-hang") >= 1.0) {
    throw UsageError("-chaos-kill/-chaos-hang must be in [0, 1)");
  }
  const cli::MetricsSpec metrics_spec = cli::parse_metrics(cli.str("metrics"));

  const std::vector<std::string> traces = split_commas(cli.str("traces"));
  if (traces.empty()) throw UsageError("-traces parsed to an empty list");

  farm::FarmOptions options;
  options.worker_exe = self_exe_path(argv0);
  options.image_path = cli.str("image");
  options.state_dir = cli.str("state");
  options.slice_interval = static_cast<std::uint64_t>(cli.integer("slice"));
  options.max_workers = static_cast<unsigned>(cli.integer("workers"));
  options.max_attempts = static_cast<unsigned>(cli.integer("max-attempts"));
  options.timeout_ms = static_cast<std::uint64_t>(cli.integer("timeout-ms"));
  options.backoff_ms = static_cast<std::uint64_t>(cli.integer("backoff-ms"));
  options.rss_mb = static_cast<std::uint64_t>(cli.integer("rss-mb"));
  options.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  options.resume = cli.flag("resume");
  options.chaos_kill = cli.real("chaos-kill");
  options.chaos_hang = cli.real("chaos-hang");
  options.chaos_seed = static_cast<std::uint64_t>(cli.integer("chaos-seed"));

  std::vector<farm::JobSpec> jobs = build_jobs(
      traces, static_cast<std::uint64_t>(cli.integer("shard-blocks")));

  farm::Supervisor::install_signal_handlers();
  farm::Supervisor supervisor(options, std::move(jobs));
  farm::FarmOutcome outcome = supervisor.run();

  // Merge. The fleet data report depends only on the completed job set.
  farm::FleetAggregate fleet;
  for (farm::JobReport& report : outcome.reports) fleet.add(std::move(report));
  const std::string data = fleet.render_data();
  std::fputs(data.c_str(), stdout);
  if (!cli.str("out").empty()) {
    write_text_atomic(cli.str("out"), data);
    std::printf("fleet report written to %s\n", cli.str("out").c_str());
  }

  const char* status = outcome.interrupted        ? "INTERRUPTED"
                       : !outcome.quarantined.empty() ? "DEGRADED"
                                                      : "COMPLETE";
  std::printf("farm: status %s — %zu jobs merged, %zu quarantined, "
              "%llu retries, %llu timeouts, %llu workers spawned\n",
              status, fleet.job_count(), outcome.quarantined.size(),
              static_cast<unsigned long long>(outcome.retries),
              static_cast<unsigned long long>(outcome.timeouts),
              static_cast<unsigned long long>(outcome.spawned));

  if (metrics_spec.enabled) {
    metrics::Registry registry;
    registry.set_gauge("farm.jobs", fleet.job_count() +
                                        outcome.quarantined.size());
    registry.set_gauge("farm.jobs_merged", fleet.job_count());
    registry.set_gauge("farm.quarantined", outcome.quarantined.size());
    registry.add("farm.retries", outcome.retries);
    registry.add("farm.timeouts", outcome.timeouts);
    registry.add("farm.workers_spawned", outcome.spawned);
    for (const auto& [name, value] : fleet.metric_sums()) {
      registry.add("farm.workers." + name, value);
    }
    cli::emit_metrics(registry, metrics_spec);
  }
  return outcome.exit_code();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tq;
  CliParser cli("tquad_farm: supervised multi-process TQTR replay with "
                "retry, quarantine, and checkpoint-resume");
  // Supervisor flags.
  cli.add_string("traces", "", "comma-separated TQTR traces to replay [required]");
  cli.add_string("image", "", "guest image: whole-trace jobs replay the full "
                              "analysis session (bandwidth + QUAD counters)");
  cli.add_string("state", "", "state dir for manifest/sidecars/stderr [required]");
  cli.add_int("shard-blocks", 0,
              "split v2 traces with more than N blocks into N-block jobs "
              "(0 = one job per trace)");
  cli.add_int("slice", 50'000, "slice interval (instructions) for aggregation");
  cli.add_int("workers", 2, "max in-flight worker processes");
  cli.add_int("max-attempts", 3, "attempts per job before quarantine");
  cli.add_int("timeout-ms", 0, "per-attempt wall-clock watchdog (0 = off)");
  cli.add_int("backoff-ms", 100, "base retry backoff, doubled per attempt");
  cli.add_int("rss-mb", 0, "per-worker address-space budget (RLIMIT_AS, 0 = off)");
  cli.add_int("seed", 1, "jitter seed for the retry schedule");
  cli.add_flag("resume", false,
               "resume from the state dir's manifest: completed jobs load "
               "their sidecars, only unfinished jobs run");
  cli.add_string("out", "", "write the merged fleet report to this path");
  cli.add_string("metrics", "",
                 "emit farm metrics after the report: text | json[:path]");
  // Worker-mode flags (internal: the supervisor re-execs itself with these).
  cli.add_flag("worker", false, "internal: run as a single-job worker");
  cli.add_string("trace", "", "worker: the trace to replay");
  cli.add_string("sidecar", "", "worker: write the TQFS result here");
  cli.add_int("job-id", 0, "worker: job id");
  cli.add_int("attempt", 1, "worker: attempt ordinal");
  cli.add_int("block-lo", 0, "worker: first block of the range");
  cli.add_int("block-hi", 0, "worker: one past the last block of the range");
  // Chaos injection (tests).
  cli.add_double("chaos-kill", 0.0,
                 "probability a worker attempt self-SIGKILLs (never on the "
                 "final attempt)");
  cli.add_double("chaos-hang", 0.0,
                 "probability a worker attempt hangs until the watchdog");
  cli.add_int("chaos-seed", 0, "seed for deterministic chaos draws");
  try {
    cli.parse(argc, argv);
    if (cli.flag("worker")) return run_worker(cli);
    return run_supervisor(cli, argv[0]);
  } catch (const UsageError& err) {
    std::fprintf(stderr, "tquad_farm: %s\n", err.what());
    return 2;
  } catch (const Error& err) {
    std::fprintf(stderr, "tquad_farm: %s\n", err.what());
    return 1;
  }
}
