// Helpers shared by the command-line tools (tquad_cli, quad_cli): file I/O,
// flag parsing/validation, and report fragments used by more than one tool.
#pragma once

#include <csignal>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "quad/quad_tool.hpp"
#include "session/pipeline.hpp"
#include "support/cli.hpp"
#include "support/metrics.hpp"
#include "support/table.hpp"
#include "tquad/callstack.hpp"
#include "trace/trace.hpp"
#include "trace/trace_v2.hpp"
#include "vm/engine.hpp"
#include "vm/run_outcome.hpp"

namespace tq::cli {

/// The graceful-shutdown flag the engines poll (vm::GuestEngine /
/// session::SessionConfig interrupt plumbing). Set to 1 by the first
/// SIGINT/SIGTERM; the handler is installed with SA_RESETHAND, so a second
/// signal falls back to the default disposition and kills the process — an
/// escape hatch if the graceful path itself wedges.
inline volatile std::sig_atomic_t g_interrupt = 0;

/// Install the graceful SIGINT/SIGTERM handler. Call once, before the run;
/// wire `&g_interrupt` into SessionConfig::interrupt. The run then ends with
/// RunStatus::kInterrupted: reports stamp INTERRUPTED, recorders finalize
/// (the pre-interrupt trace replays, like pre-trap traces do), and the tool
/// exits 4.
inline void install_interrupt_handler() {
  struct sigaction action {};
  action.sa_handler = [](int) { g_interrupt = 1; };
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESETHAND;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

inline std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) TQUAD_THROW("cannot open '" + path + "'");
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

inline void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) TQUAD_THROW("cannot write '" + path + "'");
  out << text;
}

inline void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) TQUAD_THROW("cannot write '" + path + "'");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

inline tquad::LibraryPolicy parse_policy(const std::string& name) {
  if (name == "exclude") return tquad::LibraryPolicy::kExclude;
  if (name == "caller") return tquad::LibraryPolicy::kAttributeToCaller;
  if (name == "track") return tquad::LibraryPolicy::kTrack;
  TQUAD_THROW("unknown -libs policy '" + name + "' (exclude|caller|track)");
}

inline trace::TraceFormat parse_trace_format(const std::string& name) {
  if (name == "v1") return trace::TraceFormat::kV1;
  if (name == "v2") return trace::TraceFormat::kV2;
  TQUAD_THROW("unknown -trace-format '" + name + "' (v1|v2)");
}

/// Validate that an integer flag holds a strictly positive value; clear
/// error at parse time instead of undefined behaviour downstream (a zero
/// slice interval would divide by zero, a zero sample period never sample).
inline void require_positive(const CliParser& cli, const std::string& name) {
  if (cli.integer(name) <= 0) {
    TQUAD_THROW("option -" + name + " must be a positive integer (got " +
                std::to_string(cli.integer(name)) + ")");
  }
}

inline void require_non_negative(const CliParser& cli, const std::string& name) {
  if (cli.integer(name) < 0) {
    TQUAD_THROW("option -" + name + " must not be negative (got " +
                std::to_string(cli.integer(name)) + ")");
  }
}

/// Parse the `-engine` flag: `compiled` (the fused-op threaded-dispatch
/// engine, the default) or `interp` (the reference interpreter). Reports
/// are byte-identical either way; unknown names are usage errors (exit 2).
inline vm::EngineKind parse_engine(const std::string& name) {
  if (name == "compiled") return vm::EngineKind::kCompiled;
  if (name == "interp") return vm::EngineKind::kInterp;
  throw UsageError("unknown -engine '" + name + "' (interp|compiled)");
}

/// The parallel pipeline's perf contract (drain keeps up with a serial
/// floor) is benchmarked on >= 4 hardware threads; on smaller machines the
/// mode still produces identical reports but the floor gate is meaningless,
/// so say so once instead of letting a slow run surprise the user.
inline void warn_parallel_on_small_host(const session::PipelineOptions& options) {
  if (options.mode != session::PipelineMode::kParallel) return;
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw != 0 && hw < 4) {
    std::fprintf(stderr,
                 "note: -pipeline parallel on %u hardware threads; the serial "
                 "floor perf gate is not enforced below 4\n",
                 hw);
  }
}

/// Validate the `-on-trap` flag (what to do when the guest faults).
inline void validate_on_trap(const std::string& mode) {
  if (mode != "report" && mode != "abort") {
    TQUAD_THROW("unknown -on-trap mode '" + mode + "' (report|abort)");
  }
}

/// Parse the `-pipeline` flag: `serial` (the default reference
/// implementation), `parallel[:N]` with N drain workers (N omitted =
/// hardware concurrency), or `auto`. For `auto` this only validates — it
/// returns serial; the real decision needs to know how many consumer lanes
/// the run will attach, which isn't known at flag-validation time. The run
/// path calls resolve_pipeline() with that count. Malformed specs —
/// including an explicit worker count of 0, which would otherwise silently
/// fall through to the auto path — raise UsageError, which the CLIs map to
/// exit code 2.
inline session::PipelineOptions parse_pipeline(const std::string& spec) {
  session::PipelineOptions options;
  if (spec == "serial" || spec == "auto") return options;
  const std::string kParallel = "parallel";
  if (spec.compare(0, kParallel.size(), kParallel) == 0) {
    options.mode = session::PipelineMode::kParallel;
    if (spec.size() == kParallel.size()) return options;
    if (spec[kParallel.size()] == ':') {
      const std::string count = spec.substr(kParallel.size() + 1);
      if (!count.empty() &&
          count.find_first_not_of("0123456789") == std::string::npos &&
          count.size() <= 4) {
        const unsigned long workers = std::stoul(count);
        if (workers > 0) {
          options.workers = static_cast<unsigned>(workers);
          return options;
        }
      }
      throw UsageError("bad -pipeline worker count '" + count +
                       "' (parallel:N needs a small positive integer)");
    }
  }
  throw UsageError("unknown -pipeline mode '" + spec +
                   "' (serial|parallel[:N]|auto)");
}

/// Resolve `-pipeline auto` into a real mode, consumer-aware. Parallel pays
/// for itself only when the drain work can actually spread out: it needs a
/// capable host (>= 4 hardware threads, the floor the perf contract is
/// benchmarked on) AND either several consumer lanes or a shardable tool
/// (QUAD splits its access stream across shard rings). With one unshardable
/// lane the publisher copies the whole event stream to a single worker that
/// then does exactly the serial work — pure overhead — so auto picks serial
/// and says why on stderr (graceful degradation should be visible, not
/// silent). Explicit serial/parallel specs pass through untouched. Call
/// once, on the run path, after the tool set is known.
inline session::PipelineOptions resolve_pipeline(const std::string& spec,
                                                 unsigned consumer_lanes,
                                                 bool has_sharded_consumer) {
  session::PipelineOptions options = parse_pipeline(spec);
  if (spec != "auto") return options;
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 4) {
    std::fprintf(stderr,
                 "note: -pipeline auto selected serial (%u hardware threads; "
                 "parallel needs >= 4)\n",
                 hw);
    return options;
  }
  if (consumer_lanes < 2 && !has_sharded_consumer) {
    std::fprintf(stderr,
                 "note: -pipeline auto selected serial (%u consumer lane%s, "
                 "none shardable; parallel would be pure transport overhead)\n",
                 consumer_lanes, consumer_lanes == 1 ? "" : "s");
    return options;
  }
  options.mode = session::PipelineMode::kParallel;
  return options;
}

/// The `-metrics` flag: off by default, `text` or `json`, optionally with a
/// `:path` destination (`-metrics json:run_metrics.json`). Without a path
/// the rendering goes to stdout strictly *after* every report, so report
/// bytes are unchanged whether metrics are on or off.
struct MetricsSpec {
  bool enabled = false;
  bool json = false;
  std::string path;  ///< empty = stdout
};

inline MetricsSpec parse_metrics(const std::string& spec) {
  MetricsSpec metrics;
  if (spec.empty()) return metrics;
  std::string format = spec;
  const std::size_t colon = spec.find(':');
  if (colon != std::string::npos) {
    format = spec.substr(0, colon);
    metrics.path = spec.substr(colon + 1);
    if (metrics.path.empty()) {
      throw UsageError("empty -metrics path in '" + spec +
                       "' (text|json[:path])");
    }
  }
  if (format == "text") {
    metrics.enabled = true;
  } else if (format == "json") {
    metrics.enabled = true;
    metrics.json = true;
  } else {
    throw UsageError("unknown -metrics format '" + format +
                     "' (text|json[:path])");
  }
  return metrics;
}

/// Emit the registry per the spec. Must be the last output of a run: with
/// no path, the text rendering goes to stdout under a `== metrics ==`
/// separator (JSON goes raw, as the trailing object).
inline void emit_metrics(const metrics::Registry& registry,
                         const MetricsSpec& spec) {
  if (!spec.enabled) return;
  const std::string body =
      spec.json ? registry.render_json() : registry.render_text();
  if (!spec.path.empty()) {
    write_text(spec.path, body);
    return;
  }
  if (!spec.json) std::printf("== metrics ==\n");
  std::fputs(body.c_str(), stdout);
}

/// The `-viz` flag: off by default, `json`, optionally with a `:path`
/// destination (`-viz json:map.json`). The address-map heatmap renders
/// after every report — with a path only a `written to` stamp joins the
/// stdout stream, so report bytes are unchanged whether -viz is on or off.
struct VizSpec {
  bool enabled = false;
  std::string path;  ///< empty = stdout
};

inline VizSpec parse_viz(const std::string& spec) {
  VizSpec viz;
  if (spec.empty()) return viz;
  std::string format = spec;
  const std::size_t colon = spec.find(':');
  if (colon != std::string::npos) {
    format = spec.substr(0, colon);
    viz.path = spec.substr(colon + 1);
    if (viz.path.empty()) {
      throw UsageError("empty -viz path in '" + spec + "' (json[:path])");
    }
  }
  if (format != "json") {
    throw UsageError("unknown -viz format '" + format + "' (json[:path])");
  }
  viz.enabled = true;
  return viz;
}

/// Emit the rendered address map per the spec (after the reports, before
/// -metrics, which stays the strictly-last output).
inline void emit_viz(const std::string& body, const VizSpec& spec) {
  if (!spec.enabled) return;
  if (!spec.path.empty()) {
    write_text(spec.path, body);
    std::printf("address map written to %s\n", spec.path.c_str());
    return;
  }
  std::fputs(body.c_str(), stdout);
}

/// Exit code for a finished run: 3 flags a guest trap and 4 a
/// SIGINT/SIGTERM interruption (distinct from tool errors = 1 and usage
/// errors = 2); a budget cut is a graceful 0.
inline int outcome_exit_code(const vm::RunOutcome& outcome) {
  if (outcome.status == vm::RunStatus::kTrapped) return 3;
  if (outcome.status == vm::RunStatus::kInterrupted) return 4;
  return 0;
}

/// Stamp non-clean outcomes above the reports so a reader (or a script
/// grepping the output) cannot mistake a prefix profile for a full run.
inline void print_outcome_status(const vm::RunOutcome& outcome) {
  switch (outcome.status) {
    case vm::RunStatus::kHalted:
      break;
    case vm::RunStatus::kTrapped:
      std::printf("status: PARTIAL (%s)\n", outcome.summary().c_str());
      break;
    case vm::RunStatus::kTruncated:
      std::printf("status: TRUNCATED (%s)\n", outcome.summary().c_str());
      break;
    case vm::RunStatus::kInterrupted:
      std::printf("status: INTERRUPTED (%s)\n", outcome.summary().c_str());
      break;
  }
}

/// Salvage counters into the registry under trace.salvage.* names.
inline void publish_salvage_metrics(metrics::Registry& registry,
                                    const trace::SalvageReport& report) {
  registry.add("trace.salvage.blocks_found", report.blocks_found);
  registry.add("trace.salvage.blocks_recovered", report.blocks_recovered);
  registry.add("trace.salvage.blocks_dropped", report.dropped.size());
  registry.add("trace.salvage.records_recovered", report.records_recovered);
  registry.add("trace.salvage.records_dropped", report.records_dropped);
  registry.add("trace.salvage.index_rebuilt", report.index_rebuilt ? 1 : 0);
}

/// Human summary of a salvage pass over a damaged v2 trace.
inline void print_salvage_report(const trace::SalvageReport& report) {
  std::printf("salvage: recovered %zu of %zu blocks (%llu records kept, "
              "%llu dropped)%s\n",
              report.blocks_recovered, report.blocks_found,
              static_cast<unsigned long long>(report.records_recovered),
              static_cast<unsigned long long>(report.records_dropped),
              report.index_rebuilt ? "; index rebuilt from block headers" : "");
  for (const auto& dropped : report.dropped) {
    std::printf("salvage: dropped block %zu at offset %llu (%s)\n",
                dropped.index,
                static_cast<unsigned long long>(dropped.file_offset),
                dropped.reason.c_str());
  }
}

/// Which profilers a multi-tool session runs (the `-tools` flag).
struct ToolSet {
  bool tquad = false;
  bool quad = false;
  bool gprof = false;

  bool any() const noexcept { return tquad || quad || gprof; }
};

/// Parse a comma-separated `-tools` list: any subset of tquad,quad,gprof.
inline ToolSet parse_tools(const std::string& spec) {
  ToolSet tools;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string name = spec.substr(begin, end - begin);
    if (name == "tquad") {
      tools.tquad = true;
    } else if (name == "quad") {
      tools.quad = true;
    } else if (name == "gprof") {
      tools.gprof = true;
    } else {
      TQUAD_THROW("unknown tool '" + name +
                  "' in -tools (comma-separated subset of tquad,quad,gprof)");
    }
    begin = end + 1;
  }
  return tools;
}

/// The Table II kernel table of a finished QUAD run (shared by quad_cli and
/// tquad_cli's multi-tool mode).
inline TextTable quad_kernel_table(const quad::QuadTool& tool) {
  TextTable table({"kernel", "IN ex", "INunma ex", "OUT ex", "OUTunma ex",
                   "IN in", "INunma in", "OUT in", "OUTunma in"});
  for (std::uint32_t k = 0; k < tool.kernel_count(); ++k) {
    if (!tool.reported(k)) continue;
    const auto& ex = tool.excluding_stack(k);
    const auto& in = tool.including_stack(k);
    if (in.in_bytes == 0 && in.out_unma.count() == 0) continue;  // silent
    table.add_row({tool.kernel_name(k), format_count(ex.in_bytes),
                   format_count(ex.in_unma.count()), format_count(ex.out_bytes),
                   format_count(ex.out_unma.count()), format_count(in.in_bytes),
                   format_count(in.in_unma.count()), format_count(in.out_bytes),
                   format_count(in.out_unma.count())});
  }
  return table;
}

}  // namespace tq::cli
