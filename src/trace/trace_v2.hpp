// TQTR v2: block-compressed trace container.
//
// v1 stores 28 bytes per event; at production trace sizes (1e9+ events) that
// dominates both disk and replay time. v2 groups records into fixed-capacity
// blocks, each independently decodable:
//
//   * per-block delta/varint coding — `retired`, `ea`, and `pc` as zigzag
//     deltas (ea keeps one previous-address register per event kind, so read
//     and write streams delta independently), kernel/func as varints with a
//     "same context as previous record" shortcut bit, kind/flags/size packed
//     into one tag byte — typically 4–7 bytes/event;
//   * a 32-byte block header carrying first/last retired count, record and
//     payload byte counts, and an approximate kernel-membership bloom;
//   * a file-level index of block offsets, so consumers can shard whole
//     blocks across a ThreadPool or seek to a retired-count range without
//     decoding the prefix.
//
// Layout details in docs/FORMATS.md. Writers stream: TraceV2Writer holds one
// open block plus the already-encoded bytes, never the full Record array.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace tq::trace {

inline constexpr std::uint32_t kDefaultBlockCapacity = 4096;
inline constexpr std::uint32_t kMaxBlockCapacity = 1u << 20;
inline constexpr std::size_t kV2FileHeaderBytes = 40;
/// v2.1 block header (v2.0 lacked the trailing crc32c + reserved words).
inline constexpr std::size_t kV2BlockHeaderBytes = 40;
inline constexpr std::size_t kV2LegacyBlockHeaderBytes = 32;
inline constexpr std::size_t kV2IndexEntryBytes = 16;

/// The file header's version word packs major|minor: low 16 bits = 2, high
/// 16 bits = minor. Minor 0 (the original v2 layout, still decoded) has
/// 32-byte block headers; minor 1 appends a CRC-32C per block.
inline constexpr std::uint32_t kV2VersionMajor = 2;
inline constexpr std::uint32_t kV2MinorCrc = 1;
inline constexpr std::uint32_t v2_version_word(std::uint32_t minor) {
  return kV2VersionMajor | (minor << 16);
}

/// Quick sniff: the image starts like a TQTR file with major version 2 (any
/// minor — open() rejects minors it cannot decode with a clear error).
bool is_v2_image(std::span<const std::uint8_t> bytes) noexcept;

/// Per-block metadata: the on-disk block header plus its file offset.
struct BlockInfo {
  std::uint64_t file_offset = 0;   ///< of the block header
  std::uint32_t record_count = 0;  ///< 1..block_capacity
  std::uint32_t payload_bytes = 0;
  std::uint64_t first_retired = 0;  ///< retired count of the first record
  std::uint64_t last_retired = 0;   ///< retired count of the last record
  std::uint64_t kernel_bloom = 0;   ///< bit (kernel & 63) set per record
  std::uint32_t crc = 0;            ///< CRC-32C (v2.1; 0 in v2.0 files)
};

/// What salvage-mode decoding recovered from a damaged v2 image.
struct SalvageReport {
  /// One block the salvage scan could not recover.
  struct DroppedBlock {
    std::size_t index = 0;          ///< ordinal position in the scan
    std::uint64_t file_offset = 0;  ///< of the (claimed) block header
    std::uint32_t record_count = 0; ///< records lost (claimed; 0 if unknown)
    std::string reason;
  };

  bool index_rebuilt = false;  ///< trailer index missing/corrupt; blocks rescanned
  std::size_t blocks_found = 0;      ///< block candidates examined
  std::size_t blocks_recovered = 0;
  std::uint64_t records_recovered = 0;
  std::uint64_t records_dropped = 0;  ///< from blocks with a readable count
  std::vector<DroppedBlock> dropped;

  bool clean() const noexcept { return !index_rebuilt && dropped.empty(); }
};

/// Streaming v2 encoder: feed records one at a time, then finish(). Memory
/// stays proportional to the *encoded* output plus one open block, so a
/// recorder can write arbitrarily long runs without buffering Record arrays.
class TraceV2Writer {
 public:
  /// `minor` selects the wire layout: kV2MinorCrc (default) writes v2.1
  /// with per-block CRC-32C; 0 writes the legacy v2.0 layout (for
  /// compatibility tests and the CRC-overhead bench).
  explicit TraceV2Writer(std::uint32_t kernel_count,
                         std::uint32_t block_capacity = kDefaultBlockCapacity,
                         std::uint32_t minor = kV2MinorCrc);

  /// Append one record. Throws tq::Error if the record is not representable
  /// (flag bits outside the defined set, out-of-range kind).
  void add(const Record& record);

  /// Seal the file: flush the open block, append the index, patch the
  /// header. The writer is spent afterwards.
  std::vector<std::uint8_t> finish(std::uint64_t total_retired);

  std::uint64_t record_count() const noexcept { return record_count_; }
  /// Blocks flushed so far (all of them once finish() ran); each carries
  /// its own CRC-32C in the v2.1 layout.
  std::size_t block_count() const noexcept { return blocks_.size(); }

 private:
  void flush_block();

  std::uint32_t block_capacity_;
  std::uint32_t minor_;
  std::vector<std::uint8_t> out_;      ///< finished header + flushed blocks
  std::vector<std::uint8_t> payload_;  ///< open block payload
  std::vector<BlockInfo> blocks_;
  std::uint64_t record_count_ = 0;
  bool finished_ = false;

  // Open-block coder state (reset at block boundaries so blocks decode
  // independently).
  std::uint32_t block_records_ = 0;
  std::uint64_t block_first_retired_ = 0;
  std::uint64_t block_last_retired_ = 0;
  std::uint64_t block_bloom_ = 0;
  std::uint64_t prev_retired_ = 0;
  std::uint64_t prev_ea_[4] = {0, 0, 0, 0};
  std::uint32_t prev_pc_ = 0;
  std::uint16_t prev_kernel_ = 0;
  std::uint16_t prev_func_ = 0;
};

/// One-shot convenience: encode a whole in-memory trace as TQTR v2.
std::vector<std::uint8_t> serialize_v2(
    const Trace& trace, std::uint32_t block_capacity = kDefaultBlockCapacity);

/// Validated random-access view over a v2 byte image. open() checks the
/// whole structure (magic, index/block offset chain, per-block headers,
/// record-count totals) up front; per-block payloads are validated on
/// decode. The view borrows `bytes` — keep them alive while using it.
class TraceV2View {
 public:
  static TraceV2View open(std::span<const std::uint8_t> bytes);

  /// Best-effort open of a damaged image: skips blocks whose CRC (v2.1) or
  /// trial decode fails, drops truncated tails, and rebuilds the block list
  /// by scanning forward from the file header when the trailer index is
  /// missing or unusable (e.g. the write was cut off mid-run). The returned
  /// view exposes only the recovered blocks, so every downstream consumer
  /// (decode_all, replay, parallel aggregation) works unchanged on the
  /// recovered subset. Throws tq::Error only when nothing is recoverable
  /// (bad magic/major version/file header). Details land in `*report` when
  /// non-null.
  static TraceV2View salvage(std::span<const std::uint8_t> bytes,
                             SalvageReport* report = nullptr);

  std::uint32_t kernel_count() const noexcept { return kernel_count_; }
  std::uint32_t block_capacity() const noexcept { return block_capacity_; }
  std::uint32_t minor_version() const noexcept { return minor_; }
  std::uint64_t total_retired() const noexcept { return total_retired_; }
  std::uint64_t record_count() const noexcept { return record_count_; }

  std::size_t block_count() const noexcept { return blocks_.size(); }
  const BlockInfo& block(std::size_t i) const;

  /// Decode one block. Throws tq::Error on corrupt payloads or block
  /// headers that disagree with the decoded records (first/last retired,
  /// kernel bloom, payload byte count).
  std::vector<Record> decode_block(std::size_t i) const;

  /// Decode every block into a flat Trace (the v1-compatible shape).
  Trace decode_all() const;

  /// Index of the first block that may contain records with
  /// `record.retired >= retired` (blocks are ordered by retired count as
  /// recorded); block_count() if none.
  std::size_t first_block_at(std::uint64_t retired) const;

  /// Parsed file-header fields (an implementation detail shared between the
  /// strict and salvage open paths).
  struct HeaderFields {
    std::uint32_t minor = 0;
    std::uint32_t kernel_count = 0;
    std::uint32_t block_capacity = 0;
    std::uint64_t total_retired = 0;
    std::uint64_t record_count = 0;
    std::uint64_t index_offset = 0;
  };

 private:
  TraceV2View() = default;

  /// Decode a block payload described by `info` (no CRC check — that is
  /// decode_block's / salvage's job).
  std::vector<Record> decode_payload(const BlockInfo& info) const;

  std::span<const std::uint8_t> bytes_;
  std::vector<BlockInfo> blocks_;
  std::uint32_t kernel_count_ = 0;
  std::uint32_t block_capacity_ = 0;
  std::uint32_t minor_ = 0;
  std::uint64_t total_retired_ = 0;
  std::uint64_t record_count_ = 0;
};

/// Replay only the records with `lo <= record.retired < hi`, using the block
/// index to skip everything else (no prefix decode). Calls sink.on_record()
/// per matching record — on_end() is not invoked, as there is no full Trace.
/// Returns the number of records delivered.
std::uint64_t replay_range(const TraceV2View& view, std::uint64_t lo,
                           std::uint64_t hi, TraceSink& sink);

}  // namespace tq::trace
