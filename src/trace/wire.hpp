// Byte-level wire primitives for the trace codecs.
//
// Everything the TQTR readers consume is attacker-controlled (fuzz-tested),
// so reads go through a bounds-checked ByteReader that raises tq::Error on
// any overrun instead of walking off the buffer. Varints are LEB128 (7 bits
// per byte, little-endian groups, high bit = continuation, max 10 bytes for
// a u64); signed deltas use zigzag so small negative strides stay short.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "support/check.hpp"

namespace tq::trace::wire {

inline void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + 2);
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + 4);
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + 8);
}

/// LEB128 unsigned varint, 1..10 bytes.
inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Zigzag: map signed deltas to unsigned so ±small stays a 1-byte varint.
inline std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Bounds-checked cursor over untrusted bytes; every overrun is tq::Error.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::size_t pos() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

  std::uint8_t u8() {
    require(1);
    return bytes_[pos_++];
  }
  std::uint16_t u16() {
    require(2);
    std::uint16_t v;
    std::memcpy(&v, bytes_.data() + pos_, 2);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    require(4);
    std::uint32_t v;
    std::memcpy(&v, bytes_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    require(8);
    std::uint64_t v;
    std::memcpy(&v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }

  /// LEB128 u64; rejects truncation and >64-bit values.
  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      const std::uint8_t byte = u8();
      if (shift == 63 && (byte & 0x7e) != 0) {
        TQUAD_THROW("TQTR varint overflows 64 bits");
      }
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
    }
    TQUAD_THROW("TQTR varint longer than 10 bytes");
  }

 private:
  void require(std::size_t n) const {
    if (remaining() < n) TQUAD_THROW("TQTR input truncated");
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace tq::trace::wire
