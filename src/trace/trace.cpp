#include "trace/trace.hpp"

#include <cstring>

#include "support/check.hpp"

namespace tq::trace {

namespace {

constexpr std::uint32_t kMagic = 0x52545154;  // "TQTR"
constexpr std::uint32_t kVersion = 1;

}  // namespace

// ---- Trace serialisation ------------------------------------------------------

std::vector<std::uint8_t> Trace::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(32 + records.size() * sizeof(Record));
  auto put_u32 = [&](std::uint32_t v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    out.insert(out.end(), p, p + 4);
  };
  auto put_u64 = [&](std::uint64_t v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    out.insert(out.end(), p, p + 8);
  };
  put_u32(kMagic);
  put_u32(kVersion);
  put_u32(kernel_count);
  put_u32(static_cast<std::uint32_t>(sizeof(Record)));
  put_u64(total_retired);
  put_u64(records.size());
  const auto* raw = reinterpret_cast<const std::uint8_t*>(records.data());
  out.insert(out.end(), raw, raw + records.size() * sizeof(Record));
  return out;
}

Trace Trace::deserialize(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 32) TQUAD_THROW("TQTR trace too short for a header");
  auto get_u32 = [&](std::size_t off) {
    std::uint32_t v;
    std::memcpy(&v, bytes.data() + off, 4);
    return v;
  };
  auto get_u64 = [&](std::size_t off) {
    std::uint64_t v;
    std::memcpy(&v, bytes.data() + off, 8);
    return v;
  };
  if (get_u32(0) != kMagic) TQUAD_THROW("not a TQTR trace (bad magic)");
  if (get_u32(4) != kVersion) TQUAD_THROW("unsupported TQTR version");
  if (get_u32(12) != sizeof(Record)) {
    TQUAD_THROW("TQTR record size mismatch (incompatible producer)");
  }
  Trace trace;
  trace.kernel_count = get_u32(8);
  trace.total_retired = get_u64(16);
  const std::uint64_t count = get_u64(24);
  if (bytes.size() != 32 + count * sizeof(Record)) {
    TQUAD_THROW("TQTR trace truncated");
  }
  trace.records.resize(count);
  std::memcpy(trace.records.data(), bytes.data() + 32, count * sizeof(Record));
  for (const Record& record : trace.records) {
    if (record.kind > EventKind::kWrite) TQUAD_THROW("TQTR record with bad kind");
  }
  return trace;
}

// ---- TraceRecorder --------------------------------------------------------------

TraceRecorder::TraceRecorder(const vm::Program& program, tquad::LibraryPolicy policy)
    : stack_(program, policy) {
  trace_.kernel_count = static_cast<std::uint32_t>(program.functions().size());
  trace_.records.reserve(1 << 16);
}

void TraceRecorder::on_rtn_enter(std::uint32_t func) {
  stack_.on_enter(func);
  Record record{};
  record.retired = trace_.records.empty() ? 0 : trace_.records.back().retired;
  record.ea = func;
  record.kernel = static_cast<std::uint16_t>(
      stack_.top() == tquad::kNoKernel ? kNoKernel16 : stack_.top());
  record.func = static_cast<std::uint16_t>(func);
  record.kind = EventKind::kEnter;
  trace_.records.push_back(record);
}

void TraceRecorder::on_instr(const vm::InstrEvent& event) {
  if (!event.executed) return;
  const std::uint32_t top = stack_.top();
  const std::uint16_t kernel =
      top == tquad::kNoKernel ? kNoKernel16 : static_cast<std::uint16_t>(top);

  auto emit = [&](EventKind kind, std::uint64_t ea, std::uint32_t size,
                  std::uint8_t flags) {
    Record record{};
    record.retired = event.retired;
    record.ea = ea;
    record.pc = event.pc;
    record.kernel = kernel;
    record.func = static_cast<std::uint16_t>(event.func);
    record.kind = kind;
    record.size = static_cast<std::uint8_t>(size);
    record.flags = flags;
    trace_.records.push_back(record);
  };

  if (event.read.size != 0) {
    std::uint8_t flags = 0;
    if (is_stack_addr(event.read.ea, event.sp)) flags |= kFlagStackArea;
    if (event.prefetch) flags |= kFlagPrefetch;
    emit(EventKind::kRead, event.read.ea, event.read.size, flags);
  }
  if (event.write.size != 0) {
    std::uint8_t flags = 0;
    if (is_stack_addr(event.write.ea, event.sp)) flags |= kFlagStackArea;
    emit(EventKind::kWrite, event.write.ea, event.write.size, flags);
  }
  if (isa::is_ret(event.ins->op)) {
    emit(EventKind::kRet, 0, 0, 0);
    stack_.on_ret(event.func);
  }
}

void TraceRecorder::on_program_end(std::uint64_t retired) {
  trace_.total_retired = retired;
}

Trace TraceRecorder::take() { return std::move(trace_); }

// ---- replay ----------------------------------------------------------------------

void replay(const Trace& trace, TraceSink& sink) {
  for (const Record& record : trace.records) {
    sink.on_record(record);
  }
  sink.on_end(trace);
}

// ---- OfflineBandwidth --------------------------------------------------------------

OfflineBandwidth::OfflineBandwidth(std::uint32_t kernel_count,
                                   std::uint64_t slice_interval)
    : kernels_(kernel_count), slice_interval_(slice_interval) {
  TQUAD_CHECK(slice_interval_ > 0, "slice interval must be positive");
}

namespace {

/// Accumulate the records in [begin, end) into per-kernel sample vectors
/// using the same open-slice logic as the online recorder.
std::vector<std::vector<tquad::SliceSample>> accumulate_range(
    std::span<const Record> records, std::size_t kernel_count,
    std::uint64_t slice_interval) {
  std::vector<std::vector<tquad::SliceSample>> out(kernel_count);
  struct Open {
    std::uint64_t slice = ~0ull;
    tquad::SliceCounters counters;
  };
  std::vector<Open> open(kernel_count);
  for (const Record& record : records) {
    if (record.kernel == kNoKernel16) continue;
    if (record.kind != EventKind::kRead && record.kind != EventKind::kWrite) continue;
    if (record.flags & kFlagPrefetch) continue;  // paper: skip prefetches
    TQUAD_DCHECK(record.kernel < kernel_count, "kernel id out of range in trace");
    const std::uint64_t slice = record.retired / slice_interval;
    Open& slot = open[record.kernel];
    if (slot.slice != slice) {
      if (slot.slice != ~0ull && !slot.counters.empty()) {
        out[record.kernel].push_back(tquad::SliceSample{slot.slice, slot.counters});
      }
      slot.slice = slice;
      slot.counters.clear();
    }
    const bool stack_area = record.flags & kFlagStackArea;
    if (record.kind == EventKind::kRead) {
      slot.counters.read_incl += record.size;
      if (!stack_area) slot.counters.read_excl += record.size;
    } else {
      slot.counters.write_incl += record.size;
      if (!stack_area) slot.counters.write_excl += record.size;
    }
  }
  for (std::size_t k = 0; k < kernel_count; ++k) {
    if (open[k].slice != ~0ull && !open[k].counters.empty()) {
      out[k].push_back(tquad::SliceSample{open[k].slice, open[k].counters});
    }
  }
  return out;
}

}  // namespace

void OfflineBandwidth::merge_partial(std::uint32_t kernel,
                                     std::vector<tquad::SliceSample>&& samples) {
  auto& dest = kernels_[kernel];
  for (auto& sample : samples) {
    max_slice_ = std::max(max_slice_, sample.slice);
    dest.totals.merge(sample.counters);
    if (!dest.series.empty() && dest.series.back().slice == sample.slice) {
      dest.series.back().counters.merge(sample.counters);  // shard seam
    } else {
      TQUAD_DCHECK(dest.series.empty() || dest.series.back().slice < sample.slice,
                   "trace records out of order");
      dest.series.push_back(sample);
    }
  }
}

void OfflineBandwidth::aggregate(const Trace& trace) {
  auto samples = accumulate_range(trace.records, kernels_.size(), slice_interval_);
  for (std::uint32_t k = 0; k < kernels_.size(); ++k) {
    merge_partial(k, std::move(samples[k]));
  }
}

void OfflineBandwidth::aggregate_parallel(const Trace& trace, ThreadPool& pool) {
  const std::uint64_t total = trace.records.size();
  if (total == 0) return;
  const unsigned blocks =
      static_cast<unsigned>(std::min<std::uint64_t>(pool.size(), total));
  std::vector<std::vector<std::vector<tquad::SliceSample>>> partials(blocks);
  parallel_for_blocks(
      pool, 0, total,
      [&](std::uint64_t begin, std::uint64_t end, unsigned block) {
        partials[block] = accumulate_range(
            std::span<const Record>(trace.records.data() + begin, end - begin),
            kernels_.size(), slice_interval_);
      });
  for (unsigned block = 0; block < blocks; ++block) {
    for (std::uint32_t k = 0; k < kernels_.size(); ++k) {
      merge_partial(k, std::move(partials[block][k]));
    }
  }
}

const tquad::KernelBandwidth& OfflineBandwidth::kernel(std::uint32_t id) const {
  TQUAD_CHECK(id < kernels_.size(), "kernel id out of range");
  return kernels_[id];
}

}  // namespace tq::trace
