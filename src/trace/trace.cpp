#include "trace/trace.hpp"

#include <cstdio>
#include <exception>

#include "support/check.hpp"
#include "support/metrics.hpp"
#include "trace/trace_v2.hpp"
#include "trace/wire.hpp"
#include "vm/stack_addr.hpp"

namespace tq::trace {

namespace {

constexpr std::uint32_t kMagic = 0x52545154;  // "TQTR"
constexpr std::size_t kV1HeaderBytes = 32;

}  // namespace

// ---- Trace serialisation ------------------------------------------------------

std::vector<std::uint8_t> Trace::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(kV1HeaderBytes + records.size() * kRecordDiskBytes);
  wire::put_u32(out, kMagic);
  wire::put_u32(out, static_cast<std::uint32_t>(TraceFormat::kV1));
  wire::put_u32(out, kernel_count);
  wire::put_u32(out, static_cast<std::uint32_t>(kRecordDiskBytes));
  wire::put_u64(out, total_retired);
  wire::put_u64(out, records.size());
  // Field-by-field, so the disk layout never inherits host struct padding.
  for (const Record& record : records) {
    wire::put_u64(out, record.retired);
    wire::put_u64(out, record.ea);
    wire::put_u32(out, record.pc);
    wire::put_u16(out, record.kernel);
    wire::put_u16(out, record.func);
    wire::put_u8(out, static_cast<std::uint8_t>(record.kind));
    wire::put_u8(out, record.size);
    wire::put_u8(out, record.flags);
    wire::put_u8(out, 0);  // reserved
  }
  return out;
}

Trace Trace::deserialize(std::span<const std::uint8_t> bytes) {
  wire::ByteReader header(bytes);
  if (bytes.size() < 8) TQUAD_THROW("TQTR trace too short for a header");
  if (header.u32() != kMagic) TQUAD_THROW("not a TQTR trace (bad magic)");
  const std::uint32_t version = header.u32();
  if ((version & 0xffffu) == static_cast<std::uint32_t>(TraceFormat::kV2)) {
    // v2.x (the minor lives in the high half; TraceV2View::open validates it).
    return TraceV2View::open(bytes).decode_all();
  }
  if (version != static_cast<std::uint32_t>(TraceFormat::kV1)) {
    TQUAD_THROW("unsupported TQTR version");
  }
  if (bytes.size() < kV1HeaderBytes) TQUAD_THROW("TQTR trace too short for a header");
  Trace trace;
  trace.kernel_count = header.u32();
  if (header.u32() != kRecordDiskBytes) {
    TQUAD_THROW("TQTR record size mismatch (incompatible producer)");
  }
  trace.total_retired = header.u64();
  const std::uint64_t count = header.u64();
  if (count > (bytes.size() - kV1HeaderBytes) / kRecordDiskBytes ||
      bytes.size() - kV1HeaderBytes != count * kRecordDiskBytes) {
    TQUAD_THROW("TQTR trace truncated");
  }
  wire::ByteReader reader(bytes.subspan(kV1HeaderBytes));
  trace.records.resize(count);
  for (Record& record : trace.records) {
    record.retired = reader.u64();
    record.ea = reader.u64();
    record.pc = reader.u32();
    record.kernel = reader.u16();
    record.func = reader.u16();
    const std::uint8_t kind = reader.u8();
    if (kind > static_cast<std::uint8_t>(EventKind::kWrite)) {
      TQUAD_THROW("TQTR record with bad kind");
    }
    record.kind = static_cast<EventKind>(kind);
    record.size = reader.u8();
    record.flags = reader.u8();
    record.reserved = reader.u8();
    if (record.kernel != kNoKernel16 && record.kernel >= trace.kernel_count) {
      TQUAD_THROW("TQTR record kernel id out of range");
    }
  }
  return trace;
}

// ---- TraceRecorder --------------------------------------------------------------

TraceRecorder::TraceRecorder(const vm::Program& program, tquad::LibraryPolicy policy,
                             TraceFormat format)
    : stack_(program, policy) {
  trace_.kernel_count = static_cast<std::uint32_t>(program.functions().size());
  if (format == TraceFormat::kV2) {
    writer_ = std::make_unique<TraceV2Writer>(trace_.kernel_count);
  } else {
    trace_.records.reserve(1 << 16);
  }
}

TraceRecorder::~TraceRecorder() {
  // Never throw out of a destructor (the recorder may be unwinding with the
  // rest of a failed session): contain a failing final flush and report it.
  try {
    finalize();
  } catch (const std::exception& err) {
    std::fprintf(stderr, "TraceRecorder: finalize failed: %s\n", err.what());
  } catch (...) {
    std::fprintf(stderr, "TraceRecorder: finalize failed\n");
  }
}

void TraceRecorder::on_finish(const vm::RunOutcome& outcome) {
  (void)outcome;  // total_retired already arrived via on_session_end
  finalize();
}

void TraceRecorder::finalize() {
  if (finalized_) return;
  finalized_ = true;
  if (writer_) {
    encoded_ = writer_->finish(trace_.total_retired);
    encoded_bytes_ = encoded_.size();
    blocks_written_ = writer_->block_count();
  }
}

void TraceRecorder::push(const Record& record) {
  last_retired_ = record.retired;
  ++records_written_;
  if (writer_) {
    writer_->add(record);
  } else {
    trace_.records.push_back(record);
  }
}

void TraceRecorder::on_rtn_enter(std::uint32_t func) {
  stack_.on_enter(func);
  Record record{};
  record.retired = last_retired_;
  record.ea = func;
  record.kernel = static_cast<std::uint16_t>(
      stack_.top() == tquad::kNoKernel ? kNoKernel16 : stack_.top());
  record.func = static_cast<std::uint16_t>(func);
  record.kind = EventKind::kEnter;
  push(record);
}

void TraceRecorder::on_instr(const vm::InstrEvent& event) {
  if (!event.executed) return;
  const std::uint32_t top = stack_.top();
  const std::uint16_t kernel =
      top == tquad::kNoKernel ? kNoKernel16 : static_cast<std::uint16_t>(top);

  auto emit = [&](EventKind kind, std::uint64_t ea, std::uint32_t size,
                  std::uint8_t flags) {
    Record record{};
    record.retired = event.retired;
    record.ea = ea;
    record.pc = event.pc;
    record.kernel = kernel;
    record.func = static_cast<std::uint16_t>(event.func);
    record.kind = kind;
    record.size = static_cast<std::uint8_t>(size);
    record.flags = flags;
    push(record);
  };

  if (event.read.size != 0) {
    std::uint8_t flags = 0;
    if (vm::is_stack_addr(event.read.ea, event.sp)) flags |= kFlagStackArea;
    if (event.prefetch) flags |= kFlagPrefetch;
    emit(EventKind::kRead, event.read.ea, event.read.size, flags);
  }
  if (event.write.size != 0) {
    std::uint8_t flags = 0;
    if (vm::is_stack_addr(event.write.ea, event.sp)) flags |= kFlagStackArea;
    emit(EventKind::kWrite, event.write.ea, event.write.size, flags);
  }
  if (isa::is_ret(event.ins->op)) {
    emit(EventKind::kRet, 0, 0, 0);
    stack_.on_ret(event.func);
  }
}

void TraceRecorder::on_program_end(std::uint64_t retired) {
  trace_.total_retired = retired;
}

// ---- session-mode consumer ------------------------------------------------------
//
// The shared attribution pass already supplies the kernel on top of the
// stack and the stack-area classification, so these overrides just build
// the same Records the standalone listener would: byte-identical output.

namespace {

std::uint16_t kernel16(std::uint32_t kernel) noexcept {
  return kernel == tquad::kNoKernel ? kNoKernel16
                                    : static_cast<std::uint16_t>(kernel);
}

}  // namespace

void TraceRecorder::on_kernel_enter(const session::EnterEvent& event) {
  Record record{};
  record.retired = last_retired_;
  record.ea = event.func;
  record.kernel = kernel16(event.kernel);
  record.func = static_cast<std::uint16_t>(event.func);
  record.kind = EventKind::kEnter;
  push(record);
}

void TraceRecorder::on_access(const session::AccessEvent& event) {
  Record record{};
  record.retired = event.retired;
  record.ea = event.ea;
  record.pc = event.pc;
  record.kernel = kernel16(event.kernel);
  record.func = static_cast<std::uint16_t>(event.func);
  record.kind = event.is_read ? EventKind::kRead : EventKind::kWrite;
  record.size = static_cast<std::uint8_t>(event.size);
  if (event.is_stack) record.flags |= kFlagStackArea;
  if (event.is_prefetch) record.flags |= kFlagPrefetch;
  push(record);
}

void TraceRecorder::on_kernel_ret(const session::RetEvent& event) {
  Record record{};
  record.retired = event.retired;
  record.pc = event.pc;
  record.kernel = kernel16(event.kernel);
  record.func = static_cast<std::uint16_t>(event.func);
  record.kind = EventKind::kRet;
  push(record);
}

void TraceRecorder::on_session_end(std::uint64_t total_retired) {
  trace_.total_retired = total_retired;
}

Trace TraceRecorder::take() {
  TQUAD_CHECK(!writer_, "take() needs a v1 recorder; v2 mode streamed the records");
  return std::move(trace_);
}

std::vector<std::uint8_t> TraceRecorder::take_encoded() {
  if (writer_) {
    finalize();
    return std::move(encoded_);
  }
  std::vector<std::uint8_t> bytes = take().serialize();
  encoded_bytes_ = bytes.size();
  return bytes;
}

void TraceRecorder::publish_metrics(metrics::Registry& registry) const {
  registry.add("trace.write.records", records_written_);
  registry.add("trace.write.bytes", encoded_bytes_);
  const std::uint64_t raw = records_written_ * kRecordDiskBytes;
  registry.add("trace.write.raw_bytes", raw);
  if (encoded_bytes_ > 0) {
    registry.set_gauge("trace.write.compression_ratio_x1000",
                       raw * 1000 / encoded_bytes_);
  }
  registry.add("trace.write.crc_blocks", blocks_written_);
}

// ---- replay ----------------------------------------------------------------------

void replay(const Trace& trace, TraceSink& sink) {
  for (const Record& record : trace.records) {
    sink.on_record(record);
  }
  sink.on_end(trace);
}

// ---- OfflineBandwidth --------------------------------------------------------------

OfflineBandwidth::OfflineBandwidth(std::uint32_t kernel_count,
                                   std::uint64_t slice_interval)
    : kernels_(kernel_count), slice_interval_(slice_interval) {
  TQUAD_CHECK(slice_interval_ > 0, "slice interval must be positive");
}

namespace {

/// Accumulates record spans into per-kernel sample vectors with the same
/// open-slice logic as the online recorder. feed() may be called repeatedly
/// (v2 aggregation feeds one decoded block at a time); finish() flushes the
/// open slices.
class SliceAccumulator {
 public:
  SliceAccumulator(std::size_t kernel_count, std::uint64_t slice_interval)
      : out_(kernel_count), open_(kernel_count), slice_interval_(slice_interval) {}

  void feed(std::span<const Record> records) {
    for (const Record& record : records) {
      if (record.kernel == kNoKernel16) continue;
      if (record.kind != EventKind::kRead && record.kind != EventKind::kWrite) {
        continue;
      }
      if (record.flags & kFlagPrefetch) continue;  // paper: skip prefetches
      TQUAD_DCHECK(record.kernel < out_.size(), "kernel id out of range in trace");
      const std::uint64_t slice = record.retired / slice_interval_;
      Open& slot = open_[record.kernel];
      if (slot.slice != slice) {
        if (slot.slice != ~0ull && !slot.counters.empty()) {
          out_[record.kernel].push_back(tquad::SliceSample{slot.slice, slot.counters});
        }
        slot.slice = slice;
        slot.counters.clear();
      }
      const bool stack_area = record.flags & kFlagStackArea;
      if (record.kind == EventKind::kRead) {
        slot.counters.read_incl += record.size;
        if (!stack_area) slot.counters.read_excl += record.size;
      } else {
        slot.counters.write_incl += record.size;
        if (!stack_area) slot.counters.write_excl += record.size;
      }
    }
  }

  std::vector<std::vector<tquad::SliceSample>> finish() {
    for (std::size_t k = 0; k < out_.size(); ++k) {
      if (open_[k].slice != ~0ull && !open_[k].counters.empty()) {
        out_[k].push_back(tquad::SliceSample{open_[k].slice, open_[k].counters});
      }
    }
    return std::move(out_);
  }

 private:
  struct Open {
    std::uint64_t slice = ~0ull;
    tquad::SliceCounters counters;
  };

  std::vector<std::vector<tquad::SliceSample>> out_;
  std::vector<Open> open_;
  std::uint64_t slice_interval_;
};

}  // namespace

void OfflineBandwidth::merge_partial(std::uint32_t kernel,
                                     std::vector<tquad::SliceSample>&& samples) {
  auto& dest = kernels_[kernel];
  for (auto& sample : samples) {
    max_slice_ = std::max(max_slice_, sample.slice);
    dest.totals.merge(sample.counters);
    if (!dest.series.empty() && dest.series.back().slice == sample.slice) {
      dest.series.back().counters.merge(sample.counters);  // shard seam
    } else {
      TQUAD_DCHECK(dest.series.empty() || dest.series.back().slice < sample.slice,
                   "trace records out of order");
      dest.series.push_back(sample);
    }
  }
}

void OfflineBandwidth::aggregate(const Trace& trace) {
  SliceAccumulator acc(kernels_.size(), slice_interval_);
  acc.feed(trace.records);
  auto samples = acc.finish();
  for (std::uint32_t k = 0; k < kernels_.size(); ++k) {
    merge_partial(k, std::move(samples[k]));
  }
}

void OfflineBandwidth::aggregate_parallel(const Trace& trace, ThreadPool& pool) {
  const std::uint64_t total = trace.records.size();
  if (total == 0) return;
  const unsigned blocks =
      static_cast<unsigned>(std::min<std::uint64_t>(pool.size(), total));
  std::vector<std::vector<std::vector<tquad::SliceSample>>> partials(blocks);
  parallel_for_blocks(
      pool, 0, total,
      [&](std::uint64_t begin, std::uint64_t end, unsigned block) {
        SliceAccumulator acc(kernels_.size(), slice_interval_);
        acc.feed(std::span<const Record>(trace.records.data() + begin, end - begin));
        partials[block] = acc.finish();
      });
  for (unsigned block = 0; block < blocks; ++block) {
    for (std::uint32_t k = 0; k < kernels_.size(); ++k) {
      merge_partial(k, std::move(partials[block][k]));
    }
  }
}

void OfflineBandwidth::aggregate_parallel(const TraceV2View& view, ThreadPool& pool) {
  const std::uint64_t total = view.block_count();
  if (total == 0) return;
  const unsigned shards =
      static_cast<unsigned>(std::min<std::uint64_t>(pool.size(), total));
  std::vector<std::vector<std::vector<tquad::SliceSample>>> partials(shards);
  // Pool tasks must not throw; trap decode errors and rethrow on the caller.
  std::vector<std::exception_ptr> errors(shards);
  parallel_for_blocks(
      pool, 0, total,
      [&](std::uint64_t begin, std::uint64_t end, unsigned shard) {
        try {
          SliceAccumulator acc(kernels_.size(), slice_interval_);
          for (std::uint64_t b = begin; b < end; ++b) {
            const std::vector<Record> records = view.decode_block(b);
            acc.feed(records);
          }
          partials[shard] = acc.finish();
        } catch (...) {
          errors[shard] = std::current_exception();
        }
      });
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  for (unsigned shard = 0; shard < shards; ++shard) {
    for (std::uint32_t k = 0; k < kernels_.size(); ++k) {
      merge_partial(k, std::move(partials[shard][k]));
    }
  }
}

const tquad::KernelBandwidth& OfflineBandwidth::kernel(std::uint32_t id) const {
  TQUAD_CHECK(id < kernels_.size(), "kernel id out of range");
  return kernels_[id];
}

}  // namespace tq::trace
