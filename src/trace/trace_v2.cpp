#include "trace/trace_v2.hpp"

#include <algorithm>
#include <cstring>

#include "support/check.hpp"
#include "support/crc32c.hpp"
#include "trace/wire.hpp"

namespace tq::trace {

namespace {

constexpr std::uint32_t kMagic = 0x52545154;  // "TQTR"
constexpr std::uint8_t kDefinedFlags = kFlagStackArea | kFlagPrefetch;

// Tag byte: bits 0-1 kind, 2-3 flags, 4-6 size code, 7 context-repeat
// (kernel/func equal the previous record in the block; their varints are
// omitted). pc is not part of the repeat set: a loop body walks several
// distinct pcs per iteration, so pc gets its own zigzag delta instead.
constexpr std::uint8_t kTagCtxRepeat = 0x80;

// Size codes 0..6 for the common access widths of kRead/kWrite; 7 means a
// literal size byte follows the tag. kEnter/kRet use code 0 for their
// (constant) size 0.
constexpr std::uint8_t kAccessSizes[7] = {1, 2, 4, 8, 16, 32, 64};
constexpr std::uint8_t kSizeLiteral = 7;

std::uint8_t size_code(EventKind kind, std::uint8_t size) {
  if (kind == EventKind::kRead || kind == EventKind::kWrite) {
    for (std::uint8_t code = 0; code < 7; ++code) {
      if (kAccessSizes[code] == size) return code;
    }
    return kSizeLiteral;
  }
  return size == 0 ? 0 : kSizeLiteral;
}

std::uint64_t delta_u64(std::uint64_t value, std::uint64_t previous) {
  // Wraparound difference, zigzagged: the shortest signed distance wins, so
  // a max-u64 jump backwards still costs one byte.
  return wire::zigzag_encode(static_cast<std::int64_t>(value - previous));
}

std::uint64_t apply_delta(std::uint64_t previous, std::uint64_t zigzag) {
  return previous + static_cast<std::uint64_t>(wire::zigzag_decode(zigzag));
}

std::size_t block_header_bytes(std::uint32_t minor) {
  return minor >= kV2MinorCrc ? kV2BlockHeaderBytes : kV2LegacyBlockHeaderBytes;
}

/// The CRC covers the 32 header bytes shared with v2.0 plus the payload —
/// everything except the CRC word itself and the reserved word after it.
std::uint32_t block_crc(std::span<const std::uint8_t> bytes, const BlockInfo& info) {
  const std::uint32_t head =
      crc32c(bytes.data() + info.file_offset, kV2LegacyBlockHeaderBytes);
  return crc32c(bytes.data() + info.file_offset + kV2BlockHeaderBytes,
                info.payload_bytes, head);
}

}  // namespace

bool is_v2_image(std::span<const std::uint8_t> bytes) noexcept {
  // Magic "TQTR" then a version word whose low half is major 2 (any minor).
  return bytes.size() >= 8 && bytes[0] == 'T' && bytes[1] == 'Q' &&
         bytes[2] == 'T' && bytes[3] == 'R' && bytes[4] == kV2VersionMajor &&
         bytes[5] == 0;
}

// ---- TraceV2Writer ---------------------------------------------------------------

TraceV2Writer::TraceV2Writer(std::uint32_t kernel_count, std::uint32_t block_capacity,
                             std::uint32_t minor)
    : block_capacity_(block_capacity), minor_(minor) {
  TQUAD_CHECK(block_capacity_ >= 1 && block_capacity_ <= kMaxBlockCapacity,
              "TQTR v2 block capacity out of range");
  TQUAD_CHECK(minor_ <= kV2MinorCrc, "TQTR v2 minor version out of range");
  // Header now; total_retired / record_count / index_offset patched by
  // finish().
  wire::put_u32(out_, kMagic);
  wire::put_u32(out_, v2_version_word(minor_));
  wire::put_u32(out_, kernel_count);
  wire::put_u32(out_, block_capacity_);
  wire::put_u64(out_, 0);
  wire::put_u64(out_, 0);
  wire::put_u64(out_, 0);
}

void TraceV2Writer::add(const Record& record) {
  TQUAD_CHECK(!finished_, "TraceV2Writer reused after finish()");
  if (static_cast<std::uint8_t>(record.kind) >
      static_cast<std::uint8_t>(EventKind::kWrite)) {
    TQUAD_THROW("TQTR v2: record kind out of range");
  }
  if (record.flags & ~kDefinedFlags) {
    TQUAD_THROW("TQTR v2: undefined flag bits are not representable");
  }
  if (block_records_ == 0) {
    block_first_retired_ = record.retired;
    prev_retired_ = record.retired;
  }

  const std::uint8_t code = size_code(record.kind, record.size);
  const bool repeat = block_records_ > 0 && record.kernel == prev_kernel_ &&
                      record.func == prev_func_;
  std::uint8_t tag = static_cast<std::uint8_t>(record.kind) |
                     static_cast<std::uint8_t>(record.flags << 2) |
                     static_cast<std::uint8_t>(code << 4);
  if (repeat) tag |= kTagCtxRepeat;
  wire::put_u8(payload_, tag);
  if (code == kSizeLiteral) wire::put_u8(payload_, record.size);
  wire::put_varint(payload_, delta_u64(record.retired, prev_retired_));
  const auto kind_index = static_cast<std::size_t>(record.kind);
  wire::put_varint(payload_, delta_u64(record.ea, prev_ea_[kind_index]));
  wire::put_varint(payload_, delta_u64(record.pc, prev_pc_));
  if (!repeat) {
    wire::put_varint(payload_, record.kernel);
    wire::put_varint(payload_, record.func);
  }

  prev_retired_ = record.retired;
  prev_ea_[kind_index] = record.ea;
  prev_pc_ = record.pc;
  prev_kernel_ = record.kernel;
  prev_func_ = record.func;
  block_last_retired_ = record.retired;
  block_bloom_ |= 1ull << (record.kernel & 63);
  ++record_count_;
  if (++block_records_ == block_capacity_) flush_block();
}

void TraceV2Writer::flush_block() {
  BlockInfo info;
  info.file_offset = out_.size();
  info.record_count = block_records_;
  info.payload_bytes = static_cast<std::uint32_t>(payload_.size());
  info.first_retired = block_first_retired_;
  info.last_retired = block_last_retired_;
  info.kernel_bloom = block_bloom_;
  blocks_.push_back(info);

  wire::put_u32(out_, info.record_count);
  wire::put_u32(out_, info.payload_bytes);
  wire::put_u64(out_, info.first_retired);
  wire::put_u64(out_, info.last_retired);
  wire::put_u64(out_, info.kernel_bloom);
  if (minor_ >= kV2MinorCrc) {
    // CRC over the 32 header bytes just written plus the payload.
    const std::uint32_t head =
        crc32c(out_.data() + info.file_offset, kV2LegacyBlockHeaderBytes);
    blocks_.back().crc = crc32c(payload_.data(), payload_.size(), head);
    wire::put_u32(out_, blocks_.back().crc);
    wire::put_u32(out_, 0);  // reserved
  }
  out_.insert(out_.end(), payload_.begin(), payload_.end());

  payload_.clear();
  block_records_ = 0;
  block_bloom_ = 0;
  prev_retired_ = 0;
  std::fill(std::begin(prev_ea_), std::end(prev_ea_), 0);
  prev_pc_ = 0;
  prev_kernel_ = 0;
  prev_func_ = 0;
}

std::vector<std::uint8_t> TraceV2Writer::finish(std::uint64_t total_retired) {
  TQUAD_CHECK(!finished_, "TraceV2Writer reused after finish()");
  finished_ = true;
  if (block_records_ > 0) flush_block();
  const std::uint64_t index_offset = out_.size();
  wire::put_u32(out_, static_cast<std::uint32_t>(blocks_.size()));
  for (const BlockInfo& info : blocks_) {
    wire::put_u64(out_, info.file_offset);
    wire::put_u64(out_, info.first_retired);
  }
  auto patch_u64 = [&](std::size_t offset, std::uint64_t v) {
    std::memcpy(out_.data() + offset, &v, 8);
  };
  patch_u64(16, total_retired);
  patch_u64(24, record_count_);
  patch_u64(32, index_offset);
  return std::move(out_);
}

std::vector<std::uint8_t> serialize_v2(const Trace& trace,
                                       std::uint32_t block_capacity) {
  TraceV2Writer writer(trace.kernel_count, block_capacity);
  for (const Record& record : trace.records) writer.add(record);
  return writer.finish(trace.total_retired);
}

// ---- TraceV2View -----------------------------------------------------------------

namespace {

/// Parse and validate the 40-byte file header into an empty view (no block
/// scan). Shared by the strict and salvage open paths — both insist on a
/// sane file header; nothing is recoverable without one.
TraceV2View::HeaderFields parse_file_header(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kV2FileHeaderBytes) {
    TQUAD_THROW("TQTR v2 trace too short for a header");
  }
  wire::ByteReader header(bytes);
  if (header.u32() != kMagic) TQUAD_THROW("not a TQTR trace (bad magic)");
  const std::uint32_t version = header.u32();
  if ((version & 0xffffu) != kV2VersionMajor) {
    TQUAD_THROW("not a TQTR v2 trace");
  }
  TraceV2View::HeaderFields fields;
  fields.minor = version >> 16;
  if (fields.minor > kV2MinorCrc) {
    TQUAD_THROW("TQTR v2 minor version from the future");
  }
  fields.kernel_count = header.u32();
  fields.block_capacity = header.u32();
  fields.total_retired = header.u64();
  fields.record_count = header.u64();
  fields.index_offset = header.u64();
  if (fields.block_capacity < 1 || fields.block_capacity > kMaxBlockCapacity) {
    TQUAD_THROW("TQTR v2 block capacity out of range");
  }
  return fields;
}

/// Read one block header at `offset`, bounds-checking against `limit` (the
/// index offset for strict opens, EOF for salvage scans). Field sanity
/// (record count vs. capacity) is the caller's call.
BlockInfo read_block_header(std::span<const std::uint8_t> bytes,
                            std::uint64_t offset, std::uint64_t limit,
                            std::uint32_t minor) {
  const std::size_t header_bytes = block_header_bytes(minor);
  if (offset + header_bytes > limit) {
    TQUAD_THROW("TQTR v2 block header overruns the index");
  }
  wire::ByteReader block_header(bytes.subspan(offset));
  BlockInfo info;
  info.file_offset = offset;
  info.record_count = block_header.u32();
  info.payload_bytes = block_header.u32();
  info.first_retired = block_header.u64();
  info.last_retired = block_header.u64();
  info.kernel_bloom = block_header.u64();
  if (minor >= kV2MinorCrc) {
    info.crc = block_header.u32();
    if (block_header.u32() != 0) {
      TQUAD_THROW("TQTR v2 block header reserved word is not zero");
    }
  }
  return info;
}

}  // namespace

TraceV2View TraceV2View::open(std::span<const std::uint8_t> bytes) {
  const HeaderFields fields = parse_file_header(bytes);
  TraceV2View view;
  view.bytes_ = bytes;
  view.minor_ = fields.minor;
  view.kernel_count_ = fields.kernel_count;
  view.block_capacity_ = fields.block_capacity;
  view.total_retired_ = fields.total_retired;
  view.record_count_ = fields.record_count;
  const std::uint64_t index_offset = fields.index_offset;
  const std::size_t header_bytes = block_header_bytes(view.minor_);
  if (index_offset < kV2FileHeaderBytes || index_offset > bytes.size() - 4) {
    TQUAD_THROW("TQTR v2 index offset out of bounds");
  }

  wire::ByteReader index(bytes.subspan(index_offset));
  const std::uint32_t block_count = index.u32();
  if (bytes.size() - index_offset - 4 !=
      static_cast<std::uint64_t>(block_count) * kV2IndexEntryBytes) {
    TQUAD_THROW("TQTR v2 index size mismatch");
  }

  view.blocks_.reserve(block_count);
  std::uint64_t expected_offset = kV2FileHeaderBytes;
  std::uint64_t total_records = 0;
  for (std::uint32_t i = 0; i < block_count; ++i) {
    const std::uint64_t offset = index.u64();
    const std::uint64_t index_first_retired = index.u64();
    if (offset != expected_offset) {
      TQUAD_THROW("TQTR v2 index entry does not point at the next block");
    }
    const BlockInfo info = read_block_header(bytes, offset, index_offset, view.minor_);
    if (info.record_count < 1 || info.record_count > view.block_capacity_) {
      TQUAD_THROW("TQTR v2 block record count out of range");
    }
    if (offset + header_bytes + info.payload_bytes > index_offset) {
      TQUAD_THROW("TQTR v2 block payload overruns the index");
    }
    if (info.first_retired != index_first_retired) {
      TQUAD_THROW("TQTR v2 index disagrees with the block header");
    }
    total_records += info.record_count;
    expected_offset = offset + header_bytes + info.payload_bytes;
    view.blocks_.push_back(info);
  }
  if (expected_offset != index_offset) {
    TQUAD_THROW("TQTR v2 blocks do not end at the index");
  }
  if (total_records != view.record_count_) {
    TQUAD_THROW("TQTR v2 header record count disagrees with the blocks");
  }
  return view;
}

TraceV2View TraceV2View::salvage(std::span<const std::uint8_t> bytes,
                                 SalvageReport* report) {
  const HeaderFields fields = parse_file_header(bytes);
  TraceV2View view;
  view.bytes_ = bytes;
  view.minor_ = fields.minor;
  view.kernel_count_ = fields.kernel_count;
  view.block_capacity_ = fields.block_capacity;
  const std::size_t header_bytes = block_header_bytes(view.minor_);

  SalvageReport local;
  SalvageReport& rep = report ? *report : local;
  rep = SalvageReport{};

  // Prefer the trailer index: it re-anchors the scan after a block whose
  // header (and so payload length) is unreadable. Fall back to a forward
  // scan from the file header when the index is missing or unusable — the
  // shape a mid-write truncation leaves behind (index offset still zero).
  std::vector<std::uint64_t> offsets;
  const std::uint64_t index_offset = fields.index_offset;
  std::uint64_t blocks_end = bytes.size();
  bool have_index = false;
  if (index_offset >= kV2FileHeaderBytes && index_offset <= bytes.size() - 4) {
    wire::ByteReader index(bytes.subspan(index_offset));
    const std::uint32_t block_count = index.u32();
    if (bytes.size() - index_offset - 4 ==
        static_cast<std::uint64_t>(block_count) * kV2IndexEntryBytes) {
      have_index = true;
      blocks_end = index_offset;
      offsets.reserve(block_count);
      for (std::uint32_t i = 0; i < block_count; ++i) {
        offsets.push_back(index.u64());
        (void)index.u64();  // first_retired: re-read from the block header
      }
    }
  }
  rep.index_rebuilt = !have_index;

  const auto drop = [&](std::uint64_t offset, std::uint32_t record_count,
                        std::string reason) {
    rep.dropped.push_back(
        {rep.blocks_found - 1, offset, record_count, std::move(reason)});
    rep.records_dropped += record_count;
  };

  std::uint64_t prev_last_retired = 0;
  std::uint64_t scan_offset = kV2FileHeaderBytes;
  for (std::size_t i = 0; have_index ? i < offsets.size()
                                     : scan_offset < blocks_end;
       ++i) {
    const std::uint64_t offset = have_index ? offsets[i] : scan_offset;
    ++rep.blocks_found;
    BlockInfo info;
    try {
      if (have_index && (offset < kV2FileHeaderBytes || offset >= blocks_end)) {
        TQUAD_THROW("TQTR v2 index entry out of bounds");
      }
      info = read_block_header(bytes, offset, blocks_end, view.minor_);
      if (info.record_count < 1 || info.record_count > view.block_capacity_) {
        TQUAD_THROW("TQTR v2 block record count out of range");
      }
      if (offset + header_bytes + info.payload_bytes > blocks_end) {
        TQUAD_THROW("TQTR v2 block payload truncated");
      }
    } catch (const Error& err) {
      // Unreadable header: without the index the payload length is unknown,
      // so the scan cannot re-anchor — everything from here on is lost.
      drop(offset, 0, err.what());
      if (!have_index) break;
      continue;
    }
    scan_offset = offset + header_bytes + info.payload_bytes;
    try {
      if (view.minor_ >= kV2MinorCrc && block_crc(bytes, info) != info.crc) {
        TQUAD_THROW("TQTR v2 block CRC mismatch");
      }
      // Trial-decode so a salvaged view never throws downstream (v2.0 has
      // no CRC, and even a CRC-clean block could carry a writer-side lie).
      (void)view.decode_payload(info);
      if (info.first_retired < prev_last_retired) {
        TQUAD_THROW("TQTR v2 block retired counts out of order");
      }
    } catch (const Error& err) {
      drop(offset, info.record_count, err.what());
      continue;
    }
    prev_last_retired = info.last_retired;
    ++rep.blocks_recovered;
    rep.records_recovered += info.record_count;
    view.blocks_.push_back(info);
  }

  view.record_count_ = rep.records_recovered;
  // An unfinished file still has the placeholder zero here; best effort is
  // "the trace ends right after its last surviving record".
  view.total_retired_ = fields.total_retired != 0
                            ? fields.total_retired
                            : (view.blocks_.empty()
                                   ? 0
                                   : view.blocks_.back().last_retired + 1);
  return view;
}

const BlockInfo& TraceV2View::block(std::size_t i) const {
  TQUAD_CHECK(i < blocks_.size(), "block index out of range");
  return blocks_[i];
}

std::vector<Record> TraceV2View::decode_block(std::size_t i) const {
  const BlockInfo& info = block(i);
  if (minor_ >= kV2MinorCrc && block_crc(bytes_, info) != info.crc) {
    TQUAD_THROW("TQTR v2 block CRC mismatch");
  }
  return decode_payload(info);
}

std::vector<Record> TraceV2View::decode_payload(const BlockInfo& info) const {
  wire::ByteReader reader(bytes_.subspan(
      info.file_offset + block_header_bytes(minor_), info.payload_bytes));
  std::vector<Record> records;
  records.reserve(info.record_count);

  std::uint64_t prev_retired = info.first_retired;
  std::uint64_t prev_ea[4] = {0, 0, 0, 0};
  std::uint32_t prev_pc = 0;
  std::uint16_t prev_kernel = 0;
  std::uint16_t prev_func = 0;
  for (std::uint32_t n = 0; n < info.record_count; ++n) {
    const std::uint8_t tag = reader.u8();
    Record record{};
    record.kind = static_cast<EventKind>(tag & 0x3);
    record.flags = (tag >> 2) & 0x3;
    const std::uint8_t code = (tag >> 4) & 0x7;
    if (code == kSizeLiteral) {
      record.size = reader.u8();
    } else if (record.kind == EventKind::kRead || record.kind == EventKind::kWrite) {
      record.size = kAccessSizes[code];
    } else if (code == 0) {
      record.size = 0;
    } else {
      TQUAD_THROW("TQTR v2 record with bad size code");
    }
    record.retired = apply_delta(prev_retired, reader.varint());
    const auto kind_index = static_cast<std::size_t>(record.kind);
    record.ea = apply_delta(prev_ea[kind_index], reader.varint());
    const std::uint64_t pc = apply_delta(prev_pc, reader.varint());
    if (pc > 0xffffffffull) TQUAD_THROW("TQTR v2 record pc out of range");
    record.pc = static_cast<std::uint32_t>(pc);
    if (tag & kTagCtxRepeat) {
      record.kernel = prev_kernel;
      record.func = prev_func;
    } else {
      const std::uint64_t kernel = reader.varint();
      const std::uint64_t func = reader.varint();
      if (kernel > 0xffffull || func > 0xffffull) {
        TQUAD_THROW("TQTR v2 record field out of range");
      }
      record.kernel = static_cast<std::uint16_t>(kernel);
      record.func = static_cast<std::uint16_t>(func);
    }
    if (record.kernel != kNoKernel16 && record.kernel >= kernel_count_) {
      TQUAD_THROW("TQTR v2 record kernel id out of range");
    }
    if (((info.kernel_bloom >> (record.kernel & 63)) & 1) == 0) {
      TQUAD_THROW("TQTR v2 block bloom disagrees with its records");
    }
    prev_retired = record.retired;
    prev_ea[kind_index] = record.ea;
    prev_pc = record.pc;
    prev_kernel = record.kernel;
    prev_func = record.func;
    records.push_back(record);
  }
  if (reader.remaining() != 0) {
    TQUAD_THROW("TQTR v2 block payload has trailing bytes");
  }
  if (records.front().retired != info.first_retired ||
      records.back().retired != info.last_retired) {
    TQUAD_THROW("TQTR v2 block header retired range disagrees with its records");
  }
  return records;
}

Trace TraceV2View::decode_all() const {
  Trace trace;
  trace.kernel_count = kernel_count_;
  trace.total_retired = total_retired_;
  trace.records.reserve(record_count_);
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    const std::vector<Record> records = decode_block(b);
    trace.records.insert(trace.records.end(), records.begin(), records.end());
  }
  return trace;
}

std::size_t TraceV2View::first_block_at(std::uint64_t retired) const {
  // Blocks are ordered by retired count; find the first whose range can
  // still contain `retired`.
  const auto it = std::lower_bound(
      blocks_.begin(), blocks_.end(), retired,
      [](const BlockInfo& info, std::uint64_t r) { return info.last_retired < r; });
  return static_cast<std::size_t>(it - blocks_.begin());
}

std::uint64_t replay_range(const TraceV2View& view, std::uint64_t lo,
                           std::uint64_t hi, TraceSink& sink) {
  std::uint64_t delivered = 0;
  for (std::size_t b = view.first_block_at(lo); b < view.block_count(); ++b) {
    if (view.block(b).first_retired >= hi) break;
    for (const Record& record : view.decode_block(b)) {
      if (record.retired < lo || record.retired >= hi) continue;
      sink.on_record(record);
      ++delivered;
    }
  }
  return delivered;
}

}  // namespace tq::trace
