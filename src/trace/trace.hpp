// Trace record / replay.
//
// Online profiling couples analysis cost to execution: every run of the
// (slow) instrumented guest pays for every analysis. This module decouples
// them, the way production DBI setups do (Pin's logger/replayer tools):
//
//   * TraceRecorder is an ExecListener that captures the profiler-relevant
//     event stream — routine entries/returns and memory accesses, each
//     pre-attributed to the kernel on top of the call stack and pre-classified
//     stack/global — serialisable to the "TQTR" file family: v1 is a flat
//     28-bytes/event array, v2 (trace_v2.hpp) a block-compressed layout
//     ~4-6x smaller that also enables block-parallel replay. Readers
//     auto-detect the version.
//   * replay() feeds a recorded trace back into any TraceSink, so many
//     analyses run from one guest execution.
//   * OfflineBandwidth aggregates a trace into the same per-kernel
//     per-slice counters tquad::BandwidthRecorder produces online — either
//     sequentially or sharded across a ThreadPool (records are
//     pre-attributed, so aggregation is embarrassingly parallel; partial
//     slices at shard boundaries merge by addition). v2 traces shard by
//     whole blocks straight from the encoded bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "session/events.hpp"
#include "support/thread_pool.hpp"
#include "tquad/bandwidth.hpp"
#include "tquad/callstack.hpp"
#include "vm/machine.hpp"

namespace tq::metrics {
class Registry;
}  // namespace tq::metrics

namespace tq::trace {

/// Event kinds stored in a trace.
enum class EventKind : std::uint8_t {
  kEnter = 0,  ///< routine entry; `ea` holds the entered function id
  kRet = 1,    ///< return executed inside `func`
  kRead = 2,   ///< memory read of `size` bytes at `ea`
  kWrite = 3,  ///< memory write of `size` bytes at `ea`
};

/// Flag bits.
enum : std::uint8_t {
  kFlagStackArea = 1u << 0,  ///< the access hits the local stack area
  kFlagPrefetch = 1u << 1,   ///< the access is a prefetch touch
};

/// One trace record. Serialised field-by-field (kRecordDiskBytes on disk in
/// v1, delta/varint-coded in v2), so the formats never depend on host struct
/// padding; little-endian hosts only, like the rest of the image formats.
struct Record {
  std::uint64_t retired;  ///< instruction count before the event
  std::uint64_t ea;       ///< effective address (or entered function id)
  std::uint32_t pc;       ///< instruction index within `func`
  std::uint16_t kernel;   ///< attributed kernel (0xffff = unattributed)
  std::uint16_t func;     ///< function executing the instruction
  EventKind kind;
  std::uint8_t size;      ///< access width in bytes
  std::uint8_t flags;     ///< kFlag* bits
  std::uint8_t reserved;
};

/// On-disk size of one v1 record: the packed field sizes, independent of
/// host padding.
inline constexpr std::size_t kRecordDiskBytes = 28;
static_assert(sizeof(Record::retired) + sizeof(Record::ea) + sizeof(Record::pc) +
                  sizeof(Record::kernel) + sizeof(Record::func) +
                  sizeof(Record::kind) + sizeof(Record::size) +
                  sizeof(Record::flags) + sizeof(Record::reserved) ==
              kRecordDiskBytes,
              "Record field layout drifted");
static_assert(std::is_trivially_copyable_v<Record>, "Record must stay POD");

inline constexpr std::uint16_t kNoKernel16 = 0xffff;

/// On-disk trace container formats (the version field of the shared "TQTR"
/// magic). Readers auto-detect; writers pick via this enum.
enum class TraceFormat : std::uint32_t {
  kV1 = 1,  ///< flat record array, kRecordDiskBytes/event
  kV2 = 2,  ///< block-compressed, delta/varint coded (trace_v2.hpp)
};

/// A recorded trace plus the metadata needed to interpret it.
struct Trace {
  std::vector<Record> records;
  std::uint64_t total_retired = 0;
  std::uint32_t kernel_count = 0;

  /// Serialise to the flat TQTR v1 byte format (field-by-field; see
  /// serialize_v2() in trace_v2.hpp for the compressed container).
  std::vector<std::uint8_t> serialize() const;

  /// Decode a TQTR image of either version, auto-detected from the header
  /// (throws tq::Error on malformed input).
  static Trace deserialize(std::span<const std::uint8_t> bytes);
};

class TraceV2Writer;  // trace_v2.hpp
class TraceV2View;    // trace_v2.hpp

/// Records the profiler-relevant event stream of one guest run.
///
/// Attribution follows the same call-stack rules as the online tools
/// (tquad::CallStack with the given library policy); accesses with no
/// attributable kernel are recorded with kernel = kNoKernel16 so offline
/// consumers can choose to keep or drop them.
///
/// In TraceFormat::kV1 mode records are buffered in memory (take() hands
/// them out). In kV2 mode they stream through a TraceV2Writer block encoder
/// as they happen — memory stays proportional to the *compressed* trace —
/// and take_encoded() returns the finished file image.
///
/// The recorder runs as a vm::ExecListener (standalone, its own CallStack)
/// or as a session::AnalysisConsumer on a ProfileSession sharing one run —
/// and thus one attribution pass — with the other tools. Both modes emit
/// byte-identical traces for the same run and library policy.
class TraceRecorder final : public vm::ExecListener,
                            public session::AnalysisConsumer {
 public:
  TraceRecorder(const vm::Program& program,
                tquad::LibraryPolicy policy = tquad::LibraryPolicy::kExclude,
                TraceFormat format = TraceFormat::kV1);
  ~TraceRecorder() override;  // out-of-line: TraceV2Writer is incomplete here

  // vm::ExecListener (standalone mode).
  void on_rtn_enter(std::uint32_t func) override;
  void on_instr(const vm::InstrEvent& event) override;
  void on_program_end(std::uint64_t retired) override;

  // session::AnalysisConsumer (session mode). Ticks carry nothing a trace
  // stores — the retired counters on the other records imply them.
  unsigned event_interests() const override {
    return kEnterInterest | kAccessInterest | kRetInterest;
  }
  void on_kernel_enter(const session::EnterEvent& event) override;
  void on_access(const session::AccessEvent& event) override;
  void on_kernel_ret(const session::RetEvent& event) override;
  void on_session_end(std::uint64_t total_retired) override;
  void on_finish(const vm::RunOutcome& outcome) override;

  /// Seal the trace: flush the open v2 block and append the file index.
  /// Idempotent; runs on every session outcome (on_finish) — including
  /// guest traps and truncation — and from take_encoded(), so a trace
  /// recorded up to a fault is a complete, replayable file.
  void finalize();

  /// Take the finished in-memory trace (v1 mode only; the recorder is
  /// spent). In v2 mode the records were streamed out — use take_encoded().
  Trace take();

  /// Serialise the finished trace in the recorder's format (call after the
  /// run; the recorder is spent).
  std::vector<std::uint8_t> take_encoded();

  /// Self-observability: records/bytes written, the raw-equivalent volume
  /// (records x 28 B), the resulting compression ratio, and the CRC'd block
  /// count, under trace.write.* names. Call after take_encoded().
  void publish_metrics(metrics::Registry& registry) const;

 private:
  void push(const Record& record);

  tquad::CallStack stack_;  ///< standalone attribution; idle in session mode
  Trace trace_;
  std::unique_ptr<TraceV2Writer> writer_;   ///< non-null in kV2 mode
  std::vector<std::uint8_t> encoded_;       ///< sealed v2 image (finalize())
  std::uint64_t last_retired_ = 0;
  std::uint64_t records_written_ = 0;
  std::uint64_t encoded_bytes_ = 0;   ///< set by take_encoded()/finalize()
  std::uint64_t blocks_written_ = 0;  ///< v2 only
  bool finalized_ = false;
};

/// Consumer interface for replay().
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_record(const Record& record) = 0;
  virtual void on_end(const Trace& trace) { (void)trace; }
};

/// Feed every record of `trace` to `sink` in order.
void replay(const Trace& trace, TraceSink& sink);

/// Offline per-kernel per-slice aggregation, equivalent to the online
/// tquad::BandwidthRecorder for the same run and slice interval.
class OfflineBandwidth {
 public:
  OfflineBandwidth(std::uint32_t kernel_count, std::uint64_t slice_interval);

  /// Sequential aggregation.
  void aggregate(const Trace& trace);

  /// Sharded aggregation on `pool`: each worker accumulates a disjoint
  /// record range, partial slices merge by addition. Results are identical
  /// to the sequential path.
  void aggregate_parallel(const Trace& trace, ThreadPool& pool);

  /// Block-parallel aggregation straight from an encoded v2 image: workers
  /// decode and accumulate whole blocks (bounded memory, no flat Record
  /// array), using the block index for work division. Results are identical
  /// to the sequential path. Decode errors rethrow as tq::Error.
  void aggregate_parallel(const TraceV2View& view, ThreadPool& pool);

  std::uint64_t slice_interval() const noexcept { return slice_interval_; }
  const tquad::KernelBandwidth& kernel(std::uint32_t id) const;
  std::size_t kernel_count() const noexcept { return kernels_.size(); }
  std::uint64_t max_slice() const noexcept { return max_slice_; }

 private:
  void merge_partial(std::uint32_t kernel,
                     std::vector<tquad::SliceSample>&& samples);

  std::vector<tquad::KernelBandwidth> kernels_;
  std::uint64_t slice_interval_;
  std::uint64_t max_slice_ = 0;
};

}  // namespace tq::trace
