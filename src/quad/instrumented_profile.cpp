#include "quad/instrumented_profile.hpp"

#include <algorithm>

namespace tq::quad {

const char* trend_arrow(Trend trend) noexcept {
  switch (trend) {
    case Trend::kStrongUp: return "↑↑";
    case Trend::kUp: return "↑";
    case Trend::kFlat: return "↔";
    case Trend::kDown: return "↓";
    case Trend::kStrongDown: return "↓↓";
  }
  return "?";
}

namespace {

Trend classify(double base, double instrumented) {
  if (base <= 0.0) return instrumented > 0.0 ? Trend::kStrongUp : Trend::kFlat;
  const double ratio = instrumented / base;
  if (ratio >= 2.0) return Trend::kStrongUp;
  if (ratio >= 1.25) return Trend::kUp;
  if (ratio <= 0.25) return Trend::kStrongDown;
  if (ratio <= 0.8) return Trend::kDown;
  return Trend::kFlat;
}

}  // namespace

std::vector<InstrumentedRow> instrumented_profile(const QuadTool& tool,
                                                  const std::vector<BaseShare>& base,
                                                  const CostModel& model) {
  // Total cost over *all* kernels, so fractions are shares of the whole run.
  std::uint64_t total_cost = 0;
  for (std::uint32_t k = 0; k < tool.kernel_count(); ++k) {
    total_cost += tool.instrumented_cost(k, model);
  }
  std::vector<InstrumentedRow> rows;
  rows.reserve(base.size());
  for (const BaseShare& share : base) {
    InstrumentedRow row;
    row.kernel = share.kernel;
    row.name = tool.kernel_name(share.kernel);
    row.base_fraction = share.fraction;
    row.cost = tool.instrumented_cost(share.kernel, model);
    row.instrumented_fraction =
        total_cost == 0 ? 0.0
                        : static_cast<double>(row.cost) / static_cast<double>(total_cost);
    row.trend = classify(row.base_fraction, row.instrumented_fraction);
    rows.push_back(std::move(row));
  }
  // Rank by instrumented share (1 = largest) without reordering the rows,
  // which follow the baseline table's order like Table III does.
  std::vector<std::size_t> order(rows.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rows[a].instrumented_fraction > rows[b].instrumented_fraction;
  });
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    rows[order[pos]].rank = static_cast<unsigned>(pos + 1);
  }
  return rows;
}

}  // namespace tq::quad
