#include "quad/shadow.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace tq::quad {

ShadowMemory::Page& ShadowMemory::touch_page(std::uint64_t page_no) {
  auto& slot = pages_[page_no];
  if (!slot) {
    slot = std::make_unique<Page>();
    std::fill(std::begin(slot->producers), std::end(slot->producers), kNoProducer);
  }
  return *slot;
}

void ShadowMemory::mark_write(std::uint64_t addr, std::uint32_t size,
                              ProducerId producer) {
  std::uint64_t cursor = addr;
  std::uint64_t remaining = size;
  while (remaining > 0) {
    Page& page = touch_page(cursor >> kPageBits);
    const std::uint64_t offset = cursor & (kPageSize - 1);
    const std::uint64_t in_page = std::min<std::uint64_t>(remaining, kPageSize - offset);
    std::fill(page.producers + offset, page.producers + offset + in_page, producer);
    cursor += in_page;
    remaining -= in_page;
  }
}

void ShadowMemory::adopt_disjoint(ShadowMemory&& other) {
  if (this == &other) return;
  for (auto& [page_no, page] : other.pages_) {
    const bool inserted = pages_.emplace(page_no, std::move(page)).second;
    TQUAD_CHECK(inserted, "shadow shards overlap: page owned by two shards");
  }
  other.pages_.clear();
}

ProducerId ShadowMemory::producer_of(std::uint64_t addr) const noexcept {
  const Page* page = find_page(addr >> kPageBits);
  if (page == nullptr) return kNoProducer;
  return page->producers[addr & (kPageSize - 1)];
}

}  // namespace tq::quad
