// Byte-granular shadow memory mapping every guest address to the kernel that
// last wrote it — the mechanism behind QUAD's producer/consumer bindings
// (Ostadzadeh et al., "QUAD — a memory access pattern analyser", ARC 2010,
// reference [4] of the tQUAD paper).
//
// Layout mirrors PagedMemory: a hash map of 4 KiB pages, each holding one
// 16-bit producer id per byte. Pages materialise on first write; reads of
// unwritten memory report kNoProducer.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "support/paged_memory.hpp"

namespace tq::quad {

/// Producer id stored per byte. 16 bits bound the tool to 65534 kernels,
/// ample for real programs (hArtes wfs has 64 functions).
using ProducerId = std::uint16_t;
inline constexpr ProducerId kNoProducer = 0xffff;

/// Sparse map: byte address -> last-writing kernel.
class ShadowMemory {
 public:
  static constexpr std::uint64_t kPageBits = PagedMemory::kPageBits;
  static constexpr std::uint64_t kPageSize = PagedMemory::kPageSize;

  ShadowMemory() = default;
  ShadowMemory(const ShadowMemory&) = delete;
  ShadowMemory& operator=(const ShadowMemory&) = delete;

  /// Record `producer` as the last writer of [addr, addr+size).
  void mark_write(std::uint64_t addr, std::uint32_t size, ProducerId producer);

  /// Producer of one byte (kNoProducer when never written).
  ProducerId producer_of(std::uint64_t addr) const noexcept;

  /// Adopt every page of `other`, leaving it empty. The page sets must be
  /// disjoint (the sharded-pipeline invariant: accesses are routed to shards
  /// by page number, so no page materialises in two shards); a collision is
  /// a routing bug and trips a check.
  void adopt_disjoint(ShadowMemory&& other);

  /// Visit the producer of every byte in [addr, addr+size):
  /// `visit(producer, run_length)` is called per maximal same-producer run.
  template <typename Visit>
  void for_each_producer(std::uint64_t addr, std::uint32_t size, Visit&& visit) const {
    std::uint64_t cursor = addr;
    std::uint64_t remaining = size;
    while (remaining > 0) {
      const Page* page = find_page(cursor >> kPageBits);
      const std::uint64_t offset = cursor & (kPageSize - 1);
      const std::uint64_t in_page = std::min<std::uint64_t>(remaining, kPageSize - offset);
      if (page == nullptr) {
        visit(kNoProducer, static_cast<std::uint32_t>(in_page));
      } else {
        // Coalesce runs of the same producer within the page.
        std::uint64_t run_start = offset;
        ProducerId run_producer = page->producers[offset];
        for (std::uint64_t i = offset + 1; i < offset + in_page; ++i) {
          if (page->producers[i] != run_producer) {
            visit(run_producer, static_cast<std::uint32_t>(i - run_start));
            run_start = i;
            run_producer = page->producers[i];
          }
        }
        visit(run_producer, static_cast<std::uint32_t>(offset + in_page - run_start));
      }
      cursor += in_page;
      remaining -= in_page;
    }
  }

  std::size_t resident_pages() const noexcept { return pages_.size(); }
  std::size_t resident_bytes() const noexcept {
    return pages_.size() * kPageSize * sizeof(ProducerId);
  }

 private:
  struct Page {
    ProducerId producers[kPageSize];
  };

  const Page* find_page(std::uint64_t page_no) const noexcept {
    auto it = pages_.find(page_no);
    return it == pages_.end() ? nullptr : it->second.get();
  }
  Page& touch_page(std::uint64_t page_no);

  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

}  // namespace tq::quad
