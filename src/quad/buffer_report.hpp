// Buffer-level data maps: QUAD's per-address UnMA sets projected onto the
// image's named global buffers.
//
// Table II's counts are per kernel over the whole address space; for the
// partitioning decisions the paper walks through ("provided that the
// corresponding input buffer is also placed on the chip") the mapper needs
// to know *which* buffers a kernel touches and how completely — e.g. that
// fft1d's working set is exactly the X/Y spectra plus the filter tables,
// and that AudioIo_setFrames writes every byte of the frame store once.
// This report answers that, using the TQIM globals table as the data-symbol
// information.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "quad/quad_tool.hpp"
#include "support/table.hpp"
#include "vm/program.hpp"

namespace tq::quad {

/// One (kernel, buffer) interaction. Coverage is the fraction of the
/// buffer's bytes the kernel touched at least once (stack excluded — these
/// are global buffers by construction).
struct BufferRow {
  std::uint32_t kernel = 0;
  std::string kernel_name;
  std::string buffer;
  std::uint64_t buffer_size = 0;
  std::uint64_t read_unma = 0;   ///< distinct buffer bytes read
  std::uint64_t write_unma = 0;  ///< distinct buffer bytes written
  double read_coverage = 0.0;    ///< read_unma / buffer_size
  double write_coverage = 0.0;
};

/// All nonzero (kernel, buffer) interactions, kernels in id order, buffers
/// in image order. Kernels hidden by the library policy are skipped.
std::vector<BufferRow> buffer_report(const QuadTool& tool,
                                     const vm::Program& program);

/// Render as a table, optionally restricted to one kernel ("" = all).
TextTable buffer_table(const QuadTool& tool, const vm::Program& program,
                       const std::string& kernel_filter = "");

}  // namespace tq::quad
