#include "quad/quad_tool.hpp"

#include <algorithm>
#include <sstream>

#include "support/metrics.hpp"
#include "vm/stack_addr.hpp"

namespace tq::quad {

QuadTool::QuadTool(const vm::Program& program, Options options)
    : program_(program), stack_(program, options.library_policy) {
  const std::size_t n = program.functions().size();
  TQUAD_CHECK(n < kNoProducer, "too many functions for 16-bit producer ids");
  state_.init(n);
  instrs_.assign(n, 0);
  calls_.assign(n, 0);
  mem_refs_.assign(n, 0);
}

QuadTool::QuadTool(pin::Engine& engine, Options options)
    : QuadTool(engine.program(), options) {
  engine.add_rtn_instrument_function([this](pin::Rtn& rtn) { instrument_rtn(rtn); });
  engine.add_ins_instrument_function([this](pin::Ins& ins) { instrument_ins(ins); });
}

void QuadTool::instrument_rtn(pin::Rtn& rtn) {
  rtn.insert_entry_call(&QuadTool::enter_fc, this);
}

void QuadTool::instrument_ins(pin::Ins& ins) {
  ins.insert_call(&QuadTool::on_instr_tick, this);
  if (ins.is_memory_read()) {
    ins.insert_predicated_call(&QuadTool::on_read, this);
  }
  if (ins.is_memory_write()) {
    ins.insert_predicated_call(&QuadTool::on_write, this);
  }
  if (ins.is_ret()) {
    ins.insert_predicated_call(&QuadTool::on_ret, this);
  }
}

// ---- mode-independent accounting ----------------------------------------------

void QuadTool::account_enter(std::uint32_t func, bool tracked) {
  if (tracked) ++calls_[func];
}

void QuadTool::account_tick(std::uint32_t kernel, std::uint32_t read_size,
                            std::uint32_t write_size) {
  if (kernel == tquad::kNoKernel) return;
  ++instrs_[kernel];
  if (read_size != 0 || write_size != 0) ++mem_refs_[kernel];
}

void QuadTool::account_read(AddressState& state, std::uint32_t reader,
                            std::uint64_t ea, std::uint32_t size,
                            bool stack_area, bool count_access) {
  // Stack-included counters always accrue.
  KernelCounters& incl = state.incl[reader];
  incl.in_bytes += size;
  incl.in_unma.insert_range(ea, size);
  if (!stack_area) {
    KernelCounters& excl = state.excl[reader];
    excl.in_bytes += size;
    excl.in_unma.insert_range(ea, size);
    if (count_access) ++state.global_accesses[reader];
    state.global_bytes[reader] += size;
  }

  // Attribute OUT bytes to producers and record the binding (bytes plus the
  // distinct transfer addresses, the QDU edge annotations).
  std::uint64_t cursor = ea;
  state.shadow.for_each_producer(
      ea, size, [&](ProducerId producer, std::uint32_t run) {
        if (producer != kNoProducer) {
          state.incl[producer].out_bytes += run;
          if (!stack_area) state.excl[producer].out_bytes += run;
          auto& edge = state.bindings[{producer, reader}];
          edge.bytes += run;
          edge.unma.insert_range(cursor, run);
        }
        cursor += run;
      });
}

void QuadTool::account_write(AddressState& state, std::uint32_t writer,
                             std::uint64_t ea, std::uint32_t size,
                             bool stack_area, bool count_access) {
  KernelCounters& incl = state.incl[writer];
  incl.out_unma.insert_range(ea, size);
  if (!stack_area) {
    KernelCounters& excl = state.excl[writer];
    excl.out_unma.insert_range(ea, size);
    if (count_access) ++state.global_accesses[writer];
    state.global_bytes[writer] += size;
  }
  state.shadow.mark_write(ea, size, static_cast<ProducerId>(writer));
}

// ---- standalone trampolines -----------------------------------------------------

void QuadTool::enter_fc(void* tool, const pin::RtnArgs& args) {
  auto& self = *static_cast<QuadTool*>(tool);
  self.stack_.on_enter(args.func);
  self.account_enter(args.func, self.stack_.tracked(args.func));
}

void QuadTool::on_instr_tick(void* tool, const pin::InsArgs& args) {
  auto& self = *static_cast<QuadTool*>(tool);
  self.account_tick(self.stack_.top(), args.read_size, args.write_size);
}

void QuadTool::on_read(void* tool, const pin::InsArgs& args) {
  if (args.is_prefetch) return;
  auto& self = *static_cast<QuadTool*>(tool);
  const std::uint32_t reader = self.stack_.top();
  if (reader == tquad::kNoKernel) return;
  account_read(self.state_, reader, args.read_ea, args.read_size,
               vm::is_stack_addr(args.read_ea, args.sp), true);
}

void QuadTool::on_write(void* tool, const pin::InsArgs& args) {
  if (args.is_prefetch) return;
  auto& self = *static_cast<QuadTool*>(tool);
  const std::uint32_t writer = self.stack_.top();
  if (writer == tquad::kNoKernel) return;
  account_write(self.state_, writer, args.write_ea, args.write_size,
                vm::is_stack_addr(args.write_ea, args.sp), true);
}

void QuadTool::on_ret(void* tool, const pin::InsArgs& args) {
  auto& self = *static_cast<QuadTool*>(tool);
  self.stack_.on_ret(args.func);
}

// ---- session-mode consumer ------------------------------------------------------

void QuadTool::on_kernel_enter(const session::EnterEvent& event) {
  account_enter(event.func, event.tracked);
}

void QuadTool::on_tick(const session::TickEvent& event) {
  account_tick(event.kernel, event.read_size, event.write_size);
}

void QuadTool::on_tick_run(const session::TickRunEvent& run) {
  if (run.kernel == tquad::kNoKernel) return;
  instrs_[run.kernel] += run.count;
  mem_refs_[run.kernel] += run.mem_count;
}

void QuadTool::on_access(const session::AccessEvent& event) {
  if (event.is_prefetch) return;  // QUAD never traces prefetch touches
  if (event.kernel == tquad::kNoKernel) return;
  if (event.is_read) {
    account_read(state_, event.kernel, event.ea, event.size, event.is_stack,
                 true);
  } else {
    account_write(state_, event.kernel, event.ea, event.size, event.is_stack,
                  true);
  }
}

// ---- sharded access accounting (parallel pipeline) ------------------------------

void QuadTool::prepare_shards(unsigned shards) {
  TQUAD_CHECK(shards >= 1, "prepare_shards needs at least one shard");
  TQUAD_CHECK(shards_.empty(), "prepare_shards called twice");
  // Shard 0 aliases state_ directly; only the extra shards replicate it.
  shards_.reserve(shards - 1);
  for (unsigned s = 1; s < shards; ++s) {
    auto state = std::make_unique<AddressState>();
    state->init(kernel_count());
    shards_.push_back(std::move(state));
  }
}

void QuadTool::apply_access_shard(unsigned shard,
                                  const session::AccessEvent& event,
                                  bool count_access) {
  if (event.is_prefetch) return;  // QUAD never traces prefetch touches
  if (event.kernel == tquad::kNoKernel) return;
  TQUAD_DCHECK(shard < shards_.size() + 1, "shard id out of range");
  AddressState& state = shard == 0 ? state_ : *shards_[shard - 1];
  if (event.is_read) {
    account_read(state, event.kernel, event.ea, event.size, event.is_stack,
                 count_access);
  } else {
    account_write(state, event.kernel, event.ea, event.size, event.is_stack,
                  count_access);
  }
}

void QuadTool::merge_shards() {
  for (auto& shard : shards_) {
    state_.shadow.adopt_disjoint(std::move(shard->shadow));
    for (std::size_t k = 0; k < state_.incl.size(); ++k) {
      state_.incl[k].in_bytes += shard->incl[k].in_bytes;
      state_.incl[k].out_bytes += shard->incl[k].out_bytes;
      state_.incl[k].in_unma.merge(std::move(shard->incl[k].in_unma));
      state_.incl[k].out_unma.merge(std::move(shard->incl[k].out_unma));
      state_.excl[k].in_bytes += shard->excl[k].in_bytes;
      state_.excl[k].out_bytes += shard->excl[k].out_bytes;
      state_.excl[k].in_unma.merge(std::move(shard->excl[k].in_unma));
      state_.excl[k].out_unma.merge(std::move(shard->excl[k].out_unma));
      state_.global_accesses[k] += shard->global_accesses[k];
      state_.global_bytes[k] += shard->global_bytes[k];
    }
    for (auto& [key, accum] : shard->bindings) {
      BindingAccum& edge = state_.bindings[key];
      edge.bytes += accum.bytes;
      edge.unma.merge(std::move(accum.unma));
    }
  }
  shards_.clear();
}

std::vector<Binding> QuadTool::bindings() const {
  std::vector<Binding> edges;
  edges.reserve(state_.bindings.size());
  for (const auto& [key, accum] : state_.bindings) {
    edges.push_back(Binding{key.first, key.second, accum.bytes, accum.unma.count()});
  }
  std::sort(edges.begin(), edges.end(), [](const Binding& a, const Binding& b) {
    return a.bytes > b.bytes;
  });
  return edges;
}

std::uint64_t QuadTool::binding_bytes(std::uint32_t producer,
                                      std::uint32_t consumer) const {
  auto it = state_.bindings.find({producer, consumer});
  return it == state_.bindings.end() ? 0 : it->second.bytes;
}

std::uint64_t QuadTool::instrumented_cost(std::uint32_t kernel,
                                          const CostModel& model) const {
  TQUAD_CHECK(kernel < instrs_.size(), "kernel id out of range");
  const std::uint64_t working_set = state_.excl[kernel].in_unma.count() +
                                    state_.excl[kernel].out_unma.count();
  const double trace_scale =
      working_set <= model.hot_set_bytes ? model.hot_discount : 1.0;
  const double trace_cost =
      trace_scale * (static_cast<double>(state_.global_accesses[kernel] *
                                         model.per_global_trace) +
                     static_cast<double>(state_.global_bytes[kernel] *
                                         model.per_global_byte));
  return instrs_[kernel] * model.per_instruction +
         mem_refs_[kernel] * model.per_memory_stub +
         static_cast<std::uint64_t>(trace_cost);
}

void QuadTool::publish_metrics(metrics::Registry& registry) const {
  registry.set_gauge("quad.shadow.pages", state_.shadow.resident_pages());
  registry.set_gauge("quad.shadow.bytes", state_.shadow.resident_bytes());
  std::uint64_t in_incl = 0, out_incl = 0, in_excl = 0, out_excl = 0;
  for (std::size_t k = 0; k < state_.incl.size(); ++k) {
    in_incl += state_.incl[k].in_unma.count();
    out_incl += state_.incl[k].out_unma.count();
    in_excl += state_.excl[k].in_unma.count();
    out_excl += state_.excl[k].out_unma.count();
  }
  registry.set_gauge("quad.unma.in_incl", in_incl);
  registry.set_gauge("quad.unma.out_incl", out_incl);
  registry.set_gauge("quad.unma.in_excl", in_excl);
  registry.set_gauge("quad.unma.out_excl", out_excl);
  registry.set_gauge("quad.bindings", bindings().size());
}

std::string QuadTool::qdu_graph_dot() const {
  std::ostringstream out;
  out << "digraph QDU {\n  rankdir=LR;\n  node [shape=box];\n";
  std::vector<bool> mentioned(kernel_count(), false);
  const auto edges = bindings();
  for (const Binding& edge : edges) {
    mentioned[edge.producer] = true;
    mentioned[edge.consumer] = true;
  }
  for (std::uint32_t k = 0; k < kernel_count(); ++k) {
    if (mentioned[k]) {
      out << "  f" << k << " [label=\"" << kernel_name(k) << "\"];\n";
    }
  }
  for (const Binding& edge : edges) {
    out << "  f" << edge.producer << " -> f" << edge.consumer << " [label=\""
        << edge.bytes << " B / " << edge.unma << " addr\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace tq::quad
