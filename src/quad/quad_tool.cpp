#include "quad/quad_tool.hpp"

#include <algorithm>
#include <sstream>

#include "vm/stack_addr.hpp"

namespace tq::quad {

QuadTool::QuadTool(const vm::Program& program, Options options)
    : program_(program), stack_(program, options.library_policy) {
  const std::size_t n = program.functions().size();
  TQUAD_CHECK(n < kNoProducer, "too many functions for 16-bit producer ids");
  incl_.resize(n);
  excl_.resize(n);
  instrs_.assign(n, 0);
  calls_.assign(n, 0);
  mem_refs_.assign(n, 0);
  global_accesses_.assign(n, 0);
  global_bytes_.assign(n, 0);
}

QuadTool::QuadTool(pin::Engine& engine, Options options)
    : QuadTool(engine.program(), options) {
  engine.add_rtn_instrument_function([this](pin::Rtn& rtn) { instrument_rtn(rtn); });
  engine.add_ins_instrument_function([this](pin::Ins& ins) { instrument_ins(ins); });
}

void QuadTool::instrument_rtn(pin::Rtn& rtn) {
  rtn.insert_entry_call(&QuadTool::enter_fc, this);
}

void QuadTool::instrument_ins(pin::Ins& ins) {
  ins.insert_call(&QuadTool::on_instr_tick, this);
  if (ins.is_memory_read()) {
    ins.insert_predicated_call(&QuadTool::on_read, this);
  }
  if (ins.is_memory_write()) {
    ins.insert_predicated_call(&QuadTool::on_write, this);
  }
  if (ins.is_ret()) {
    ins.insert_predicated_call(&QuadTool::on_ret, this);
  }
}

// ---- mode-independent accounting ----------------------------------------------

void QuadTool::account_enter(std::uint32_t func, bool tracked) {
  if (tracked) ++calls_[func];
}

void QuadTool::account_tick(std::uint32_t kernel, std::uint32_t read_size,
                            std::uint32_t write_size) {
  if (kernel == tquad::kNoKernel) return;
  ++instrs_[kernel];
  if (read_size != 0 || write_size != 0) ++mem_refs_[kernel];
}

void QuadTool::account_read(std::uint32_t reader, std::uint64_t ea,
                            std::uint32_t size, bool stack_area) {
  // Stack-included counters always accrue.
  KernelCounters& incl = incl_[reader];
  incl.in_bytes += size;
  incl.in_unma.insert_range(ea, size);
  if (!stack_area) {
    KernelCounters& excl = excl_[reader];
    excl.in_bytes += size;
    excl.in_unma.insert_range(ea, size);
    ++global_accesses_[reader];
    global_bytes_[reader] += size;
  }

  // Attribute OUT bytes to producers and record the binding (bytes plus the
  // distinct transfer addresses, the QDU edge annotations).
  std::uint64_t cursor = ea;
  shadow_.for_each_producer(
      ea, size, [&](ProducerId producer, std::uint32_t run) {
        if (producer != kNoProducer) {
          incl_[producer].out_bytes += run;
          if (!stack_area) excl_[producer].out_bytes += run;
          auto& edge = bindings_[{producer, reader}];
          edge.bytes += run;
          edge.unma.insert_range(cursor, run);
        }
        cursor += run;
      });
}

void QuadTool::account_write(std::uint32_t writer, std::uint64_t ea,
                             std::uint32_t size, bool stack_area) {
  KernelCounters& incl = incl_[writer];
  incl.out_unma.insert_range(ea, size);
  if (!stack_area) {
    KernelCounters& excl = excl_[writer];
    excl.out_unma.insert_range(ea, size);
    ++global_accesses_[writer];
    global_bytes_[writer] += size;
  }
  shadow_.mark_write(ea, size, static_cast<ProducerId>(writer));
}

// ---- standalone trampolines -----------------------------------------------------

void QuadTool::enter_fc(void* tool, const pin::RtnArgs& args) {
  auto& self = *static_cast<QuadTool*>(tool);
  self.stack_.on_enter(args.func);
  self.account_enter(args.func, self.stack_.tracked(args.func));
}

void QuadTool::on_instr_tick(void* tool, const pin::InsArgs& args) {
  auto& self = *static_cast<QuadTool*>(tool);
  self.account_tick(self.stack_.top(), args.read_size, args.write_size);
}

void QuadTool::on_read(void* tool, const pin::InsArgs& args) {
  if (args.is_prefetch) return;
  auto& self = *static_cast<QuadTool*>(tool);
  const std::uint32_t reader = self.stack_.top();
  if (reader == tquad::kNoKernel) return;
  self.account_read(reader, args.read_ea, args.read_size,
                    vm::is_stack_addr(args.read_ea, args.sp));
}

void QuadTool::on_write(void* tool, const pin::InsArgs& args) {
  if (args.is_prefetch) return;
  auto& self = *static_cast<QuadTool*>(tool);
  const std::uint32_t writer = self.stack_.top();
  if (writer == tquad::kNoKernel) return;
  self.account_write(writer, args.write_ea, args.write_size,
                     vm::is_stack_addr(args.write_ea, args.sp));
}

void QuadTool::on_ret(void* tool, const pin::InsArgs& args) {
  auto& self = *static_cast<QuadTool*>(tool);
  self.stack_.on_ret(args.func);
}

// ---- session-mode consumer ------------------------------------------------------

void QuadTool::on_kernel_enter(const session::EnterEvent& event) {
  account_enter(event.func, event.tracked);
}

void QuadTool::on_tick(const session::TickEvent& event) {
  account_tick(event.kernel, event.read_size, event.write_size);
}

void QuadTool::on_tick_run(const session::TickRunEvent& run) {
  if (run.kernel == tquad::kNoKernel) return;
  instrs_[run.kernel] += run.count;
  mem_refs_[run.kernel] += run.mem_count;
}

void QuadTool::on_access(const session::AccessEvent& event) {
  if (event.is_prefetch) return;  // QUAD never traces prefetch touches
  if (event.kernel == tquad::kNoKernel) return;
  if (event.is_read) {
    account_read(event.kernel, event.ea, event.size, event.is_stack);
  } else {
    account_write(event.kernel, event.ea, event.size, event.is_stack);
  }
}

std::vector<Binding> QuadTool::bindings() const {
  std::vector<Binding> edges;
  edges.reserve(bindings_.size());
  for (const auto& [key, accum] : bindings_) {
    edges.push_back(Binding{key.first, key.second, accum.bytes, accum.unma.count()});
  }
  std::sort(edges.begin(), edges.end(), [](const Binding& a, const Binding& b) {
    return a.bytes > b.bytes;
  });
  return edges;
}

std::uint64_t QuadTool::binding_bytes(std::uint32_t producer,
                                      std::uint32_t consumer) const {
  auto it = bindings_.find({producer, consumer});
  return it == bindings_.end() ? 0 : it->second.bytes;
}

std::uint64_t QuadTool::instrumented_cost(std::uint32_t kernel,
                                          const CostModel& model) const {
  TQUAD_CHECK(kernel < instrs_.size(), "kernel id out of range");
  const std::uint64_t working_set =
      excl_[kernel].in_unma.count() + excl_[kernel].out_unma.count();
  const double trace_scale =
      working_set <= model.hot_set_bytes ? model.hot_discount : 1.0;
  const double trace_cost =
      trace_scale *
      (static_cast<double>(global_accesses_[kernel] * model.per_global_trace) +
       static_cast<double>(global_bytes_[kernel] * model.per_global_byte));
  return instrs_[kernel] * model.per_instruction +
         mem_refs_[kernel] * model.per_memory_stub +
         static_cast<std::uint64_t>(trace_cost);
}

std::string QuadTool::qdu_graph_dot() const {
  std::ostringstream out;
  out << "digraph QDU {\n  rankdir=LR;\n  node [shape=box];\n";
  std::vector<bool> mentioned(kernel_count(), false);
  const auto edges = bindings();
  for (const Binding& edge : edges) {
    mentioned[edge.producer] = true;
    mentioned[edge.consumer] = true;
  }
  for (std::uint32_t k = 0; k < kernel_count(); ++k) {
    if (mentioned[k]) {
      out << "  f" << k << " [label=\"" << kernel_name(k) << "\"];\n";
    }
  }
  for (const Binding& edge : edges) {
    out << "  f" << edge.producer << " -> f" << edge.consumer << " [label=\""
        << edge.bytes << " B / " << edge.unma << " addr\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace tq::quad
