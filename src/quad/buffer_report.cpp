#include "quad/buffer_report.hpp"

namespace tq::quad {

std::vector<BufferRow> buffer_report(const QuadTool& tool,
                                     const vm::Program& program) {
  std::vector<BufferRow> rows;
  for (std::uint32_t k = 0; k < tool.kernel_count(); ++k) {
    if (!tool.reported(k)) continue;
    const KernelCounters& counters = tool.excluding_stack(k);
    for (const vm::GlobalVar& var : program.globals()) {
      if (var.size == 0) continue;
      const std::uint64_t reads = counters.in_unma.count_range(var.addr, var.size);
      const std::uint64_t writes = counters.out_unma.count_range(var.addr, var.size);
      if (reads == 0 && writes == 0) continue;
      BufferRow row;
      row.kernel = k;
      row.kernel_name = tool.kernel_name(k);
      row.buffer = var.name;
      row.buffer_size = var.size;
      row.read_unma = reads;
      row.write_unma = writes;
      row.read_coverage =
          static_cast<double>(reads) / static_cast<double>(var.size);
      row.write_coverage =
          static_cast<double>(writes) / static_cast<double>(var.size);
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

TextTable buffer_table(const QuadTool& tool, const vm::Program& program,
                       const std::string& kernel_filter) {
  TextTable table({"kernel", "buffer", "size", "read bytes", "read %",
                   "write bytes", "write %"});
  for (const BufferRow& row : buffer_report(tool, program)) {
    if (!kernel_filter.empty() && row.kernel_name != kernel_filter) continue;
    table.add_row({row.kernel_name, row.buffer, format_bytes(row.buffer_size),
                   format_count(row.read_unma), format_percent(row.read_coverage),
                   format_count(row.write_unma),
                   format_percent(row.write_coverage)});
  }
  return table;
}

}  // namespace tq::quad
