// The QUAD memory-access-pattern analyser as a minipin tool.
//
// QUAD (reference [4] of the tQUAD paper) reveals quantitative data
// communication between kernels: for every kernel it reports
//   IN       — total bytes the kernel read,
//   IN UnMA  — distinct byte addresses it read,
//   OUT      — total bytes *any* kernel read from locations this kernel had
//              previously written,
//   OUT UnMA — distinct byte addresses it wrote,
// and a producer→consumer binding matrix (the QDU graph).
//
// Table II of the tQUAD paper reports all four counters twice — with stack
// accesses excluded and included. This implementation tracks both
// classifications in one run. A single shadow memory serves both: a
// stack-classified access can only involve stack addresses, which the
// excluded mode ignores on both the produce and consume side.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "minipin/minipin.hpp"
#include "quad/shadow.hpp"
#include "session/events.hpp"
#include "support/address_set.hpp"
#include "tquad/callstack.hpp"

namespace tq::metrics {
class Registry;
}  // namespace tq::metrics

namespace tq::quad {

/// Table II counters for one kernel under one stack classification.
struct KernelCounters {
  std::uint64_t in_bytes = 0;
  std::uint64_t out_bytes = 0;
  AddressSet in_unma;
  AddressSet out_unma;

  /// Fold another run's counters for the same kernel into this one: byte
  /// volumes add, UnMA sets union (consuming `other`'s sets). Used by the
  /// farm's fleet aggregation when several runs of the same workload merge.
  void merge(KernelCounters&& other) {
    in_bytes += other.in_bytes;
    out_bytes += other.out_bytes;
    in_unma.merge(std::move(other.in_unma));
    out_unma.merge(std::move(other.out_unma));
  }
};

/// Cost-model parameters for the QUAD-instrumented profile (Table III).
/// The paper profiles the Pin+QUAD+application process with gprof; we model
/// the same measurement by charging each kernel the cost of the analysis
/// work its instructions trigger: stack accesses are discarded cheaply in
/// the instrumentation stub, global accesses pay the full tracing routine
/// (Section V-B: "the instrumentation routine simply discards the local
/// stack area accesses and only upon detection of a non-local memory access,
/// an analysis routine is called").
struct CostModel {
  std::uint64_t per_instruction = 1;   ///< base execution cost
  std::uint64_t per_memory_stub = 3;   ///< intercept+classify every access
  std::uint64_t per_global_trace = 12; ///< analysis-routine invocation
  std::uint64_t per_global_byte = 2;   ///< shadow/UnMA work per byte
  /// Kernels whose global working set (IN+OUT UnMA, stack excluded) fits in
  /// this many bytes keep the analysis structures cache-resident, so their
  /// tracing cost is discounted. This models the paper's own explanation of
  /// Table III: "bitrev only uses around one tenth of a KB as buffer,
  /// whereas DelayLine_processChunk accesses about 180 KB of memory
  /// locations" — which is why bitrev's share collapses under
  /// instrumentation while byte-dense large-footprint kernels balloon.
  std::uint64_t hot_set_bytes = 4096;
  double hot_discount = 0.1;  ///< trace/byte cost multiplier for hot kernels
};

/// One producer→consumer edge of the QDU graph. The paper reads buffer
/// sizes off these edges ("the small number of Unique Memory Addresses
/// (UnMAs) used as output buffers compared to the huge amount of data
/// produced — hundreds of addresses per GBs"), so each edge carries the
/// distinct transfer addresses alongside the byte volume.
struct Binding {
  std::uint32_t producer = 0;
  std::uint32_t consumer = 0;
  std::uint64_t bytes = 0;
  std::uint64_t unma = 0;  ///< distinct addresses the transfer flowed through
};

/// Options for QuadTool.
struct QuadOptions {
  tquad::LibraryPolicy library_policy = tquad::LibraryPolicy::kExclude;
};

/// The QUAD tool. Construct before the run (standalone with an Engine, or
/// session mode with a Program plus ProfileSession::add_consumer — use the
/// same library policy as the session); query afterwards.
class QuadTool : public session::AnalysisConsumer,
                 public session::ShardedAccessConsumer {
 public:
  using Options = QuadOptions;

  QuadTool(pin::Engine& engine, Options options = {});
  QuadTool(const vm::Program& program, Options options = {});

  QuadTool(const QuadTool&) = delete;
  QuadTool& operator=(const QuadTool&) = delete;

  std::size_t kernel_count() const noexcept { return state_.incl.size(); }
  const std::string& kernel_name(std::uint32_t kernel) const {
    return program_.functions()[kernel].name;
  }
  bool reported(std::uint32_t kernel) const noexcept { return stack_.tracked(kernel); }

  /// Counters with stack accesses included / excluded.
  const KernelCounters& including_stack(std::uint32_t kernel) const {
    TQUAD_CHECK(kernel < state_.incl.size(), "kernel id out of range");
    return state_.incl[kernel];
  }
  const KernelCounters& excluding_stack(std::uint32_t kernel) const {
    TQUAD_CHECK(kernel < state_.excl.size(), "kernel id out of range");
    return state_.excl[kernel];
  }

  /// Producer→consumer bindings (stack-included classification), sorted by
  /// descending bytes. Unattributed producers are omitted.
  std::vector<Binding> bindings() const;

  /// Bytes flowing from `producer` to `consumer` (stack included).
  std::uint64_t binding_bytes(std::uint32_t producer, std::uint32_t consumer) const;

  /// Per-kernel dynamic instruction count (for the cost model).
  std::uint64_t instructions(std::uint32_t kernel) const {
    TQUAD_CHECK(kernel < instrs_.size(), "kernel id out of range");
    return instrs_[kernel];
  }
  std::uint64_t calls(std::uint32_t kernel) const {
    TQUAD_CHECK(kernel < calls_.size(), "kernel id out of range");
    return calls_[kernel];
  }

  /// Modelled cost of running this kernel under QUAD instrumentation.
  std::uint64_t instrumented_cost(std::uint32_t kernel, const CostModel& model) const;

  /// Render the QDU graph in Graphviz DOT (edges labelled with bytes).
  std::string qdu_graph_dot() const;

  const ShadowMemory& shadow() const noexcept { return state_.shadow; }
  const tquad::CallStack& callstack() const noexcept { return stack_; }

  // session::AnalysisConsumer (session mode). No return accounting.
  unsigned event_interests() const override {
    return kEnterInterest | kTickInterest | kAccessInterest;
  }
  void on_kernel_enter(const session::EnterEvent& event) override;
  void on_tick(const session::TickEvent& event) override;
  void on_tick_run(const session::TickRunEvent& run) override;
  void on_access(const session::AccessEvent& event) override;
  void on_finish(const vm::RunOutcome& outcome) override { outcome_ = outcome; }

  // session::ShardedAccessConsumer (parallel pipeline): the per-address
  // state partitions by page, so access accounting scales across workers
  // while enter/tick counters stay on a separate control lane.
  session::ShardedAccessConsumer* sharded_access() override { return this; }
  void prepare_shards(unsigned shards) override;
  void apply_access_shard(unsigned shard, const session::AccessEvent& event,
                          bool count_access) override;
  void merge_shards() override;

  /// Shards the last prepare_shards() created (1 when never sharded);
  /// test introspection.
  unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shards_.size()) + 1;
  }

  /// How the observed run ended (session mode; kHalted for a clean run).
  /// A trapped/truncated outcome means the profile is a valid prefix.
  const vm::RunOutcome& outcome() const noexcept { return outcome_; }

  /// Self-observability: shadow-memory footprint and total UnMA set sizes
  /// into `registry` under quad.* names. Call after the run (post merge).
  void publish_metrics(metrics::Registry& registry) const;

 private:
  static void enter_fc(void* tool, const pin::RtnArgs& args);
  static void on_read(void* tool, const pin::InsArgs& args);
  static void on_write(void* tool, const pin::InsArgs& args);
  static void on_ret(void* tool, const pin::InsArgs& args);
  static void on_instr_tick(void* tool, const pin::InsArgs& args);

  void instrument_rtn(pin::Rtn& rtn);
  void instrument_ins(pin::Ins& ins);

  struct BindingAccum {
    std::uint64_t bytes = 0;
    AddressSet unma;
  };

  /// Every piece of state keyed (directly or transitively) by guest address:
  /// the shadow memory, the Table II counters, the per-kernel global-access
  /// cost counters, and the binding matrix. The serial path owns exactly one
  /// (state_); the parallel pipeline replicates it per address shard and
  /// folds the replicas back in merge_shards().
  struct AddressState {
    ShadowMemory shadow;
    std::vector<KernelCounters> incl;
    std::vector<KernelCounters> excl;
    std::vector<std::uint64_t> global_accesses;
    std::vector<std::uint64_t> global_bytes;
    std::map<std::pair<std::uint32_t, std::uint32_t>, BindingAccum> bindings;

    void init(std::size_t kernels) {
      incl.resize(kernels);
      excl.resize(kernels);
      global_accesses.assign(kernels, 0);
      global_bytes.assign(kernels, 0);
    }
  };

  // Mode-independent accounting. `count_access` is false for the
  // continuation pieces of a page-split access, so the per-access counter
  // increments exactly once per original access.
  void account_enter(std::uint32_t func, bool tracked);
  void account_tick(std::uint32_t kernel, std::uint32_t read_size,
                    std::uint32_t write_size);
  static void account_read(AddressState& state, std::uint32_t reader,
                           std::uint64_t ea, std::uint32_t size,
                           bool stack_area, bool count_access);
  static void account_write(AddressState& state, std::uint32_t writer,
                            std::uint64_t ea, std::uint32_t size,
                            bool stack_area, bool count_access);

  const vm::Program& program_;
  tquad::CallStack stack_;  ///< standalone attribution; static tables in session mode
  AddressState state_;      ///< serial accounting, and shard 0 in parallel mode
  std::vector<std::unique_ptr<AddressState>> shards_;  ///< shards 1..N-1
  std::vector<std::uint64_t> instrs_;
  std::vector<std::uint64_t> calls_;
  std::vector<std::uint64_t> mem_refs_;
  vm::RunOutcome outcome_;
};

}  // namespace tq::quad
