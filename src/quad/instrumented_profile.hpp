// The "flat profile of the QUAD-instrumented application" (Table III).
//
// The paper runs gprof on the Pin+QUAD+application process: instrumentation
// overhead inflates each kernel's share in proportion to how much analysis
// work its accesses trigger, which re-ranks kernels in a way that better
// matches systems with expensive external memory (Section V-B). Here the
// same measurement is modelled from a QuadTool run via its CostModel, and
// each kernel's new share is compared against a baseline profile to produce
// the paper's trend arrows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "quad/quad_tool.hpp"

namespace tq::quad {

/// Trend of a kernel's contribution relative to the baseline profile.
enum class Trend : std::uint8_t {
  kStrongUp,    ///< paper's "up-up" arrow
  kUp,
  kFlat,
  kDown,
  kStrongDown,  ///< paper's "down-down" arrow
};

const char* trend_arrow(Trend trend) noexcept;  // UTF-8 arrows

/// One Table III row.
struct InstrumentedRow {
  std::uint32_t kernel = 0;
  std::string name;
  double base_fraction = 0.0;          ///< %time in the uninstrumented profile
  double instrumented_fraction = 0.0;  ///< %time under the cost model
  std::uint64_t cost = 0;              ///< modelled cost units
  unsigned rank = 0;                   ///< 1-based rank by instrumented share
  Trend trend = Trend::kFlat;
};

/// A baseline entry: kernel id and its share of the uninstrumented profile.
struct BaseShare {
  std::uint32_t kernel = 0;
  double fraction = 0.0;
};

/// Build the instrumented profile for the kernels in `base` (typically the
/// top kernels of Table I), ranked by modelled instrumented share.
std::vector<InstrumentedRow> instrumented_profile(const QuadTool& tool,
                                                  const std::vector<BaseShare>& base,
                                                  const CostModel& model = {});

}  // namespace tq::quad
