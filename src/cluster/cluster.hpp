// Task clustering from profiling data — the paper's stated future work.
//
// "Most importantly, some relevant kernels are clustered together in a sense
// that the intra-cluster communication is maximized whereas the
// inter-cluster communication is minimized." (Section V-B, last paragraph;
// also the planned utilisation in Section VI.) This module implements that
// step for the DWB partitioning flow: given QUAD's producer→consumer byte
// matrix (and optionally per-kernel resource weights from a flat profile),
// it greedily merges the kernel pair with the heaviest inter-cluster
// traffic until a target cluster count or a resource cap stops it —
// single-linkage agglomerative clustering on the communication graph.
//
// The result reports the achieved cut: total intra-cluster vs inter-cluster
// bytes, the objective the paper states.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "quad/quad_tool.hpp"

namespace tq::cluster {

/// An undirected communication edge (direction does not matter for the
/// cut objective; producer/consumer byte counts are summed).
struct Edge {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t bytes = 0;
};

/// Clustering knobs.
struct ClusterOptions {
  /// Stop when this many clusters remain (0 = merge while profitable).
  std::size_t target_clusters = 0;
  /// Do not merge clusters whose combined weight would exceed this cap
  /// (0 = unlimited). Weights are the caller's resource proxy — typically
  /// per-kernel instruction counts standing in for area/latency budget.
  std::uint64_t max_cluster_weight = 0;
  /// Ignore edges lighter than this many bytes when merging (noise floor).
  std::uint64_t min_edge_bytes = 1;
};

/// The result: clusters of kernel ids plus the achieved communication cut.
struct Clustering {
  std::vector<std::vector<std::uint32_t>> clusters;
  std::uint64_t intra_bytes = 0;  ///< traffic inside clusters (maximised)
  std::uint64_t inter_bytes = 0;  ///< traffic across clusters (minimised)

  double intra_fraction() const noexcept {
    const std::uint64_t total = intra_bytes + inter_bytes;
    return total == 0 ? 1.0
                      : static_cast<double>(intra_bytes) / static_cast<double>(total);
  }
  /// Index of the cluster containing `kernel`, or SIZE_MAX.
  std::size_t cluster_of(std::uint32_t kernel) const noexcept;
};

/// Core algorithm on an explicit graph: `kernel_count` nodes, undirected
/// `edges`, optional per-node `weights` (empty = all 1).
Clustering cluster_edges(std::size_t kernel_count, std::vector<Edge> edges,
                         const std::vector<std::uint64_t>& weights,
                         const ClusterOptions& options);

/// Convenience front end: build the graph from a completed QuadTool run
/// (bindings collapsed to undirected edges, self-loops dropped, unreported
/// kernels excluded) with per-kernel dynamic instruction counts as weights.
Clustering cluster_kernels(const quad::QuadTool& tool,
                           const ClusterOptions& options = {});

/// One line per cluster with kernel names and the cut summary.
std::string describe_clustering(const quad::QuadTool& tool,
                                const Clustering& clustering);

}  // namespace tq::cluster
