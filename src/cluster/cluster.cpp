#include "cluster/cluster.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "support/check.hpp"

namespace tq::cluster {

std::size_t Clustering::cluster_of(std::uint32_t kernel) const noexcept {
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (std::uint32_t member : clusters[c]) {
      if (member == kernel) return c;
    }
  }
  return SIZE_MAX;
}

Clustering cluster_edges(std::size_t kernel_count, std::vector<Edge> edges,
                         const std::vector<std::uint64_t>& weights,
                         const ClusterOptions& options) {
  TQUAD_CHECK(weights.empty() || weights.size() == kernel_count,
              "weights must match the kernel count");
  // Cluster state: parent pointers + per-cluster weight; pair traffic in a
  // map keyed by (root_a, root_b) that is rebuilt lazily after merges.
  std::vector<std::size_t> parent(kernel_count);
  std::vector<std::uint64_t> weight(kernel_count, 1);
  for (std::size_t i = 0; i < kernel_count; ++i) {
    parent[i] = i;
    if (!weights.empty()) weight[i] = weights[i];
  }
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  // Drop self-loops and out-of-range edges up front. Edges below the noise
  // floor stay in the graph (they keep their kernels *mentioned* and count
  // toward the cut) but never justify a merge.
  std::erase_if(edges, [&](const Edge& edge) {
    return edge.a == edge.b || edge.a >= kernel_count || edge.b >= kernel_count;
  });

  std::vector<bool> mentioned(kernel_count, false);
  for (const Edge& edge : edges) {
    mentioned[edge.a] = true;
    mentioned[edge.b] = true;
  }
  std::size_t cluster_count = 0;
  for (std::size_t k = 0; k < kernel_count; ++k) {
    if (mentioned[k]) ++cluster_count;
  }
  const std::size_t target =
      options.target_clusters == 0 ? 1 : options.target_clusters;
  while (cluster_count > target) {
    // Aggregate current inter-cluster traffic.
    std::map<std::pair<std::size_t, std::size_t>, std::uint64_t> traffic;
    for (const Edge& edge : edges) {
      const std::size_t ra = find(edge.a);
      const std::size_t rb = find(edge.b);
      if (ra == rb) continue;
      traffic[{std::min(ra, rb), std::max(ra, rb)}] += edge.bytes;
    }
    // Pick the heaviest mergeable pair.
    std::uint64_t best_bytes = 0;
    std::pair<std::size_t, std::size_t> best{SIZE_MAX, SIZE_MAX};
    for (const auto& [pair, bytes] : traffic) {
      if (bytes < options.min_edge_bytes || bytes <= best_bytes) continue;
      if (options.max_cluster_weight != 0 &&
          weight[pair.first] + weight[pair.second] > options.max_cluster_weight) {
        continue;
      }
      best_bytes = bytes;
      best = pair;
    }
    if (best.first == SIZE_MAX) break;  // nothing profitable/permitted left
    parent[best.first] = best.second;
    weight[best.second] += weight[best.first];
    --cluster_count;
  }

  // Materialise clusters and the cut.
  Clustering result;
  std::map<std::size_t, std::size_t> root_to_index;
  for (std::size_t k = 0; k < kernel_count; ++k) {
    if (!mentioned[k]) continue;  // isolated kernels are not part of the graph
    const std::size_t root = find(k);
    auto [it, inserted] = root_to_index.try_emplace(root, result.clusters.size());
    if (inserted) result.clusters.emplace_back();
    result.clusters[it->second].push_back(static_cast<std::uint32_t>(k));
  }
  for (const Edge& edge : edges) {
    if (find(edge.a) == find(edge.b)) {
      result.intra_bytes += edge.bytes;
    } else {
      result.inter_bytes += edge.bytes;
    }
  }
  // Stable presentation: biggest communicators first.
  std::sort(result.clusters.begin(), result.clusters.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });
  return result;
}

Clustering cluster_kernels(const quad::QuadTool& tool, const ClusterOptions& options) {
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> undirected;
  for (const quad::Binding& binding : tool.bindings()) {
    if (binding.producer == binding.consumer) continue;
    if (!tool.reported(binding.producer) || !tool.reported(binding.consumer)) continue;
    const auto key = std::minmax(binding.producer, binding.consumer);
    undirected[{key.first, key.second}] += binding.bytes;
  }
  std::vector<Edge> edges;
  edges.reserve(undirected.size());
  for (const auto& [pair, bytes] : undirected) {
    edges.push_back(Edge{pair.first, pair.second, bytes});
  }
  std::vector<std::uint64_t> weights(tool.kernel_count());
  for (std::uint32_t k = 0; k < tool.kernel_count(); ++k) {
    weights[k] = tool.instructions(k);
  }
  return cluster_edges(tool.kernel_count(), std::move(edges), weights, options);
}

std::string describe_clustering(const quad::QuadTool& tool,
                                const Clustering& clustering) {
  std::ostringstream out;
  for (std::size_t c = 0; c < clustering.clusters.size(); ++c) {
    out << "cluster " << (c + 1) << ":";
    for (std::uint32_t kernel : clustering.clusters[c]) {
      out << ' ' << tool.kernel_name(kernel);
    }
    out << '\n';
  }
  out << "intra-cluster bytes: " << clustering.intra_bytes
      << ", inter-cluster bytes: " << clustering.inter_bytes << " ("
      << static_cast<int>(clustering.intra_fraction() * 100.0 + 0.5)
      << "% of communication kept inside clusters)\n";
  return out.str();
}

}  // namespace tq::cluster
