// Guest-code reimplementation of the hArtes wfs application.
//
// Every kernel named in the paper's Table I exists as a guest function with
// the same role and the same call topology:
//
//   main ─ ldint, ffw(x2), wav_load, per chunk { PrimarySource_deriveTP,
//          calculateGainPQ (x speakers, calls vsmult2d), AudioIo_getFrames,
//          Filter_process_pre_, Filter_process, DelayLine_processChunk,
//          AudioIo_setFrames }, wav_store
//   Filter_process ─ zeroCplxVec, r2c, fft1d (x2), cmult+cadd per bin, c2r
//   fft1d ─ perm ─ bitrev (per element)
//   DelayLine_processChunk ─ zeroRealVec (per speaker)
//   wav_load / wav_store / ldint ─ libc_read / libc_write (library image)
//
// Register-band convention (hand-managed calling convention):
//   r0          structured-loop scratch (count_loop), never live across ops
//   r1..r7      arguments / leaf scratch — clobbered by any call
//   r8..r13     level-3 helpers (perm, r2c, c2r, zero*, vsmult2d)
//   r14..r19    level-2 kernels (fft1d, calculateGainPQ, PrimarySource_*)
//   r20..r27    level-1 kernels (Filter_*, DelayLine, AudioIo_*, wav_*, ffw)
//   r28..r30    main driver; r31 = SP
//   f registers banded the same way (f1-f9 leaves, f10-f15 level 2, f16+
//   level 1).
//
// Several kernels keep loop state on the stack on purpose ("-O0 style"):
// the paper's Table II shows e.g. zeroRealVec reading >300x more bytes with
// the stack included than excluded, and fft1d ~6x — behaviour of compiled
// x86 code that spills temporaries. The spill patterns here reproduce those
// stack/global traffic shapes; EXPERIMENTS.md documents the mapping.
#pragma once

#include <cstdint>

#include "vm/program.hpp"
#include "wfs/config.hpp"

namespace tq::wfs {

/// The built program plus the addresses tests need for introspection.
struct WfsArtifacts {
  vm::Program program;
  /// Host file descriptors the guest expects: attach the input WAV as fd 0
  /// (HostEnv::attach_input first) and create output fd 1 next.
  static constexpr int kInputFd = 0;
  static constexpr int kOutputFd = 1;
  // Global addresses (guest address space).
  std::uint64_t frames_addr = 0;   ///< planar f32 speaker frames
  std::uint64_t in_f32_addr = 0;   ///< converted f32 input
  std::uint64_t gains_addr = 0;    ///< per-speaker f64 gains
  std::uint64_t delays_addr = 0;   ///< per-speaker i64 delays
  std::uint64_t h_addr = 0;        ///< main filter spectrum (2N f64)
  std::uint64_t b_addr = 0;        ///< bias filter spectrum (2N f64)
};

/// Build the complete guest program for `cfg`.
WfsArtifacts build_wfs_program(const WfsConfig& cfg);

}  // namespace tq::wfs
