// Host-side RIFF/WAVE codec: synthesises the input file the guest loads and
// decodes the multichannel file the guest stores, so tests can validate the
// audio pipeline end to end. The guest parses/produces the same 44-byte
// canonical PCM16 header with its own code (wav_load / wav_store kernels).
#pragma once

#include <cstdint>
#include <vector>

namespace tq::wfs {

/// Canonical 44-byte PCM WAV header size used by both host and guest.
inline constexpr std::uint32_t kWavHeaderSize = 44;

/// Decoded WAV contents (16-bit PCM only).
struct WavData {
  std::uint32_t sample_rate = 48000;
  std::uint16_t channels = 1;
  /// Interleaved samples, frame-major.
  std::vector<std::int16_t> samples;
};

/// Encode 16-bit PCM into a canonical RIFF/WAVE byte stream.
std::vector<std::uint8_t> wav_encode(const WavData& data);

/// Decode a canonical RIFF/WAVE byte stream. Throws tq::Error on anything
/// that is not 16-bit PCM with a 44-byte header.
WavData wav_decode(const std::vector<std::uint8_t>& bytes);

/// Deterministic test signal: a sum of three sinusoids with a soft envelope,
/// scaled to ~70% full scale. `samples` mono samples at `sample_rate`.
WavData make_test_signal(std::uint32_t samples, std::uint32_t sample_rate = 48000);

}  // namespace tq::wfs
