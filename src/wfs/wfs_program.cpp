#include "wfs/wfs_program.hpp"

#include <cmath>
#include <cstring>

#include "gasm/builder.hpp"
#include "wfs/golden.hpp"

namespace tq::wfs {

using gasm::F;
using gasm::FunctionBuilder;
using gasm::ProgramBuilder;
using gasm::R;
using gasm::SP;
using isa::Sys;
using vm::ImageKind;

namespace {

std::vector<std::uint8_t> doubles_bytes(const std::vector<double>& values) {
  std::vector<std::uint8_t> bytes(values.size() * 8);
  std::memcpy(bytes.data(), values.data(), bytes.size());
  return bytes;
}

}  // namespace

WfsArtifacts build_wfs_program(const WfsConfig& cfg) {
  cfg.validate();
  TQUAD_CHECK(cfg.chunk_size % 16 == 0, "chunk_size must be a multiple of 16");
  const WfsDerived derived(cfg);

  const std::int64_t C = cfg.chunk_size;
  const std::int64_t N = cfg.fft_size;
  const std::int64_t NS = cfg.speakers;
  const std::int64_t K = cfg.chunks;
  const std::int64_t M = cfg.move_chunks;
  const std::int64_t RING = cfg.ring_size;
  const std::int64_t TOTAL = K * C;
  std::int64_t bits = 0;
  while ((std::int64_t{1} << bits) < N) ++bits;

  ProgramBuilder prog;

  // ---- globals -------------------------------------------------------------
  const std::uint64_t g_ldint = prog.alloc_global("ldint_table", 64 * 8);
  const std::uint64_t g_ir = prog.alloc_global("ir", N * 8);
  const std::uint64_t g_H = prog.alloc_global("H", 2 * N * 8);
  const std::uint64_t g_B = prog.alloc_global("B", 2 * N * 8);
  const std::uint64_t g_X = prog.alloc_global("X", 2 * N * 8);
  const std::uint64_t g_T = prog.alloc_global("T", 2 * N * 8);
  const std::uint64_t g_Y = prog.alloc_global("Y", 2 * N * 8);
  const std::uint64_t g_in_block = prog.alloc_global("in_block", N * 8);
  const std::uint64_t g_cur = prog.alloc_global("cur", C * 8);
  const std::uint64_t g_y_chunk = prog.alloc_global("y_chunk", C * 8);
  const std::uint64_t g_ring = prog.alloc_global("ring", RING * 8);
  const std::uint64_t g_spk = prog.alloc_global("spk", NS * C * 4);
  const std::uint64_t g_frames = prog.alloc_global("frames", NS * TOTAL * 4, 64);
  const std::uint64_t g_in_f32 = prog.alloc_global("in_f32", TOTAL * 4);
  const std::uint64_t g_gains = prog.alloc_global("gains", NS * 8);
  const std::uint64_t g_delays = prog.alloc_global("delays", NS * 8);
  const std::uint64_t g_spos = prog.alloc_global("spos", 2 * 8);
  const std::uint64_t g_svel = prog.alloc_global("svel", 2 * 8);
  const std::uint64_t g_sstep = prog.alloc_global("sstep", 2 * 8);
  const std::uint64_t g_sdir = prog.alloc_global("sdir", 2 * 8);
  const std::uint64_t g_sunit = prog.alloc_global("sunit", 2 * 8);
  const std::uint64_t g_spk_x = prog.alloc_global("speaker_x", NS * 8);
  const std::uint64_t g_stage = prog.alloc_global("stage", 4096, 64);

  prog.init_data(g_spk_x, doubles_bytes(derived.speaker_x));
  prog.init_data(g_spos, doubles_bytes({derived.source_x0, derived.source_y0}));
  prog.init_data(g_svel, doubles_bytes({derived.vel_x, derived.vel_y}));

  // ---- library image: the libc-like syscall wrappers ------------------------
  {
    FunctionBuilder& f = prog.begin_function("libc_read", ImageKind::kLibrary);
    f.sys(Sys::kRead);
    f.ret();
  }
  {
    FunctionBuilder& f = prog.begin_function("libc_write", ImageKind::kLibrary);
    f.sys(Sys::kWrite);
    f.ret();
  }
  {
    FunctionBuilder& f = prog.begin_function("libc_seek", ImageKind::kLibrary);
    f.sys(Sys::kSeek);
    f.ret();
  }

  // ---- ldint: integer constant table (bit masks used by bitrev) -------------
  {
    FunctionBuilder& f = prog.begin_function("ldint");
    f.movi(R{8}, static_cast<std::int64_t>(g_ldint));
    f.count_loop_imm(R{9}, 0, 64, [&] {
      f.movi(R{10}, 1);
      f.shl(R{10}, R{10}, R{9});
      f.shli(R{11}, R{9}, 3);
      f.add(R{11}, R{11}, R{8});
      f.store(R{11}, 0, R{10}, 8);
    });
    f.ret();
  }

  // ---- bitrev(i=r1, bits=r2) -> r1 ------------------------------------------
  // Fully unrolled for the program's FFT size (the compiler knew `bits` too).
  // Each bit reads the mask table (the kernel's small global working set —
  // Table II reports ~145 distinct global addresses for bitrev) and spills
  // the running result to the stack, compiled-code style.
  {
    FunctionBuilder& f = prog.begin_function("bitrev");
    f.enter(16);
    f.mov(R{5}, R{1});  // i
    f.movi(R{3}, 0);    // result
    f.movi(R{6}, static_cast<std::int64_t>(g_ldint));
    for (std::int64_t b = 0; b < bits; ++b) {
      f.load(R{7}, R{6}, 0, 8);  // mask = table[0] == 1 (global table read)
      f.and_(R{7}, R{5}, R{7});
      f.shli(R{3}, R{3}, 1);
      f.or_(R{3}, R{3}, R{7});
      f.shrli(R{5}, R{5}, 1);
      f.store(SP, 8, R{3}, 8);  // spill the running result
    }
    f.load(R{1}, SP, 8, 8);
    f.leave(16);
    f.ret();
  }

  // ---- perm(buf=r1, n=r2, bits=r3): bit-reversal permutation ------------------
  {
    FunctionBuilder& f = prog.begin_function("perm");
    f.enter(32);
    f.store(SP, 0, R{1}, 8);
    f.store(SP, 8, R{2}, 8);
    f.store(SP, 16, R{3}, 8);
    f.movi(R{8}, 0);  // i
    const auto head = f.new_label();
    const auto done = f.new_label();
    const auto next = f.new_label();
    f.bind(head);
    f.load(R{9}, SP, 8, 8);  // n (stack reload per iteration)
    f.slts(R{0}, R{8}, R{9});
    f.brz(R{0}, done);
    f.mov(R{1}, R{8});
    f.load(R{2}, SP, 16, 8);
    f.call("bitrev");  // r1 = j
    f.slts(R{0}, R{8}, R{1});
    f.brz(R{0}, next);
    f.load(R{10}, SP, 0, 8);  // buf
    f.shli(R{11}, R{8}, 4);
    f.add(R{11}, R{11}, R{10});
    f.shli(R{12}, R{1}, 4);
    f.add(R{12}, R{12}, R{10});
    f.fload(F{8}, R{11}, 0);
    f.fload(F{9}, R{12}, 0);
    f.fstore(R{11}, 0, F{9});
    f.fstore(R{12}, 0, F{8});
    f.fload(F{8}, R{11}, 8);
    f.fload(F{9}, R{12}, 8);
    f.fstore(R{11}, 8, F{9});
    f.fstore(R{12}, 8, F{8});
    f.bind(next);
    f.addi(R{8}, R{8}, 1);
    f.jmp(head);
    f.bind(done);
    f.leave(32);
    f.ret();
  }

  // ---- fft1d(buf=r1, dir=r2, n=r3, bits=r4): in-place Danielson-Lanczos ------
  {
    FunctionBuilder& f = prog.begin_function("fft1d");
    f.enter(64);
    f.store(SP, 0, R{1}, 8);   // buf
    f.store(SP, 8, R{2}, 8);   // dir
    f.store(SP, 16, R{3}, 8);  // n
    f.store(SP, 24, R{4}, 8);  // bits
    f.mov(R{2}, R{3});
    f.mov(R{3}, R{4});
    f.call("perm");
    f.movi(R{14}, 2);  // len
    const auto outer = f.new_label();
    const auto block = f.new_label();
    const auto inner = f.new_label();
    const auto block_next = f.new_label();
    const auto next_len = f.new_label();
    const auto scale_check = f.new_label();
    const auto scale_loop = f.new_label();
    const auto end = f.new_label();
    f.bind(outer);
    f.load(R{15}, SP, 16, 8);  // n
    f.slts(R{0}, R{15}, R{14});
    f.brnz(R{0}, scale_check);  // len > n -> done with butterflies
    // ang = (dir * 2*pi) / len ; wr/wi spilled to the stack
    f.load(R{16}, SP, 8, 8);
    f.i2f(F{10}, R{16});
    f.fmovi(F{11}, 6.283185307179586);
    f.fmul(F{10}, F{10}, F{11});
    f.i2f(F{11}, R{14});
    f.fdiv(F{10}, F{10}, F{11});
    f.fcos(F{12}, F{10});
    f.fsin(F{13}, F{10});
    f.fstore(SP, 32, F{12});  // wr
    f.fstore(SP, 40, F{13});  // wi
    f.movi(R{16}, 0);         // i
    f.bind(block);
    f.slts(R{0}, R{16}, R{15});
    f.brz(R{0}, next_len);
    f.fmovi(F{14}, 1.0);  // cr
    f.fmovi(F{15}, 0.0);  // ci
    f.movi(R{17}, 0);     // j
    f.shrli(R{18}, R{14}, 1);  // half
    f.bind(inner);
    f.slts(R{0}, R{17}, R{18});
    f.brz(R{0}, block_next);
    f.add(R{19}, R{16}, R{17});
    f.shli(R{19}, R{19}, 4);
    f.load(R{2}, SP, 0, 8);  // buf (stack reload per butterfly)
    f.add(R{19}, R{19}, R{2});  // &a[p]
    f.add(R{3}, R{16}, R{17});
    f.add(R{3}, R{3}, R{18});
    f.shli(R{3}, R{3}, 4);
    f.add(R{3}, R{3}, R{2});  // &a[q]
    f.fload(F{1}, R{19}, 0);  // ure
    f.fload(F{2}, R{19}, 8);  // uim
    f.fload(F{3}, R{3}, 0);   // tre
    f.fload(F{4}, R{3}, 8);   // tim
    f.fmul(F{5}, F{3}, F{14});
    f.fmul(F{6}, F{4}, F{15});
    f.fsub(F{5}, F{5}, F{6});  // vre
    f.fmul(F{6}, F{3}, F{15});
    f.fmul(F{7}, F{4}, F{14});
    f.fadd(F{6}, F{6}, F{7});  // vim
    f.fadd(F{7}, F{1}, F{5});
    f.fstore(R{19}, 0, F{7});
    f.fadd(F{7}, F{2}, F{6});
    f.fstore(R{19}, 8, F{7});
    f.fsub(F{7}, F{1}, F{5});
    f.fstore(R{3}, 0, F{7});
    f.fsub(F{7}, F{2}, F{6});
    f.fstore(R{3}, 8, F{7});
    // twiddle update; wr/wi reloaded from the stack (spill traffic)
    f.fload(F{12}, SP, 32);
    f.fload(F{13}, SP, 40);
    f.fmul(F{5}, F{14}, F{12});
    f.fmul(F{6}, F{15}, F{13});
    f.fsub(F{5}, F{5}, F{6});  // ncr
    f.fmul(F{6}, F{14}, F{13});
    f.fmul(F{7}, F{15}, F{12});
    f.fadd(F{6}, F{6}, F{7});  // nci
    f.fmov(F{14}, F{5});
    f.fmov(F{15}, F{6});
    f.addi(R{17}, R{17}, 1);
    f.jmp(inner);
    f.bind(block_next);
    f.add(R{16}, R{16}, R{14});
    f.jmp(block);
    f.bind(next_len);
    f.shli(R{14}, R{14}, 1);
    f.jmp(outer);
    f.bind(scale_check);
    f.load(R{16}, SP, 8, 8);  // dir
    f.sltsi(R{0}, R{16}, 0);
    f.brz(R{0}, end);
    f.load(R{15}, SP, 16, 8);  // n
    f.i2f(F{10}, R{15});
    f.fmovi(F{11}, 1.0);
    f.fdiv(F{10}, F{11}, F{10});  // inv = 1/n
    f.load(R{2}, SP, 0, 8);       // buf
    f.shli(R{17}, R{15}, 1);      // 2n
    f.movi(R{16}, 0);
    f.bind(scale_loop);
    f.slts(R{0}, R{16}, R{17});
    f.brz(R{0}, end);
    f.shli(R{3}, R{16}, 3);
    f.add(R{3}, R{3}, R{2});
    f.fload(F{11}, R{3}, 0);
    f.fmul(F{11}, F{11}, F{10});
    f.fstore(R{3}, 0, F{11});
    f.addi(R{16}, R{16}, 1);
    f.jmp(scale_loop);
    f.bind(end);
    f.leave(64);
    f.ret();
  }

  // ---- cmult(a=r1, b=r2, dst=r3): complex multiply ---------------------------
  {
    FunctionBuilder& f = prog.begin_function("cmult");
    f.enter(16);
    f.store(SP, 0, R{1}, 8);  // spill (models compiled arg handling)
    f.fload(F{1}, R{1}, 0);
    f.fload(F{2}, R{1}, 8);
    f.fload(F{3}, R{2}, 0);
    f.fload(F{4}, R{2}, 8);
    f.fmul(F{5}, F{1}, F{3});
    f.fmul(F{6}, F{2}, F{4});
    f.fsub(F{5}, F{5}, F{6});
    f.fmul(F{6}, F{1}, F{4});
    f.fmul(F{7}, F{2}, F{3});
    f.fadd(F{6}, F{6}, F{7});
    f.load(R{4}, SP, 0, 8);  // reload
    f.fstore(R{3}, 0, F{5});
    f.fstore(R{3}, 8, F{6});
    f.leave(16);
    f.ret();
  }

  // ---- cadd(a=r1, b=r2, dst=r3): complex add ---------------------------------
  {
    FunctionBuilder& f = prog.begin_function("cadd");
    f.enter(16);
    f.store(SP, 0, R{1}, 8);
    f.fload(F{1}, R{1}, 0);
    f.fload(F{2}, R{1}, 8);
    f.fload(F{3}, R{2}, 0);
    f.fload(F{4}, R{2}, 8);
    f.fadd(F{5}, F{1}, F{3});
    f.fadd(F{6}, F{2}, F{4});
    f.load(R{4}, SP, 0, 8);
    f.fstore(R{3}, 0, F{5});
    f.fstore(R{3}, 8, F{6});
    f.leave(16);
    f.ret();
  }

  // ---- zeroRealVec(addr=r1, count=r2): zero an f32 vector --------------------
  // -O0 style: the induction variable lives on the stack, so the kernel reads
  // almost exclusively from the stack (Table II: incl/excl ratio > 300).
  {
    FunctionBuilder& f = prog.begin_function("zeroRealVec");
    f.enter(16);
    f.movi(R{3}, 0);
    f.store(SP, 0, R{3}, 8);
    f.fmovi(F{1}, 0.0);
    const auto head = f.new_label();
    const auto done = f.new_label();
    f.bind(head);
    f.load(R{3}, SP, 0, 8);
    f.slts(R{0}, R{3}, R{2});
    f.brz(R{0}, done);
    f.shli(R{4}, R{3}, 2);
    f.add(R{4}, R{4}, R{1});
    f.fstore4(R{4}, 0, F{1});
    f.addi(R{3}, R{3}, 1);
    f.store(SP, 0, R{3}, 8);
    f.jmp(head);
    f.bind(done);
    f.leave(16);
    f.ret();
  }

  // ---- zeroCplxVec(addr=r1, n=r2): zero n complex f64 pairs ------------------
  {
    FunctionBuilder& f = prog.begin_function("zeroCplxVec");
    f.enter(16);
    f.movi(R{3}, 0);
    f.store(SP, 0, R{3}, 8);
    const auto head = f.new_label();
    const auto done = f.new_label();
    f.bind(head);
    f.load(R{3}, SP, 0, 8);
    f.slts(R{0}, R{3}, R{2});
    f.brz(R{0}, done);
    f.shli(R{4}, R{3}, 4);
    f.add(R{4}, R{4}, R{1});
    f.fmovi(F{1}, 0.0);
    f.fstore(R{4}, 0, F{1});
    f.fstore(R{4}, 8, F{1});
    f.addi(R{3}, R{3}, 1);
    f.store(SP, 0, R{3}, 8);
    f.jmp(head);
    f.bind(done);
    f.leave(16);
    f.ret();
  }

  // ---- r2c(src=r1, dst=r2, n=r3): real vector -> complex ---------------------
  {
    FunctionBuilder& f = prog.begin_function("r2c");
    f.count_loop(R{8}, 0, R{3}, [&] {
      f.shli(R{9}, R{8}, 3);
      f.add(R{9}, R{9}, R{1});
      f.fload(F{8}, R{9}, 0);
      f.shli(R{10}, R{8}, 4);
      f.add(R{10}, R{10}, R{2});
      f.fstore(R{10}, 0, F{8});
      f.fmovi(F{9}, 0.0);
      f.fstore(R{10}, 8, F{9});
    });
    f.ret();
  }

  // ---- c2r(src=r1, dst=r2, c=r3, n=r4): overlap-save tail extraction ---------
  {
    FunctionBuilder& f = prog.begin_function("c2r");
    f.sub(R{8}, R{4}, R{3});  // n - c
    f.count_loop(R{9}, 0, R{3}, [&] {
      f.add(R{10}, R{8}, R{9});
      f.shli(R{10}, R{10}, 4);
      f.add(R{10}, R{10}, R{1});
      f.fload(F{8}, R{10}, 0);
      f.shli(R{11}, R{9}, 3);
      f.add(R{11}, R{11}, R{2});
      f.fstore(R{11}, 0, F{8});
    });
    f.ret();
  }

  // ---- vsmult2d(dst=r1, src=r2, scalar=f1): 2-vector scale -------------------
  {
    FunctionBuilder& f = prog.begin_function("vsmult2d");
    f.fload(F{2}, R{2}, 0);
    f.fmul(F{2}, F{2}, F{1});
    f.fstore(R{1}, 0, F{2});
    f.fload(F{2}, R{2}, 8);
    f.fmul(F{2}, F{2}, F{1});
    f.fstore(R{1}, 8, F{2});
    f.ret();
  }

  // ---- calculateGainPQ(s=r1): distance -> gain + delay for one speaker -------
  {
    FunctionBuilder& f = prog.begin_function("calculateGainPQ");
    f.enter(16);
    f.store(SP, 0, R{1}, 8);  // s
    f.movi(R{14}, static_cast<std::int64_t>(g_spos));
    f.fload(F{10}, R{14}, 0);  // px
    f.fload(F{11}, R{14}, 8);  // py (= dy)
    f.movi(R{15}, static_cast<std::int64_t>(g_spk_x));
    f.shli(R{16}, R{1}, 3);
    f.add(R{16}, R{16}, R{15});
    f.fload(F{12}, R{16}, 0);   // xs
    f.fsub(F{10}, F{10}, F{12});  // dx
    f.fmul(F{12}, F{10}, F{10});
    f.fmul(F{13}, F{11}, F{11});
    f.fadd(F{12}, F{12}, F{13});
    f.fsqrt(F{12}, F{12});  // d
    f.movi(R{14}, static_cast<std::int64_t>(g_sdir));
    f.fstore(R{14}, 0, F{10});
    f.fstore(R{14}, 8, F{11});
    f.fmovi(F{13}, 1.0);
    f.fdiv(F{1}, F{13}, F{12});  // inv = 1/d (argument for vsmult2d)
    f.fstore(SP, 8, F{12});      // spill d across the call
    f.movi(R{1}, static_cast<std::int64_t>(g_sunit));
    f.movi(R{2}, static_cast<std::int64_t>(g_sdir));
    f.call("vsmult2d");
    f.fload(F{12}, SP, 8);  // d
    f.fmovi(F{13}, 0.5);
    f.fmax(F{13}, F{12}, F{13});
    f.fmovi(F{14}, 0.25);
    f.fdiv(F{14}, F{14}, F{13});  // gain
    f.load(R{14}, SP, 0, 8);      // s
    f.movi(R{15}, static_cast<std::int64_t>(g_gains));
    f.shli(R{16}, R{14}, 3);
    f.add(R{16}, R{16}, R{15});
    f.fstore(R{16}, 0, F{14});
    f.fmovi(F{13}, derived.delay_factor);
    f.fmul(F{13}, F{12}, F{13});
    f.f2i(R{17}, F{13});  // truncating delay
    f.movi(R{18}, RING - C - 1);
    f.slts(R{0}, R{18}, R{17});  // limit < delay ?
    f.mov(R{17}, R{18});
    f.predicate_last(R{0});
    f.movi(R{18}, 0);
    f.slts(R{0}, R{17}, R{18});  // delay < 0 ?
    f.mov(R{17}, R{18});
    f.predicate_last(R{0});
    f.movi(R{15}, static_cast<std::int64_t>(g_delays));
    f.shli(R{16}, R{14}, 3);
    f.add(R{16}, R{16}, R{15});
    f.store(R{16}, 0, R{17}, 8);
    f.leave(16);
    f.ret();
  }

  // ---- PrimarySource_deriveTP: advance the moving source ---------------------
  {
    FunctionBuilder& f = prog.begin_function("PrimarySource_deriveTP");
    f.fmovi(F{1}, derived.dt);
    f.movi(R{1}, static_cast<std::int64_t>(g_sstep));
    f.movi(R{2}, static_cast<std::int64_t>(g_svel));
    f.call("vsmult2d");  // step = vel * dt
    f.movi(R{14}, static_cast<std::int64_t>(g_spos));
    f.movi(R{15}, static_cast<std::int64_t>(g_sstep));
    f.fload(F{10}, R{14}, 0);
    f.fload(F{11}, R{15}, 0);
    f.fadd(F{10}, F{10}, F{11});
    f.fstore(R{14}, 0, F{10});
    f.fload(F{10}, R{14}, 8);
    f.fload(F{11}, R{15}, 8);
    f.fadd(F{10}, F{10}, F{11});
    f.fstore(R{14}, 8, F{10});
    f.ret();
  }

  // ---- AudioIo_getFrames(chunk=r1): f32 input -> f64 working frame -----------
  {
    FunctionBuilder& f = prog.begin_function("AudioIo_getFrames");
    f.muli(R{20}, R{1}, C * 4);
    f.movi(R{21}, static_cast<std::int64_t>(g_in_f32));
    f.add(R{20}, R{20}, R{21});
    f.movi(R{21}, static_cast<std::int64_t>(g_cur));
    f.count_loop_imm(R{22}, 0, C, [&] {
      f.shli(R{23}, R{22}, 2);
      f.add(R{23}, R{23}, R{20});
      f.fload4(F{16}, R{23}, 0);
      f.shli(R{24}, R{22}, 3);
      f.add(R{24}, R{24}, R{21});
      f.fstore(R{24}, 0, F{16});
    });
    f.ret();
  }

  // ---- Filter_process_pre_: slide the overlap-save input window --------------
  {
    FunctionBuilder& f = prog.begin_function("Filter_process_pre_");
    f.movi(R{20}, static_cast<std::int64_t>(g_in_block));
    f.count_loop_imm(R{21}, 0, N - C, [&] {
      f.shli(R{22}, R{21}, 3);
      f.add(R{22}, R{22}, R{20});
      f.fload(F{16}, R{22}, C * 8);
      f.fstore(R{22}, 0, F{16});
    });
    f.movi(R{23}, static_cast<std::int64_t>(g_cur));
    f.count_loop_imm(R{21}, 0, C, [&] {
      f.shli(R{22}, R{21}, 3);
      f.add(R{24}, R{22}, R{23});
      f.fload(F{16}, R{24}, 0);
      f.add(R{24}, R{22}, R{20});
      f.fstore(R{24}, (N - C) * 8, F{16});
    });
    f.ret();
  }

  // ---- Filter_process: FFT -> per-bin cmult/cadd -> inverse FFT ---------------
  {
    FunctionBuilder& f = prog.begin_function("Filter_process");
    f.enter(32);
    f.movi(R{1}, static_cast<std::int64_t>(g_X));
    f.movi(R{2}, N);
    f.call("zeroCplxVec");
    f.movi(R{1}, static_cast<std::int64_t>(g_in_block));
    f.movi(R{2}, static_cast<std::int64_t>(g_X));
    f.movi(R{3}, N);
    f.call("r2c");
    f.movi(R{1}, static_cast<std::int64_t>(g_X));
    f.movi(R{2}, 1);
    f.movi(R{3}, N);
    f.movi(R{4}, bits);
    f.call("fft1d");
    // Per-bin convolution: T[k] = X[k]*H[k]; Y[k] = T[k] + B[k].
    f.movi(R{20}, 0);
    f.store(SP, 0, R{20}, 8);  // k spilled across the calls
    const auto bin_head = f.new_label();
    const auto bins_done = f.new_label();
    f.bind(bin_head);
    f.load(R{20}, SP, 0, 8);
    f.sltsi(R{0}, R{20}, N);
    f.brz(R{0}, bins_done);
    f.shli(R{21}, R{20}, 4);
    f.movi(R{1}, static_cast<std::int64_t>(g_X));
    f.add(R{1}, R{1}, R{21});
    f.movi(R{2}, static_cast<std::int64_t>(g_H));
    f.add(R{2}, R{2}, R{21});
    f.movi(R{3}, static_cast<std::int64_t>(g_T));
    f.add(R{3}, R{3}, R{21});
    f.call("cmult");
    f.load(R{20}, SP, 0, 8);
    f.shli(R{21}, R{20}, 4);
    f.movi(R{1}, static_cast<std::int64_t>(g_T));
    f.add(R{1}, R{1}, R{21});
    f.movi(R{2}, static_cast<std::int64_t>(g_B));
    f.add(R{2}, R{2}, R{21});
    f.movi(R{3}, static_cast<std::int64_t>(g_Y));
    f.add(R{3}, R{3}, R{21});
    f.call("cadd");
    f.load(R{20}, SP, 0, 8);
    f.addi(R{20}, R{20}, 1);
    f.store(SP, 0, R{20}, 8);
    f.jmp(bin_head);
    f.bind(bins_done);
    f.movi(R{1}, static_cast<std::int64_t>(g_Y));
    f.movi(R{2}, -1);
    f.movi(R{3}, N);
    f.movi(R{4}, bits);
    f.call("fft1d");
    f.movi(R{1}, static_cast<std::int64_t>(g_Y));
    f.movi(R{2}, static_cast<std::int64_t>(g_y_chunk));
    f.movi(R{3}, C);
    f.movi(R{4}, N);
    f.call("c2r");
    f.leave(32);
    f.ret();
  }

  // ---- DelayLine_processChunk(chunk=r1): MIMO delay line ----------------------
  {
    FunctionBuilder& f = prog.begin_function("DelayLine_processChunk");
    f.enter(32);
    f.muli(R{20}, R{1}, C);  // wbase
    f.store(SP, 0, R{20}, 8);
    // Write the filtered chunk into the ring.
    f.movi(R{21}, static_cast<std::int64_t>(g_ring));
    f.movi(R{22}, static_cast<std::int64_t>(g_y_chunk));
    f.count_loop_imm(R{23}, 0, C, [&] {
      f.add(R{24}, R{20}, R{23});
      f.andi(R{24}, R{24}, RING - 1);
      f.shli(R{24}, R{24}, 3);
      f.add(R{24}, R{24}, R{21});
      f.shli(R{25}, R{23}, 3);
      f.add(R{25}, R{25}, R{22});
      f.fload(F{16}, R{25}, 0);
      f.fstore(R{24}, 0, F{16});
    });
    // Per speaker: zero the output chunk, then accumulate delayed samples.
    f.movi(R{26}, 0);  // s
    const auto spk_head = f.new_label();
    const auto samp_head = f.new_label();
    const auto spk_next = f.new_label();
    const auto done = f.new_label();
    f.bind(spk_head);
    f.sltsi(R{0}, R{26}, NS);
    f.brz(R{0}, done);
    f.movi(R{27}, static_cast<std::int64_t>(g_spk));
    f.muli(R{1}, R{26}, C * 4);
    f.add(R{1}, R{1}, R{27});
    f.movi(R{2}, C);
    f.call("zeroRealVec");
    f.movi(R{2}, static_cast<std::int64_t>(g_gains));
    f.shli(R{3}, R{26}, 3);
    f.add(R{2}, R{2}, R{3});
    f.fload(F{17}, R{2}, 0);  // gain
    f.movi(R{2}, static_cast<std::int64_t>(g_delays));
    f.shli(R{3}, R{26}, 3);
    f.add(R{2}, R{2}, R{3});
    f.load(R{24}, R{2}, 0, 8);  // delay
    f.load(R{20}, SP, 0, 8);    // wbase
    f.muli(R{25}, R{26}, C * 4);
    f.add(R{25}, R{25}, R{27});  // dst = spk + s*C*4
    f.movi(R{23}, 0);            // i
    f.bind(samp_head);
    f.sltsi(R{0}, R{23}, C);
    f.brz(R{0}, spk_next);
    f.add(R{2}, R{20}, R{23});
    f.sub(R{2}, R{2}, R{24});  // g = wbase + i - delay
    f.fmovi(F{16}, 0.0);
    f.sltsi(R{3}, R{2}, 0);
    f.xori(R{5}, R{3}, 1);  // predicate: g >= 0
    f.andi(R{2}, R{2}, RING - 1);
    f.shli(R{2}, R{2}, 3);
    f.add(R{2}, R{2}, R{21});
    f.fload(F{16}, R{2}, 0);  // sample (predicated on g >= 0)
    f.predicate_last(R{5});
    f.shli(R{4}, R{23}, 2);
    f.add(R{4}, R{4}, R{25});
    f.fload4(F{18}, R{4}, 0);   // prev
    f.fmul(F{19}, F{17}, F{16});
    f.fadd(F{18}, F{18}, F{19});
    f.fstore4(R{4}, 0, F{18});
    f.addi(R{23}, R{23}, 1);
    f.jmp(samp_head);
    f.bind(spk_next);
    f.addi(R{26}, R{26}, 1);
    f.jmp(spk_head);
    f.bind(done);
    f.leave(32);
    f.ret();
  }

  // ---- AudioIo_setFrames(chunk=r1): planar block copy into the frame store ---
  // A memcpy-style kernel: 64-byte string moves, almost no stack traffic, and
  // every destination byte written exactly once across the run (the paper's
  // "data transfer via separate memory addresses").
  {
    FunctionBuilder& f = prog.begin_function("AudioIo_setFrames");
    f.muli(R{20}, R{1}, C * 4);
    f.movi(R{21}, static_cast<std::int64_t>(g_frames));
    f.add(R{20}, R{20}, R{21});  // dst for s = 0
    f.movi(R{22}, static_cast<std::int64_t>(g_spk));
    f.movi(R{23}, 0);  // s
    const auto head = f.new_label();
    const auto copy = f.new_label();
    const auto copied = f.new_label();
    const auto done = f.new_label();
    f.bind(head);
    f.sltsi(R{0}, R{23}, NS);
    f.brz(R{0}, done);
    f.mov(R{24}, R{20});
    f.mov(R{25}, R{22});
    f.movi(R{26}, C * 4 / 64);
    f.bind(copy);
    f.brz(R{26}, copied);
    f.movs(R{24}, R{25}, 64);
    f.addi(R{26}, R{26}, -1);
    f.jmp(copy);
    f.bind(copied);
    f.addi(R{20}, R{20}, TOTAL * 4);  // next speaker plane
    f.addi(R{22}, R{22}, C * 4);
    f.addi(R{23}, R{23}, 1);
    f.jmp(head);
    f.bind(done);
    f.ret();
  }

  // ---- ffw(which=r1): build filter spectrum ----------------------------------
  {
    FunctionBuilder& f = prog.begin_function("ffw");
    f.enter(32);
    f.store(SP, 0, R{1}, 8);
    f.movi(R{20}, static_cast<std::int64_t>(g_ir));
    // Zero the impulse-response staging buffer.
    f.count_loop_imm(R{21}, 0, N, [&] {
      f.fmovi(F{16}, 0.0);
      f.shli(R{22}, R{21}, 3);
      f.add(R{22}, R{22}, R{20});
      f.fstore(R{22}, 0, F{16});
    });
    const auto bias_filter = f.new_label();
    const auto build_done = f.new_label();
    f.load(R{1}, SP, 0, 8);
    f.brnz(R{1}, bias_filter);
    // Main filter: exponentially decaying FIR, DC gain ~1.
    const double coef0 =
        0.9 * (1.0 - 0.97) /
        (1.0 - std::pow(0.97, static_cast<double>(C) + 1.0));
    f.fmovi(F{16}, coef0);
    f.fmovi(F{17}, 0.97);
    f.count_loop_imm(R{21}, 0, C + 1, [&] {
      f.shli(R{22}, R{21}, 3);
      f.add(R{22}, R{22}, R{20});
      f.fstore(R{22}, 0, F{16});
      f.fmul(F{16}, F{16}, F{17});
    });
    f.jmp(build_done);
    f.bind(bias_filter);
    f.fmovi(F{16}, 0.05);
    f.fstore(R{20}, 0, F{16});
    f.fmovi(F{16}, 0.025);
    f.fstore(R{20}, (C / 2) * 8, F{16});
    f.bind(build_done);
    // Transform in the scratch buffer, then copy the finished spectrum into
    // its table with ffw's own stores — so QUAD attributes the H/B tables to
    // ffw, the kernel whose OUT bytes every chunk's cmult/cadd then consume
    // (the paper's ffw shows the same producer signature).
    f.movi(R{1}, static_cast<std::int64_t>(g_T));
    f.movi(R{2}, N);
    f.call("zeroCplxVec");
    f.movi(R{1}, static_cast<std::int64_t>(g_ir));
    f.movi(R{2}, static_cast<std::int64_t>(g_T));
    f.movi(R{3}, N);
    f.call("r2c");
    f.movi(R{1}, static_cast<std::int64_t>(g_T));
    f.movi(R{2}, 1);
    f.movi(R{3}, N);
    f.movi(R{4}, bits);
    f.call("fft1d");
    // dst = which ? B : H
    f.load(R{1}, SP, 0, 8);
    f.movi(R{23}, static_cast<std::int64_t>(g_H));
    f.movi(R{24}, static_cast<std::int64_t>(g_B));
    f.mov(R{23}, R{24});
    f.predicate_last(R{1});
    f.movi(R{24}, static_cast<std::int64_t>(g_T));
    f.count_loop_imm(R{21}, 0, 2 * N, [&] {
      f.shli(R{22}, R{21}, 3);
      f.add(R{25}, R{22}, R{24});
      f.fload(F{16}, R{25}, 0);
      f.add(R{25}, R{22}, R{23});
      f.fstore(R{25}, 0, F{16});
    });
    f.leave(32);
    f.ret();
  }

  // ---- wav_load: parse the input WAV, convert PCM16 -> f32 -------------------
  {
    FunctionBuilder& f = prog.begin_function("wav_load");
    f.enter(64);
    f.movi(R{1}, WfsArtifacts::kInputFd);
    f.movi(R{2}, static_cast<std::int64_t>(g_stage));
    f.movi(R{3}, 44);
    f.call("libc_read");
    f.movi(R{20}, static_cast<std::int64_t>(g_stage));
    const auto bad = f.new_label();
    const auto hdr_ok = f.new_label();
    f.load(R{21}, R{20}, 0, 4);
    f.movi(R{22}, 0x46464952);  // 'RIFF'
    f.seq(R{21}, R{21}, R{22});
    f.brz(R{21}, bad);
    f.load(R{21}, R{20}, 8, 4);
    f.movi(R{22}, 0x45564157);  // 'WAVE'
    f.seq(R{21}, R{21}, R{22});
    f.brz(R{21}, bad);
    f.load(R{21}, R{20}, 36, 4);
    f.movi(R{22}, 0x61746164);  // 'data'
    f.seq(R{21}, R{21}, R{22});
    f.brnz(R{21}, hdr_ok);
    f.bind(bad);
    f.movi(R{1}, -1);
    f.sys(Sys::kPrintI64);
    f.halt();  // malformed input: abort the guest
    f.bind(hdr_ok);
    f.load(R{23}, R{20}, 40, 4);  // data bytes
    f.shrli(R{23}, R{23}, 1);     // sample count
    f.movi(R{24}, TOTAL);
    f.slts(R{0}, R{24}, R{23});
    f.mov(R{23}, R{24});
    f.predicate_last(R{0});        // clamp to the frame budget
    f.store(SP, 0, R{23}, 8);
    f.movi(R{25}, static_cast<std::int64_t>(g_in_f32));
    f.movi(R{26}, 0);  // g
    const auto conv_head = f.new_label();
    const auto conv_inner = f.new_label();
    const auto inner_done = f.new_label();
    const auto conv_done = f.new_label();
    f.bind(conv_head);
    f.load(R{23}, SP, 0, 8);
    f.slts(R{0}, R{26}, R{23});
    f.brz(R{0}, conv_done);
    f.sub(R{27}, R{23}, R{26});  // remaining
    f.movi(R{24}, 1024);
    f.slts(R{0}, R{24}, R{27});
    f.mov(R{27}, R{24});
    f.predicate_last(R{0});  // block = min(1024, remaining)
    f.movi(R{1}, WfsArtifacts::kInputFd);
    f.movi(R{2}, static_cast<std::int64_t>(g_stage));
    f.shli(R{3}, R{27}, 1);
    f.call("libc_read");
    f.movi(R{20}, static_cast<std::int64_t>(g_stage));
    f.movi(R{21}, 0);  // j
    f.bind(conv_inner);
    f.slts(R{0}, R{21}, R{27});
    f.brz(R{0}, inner_done);
    f.shli(R{22}, R{21}, 1);
    f.add(R{22}, R{22}, R{20});
    f.loads(R{2}, R{22}, 0, 2);  // sign-extended PCM16
    f.i2f(F{16}, R{2});
    f.fmovi(F{17}, 1.0 / 32768.0);
    f.fmul(F{16}, F{16}, F{17});
    f.add(R{3}, R{26}, R{21});
    f.shli(R{3}, R{3}, 2);
    f.add(R{3}, R{3}, R{25});
    f.fstore4(R{3}, 0, F{16});
    f.addi(R{21}, R{21}, 1);
    f.jmp(conv_inner);
    f.bind(inner_done);
    f.add(R{26}, R{26}, R{27});
    f.jmp(conv_head);
    f.bind(conv_done);
    // Zero-fill any remainder of the input buffer.
    const auto fill_head = f.new_label();
    const auto fill_done = f.new_label();
    f.bind(fill_head);
    f.movi(R{24}, TOTAL);
    f.slts(R{0}, R{26}, R{24});
    f.brz(R{0}, fill_done);
    f.shli(R{3}, R{26}, 2);
    f.add(R{3}, R{3}, R{25});
    f.fmovi(F{16}, 0.0);
    f.fstore4(R{3}, 0, F{16});
    f.addi(R{26}, R{26}, 1);
    f.jmp(fill_head);
    f.bind(fill_done);
    f.leave(64);
    f.ret();
  }

  // ---- wav_store: normalise, interleave, quantise, write the output WAV ------
  {
    FunctionBuilder& f = prog.begin_function("wav_store");
    f.enter(64);
    // Build the 44-byte canonical header in the staging buffer.
    const std::int64_t data_bytes = TOTAL * NS * 2;
    const std::int64_t byte_rate =
        static_cast<std::int64_t>(cfg.sample_rate) * NS * 2;
    f.movi(R{20}, static_cast<std::int64_t>(g_stage));
    auto put32 = [&](std::int64_t off, std::int64_t value) {
      f.movi(R{21}, value);
      f.store(R{20}, off, R{21}, 4);
    };
    auto put16 = [&](std::int64_t off, std::int64_t value) {
      f.movi(R{21}, value);
      f.store(R{20}, off, R{21}, 2);
    };
    put32(0, 0x46464952);           // 'RIFF'
    put32(4, 36 + data_bytes);
    put32(8, 0x45564157);           // 'WAVE'
    put32(12, 0x20746d66);          // 'fmt '
    put32(16, 16);
    put16(20, 1);                   // PCM
    put16(22, NS);
    put32(24, static_cast<std::int64_t>(cfg.sample_rate));
    put32(28, byte_rate);
    put16(32, NS * 2);
    put16(34, 16);
    put32(36, 0x61746164);          // 'data'
    put32(40, data_bytes);
    f.movi(R{1}, WfsArtifacts::kOutputFd);
    f.movi(R{2}, static_cast<std::int64_t>(g_stage));
    f.movi(R{3}, 44);
    f.call("libc_write");
    // Peak scan passes over the whole frame store.
    f.fmovi(F{16}, 0.0);  // peak
    f.movi(R{20}, 0);     // pass
    const auto pass_head = f.new_label();
    const auto pass_inner = f.new_label();
    const auto pass_end = f.new_label();
    const auto pass_done = f.new_label();
    f.bind(pass_head);
    f.sltsi(R{0}, R{20}, static_cast<std::int64_t>(cfg.store_passes) - 1);
    f.brz(R{0}, pass_done);
    f.fmovi(F{17}, 0.0);
    f.movi(R{21}, static_cast<std::int64_t>(g_frames));
    f.movi(R{22}, 0);
    f.bind(pass_inner);
    f.movi(R{23}, NS * TOTAL);
    f.slts(R{0}, R{22}, R{23});
    f.brz(R{0}, pass_end);
    f.shli(R{23}, R{22}, 2);
    f.add(R{23}, R{23}, R{21});
    f.fload4(F{18}, R{23}, 0);
    f.fabs_(F{18}, F{18});
    f.fmax(F{17}, F{17}, F{18});
    f.addi(R{22}, R{22}, 1);
    f.jmp(pass_inner);
    f.bind(pass_end);
    f.fmov(F{16}, F{17});
    f.addi(R{20}, R{20}, 1);
    f.jmp(pass_head);
    f.bind(pass_done);
    // scale = 0.9 / fmax(peak, 1e-9)
    f.fmovi(F{17}, 1e-9);
    f.fmax(F{17}, F{16}, F{17});
    f.fmovi(F{18}, 0.9);
    f.fdiv(F{17}, F{18}, F{17});
    // Interleave + quantise, flushing the staging buffer in 2 KiB blocks.
    f.movi(R{20}, 0);  // g
    f.movi(R{24}, static_cast<std::int64_t>(g_stage));
    f.movi(R{25}, 0);  // bytes staged
    const auto g_head = f.new_label();
    const auto s_head = f.new_label();
    const auto no_flush = f.new_label();
    const auto g_next = f.new_label();
    const auto flush_tail = f.new_label();
    const auto done = f.new_label();
    f.bind(g_head);
    f.movi(R{2}, TOTAL);
    f.slts(R{0}, R{20}, R{2});
    f.brz(R{0}, flush_tail);
    f.movi(R{21}, 0);  // s
    f.bind(s_head);
    f.sltsi(R{0}, R{21}, NS);
    f.brz(R{0}, g_next);
    f.movi(R{2}, TOTAL);
    f.mul(R{3}, R{21}, R{2});
    f.add(R{3}, R{3}, R{20});
    f.shli(R{3}, R{3}, 2);
    f.movi(R{2}, static_cast<std::int64_t>(g_frames));
    f.add(R{3}, R{3}, R{2});
    f.fload4(F{19}, R{3}, 0);
    // Stack round-trip (wav_store reads ~half its bytes from the stack).
    f.fstore(SP, 0, F{19});
    f.fload(F{19}, SP, 0);
    f.fmul(F{19}, F{19}, F{17});
    f.fmovi(F{20}, 32767.0);
    f.fmul(F{19}, F{19}, F{20});
    f.fmovi(F{20}, -32768.0);
    f.fmax(F{19}, F{19}, F{20});
    f.fmovi(F{20}, 32767.0);
    f.fmin(F{19}, F{19}, F{20});
    f.f2i(R{2}, F{19});
    f.store(SP, 8, R{2}, 8);
    f.load(R{2}, SP, 8, 8);
    f.add(R{3}, R{24}, R{25});
    f.store(R{3}, 0, R{2}, 2);
    f.addi(R{25}, R{25}, 2);
    f.movi(R{2}, 2048);
    f.slts(R{0}, R{25}, R{2});
    f.brnz(R{0}, no_flush);
    f.movi(R{1}, WfsArtifacts::kOutputFd);
    f.mov(R{2}, R{24});
    f.mov(R{3}, R{25});
    f.call("libc_write");
    f.movi(R{25}, 0);
    f.bind(no_flush);
    f.addi(R{21}, R{21}, 1);
    f.jmp(s_head);
    f.bind(g_next);
    f.addi(R{20}, R{20}, 1);
    f.jmp(g_head);
    f.bind(flush_tail);
    f.brz(R{25}, done);
    f.movi(R{1}, WfsArtifacts::kOutputFd);
    f.mov(R{2}, R{24});
    f.mov(R{3}, R{25});
    f.call("libc_write");
    f.bind(done);
    f.leave(64);
    f.ret();
  }

  // ---- main driver ------------------------------------------------------------
  {
    FunctionBuilder& f = prog.begin_function("main");
    f.call("ldint");
    f.movi(R{1}, 0);
    f.call("ffw");
    f.movi(R{1}, 1);
    f.call("ffw");
    f.call("wav_load");
    f.movi(R{28}, 0);  // chunk
    const auto loop = f.new_label();
    const auto skip_gains = f.new_label();
    const auto gain_s = f.new_label();
    const auto after = f.new_label();
    f.bind(loop);
    f.sltsi(R{0}, R{28}, K);
    f.brz(R{0}, after);
    f.sltsi(R{29}, R{28}, M);
    f.brz(R{29}, skip_gains);
    f.call("PrimarySource_deriveTP");
    f.movi(R{29}, 0);
    f.bind(gain_s);
    f.sltsi(R{0}, R{29}, NS);
    f.brz(R{0}, skip_gains);
    f.mov(R{1}, R{29});
    f.call("calculateGainPQ");
    f.addi(R{29}, R{29}, 1);
    f.jmp(gain_s);
    f.bind(skip_gains);
    f.mov(R{1}, R{28});
    f.call("AudioIo_getFrames");
    f.call("Filter_process_pre_");
    f.call("Filter_process");
    f.mov(R{1}, R{28});
    f.call("DelayLine_processChunk");
    f.mov(R{1}, R{28});
    f.call("AudioIo_setFrames");
    f.addi(R{28}, R{28}, 1);
    f.jmp(loop);
    f.bind(after);
    f.call("wav_store");
    f.halt();
  }

  WfsArtifacts artifacts;
  artifacts.program = prog.build("main");
  artifacts.frames_addr = g_frames;
  artifacts.in_f32_addr = g_in_f32;
  artifacts.gains_addr = g_gains;
  artifacts.delays_addr = g_delays;
  artifacts.h_addr = g_H;
  artifacts.b_addr = g_B;
  (void)g_ir;
  (void)g_sunit;
  return artifacts;
}

}  // namespace tq::wfs
