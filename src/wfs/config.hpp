// Configuration of the hArtes-wfs reimplementation.
//
// The paper's run uses one primary wavefront source, thirty-two secondary
// sources (speakers), and processes the input in 493 chunks of 1024 samples
// with a 2048-point FFT (reconstructed from the call counts in Table I:
// fft1d 984 ≈ 2/chunk, bitrev 2'015'232 = 984 × 2048, cadd/cmult
// 1'009'664 = 493 × 2048, zeroRealVec 15'782 ≈ 493 × 32). The interpreter
// substrate makes the paper's >6e9-instruction run impractical, so the
// default here keeps the *structure* — same kernels, same per-chunk call
// topology, 32 speakers — at a reduced chunk count and FFT size.
#pragma once

#include <cstdint>

#include "support/check.hpp"

namespace tq::wfs {

/// Scene and signal-chain parameters.
struct WfsConfig {
  std::uint32_t speakers = 32;       ///< secondary sources (paper: 32)
  std::uint32_t chunk_size = 256;    ///< samples per processing chunk (hop)
  std::uint32_t fft_size = 512;      ///< overlap-save FFT length (2x chunk)
  std::uint32_t chunks = 48;         ///< processing chunks in the run
  std::uint32_t move_chunks = 24;    ///< chunks during which the source moves
                                     ///< (drives the wave-propagation kernels)
  std::uint32_t ring_size = 4096;    ///< MIMO delay-line ring (power of two)
  double sample_rate = 48000.0;
  double sound_speed = 343.0;        ///< m/s
  double speaker_spacing = 0.2;      ///< m between adjacent speakers
  double source_distance = 3.0;      ///< initial source distance from array (m)
  double source_speed = 1.5;         ///< m/s lateral movement while "moving"
  std::uint32_t store_passes = 2;    ///< wav_store read passes over the frames
                                     ///< (models its heavy re-reading)

  /// Samples in the (mono) input signal.
  std::uint32_t input_samples() const noexcept { return chunks * chunk_size; }
  /// Interleaved f32 output samples across all channels.
  std::uint64_t output_samples() const noexcept {
    return static_cast<std::uint64_t>(chunks) * chunk_size * speakers;
  }

  void validate() const {
    TQUAD_CHECK(speakers >= 1 && speakers <= 64, "speakers out of range");
    TQUAD_CHECK((fft_size & (fft_size - 1)) == 0, "fft_size must be a power of two");
    TQUAD_CHECK(fft_size >= 2 * chunk_size, "fft_size must cover two chunks");
    TQUAD_CHECK((ring_size & (ring_size - 1)) == 0, "ring_size must be a power of two");
    TQUAD_CHECK(ring_size >= fft_size + chunk_size, "ring too small");
    TQUAD_CHECK(chunks >= 2, "need at least two chunks");
    TQUAD_CHECK(move_chunks <= chunks, "move_chunks exceeds chunks");
  }

  /// Full-size default (tens of millions of guest instructions; benches).
  static WfsConfig standard() { return WfsConfig{}; }

  /// Small configuration for unit/integration tests (~1M instructions).
  /// Geometry is shrunk so speaker delays fit well inside the short signal.
  static WfsConfig tiny() {
    WfsConfig cfg;
    cfg.speakers = 8;
    cfg.chunk_size = 64;
    cfg.fft_size = 128;
    cfg.chunks = 6;
    cfg.move_chunks = 3;
    cfg.ring_size = 1024;
    cfg.store_passes = 2;
    cfg.speaker_spacing = 0.05;
    cfg.source_distance = 0.5;
    cfg.source_speed = 0.5;
    return cfg;
  }
};

}  // namespace tq::wfs
