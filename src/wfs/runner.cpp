#include "wfs/runner.hpp"

namespace tq::wfs {

WfsRun prepare_wfs_run(const WfsConfig& cfg) {
  WfsRun run;
  run.config = cfg;
  run.artifacts = build_wfs_program(cfg);
  run.input = make_test_signal(cfg.input_samples(),
                               static_cast<std::uint32_t>(cfg.sample_rate));
  const int in_fd = run.host.attach_input(wav_encode(run.input));
  const int out_fd = run.host.create_output();
  TQUAD_CHECK(in_fd == WfsArtifacts::kInputFd, "unexpected input descriptor");
  TQUAD_CHECK(out_fd == WfsArtifacts::kOutputFd, "unexpected output descriptor");
  return run;
}

GoldenResult run_reference(const WfsConfig& cfg) {
  const WavData input = make_test_signal(
      cfg.input_samples(), static_cast<std::uint32_t>(cfg.sample_rate));
  return run_golden(cfg, input);
}

}  // namespace tq::wfs
