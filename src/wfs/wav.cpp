#include "wfs/wav.hpp"

#include <cmath>
#include <cstring>

#include "support/check.hpp"

namespace tq::wfs {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + 4);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + 2);
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& bytes, std::size_t off) {
  std::uint32_t v;
  std::memcpy(&v, bytes.data() + off, 4);
  return v;
}

std::uint16_t get_u16(const std::vector<std::uint8_t>& bytes, std::size_t off) {
  std::uint16_t v;
  std::memcpy(&v, bytes.data() + off, 2);
  return v;
}

}  // namespace

std::vector<std::uint8_t> wav_encode(const WavData& data) {
  const std::uint32_t data_bytes =
      static_cast<std::uint32_t>(data.samples.size() * 2);
  const std::uint32_t byte_rate = data.sample_rate * data.channels * 2;
  std::vector<std::uint8_t> out;
  out.reserve(kWavHeaderSize + data_bytes);
  out.insert(out.end(), {'R', 'I', 'F', 'F'});
  put_u32(out, 36 + data_bytes);
  out.insert(out.end(), {'W', 'A', 'V', 'E', 'f', 'm', 't', ' '});
  put_u32(out, 16);                      // fmt chunk size
  put_u16(out, 1);                       // PCM
  put_u16(out, data.channels);
  put_u32(out, data.sample_rate);
  put_u32(out, byte_rate);
  put_u16(out, static_cast<std::uint16_t>(data.channels * 2));  // block align
  put_u16(out, 16);                      // bits per sample
  out.insert(out.end(), {'d', 'a', 't', 'a'});
  put_u32(out, data_bytes);
  const auto* p = reinterpret_cast<const std::uint8_t*>(data.samples.data());
  out.insert(out.end(), p, p + data_bytes);
  TQUAD_CHECK(out.size() == kWavHeaderSize + data_bytes, "encoder size mismatch");
  return out;
}

WavData wav_decode(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kWavHeaderSize) TQUAD_THROW("WAV too short for a header");
  if (std::memcmp(bytes.data(), "RIFF", 4) != 0 ||
      std::memcmp(bytes.data() + 8, "WAVE", 4) != 0 ||
      std::memcmp(bytes.data() + 12, "fmt ", 4) != 0 ||
      std::memcmp(bytes.data() + 36, "data", 4) != 0) {
    TQUAD_THROW("not a canonical RIFF/WAVE stream");
  }
  if (get_u16(bytes, 20) != 1 || get_u16(bytes, 34) != 16) {
    TQUAD_THROW("only 16-bit PCM WAV is supported");
  }
  WavData data;
  data.channels = get_u16(bytes, 22);
  data.sample_rate = get_u32(bytes, 24);
  const std::uint32_t data_bytes = get_u32(bytes, 40);
  if (kWavHeaderSize + data_bytes > bytes.size()) {
    TQUAD_THROW("WAV data chunk truncated");
  }
  data.samples.resize(data_bytes / 2);
  std::memcpy(data.samples.data(), bytes.data() + kWavHeaderSize, data_bytes);
  return data;
}

WavData make_test_signal(std::uint32_t samples, std::uint32_t sample_rate) {
  WavData data;
  data.sample_rate = sample_rate;
  data.channels = 1;
  data.samples.resize(samples);
  const double fs = static_cast<double>(sample_rate);
  for (std::uint32_t i = 0; i < samples; ++i) {
    const double t = static_cast<double>(i) / fs;
    const double envelope =
        0.5 * (1.0 - std::cos(2.0 * M_PI * static_cast<double>(i) /
                              static_cast<double>(samples)));
    const double value = 0.4 * std::sin(2.0 * M_PI * 440.0 * t) +
                         0.2 * std::sin(2.0 * M_PI * 1320.0 * t + 0.3) +
                         0.1 * std::sin(2.0 * M_PI * 3300.0 * t + 1.1);
    data.samples[i] =
        static_cast<std::int16_t>(std::lround(32767.0 * 0.7 * envelope * value));
  }
  return data;
}

}  // namespace tq::wfs
