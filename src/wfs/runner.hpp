// Convenience harness around the wfs guest program: builds the program,
// synthesises the input WAV, wires the HostEnv descriptors, and decodes the
// guest's output. Shared by tests, examples, and every bench binary.
#pragma once

#include "vm/host_env.hpp"
#include "vm/machine.hpp"
#include "wfs/config.hpp"
#include "wfs/golden.hpp"
#include "wfs/wav.hpp"
#include "wfs/wfs_program.hpp"

namespace tq::wfs {

/// A ready-to-run wfs setup. Keep it alive for the duration of the run; the
/// Machine/Engine reference both the program and the host environment.
struct WfsRun {
  WfsConfig config;
  WfsArtifacts artifacts;
  WavData input;
  vm::HostEnv host;  ///< fd 0 = input WAV, fd 1 = output WAV

  /// Decode the WAV the guest wrote (call after the run).
  WavData decode_output() const {
    return wav_decode(host.output(WfsArtifacts::kOutputFd));
  }
};

/// Build everything needed to execute the wfs application for `cfg` with the
/// deterministic test signal as input.
WfsRun prepare_wfs_run(const WfsConfig& cfg);

/// Run the golden model on the same input prepare_wfs_run() generates.
GoldenResult run_reference(const WfsConfig& cfg);

}  // namespace tq::wfs
