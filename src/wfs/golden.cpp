#include "wfs/golden.hpp"

#include <cmath>

namespace tq::wfs {

namespace {
constexpr double kTwoPi = 6.283185307179586;
}

WfsDerived::WfsDerived(const WfsConfig& cfg) {
  dt = static_cast<double>(cfg.chunk_size) / cfg.sample_rate;
  delay_factor = cfg.sample_rate / cfg.sound_speed;
  source_x0 = -1.0;
  source_y0 = cfg.source_distance;
  vel_x = cfg.source_speed;
  vel_y = 0.0;
  speaker_x.resize(cfg.speakers);
  for (std::uint32_t s = 0; s < cfg.speakers; ++s) {
    speaker_x[s] = (static_cast<double>(s) -
                    static_cast<double>(cfg.speakers - 1) / 2.0) *
                   cfg.speaker_spacing;
  }
}

std::uint32_t golden_bitrev(std::uint32_t i, std::uint32_t bits) {
  std::uint32_t result = 0;
  for (std::uint32_t b = 0; b < bits; ++b) {
    result = (result << 1) | (i & 1);
    i >>= 1;
  }
  return result;
}

void golden_fft(std::vector<double>& a, std::uint32_t n, int dir) {
  std::uint32_t bits = 0;
  while ((1u << bits) < n) ++bits;
  // perm: bit-reversal permutation (guest: perm calls bitrev per element).
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t j = golden_bitrev(i, bits);
    if (j > i) {
      std::swap(a[2 * i], a[2 * j]);
      std::swap(a[2 * i + 1], a[2 * j + 1]);
    }
  }
  // Danielson–Lanczos butterflies. Operation order mirrors the guest fft1d.
  for (std::uint32_t len = 2; len <= n; len <<= 1) {
    const double ang = (static_cast<double>(dir) * kTwoPi) / static_cast<double>(len);
    const double wr = std::cos(ang);
    const double wi = std::sin(ang);
    for (std::uint32_t i = 0; i < n; i += len) {
      double cr = 1.0;
      double ci = 0.0;
      for (std::uint32_t j = 0; j < len / 2; ++j) {
        const std::uint32_t p = 2 * (i + j);
        const std::uint32_t q = 2 * (i + j + len / 2);
        const double ure = a[p];
        const double uim = a[p + 1];
        const double tre = a[q];
        const double tim = a[q + 1];
        const double vre = tre * cr - tim * ci;
        const double vim = tre * ci + tim * cr;
        a[p] = ure + vre;
        a[p + 1] = uim + vim;
        a[q] = ure - vre;
        a[q + 1] = uim - vim;
        const double ncr = cr * wr - ci * wi;
        const double nci = cr * wi + ci * wr;
        cr = ncr;
        ci = nci;
      }
    }
  }
  if (dir < 0) {
    const double inv = 1.0 / static_cast<double>(n);
    for (std::uint32_t i = 0; i < 2 * n; ++i) a[i] *= inv;
  }
}

void golden_ffw(const WfsConfig& cfg, int which, std::vector<double>& spec) {
  const std::uint32_t n = cfg.fft_size;
  const std::uint32_t c = cfg.chunk_size;
  std::vector<double> ir(n, 0.0);
  if (which == 0) {
    // Exponentially decaying lowpass FIR over the first C+1 taps,
    // normalised so the DC gain is ~1 regardless of C.
    double coef = 0.9 * (1.0 - 0.97) / (1.0 - std::pow(0.97, c + 1));
    for (std::uint32_t j = 0; j <= c; ++j) {
      ir[j] = coef;
      coef *= 0.97;
    }
  } else {
    // Tiny bias/echo spectrum (what cadd folds into every chunk).
    ir[0] = 0.05;
    ir[c / 2] = 0.025;
  }
  spec.assign(2 * n, 0.0);  // zeroCplxVec
  for (std::uint32_t j = 0; j < n; ++j) {  // r2c
    spec[2 * j] = ir[j];
    spec[2 * j + 1] = 0.0;
  }
  golden_fft(spec, n, +1);
}

GoldenResult run_golden(const WfsConfig& cfg, const WavData& input) {
  cfg.validate();
  const WfsDerived derived(cfg);
  const std::uint32_t C = cfg.chunk_size;
  const std::uint32_t N = cfg.fft_size;
  const std::uint32_t NS = cfg.speakers;
  const std::uint32_t K = cfg.chunks;
  const std::uint32_t R = cfg.ring_size;
  const std::uint64_t total = static_cast<std::uint64_t>(K) * C;

  // wav_load: PCM16 -> f32 input buffer.
  std::vector<float> in_f32(total, 0.0f);
  const std::size_t avail = std::min<std::size_t>(input.samples.size(), total);
  for (std::size_t g = 0; g < avail; ++g) {
    in_f32[g] = static_cast<float>(static_cast<double>(input.samples[g]) / 32768.0);
  }

  // ffw x2.
  std::vector<double> H, B;
  golden_ffw(cfg, 0, H);
  golden_ffw(cfg, 1, B);

  GoldenResult result;
  result.frames.assign(static_cast<std::size_t>(NS) * total, 0.0f);
  result.gains.assign(NS, 0.0);
  result.delays.assign(NS, 0);

  std::vector<double> in_block(N, 0.0);
  std::vector<double> cur(C, 0.0);
  std::vector<double> X(2 * N, 0.0), T(2 * N, 0.0), Y(2 * N, 0.0);
  std::vector<double> y_chunk(C, 0.0);
  std::vector<double> ring(R, 0.0);
  std::vector<float> spk(static_cast<std::size_t>(NS) * C, 0.0f);
  double px = derived.source_x0;
  double py = derived.source_y0;

  for (std::uint32_t chunk = 0; chunk < K; ++chunk) {
    // Wave propagation: move the source and refresh gains/delays.
    if (chunk < cfg.move_chunks) {
      // PrimarySource_deriveTP (uses vsmult2d for the step vector).
      const double step_x = derived.vel_x * derived.dt;
      const double step_y = derived.vel_y * derived.dt;
      px += step_x;
      py += step_y;
      for (std::uint32_t s = 0; s < NS; ++s) {  // calculateGainPQ
        const double dx = px - derived.speaker_x[s];
        const double dy = py;
        const double d = std::sqrt(dx * dx + dy * dy);
        // vsmult2d computes the unit direction vector (written, unused).
        const double inv = 1.0 / d;
        [[maybe_unused]] const double ux = dx * inv;
        [[maybe_unused]] const double uy = dy * inv;
        result.gains[s] = 0.25 / std::fmax(d, 0.5);
        std::int64_t delay =
            static_cast<std::int64_t>(d * derived.delay_factor);  // truncates
        const std::int64_t limit = static_cast<std::int64_t>(R) - C - 1;
        if (delay > limit) delay = limit;
        if (delay < 0) delay = 0;
        result.delays[s] = delay;
      }
    }

    // AudioIo_getFrames.
    for (std::uint32_t i = 0; i < C; ++i) {
      cur[i] = static_cast<double>(in_f32[static_cast<std::size_t>(chunk) * C + i]);
    }
    // Filter_process_pre_: slide the overlap-save window.
    for (std::uint32_t i = 0; i < N - C; ++i) in_block[i] = in_block[i + C];
    for (std::uint32_t i = 0; i < C; ++i) in_block[N - C + i] = cur[i];

    // Filter_process.
    X.assign(2 * N, 0.0);  // zeroCplxVec
    for (std::uint32_t i = 0; i < N; ++i) {  // r2c
      X[2 * i] = in_block[i];
      X[2 * i + 1] = 0.0;
    }
    golden_fft(X, N, +1);
    for (std::uint32_t k = 0; k < N; ++k) {
      // cmult then cadd, per bin.
      const double are = X[2 * k], aim = X[2 * k + 1];
      const double bre = H[2 * k], bim = H[2 * k + 1];
      T[2 * k] = are * bre - aim * bim;
      T[2 * k + 1] = are * bim + aim * bre;
      Y[2 * k] = T[2 * k] + B[2 * k];
      Y[2 * k + 1] = T[2 * k + 1] + B[2 * k + 1];
    }
    golden_fft(Y, N, -1);
    for (std::uint32_t i = 0; i < C; ++i) {  // c2r (overlap-save tail)
      y_chunk[i] = Y[2 * (N - C + i)];
    }

    // DelayLine_processChunk.
    for (std::uint32_t i = 0; i < C; ++i) {
      ring[(static_cast<std::uint64_t>(chunk) * C + i) & (R - 1)] = y_chunk[i];
    }
    for (std::uint32_t s = 0; s < NS; ++s) {
      for (std::uint32_t i = 0; i < C; ++i) spk[s * C + i] = 0.0f;  // zeroRealVec
      for (std::uint32_t i = 0; i < C; ++i) {
        const std::int64_t g = static_cast<std::int64_t>(chunk) * C + i -
                               result.delays[s];
        const double sample = g >= 0 ? ring[static_cast<std::uint64_t>(g) & (R - 1)]
                                     : 0.0;
        const double prev = static_cast<double>(spk[s * C + i]);
        spk[s * C + i] = static_cast<float>(prev + result.gains[s] * sample);
      }
    }

    // AudioIo_setFrames: planar block copy (bitwise).
    for (std::uint32_t s = 0; s < NS; ++s) {
      for (std::uint32_t i = 0; i < C; ++i) {
        result.frames[static_cast<std::size_t>(s) * total + chunk * C + i] =
            spk[s * C + i];
      }
    }
  }

  // wav_store: peak scan passes, then interleave + quantise.
  double peak = 0.0;
  for (std::uint32_t pass = 0; pass + 1 < cfg.store_passes; ++pass) {
    double local = 0.0;
    for (std::uint32_t s = 0; s < NS; ++s) {
      for (std::uint64_t g = 0; g < total; ++g) {
        const double v = static_cast<double>(result.frames[s * total + g]);
        local = std::fmax(local, std::fabs(v));
      }
    }
    peak = local;
  }
  result.peak = peak;
  const double scale = 0.9 / std::fmax(peak, 1e-9);
  result.output.resize(static_cast<std::size_t>(total) * NS);
  for (std::uint64_t g = 0; g < total; ++g) {
    for (std::uint32_t s = 0; s < NS; ++s) {
      const double v = static_cast<double>(result.frames[s * total + g]);
      double x = v * scale;
      x = x * 32767.0;
      x = std::fmax(x, -32768.0);
      x = std::fmin(x, 32767.0);
      result.output[g * NS + s] =
          static_cast<std::int16_t>(static_cast<std::int64_t>(x));
    }
  }
  return result;
}

}  // namespace tq::wfs
