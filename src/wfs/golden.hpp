// Native reference implementation of the hArtes-wfs signal chain.
//
// The guest program (wfs_program.cpp) and this model are written from the
// same operation-level specification — identical arithmetic, identical
// operation order, the same libm sin/cos the VM uses — so the guest's output
// WAV must match this model essentially bit-for-bit. Tests use it to prove
// that the profiled application actually computes a wave-field synthesis, as
// opposed to being a synthetic memory-traffic generator.
#pragma once

#include <cstdint>
#include <vector>

#include "wfs/config.hpp"
#include "wfs/wav.hpp"

namespace tq::wfs {

/// Everything the reference pipeline produces.
struct GoldenResult {
  std::vector<float> frames;         ///< planar speaker frames [s * K*C + g]
  std::vector<std::int16_t> output;  ///< interleaved PCM16 (frame-major)
  std::vector<double> gains;         ///< final per-speaker gains
  std::vector<std::int64_t> delays;  ///< final per-speaker delays (samples)
  double peak = 0.0;                 ///< normalisation peak found by wav_store
};

/// Derived constants shared verbatim between golden model and guest builder
/// (both sides must use the same doubles for bit-equality).
struct WfsDerived {
  double dt;            ///< chunk duration in seconds (C / fs)
  double delay_factor;  ///< fs / sound_speed (samples per metre)
  double source_x0;     ///< initial source position
  double source_y0;
  double vel_x;          ///< source velocity while moving
  double vel_y;
  std::vector<double> speaker_x;  ///< speaker x positions (y = 0)

  explicit WfsDerived(const WfsConfig& cfg);
};

/// In-place interleaved complex FFT mirroring the guest fft1d/perm/bitrev
/// kernels (Danielson–Lanczos with an explicit bit-reversal permutation).
/// `a` holds n interleaved (re, im) pairs; dir is +1 or -1; dir < 0 scales
/// by 1/n.
void golden_fft(std::vector<double>& a, std::uint32_t n, int dir);

/// Bit reversal of the low `bits` bits of `i` (mirrors the bitrev kernel).
std::uint32_t golden_bitrev(std::uint32_t i, std::uint32_t bits);

/// The ffw kernel: build filter `which` (0 = main lowpass, 1 = bias) as an
/// N-point spectrum into `spec` (2N interleaved doubles).
void golden_ffw(const WfsConfig& cfg, int which, std::vector<double>& spec);

/// Run the full pipeline on `input` (mono PCM16).
GoldenResult run_golden(const WfsConfig& cfg, const WavData& input);

}  // namespace tq::wfs
