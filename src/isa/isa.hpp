// The guest instruction set.
//
// tQUAD (the paper) instruments x86 binaries through Pin. Pin is closed
// source and x86 decoding is out of scope, so this reproduction defines a
// compact RISC-style ISA with exactly the properties the profiler cares
// about:
//   * typed memory accesses of 1/2/4/8 bytes with a base+displacement mode,
//   * calls that push the return address on the guest stack and returns that
//     pop it (so stack traffic exists exactly where x86 has it),
//   * an optional predicate register per instruction (Pin's
//     INS_InsertPredicatedCall exists because of predicated/REP-prefixed
//     instructions; we model the same),
//   * prefetch loads that move no architectural data (tQUAD's analysis
//     routines return immediately on prefetches),
//   * a syscall boundary that is *invisible* to instrumentation, mirroring
//     Pin's user-level-only view of the kernel.
//
// Code and data live in separate spaces (Harvard): an instruction address is
// (function id, instruction index). Data addresses are 64-bit flat.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace tq::isa {

/// Number of general-purpose integer registers (r0..r30 general, r31 = SP).
inline constexpr unsigned kNumIntRegs = 32;
/// Register index alias for the stack pointer (Pin's REG_STACK_PTR).
inline constexpr std::uint8_t kSp = 31;
/// Number of floating-point (f64) registers.
inline constexpr unsigned kNumFpRegs = 32;

/// Operation codes. Field usage per group is documented inline.
enum class Op : std::uint8_t {
  kNop = 0,
  kHalt,  ///< stop the machine (only legal in the entry function)

  // ---- integer ALU: rd <- ra OP rb -------------------------------------
  kAdd,
  kSub,
  kMul,
  kDivS,  ///< signed divide; divide-by-zero traps the VM
  kRemS,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShrL,  ///< logical right shift
  kShrA,  ///< arithmetic right shift
  kSltS,  ///< rd <- (signed) ra < rb
  kSltU,  ///< rd <- (unsigned) ra < rb
  kSeq,   ///< rd <- ra == rb

  // ---- integer ALU with immediate: rd <- ra OP imm ----------------------
  kAddI,
  kMulI,
  kAndI,
  kOrI,
  kXorI,
  kShlI,
  kShrLI,
  kShrAI,
  kSltSI,

  // ---- moves -------------------------------------------------------------
  kMovI,  ///< rd <- imm (full 64-bit immediate)
  kMov,   ///< rd <- ra

  // ---- floating point (f64): fd <- fa OP fb ------------------------------
  kFAdd,
  kFSub,
  kFMul,
  kFDiv,
  kFNeg,   ///< fd <- -fa
  kFAbs,   ///< fd <- |fa|
  kFSqrt,  ///< fd <- sqrt(fa)
  kFSin,   ///< fd <- sin(fa)   (x87-style transcendental)
  kFCos,   ///< fd <- cos(fa)
  kFMov,   ///< fd <- fa
  kFMovI,  ///< fd <- bit_cast<double>(imm)
  kFMin,
  kFMax,

  // ---- FP compares producing an integer register -------------------------
  kFCmpLt,  ///< rd <- fa < fb
  kFCmpLe,  ///< rd <- fa <= fb
  kFCmpEq,  ///< rd <- fa == fb

  // ---- conversions --------------------------------------------------------
  kI2F,  ///< fd <- (double) signed ra
  kF2I,  ///< rd <- (int64) truncate fa

  // ---- memory --------------------------------------------------------------
  // Effective address is always regs[ra] + imm.
  kLoad,      ///< rd <- zero-extended mem[ea], size in `size` (1/2/4/8)
  kLoadS,     ///< rd <- sign-extended mem[ea]
  kStore,     ///< mem[ea] <- low `size` bytes of rb
  kFLoad,     ///< fd <- f64 at mem[ea]            (size forced to 8)
  kFStore,    ///< mem[ea] <- f64 fb               (size forced to 8)
  kFLoad4,    ///< fd <- (double) f32 at mem[ea]   (size forced to 4)
  kFStore4,   ///< mem[ea] <- (float) fb           (size forced to 4)
  kPrefetch,  ///< touch mem[ea] for `size` bytes; no architectural effect
  // String move (x86 `rep movs` analogue): copies `size` bytes (8/16/32/64)
  // from [ra] to [rd], then advances both base registers by `size`. One
  // retired instruction thus moves up to 128 bytes — the mechanism behind
  // memcpy-style kernels reaching tens of bytes-per-instruction (the paper's
  // AudioIo_setFrames peaks above 50 B/instr while everything else stays
  // under 3). Typically wrapped in a predicated loop on a count register.
  kMovs,

  // ---- control flow ----------------------------------------------------------
  // Branch targets (imm) are absolute instruction indices within the
  // current function, resolved from labels by the assembler.
  kJmp,
  kBrZ,   ///< branch to imm if ra == 0
  kBrNZ,  ///< branch to imm if ra != 0
  kCall,  ///< push return address (8-byte stack write), jump to function imm
  kRet,   ///< pop return address (8-byte stack read), jump back

  // ---- host boundary -----------------------------------------------------------
  kSys,  ///< invoke host call `imm`; arguments/results in r1..r4

  kOpCount_,  // sentinel
};

/// Host calls reachable through Op::kSys. The VM performs these without
/// reporting any memory events — Pin tools equally never see kernel-side
/// copies (Section IV-B: "Pin can only capture user-level code").
enum class Sys : std::uint16_t {
  kAlloc = 1,     ///< r1 = size  -> r1 = address of zeroed 16-aligned block
  kRead = 2,      ///< r1 = fd, r2 = buf, r3 = len -> r1 = bytes copied in
  kWrite = 3,     ///< r1 = fd, r2 = buf, r3 = len -> r1 = bytes copied out
  kSeek = 4,      ///< r1 = fd, r2 = absolute position (input files only)
  kFileSize = 5,  ///< r1 = fd -> r1 = size of attached input file
  kPrintI64 = 6,  ///< r1 = value (debug aid; writes to the host log)
  kPrintF64 = 7,  ///< f1 = value
};

/// Instruction flag bits.
enum : std::uint8_t {
  kFlagPredicated = 1u << 0,  ///< execute only if regs[pr] != 0
};

/// One decoded instruction. Stored predecoded in the VM's code cache;
/// serialised to a fixed 16-byte little-endian record in images.
struct Instr {
  Op op = Op::kNop;
  std::uint8_t rd = 0;     ///< destination register (int or fp by opcode)
  std::uint8_t ra = 0;     ///< first source / base register
  std::uint8_t rb = 0;     ///< second source register
  std::uint8_t size = 0;   ///< memory access size in bytes
  std::uint8_t flags = 0;  ///< kFlag* bits
  std::uint8_t pr = 0;     ///< predicate register (when kFlagPredicated)
  std::int64_t imm = 0;    ///< immediate / displacement / branch target

  bool predicated() const noexcept { return flags & kFlagPredicated; }

  friend bool operator==(const Instr&, const Instr&) = default;
};

/// Static classification used by both the VM and the instrumentation API.
bool is_memory_read(Op op) noexcept;
bool is_memory_write(Op op) noexcept;
bool is_prefetch(Op op) noexcept;
bool is_branch(Op op) noexcept;
bool is_call(Op op) noexcept;
bool is_ret(Op op) noexcept;
bool is_fp(Op op) noexcept;
/// True when the opcode encodes a memory access at all (read/write/prefetch).
bool references_memory(Op op) noexcept;

/// Mnemonic for disassembly ("add", "fload", ...).
const char* mnemonic(Op op) noexcept;

/// Size in bytes of one encoded instruction record.
inline constexpr std::size_t kEncodedSize = 16;

/// Serialise instructions to the on-image byte format (little-endian).
std::vector<std::uint8_t> encode(std::span<const Instr> code);

/// Decode an encoded image back into instructions.
/// Throws tq::Error on truncated input or invalid opcodes.
std::vector<Instr> decode(std::span<const std::uint8_t> bytes);

/// Human-readable one-line disassembly of one instruction.
std::string disassemble(const Instr& ins);

/// Disassemble a whole function with instruction indices.
std::string disassemble(std::span<const Instr> code);

/// Validate structural well-formedness of a function body: branch targets in
/// range, register indices valid, memory sizes legal, function ends in a
/// control transfer. Returns an empty string if OK, else a diagnostic.
std::string validate(std::span<const Instr> code, std::size_t function_count);

}  // namespace tq::isa
