#include "isa/isa.hpp"

#include <cstring>
#include <sstream>

#include "support/check.hpp"

namespace tq::isa {

bool is_memory_read(Op op) noexcept {
  switch (op) {
    case Op::kLoad:
    case Op::kLoadS:
    case Op::kFLoad:
    case Op::kFLoad4:
    case Op::kMovs:
    case Op::kRet:  // pops the return address
      return true;
    default:
      return false;
  }
}

bool is_memory_write(Op op) noexcept {
  switch (op) {
    case Op::kStore:
    case Op::kFStore:
    case Op::kFStore4:
    case Op::kMovs:
    case Op::kCall:  // pushes the return address
      return true;
    default:
      return false;
  }
}

bool is_prefetch(Op op) noexcept { return op == Op::kPrefetch; }

bool is_branch(Op op) noexcept {
  switch (op) {
    case Op::kJmp:
    case Op::kBrZ:
    case Op::kBrNZ:
      return true;
    default:
      return false;
  }
}

bool is_call(Op op) noexcept { return op == Op::kCall; }
bool is_ret(Op op) noexcept { return op == Op::kRet; }

bool is_fp(Op op) noexcept {
  switch (op) {
    case Op::kFAdd:
    case Op::kFSub:
    case Op::kFMul:
    case Op::kFDiv:
    case Op::kFNeg:
    case Op::kFAbs:
    case Op::kFSqrt:
    case Op::kFSin:
    case Op::kFCos:
    case Op::kFMov:
    case Op::kFMovI:
    case Op::kFMin:
    case Op::kFMax:
    case Op::kFCmpLt:
    case Op::kFCmpLe:
    case Op::kFCmpEq:
    case Op::kI2F:
    case Op::kF2I:
    case Op::kFLoad:
    case Op::kFStore:
    case Op::kFLoad4:
    case Op::kFStore4:
      return true;
    default:
      return false;
  }
}

bool references_memory(Op op) noexcept {
  return is_memory_read(op) || is_memory_write(op) || is_prefetch(op);
}

const char* mnemonic(Op op) noexcept {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kHalt: return "halt";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDivS: return "divs";
    case Op::kRemS: return "rems";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kShl: return "shl";
    case Op::kShrL: return "shrl";
    case Op::kShrA: return "shra";
    case Op::kSltS: return "slts";
    case Op::kSltU: return "sltu";
    case Op::kSeq: return "seq";
    case Op::kAddI: return "addi";
    case Op::kMulI: return "muli";
    case Op::kAndI: return "andi";
    case Op::kOrI: return "ori";
    case Op::kXorI: return "xori";
    case Op::kShlI: return "shli";
    case Op::kShrLI: return "shrli";
    case Op::kShrAI: return "shrai";
    case Op::kSltSI: return "sltsi";
    case Op::kMovI: return "movi";
    case Op::kMov: return "mov";
    case Op::kFAdd: return "fadd";
    case Op::kFSub: return "fsub";
    case Op::kFMul: return "fmul";
    case Op::kFDiv: return "fdiv";
    case Op::kFNeg: return "fneg";
    case Op::kFAbs: return "fabs";
    case Op::kFSqrt: return "fsqrt";
    case Op::kFSin: return "fsin";
    case Op::kFCos: return "fcos";
    case Op::kFMov: return "fmov";
    case Op::kFMovI: return "fmovi";
    case Op::kFMin: return "fmin";
    case Op::kFMax: return "fmax";
    case Op::kFCmpLt: return "fcmplt";
    case Op::kFCmpLe: return "fcmple";
    case Op::kFCmpEq: return "fcmpeq";
    case Op::kI2F: return "i2f";
    case Op::kF2I: return "f2i";
    case Op::kLoad: return "load";
    case Op::kLoadS: return "loads";
    case Op::kStore: return "store";
    case Op::kFLoad: return "fload";
    case Op::kFStore: return "fstore";
    case Op::kFLoad4: return "fload4";
    case Op::kFStore4: return "fstore4";
    case Op::kPrefetch: return "prefetch";
    case Op::kMovs: return "movs";
    case Op::kJmp: return "jmp";
    case Op::kBrZ: return "brz";
    case Op::kBrNZ: return "brnz";
    case Op::kCall: return "call";
    case Op::kRet: return "ret";
    case Op::kSys: return "sys";
    case Op::kOpCount_: break;
  }
  return "<bad>";
}

std::vector<std::uint8_t> encode(std::span<const Instr> code) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(code.size() * kEncodedSize);
  for (const Instr& ins : code) {
    std::uint8_t rec[kEncodedSize] = {};
    rec[0] = static_cast<std::uint8_t>(ins.op);
    rec[1] = ins.rd;
    rec[2] = ins.ra;
    rec[3] = ins.rb;
    rec[4] = ins.size;
    rec[5] = ins.flags;
    rec[6] = ins.pr;
    rec[7] = 0;  // reserved
    std::memcpy(rec + 8, &ins.imm, 8);
    bytes.insert(bytes.end(), rec, rec + kEncodedSize);
  }
  return bytes;
}

std::vector<Instr> decode(std::span<const std::uint8_t> bytes) {
  if (bytes.size() % kEncodedSize != 0) {
    TQUAD_THROW("truncated instruction stream: " + std::to_string(bytes.size()) +
                " bytes is not a multiple of " + std::to_string(kEncodedSize));
  }
  std::vector<Instr> code;
  code.reserve(bytes.size() / kEncodedSize);
  for (std::size_t off = 0; off < bytes.size(); off += kEncodedSize) {
    const std::uint8_t* rec = bytes.data() + off;
    if (rec[0] >= static_cast<std::uint8_t>(Op::kOpCount_)) {
      TQUAD_THROW("invalid opcode " + std::to_string(rec[0]) + " at record " +
                  std::to_string(off / kEncodedSize));
    }
    Instr ins;
    ins.op = static_cast<Op>(rec[0]);
    ins.rd = rec[1];
    ins.ra = rec[2];
    ins.rb = rec[3];
    ins.size = rec[4];
    ins.flags = rec[5];
    ins.pr = rec[6];
    std::memcpy(&ins.imm, rec + 8, 8);
    code.push_back(ins);
  }
  return code;
}

std::string disassemble(const Instr& ins) {
  std::ostringstream out;
  out << mnemonic(ins.op);
  auto r = [](std::uint8_t idx) {
    return idx == kSp ? std::string("sp") : "r" + std::to_string(idx);
  };
  auto f = [](std::uint8_t idx) { return "f" + std::to_string(idx); };
  switch (ins.op) {
    case Op::kNop:
    case Op::kHalt:
    case Op::kRet:
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDivS:
    case Op::kRemS:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShrL:
    case Op::kShrA:
    case Op::kSltS:
    case Op::kSltU:
    case Op::kSeq:
      out << ' ' << r(ins.rd) << ", " << r(ins.ra) << ", " << r(ins.rb);
      break;
    case Op::kAddI:
    case Op::kMulI:
    case Op::kAndI:
    case Op::kOrI:
    case Op::kXorI:
    case Op::kShlI:
    case Op::kShrLI:
    case Op::kShrAI:
    case Op::kSltSI:
      out << ' ' << r(ins.rd) << ", " << r(ins.ra) << ", " << ins.imm;
      break;
    case Op::kMovI:
      out << ' ' << r(ins.rd) << ", " << ins.imm;
      break;
    case Op::kMov:
      out << ' ' << r(ins.rd) << ", " << r(ins.ra);
      break;
    case Op::kFAdd:
    case Op::kFSub:
    case Op::kFMul:
    case Op::kFDiv:
    case Op::kFMin:
    case Op::kFMax:
      out << ' ' << f(ins.rd) << ", " << f(ins.ra) << ", " << f(ins.rb);
      break;
    case Op::kFNeg:
    case Op::kFAbs:
    case Op::kFSqrt:
    case Op::kFSin:
    case Op::kFCos:
    case Op::kFMov:
      out << ' ' << f(ins.rd) << ", " << f(ins.ra);
      break;
    case Op::kFMovI: {
      double value;
      std::memcpy(&value, &ins.imm, 8);
      out << ' ' << f(ins.rd) << ", " << value;
      break;
    }
    case Op::kFCmpLt:
    case Op::kFCmpLe:
    case Op::kFCmpEq:
      out << ' ' << r(ins.rd) << ", " << f(ins.ra) << ", " << f(ins.rb);
      break;
    case Op::kI2F:
      out << ' ' << f(ins.rd) << ", " << r(ins.ra);
      break;
    case Op::kF2I:
      out << ' ' << r(ins.rd) << ", " << f(ins.ra);
      break;
    case Op::kLoad:
    case Op::kLoadS:
      out << (ins.op == Op::kLoad ? "" : "") << static_cast<int>(ins.size) << ' '
          << r(ins.rd) << ", [" << r(ins.ra) << (ins.imm >= 0 ? "+" : "") << ins.imm
          << ']';
      break;
    case Op::kStore:
      out << static_cast<int>(ins.size) << " [" << r(ins.ra)
          << (ins.imm >= 0 ? "+" : "") << ins.imm << "], " << r(ins.rb);
      break;
    case Op::kFLoad:
    case Op::kFLoad4:
      out << ' ' << f(ins.rd) << ", [" << r(ins.ra) << (ins.imm >= 0 ? "+" : "")
          << ins.imm << ']';
      break;
    case Op::kFStore:
    case Op::kFStore4:
      out << " [" << r(ins.ra) << (ins.imm >= 0 ? "+" : "") << ins.imm << "], "
          << f(ins.rb);
      break;
    case Op::kPrefetch:
      out << static_cast<int>(ins.size) << " [" << r(ins.ra)
          << (ins.imm >= 0 ? "+" : "") << ins.imm << ']';
      break;
    case Op::kMovs:
      out << static_cast<int>(ins.size) << " [" << r(ins.rd) << "], [" << r(ins.ra)
          << ']';
      break;
    case Op::kJmp:
      out << " @" << ins.imm;
      break;
    case Op::kBrZ:
    case Op::kBrNZ:
      out << ' ' << r(ins.ra) << ", @" << ins.imm;
      break;
    case Op::kCall:
      out << " fn#" << ins.imm;
      break;
    case Op::kSys:
      out << ' ' << ins.imm;
      break;
    case Op::kOpCount_:
      break;
  }
  if (ins.predicated()) out << "  ?" << r(ins.pr);
  return out.str();
}

std::string disassemble(std::span<const Instr> code) {
  std::ostringstream out;
  for (std::size_t i = 0; i < code.size(); ++i) {
    out << i << ":\t" << disassemble(code[i]) << '\n';
  }
  return out.str();
}

std::string validate(std::span<const Instr> code, std::size_t function_count) {
  auto fail = [](std::size_t pc, const std::string& why) {
    return "instruction " + std::to_string(pc) + ": " + why;
  };
  if (code.empty()) return "empty function body";
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const Instr& ins = code[pc];
    if (ins.op >= Op::kOpCount_) return fail(pc, "invalid opcode");
    if (ins.rd >= kNumIntRegs || ins.ra >= kNumIntRegs || ins.rb >= kNumIntRegs ||
        ins.pr >= kNumIntRegs) {
      return fail(pc, "register index out of range");
    }
    if (references_memory(ins.op) && !is_call(ins.op) && !is_ret(ins.op)) {
      const unsigned size = ins.size;
      const bool fixed8 = ins.op == Op::kFLoad || ins.op == Op::kFStore;
      const bool fixed4 = ins.op == Op::kFLoad4 || ins.op == Op::kFStore4;
      if (fixed8 && size != 8) return fail(pc, "f64 access must have size 8");
      if (fixed4 && size != 4) return fail(pc, "f32 access must have size 4");
      if (ins.op == Op::kMovs) {
        if (size != 8 && size != 16 && size != 32 && size != 64) {
          return fail(pc, "movs size must be 8/16/32/64");
        }
      } else if (!fixed8 && !fixed4 && size != 1 && size != 2 && size != 4 && size != 8) {
        return fail(pc, "memory access size must be 1/2/4/8");
      }
    }
    if (is_branch(ins.op)) {
      if (ins.imm < 0 || static_cast<std::size_t>(ins.imm) >= code.size()) {
        return fail(pc, "branch target out of range");
      }
    }
    if (is_call(ins.op)) {
      if (ins.imm < 0 || static_cast<std::size_t>(ins.imm) >= function_count) {
        return fail(pc, "call target function out of range");
      }
    }
  }
  const Op last = code.back().op;
  if (!is_ret(last) && last != Op::kHalt && last != Op::kJmp) {
    return "function does not end in ret/halt/jmp";
  }
  return {};
}

}  // namespace tq::isa
