#include "dctc/dctc.hpp"

#include <cmath>
#include <cstring>

#include "gasm/builder.hpp"
#include "support/check.hpp"

namespace tq::dctc {

using gasm::F;
using gasm::FunctionBuilder;
using gasm::ProgramBuilder;
using gasm::R;
using gasm::SP;
using isa::Sys;
using vm::ImageKind;

namespace {

/// DCT-II basis: C[k*8+n] = c(k) * cos((2n+1) k pi / 16); shared verbatim by
/// the golden model and the guest's initialised data.
const std::vector<double>& dct_cos_table() {
  static const std::vector<double> table = [] {
    std::vector<double> t(64);
    for (int k = 0; k < 8; ++k) {
      const double ck = k == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int n = 0; n < 8; ++n) {
        t[k * 8 + n] = ck * std::cos((2.0 * n + 1.0) * k * M_PI / 16.0);
      }
    }
    return t;
  }();
  return table;
}

/// JPEG Annex K luminance quantisation matrix.
constexpr int kBaseQ[64] = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

std::vector<double> quant_table(std::uint32_t quality) {
  std::vector<double> q(64);
  for (int i = 0; i < 64; ++i) {
    q[i] = static_cast<double>(kBaseQ[i]) * static_cast<double>(quality);
  }
  return q;
}

/// Canonical zigzag scan order: zz[idx] = natural index of the idx-th
/// coefficient along the zigzag.
const std::vector<std::int64_t>& zigzag_table() {
  static const std::vector<std::int64_t> table = [] {
    std::vector<std::int64_t> zz(64);
    int idx = 0;
    for (int s = 0; s < 15; ++s) {
      if (s % 2 == 0) {  // up-right
        for (int v = std::min(s, 7); v >= std::max(0, s - 7); --v) {
          zz[idx++] = v * 8 + (s - v);
        }
      } else {  // down-left
        for (int u = std::min(s, 7); u >= std::max(0, s - 7); --u) {
          zz[idx++] = (s - u) * 8 + u;
        }
      }
    }
    TQUAD_CHECK(idx == 64, "zigzag construction broken");
    return zz;
  }();
  return table;
}

std::vector<std::uint8_t> f64_bytes(const std::vector<double>& values) {
  std::vector<std::uint8_t> bytes(values.size() * 8);
  std::memcpy(bytes.data(), values.data(), bytes.size());
  return bytes;
}

std::vector<std::uint8_t> i64_bytes(const std::vector<std::int64_t>& values) {
  std::vector<std::uint8_t> bytes(values.size() * 8);
  std::memcpy(bytes.data(), values.data(), bytes.size());
  return bytes;
}

constexpr std::uint8_t kEobMarker = 0xff;

}  // namespace

void DctcConfig::validate() const {
  TQUAD_CHECK(width % 8 == 0 && height % 8 == 0,
              "image dimensions must be multiples of 8");
  TQUAD_CHECK(width >= 8 && height >= 8, "image too small");
  TQUAD_CHECK(quality >= 1 && quality <= 16, "quality out of range");
}

std::vector<std::uint8_t> make_test_image(const DctcConfig& cfg) {
  cfg.validate();
  std::vector<std::uint8_t> pixels(static_cast<std::size_t>(cfg.width) * cfg.height);
  const double cx = cfg.width / 2.0;
  const double cy = cfg.height / 2.0;
  const double radius = std::min(cfg.width, cfg.height) / 3.0;
  for (std::uint32_t y = 0; y < cfg.height; ++y) {
    for (std::uint32_t x = 0; x < cfg.width; ++x) {
      double value = 40.0 + 120.0 * x / cfg.width;            // gradient
      if (((x / 8) + (y / 8)) % 2 == 0) value += 40.0;        // checker
      const double dx = x - cx, dy = y - cy;
      if (dx * dx + dy * dy < radius * radius) value += 50.0; // disc
      pixels[static_cast<std::size_t>(y) * cfg.width + x] =
          static_cast<std::uint8_t>(std::min(255.0, value));
    }
  }
  return pixels;
}

// ---- golden model --------------------------------------------------------------

GoldenEncode run_golden_encode(const DctcConfig& cfg,
                               const std::vector<std::uint8_t>& pixels) {
  cfg.validate();
  TQUAD_CHECK(pixels.size() == static_cast<std::size_t>(cfg.width) * cfg.height,
              "pixel buffer size mismatch");
  const auto& C = dct_cos_table();
  const auto Q = quant_table(cfg.quality);
  const auto& zz = zigzag_table();
  const std::uint32_t W = cfg.width;
  const std::uint32_t wb = cfg.width / 8;
  const std::uint32_t blocks = cfg.blocks();

  std::vector<double> plane(pixels.size());
  for (std::size_t i = 0; i < pixels.size(); ++i) {
    plane[i] = static_cast<double>(pixels[i]) - 128.0;
  }

  GoldenEncode result;
  result.coefficients.resize(static_cast<std::size_t>(blocks) * 64);
  double tmp[64], out[64];
  std::int16_t qblk[64];
  for (std::uint32_t b = 0; b < blocks; ++b) {
    const std::uint32_t bx = (b % wb) * 8;
    const std::uint32_t by = (b / wb) * 8;
    // Rows pass.
    for (int r = 0; r < 8; ++r) {
      for (int k = 0; k < 8; ++k) {
        double acc = 0.0;
        for (int n = 0; n < 8; ++n) {
          acc += plane[static_cast<std::size_t>(by + r) * W + bx + n] * C[k * 8 + n];
        }
        tmp[r * 8 + k] = acc;
      }
    }
    // Columns pass.
    for (int k2 = 0; k2 < 8; ++k2) {
      for (int k = 0; k < 8; ++k) {
        double acc = 0.0;
        for (int r = 0; r < 8; ++r) {
          acc += tmp[r * 8 + k] * C[k2 * 8 + r];
        }
        out[k2 * 8 + k] = acc;
      }
    }
    // Quantise (round half away from zero, mirroring the guest's predicated
    // +-0.5 then truncation).
    for (int i = 0; i < 64; ++i) {
      const double y = out[i] / Q[i];
      const double bias = y < 0.0 ? -0.5 : 0.5;
      qblk[i] = static_cast<std::int16_t>(static_cast<std::int64_t>(y + bias));
    }
    // Zigzag.
    for (int idx = 0; idx < 64; ++idx) {
      result.coefficients[static_cast<std::size_t>(b) * 64 + idx] = qblk[zz[idx]];
    }
  }
  // RLE: per block, (run, value) triples, EOB marker after each block.
  for (std::uint32_t b = 0; b < blocks; ++b) {
    std::uint8_t run = 0;
    for (int idx = 0; idx < 64; ++idx) {
      const std::int16_t v = result.coefficients[static_cast<std::size_t>(b) * 64 + idx];
      if (v == 0) {
        ++run;
        continue;
      }
      result.stream.push_back(run);
      result.stream.push_back(static_cast<std::uint8_t>(v & 0xff));
      result.stream.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
      ++result.zero_runs;
      run = 0;
    }
    result.stream.push_back(kEobMarker);
    result.stream.push_back(0);
    result.stream.push_back(0);
  }
  return result;
}

// ---- guest program -----------------------------------------------------------------

DctcArtifacts build_dctc_program(const DctcConfig& cfg) {
  cfg.validate();
  const std::int64_t W = cfg.width;
  const std::int64_t H = cfg.height;
  const std::int64_t WB = W / 8;
  const std::int64_t BLOCKS = cfg.blocks();

  ProgramBuilder prog;
  DctcArtifacts art;
  const std::uint64_t g_plane = prog.alloc_global("plane", W * H * 8, 64);
  const std::uint64_t g_cos = prog.alloc_global("cos_table", 64 * 8, 64);
  const std::uint64_t g_quant = prog.alloc_global("quant_table", 64 * 8, 64);
  const std::uint64_t g_zz = prog.alloc_global("zigzag", 64 * 8, 64);
  const std::uint64_t g_tmp = prog.alloc_global("tmp_block", 64 * 8, 64);
  const std::uint64_t g_out = prog.alloc_global("out_block", 64 * 8, 64);
  const std::uint64_t g_qblk = prog.alloc_global("q_block", 64 * 2, 64);
  const std::uint64_t g_coeffs = prog.alloc_global("coeffs", BLOCKS * 64 * 2, 64);
  const std::uint64_t g_stage = prog.alloc_global("stage", 4096, 64);
  prog.init_data(g_cos, f64_bytes(dct_cos_table()));
  prog.init_data(g_quant, f64_bytes(quant_table(cfg.quality)));
  prog.init_data(g_zz, i64_bytes(zigzag_table()));
  art.plane_addr = g_plane;
  art.coeff_addr = g_coeffs;

  {
    FunctionBuilder& f = prog.begin_function("libc_read", ImageKind::kLibrary);
    f.sys(Sys::kRead);
    f.ret();
  }
  {
    FunctionBuilder& f = prog.begin_function("libc_write", ImageKind::kLibrary);
    f.sys(Sys::kWrite);
    f.ret();
  }

  // ---- img_load: raw pixels -> centred f64 plane -----------------------------
  {
    FunctionBuilder& f = prog.begin_function("img_load");
    f.movi(R{25}, static_cast<std::int64_t>(g_plane));
    f.movi(R{26}, 0);  // g (pixel index)
    const auto head = f.new_label();
    const auto inner = f.new_label();
    const auto inner_done = f.new_label();
    const auto done = f.new_label();
    f.bind(head);
    f.movi(R{2}, W * H);
    f.slts(R{0}, R{26}, R{2});
    f.brz(R{0}, done);
    f.sub(R{27}, R{2}, R{26});  // remaining
    f.movi(R{24}, 1024);
    f.slts(R{0}, R{24}, R{27});
    f.mov(R{27}, R{24});
    f.predicate_last(R{0});
    f.movi(R{1}, DctcArtifacts::kInputFd);
    f.movi(R{2}, static_cast<std::int64_t>(g_stage));
    f.mov(R{3}, R{27});
    f.call("libc_read");
    f.movi(R{20}, static_cast<std::int64_t>(g_stage));
    f.movi(R{21}, 0);  // j
    f.bind(inner);
    f.slts(R{0}, R{21}, R{27});
    f.brz(R{0}, inner_done);
    f.add(R{22}, R{21}, R{20});
    f.load(R{2}, R{22}, 0, 1);
    f.i2f(F{16}, R{2});
    f.fmovi(F{17}, 128.0);
    f.fsub(F{16}, F{16}, F{17});
    f.add(R{3}, R{26}, R{21});
    f.shli(R{3}, R{3}, 3);
    f.add(R{3}, R{3}, R{25});
    f.fstore(R{3}, 0, F{16});
    f.addi(R{21}, R{21}, 1);
    f.jmp(inner);
    f.bind(inner_done);
    f.add(R{26}, R{26}, R{27});
    f.jmp(head);
    f.bind(done);
    f.ret();
  }

  // ---- fdct8x8(block=r1): separable DCT-II, rows then columns ----------------
  {
    FunctionBuilder& f = prog.begin_function("fdct8x8");
    f.enter(32);
    // bx8 = (b % WB) * 8 ; by8 = (b / WB) * 8
    f.movi(R{2}, WB);
    f.rems(R{20}, R{1}, R{2});
    f.shli(R{20}, R{20}, 3);  // bx*8
    f.divs(R{21}, R{1}, R{2});
    f.shli(R{21}, R{21}, 3);  // by*8
    // base pixel address = plane + ((by8)*W + bx8) * 8
    f.muli(R{22}, R{21}, W);
    f.add(R{22}, R{22}, R{20});
    f.shli(R{22}, R{22}, 3);
    f.movi(R{2}, static_cast<std::int64_t>(g_plane));
    f.add(R{22}, R{22}, R{2});  // block base
    f.movi(R{23}, static_cast<std::int64_t>(g_cos));
    f.movi(R{24}, static_cast<std::int64_t>(g_tmp));
    // Rows pass: tmp[r*8+k] = sum_n blk[r][n] * C[k*8+n]
    f.count_loop_imm(R{14}, 0, 8, [&] {      // r
      f.count_loop_imm(R{15}, 0, 8, [&] {    // k
        f.fmovi(F{10}, 0.0);
        f.count_loop_imm(R{16}, 0, 8, [&] {  // n
          f.muli(R{2}, R{14}, W * 8);
          f.add(R{2}, R{2}, R{22});
          f.shli(R{3}, R{16}, 3);
          f.add(R{2}, R{2}, R{3});
          f.fload(F{11}, R{2}, 0);  // blk[r][n]
          f.shli(R{2}, R{15}, 6);
          f.shli(R{3}, R{16}, 3);
          f.add(R{2}, R{2}, R{3});
          f.add(R{2}, R{2}, R{23});
          f.fload(F{12}, R{2}, 0);  // C[k][n]
          f.fmul(F{11}, F{11}, F{12});
          f.fadd(F{10}, F{10}, F{11});
        });
        f.shli(R{2}, R{14}, 6);
        f.shli(R{3}, R{15}, 3);
        f.add(R{2}, R{2}, R{3});
        f.add(R{2}, R{2}, R{24});
        f.fstore(R{2}, 0, F{10});  // tmp[r*8+k]
      });
    });
    // Columns pass: out[k2*8+k] = sum_r tmp[r*8+k] * C[k2*8+r]
    f.movi(R{25}, static_cast<std::int64_t>(g_out));
    f.count_loop_imm(R{14}, 0, 8, [&] {      // k2
      f.count_loop_imm(R{15}, 0, 8, [&] {    // k
        f.fmovi(F{10}, 0.0);
        f.count_loop_imm(R{16}, 0, 8, [&] {  // r
          f.shli(R{2}, R{16}, 6);
          f.shli(R{3}, R{15}, 3);
          f.add(R{2}, R{2}, R{3});
          f.add(R{2}, R{2}, R{24});
          f.fload(F{11}, R{2}, 0);  // tmp[r*8+k]
          f.shli(R{2}, R{14}, 6);
          f.shli(R{3}, R{16}, 3);
          f.add(R{2}, R{2}, R{3});
          f.add(R{2}, R{2}, R{23});
          f.fload(F{12}, R{2}, 0);  // C[k2][r]
          f.fmul(F{11}, F{11}, F{12});
          f.fadd(F{10}, F{10}, F{11});
        });
        f.shli(R{2}, R{14}, 6);
        f.shli(R{3}, R{15}, 3);
        f.add(R{2}, R{2}, R{3});
        f.add(R{2}, R{2}, R{25});
        f.fstore(R{2}, 0, F{10});
      });
    });
    f.leave(32);
    f.ret();
  }

  // ---- quantize: out_block / quant_table, round half away from zero ----------
  {
    FunctionBuilder& f = prog.begin_function("quantize");
    f.movi(R{20}, static_cast<std::int64_t>(g_out));
    f.movi(R{21}, static_cast<std::int64_t>(g_quant));
    f.movi(R{22}, static_cast<std::int64_t>(g_qblk));
    f.fmovi(F{18}, 0.0);
    f.count_loop_imm(R{14}, 0, 64, [&] {
      f.shli(R{2}, R{14}, 3);
      f.add(R{3}, R{2}, R{20});
      f.fload(F{10}, R{3}, 0);
      f.add(R{3}, R{2}, R{21});
      f.fload(F{11}, R{3}, 0);
      f.fdiv(F{10}, F{10}, F{11});  // y
      f.fmovi(F{12}, 0.5);
      f.fcmplt(R{3}, F{10}, F{18});  // y < 0 ?
      f.fmovi(F{13}, -0.5);
      f.fmov(F{12}, F{13});
      f.predicate_last(R{3});
      f.fadd(F{10}, F{10}, F{12});
      f.f2i(R{3}, F{10});  // truncate
      f.shli(R{2}, R{14}, 1);
      f.add(R{2}, R{2}, R{22});
      f.store(R{2}, 0, R{3}, 2);
    });
    f.ret();
  }

  // ---- zigzag(block=r1): reorder q_block into the coefficient stream ---------
  {
    FunctionBuilder& f = prog.begin_function("zigzag");
    f.movi(R{20}, static_cast<std::int64_t>(g_zz));
    f.movi(R{21}, static_cast<std::int64_t>(g_qblk));
    f.muli(R{22}, R{1}, 64 * 2);
    f.movi(R{2}, static_cast<std::int64_t>(g_coeffs));
    f.add(R{22}, R{22}, R{2});  // coeffs + b*128
    f.count_loop_imm(R{14}, 0, 64, [&] {
      f.shli(R{2}, R{14}, 3);
      f.add(R{2}, R{2}, R{20});
      f.load(R{3}, R{2}, 0, 8);  // zz[idx] (global table read)
      f.shli(R{3}, R{3}, 1);
      f.add(R{3}, R{3}, R{21});
      f.loads(R{4}, R{3}, 0, 2);
      f.shli(R{2}, R{14}, 1);
      f.add(R{2}, R{2}, R{22});
      f.store(R{2}, 0, R{4}, 2);
    });
    f.ret();
  }

  // ---- rle_encode: stream (run, value) triples + per-block EOB ---------------
  {
    FunctionBuilder& f = prog.begin_function("rle_encode");
    f.enter(16);
    f.movi(R{20}, static_cast<std::int64_t>(g_coeffs));
    f.movi(R{24}, static_cast<std::int64_t>(g_stage));
    f.movi(R{25}, 0);  // staged bytes
    f.movi(R{26}, 0);  // block
    const auto blk_head = f.new_label();
    const auto idx_head = f.new_label();
    const auto idx_next = f.new_label();
    const auto blk_next = f.new_label();
    const auto no_flush = f.new_label();
    const auto flush_tail = f.new_label();
    const auto done = f.new_label();
    f.bind(blk_head);
    f.movi(R{2}, BLOCKS);
    f.slts(R{0}, R{26}, R{2});
    f.brz(R{0}, flush_tail);
    f.movi(R{27}, 0);  // run
    f.movi(R{23}, 0);  // idx
    f.bind(idx_head);
    f.sltsi(R{0}, R{23}, 64);
    f.brz(R{0}, blk_next);
    f.muli(R{2}, R{26}, 64);
    f.add(R{2}, R{2}, R{23});
    f.shli(R{2}, R{2}, 1);
    f.add(R{2}, R{2}, R{20});
    f.loads(R{3}, R{2}, 0, 2);  // v
    const auto nonzero = f.new_label();
    f.brnz(R{3}, nonzero);
    f.addi(R{27}, R{27}, 1);
    f.jmp(idx_next);
    f.bind(nonzero);
    f.add(R{4}, R{24}, R{25});
    f.store(R{4}, 0, R{27}, 1);
    f.store(R{4}, 1, R{3}, 2);
    f.addi(R{25}, R{25}, 3);
    f.movi(R{27}, 0);
    f.movi(R{4}, 3000);
    f.slts(R{0}, R{25}, R{4});
    f.brnz(R{0}, idx_next);
    f.movi(R{1}, DctcArtifacts::kOutputFd);
    f.mov(R{2}, R{24});
    f.mov(R{3}, R{25});
    f.call("libc_write");
    f.movi(R{25}, 0);
    f.bind(idx_next);
    f.addi(R{23}, R{23}, 1);
    f.jmp(idx_head);
    f.bind(blk_next);
    // EOB marker.
    f.add(R{4}, R{24}, R{25});
    f.movi(R{2}, kEobMarker);
    f.store(R{4}, 0, R{2}, 1);
    f.movi(R{2}, 0);
    f.store(R{4}, 1, R{2}, 2);
    f.addi(R{25}, R{25}, 3);
    f.movi(R{4}, 3000);
    f.slts(R{0}, R{25}, R{4});
    f.brnz(R{0}, no_flush);
    f.movi(R{1}, DctcArtifacts::kOutputFd);
    f.mov(R{2}, R{24});
    f.mov(R{3}, R{25});
    f.call("libc_write");
    f.movi(R{25}, 0);
    f.bind(no_flush);
    f.addi(R{26}, R{26}, 1);
    f.jmp(blk_head);
    f.bind(flush_tail);
    f.brz(R{25}, done);
    f.movi(R{1}, DctcArtifacts::kOutputFd);
    f.mov(R{2}, R{24});
    f.mov(R{3}, R{25});
    f.call("libc_write");
    f.bind(done);
    f.leave(16);
    f.ret();
  }

  // ---- main --------------------------------------------------------------------
  {
    FunctionBuilder& f = prog.begin_function("main");
    f.call("img_load");
    f.movi(R{28}, 0);
    const auto loop = f.new_label();
    const auto after = f.new_label();
    f.bind(loop);
    f.movi(R{0}, 0);
    f.sltsi(R{0}, R{28}, BLOCKS);
    f.brz(R{0}, after);
    f.mov(R{1}, R{28});
    f.call("fdct8x8");
    f.call("quantize");
    f.mov(R{1}, R{28});
    f.call("zigzag");
    f.addi(R{28}, R{28}, 1);
    f.jmp(loop);
    f.bind(after);
    f.call("rle_encode");
    f.halt();
  }

  art.program = prog.build("main");
  return art;
}

}  // namespace tq::dctc
