// A second multimedia case-study application: a DCT-based image encoder.
//
// The paper states "tQUAD was tested on a set of real applications" but has
// room to present only hArtes wfs. This module provides another member of
// that set, from the same domain: a JPEG-style grayscale encoder with the
// classic kernel structure —
//
//   img_load   read raw 8-bit pixels, centre to [-128,127] as f64 plane
//   fdct8x8    per 8x8 block: separable 1-D DCT-II passes (rows then
//              columns) against a cosine table
//   quantize   divide by the quantisation matrix, round half away from zero
//   zigzag     reorder each block along the canonical zigzag
//   rle_encode zero-run-length entropy stage, streaming (run, value) pairs
//              through a staging buffer and libc_write
//
// A native golden model mirrors the guest arithmetic operation for
// operation, so the encoded byte stream must match exactly. Phase structure
// under tQUAD: load -> transform -> encode, a three-phase profile distinct
// from the wfs five-phase shape.
#pragma once

#include <cstdint>
#include <vector>

#include "vm/program.hpp"

namespace tq::dctc {

/// Encoder configuration. Width/height must be multiples of 8.
struct DctcConfig {
  std::uint32_t width = 256;
  std::uint32_t height = 256;
  std::uint32_t quality = 2;  ///< quantisation scale (1 = finest)

  void validate() const;
  std::uint32_t blocks() const noexcept { return (width / 8) * (height / 8); }

  static DctcConfig standard() { return DctcConfig{}; }
  static DctcConfig tiny() { return DctcConfig{48, 32, 2}; }
};

/// Deterministic grayscale test image (gradient + checker + disc).
std::vector<std::uint8_t> make_test_image(const DctcConfig& cfg);

/// The guest program plus descriptor conventions and buffer addresses.
struct DctcArtifacts {
  vm::Program program;
  static constexpr int kInputFd = 0;   ///< raw pixel bytes
  static constexpr int kOutputFd = 1;  ///< encoded stream
  std::uint64_t plane_addr = 0;        ///< centred f64 pixel plane
  std::uint64_t coeff_addr = 0;        ///< quantised i16 coefficients
};
DctcArtifacts build_dctc_program(const DctcConfig& cfg);

/// Golden (native) encoder mirroring the guest arithmetic exactly.
struct GoldenEncode {
  std::vector<std::uint8_t> stream;       ///< encoded bytes (the guest output)
  std::vector<std::int16_t> coefficients; ///< quantised, zigzagged, per block
  std::uint64_t zero_runs = 0;            ///< total RLE runs emitted
};
GoldenEncode run_golden_encode(const DctcConfig& cfg,
                               const std::vector<std::uint8_t>& pixels);

}  // namespace tq::dctc
