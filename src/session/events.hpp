// Attributed profiling events and the consumer interface.
//
// One KernelAttribution pass turns the raw execution stream (routine
// entries, retired instructions, memory accesses, returns) into events that
// already carry the call-stack attribution every tool needs: the kernel on
// top of the shared stack, the caller at entry, the tracked bit under the
// session's library policy, and the stack-area classification of each
// access. Tools implement AnalysisConsumer and do pure accounting — no tool
// maintains its own CallStack or re-derives stack classification.
//
// This header is intentionally self-contained (no tq_session link
// dependency): the tool libraries implement the interface without linking
// the session layer, and the session layer links the tools.
#pragma once

#include <cstdint>

#include "tquad/callstack.hpp"
#include "vm/run_outcome.hpp"

namespace tq::session {

/// Routine entry. Fires after the call instruction's own tick/access events
/// (mirroring vm::ExecListener::on_rtn_enter), and once at program start for
/// the entry function.
struct EnterEvent {
  std::uint32_t func = 0;    ///< entered routine
  std::uint32_t caller = 0;  ///< attribution top *before* the push (kNoKernel if none)
  std::uint32_t kernel = 0;  ///< attribution top *after* the push
  std::uint64_t retired = 0; ///< retired count of the call instruction (0 at entry)
  bool tracked = false;      ///< `func` is reported under the library policy
};

/// One retired instruction, including predicated-off ones. `read_size` /
/// `write_size` are the architectural operand widths (populated even when
/// the predicate was off, matching pin::InsArgs).
struct TickEvent {
  std::uint32_t func = 0;    ///< function whose instruction retired
  std::uint32_t kernel = 0;  ///< attribution top (kNoKernel while suspended)
  std::uint64_t retired = 0; ///< instructions retired before this one
  std::uint32_t read_size = 0;
  std::uint32_t write_size = 0;
  bool tracked = false;      ///< `func` is reported under the library policy
};

/// One executed memory access (reads, writes, and prefetch touches).
struct AccessEvent {
  std::uint32_t func = 0;    ///< function executing the instruction
  std::uint32_t pc = 0;      ///< instruction index within `func`
  std::uint32_t kernel = 0;  ///< attribution top (kNoKernel while suspended)
  std::uint64_t retired = 0;
  std::uint64_t ea = 0;      ///< effective byte address
  std::uint32_t size = 0;    ///< access width in bytes
  bool is_read = false;
  bool is_stack = false;     ///< hits the local stack area (vm::is_stack_addr)
  bool is_prefetch = false;  ///< prefetch touch (reads only)
};

/// A run of `count` consecutive ticks sharing one attribution state: one
/// function, one kernel, retired counters `first_retired` .. `first_retired
/// + count - 1`. The attribution layer accumulates ticks into runs and
/// flushes at the next attribution boundary (routine entry, return, an
/// exact input_tick, or session end), so a run is delivered *after* any
/// access events its instructions produced. `mem_count` says how many of
/// the ticks carried memory operands (architecturally — predicated-off
/// instructions included), without recording which ones.
struct TickRunEvent {
  std::uint32_t func = 0;
  std::uint32_t kernel = 0;         ///< attribution top for the whole run
  std::uint64_t first_retired = 0;
  std::uint64_t count = 0;
  std::uint64_t mem_count = 0;      ///< ticks with a read or write operand
  bool tracked = false;
};

/// An executed return inside `func`. Fires *before* the shared stack pops,
/// so `kernel` is the attribution top the returning instruction ran under.
struct RetEvent {
  std::uint32_t func = 0;
  std::uint32_t pc = 0;
  std::uint32_t kernel = 0;  ///< pre-pop attribution top
  std::uint64_t retired = 0;
  bool tracked = false;
};

/// A profiling tool in session mode: pure accounting over attributed events.
/// Within one instruction, accesses come read before write, then the
/// return; routine entries land after their call instruction's events.
/// Ticks arrive either exactly (on_tick, in stream position) or batched
/// (on_tick_run, at the next attribution boundary — possibly after the
/// access events of the instructions it covers). Accounting that needs a
/// per-tick stream position must come from on_access/on_kernel_* events.
class AnalysisConsumer {
 public:
  /// Event kinds a consumer subscribes to (see event_interests()).
  enum EventInterest : unsigned {
    kEnterInterest = 1u << 0,
    kTickInterest = 1u << 1,   ///< on_tick and on_tick_run
    kAccessInterest = 1u << 2,
    kRetInterest = 1u << 3,
    kAllEvents = (1u << 4) - 1,
  };

  virtual ~AnalysisConsumer() = default;

  /// Which event kinds to deliver; the attribution layer skips this
  /// consumer entirely for kinds it does not name. The ticks and accesses
  /// of a 43M-instruction run make even an empty-body virtual call
  /// expensive, so tools should subscribe to exactly what they account.
  /// on_session_end is always delivered.
  virtual unsigned event_interests() const { return kAllEvents; }

  virtual void on_kernel_enter(const EnterEvent& event) { (void)event; }
  virtual void on_tick(const TickEvent& event) { (void)event; }
  virtual void on_access(const AccessEvent& event) { (void)event; }
  virtual void on_kernel_ret(const RetEvent& event) { (void)event; }

  /// A batched tick run (see TickRunEvent): tool totals must come out as
  /// if on_tick() had been called `run.count` times with consecutive
  /// retired counters, `run.mem_count` of them carrying memory operands.
  /// Hot tools override this with O(1) accounting. The default expands the
  /// run tick by tick; the expansion cannot know which ticks carried the
  /// memory operands, so every expanded TickEvent has zero operand widths.
  virtual void on_tick_run(const TickRunEvent& run) {
    TickEvent event;
    event.func = run.func;
    event.kernel = run.kernel;
    event.retired = run.first_retired;
    event.tracked = run.tracked;
    for (std::uint64_t i = 0; i < run.count; ++i) {
      on_tick(event);
      ++event.retired;
    }
  }

  /// End of the run; `total_retired` is the final instruction count.
  virtual void on_session_end(std::uint64_t total_retired) { (void)total_retired; }

  /// The structured outcome, delivered right after on_session_end on every
  /// path — clean halt, guest trap, or budget truncation. Tools that stamp
  /// reports (PARTIAL/TRUNCATED) or must finalize durable output (the trace
  /// recorder) hook this; pure accumulators can ignore it.
  virtual void on_finish(const vm::RunOutcome& outcome) { (void)outcome; }

  /// Optional capability hook: a consumer whose per-address accounting can
  /// be partitioned by address range (QUAD's shadow memory) returns its
  /// ShardedAccessConsumer facet so the parallel pipeline can fan access
  /// events out to several worker threads. Default: not shardable.
  virtual class ShardedAccessConsumer* sharded_access() { return nullptr; }
};

/// Address-sharded access accounting. The parallel pipeline routes each
/// AccessEvent to a shard by address; one shard is drained by exactly one
/// worker thread, in stream order, so shard state needs no locking.
///
/// Routing contract kept by the pipeline:
///  - every delivered event lies within a single 4 KiB page, so a shard's
///    pages are disjoint from every other shard's (accesses crossing a page
///    boundary are split into per-page pieces);
///  - the pieces of one original access carry `count_access == true` exactly
///    once, so per-access (as opposed to per-byte) counters stay exact;
///  - `prepare_shards` happens before any apply, `merge_shards` after all
///    shard rings drained (the on_finish barrier) and before the consumer's
///    own on_finish.
class ShardedAccessConsumer {
 public:
  virtual ~ShardedAccessConsumer() = default;

  /// Allocate `shards` independent shard states (shard ids 0..shards-1).
  virtual void prepare_shards(unsigned shards) = 0;

  /// Apply one (possibly split) access to shard `shard`.
  virtual void apply_access_shard(unsigned shard, const AccessEvent& event,
                                  bool count_access) = 0;

  /// Fold all shard states back into the main accounting. Runs on the
  /// publisher thread after every shard drained; results must be identical
  /// to having applied the whole access stream serially.
  virtual void merge_shards() = 0;
};

}  // namespace tq::session
