// Event sources: where a profiling session's raw event stream comes from.
//
// Two implementations of one interface, so every tool runs online or
// offline without code changes:
//   * LiveEngineSource — instruments a minipin Engine and executes the
//     guest, forwarding entries / ticks / accesses / returns as they retire;
//   * TraceReplaySource — reconstructs the same event stream from a recorded
//     TQTR trace (v1 or v2, auto-detected), including the per-instruction
//     ticks the trace does not store explicitly (see event_source.cpp).
#pragma once

#include <csignal>
#include <cstdint>
#include <optional>
#include <span>

#include "minipin/minipin.hpp"
#include "session/attribution.hpp"
#include "trace/trace_v2.hpp"
#include "vm/host_env.hpp"
#include "vm/program.hpp"

namespace tq::session {

/// A source of raw profiling events. run() drives the whole stream through
/// `attribution` (enter/tick/access/ret in retirement order, then
/// input_finish on every path — including guest traps and truncation) and
/// returns the structured outcome. Only host/tool errors throw.
class EventSource {
 public:
  virtual ~EventSource() = default;
  virtual const vm::Program& program() const noexcept = 0;
  virtual vm::RunOutcome run(KernelAttribution& attribution) = 0;
};

/// Executes the guest once, forwarding its event stream into the
/// attribution service. Single-shot, like the engines it owns. With
/// EngineKind::kCompiled (the default) the guest runs on the fused-op
/// threaded-dispatch engine, which emits batched profiling events straight
/// into the attribution (vm::EventSink); with EngineKind::kInterp it runs
/// under minipin instrumentation with per-instruction trampolines. Both
/// paths produce byte-identical consumer-visible event streams.
class LiveEngineSource final : public EventSource {
 public:
  LiveEngineSource(const vm::Program& program, vm::HostEnv& host,
                   std::uint64_t instruction_budget = 0,
                   vm::EngineKind engine = vm::EngineKind::kCompiled);

  /// Arm deterministic fault injection on the underlying engine.
  void set_fault_plan(const vm::FaultPlan& plan) noexcept {
    guest().set_fault_plan(plan);
  }

  /// Arm cooperative interruption on the underlying engine (see
  /// vm::GuestEngine::set_interrupt_flag).
  void set_interrupt_flag(const volatile std::sig_atomic_t* flag) noexcept {
    guest().set_interrupt_flag(flag);
  }

  /// Live progress for heartbeats: instructions retired so far. Exact at
  /// attribution boundaries; the compiled engine keeps its counter in a
  /// register between them.
  std::uint64_t retired_now() const noexcept { return guest().retired(); }

  vm::EngineKind engine_kind() const noexcept {
    return pin_ ? vm::EngineKind::kInterp : vm::EngineKind::kCompiled;
  }

  const vm::Program& program() const noexcept override { return program_; }
  vm::RunOutcome run(KernelAttribution& attribution) override;

 private:
  // Fused per-instruction trampolines for the interpreter path, chosen at
  // instrument time by the instruction's static shape (memory read/write,
  // return). One indirect call per instruction instead of one per concern
  // keeps the single-pass dispatch as cheap as a lone standalone tool's.
  static void on_tick(void* attribution, const pin::InsArgs& args);
  static void tick_read(void* attribution, const pin::InsArgs& args);
  static void tick_write(void* attribution, const pin::InsArgs& args);
  static void tick_read_write(void* attribution, const pin::InsArgs& args);
  static void tick_ret(void* attribution, const pin::InsArgs& args);
  static void enter_fc(void* attribution, const pin::RtnArgs& args);

  static void input_read(KernelAttribution& sink, const pin::InsArgs& args);
  static void input_write(KernelAttribution& sink, const pin::InsArgs& args);

  vm::GuestEngine& guest() noexcept {
    return pin_ ? pin_->guest() : static_cast<vm::GuestEngine&>(*compiled_);
  }
  const vm::GuestEngine& guest() const noexcept {
    return const_cast<LiveEngineSource*>(this)->guest();
  }

  const vm::Program& program_;
  std::optional<pin::Engine> pin_;
  std::optional<vm::CompiledMachine> compiled_;
  bool ran_ = false;
};

/// Replays a recorded TQTR byte image (v1 flat or v2 blocked, auto-detected
/// from the header) as a live-equivalent event stream. The trace must have
/// been recorded from `program` (kernel counts are cross-checked); v2
/// traces stream block-by-block, so memory stays bounded.
///
/// Attribution is re-derived from the recorded enter/ret events — the
/// pre-attributed kernel fields in the records are ignored — so a trace can
/// replay under any library policy. One caveat: predicated-off instructions
/// leave no records, so replayed TickEvents carry zero operand widths for
/// them (see docs/FORMATS.md, "Replaying full profiles").
class TraceReplaySource final : public EventSource {
 public:
  TraceReplaySource(std::span<const std::uint8_t> bytes, const vm::Program& program,
                    bool salvage = false);

  /// Arm cooperative interruption: the replay checks the flag between v2
  /// blocks (and between v1 record chunks) and stops with kInterrupted; the
  /// events fed so far are a valid prefix.
  void set_interrupt_flag(const volatile std::sig_atomic_t* flag) noexcept {
    interrupt_ = flag;
  }

  const vm::Program& program() const noexcept override { return program_; }
  vm::RunOutcome run(KernelAttribution& attribution) override;

  /// After a salvage-mode run: what the decoder recovered vs. dropped
  /// (zero-valued when the trace was clean). v2-only.
  const trace::SalvageReport& salvage_report() const noexcept {
    return salvage_report_;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  const vm::Program& program_;
  trace::SalvageReport salvage_report_;
  const volatile std::sig_atomic_t* interrupt_ = nullptr;
  bool salvage_ = false;
  bool ran_ = false;
};

}  // namespace tq::session
