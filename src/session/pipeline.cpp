#include "session/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <utility>

#include "session/attribution.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/paged_memory.hpp"

namespace tq::session {
namespace detail {

/// Per-worker metric slots, resolved once from the worker's ThreadSink so
/// pump() only touches plain thread-local memory. Null pointers mean
/// metrics are disabled for the run.
struct WorkerMetrics {
  metrics::ThreadSink::Counter* batches = nullptr;
  metrics::Histogram* batch_events = nullptr;
};

// ---------------------------------------------------------------------------
// Events on the wire: a tagged union of the attributed event structs (all
// trivially copyable PODs). kEnd carries the total retired count of
// on_session_end, so the marker rides the ring in stream position and the
// wrapped tool's end accounting runs on its drain worker like every other
// event.

struct PipelineEvent {
  enum class Kind : std::uint8_t { kEnter, kTick, kTickRun, kAccess, kRet, kEnd };

  Kind kind = Kind::kEnd;
  union Payload {
    EnterEvent enter;
    TickEvent tick;
    TickRunEvent run;
    AccessEvent access;
    RetEvent ret;
    std::uint64_t total_retired;
    Payload() : total_retired(0) {}
  } u;
};

using Batch = std::vector<PipelineEvent>;

// ---------------------------------------------------------------------------
// BatchChannel: the producer->worker transport every lane is built on. It
// owns the staging batch, the data ring, a reverse freelist ring, and the
// adaptive batch-size controller:
//
//  * The freelist runs opposite to the data ring (worker produces via
//    recycle(), the VM thread consumes in flush()), so steady state
//    circulates a fixed set of buffers instead of heap-allocating every
//    published batch. Buffer lifetimes never cross the drain barrier in a
//    way the barrier doesn't already order, and a full/closed freelist just
//    frees the buffer — both sides stay non-blocking.
//
//  * `PipelineOptions::batch_events` is only the starting batch size. Each
//    accepted push reports what it saw (SpscRing::PushFeedback) and the
//    controller resizes within [batch_events_min, batch_events_max]: a
//    stalled push or an empty-ring push means the per-push cost dominates,
//    so batches grow; a queue building up shrinks them back. The forced
//    schedules drive the size through its whole range so tests can prove
//    batch boundaries never leak into reports.
//
// Only the VM thread touches cap_/counters; cross-thread traffic goes
// through the two rings, which lock internally. Drops on a closed data ring
// (abort path) deliberately skip adapt(): a dying run must not steer the
// controller.

template <typename Rec>
class BatchChannel {
 public:
  using Buffer = std::vector<Rec>;

  explicit BatchChannel(const PipelineOptions& options)
      : policy_(options.adaptive),
        cap_(options.batch_events > 0 ? options.batch_events : 1),
        ring_(options.ring_batches > 0 ? options.ring_batches : 1),
        free_(ring_limit(options) + 2) {
    min_cap_ = options.batch_events_min > 0
                   ? options.batch_events_min
                   : std::max<std::size_t>(1, cap_ / 16);
    if (min_cap_ > cap_) min_cap_ = cap_;
    max_cap_ = options.batch_events_max > 0 ? options.batch_events_max : 8 * cap_;
    if (max_cap_ < cap_) max_cap_ = cap_;
    ring_.set_capacity_limit(ring_limit(options));
    batch_.reserve(cap_);
  }

  // -- producer side (VM thread) --

  /// Reserve the next staging slot, publishing a full batch first.
  Rec& append() {
    if (batch_.size() >= cap_) flush();
    batch_.emplace_back();
    return batch_.back();
  }

  /// Publish the staging batch (no-op when empty). Reuses a recycled buffer
  /// when the worker has returned one; adapts the batch size from what the
  /// push observed.
  void flush() {
    if (batch_.empty()) return;
    Buffer staging;
    if (free_.try_pop(staging)) {
      ++freelist_hits_;
    } else {
      ++freelist_misses_;
    }
    staging.swap(batch_);
    batch_.reserve(cap_);
    typename SpscRing<Buffer>::PushFeedback feedback;
    if (ring_.push(std::move(staging), &feedback)) adapt(feedback);
  }

  void close() { ring_.close(); }
  void set_bell(Doorbell* bell) { ring_.set_doorbell(bell); }

  // -- worker side --

  bool try_pop(Buffer& out) { return ring_.try_pop(out); }
  bool done() const { return ring_.done(); }
  std::size_t ring_capacity() const { return ring_.capacity(); }

  /// Hand a drained buffer back to the producer. Clears on the worker (the
  /// records are trivially destructible, so this is just a size reset) and
  /// never blocks: a full freelist frees the buffer right here.
  void recycle(Buffer&& buffer) {
    buffer.clear();
    free_.try_push(std::move(buffer));
  }

  // -- post-run introspection --

  void add_stats(PipelineStats& stats) const {
    const auto rs = ring_.stats();
    stats.batches_published += rs.pushes;
    stats.backpressure_waits += rs.push_waits;
    stats.producer_stall_ns += rs.stall_ns;
    stats.dropped_after_close += rs.dropped_after_close;
    if (rs.occupancy_high_water > stats.ring_occupancy_high_water) {
      stats.ring_occupancy_high_water = rs.occupancy_high_water;
    }
    stats.ring_capacity_grows += rs.capacity_grows;
    stats.batch_grows += grows_;
    stats.batch_shrinks += shrinks_;
    stats.freelist_hits += freelist_hits_;
    stats.freelist_misses += freelist_misses_;
    ++stats.rings;  // data ring only; the freelist is plumbing, not payload
  }

 private:
  static std::size_t ring_limit(const PipelineOptions& options) {
    const std::size_t base = options.ring_batches > 0 ? options.ring_batches : 1;
    return options.ring_batches_max > 0 ? options.ring_batches_max : 4 * base;
  }

  void adapt(const typename SpscRing<Buffer>::PushFeedback& feedback) {
    switch (policy_) {
      case AdaptiveBatch::kOff:
        break;
      case AdaptiveBatch::kOccupancy:
        // Stalled: the push rate outruns the ring; bigger batches cut the
        // push (lock + wake) frequency. Empty ring: the worker drains
        // between pushes, so bigger batches cost nothing and amortize
        // better. A standing queue: the worker is the bottleneck — back off
        // so occupancy (and peak memory) stays bounded while it catches up.
        if (feedback.stalled || feedback.was_empty) {
          grow();
        } else if (feedback.depth_after >= 2) {
          shrink();
        }
        break;
      case AdaptiveBatch::kForceGrow:
        grow();
        break;
      case AdaptiveBatch::kForceShrink:
        shrink();
        break;
      case AdaptiveBatch::kForceCycle:
        if (rising_) {
          grow();
          if (cap_ == max_cap_) rising_ = false;
        } else {
          shrink();
          if (cap_ == min_cap_) rising_ = true;
        }
        break;
    }
  }

  void grow() {
    if (cap_ >= max_cap_) return;
    cap_ = std::min(cap_ * 2, max_cap_);
    ++grows_;
  }

  void shrink() {
    if (cap_ <= min_cap_) return;
    cap_ = std::max(cap_ / 2, min_cap_);
    ++shrinks_;
  }

  const AdaptiveBatch policy_;
  std::size_t cap_;
  std::size_t min_cap_ = 1;
  std::size_t max_cap_ = 1;
  bool rising_ = true;
  Buffer batch_;
  SpscRing<Buffer> ring_;
  SpscRing<Buffer> free_;
  std::uint64_t grows_ = 0;
  std::uint64_t shrinks_ = 0;
  std::uint64_t freelist_hits_ = 0;
  std::uint64_t freelist_misses_ = 0;
};

/// What a worker thread drains: pump() applies whatever is queued, and once
/// the ring is closed and empty the drainable marks itself drained (with the
/// mutex/cv handshake that gives the publisher its happens-before edge on
/// the wrapped tool's state).
class Drainable {
 public:
  virtual ~Drainable() = default;

  /// Worker: apply available batches; true if any work was done.
  virtual bool pump(const WorkerMetrics& wm) = 0;

  /// Wire this drainable's ring to its worker's doorbell (before any push).
  virtual void set_bell(Doorbell* bell) = 0;

  bool drained() const noexcept { return drained_.load(std::memory_order_acquire); }

  /// Publisher (the drain barrier): block until the worker applied
  /// everything up to the ring's close.
  void wait_drained() {
    std::unique_lock<std::mutex> lock(drained_mutex_);
    drained_cv_.wait(lock, [&] { return drained_.load(std::memory_order_acquire); });
  }

 protected:
  /// Worker: the ring is closed and fully applied.
  void mark_drained() {
    {
      std::lock_guard<std::mutex> lock(drained_mutex_);
      drained_.store(true, std::memory_order_release);
    }
    drained_cv_.notify_all();
  }

 private:
  std::atomic<bool> drained_{false};
  std::mutex drained_mutex_;
  std::condition_variable drained_cv_;
};

/// Publisher-facing wrapper registered with the attribution in place of the
/// real consumer. Also hands the pipeline its drainables and stats.
class LaneBase : public AnalysisConsumer {
 public:
  virtual void collect_drainables(std::vector<Drainable*>& out) = 0;

  /// Abort path (run threw before input_finish): close the rings so the
  /// workers can exit; nobody reads the tools afterwards.
  virtual void abort_close() = 0;

  virtual void add_stats(PipelineStats& stats) const = 0;
};

// ---------------------------------------------------------------------------
// EventLane: the general consumer lane. Forwards every subscribed event kind
// through one channel; on_finish flushes, closes, waits for the drain, then
// lets the target see the outcome on the publisher thread.

class EventLane final : public LaneBase, public Drainable {
 public:
  EventLane(AnalysisConsumer& target, unsigned interests,
            const PipelineOptions& options)
      : target_(target), interests_(interests), channel_(options) {}

  // -- publisher side (VM thread) --
  unsigned event_interests() const override { return interests_; }

  void on_kernel_enter(const EnterEvent& event) override {
    PipelineEvent& slot = append(PipelineEvent::Kind::kEnter);
    slot.u.enter = event;
  }
  void on_tick(const TickEvent& event) override {
    PipelineEvent& slot = append(PipelineEvent::Kind::kTick);
    slot.u.tick = event;
  }
  void on_tick_run(const TickRunEvent& run) override {
    PipelineEvent& slot = append(PipelineEvent::Kind::kTickRun);
    slot.u.run = run;
  }
  void on_access(const AccessEvent& event) override {
    PipelineEvent& slot = append(PipelineEvent::Kind::kAccess);
    slot.u.access = event;
  }
  void on_kernel_ret(const RetEvent& event) override {
    PipelineEvent& slot = append(PipelineEvent::Kind::kRet);
    slot.u.ret = event;
  }
  void on_session_end(std::uint64_t total_retired) override {
    PipelineEvent& slot = append(PipelineEvent::Kind::kEnd);
    slot.u.total_retired = total_retired;
  }

  void on_finish(const vm::RunOutcome& outcome) override {
    channel_.flush();
    channel_.close();
    wait_drained();
    // The drain barrier passed: the worker applied the whole stream, so the
    // target finalizes with complete (possibly prefix-exact partial) state.
    target_.on_finish(outcome);
  }

  // -- pipeline wiring --
  void collect_drainables(std::vector<Drainable*>& out) override {
    out.push_back(this);
  }
  void set_bell(Doorbell* bell) override { channel_.set_bell(bell); }
  void abort_close() override { channel_.close(); }
  void add_stats(PipelineStats& stats) const override {
    channel_.add_stats(stats);
  }

  // -- worker side --
  bool pump(const WorkerMetrics& wm) override {
    bool progress = false;
    Batch batch;
    // Cap the pops per call so sibling lanes on the same worker get a turn.
    const std::size_t burst = channel_.ring_capacity();
    for (std::size_t i = 0; i < burst && channel_.try_pop(batch); ++i) {
      if (wm.batches != nullptr) {
        wm.batches->add(1);
        wm.batch_events->observe(batch.size());
      }
      apply(batch);
      channel_.recycle(std::move(batch));
      progress = true;
    }
    if (!drained() && channel_.done()) mark_drained();
    return progress;
  }

 private:
  PipelineEvent& append(PipelineEvent::Kind kind) {
    PipelineEvent& slot = channel_.append();
    slot.kind = kind;
    return slot;
  }

  void apply(const Batch& batch) {
    for (const PipelineEvent& event : batch) {
      switch (event.kind) {
        case PipelineEvent::Kind::kEnter:
          target_.on_kernel_enter(event.u.enter);
          break;
        case PipelineEvent::Kind::kTick:
          target_.on_tick(event.u.tick);
          break;
        case PipelineEvent::Kind::kTickRun:
          target_.on_tick_run(event.u.run);
          break;
        case PipelineEvent::Kind::kAccess:
          target_.on_access(event.u.access);
          break;
        case PipelineEvent::Kind::kRet:
          target_.on_kernel_ret(event.u.ret);
          break;
        case PipelineEvent::Kind::kEnd:
          target_.on_session_end(event.u.total_retired);
          break;
      }
    }
  }

  AnalysisConsumer& target_;
  const unsigned interests_;
  BatchChannel<PipelineEvent> channel_;
};

// ---------------------------------------------------------------------------
// Sharded access routing: one channel per address shard, each drained by its
// own worker. The router lane carries only kAccessInterest; the consumer's
// remaining interests ride a separate EventLane (the control lane), so
// QUAD's tick counters and its shadow updates progress concurrently.

struct ShardRecord {
  AccessEvent event;
  bool count_access = true;
};

using ShardBatch = std::vector<ShardRecord>;

class AccessShard final : public Drainable {
 public:
  AccessShard(ShardedAccessConsumer& sharded, unsigned shard,
              BatchChannel<ShardRecord>& channel)
      : sharded_(sharded), shard_(shard), channel_(channel) {}

  void set_bell(Doorbell* bell) override { channel_.set_bell(bell); }

  bool pump(const WorkerMetrics& wm) override {
    bool progress = false;
    ShardBatch batch;
    const std::size_t burst = channel_.ring_capacity();
    for (std::size_t i = 0; i < burst && channel_.try_pop(batch); ++i) {
      if (wm.batches != nullptr) {
        wm.batches->add(1);
        wm.batch_events->observe(batch.size());
      }
      for (const ShardRecord& record : batch) {
        sharded_.apply_access_shard(shard_, record.event, record.count_access);
      }
      channel_.recycle(std::move(batch));
      progress = true;
    }
    if (!drained() && channel_.done()) mark_drained();
    return progress;
  }

 private:
  ShardedAccessConsumer& sharded_;
  const unsigned shard_;
  BatchChannel<ShardRecord>& channel_;
};

class ShardedAccessLane final : public LaneBase {
 public:
  static constexpr std::uint64_t kPageBits = PagedMemory::kPageBits;

  ShardedAccessLane(ShardedAccessConsumer& sharded, unsigned shards,
                    const PipelineOptions& options)
      : sharded_(sharded) {
    TQUAD_CHECK(shards >= 1, "sharded lane needs at least one shard");
    sharded_.prepare_shards(shards);
    channels_.reserve(shards);
    shards_.reserve(shards);
    for (unsigned s = 0; s < shards; ++s) {
      channels_.push_back(std::make_unique<BatchChannel<ShardRecord>>(options));
      shards_.push_back(
          std::make_unique<AccessShard>(sharded_, s, *channels_[s]));
    }
  }

  // -- publisher side --
  unsigned event_interests() const override { return kAccessInterest; }

  void on_access(const AccessEvent& event) override {
    const std::uint64_t last =
        event.ea + (event.size > 0 ? event.size - 1 : 0);
    if ((event.ea >> kPageBits) == (last >> kPageBits)) {
      append(shard_of(event.ea), event, true);
      return;
    }
    // Page-crossing access: split into per-page pieces so every shard only
    // ever touches its own pages. The per-access counter travels with the
    // first piece only.
    AccessEvent piece = event;
    std::uint64_t cursor = event.ea;
    std::uint64_t remaining = event.size;
    bool first = true;
    while (remaining > 0) {
      const std::uint64_t page_end = ((cursor >> kPageBits) + 1) << kPageBits;
      const std::uint64_t in_page = std::min(remaining, page_end - cursor);
      piece.ea = cursor;
      piece.size = static_cast<std::uint32_t>(in_page);
      append(shard_of(cursor), piece, first);
      first = false;
      cursor += in_page;
      remaining -= in_page;
    }
  }

  void on_finish(const vm::RunOutcome&) override {
    // The router is registered before the control lane, so this runs first:
    // drain every shard and fold the replicas back together before the
    // control lane forwards on_finish to the tool itself.
    for (auto& channel : channels_) channel->flush();
    for (auto& channel : channels_) channel->close();
    for (auto& shard : shards_) shard->wait_drained();
    const auto fold_start = std::chrono::steady_clock::now();
    sharded_.merge_shards();
    fold_ns_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - fold_start)
            .count());
  }

  // -- pipeline wiring --
  void collect_drainables(std::vector<Drainable*>& out) override {
    for (auto& shard : shards_) out.push_back(shard.get());
  }
  void abort_close() override {
    for (auto& channel : channels_) channel->close();
  }
  void add_stats(PipelineStats& stats) const override {
    for (const auto& channel : channels_) channel->add_stats(stats);
    stats.shard_fold_ns += fold_ns_;
  }

 private:
  unsigned shard_of(std::uint64_t ea) const noexcept {
    return static_cast<unsigned>((ea >> kPageBits) % shards_.size());
  }

  void append(unsigned shard, const AccessEvent& event, bool count_access) {
    ShardRecord& slot = channels_[shard]->append();
    slot.event = event;
    slot.count_access = count_access;
  }

  ShardedAccessConsumer& sharded_;
  std::vector<std::unique_ptr<BatchChannel<ShardRecord>>> channels_;
  std::vector<std::unique_ptr<AccessShard>> shards_;
  std::uint64_t fold_ns_ = 0;  ///< written at the drain barrier, read after
};

}  // namespace detail

// ---------------------------------------------------------------------------
// ParallelPipeline

namespace {

unsigned effective_workers(const PipelineOptions& options) {
  if (options.workers != 0) return options.workers;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// TQ_PIPELINE_FORCE_ADAPTIVE overrides the batch controller policy for a
/// whole process — the tier-1 stress hook that replays every pipeline test
/// under the forced schedules. Unknown values are noted and ignored rather
/// than fatal: a typo in a CI matrix must not mask the actual test result.
void apply_forced_adaptive(PipelineOptions& options) {
  const char* forced = std::getenv("TQ_PIPELINE_FORCE_ADAPTIVE");
  if (forced == nullptr || *forced == '\0') return;
  const std::string_view value(forced);
  if (value == "off") {
    options.adaptive = AdaptiveBatch::kOff;
  } else if (value == "occupancy") {
    options.adaptive = AdaptiveBatch::kOccupancy;
  } else if (value == "grow") {
    options.adaptive = AdaptiveBatch::kForceGrow;
  } else if (value == "shrink") {
    options.adaptive = AdaptiveBatch::kForceShrink;
  } else if (value == "cycle") {
    options.adaptive = AdaptiveBatch::kForceCycle;
  } else {
    std::fprintf(stderr,
                 "note: ignoring unknown TQ_PIPELINE_FORCE_ADAPTIVE value "
                 "'%s' (want off|occupancy|grow|shrink|cycle)\n",
                 forced);
  }
}

}  // namespace

ParallelPipeline::ParallelPipeline(const PipelineOptions& options,
                                   metrics::Registry* metrics)
    : options_(options), metrics_(metrics), workers_(effective_workers(options)) {
  TQUAD_CHECK(options.mode == PipelineMode::kParallel,
              "ParallelPipeline constructed in serial mode");
  apply_forced_adaptive(options_);
  // Auto shard count: match the workers (the access stream is the heaviest
  // lane), but keep at least one shard and avoid silly fan-out.
  access_shards_ = options.access_shards != 0 ? options.access_shards : workers_;
  if (access_shards_ == 0) access_shards_ = 1;
  if (access_shards_ > 16) access_shards_ = 16;
}

ParallelPipeline::~ParallelPipeline() {
  // Abort path: if the run threw before input_finish, the rings never
  // closed and the workers would wait forever. Close everything (idempotent
  // after a clean drain), then join via the pool's destructor.
  for (auto& lane : lanes_) lane->abort_close();
  pool_.reset();
}

void ParallelPipeline::attach(AnalysisConsumer& target,
                              KernelAttribution& attribution) {
  TQUAD_CHECK(!started_, "attach after start");
  const unsigned interests = target.event_interests();
  ShardedAccessConsumer* sharded = target.sharded_access();
  if (sharded != nullptr && access_shards_ > 1 &&
      (interests & AnalysisConsumer::kAccessInterest)) {
    // Router first, control lane second: at input_finish the router then
    // merges the shard replicas *before* the control lane delivers
    // on_finish to the tool (consumers finish in registration order).
    auto router = std::make_unique<detail::ShardedAccessLane>(
        *sharded, access_shards_, options_);
    attribution.add_consumer(*router);
    lanes_.push_back(std::move(router));
    auto control = std::make_unique<detail::EventLane>(
        target, interests & ~AnalysisConsumer::kAccessInterest, options_);
    attribution.add_consumer(*control);
    lanes_.push_back(std::move(control));
  } else {
    auto lane = std::make_unique<detail::EventLane>(target, interests, options_);
    attribution.add_consumer(*lane);
    lanes_.push_back(std::move(lane));
  }
}

void ParallelPipeline::start() {
  TQUAD_CHECK(!started_, "pipeline already started");
  started_ = true;
  for (auto& lane : lanes_) lane->collect_drainables(drainables_);
  if (drainables_.empty()) return;
  if (workers_ > drainables_.size()) {
    workers_ = static_cast<unsigned>(drainables_.size());
  }
  // Round-robin the drainables over the workers and hand every ring its
  // worker's doorbell before the first push can happen.
  std::vector<std::vector<detail::Drainable*>> assignment(workers_);
  bells_.clear();
  for (unsigned w = 0; w < workers_; ++w) {
    bells_.push_back(std::make_unique<Doorbell>());
  }
  for (std::size_t d = 0; d < drainables_.size(); ++d) {
    assignment[d % workers_].push_back(drainables_[d]);
    drainables_[d]->set_bell(bells_[d % workers_].get());
  }
  pool_ = std::make_unique<ThreadPool>(workers_);
  for (unsigned w = 0; w < workers_; ++w) {
    std::vector<detail::Drainable*> mine = assignment[w];
    Doorbell* bell = bells_[w].get();
    metrics::Registry* registry = metrics_;
    pool_->submit([mine = std::move(mine), bell, registry] {
      // The sink lives for the worker's whole drain loop and folds into the
      // registry when the worker exits — which it only does once all of its
      // rings are closed and drained, i.e. at the drain barrier.
      std::optional<metrics::ThreadSink> sink;
      detail::WorkerMetrics wm;
      if (registry != nullptr) {
        sink.emplace(*registry);
        wm.batches = &sink->counter("pipeline.worker.batches");
        wm.batch_events = &sink->histogram("pipeline.worker.batch_events");
      }
      for (;;) {
        const std::uint64_t seen = bell->epoch();
        bool progress = false;
        bool all_drained = true;
        for (detail::Drainable* drainable : mine) {
          if (drainable->drained()) continue;
          progress = drainable->pump(wm) || progress;
          all_drained = drainable->drained() && all_drained;
        }
        if (all_drained) return;
        if (!progress) bell->wait_past(seen);
      }
    });
  }
}

PipelineStats ParallelPipeline::stats() const {
  PipelineStats stats;
  for (const auto& lane : lanes_) lane->add_stats(stats);
  stats.workers = workers_;
  stats.access_shards = access_shards_;
  return stats;
}

}  // namespace tq::session
