#include "session/pipeline.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "session/attribution.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/paged_memory.hpp"

namespace tq::session {
namespace detail {

/// Per-worker metric slots, resolved once from the worker's ThreadSink so
/// pump() only touches plain thread-local memory. Null pointers mean
/// metrics are disabled for the run.
struct WorkerMetrics {
  metrics::ThreadSink::Counter* batches = nullptr;
  metrics::Histogram* batch_events = nullptr;
};

// ---------------------------------------------------------------------------
// Events on the wire: a tagged union of the attributed event structs (all
// trivially copyable PODs). kEnd carries the total retired count of
// on_session_end, so the marker rides the ring in stream position and the
// wrapped tool's end accounting runs on its drain worker like every other
// event.

struct PipelineEvent {
  enum class Kind : std::uint8_t { kEnter, kTick, kTickRun, kAccess, kRet, kEnd };

  Kind kind = Kind::kEnd;
  union Payload {
    EnterEvent enter;
    TickEvent tick;
    TickRunEvent run;
    AccessEvent access;
    RetEvent ret;
    std::uint64_t total_retired;
    Payload() : total_retired(0) {}
  } u;
};

using Batch = std::vector<PipelineEvent>;

/// What a worker thread drains: pump() applies whatever is queued, and once
/// the ring is closed and empty the drainable marks itself drained (with the
/// mutex/cv handshake that gives the publisher its happens-before edge on
/// the wrapped tool's state).
class Drainable {
 public:
  virtual ~Drainable() = default;

  /// Worker: apply available batches; true if any work was done.
  virtual bool pump(const WorkerMetrics& wm) = 0;

  /// Wire this drainable's ring to its worker's doorbell (before any push).
  virtual void set_bell(Doorbell* bell) = 0;

  bool drained() const noexcept { return drained_.load(std::memory_order_acquire); }

  /// Publisher (the drain barrier): block until the worker applied
  /// everything up to the ring's close.
  void wait_drained() {
    std::unique_lock<std::mutex> lock(drained_mutex_);
    drained_cv_.wait(lock, [&] { return drained_.load(std::memory_order_acquire); });
  }

 protected:
  /// Worker: the ring is closed and fully applied.
  void mark_drained() {
    {
      std::lock_guard<std::mutex> lock(drained_mutex_);
      drained_.store(true, std::memory_order_release);
    }
    drained_cv_.notify_all();
  }

 private:
  std::atomic<bool> drained_{false};
  std::mutex drained_mutex_;
  std::condition_variable drained_cv_;
};

/// Publisher-facing wrapper registered with the attribution in place of the
/// real consumer. Also hands the pipeline its drainables and stats.
class LaneBase : public AnalysisConsumer {
 public:
  virtual void collect_drainables(std::vector<Drainable*>& out) = 0;

  /// Abort path (run threw before input_finish): close the rings so the
  /// workers can exit; nobody reads the tools afterwards.
  virtual void abort_close() = 0;

  virtual void add_stats(PipelineStats& stats) const = 0;
};

// ---------------------------------------------------------------------------
// EventLane: the general consumer lane. Forwards every subscribed event kind
// through one ring; on_finish flushes, closes, waits for the drain, then
// lets the target see the outcome on the publisher thread.

class EventLane final : public LaneBase, public Drainable {
 public:
  EventLane(AnalysisConsumer& target, unsigned interests,
            const PipelineOptions& options)
      : target_(target),
        interests_(interests),
        batch_cap_(options.batch_events > 0 ? options.batch_events : 1),
        ring_(options.ring_batches > 0 ? options.ring_batches : 1) {
    batch_.reserve(batch_cap_);
  }

  // -- publisher side (VM thread) --
  unsigned event_interests() const override { return interests_; }

  void on_kernel_enter(const EnterEvent& event) override {
    PipelineEvent& slot = append(PipelineEvent::Kind::kEnter);
    slot.u.enter = event;
  }
  void on_tick(const TickEvent& event) override {
    PipelineEvent& slot = append(PipelineEvent::Kind::kTick);
    slot.u.tick = event;
  }
  void on_tick_run(const TickRunEvent& run) override {
    PipelineEvent& slot = append(PipelineEvent::Kind::kTickRun);
    slot.u.run = run;
  }
  void on_access(const AccessEvent& event) override {
    PipelineEvent& slot = append(PipelineEvent::Kind::kAccess);
    slot.u.access = event;
  }
  void on_kernel_ret(const RetEvent& event) override {
    PipelineEvent& slot = append(PipelineEvent::Kind::kRet);
    slot.u.ret = event;
  }
  void on_session_end(std::uint64_t total_retired) override {
    PipelineEvent& slot = append(PipelineEvent::Kind::kEnd);
    slot.u.total_retired = total_retired;
  }

  void on_finish(const vm::RunOutcome& outcome) override {
    flush();
    ring_.close();
    wait_drained();
    // The drain barrier passed: the worker applied the whole stream, so the
    // target finalizes with complete (possibly prefix-exact partial) state.
    target_.on_finish(outcome);
  }

  // -- pipeline wiring --
  void collect_drainables(std::vector<Drainable*>& out) override {
    out.push_back(this);
  }
  void set_bell(Doorbell* bell) override { ring_.set_doorbell(bell); }
  void abort_close() override { ring_.close(); }
  void add_stats(PipelineStats& stats) const override {
    const auto rs = ring_.stats();
    stats.batches_published += rs.pushes;
    stats.backpressure_waits += rs.push_waits;
    stats.producer_stall_ns += rs.stall_ns;
    stats.dropped_after_close += rs.dropped_after_close;
    if (rs.occupancy_high_water > stats.ring_occupancy_high_water) {
      stats.ring_occupancy_high_water = rs.occupancy_high_water;
    }
    ++stats.rings;
  }

  // -- worker side --
  bool pump(const WorkerMetrics& wm) override {
    bool progress = false;
    Batch batch;
    // Cap the pops per call so sibling lanes on the same worker get a turn.
    for (std::size_t i = 0; i < ring_.capacity() && ring_.try_pop(batch); ++i) {
      if (wm.batches != nullptr) {
        wm.batches->add(1);
        wm.batch_events->observe(batch.size());
      }
      apply(batch);
      progress = true;
    }
    if (!drained() && ring_.done()) mark_drained();
    return progress;
  }

 private:
  PipelineEvent& append(PipelineEvent::Kind kind) {
    if (batch_.size() == batch_cap_) flush();
    batch_.emplace_back();
    batch_.back().kind = kind;
    return batch_.back();
  }

  void flush() {
    if (batch_.empty()) return;
    Batch full;
    full.reserve(batch_cap_);
    batch_.swap(full);
    ring_.push(std::move(full));
  }

  void apply(const Batch& batch) {
    for (const PipelineEvent& event : batch) {
      switch (event.kind) {
        case PipelineEvent::Kind::kEnter:
          target_.on_kernel_enter(event.u.enter);
          break;
        case PipelineEvent::Kind::kTick:
          target_.on_tick(event.u.tick);
          break;
        case PipelineEvent::Kind::kTickRun:
          target_.on_tick_run(event.u.run);
          break;
        case PipelineEvent::Kind::kAccess:
          target_.on_access(event.u.access);
          break;
        case PipelineEvent::Kind::kRet:
          target_.on_kernel_ret(event.u.ret);
          break;
        case PipelineEvent::Kind::kEnd:
          target_.on_session_end(event.u.total_retired);
          break;
      }
    }
  }

  AnalysisConsumer& target_;
  const unsigned interests_;
  const std::size_t batch_cap_;
  Batch batch_;
  SpscRing<Batch> ring_;
};

// ---------------------------------------------------------------------------
// Sharded access routing: one ring per address shard, each drained by its
// own worker. The router lane carries only kAccessInterest; the consumer's
// remaining interests ride a separate EventLane (the control lane), so
// QUAD's tick counters and its shadow updates progress concurrently.

struct ShardRecord {
  AccessEvent event;
  bool count_access = true;
};

using ShardBatch = std::vector<ShardRecord>;

class AccessShard final : public Drainable {
 public:
  AccessShard(ShardedAccessConsumer& sharded, unsigned shard,
              std::size_t ring_batches)
      : sharded_(sharded), shard_(shard),
        ring_(ring_batches > 0 ? ring_batches : 1) {}

  SpscRing<ShardBatch>& ring() noexcept { return ring_; }
  const SpscRing<ShardBatch>& ring() const noexcept { return ring_; }

  void set_bell(Doorbell* bell) override { ring_.set_doorbell(bell); }

  bool pump(const WorkerMetrics& wm) override {
    bool progress = false;
    ShardBatch batch;
    for (std::size_t i = 0; i < ring_.capacity() && ring_.try_pop(batch); ++i) {
      if (wm.batches != nullptr) {
        wm.batches->add(1);
        wm.batch_events->observe(batch.size());
      }
      for (const ShardRecord& record : batch) {
        sharded_.apply_access_shard(shard_, record.event, record.count_access);
      }
      progress = true;
    }
    if (!drained() && ring_.done()) mark_drained();
    return progress;
  }

 private:
  ShardedAccessConsumer& sharded_;
  const unsigned shard_;
  SpscRing<ShardBatch> ring_;
};

class ShardedAccessLane final : public LaneBase {
 public:
  static constexpr std::uint64_t kPageBits = PagedMemory::kPageBits;

  ShardedAccessLane(ShardedAccessConsumer& sharded, unsigned shards,
                    const PipelineOptions& options)
      : sharded_(sharded),
        batch_cap_(options.batch_events > 0 ? options.batch_events : 1) {
    TQUAD_CHECK(shards >= 1, "sharded lane needs at least one shard");
    sharded_.prepare_shards(shards);
    shards_.reserve(shards);
    batches_.resize(shards);
    for (unsigned s = 0; s < shards; ++s) {
      shards_.push_back(std::make_unique<AccessShard>(sharded_, s,
                                                      options.ring_batches));
      batches_[s].reserve(batch_cap_);
    }
  }

  // -- publisher side --
  unsigned event_interests() const override { return kAccessInterest; }

  void on_access(const AccessEvent& event) override {
    const std::uint64_t last =
        event.ea + (event.size > 0 ? event.size - 1 : 0);
    if ((event.ea >> kPageBits) == (last >> kPageBits)) {
      append(shard_of(event.ea), event, true);
      return;
    }
    // Page-crossing access: split into per-page pieces so every shard only
    // ever touches its own pages. The per-access counter travels with the
    // first piece only.
    AccessEvent piece = event;
    std::uint64_t cursor = event.ea;
    std::uint64_t remaining = event.size;
    bool first = true;
    while (remaining > 0) {
      const std::uint64_t page_end = ((cursor >> kPageBits) + 1) << kPageBits;
      const std::uint64_t in_page = std::min(remaining, page_end - cursor);
      piece.ea = cursor;
      piece.size = static_cast<std::uint32_t>(in_page);
      append(shard_of(cursor), piece, first);
      first = false;
      cursor += in_page;
      remaining -= in_page;
    }
  }

  void on_finish(const vm::RunOutcome&) override {
    // The router is registered before the control lane, so this runs first:
    // drain every shard and fold the replicas back together before the
    // control lane forwards on_finish to the tool itself.
    for (unsigned s = 0; s < shards_.size(); ++s) flush(s);
    for (auto& shard : shards_) shard->ring().close();
    for (auto& shard : shards_) shard->wait_drained();
    const auto fold_start = std::chrono::steady_clock::now();
    sharded_.merge_shards();
    fold_ns_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - fold_start)
            .count());
  }

  // -- pipeline wiring --
  void collect_drainables(std::vector<Drainable*>& out) override {
    for (auto& shard : shards_) out.push_back(shard.get());
  }
  void abort_close() override {
    for (auto& shard : shards_) shard->ring().close();
  }
  void add_stats(PipelineStats& stats) const override {
    for (const auto& shard : shards_) {
      const auto rs = shard->ring().stats();
      stats.batches_published += rs.pushes;
      stats.backpressure_waits += rs.push_waits;
      stats.producer_stall_ns += rs.stall_ns;
      stats.dropped_after_close += rs.dropped_after_close;
      if (rs.occupancy_high_water > stats.ring_occupancy_high_water) {
        stats.ring_occupancy_high_water = rs.occupancy_high_water;
      }
      ++stats.rings;
    }
    stats.shard_fold_ns += fold_ns_;
  }

 private:
  unsigned shard_of(std::uint64_t ea) const noexcept {
    return static_cast<unsigned>((ea >> kPageBits) % shards_.size());
  }

  void append(unsigned shard, const AccessEvent& event, bool count_access) {
    ShardBatch& batch = batches_[shard];
    if (batch.size() == batch_cap_) flush(shard);
    batches_[shard].push_back(ShardRecord{event, count_access});
  }

  void flush(unsigned shard) {
    ShardBatch& batch = batches_[shard];
    if (batch.empty()) return;
    ShardBatch full;
    full.reserve(batch_cap_);
    batch.swap(full);
    shards_[shard]->ring().push(std::move(full));
  }

  ShardedAccessConsumer& sharded_;
  const std::size_t batch_cap_;
  std::vector<std::unique_ptr<AccessShard>> shards_;
  std::vector<ShardBatch> batches_;
  std::uint64_t fold_ns_ = 0;  ///< written at the drain barrier, read after
};

}  // namespace detail

// ---------------------------------------------------------------------------
// ParallelPipeline

namespace {

unsigned effective_workers(const PipelineOptions& options) {
  if (options.workers != 0) return options.workers;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

ParallelPipeline::ParallelPipeline(const PipelineOptions& options,
                                   metrics::Registry* metrics)
    : options_(options), metrics_(metrics), workers_(effective_workers(options)) {
  TQUAD_CHECK(options.mode == PipelineMode::kParallel,
              "ParallelPipeline constructed in serial mode");
  // Auto shard count: match the workers (the access stream is the heaviest
  // lane), but keep at least one shard and avoid silly fan-out.
  access_shards_ = options.access_shards != 0 ? options.access_shards : workers_;
  if (access_shards_ == 0) access_shards_ = 1;
  if (access_shards_ > 16) access_shards_ = 16;
}

ParallelPipeline::~ParallelPipeline() {
  // Abort path: if the run threw before input_finish, the rings never
  // closed and the workers would wait forever. Close everything (idempotent
  // after a clean drain), then join via the pool's destructor.
  for (auto& lane : lanes_) lane->abort_close();
  pool_.reset();
}

void ParallelPipeline::attach(AnalysisConsumer& target,
                              KernelAttribution& attribution) {
  TQUAD_CHECK(!started_, "attach after start");
  const unsigned interests = target.event_interests();
  ShardedAccessConsumer* sharded = target.sharded_access();
  if (sharded != nullptr && access_shards_ > 1 &&
      (interests & AnalysisConsumer::kAccessInterest)) {
    // Router first, control lane second: at input_finish the router then
    // merges the shard replicas *before* the control lane delivers
    // on_finish to the tool (consumers finish in registration order).
    auto router = std::make_unique<detail::ShardedAccessLane>(
        *sharded, access_shards_, options_);
    attribution.add_consumer(*router);
    lanes_.push_back(std::move(router));
    auto control = std::make_unique<detail::EventLane>(
        target, interests & ~AnalysisConsumer::kAccessInterest, options_);
    attribution.add_consumer(*control);
    lanes_.push_back(std::move(control));
  } else {
    auto lane = std::make_unique<detail::EventLane>(target, interests, options_);
    attribution.add_consumer(*lane);
    lanes_.push_back(std::move(lane));
  }
}

void ParallelPipeline::start() {
  TQUAD_CHECK(!started_, "pipeline already started");
  started_ = true;
  for (auto& lane : lanes_) lane->collect_drainables(drainables_);
  if (drainables_.empty()) return;
  if (workers_ > drainables_.size()) {
    workers_ = static_cast<unsigned>(drainables_.size());
  }
  // Round-robin the drainables over the workers and hand every ring its
  // worker's doorbell before the first push can happen.
  std::vector<std::vector<detail::Drainable*>> assignment(workers_);
  bells_.clear();
  for (unsigned w = 0; w < workers_; ++w) {
    bells_.push_back(std::make_unique<Doorbell>());
  }
  for (std::size_t d = 0; d < drainables_.size(); ++d) {
    assignment[d % workers_].push_back(drainables_[d]);
    drainables_[d]->set_bell(bells_[d % workers_].get());
  }
  pool_ = std::make_unique<ThreadPool>(workers_);
  for (unsigned w = 0; w < workers_; ++w) {
    std::vector<detail::Drainable*> mine = assignment[w];
    Doorbell* bell = bells_[w].get();
    metrics::Registry* registry = metrics_;
    pool_->submit([mine = std::move(mine), bell, registry] {
      // The sink lives for the worker's whole drain loop and folds into the
      // registry when the worker exits — which it only does once all of its
      // rings are closed and drained, i.e. at the drain barrier.
      std::optional<metrics::ThreadSink> sink;
      detail::WorkerMetrics wm;
      if (registry != nullptr) {
        sink.emplace(*registry);
        wm.batches = &sink->counter("pipeline.worker.batches");
        wm.batch_events = &sink->histogram("pipeline.worker.batch_events");
      }
      for (;;) {
        const std::uint64_t seen = bell->epoch();
        bool progress = false;
        bool all_drained = true;
        for (detail::Drainable* drainable : mine) {
          if (drainable->drained()) continue;
          progress = drainable->pump(wm) || progress;
          all_drained = drainable->drained() && all_drained;
        }
        if (all_drained) return;
        if (!progress) bell->wait_past(seen);
      }
    });
  }
}

PipelineStats ParallelPipeline::stats() const {
  PipelineStats stats;
  for (const auto& lane : lanes_) lane->add_stats(stats);
  stats.workers = workers_;
  stats.access_shards = access_shards_;
  return stats;
}

}  // namespace tq::session
