// Parallel live-analysis pipeline.
//
// In serial mode ProfileSession drives every AnalysisConsumer inline on the
// VM thread; here the VM thread only *publishes*: each consumer is wrapped
// in a lane that batches its attributed events and pushes the batches into a
// fixed-capacity SPSC ring, drained by a worker thread that replays them
// into the real tool. Per-consumer event order is exactly the serial order,
// and each tool's state is touched by exactly one thread, so reports come
// out byte-identical to the serial single pass.
//
// The heaviest consumer, QUAD, additionally shards its per-address state:
// access events are routed to N shard rings by 4 KiB page number (events
// that cross a page are split, with the per-access counter carried by the
// first piece only), each shard drains on its own worker, and the shard
// states merge exactly at the drain barrier. See ShardedAccessConsumer in
// events.hpp for the routing contract.
//
// on_finish is the barrier: every lane flushes its tail batch, closes its
// ring, waits until the worker has applied everything, and only then lets
// the wrapped tool see the RunOutcome. EventSources call input_finish on
// every path — clean halt, guest trap, budget truncation — so a trap
// mid-run still drains completely and yields the exact-prefix PARTIAL
// reports the fault-tolerance contract promises.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "session/events.hpp"
#include "support/spsc_ring.hpp"
#include "support/thread_pool.hpp"

namespace tq::metrics {
class Registry;
}  // namespace tq::metrics

namespace tq::session {

class KernelAttribution;

/// How a ProfileSession dispatches consumer accounting.
enum class PipelineMode : std::uint8_t {
  kSerial = 0,    ///< reference implementation: consumers run on the VM thread
  kParallel = 1,  ///< consumers drain SPSC event rings on worker threads
};

/// Batch-size controller policy for the lanes. kOccupancy is the production
/// policy; the forced schedules exist so tests can drive the batch size
/// through its whole range deterministically and prove reports stay
/// byte-identical regardless of how batches were cut.
enum class AdaptiveBatch : std::uint8_t {
  kOff = 0,        ///< fixed batch_events, the pre-adaptive behavior
  kOccupancy = 1,  ///< grow/shrink from observed ring occupancy (default)
  kForceGrow = 2,  ///< test schedule: grow to batch_events_max and stay
  kForceShrink = 3,  ///< test schedule: shrink to batch_events_min and stay
  kForceCycle = 4,   ///< test schedule: alternate grow-to-max / shrink-to-min
};

struct PipelineOptions {
  PipelineMode mode = PipelineMode::kSerial;
  unsigned workers = 0;           ///< drain threads; 0 = hardware_concurrency
  std::size_t batch_events = 4096;  ///< starting batch size, in events
  std::size_t ring_batches = 8;     ///< starting ring capacity, in batches
  unsigned access_shards = 0;     ///< shards for sharded consumers; 0 = auto
  AdaptiveBatch adaptive = AdaptiveBatch::kOccupancy;
  std::size_t batch_events_min = 0;  ///< adaptive floor; 0 = batch_events/16
  std::size_t batch_events_max = 0;  ///< adaptive ceiling; 0 = 8*batch_events
  /// Ring capacity auto-tune ceiling, in batches; 0 = 4*ring_batches. Set
  /// equal to ring_batches to pin the capacity (backpressure tests do).
  std::size_t ring_batches_max = 0;
};

/// Post-run introspection (bench, tests, and the metrics registry): how
/// much flowed through the rings, how often and how long the publisher hit
/// backpressure, and what the drain barrier's shard fold cost.
struct PipelineStats {
  std::uint64_t batches_published = 0;
  std::uint64_t backpressure_waits = 0;
  std::uint64_t producer_stall_ns = 0;    ///< publisher wall time blocked on space
  std::uint64_t dropped_after_close = 0;  ///< pushes refused by abort close
  std::uint64_t ring_occupancy_high_water = 0;  ///< max batches queued, any ring
  std::uint64_t shard_fold_ns = 0;  ///< merge_shards() time at the drain barrier
  std::uint64_t batch_grows = 0;    ///< adaptive batch-size growth steps
  std::uint64_t batch_shrinks = 0;  ///< adaptive batch-size shrink steps
  std::uint64_t freelist_hits = 0;    ///< published batches that reused a buffer
  std::uint64_t freelist_misses = 0;  ///< published batches freshly allocated
  std::uint64_t ring_capacity_grows = 0;  ///< ring auto-tune growth steps
  unsigned rings = 0;
  unsigned workers = 0;
  unsigned access_shards = 0;
};

namespace detail {
class LaneBase;
class Drainable;
}  // namespace detail

/// Owns the lanes, the rings, and the drain workers for one profiled run.
/// Lifecycle: construct, attach() every consumer, start(), run the event
/// source (the attribution's input_finish doubles as the drain barrier),
/// then destroy (joins the workers). The pipeline must outlive the run.
class ParallelPipeline {
 public:
  /// `metrics` is optional: when set, each drain worker folds its batch
  /// counters/size histogram into the registry through a per-worker
  /// ThreadSink as it exits at the drain barrier.
  explicit ParallelPipeline(const PipelineOptions& options,
                            metrics::Registry* metrics = nullptr);
  ~ParallelPipeline();

  ParallelPipeline(const ParallelPipeline&) = delete;
  ParallelPipeline& operator=(const ParallelPipeline&) = delete;

  /// Wrap `target` in its lane(s) and register them with `attribution` in
  /// place of the target. Call once per consumer, before start().
  void attach(AnalysisConsumer& target, KernelAttribution& attribution);

  /// Launch the drain workers. Call after the last attach, before the run.
  void start();

  unsigned workers() const noexcept { return workers_; }
  unsigned access_shards() const noexcept { return access_shards_; }

  /// Valid once the run's input_finish returned (all rings drained).
  PipelineStats stats() const;

 private:
  PipelineOptions options_;
  metrics::Registry* metrics_ = nullptr;
  unsigned workers_ = 1;
  unsigned access_shards_ = 1;
  bool started_ = false;
  std::vector<std::unique_ptr<detail::LaneBase>> lanes_;
  std::vector<detail::Drainable*> drainables_;
  std::vector<std::unique_ptr<Doorbell>> bells_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace tq::session
