#include "session/event_source.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "trace/trace.hpp"
#include "trace/trace_v2.hpp"
#include "vm/stack_addr.hpp"

namespace tq::session {

// ---- LiveEngineSource -----------------------------------------------------------

namespace {

/// The compiled engine's event sink: forwards the batched stream straight
/// into the attribution service. Tick spans land on the attribution's
/// pending-run accumulator (input_batch_tick_span), so consumers see
/// TickRunEvents flushed at exactly the boundaries — routine entry, return,
/// end of input — where the interpreter-backed trampolines flush them.
class AttributionSink final : public vm::EventSink {
 public:
  explicit AttributionSink(KernelAttribution& attribution)
      : attribution_(attribution) {}

  void on_enter(std::uint32_t func, std::uint64_t retired) override {
    attribution_.input_enter(func, retired);
  }
  void on_tick_span(std::uint32_t func, std::uint64_t first_retired,
                    std::uint64_t count, std::uint64_t mem_count) override {
    attribution_.input_batch_tick_span(func, first_retired, count, mem_count);
  }
  void on_access(std::uint32_t func, std::uint32_t pc, std::uint64_t retired,
                 std::uint64_t ea, std::uint32_t size, bool is_read,
                 bool is_stack, bool is_prefetch) override {
    attribution_.input_access(func, pc, retired, ea, size, is_read, is_stack,
                              is_prefetch);
  }
  void on_ret(std::uint32_t func, std::uint32_t pc,
              std::uint64_t retired) override {
    attribution_.input_ret(func, pc, retired);
  }

 private:
  KernelAttribution& attribution_;
};

}  // namespace

LiveEngineSource::LiveEngineSource(const vm::Program& program, vm::HostEnv& host,
                                   std::uint64_t instruction_budget,
                                   vm::EngineKind engine)
    : program_(program) {
  if (engine == vm::EngineKind::kCompiled) {
    compiled_.emplace(program, host);
  } else {
    pin_.emplace(program, host);
  }
  guest().set_instruction_budget(instruction_budget);
}

void LiveEngineSource::input_read(KernelAttribution& sink, const pin::InsArgs& args) {
  sink.input_access(args.func, args.pc, args.retired, args.read_ea, args.read_size,
                    /*is_read=*/true, vm::is_stack_addr(args.read_ea, args.sp),
                    args.is_prefetch);
}

void LiveEngineSource::input_write(KernelAttribution& sink, const pin::InsArgs& args) {
  sink.input_access(args.func, args.pc, args.retired, args.write_ea,
                    args.write_size, /*is_read=*/false,
                    vm::is_stack_addr(args.write_ea, args.sp),
                    /*is_prefetch=*/false);
}

// Event order within one instruction matches the standalone tools'
// registration order: accesses read before write, then the return; the
// access/return parts are predicated (skipped when the instruction did not
// execute). Every tick — memory or not, executed or not — joins the
// attribution's batched run; only its memory-operand bit is recorded (from
// the architectural operand widths, so predicated-off instructions count,
// exactly as the standalone tools' unpredicated tick callbacks see them).

void LiveEngineSource::on_tick(void* attribution, const pin::InsArgs& args) {
  static_cast<KernelAttribution*>(attribution)
      ->input_batch_tick(args.func, args.retired, /*mem=*/false);
}

void LiveEngineSource::tick_read(void* attribution, const pin::InsArgs& args) {
  auto& sink = *static_cast<KernelAttribution*>(attribution);
  sink.input_batch_tick(args.func, args.retired,
                        (args.read_size | args.write_size) != 0);
  if (args.executed) input_read(sink, args);
}

void LiveEngineSource::tick_write(void* attribution, const pin::InsArgs& args) {
  auto& sink = *static_cast<KernelAttribution*>(attribution);
  sink.input_batch_tick(args.func, args.retired,
                        (args.read_size | args.write_size) != 0);
  if (args.executed) input_write(sink, args);
}

void LiveEngineSource::tick_read_write(void* attribution, const pin::InsArgs& args) {
  auto& sink = *static_cast<KernelAttribution*>(attribution);
  sink.input_batch_tick(args.func, args.retired,
                        (args.read_size | args.write_size) != 0);
  if (args.executed) {
    input_read(sink, args);
    input_write(sink, args);
  }
}

void LiveEngineSource::tick_ret(void* attribution, const pin::InsArgs& args) {
  auto& sink = *static_cast<KernelAttribution*>(attribution);
  sink.input_batch_tick(args.func, args.retired,
                        (args.read_size | args.write_size) != 0);
  if (args.executed) {
    input_read(sink, args);  // the implicit return-address pop
    sink.input_ret(args.func, args.pc, args.retired);
  }
}

void LiveEngineSource::enter_fc(void* attribution, const pin::RtnArgs& args) {
  static_cast<KernelAttribution*>(attribution)->input_enter(args.func, args.retired);
}

vm::RunOutcome LiveEngineSource::run(KernelAttribution& attribution) {
  TQUAD_CHECK(!ran_, "LiveEngineSource::run is single-shot; construct a fresh one");
  ran_ = true;
  if (compiled_) {
    // The fast path: the engine batches ticks into spans and emits
    // accesses/enters/returns directly — no per-instruction callbacks.
    AttributionSink sink(attribution);
    const vm::RunOutcome outcome = compiled_->run(sink);
    attribution.input_finish(outcome);
    return outcome;
  }
  KernelAttribution* sink = &attribution;
  pin_->add_rtn_instrument_function([sink](pin::Rtn& rtn) {
    rtn.insert_entry_call(&LiveEngineSource::enter_fc, sink);
  });
  pin_->add_ins_instrument_function([sink](pin::Ins& ins) {
    const bool reads = ins.is_memory_read() || ins.is_prefetch();
    const bool writes = ins.is_memory_write();
    if (ins.is_ret()) {
      ins.insert_call(&LiveEngineSource::tick_ret, sink);
    } else if (reads && writes) {
      ins.insert_call(&LiveEngineSource::tick_read_write, sink);
    } else if (reads) {
      ins.insert_call(&LiveEngineSource::tick_read, sink);
    } else if (writes) {
      ins.insert_call(&LiveEngineSource::tick_write, sink);
    } else {
      ins.insert_call(&LiveEngineSource::on_tick, sink);
    }
  });
  // input_finish runs after the engine returns (not as a fini callback) so
  // the structured outcome — including trap details — reaches every
  // consumer on the trap and truncation paths too.
  const vm::RunOutcome outcome = pin_->run();
  attribution.input_finish(outcome);
  return outcome;
}

// ---- TraceReplaySource ----------------------------------------------------------

namespace {

/// Rebuilds the live event stream from trace records.
///
/// A trace stores records only for event-producing instructions (entries,
/// accesses, returns); the per-instruction ticks in between are implicit in
/// the retired counters. The feeder buffers records sharing one retired
/// value (one instruction plus any routine entry it triggers — groups can
/// span v2 block boundaries), emits the missing "silent" ticks for the gaps
/// using a plain function stack maintained from enter/ret records, and
/// dispatches each group in live order: the instruction's tick before its
/// first record, accesses and returns in record order, entries where the
/// recorder placed them.
class ReplayFeeder {
 public:
  ReplayFeeder(KernelAttribution& attribution, std::uint32_t function_count)
      : attribution_(attribution), function_count_(function_count) {
    func_stack_.reserve(64);
  }

  void feed(std::span<const trace::Record> records) {
    for (const trace::Record& record : records) {
      if (!group_.empty() && record.retired != group_retired_) flush_group();
      if (group_.empty()) group_retired_ = record.retired;
      if (record.func >= function_count_ ||
          (record.kind == trace::EventKind::kEnter &&
           record.ea >= function_count_)) {
        TQUAD_THROW("TQTR record function id out of range for this image");
      }
      group_.push_back(record);
    }
  }

  void finish(const vm::RunOutcome& outcome) {
    flush_group();
    emit_silent_ticks_until(outcome.retired);
    attribution_.input_finish(outcome);
  }

 private:
  std::uint32_t current_func() const noexcept {
    return func_stack_.empty() ? 0 : func_stack_.back();
  }

  void emit_silent_ticks_until(std::uint64_t retired) {
    if (next_tick_ >= retired) return;
    attribution_.input_batch_ticks(current_func(), next_tick_,
                                   retired - next_tick_);
    next_tick_ = retired;
  }

  void flush_group() {
    if (group_.empty()) return;
    emit_silent_ticks_until(group_retired_);

    // The group's instruction (if any record belongs to one — a group can
    // also be a bare program-entry kEnter): its function and operand widths.
    std::uint32_t tick_func = 0;
    std::uint32_t read_size = 0;
    std::uint32_t write_size = 0;
    bool has_instr = false;
    for (const trace::Record& record : group_) {
      if (record.kind == trace::EventKind::kEnter) continue;
      if (!has_instr) {
        has_instr = true;
        tick_func = record.func;
      }
      if (record.kind == trace::EventKind::kRead) read_size = record.size;
      if (record.kind == trace::EventKind::kWrite) write_size = record.size;
    }

    bool tick_emitted = false;
    for (const trace::Record& record : group_) {
      if (record.kind == trace::EventKind::kEnter) {
        const auto func = static_cast<std::uint32_t>(record.ea);
        attribution_.input_enter(func, record.retired);
        func_stack_.push_back(func);
        continue;
      }
      if (!tick_emitted) {
        tick_emitted = true;
        attribution_.input_tick(tick_func, group_retired_, read_size, write_size);
        next_tick_ = group_retired_ + 1;
      }
      switch (record.kind) {
        case trace::EventKind::kRead:
        case trace::EventKind::kWrite:
          attribution_.input_access(record.func, record.pc, record.retired,
                                    record.ea, record.size,
                                    record.kind == trace::EventKind::kRead,
                                    (record.flags & trace::kFlagStackArea) != 0,
                                    (record.flags & trace::kFlagPrefetch) != 0);
          break;
        case trace::EventKind::kRet:
          attribution_.input_ret(record.func, record.pc, record.retired);
          if (!func_stack_.empty() && func_stack_.back() == record.func) {
            func_stack_.pop_back();
          }
          break;
        case trace::EventKind::kEnter:
          break;  // handled above
      }
    }
    group_.clear();
  }

  KernelAttribution& attribution_;
  std::uint32_t function_count_;
  std::vector<trace::Record> group_;
  std::uint64_t group_retired_ = 0;
  std::vector<std::uint32_t> func_stack_;
  std::uint64_t next_tick_ = 0;
};

}  // namespace

TraceReplaySource::TraceReplaySource(std::span<const std::uint8_t> bytes,
                                     const vm::Program& program, bool salvage)
    : bytes_(bytes), program_(program), salvage_(salvage) {}

vm::RunOutcome TraceReplaySource::run(KernelAttribution& attribution) {
  TQUAD_CHECK(!ran_, "TraceReplaySource::run is single-shot; construct a fresh one");
  ran_ = true;
  const auto function_count =
      static_cast<std::uint32_t>(program_.functions().size());
  ReplayFeeder feeder(attribution, function_count);
  vm::RunOutcome outcome;
  if (trace::is_v2_image(bytes_)) {
    const trace::TraceV2View view =
        salvage_ ? trace::TraceV2View::salvage(bytes_, &salvage_report_)
                 : trace::TraceV2View::open(bytes_);
    if (view.kernel_count() != function_count) {
      TQUAD_THROW("trace was recorded from a different image (kernel count mismatch)");
    }
    std::size_t fed = 0;
    for (std::size_t b = 0; b < view.block_count(); ++b) {
      if (interrupt_ != nullptr && *interrupt_ != 0) break;
      const std::vector<trace::Record> records = view.decode_block(b);
      feeder.feed(records);
      fed = b + 1;
    }
    if (fed < view.block_count()) {
      // Interrupted between blocks: the blocks fed so far are a valid
      // prefix; the last fed record's instruction counts as retired.
      outcome.status = vm::RunStatus::kInterrupted;
      outcome.retired = fed == 0 ? 0 : view.block(fed - 1).last_retired + 1;
    } else {
      outcome.retired = view.total_retired();
      // A salvaged stream with losses is an incomplete profile; say so.
      if (salvage_ && !salvage_report_.clean()) {
        outcome.status = vm::RunStatus::kTruncated;
      }
    }
  } else {
    if (salvage_) {
      TQUAD_THROW("salvage replay supports TQTR v2 traces only");
    }
    const trace::Trace trace = trace::Trace::deserialize(bytes_);
    if (trace.kernel_count != function_count) {
      TQUAD_THROW("trace was recorded from a different image (kernel count mismatch)");
    }
    const std::span<const trace::Record> records(trace.records);
    constexpr std::size_t kChunk = 65536;  // v1 interrupt granularity
    std::size_t fed = 0;
    while (fed < records.size()) {
      if (interrupt_ != nullptr && *interrupt_ != 0) break;
      const std::size_t n = std::min(kChunk, records.size() - fed);
      feeder.feed(records.subspan(fed, n));
      fed += n;
    }
    if (fed < records.size()) {
      outcome.status = vm::RunStatus::kInterrupted;
      outcome.retired = fed == 0 ? 0 : records[fed - 1].retired + 1;
    } else {
      outcome.retired = trace.total_retired;
    }
  }
  feeder.finish(outcome);
  return outcome;
}

}  // namespace tq::session
