// The shared kernel-attribution service.
//
// Exactly one CallStack per run, owned here, replacing the per-tool copies:
// event sources (the live minipin engine or a trace replay) push the raw
// enter/tick/access/ret stream through input_*(), KernelAttribution stamps
// each event with the current attribution state, and every registered
// AnalysisConsumer sees the same attributed stream. The input methods are
// inline — they sit on the per-instruction hot path.
#pragma once

#include <cstdint>
#include <vector>

#include "session/events.hpp"
#include "tquad/callstack.hpp"
#include "vm/program.hpp"

namespace tq::session {

/// Attributed-event tallies by kind, maintained by KernelAttribution for
/// every run. Ticks are counted at run-flush granularity (one add per run,
/// not per instruction), so the bookkeeping stays off the per-tick path.
struct EventCounts {
  std::uint64_t enters = 0;
  std::uint64_t ticks = 0;      ///< total instruction ticks (exact + batched)
  std::uint64_t tick_runs = 0;  ///< TickRunEvents delivered
  std::uint64_t accesses = 0;
  std::uint64_t rets = 0;
};

class KernelAttribution {
 public:
  KernelAttribution(const vm::Program& program, tquad::LibraryPolicy policy)
      : program_(program), policy_(policy), stack_(program, policy) {
    // Byte-per-function copy of the tracked table: the per-tick lookup is
    // hot, and vector<bool> bit extraction costs more than a byte load.
    tracked_.resize(program.functions().size());
    for (std::size_t f = 0; f < tracked_.size(); ++f) {
      tracked_[f] = stack_.tracked(static_cast<std::uint32_t>(f)) ? 1 : 0;
    }
  }

  KernelAttribution(const KernelAttribution&) = delete;
  KernelAttribution& operator=(const KernelAttribution&) = delete;

  /// Register a consumer (before the run). Dispatch follows add order
  /// within each event kind, filtered by the consumer's event_interests().
  void add_consumer(AnalysisConsumer& consumer) {
    consumers_.push_back(&consumer);
    const unsigned interests = consumer.event_interests();
    if (interests & AnalysisConsumer::kEnterInterest) {
      enter_consumers_.push_back(&consumer);
    }
    if (interests & AnalysisConsumer::kTickInterest) {
      tick_consumers_.push_back(&consumer);
    }
    if (interests & AnalysisConsumer::kAccessInterest) {
      access_consumers_.push_back(&consumer);
    }
    if (interests & AnalysisConsumer::kRetInterest) {
      ret_consumers_.push_back(&consumer);
    }
  }

  const vm::Program& program() const noexcept { return program_; }
  tquad::LibraryPolicy policy() const noexcept { return policy_; }
  const tquad::CallStack& callstack() const noexcept { return stack_; }
  std::size_t consumer_count() const noexcept { return consumers_.size(); }
  /// Valid once the run finished (pending tick runs flush at input_end).
  const EventCounts& event_counts() const noexcept { return counts_; }

  // ---- event input (called by EventSources) -------------------------------

  void input_enter(std::uint32_t func, std::uint64_t retired) {
    flush_run();
    EnterEvent event;
    event.func = func;
    event.caller = top_;
    event.retired = retired;
    event.tracked = tracked_[func] != 0;
    stack_.on_enter(func);
    top_ = stack_.top();
    event.kernel = top_;
    ++counts_.enters;
    for (AnalysisConsumer* consumer : enter_consumers_) {
      consumer->on_kernel_enter(event);
    }
  }

  /// The batched tick path: ticks never change attribution state, so they
  /// are accumulated into contiguous runs here and delivered through
  /// AnalysisConsumer::on_tick_run at the next attribution boundary. The
  /// run's kernel/tracked stamps stay valid for its whole span because
  /// routine entries and returns always flush first; `mem` marks a tick
  /// whose instruction carries a read or write operand (the accesses
  /// themselves still go through input_access exactly).
  void input_batch_tick(std::uint32_t func, std::uint64_t retired, bool mem) {
    if (run_count_ != 0 && func == run_func_) {
      ++run_count_;
      run_mem_ += mem ? 1 : 0;
      return;
    }
    flush_run();
    run_func_ = func;
    run_start_ = retired;
    run_count_ = 1;
    run_mem_ = mem ? 1 : 0;
  }

  /// A whole pre-batched span at once: `count` contiguous ticks in `func`
  /// starting at `first_retired`, `mem_count` of which carried a memory
  /// operand (the compiled engine's batched emission — it accumulates the
  /// ticks between two attribution boundaries itself, so the per-tick call
  /// disappears from the hot path entirely).
  void input_batch_tick_span(std::uint32_t func, std::uint64_t first_retired,
                             std::uint64_t count, std::uint64_t mem_count) {
    if (count == 0) return;
    if (run_count_ != 0 && func == run_func_) {
      run_count_ += count;
      run_mem_ += mem_count;
      return;
    }
    flush_run();
    run_func_ = func;
    run_start_ = first_retired;
    run_count_ = count;
    run_mem_ = mem_count;
  }

  /// `count` contiguous ticks with no memory operands at once (the replay
  /// source's silent gaps).
  void input_batch_ticks(std::uint32_t func, std::uint64_t retired,
                         std::uint64_t count) {
    if (count == 0) return;
    if (run_count_ != 0 && func == run_func_) {
      run_count_ += count;
      return;
    }
    flush_run();
    run_func_ = func;
    run_start_ = retired;
    run_count_ = count;
    run_mem_ = 0;
  }

  void input_tick(std::uint32_t func, std::uint64_t retired,
                  std::uint32_t read_size, std::uint32_t write_size) {
    flush_run();
    TickEvent event;
    event.func = func;
    event.kernel = top_;
    event.retired = retired;
    event.read_size = read_size;
    event.write_size = write_size;
    event.tracked = tracked_[func] != 0;
    ++counts_.ticks;
    for (AnalysisConsumer* consumer : tick_consumers_) consumer->on_tick(event);
  }

  void input_access(std::uint32_t func, std::uint32_t pc, std::uint64_t retired,
                    std::uint64_t ea, std::uint32_t size, bool is_read,
                    bool is_stack, bool is_prefetch) {
    AccessEvent event;
    event.func = func;
    event.pc = pc;
    event.kernel = top_;
    event.retired = retired;
    event.ea = ea;
    event.size = size;
    event.is_read = is_read;
    event.is_stack = is_stack;
    event.is_prefetch = is_prefetch;
    ++counts_.accesses;
    for (AnalysisConsumer* consumer : access_consumers_) {
      consumer->on_access(event);
    }
  }

  void input_ret(std::uint32_t func, std::uint32_t pc, std::uint64_t retired) {
    flush_run();
    RetEvent event;
    event.func = func;
    event.pc = pc;
    event.kernel = top_;
    event.retired = retired;
    event.tracked = tracked_[func] != 0;
    ++counts_.rets;
    for (AnalysisConsumer* consumer : ret_consumers_) {
      consumer->on_kernel_ret(event);
    }
    stack_.on_ret(func);
    top_ = stack_.top();
  }

  void input_end(std::uint64_t total_retired) {
    flush_run();
    for (AnalysisConsumer* consumer : consumers_) {
      consumer->on_session_end(total_retired);
    }
  }

  /// End of input with the structured outcome: flush, deliver
  /// on_session_end(outcome.retired), then on_finish(outcome) to every
  /// consumer. Event sources call this on every path (halt/trap/truncation)
  /// so partial profiles are flushed and stamped, never discarded.
  void input_finish(const vm::RunOutcome& outcome) {
    input_end(outcome.retired);
    for (AnalysisConsumer* consumer : consumers_) {
      consumer->on_finish(outcome);
    }
  }

 private:
  void flush_run() {
    if (run_count_ == 0) return;
    TickRunEvent run;
    run.func = run_func_;
    run.kernel = top_;
    run.first_retired = run_start_;
    run.count = run_count_;
    run.mem_count = run_mem_;
    run.tracked = tracked_[run_func_] != 0;
    counts_.ticks += run_count_;
    ++counts_.tick_runs;
    run_count_ = 0;
    for (AnalysisConsumer* consumer : tick_consumers_) {
      consumer->on_tick_run(run);
    }
  }

  const vm::Program& program_;
  tquad::LibraryPolicy policy_;
  tquad::CallStack stack_;
  std::vector<std::uint8_t> tracked_;     ///< byte-wide copy of the tracked table
  std::uint32_t top_ = tquad::kNoKernel;  ///< cached stack_.top()
  std::vector<AnalysisConsumer*> consumers_;  ///< all, in add order (end events)
  std::vector<AnalysisConsumer*> enter_consumers_;
  std::vector<AnalysisConsumer*> tick_consumers_;
  std::vector<AnalysisConsumer*> access_consumers_;
  std::vector<AnalysisConsumer*> ret_consumers_;
  EventCounts counts_;

  // Pending tick run (see input_batch_tick).
  std::uint32_t run_func_ = 0;
  std::uint64_t run_start_ = 0;
  std::uint64_t run_count_ = 0;
  std::uint64_t run_mem_ = 0;
};

}  // namespace tq::session
