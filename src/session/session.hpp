// ProfileSession: one execution, one attribution pass, N tools.
//
// The paper assembled its tables from four separate executions of the same
// application (gprof, QUAD, gprof-of-QUAD, tQUAD). A ProfileSession runs the
// guest once — or replays a recorded trace — and feeds any subset of the
// tools simultaneously through the shared KernelAttribution service:
//
//   EventSource (live Engine | TQTR replay)
//        └─> KernelAttribution (one CallStack, one policy, one classifier)
//              ├─> tquad::TQuadTool
//              ├─> quad::QuadTool
//              ├─> gprof::GprofTool
//              └─> trace::TraceRecorder
//
// Consumers constructed in session mode must use the same library policy as
// the session: the shared stack is the single source of attribution truth,
// and a tool's own policy only feeds its static reported()/tracked() tables.
#pragma once

#include <chrono>
#include <csignal>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "session/attribution.hpp"
#include "session/event_source.hpp"
#include "session/pipeline.hpp"
#include "vm/host_env.hpp"
#include "vm/program.hpp"

namespace tq::session {

struct SessionConfig {
  tquad::LibraryPolicy library_policy = tquad::LibraryPolicy::kExclude;
  std::uint64_t instruction_budget = 0;  ///< live runs only; 0 = unlimited
  vm::FaultPlan fault_plan;              ///< live runs only; default disarmed
  /// Which execution engine runs live guests. The compiled fused-op engine
  /// is the default; the interpreter remains as the reference
  /// (`-engine interp`). Reports are byte-identical either way.
  vm::EngineKind engine = vm::EngineKind::kCompiled;
  PipelineOptions pipeline;              ///< serial (inline consumers) by default
  /// Optional self-observability: when set, the session publishes its event
  /// counts (and, for parallel runs, the pipeline's ring/worker/shard
  /// telemetry) into the registry after the drain barrier. Never touches
  /// report output.
  metrics::Registry* metrics = nullptr;
  /// Print a one-line progress pulse to stderr every this many retired
  /// instructions (0 = off). The final pulse carries the run status, so
  /// PARTIAL/trap exits are visible too.
  std::uint64_t heartbeat_interval = 0;
  /// Cooperative interruption: when non-null and `*interrupt` becomes
  /// nonzero (typically from a SIGINT/SIGTERM handler), the run stops at the
  /// next retirement boundary (live) or block boundary (replay) with
  /// RunStatus::kInterrupted. Every consumer still sees on_finish, so
  /// recorders finalize and reports can stamp INTERRUPTED. The flag must
  /// outlive the run.
  const volatile std::sig_atomic_t* interrupt = nullptr;
};

/// The heartbeat consumer. Registered directly with the KernelAttribution —
/// never behind a pipeline lane — so it observes the stream inline on the
/// VM thread in both serial and parallel modes; its O(1) on_tick_run keeps
/// it off the report path entirely (stderr only).
class HeartbeatPrinter final : public AnalysisConsumer {
 public:
  /// Start pulsing every `every` retired instructions from now.
  void arm(std::uint64_t every);

  unsigned event_interests() const override { return kTickInterest; }
  void on_tick(const TickEvent& event) override {
    pulse_to(event.retired + 1);
  }
  void on_tick_run(const TickRunEvent& run) override {
    pulse_to(run.first_retired + run.count);
  }
  void on_finish(const vm::RunOutcome& outcome) override;

 private:
  void pulse_to(std::uint64_t retired);
  double elapsed_seconds() const;

  std::uint64_t every_ = 0;
  std::uint64_t next_ = 0;
  std::chrono::steady_clock::time_point start_{};
  // Throughput since the previous pulse (Minstr/s in the pulse line).
  std::uint64_t last_retired_ = 0;
  std::chrono::steady_clock::time_point last_pulse_{};
};

class ProfileSession {
 public:
  explicit ProfileSession(const vm::Program& program, SessionConfig config = {});

  ProfileSession(const ProfileSession&) = delete;
  ProfileSession& operator=(const ProfileSession&) = delete;

  /// Register a tool (before run). Dispatch follows add order.
  void add_consumer(AnalysisConsumer& consumer);

  /// Drive `source` through the attribution pass. Single-shot. Returns the
  /// structured outcome: guest traps and budget truncation come back as
  /// statuses — every consumer has already been flushed and notified via
  /// on_finish() — while host/tool errors throw.
  vm::RunOutcome run(EventSource& source);

  /// Execute the guest once under live instrumentation.
  vm::RunOutcome run_live(vm::HostEnv& host);

  /// Replay a recorded TQTR byte image (v1 or v2, auto-detected). With
  /// `salvage`, corrupt or truncated v2 blocks are skipped instead of
  /// failing the replay (see TraceV2View::salvage); the recovery details
  /// are in salvage_report() afterwards.
  vm::RunOutcome replay(std::span<const std::uint8_t> trace_bytes,
                        bool salvage = false);

  const vm::Program& program() const noexcept { return attribution_.program(); }
  const SessionConfig& config() const noexcept { return config_; }
  const KernelAttribution& attribution() const noexcept { return attribution_; }
  std::uint64_t total_retired() const noexcept { return outcome_.retired; }
  /// The outcome of the completed run (valid after run/run_live/replay).
  const vm::RunOutcome& outcome() const noexcept { return outcome_; }
  /// What a salvage replay recovered (zero-valued otherwise).
  const trace::SalvageReport& salvage_report() const noexcept {
    return salvage_report_;
  }

  /// Ring traffic of a completed parallel run (zero-valued for serial runs).
  const PipelineStats& pipeline_stats() const noexcept { return pipeline_stats_; }

 private:
  void publish_metrics();

  SessionConfig config_;
  KernelAttribution attribution_;
  std::vector<AnalysisConsumer*> consumers_;  ///< registered at run()
  vm::RunOutcome outcome_;
  trace::SalvageReport salvage_report_;
  PipelineStats pipeline_stats_;
  HeartbeatPrinter heartbeat_;
  bool ran_ = false;
};

}  // namespace tq::session
