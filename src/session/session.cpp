#include "session/session.hpp"

#include "support/check.hpp"

namespace tq::session {

ProfileSession::ProfileSession(const vm::Program& program, SessionConfig config)
    : config_(config), attribution_(program, config.library_policy) {}

void ProfileSession::add_consumer(AnalysisConsumer& consumer) {
  TQUAD_CHECK(!ran_, "add_consumer must precede ProfileSession::run");
  attribution_.add_consumer(consumer);
}

vm::RunOutcome ProfileSession::run(EventSource& source) {
  TQUAD_CHECK(!ran_, "ProfileSession::run is single-shot; construct a fresh one");
  TQUAD_CHECK(&source.program() == &attribution_.program(),
              "event source built from a different program");
  ran_ = true;
  outcome_ = source.run(attribution_);
  return outcome_;
}

vm::RunOutcome ProfileSession::run_live(vm::HostEnv& host) {
  LiveEngineSource source(attribution_.program(), host,
                          config_.instruction_budget);
  source.set_fault_plan(config_.fault_plan);
  return run(source);
}

vm::RunOutcome ProfileSession::replay(std::span<const std::uint8_t> trace_bytes,
                                      bool salvage) {
  TraceReplaySource source(trace_bytes, attribution_.program(), salvage);
  const vm::RunOutcome outcome = run(source);
  salvage_report_ = source.salvage_report();
  return outcome;
}

}  // namespace tq::session
