#include "session/session.hpp"

#include "support/check.hpp"

namespace tq::session {

ProfileSession::ProfileSession(const vm::Program& program, SessionConfig config)
    : config_(config), attribution_(program, config.library_policy) {}

void ProfileSession::add_consumer(AnalysisConsumer& consumer) {
  TQUAD_CHECK(!ran_, "add_consumer must precede ProfileSession::run");
  // Registration with the attribution is deferred to run(): in parallel
  // mode the pipeline registers a lane wrapper in the consumer's place.
  consumers_.push_back(&consumer);
}

vm::RunOutcome ProfileSession::run(EventSource& source) {
  TQUAD_CHECK(!ran_, "ProfileSession::run is single-shot; construct a fresh one");
  TQUAD_CHECK(&source.program() == &attribution_.program(),
              "event source built from a different program");
  ran_ = true;
  if (config_.pipeline.mode == PipelineMode::kParallel && !consumers_.empty()) {
    ParallelPipeline pipeline(config_.pipeline);
    for (AnalysisConsumer* consumer : consumers_) {
      pipeline.attach(*consumer, attribution_);
    }
    pipeline.start();
    // input_finish (invoked by the source on every path, including traps)
    // runs each lane's drain barrier, so by the time run() returns every
    // tool holds its complete, serially-ordered accounting.
    outcome_ = source.run(attribution_);
    pipeline_stats_ = pipeline.stats();
  } else {
    for (AnalysisConsumer* consumer : consumers_) {
      attribution_.add_consumer(*consumer);
    }
    outcome_ = source.run(attribution_);
  }
  return outcome_;
}

vm::RunOutcome ProfileSession::run_live(vm::HostEnv& host) {
  LiveEngineSource source(attribution_.program(), host,
                          config_.instruction_budget);
  source.set_fault_plan(config_.fault_plan);
  return run(source);
}

vm::RunOutcome ProfileSession::replay(std::span<const std::uint8_t> trace_bytes,
                                      bool salvage) {
  TraceReplaySource source(trace_bytes, attribution_.program(), salvage);
  const vm::RunOutcome outcome = run(source);
  salvage_report_ = source.salvage_report();
  return outcome;
}

}  // namespace tq::session
