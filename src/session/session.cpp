#include "session/session.hpp"

#include <cinttypes>
#include <cstdio>

#include "support/check.hpp"
#include "support/metrics.hpp"

namespace tq::session {

// ---------------------------------------------------------------------------
// HeartbeatPrinter

void HeartbeatPrinter::arm(std::uint64_t every) {
  every_ = every;
  next_ = every;
  start_ = std::chrono::steady_clock::now();
  last_retired_ = 0;
  last_pulse_ = start_;
}

double HeartbeatPrinter::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

void HeartbeatPrinter::pulse_to(std::uint64_t retired) {
  while (every_ != 0 && retired >= next_) {
    const auto now = std::chrono::steady_clock::now();
    const double since_last =
        std::chrono::duration<double>(now - last_pulse_).count();
    // Throughput over the window since the previous pulse (whole-run average
    // when this is the first). Guard the division: two pulses can land in
    // the same clock tick on a fast run.
    const double rate =
        since_last > 0.0
            ? static_cast<double>(next_ - last_retired_) / 1e6 / since_last
            : 0.0;
    std::fprintf(stderr,
                 "heartbeat: retired=%.1fM elapsed=%.2fs rate=%.1fMinstr/s\n",
                 static_cast<double>(next_) / 1e6,
                 std::chrono::duration<double>(now - start_).count(), rate);
    last_retired_ = next_;
    last_pulse_ = now;
    next_ += every_;
  }
}

void HeartbeatPrinter::on_finish(const vm::RunOutcome& outcome) {
  if (every_ == 0) return;
  const char* status = "ok";
  switch (outcome.status) {
    case vm::RunStatus::kHalted:
      break;
    case vm::RunStatus::kTrapped:
      status = "PARTIAL";
      break;
    case vm::RunStatus::kTruncated:
      status = "TRUNCATED";
      break;
    case vm::RunStatus::kInterrupted:
      status = "INTERRUPTED";
      break;
  }
  std::fprintf(stderr, "heartbeat: done retired=%.1fM elapsed=%.2fs status=%s",
               static_cast<double>(outcome.retired) / 1e6, elapsed_seconds(),
               status);
  if (outcome.status == vm::RunStatus::kTrapped) {
    std::fprintf(stderr, " (%s)", outcome.trap_kind.c_str());
  }
  std::fputc('\n', stderr);
}

// ---------------------------------------------------------------------------
// ProfileSession

ProfileSession::ProfileSession(const vm::Program& program, SessionConfig config)
    : config_(config), attribution_(program, config.library_policy) {}

void ProfileSession::add_consumer(AnalysisConsumer& consumer) {
  TQUAD_CHECK(!ran_, "add_consumer must precede ProfileSession::run");
  // Registration with the attribution is deferred to run(): in parallel
  // mode the pipeline registers a lane wrapper in the consumer's place.
  consumers_.push_back(&consumer);
}

vm::RunOutcome ProfileSession::run(EventSource& source) {
  TQUAD_CHECK(!ran_, "ProfileSession::run is single-shot; construct a fresh one");
  TQUAD_CHECK(&source.program() == &attribution_.program(),
              "event source built from a different program");
  ran_ = true;
  if (config_.heartbeat_interval > 0) {
    // Inline on the VM thread in both modes: the pulse must reflect live
    // progress, not a lane's drain position.
    heartbeat_.arm(config_.heartbeat_interval);
    attribution_.add_consumer(heartbeat_);
  }
  if (config_.pipeline.mode == PipelineMode::kParallel && !consumers_.empty()) {
    ParallelPipeline pipeline(config_.pipeline, config_.metrics);
    for (AnalysisConsumer* consumer : consumers_) {
      pipeline.attach(*consumer, attribution_);
    }
    pipeline.start();
    // input_finish (invoked by the source on every path, including traps)
    // runs each lane's drain barrier, so by the time run() returns every
    // tool holds its complete, serially-ordered accounting.
    outcome_ = source.run(attribution_);
    pipeline_stats_ = pipeline.stats();
    // The pipeline (and with it the worker thread pool) is destroyed here,
    // which joins the workers and folds their per-thread metric sinks.
  } else {
    for (AnalysisConsumer* consumer : consumers_) {
      attribution_.add_consumer(*consumer);
    }
    outcome_ = source.run(attribution_);
  }
  if (config_.metrics != nullptr) publish_metrics();
  return outcome_;
}

void ProfileSession::publish_metrics() {
  metrics::Registry& registry = *config_.metrics;
  const EventCounts& counts = attribution_.event_counts();
  registry.add("session.events.enter", counts.enters);
  registry.add("session.events.tick", counts.ticks);
  registry.add("session.events.tick_run", counts.tick_runs);
  registry.add("session.events.access", counts.accesses);
  registry.add("session.events.ret", counts.rets);
  registry.set_gauge("session.retired", outcome_.retired);
  registry.set_gauge("session.consumers",
                     static_cast<std::uint64_t>(consumers_.size()));
  if (config_.pipeline.mode != PipelineMode::kParallel || consumers_.empty()) {
    return;
  }
  const PipelineStats& stats = pipeline_stats_;
  registry.add("pipeline.batches_published", stats.batches_published);
  registry.add("pipeline.backpressure_waits", stats.backpressure_waits);
  registry.add("pipeline.producer_stall_ns", stats.producer_stall_ns);
  registry.add("pipeline.dropped_after_close", stats.dropped_after_close);
  registry.add("pipeline.shard_fold_ns", stats.shard_fold_ns);
  registry.add("pipeline.batch.grows", stats.batch_grows);
  registry.add("pipeline.batch.shrinks", stats.batch_shrinks);
  registry.add("pipeline.freelist.hits", stats.freelist_hits);
  registry.add("pipeline.freelist.misses", stats.freelist_misses);
  registry.add("pipeline.ring.capacity_grows", stats.ring_capacity_grows);
  registry.max_gauge("pipeline.ring.occupancy_high_water",
                     stats.ring_occupancy_high_water);
  registry.set_gauge("pipeline.rings", stats.rings);
  registry.set_gauge("pipeline.workers", stats.workers);
  registry.set_gauge("pipeline.access_shards", stats.access_shards);
}

vm::RunOutcome ProfileSession::run_live(vm::HostEnv& host) {
  LiveEngineSource source(attribution_.program(), host,
                          config_.instruction_budget, config_.engine);
  source.set_fault_plan(config_.fault_plan);
  source.set_interrupt_flag(config_.interrupt);
  return run(source);
}

vm::RunOutcome ProfileSession::replay(std::span<const std::uint8_t> trace_bytes,
                                      bool salvage) {
  TraceReplaySource source(trace_bytes, attribution_.program(), salvage);
  source.set_interrupt_flag(config_.interrupt);
  const vm::RunOutcome outcome = run(source);
  salvage_report_ = source.salvage_report();
  return outcome;
}

}  // namespace tq::session
