#include "session/session.hpp"

#include "support/check.hpp"

namespace tq::session {

ProfileSession::ProfileSession(const vm::Program& program, SessionConfig config)
    : config_(config), attribution_(program, config.library_policy) {}

void ProfileSession::add_consumer(AnalysisConsumer& consumer) {
  TQUAD_CHECK(!ran_, "add_consumer must precede ProfileSession::run");
  attribution_.add_consumer(consumer);
}

std::uint64_t ProfileSession::run(EventSource& source) {
  TQUAD_CHECK(!ran_, "ProfileSession::run is single-shot; construct a fresh one");
  TQUAD_CHECK(&source.program() == &attribution_.program(),
              "event source built from a different program");
  ran_ = true;
  total_retired_ = source.run(attribution_);
  return total_retired_;
}

std::uint64_t ProfileSession::run_live(vm::HostEnv& host) {
  LiveEngineSource source(attribution_.program(), host,
                          config_.instruction_budget);
  return run(source);
}

std::uint64_t ProfileSession::replay(std::span<const std::uint8_t> trace_bytes) {
  TraceReplaySource source(trace_bytes, attribution_.program());
  return run(source);
}

}  // namespace tq::session
