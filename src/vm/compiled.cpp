// The threaded-dispatch executor. One templated loop, three modes:
//   kNative — no instrumentation (the paper's "native execution" baseline);
//   kProbed — pre-resolved minipin analysis probes, dispatched per op;
//   kSinked — batched profiling events for the session fast path.
//
// Exactness is the whole game: each handler replicates the interpreter's
// per-instruction sequence — stop checks (budget / trap_at) first, then the
// predicate, then event/probe delivery computed from *pre-execution*
// register state, then the retire, then execution (whose traps count the
// faulting instruction as retired) — so the two engines are byte-identical
// to every observer. See machine.cpp run_loop for the reference ordering.
#include "vm/compiled.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <span>

#include "support/check.hpp"
#include "vm/lower.hpp"
#include "vm/stack_addr.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define TQ_CGOTO 1
#else
#define TQ_CGOTO 0
#endif

namespace tq::vm {

using isa::Op;

const char* engine_kind_name(EngineKind kind) noexcept {
  return kind == EngineKind::kCompiled ? "compiled" : "interp";
}

CompiledMachine::CompiledMachine(const Program& program, HostEnv& host)
    : program_(program), host_(host) {
  program_.validate();
  routines_.resize(program_.functions().size());
}

void CompiledMachine::trap(const std::string& why) const {
  const std::string where = cpu_.func < program_.functions().size()
                                ? program_.functions()[cpu_.func].name
                                : "<bad function>";
  throw TrapError("guest trap: " + why + " (in '" + where + "' at pc " +
                      std::to_string(cpu_.pc) + ", retired " +
                      std::to_string(retired_) + ")",
                  why, cpu_.func, cpu_.pc);
}

void CompiledMachine::check_entry_fault() {
  if (fault_.fail_func == FaultPlan::kNoFunc || cpu_.func != fault_.fail_func)
    return;
  if (++fault_entries_seen_ >= fault_.fail_func_entries) {
    trap("fault injection: function entered " +
         std::to_string(fault_entries_seen_) + " time(s)");
  }
}

void CompiledMachine::do_sys(std::int64_t imm) {
  auto& r = cpu_.regs;
  ++syscalls_seen_;
  if (fault_.fail_syscall != 0 && syscalls_seen_ == fault_.fail_syscall)
      [[unlikely]] {
    trap("fault injection: syscall " + std::to_string(syscalls_seen_) +
         " failed");
  }
  try {
    switch (static_cast<isa::Sys>(imm)) {
      case isa::Sys::kAlloc: {
        const std::uint64_t size = r[1];
        heap_ptr_ = (heap_ptr_ + 15) & ~15ull;
        const std::uint64_t addr = heap_ptr_;
        heap_ptr_ += size;
        if (heap_ptr_ >= kStackLimit) trap("guest heap exhausted");
        r[1] = addr;
        break;
      }
      case isa::Sys::kRead: {
        const int fd = static_cast<int>(r[1]);
        const std::uint64_t buf = r[2];
        const std::uint64_t len = r[3];
        std::vector<std::uint8_t> tmp(static_cast<std::size_t>(len));
        const std::size_t n = host_.read(fd, tmp);
        memory_.write(buf, std::span<const std::uint8_t>(tmp.data(), n));
        r[1] = n;
        break;
      }
      case isa::Sys::kWrite: {
        const int fd = static_cast<int>(r[1]);
        const std::uint64_t buf = r[2];
        const std::uint64_t len = r[3];
        std::vector<std::uint8_t> tmp(static_cast<std::size_t>(len));
        memory_.read(buf, tmp);
        host_.write(fd, tmp);
        r[1] = len;
        break;
      }
      case isa::Sys::kSeek:
        host_.seek(static_cast<int>(r[1]), r[2]);
        break;
      case isa::Sys::kFileSize:
        r[1] = host_.file_size(static_cast<int>(r[1]));
        break;
      case isa::Sys::kPrintI64:
        host_.append_log(std::to_string(static_cast<std::int64_t>(r[1])));
        break;
      case isa::Sys::kPrintF64:
        host_.append_log(std::to_string(cpu_.fregs[1]));
        break;
      default:
        trap("unknown syscall " + std::to_string(imm));
    }
  } catch (const TrapError&) {
    throw;
  } catch (const Error& err) {
    trap(err.what());
  }
}

const CompiledRoutine& CompiledMachine::routine_for_entry(
    std::uint32_t func, ProbeProvider* probes) {
  CompiledRoutine& rtn = routines_[func];
  if (!rtn.lowered) [[unlikely]] {
    ProbeProvider::RoutineProbes tables;
    if (probes != nullptr) tables = probes->instrument(func);
    rtn = lower_routine(program_, func, tables.per_ins);
    rtn.entry_probes = tables.entry_probes;
    ++lowered_count_;
    fused_pairs_ += rtn.fused;
  }
  return rtn;
}

void CompiledMachine::dispatch_probes(const COp& op, std::uint32_t func,
                                      std::uint64_t read_ea,
                                      std::uint32_t read_size,
                                      std::uint64_t write_ea,
                                      std::uint32_t write_size,
                                      bool is_prefetch, bool executed,
                                      std::uint64_t retired) const {
  ProbeArgs args;
  args.ip = (static_cast<std::uint64_t>(func) << 32) | op.pc;
  args.func = func;
  args.pc = op.pc;
  args.read_ea = read_ea;
  args.read_size = read_size;
  args.write_ea = write_ea;
  args.write_size = write_size;
  args.is_prefetch = is_prefetch;
  args.executed = executed;
  args.sp = cpu_.sp_value();
  args.retired = retired;
  for (std::uint16_t k = 0; k < op.probe_count; ++k) {
    const InsProbe& call = op.probes[k];
    if (call.predicated_only && !executed) continue;
    call.fn(call.tool, args);
  }
}

void CompiledMachine::dispatch_entry_probes(const CompiledRoutine& rtn,
                                            std::uint32_t func,
                                            std::uint64_t retired) const {
  if (rtn.entry_probes == nullptr || rtn.entry_probes->empty()) return;
  EntryArgs args;
  args.func = func;
  args.name = &program_.functions()[func].name;
  args.image = program_.functions()[func].image;
  args.retired = retired;
  for (const EntryProbe& call : *rtn.entry_probes) {
    call.fn(call.tool, args);
  }
}

RunOutcome CompiledMachine::run() { return start(nullptr, nullptr); }
RunOutcome CompiledMachine::run(ProbeProvider& probes) {
  return start(&probes, nullptr);
}
RunOutcome CompiledMachine::run(EventSink& sink) { return start(nullptr, &sink); }

RunOutcome CompiledMachine::start(ProbeProvider* probes, EventSink* sink) {
  TQUAD_CHECK(!ran_,
              "CompiledMachine::run is single-shot; construct a fresh "
              "CompiledMachine");
  ran_ = true;
  for (const DataInit& init : program_.data()) {
    memory_.write(init.addr, init.bytes);
  }
  if (sink != nullptr) return exec<Mode::kSinked>(nullptr, sink);
  if (probes != nullptr) return exec<Mode::kProbed>(probes, nullptr);
  return exec<Mode::kNative>(nullptr, nullptr);
}

// ---------------------------------------------------------------------------
// The dispatch loop.

// Sync architectural state and raise a guest trap at the current op.
#define TQ_TRAP(why)      \
  do {                    \
    cpu_.func = cur_func; \
    cpu_.pc = op->pc;     \
    retired_ = retired;   \
    trap(why);            \
  } while (0)

// Stop check (budget / trap_at folded into one compare, plus the cooperative
// interrupt flag when armed — `irq` is null for uninterruptible runs, so the
// extra test stays branch-predicted free) and tick accounting for the
// (first) instruction of an op. `membit` is the static has-memory-operand
// flag the batched tick records — predicated-off instructions count, exactly
// as the interpreter-side trampolines see them.
#define TQ_HEAD(membit)                                                \
  if (retired >= stop_at || (irq != nullptr && *irq != 0)) [[unlikely]] { \
    cpu_.pc = op->pc;                                                  \
    goto handle_stop;                                                  \
  }                                                                    \
  if constexpr (M == Mode::kSinked) {                                  \
    ++span_count;                                                      \
    span_mem += (membit) ? 1 : 0;                                      \
  }

// Stop check + tick for the second instruction of a fused pair.
#define TQ_MID()                                                       \
  if (retired >= stop_at || (irq != nullptr && *irq != 0)) [[unlikely]] { \
    cpu_.pc = op->pc + 1;                                              \
    goto handle_stop;                                                  \
  }                                                                    \
  if constexpr (M == Mode::kSinked) {                                  \
    ++span_count;                                                      \
  }

// Predicate evaluation, probe dispatch (with pre-execution operand state),
// retire, and the predicated-off skip to the fall-through op.
#define TQ_PRE(rea, rsz, wea, wsz, pf)                                 \
  bool executed = true;                                                \
  if (op->flags != 0) [[unlikely]] executed = r[op->pr] != 0;          \
  if constexpr (M == Mode::kProbed) {                                  \
    if (op->probes != nullptr) [[unlikely]] {                          \
      dispatch_probes(*op, cur_func, (rea), (rsz), (wea), (wsz), (pf), \
                      executed, retired);                              \
    }                                                                  \
  }                                                                    \
  ++retired;                                                           \
  if (!executed) [[unlikely]] {                                        \
    ++i;                                                               \
    TQ_NEXT();                                                         \
  }

// Flush the pending tick span (kSinked) at an attribution boundary. Spans
// only ever break here, so the next span's first-retired stamp is assigned
// once per flush instead of branching on span_count every tick: every flush
// site sits after the current op retired (call/ret) or is terminal
// (halt/stop/trap), so `retired` IS the next tick's retire index.
#define TQ_FLUSH_SPAN()                                               \
  if constexpr (M == Mode::kSinked) {                                 \
    if (span_count != 0) {                                            \
      sink->on_tick_span(cur_func, span_start, span_count, span_mem); \
      span_count = 0;                                                 \
      span_mem = 0;                                                   \
    }                                                                 \
    span_start = retired;                                             \
  }

// Switch the current routine (lowering it on first entry).
#define TQ_SET_ROUTINE(func_id)                         \
  do {                                                  \
    rtn = &routine_for_entry((func_id), probes);        \
    ops = rtn->ops.data();                              \
    pc2op = rtn->pc_to_op.data();                       \
  } while (0)

#define TQ_ALU(name, stmt) \
  TQ_CASE(name) {          \
    TQ_HEAD(false)         \
    TQ_PRE(0, 0, 0, 0, false) \
    stmt;                  \
    ++i;                   \
    TQ_NEXT();             \
  }

template <CompiledMachine::Mode M>
RunOutcome CompiledMachine::exec(ProbeProvider* probes, EventSink* sink) {
  cpu_.func = program_.entry();
  cpu_.pc = 0;
  cpu_.sp() = kStackBase;

  auto& r = cpu_.regs;
  auto& f = cpu_.fregs;

  std::uint64_t stop_at = ~0ull;
  if (budget_ != 0) stop_at = budget_;
  if (fault_.trap_at_retired != 0 && fault_.trap_at_retired < stop_at) {
    stop_at = fault_.trap_at_retired;
  }
  // Cached locally so the dispatch loop's stop check needs no member load;
  // the pointed-to flag itself stays volatile (set from a signal handler).
  const volatile std::sig_atomic_t* const irq = interrupt_;

  std::uint64_t retired = 0;
  std::uint32_t cur_func = cpu_.func;
  std::uint64_t span_start = 0;
  std::uint64_t span_count = 0;
  std::uint64_t span_mem = 0;
  const CompiledRoutine* rtn = nullptr;
  const COp* ops = nullptr;
  const std::uint32_t* pc2op = nullptr;
  std::size_t i = 0;
  const COp* op = nullptr;
  (void)sink;
  (void)pc2op;

  try {
    TQ_SET_ROUTINE(cur_func);
    if constexpr (M == Mode::kSinked) sink->on_enter(cur_func, 0);
    if constexpr (M == Mode::kProbed) {
      dispatch_entry_probes(*rtn, cur_func, 0);
    }
    check_entry_fault();

#if TQ_CGOTO
    static const void* const kLabels[] = {
#define TQ_COP_LABEL(name) &&L_##name,
        TQ_COP_LIST(TQ_COP_LABEL)
#undef TQ_COP_LABEL
    };
#define TQ_CASE(name) L_##name:
#define TQ_NEXT()                                        \
  do {                                                   \
    op = &ops[i];                                        \
    goto* kLabels[static_cast<std::size_t>(op->id)];     \
  } while (0)
    TQ_NEXT();
#else
    for (;;) {
      op = &ops[i];
      switch (op->id) {
#define TQ_CASE(name) case COpId::name:
#define TQ_NEXT() continue
#endif

    TQ_CASE(kNop) {
      TQ_HEAD(false)
      TQ_PRE(0, 0, 0, 0, false)
      ++i;
      TQ_NEXT();
    }

    TQ_CASE(kHalt) {
      TQ_HEAD(false)
      TQ_PRE(0, 0, 0, 0, false)
      cpu_.func = cur_func;
      cpu_.pc = op->pc;
      retired_ = retired;
      TQ_FLUSH_SPAN()
      if constexpr (M == Mode::kProbed) probes->on_end(retired);
      {
        RunOutcome out;
        out.retired = retired;
        return out;
      }
    }

    TQ_ALU(kAdd, r[op->rd] = r[op->ra] + r[op->rb])
    TQ_ALU(kSub, r[op->rd] = r[op->ra] - r[op->rb])
    TQ_ALU(kMul, r[op->rd] = r[op->ra] * r[op->rb])

    TQ_CASE(kDivS) {
      TQ_HEAD(false)
      TQ_PRE(0, 0, 0, 0, false)
      const auto num = static_cast<std::int64_t>(r[op->ra]);
      const auto den = static_cast<std::int64_t>(r[op->rb]);
      if (den == 0) [[unlikely]] TQ_TRAP("integer division by zero");
      r[op->rd] = static_cast<std::uint64_t>(num / den);
      ++i;
      TQ_NEXT();
    }
    TQ_CASE(kRemS) {
      TQ_HEAD(false)
      TQ_PRE(0, 0, 0, 0, false)
      const auto num = static_cast<std::int64_t>(r[op->ra]);
      const auto den = static_cast<std::int64_t>(r[op->rb]);
      if (den == 0) [[unlikely]] TQ_TRAP("integer remainder by zero");
      r[op->rd] = static_cast<std::uint64_t>(num % den);
      ++i;
      TQ_NEXT();
    }

    TQ_ALU(kAnd, r[op->rd] = r[op->ra] & r[op->rb])
    TQ_ALU(kOr, r[op->rd] = r[op->ra] | r[op->rb])
    TQ_ALU(kXor, r[op->rd] = r[op->ra] ^ r[op->rb])
    TQ_ALU(kShl, r[op->rd] = r[op->ra] << (r[op->rb] & 63))
    TQ_ALU(kShrL, r[op->rd] = r[op->ra] >> (r[op->rb] & 63))
    TQ_ALU(kShrA,
           r[op->rd] = static_cast<std::uint64_t>(
               static_cast<std::int64_t>(r[op->ra]) >> (r[op->rb] & 63)))
    TQ_ALU(kSltS, r[op->rd] = static_cast<std::int64_t>(r[op->ra]) <
                              static_cast<std::int64_t>(r[op->rb]))
    TQ_ALU(kSltU, r[op->rd] = r[op->ra] < r[op->rb])
    TQ_ALU(kSeq, r[op->rd] = r[op->ra] == r[op->rb])

    TQ_ALU(kAddI, r[op->rd] = r[op->ra] + static_cast<std::uint64_t>(op->imm))
    TQ_ALU(kMulI, r[op->rd] = r[op->ra] * static_cast<std::uint64_t>(op->imm))
    TQ_ALU(kAndI, r[op->rd] = r[op->ra] & static_cast<std::uint64_t>(op->imm))
    TQ_ALU(kOrI, r[op->rd] = r[op->ra] | static_cast<std::uint64_t>(op->imm))
    TQ_ALU(kXorI, r[op->rd] = r[op->ra] ^ static_cast<std::uint64_t>(op->imm))
    TQ_ALU(kShlI, r[op->rd] = r[op->ra] << (op->imm & 63))
    TQ_ALU(kShrLI, r[op->rd] = r[op->ra] >> (op->imm & 63))
    TQ_ALU(kShrAI,
           r[op->rd] = static_cast<std::uint64_t>(
               static_cast<std::int64_t>(r[op->ra]) >> (op->imm & 63)))
    TQ_ALU(kSltSI,
           r[op->rd] = static_cast<std::int64_t>(r[op->ra]) < op->imm)

    TQ_ALU(kMovI, r[op->rd] = static_cast<std::uint64_t>(op->imm))
    TQ_ALU(kMov, r[op->rd] = r[op->ra])

    TQ_ALU(kFAdd, f[op->rd] = f[op->ra] + f[op->rb])
    TQ_ALU(kFSub, f[op->rd] = f[op->ra] - f[op->rb])
    TQ_ALU(kFMul, f[op->rd] = f[op->ra] * f[op->rb])
    TQ_ALU(kFDiv, f[op->rd] = f[op->ra] / f[op->rb])
    TQ_ALU(kFNeg, f[op->rd] = -f[op->ra])
    TQ_ALU(kFAbs, f[op->rd] = std::fabs(f[op->ra]))
    TQ_ALU(kFSqrt, f[op->rd] = std::sqrt(f[op->ra]))
    TQ_ALU(kFSin, f[op->rd] = std::sin(f[op->ra]))
    TQ_ALU(kFCos, f[op->rd] = std::cos(f[op->ra]))
    TQ_ALU(kFMov, f[op->rd] = f[op->ra])
    TQ_ALU(kFMovI, f[op->rd] = std::bit_cast<double>(op->imm))
    TQ_ALU(kFMin, f[op->rd] = std::fmin(f[op->ra], f[op->rb]))
    TQ_ALU(kFMax, f[op->rd] = std::fmax(f[op->ra], f[op->rb]))

    TQ_ALU(kFCmpLt, r[op->rd] = f[op->ra] < f[op->rb])
    TQ_ALU(kFCmpLe, r[op->rd] = f[op->ra] <= f[op->rb])
    TQ_ALU(kFCmpEq, r[op->rd] = f[op->ra] == f[op->rb])

    TQ_ALU(kI2F, f[op->rd] = static_cast<double>(
                     static_cast<std::int64_t>(r[op->ra])))
    TQ_ALU(kF2I, r[op->rd] = static_cast<std::uint64_t>(
                     static_cast<std::int64_t>(f[op->ra])))

    TQ_CASE(kLoad) {
      TQ_HEAD(op->size != 0)
      const std::uint64_t ea = r[op->ra] + static_cast<std::uint64_t>(op->imm);
      TQ_PRE(ea, op->size, 0, 0, false)
      if constexpr (M == Mode::kSinked) {
        sink->on_access(cur_func, op->pc, retired - 1, ea, op->size, true,
                        is_stack_addr(ea, r[isa::kSp]), false);
      }
      r[op->rd] = memory_.load(ea, op->size);
      ++i;
      TQ_NEXT();
    }
    TQ_CASE(kLoadS) {
      TQ_HEAD(op->size != 0)
      const std::uint64_t ea = r[op->ra] + static_cast<std::uint64_t>(op->imm);
      TQ_PRE(ea, op->size, 0, 0, false)
      if constexpr (M == Mode::kSinked) {
        sink->on_access(cur_func, op->pc, retired - 1, ea, op->size, true,
                        is_stack_addr(ea, r[isa::kSp]), false);
      }
      std::uint64_t value = memory_.load(ea, op->size);
      const unsigned bits = op->size * 8u;
      if (bits < 64 && (value >> (bits - 1)) & 1) {
        value |= ~((1ull << bits) - 1);
      }
      r[op->rd] = value;
      ++i;
      TQ_NEXT();
    }
    TQ_CASE(kStore) {
      TQ_HEAD(op->size != 0)
      const std::uint64_t ea = r[op->ra] + static_cast<std::uint64_t>(op->imm);
      TQ_PRE(0, 0, ea, op->size, false)
      if constexpr (M == Mode::kSinked) {
        sink->on_access(cur_func, op->pc, retired - 1, ea, op->size, false,
                        is_stack_addr(ea, r[isa::kSp]), false);
      }
      memory_.store(ea, r[op->rb], op->size);
      ++i;
      TQ_NEXT();
    }
    TQ_CASE(kFLoad) {
      TQ_HEAD(op->size != 0)
      const std::uint64_t ea = r[op->ra] + static_cast<std::uint64_t>(op->imm);
      TQ_PRE(ea, op->size, 0, 0, false)
      if constexpr (M == Mode::kSinked) {
        sink->on_access(cur_func, op->pc, retired - 1, ea, op->size, true,
                        is_stack_addr(ea, r[isa::kSp]), false);
      }
      f[op->rd] = memory_.load_f64(ea);
      ++i;
      TQ_NEXT();
    }
    TQ_CASE(kFStore) {
      TQ_HEAD(op->size != 0)
      const std::uint64_t ea = r[op->ra] + static_cast<std::uint64_t>(op->imm);
      TQ_PRE(0, 0, ea, op->size, false)
      if constexpr (M == Mode::kSinked) {
        sink->on_access(cur_func, op->pc, retired - 1, ea, op->size, false,
                        is_stack_addr(ea, r[isa::kSp]), false);
      }
      memory_.store_f64(ea, f[op->rb]);
      ++i;
      TQ_NEXT();
    }
    TQ_CASE(kFLoad4) {
      TQ_HEAD(op->size != 0)
      const std::uint64_t ea = r[op->ra] + static_cast<std::uint64_t>(op->imm);
      TQ_PRE(ea, op->size, 0, 0, false)
      if constexpr (M == Mode::kSinked) {
        sink->on_access(cur_func, op->pc, retired - 1, ea, op->size, true,
                        is_stack_addr(ea, r[isa::kSp]), false);
      }
      float value;
      const auto raw = static_cast<std::uint32_t>(memory_.load(ea, 4));
      std::memcpy(&value, &raw, 4);
      f[op->rd] = static_cast<double>(value);
      ++i;
      TQ_NEXT();
    }
    TQ_CASE(kFStore4) {
      TQ_HEAD(op->size != 0)
      const std::uint64_t ea = r[op->ra] + static_cast<std::uint64_t>(op->imm);
      TQ_PRE(0, 0, ea, op->size, false)
      if constexpr (M == Mode::kSinked) {
        sink->on_access(cur_func, op->pc, retired - 1, ea, op->size, false,
                        is_stack_addr(ea, r[isa::kSp]), false);
      }
      const auto value = static_cast<float>(f[op->rb]);
      std::uint32_t raw;
      std::memcpy(&raw, &value, 4);
      memory_.store(ea, raw, 4);
      ++i;
      TQ_NEXT();
    }
    TQ_CASE(kPrefetch) {
      TQ_HEAD(op->size != 0)
      const std::uint64_t ea = r[op->ra] + static_cast<std::uint64_t>(op->imm);
      TQ_PRE(ea, op->size, 0, 0, true)
      if constexpr (M == Mode::kSinked) {
        sink->on_access(cur_func, op->pc, retired - 1, ea, op->size, true,
                        is_stack_addr(ea, r[isa::kSp]), true);
      }
      // Architecturally a no-op; only the event matters.
      ++i;
      TQ_NEXT();
    }
    TQ_CASE(kMovs) {
      TQ_HEAD(op->size != 0)
      const std::uint64_t rea = r[op->ra];
      const std::uint64_t wea = r[op->rd];
      TQ_PRE(rea, op->size, wea, op->size, false)
      if constexpr (M == Mode::kSinked) {
        sink->on_access(cur_func, op->pc, retired - 1, rea, op->size, true,
                        is_stack_addr(rea, r[isa::kSp]), false);
        sink->on_access(cur_func, op->pc, retired - 1, wea, op->size, false,
                        is_stack_addr(wea, r[isa::kSp]), false);
      }
      std::uint8_t buf[64];
      TQUAD_DCHECK(op->size <= sizeof buf, "movs size out of range");
      memory_.read(rea, std::span<std::uint8_t>(buf, op->size));
      memory_.write(wea, std::span<const std::uint8_t>(buf, op->size));
      r[op->ra] += op->size;
      r[op->rd] += op->size;
      ++i;
      TQ_NEXT();
    }

    TQ_CASE(kJmp) {
      TQ_HEAD(false)
      TQ_PRE(0, 0, 0, 0, false)
      i = op->target;
      TQ_NEXT();
    }
    TQ_CASE(kBrZ) {
      TQ_HEAD(false)
      TQ_PRE(0, 0, 0, 0, false)
      i = (r[op->ra] == 0) ? op->target : i + 1;
      TQ_NEXT();
    }
    TQ_CASE(kBrNZ) {
      TQ_HEAD(false)
      TQ_PRE(0, 0, 0, 0, false)
      i = (r[op->ra] != 0) ? op->target : i + 1;
      TQ_NEXT();
    }

    TQ_CASE(kCall) {
      TQ_HEAD(true)
      const std::uint64_t sp_before = r[isa::kSp];
      const std::uint64_t wea = sp_before - 8;
      TQ_PRE(0, 0, wea, 8, false)
      if constexpr (M == Mode::kSinked) {
        sink->on_access(cur_func, op->pc, retired - 1, wea, 8, false,
                        is_stack_addr(wea, sp_before), false);
      }
      const std::uint64_t ret_addr =
          (static_cast<std::uint64_t>(cur_func) << 32) | (op->pc + 1);
      r[isa::kSp] = wea;
      if (wea < kStackLimit) [[unlikely]] TQ_TRAP("guest stack overflow");
      memory_.store(wea, ret_addr, 8);
      TQ_FLUSH_SPAN()
      const auto callee = static_cast<std::uint32_t>(op->imm);
      cur_func = callee;
      cpu_.func = callee;
      cpu_.pc = 0;
      retired_ = retired;
      TQ_SET_ROUTINE(callee);
      if constexpr (M == Mode::kSinked) sink->on_enter(callee, retired - 1);
      if constexpr (M == Mode::kProbed) {
        dispatch_entry_probes(*rtn, callee, retired - 1);
      }
      check_entry_fault();
      i = 0;
      TQ_NEXT();
    }
    TQ_CASE(kRet) {
      TQ_HEAD(true)
      const std::uint64_t sp_before = r[isa::kSp];
      TQ_PRE(sp_before, 8, 0, 0, false)
      if constexpr (M == Mode::kSinked) {
        sink->on_access(cur_func, op->pc, retired - 1, sp_before, 8, true,
                        is_stack_addr(sp_before, sp_before), false);
        TQ_FLUSH_SPAN()
        sink->on_ret(cur_func, op->pc, retired - 1);
      }
      if (sp_before >= kStackBase) [[unlikely]] {
        TQ_TRAP("return with empty call stack");
      }
      const std::uint64_t ret_addr = memory_.load(sp_before, 8);
      r[isa::kSp] = sp_before + 8;
      const auto ret_func = static_cast<std::uint32_t>(ret_addr >> 32);
      const auto ret_pc = static_cast<std::uint32_t>(ret_addr & 0xffffffffu);
      if (ret_func >= program_.functions().size()) [[unlikely]] {
        TQ_TRAP("corrupted return address");
      }
      cur_func = ret_func;
      cpu_.func = ret_func;
      TQ_SET_ROUTINE(ret_func);
      if (ret_pc >= rtn->pc_to_op.size()) [[unlikely]] {
        // A forged return address landing beyond the code: the interpreter
        // traps on its per-iteration bounds check with the landing pc.
        cpu_.pc = ret_pc;
        retired_ = retired;
        trap("pc past end of function");
      }
      i = pc2op[ret_pc];
      TQ_NEXT();
    }

    TQ_CASE(kSys) {
      TQ_HEAD(false)
      TQ_PRE(0, 0, 0, 0, false)
      cpu_.func = cur_func;
      cpu_.pc = op->pc;
      retired_ = retired;
      do_sys(op->imm);
      ++i;
      TQ_NEXT();
    }

    TQ_CASE(kPastEnd) {
      // Reached by falling through the last instruction; checked before the
      // budget, exactly like the interpreter's loop-top bounds check.
      cpu_.func = cur_func;
      cpu_.pc = op->pc;
      retired_ = retired;
      trap("pc past end of function");
    }

    // ---- superinstructions (probe-free, unpredicated by construction) ----

    TQ_CASE(kFuseAddIAddI) {
      TQ_HEAD(false)
      r[op->rd] = r[op->ra] + static_cast<std::uint64_t>(op->imm);
      ++retired;
      TQ_MID()
      r[op->rd2] = r[op->ra2] + static_cast<std::uint64_t>(op->imm2);
      ++retired;
      ++i;
      TQ_NEXT();
    }
    TQ_CASE(kFuseAddISltSI) {
      TQ_HEAD(false)
      r[op->rd] = r[op->ra] + static_cast<std::uint64_t>(op->imm);
      ++retired;
      TQ_MID()
      r[op->rd2] = static_cast<std::int64_t>(r[op->ra2]) < op->imm2;
      ++retired;
      ++i;
      TQ_NEXT();
    }
    TQ_CASE(kFuseAddIBrNZ) {
      TQ_HEAD(false)
      const std::uint64_t v = r[op->ra] + static_cast<std::uint64_t>(op->imm);
      r[op->rd] = v;
      ++retired;
      TQ_MID()
      ++retired;
      i = (v != 0) ? op->target : i + 1;
      TQ_NEXT();
    }
    TQ_CASE(kFuseSltSIBrNZ) {
      TQ_HEAD(false)
      const bool t = static_cast<std::int64_t>(r[op->ra]) < op->imm;
      r[op->rd] = t;
      ++retired;
      TQ_MID()
      ++retired;
      i = t ? op->target : i + 1;
      TQ_NEXT();
    }
    TQ_CASE(kFuseSltSBrNZ) {
      TQ_HEAD(false)
      const bool t = static_cast<std::int64_t>(r[op->ra]) <
                     static_cast<std::int64_t>(r[op->rb]);
      r[op->rd] = t;
      ++retired;
      TQ_MID()
      ++retired;
      i = t ? op->target : i + 1;
      TQ_NEXT();
    }
    TQ_CASE(kFuseSltUBrNZ) {
      TQ_HEAD(false)
      const bool t = r[op->ra] < r[op->rb];
      r[op->rd] = t;
      ++retired;
      TQ_MID()
      ++retired;
      i = t ? op->target : i + 1;
      TQ_NEXT();
    }
    TQ_CASE(kFuseSeqBrZ) {
      TQ_HEAD(false)
      const bool t = r[op->ra] == r[op->rb];
      r[op->rd] = t;
      ++retired;
      TQ_MID()
      ++retired;
      i = t ? i + 1 : op->target;
      TQ_NEXT();
    }
    TQ_CASE(kFuseSeqBrNZ) {
      TQ_HEAD(false)
      const bool t = r[op->ra] == r[op->rb];
      r[op->rd] = t;
      ++retired;
      TQ_MID()
      ++retired;
      i = t ? op->target : i + 1;
      TQ_NEXT();
    }

#if TQ_CGOTO
#else
        default:
          TQUAD_CHECK(false, "invalid compiled opcode");
      }
    }
#endif
#undef TQ_CASE
#undef TQ_NEXT

  handle_stop : {
    // `retired >= stop_at` or the interrupt flag fired (cpu_.pc set at the
    // jump site). The interrupt wins over the budget, and the budget over
    // trap_at, matching the interpreter's check order.
    cpu_.func = cur_func;
    retired_ = retired;
    if (irq != nullptr && *irq != 0) {
      TQ_FLUSH_SPAN()
      if constexpr (M == Mode::kProbed) probes->on_end(retired);
      RunOutcome out;
      out.status = RunStatus::kInterrupted;
      out.retired = retired;
      return out;
    }
    if (budget_ != 0 && retired >= budget_) {
      TQ_FLUSH_SPAN()
      if constexpr (M == Mode::kProbed) probes->on_end(retired);
      RunOutcome out;
      out.status = RunStatus::kTruncated;
      out.retired = retired;
      return out;
    }
    trap("fault injection: trap at retired " +
         std::to_string(fault_.trap_at_retired));
  }
  } catch (const TrapError& err) {
    // Guest-attributable fault: flush what the consumers are owed, then
    // return the structured outcome — the same contract as Machine::run.
    TQ_FLUSH_SPAN()
    if constexpr (M == Mode::kProbed) probes->on_end(retired_);
    RunOutcome out;
    out.status = RunStatus::kTrapped;
    out.retired = retired_;
    out.trap_kind = err.reason();
    out.trap_function = err.func() < program_.functions().size()
                            ? program_.functions()[err.func()].name
                            : "<bad function>";
    out.trap_func = err.func();
    out.trap_pc = err.pc();
    return out;
  }
}

#undef TQ_TRAP
#undef TQ_HEAD
#undef TQ_MID
#undef TQ_PRE
#undef TQ_FLUSH_SPAN
#undef TQ_SET_ROUTINE
#undef TQ_ALU

}  // namespace tq::vm
