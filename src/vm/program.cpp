#include "vm/program.hpp"

#include <cstring>

#include "support/check.hpp"

namespace tq::vm {

namespace {

constexpr std::uint32_t kMagic = 0x4d495154;  // "TQIM"
constexpr std::uint32_t kVersion = 2;  // v2 added the globals table

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + 4);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + 8);
}

void put_bytes(std::vector<std::uint8_t>& out, std::span<const std::uint8_t> bytes) {
  put_u64(out, bytes.size());
  out.insert(out.end(), bytes.begin(), bytes.end());
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint32_t u32() {
    std::uint32_t v;
    take(&v, 4);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    take(&v, 8);
    return v;
  }
  std::vector<std::uint8_t> blob() {
    const std::uint64_t n = u64();
    if (n > remaining()) TQUAD_THROW("TQIM image truncated inside a blob");
    std::vector<std::uint8_t> out(bytes_.begin() + pos_, bytes_.begin() + pos_ + n);
    pos_ += n;
    return out;
  }
  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

 private:
  void take(void* dst, std::size_t n) {
    if (n > remaining()) TQUAD_THROW("TQIM image truncated");
    std::memcpy(dst, bytes_.data() + pos_, n);
    pos_ += n;
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

const char* image_kind_name(ImageKind kind) noexcept {
  switch (kind) {
    case ImageKind::kMain: return "main";
    case ImageKind::kLibrary: return "library";
    case ImageKind::kOs: return "os";
  }
  return "<bad>";
}

std::uint32_t Program::add_function(Function function) {
  TQUAD_CHECK(!function.name.empty(), "function needs a name");
  functions_.push_back(std::move(function));
  return static_cast<std::uint32_t>(functions_.size() - 1);
}

void Program::set_entry(std::uint32_t function_id) {
  TQUAD_CHECK(function_id < functions_.size(), "entry function out of range");
  entry_ = function_id;
}

const Function& Program::function(std::uint32_t id) const {
  TQUAD_CHECK(id < functions_.size(), "function id out of range");
  return functions_[id];
}

std::optional<std::uint32_t> Program::find(const std::string& name) const noexcept {
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    if (functions_[i].name == name) return static_cast<std::uint32_t>(i);
  }
  return std::nullopt;
}

std::uint64_t Program::static_instructions() const noexcept {
  std::uint64_t total = 0;
  for (const auto& fn : functions_) total += fn.code.size();
  return total;
}

void Program::validate() const {
  if (functions_.empty()) TQUAD_THROW("program has no functions");
  for (const auto& fn : functions_) {
    const std::string diag = isa::validate(fn.code, functions_.size());
    if (!diag.empty()) {
      TQUAD_THROW("function '" + fn.name + "': " + diag);
    }
  }
  TQUAD_CHECK(entry_ < functions_.size(), "entry out of range");
}

std::vector<std::uint8_t> Program::serialize() const {
  std::vector<std::uint8_t> out;
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_u32(out, entry_);
  put_u32(out, static_cast<std::uint32_t>(functions_.size()));
  put_u64(out, data_.size());
  put_u64(out, globals_.size());
  for (const auto& fn : functions_) {
    put_bytes(out, std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(fn.name.data()),
                       fn.name.size()));
    put_u32(out, static_cast<std::uint32_t>(fn.image));
    put_bytes(out, isa::encode(fn.code));
  }
  for (const auto& init : data_) {
    put_u64(out, init.addr);
    put_bytes(out, init.bytes);
  }
  for (const auto& var : globals_) {
    put_bytes(out, std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(var.name.data()),
                       var.name.size()));
    put_u64(out, var.addr);
    put_u64(out, var.size);
  }
  return out;
}

Program Program::deserialize(std::span<const std::uint8_t> bytes) {
  Reader in(bytes);
  if (in.u32() != kMagic) TQUAD_THROW("not a TQIM image (bad magic)");
  const std::uint32_t version = in.u32();
  if (version != kVersion) {
    TQUAD_THROW("unsupported TQIM version " + std::to_string(version));
  }
  const std::uint32_t entry = in.u32();
  const std::uint32_t function_count = in.u32();
  const std::uint64_t data_count = in.u64();
  const std::uint64_t global_count = in.u64();
  Program prog;
  for (std::uint32_t i = 0; i < function_count; ++i) {
    const auto name_bytes = in.blob();
    Function fn;
    fn.name.assign(name_bytes.begin(), name_bytes.end());
    const std::uint32_t image = in.u32();
    if (image > static_cast<std::uint32_t>(ImageKind::kOs)) {
      TQUAD_THROW("bad image kind in TQIM image");
    }
    fn.image = static_cast<ImageKind>(image);
    fn.code = isa::decode(in.blob());
    prog.add_function(std::move(fn));
  }
  for (std::uint64_t i = 0; i < data_count; ++i) {
    DataInit init;
    init.addr = in.u64();
    init.bytes = in.blob();
    prog.add_data(std::move(init));
  }
  for (std::uint64_t i = 0; i < global_count; ++i) {
    GlobalVar var;
    const auto name_bytes = in.blob();
    var.name.assign(name_bytes.begin(), name_bytes.end());
    var.addr = in.u64();
    var.size = in.u64();
    prog.add_global(std::move(var));
  }
  // Untrusted input: reject rather than assert on a bad entry id.
  if (entry >= prog.functions().size()) {
    TQUAD_THROW("TQIM entry function id out of range");
  }
  prog.set_entry(entry);
  prog.validate();
  return prog;
}

}  // namespace tq::vm
