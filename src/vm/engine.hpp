// The common engine seam: two execution engines, one contract.
//
// The interpreter (vm::Machine) and the compiled threaded-dispatch engine
// (vm::CompiledMachine) execute the same guest programs with byte-identical
// observable behaviour — RunOutcome semantics, instruction budgets, the
// FaultPlan triggers and the exact-prefix PARTIAL/trap contract all carry
// over unchanged. GuestEngine is the shared surface callers program
// against; EngineKind selects the implementation at the minipin / session /
// CLI layers (`-engine interp|compiled`).
#pragma once

#include <csignal>
#include <cstdint>

namespace tq::vm {

struct Cpu;
struct FaultPlan;

/// Which execution engine runs the guest.
enum class EngineKind : std::uint8_t {
  kInterp = 0,    ///< the original switch-dispatch interpreter
  kCompiled = 1,  ///< lowered fused-op threaded dispatch
};

/// "interp" / "compiled".
const char* engine_kind_name(EngineKind kind) noexcept;

/// The execution-engine contract shared by Machine and CompiledMachine.
/// run() itself is not part of the seam — the two engines take different
/// instrumentation hooks (ExecListener vs. ProbeProvider/EventSink) — but
/// budgets, fault plans and post-run inspection are identical.
class GuestEngine {
 public:
  virtual ~GuestEngine() = default;

  /// Stop the run gracefully (RunStatus::kTruncated) once this many
  /// instructions retire. Zero (default) means unlimited.
  virtual void set_instruction_budget(std::uint64_t budget) noexcept = 0;

  /// Arm deterministic fault injection (see FaultPlan).
  virtual void set_fault_plan(const FaultPlan& plan) noexcept = 0;

  /// Arm cooperative interruption: when `*flag` becomes nonzero (typically
  /// from a SIGINT/SIGTERM handler), the run stops at the next retirement
  /// boundary with RunStatus::kInterrupted — the events delivered so far are
  /// a valid prefix, exactly like a budget cut. `flag` must outlive the run;
  /// null (default) disarms the check.
  virtual void set_interrupt_flag(
      const volatile std::sig_atomic_t* flag) noexcept = 0;

  /// Post-run inspection.
  virtual const Cpu& cpu() const noexcept = 0;
  virtual std::uint64_t retired() const noexcept = 0;
  virtual std::uint64_t heap_used() const noexcept = 0;
};

}  // namespace tq::vm
