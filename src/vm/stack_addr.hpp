// Stack-area classification shared by every attribution consumer.
//
// The paper's tool offers a command-line option to include or exclude "local
// stack area" accesses; an access counts as stack area when it lands at or
// above SP (minus a small red zone covering the return-address push) and
// below the stack base. The same SP-relative heuristic previously lived as a
// private copy in each tool — this is the single definition.
#pragma once

#include <cstdint>

#include "vm/program.hpp"

namespace tq::vm {

/// Bytes below SP still counted as stack area (covers the return-address
/// push a call performs at SP-8 before the callee adjusts SP).
inline constexpr std::uint64_t kStackRedZone = 64;

/// Whether an access at `ea` with stack pointer `sp` hits the local stack
/// area of the executing routine.
inline constexpr bool is_stack_addr(std::uint64_t ea, std::uint64_t sp) noexcept {
  return ea + kStackRedZone >= sp && ea < kStackBase;
}

}  // namespace tq::vm
