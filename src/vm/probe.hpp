// The instrumentation seam between the VM's execution engines and the
// minipin DBI layer (and, below it, the session's attribution service).
//
// The interpreter streams vm::InstrEvent through the virtual ExecListener;
// the compiled engine instead consumes *pre-resolved* callback tables — flat
// arrays of function pointers attached per static instruction — so that an
// instruction with no subscribers costs a single null check instead of a
// virtual dispatch. The types here are the lowering contract:
//
//   * ProbeArgs / EntryArgs   — the argument bundles analysis routines see
//     (minipin's InsArgs / RtnArgs are aliases of these, so the same tool
//     callbacks run unchanged under either engine);
//   * InsProbe / EntryProbe   — one subscribed analysis call;
//   * ProbeProvider           — hands the engine a routine's finalized
//     tables on its first dynamic entry (the instrument-once lifecycle);
//   * EventSink               — the session fast path: instead of per-
//     instruction probes, the engine batches tick spans and emits accesses /
//     enters / returns directly, in exactly the order the interpreter-backed
//     trampolines would have produced.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vm/program.hpp"

namespace tq::vm {

/// Argument bundle delivered to instruction-level analysis routines.
/// Field-for-field the bundle minipin's tools were written against.
struct ProbeArgs {
  std::uint64_t ip = 0;          ///< (function id << 32) | instruction index
  std::uint32_t func = 0;        ///< function id
  std::uint32_t pc = 0;          ///< instruction index within the function
  std::uint64_t read_ea = 0;     ///< read operand address (read_size != 0)
  std::uint32_t read_size = 0;   ///< read width in bytes (0 = no read)
  std::uint64_t write_ea = 0;    ///< write operand address (write_size != 0)
  std::uint32_t write_size = 0;  ///< write width in bytes (0 = no write)
  bool is_prefetch = false;      ///< tQUAD's analysis routines bail on this
  bool executed = true;          ///< false when the predicate was off
  std::uint64_t sp = 0;          ///< REG_STACK_PTR before the instruction
  std::uint64_t retired = 0;     ///< instructions retired before this one
};

/// Argument bundle delivered to routine-entry analysis calls.
struct EntryArgs {
  std::uint32_t func = 0;
  const std::string* name = nullptr;  ///< routine name
  ImageKind image = ImageKind::kMain;
  std::uint64_t retired = 0;
};

/// Analysis routines are plain functions with a tool pointer (no
/// std::function on the hot path).
using ProbeFn = void (*)(void* tool, const ProbeArgs& args);
using EntryFn = void (*)(void* tool, const EntryArgs& args);

/// One subscribed instruction-level analysis call.
struct InsProbe {
  ProbeFn fn;
  void* tool;
  bool predicated_only;  ///< skip when the instruction did not execute
};

/// One subscribed routine-entry analysis call.
struct EntryProbe {
  EntryFn fn;
  void* tool;
};

/// Supplies per-routine subscription tables to the compiled engine. The
/// engine calls instrument() exactly once per routine, on its first dynamic
/// entry — the same lazy instrument-once / analyse-many lifecycle the
/// interpreter path drives through ExecListener::on_rtn_enter. The returned
/// vectors must stay valid (and unmodified) for the rest of the run.
class ProbeProvider {
 public:
  virtual ~ProbeProvider() = default;

  struct RoutineProbes {
    /// Per-pc analysis calls; null or empty inner vectors mean "no probes".
    const std::vector<std::vector<InsProbe>>* per_ins = nullptr;
    /// Calls fired on every dynamic entry of the routine.
    const std::vector<EntryProbe>* entry_probes = nullptr;
  };

  /// First dynamic entry of `func`: run instrumentation, return the tables.
  virtual RoutineProbes instrument(std::uint32_t func) = 0;

  /// End of run on every path (halt, trap, truncation); `retired` is final.
  virtual void on_end(std::uint64_t retired) = 0;
};

/// The session fast path: raw profiling events batched at attribution
/// granularity. The compiled engine accumulates the per-instruction ticks
/// between two attribution boundaries (routine entry / return / end of run)
/// into one span and emits accesses individually, preserving the exact
/// event order of the interpreter-backed trampolines.
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// A routine was entered; `retired` counts instructions before the call.
  virtual void on_enter(std::uint32_t func, std::uint64_t retired) = 0;

  /// `count` contiguous ticks in `func` starting at `first_retired`, of
  /// which `mem_count` carried a memory operand (by static operand widths,
  /// so predicated-off instructions count — same as the live trampolines).
  virtual void on_tick_span(std::uint32_t func, std::uint64_t first_retired,
                            std::uint64_t count, std::uint64_t mem_count) = 0;

  /// One executed architectural access (reads delivered before writes).
  virtual void on_access(std::uint32_t func, std::uint32_t pc,
                         std::uint64_t retired, std::uint64_t ea,
                         std::uint32_t size, bool is_read, bool is_stack,
                         bool is_prefetch) = 0;

  /// An executed return (fires after its return-address-pop access).
  virtual void on_ret(std::uint32_t func, std::uint32_t pc,
                      std::uint64_t retired) = 0;
};

}  // namespace tq::vm
