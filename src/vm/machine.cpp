#include "vm/machine.hpp"

#include <bit>
#include <cmath>
#include <cstring>

#include "support/check.hpp"

namespace tq::vm {

using isa::Instr;
using isa::Op;

Machine::Machine(const Program& program, HostEnv& host)
    : program_(program), host_(host) {
  program_.validate();
}

void Machine::trap(const std::string& why) const {
  const std::string where = cpu_.func < program_.functions().size()
                                ? program_.functions()[cpu_.func].name
                                : "<bad function>";
  throw TrapError("guest trap: " + why + " (in '" + where + "' at pc " +
                      std::to_string(cpu_.pc) + ", retired " +
                      std::to_string(retired_) + ")",
                  why, cpu_.func, cpu_.pc);
}

// FaultPlan function-entry trigger. Runs right after on_rtn_enter fired for
// the entered routine, so the event stream up to the trap matches a clean
// run cut at the same retired count.
void Machine::check_entry_fault() {
  if (fault_.fail_func == FaultPlan::kNoFunc || cpu_.func != fault_.fail_func)
    return;
  if (++fault_entries_seen_ >= fault_.fail_func_entries) {
    trap("fault injection: function entered " +
         std::to_string(fault_entries_seen_) + " time(s)");
  }
}

void Machine::do_sys(const Instr& ins) {
  auto& r = cpu_.regs;
  ++syscalls_seen_;
  if (fault_.fail_syscall != 0 && syscalls_seen_ == fault_.fail_syscall)
      [[unlikely]] {
    trap("fault injection: syscall " + std::to_string(syscalls_seen_) +
         " failed");
  }
  try {
    switch (static_cast<isa::Sys>(ins.imm)) {
      case isa::Sys::kAlloc: {
        const std::uint64_t size = r[1];
        heap_ptr_ = (heap_ptr_ + 15) & ~15ull;
        const std::uint64_t addr = heap_ptr_;
        heap_ptr_ += size;
        if (heap_ptr_ >= kStackLimit) trap("guest heap exhausted");
        r[1] = addr;
        break;
      }
      case isa::Sys::kRead: {
        const int fd = static_cast<int>(r[1]);
        const std::uint64_t buf = r[2];
        const std::uint64_t len = r[3];
        std::vector<std::uint8_t> tmp(static_cast<std::size_t>(len));
        const std::size_t n = host_.read(fd, tmp);
        memory_.write(buf, std::span<const std::uint8_t>(tmp.data(), n));
        r[1] = n;
        break;
      }
      case isa::Sys::kWrite: {
        const int fd = static_cast<int>(r[1]);
        const std::uint64_t buf = r[2];
        const std::uint64_t len = r[3];
        std::vector<std::uint8_t> tmp(static_cast<std::size_t>(len));
        memory_.read(buf, tmp);
        host_.write(fd, tmp);
        r[1] = len;
        break;
      }
      case isa::Sys::kSeek:
        host_.seek(static_cast<int>(r[1]), r[2]);
        break;
      case isa::Sys::kFileSize:
        r[1] = host_.file_size(static_cast<int>(r[1]));
        break;
      case isa::Sys::kPrintI64:
        host_.append_log(std::to_string(static_cast<std::int64_t>(r[1])));
        break;
      case isa::Sys::kPrintF64:
        host_.append_log(std::to_string(cpu_.fregs[1]));
        break;
      default:
        trap("unknown syscall " + std::to_string(ins.imm));
    }
  } catch (const TrapError&) {
    throw;
  } catch (const Error& err) {
    trap(err.what());
  }
}

RunOutcome Machine::run(ExecListener* listener) {
  TQUAD_CHECK(!ran_, "Machine::run is single-shot; construct a fresh Machine");
  ran_ = true;
  for (const DataInit& init : program_.data()) {
    memory_.write(init.addr, init.bytes);
  }
  try {
    return listener ? run_loop<true>(listener) : run_loop<false>(nullptr);
  } catch (const TrapError& err) {
    // Guest-attributable fault: a structured outcome, not a host error. The
    // listener still sees on_program_end so tools flush their partial state.
    RunOutcome out;
    out.status = RunStatus::kTrapped;
    out.retired = retired_;
    out.trap_kind = err.reason();
    out.trap_function = err.func() < program_.functions().size()
                            ? program_.functions()[err.func()].name
                            : "<bad function>";
    out.trap_func = err.func();
    out.trap_pc = err.pc();
    if (listener) listener->on_program_end(retired_);
    return out;
  }
}

template <bool kTraced>
RunOutcome Machine::run_loop(ExecListener* listener) {
  cpu_.func = program_.entry();
  cpu_.pc = 0;
  cpu_.sp() = kStackBase;
  if constexpr (kTraced) {
    listener->on_program_start(program_);
    listener->on_rtn_enter(cpu_.func);
  }
  check_entry_fault();
  const Function* fn = &program_.functions()[cpu_.func];
  auto& r = cpu_.regs;
  auto& f = cpu_.fregs;

  for (;;) {
    if (cpu_.pc >= fn->code.size()) [[unlikely]] {
      trap("pc past end of function");
    }
    const Instr& ins = fn->code[cpu_.pc];
    if (interrupt_ != nullptr && *interrupt_ != 0) [[unlikely]] {
      // Cooperative interruption (SIGINT/SIGTERM flag): stop at a retirement
      // boundary so the events delivered so far are a valid prefix.
      if constexpr (kTraced) listener->on_program_end(retired_);
      RunOutcome out;
      out.status = RunStatus::kInterrupted;
      out.retired = retired_;
      return out;
    }
    if (budget_ != 0 && retired_ >= budget_) [[unlikely]] {
      // Graceful truncation: the events so far are a valid prefix.
      if constexpr (kTraced) listener->on_program_end(retired_);
      RunOutcome out;
      out.status = RunStatus::kTruncated;
      out.retired = retired_;
      return out;
    }
    if (fault_.trap_at_retired != 0 && retired_ >= fault_.trap_at_retired)
        [[unlikely]] {
      trap("fault injection: trap at retired " +
           std::to_string(fault_.trap_at_retired));
    }
    const bool executed = !ins.predicated() || r[ins.pr] != 0;

    if constexpr (kTraced) {
      InstrEvent ev;
      ev.func = cpu_.func;
      ev.pc = cpu_.pc;
      ev.ins = &ins;
      ev.sp = cpu_.sp_value();
      ev.retired = retired_;
      ev.executed = executed;
      if (isa::references_memory(ins.op)) {
        if (ins.op == Op::kCall) {
          ev.write = MemRef{cpu_.sp_value() - 8, 8};
        } else if (ins.op == Op::kRet) {
          ev.read = MemRef{cpu_.sp_value(), 8};
        } else if (ins.op == Op::kMovs) {
          ev.read = MemRef{r[ins.ra], ins.size};
          ev.write = MemRef{r[ins.rd], ins.size};
        } else {
          const MemRef ref{r[ins.ra] + static_cast<std::uint64_t>(ins.imm), ins.size};
          if (isa::is_memory_read(ins.op)) ev.read = ref;
          if (isa::is_memory_write(ins.op)) ev.write = ref;
          if (isa::is_prefetch(ins.op)) {
            ev.read = ref;
            ev.prefetch = true;
          }
        }
      }
      if (ins.op == Op::kCall && executed) {
        ev.callee = static_cast<std::uint32_t>(ins.imm);
      }
      listener->on_instr(ev);
    }

    ++retired_;
    if (!executed) {
      ++cpu_.pc;
      continue;
    }

    switch (ins.op) {
      case Op::kNop:
        break;
      case Op::kHalt: {
        if constexpr (kTraced) listener->on_program_end(retired_);
        RunOutcome out;
        out.retired = retired_;
        return out;
      }

      case Op::kAdd: r[ins.rd] = r[ins.ra] + r[ins.rb]; break;
      case Op::kSub: r[ins.rd] = r[ins.ra] - r[ins.rb]; break;
      case Op::kMul: r[ins.rd] = r[ins.ra] * r[ins.rb]; break;
      case Op::kDivS: {
        const auto num = static_cast<std::int64_t>(r[ins.ra]);
        const auto den = static_cast<std::int64_t>(r[ins.rb]);
        if (den == 0) trap("integer division by zero");
        r[ins.rd] = static_cast<std::uint64_t>(num / den);
        break;
      }
      case Op::kRemS: {
        const auto num = static_cast<std::int64_t>(r[ins.ra]);
        const auto den = static_cast<std::int64_t>(r[ins.rb]);
        if (den == 0) trap("integer remainder by zero");
        r[ins.rd] = static_cast<std::uint64_t>(num % den);
        break;
      }
      case Op::kAnd: r[ins.rd] = r[ins.ra] & r[ins.rb]; break;
      case Op::kOr: r[ins.rd] = r[ins.ra] | r[ins.rb]; break;
      case Op::kXor: r[ins.rd] = r[ins.ra] ^ r[ins.rb]; break;
      case Op::kShl: r[ins.rd] = r[ins.ra] << (r[ins.rb] & 63); break;
      case Op::kShrL: r[ins.rd] = r[ins.ra] >> (r[ins.rb] & 63); break;
      case Op::kShrA:
        r[ins.rd] = static_cast<std::uint64_t>(static_cast<std::int64_t>(r[ins.ra]) >>
                                               (r[ins.rb] & 63));
        break;
      case Op::kSltS:
        r[ins.rd] = static_cast<std::int64_t>(r[ins.ra]) <
                    static_cast<std::int64_t>(r[ins.rb]);
        break;
      case Op::kSltU: r[ins.rd] = r[ins.ra] < r[ins.rb]; break;
      case Op::kSeq: r[ins.rd] = r[ins.ra] == r[ins.rb]; break;

      case Op::kAddI:
        r[ins.rd] = r[ins.ra] + static_cast<std::uint64_t>(ins.imm);
        break;
      case Op::kMulI:
        r[ins.rd] = r[ins.ra] * static_cast<std::uint64_t>(ins.imm);
        break;
      case Op::kAndI:
        r[ins.rd] = r[ins.ra] & static_cast<std::uint64_t>(ins.imm);
        break;
      case Op::kOrI:
        r[ins.rd] = r[ins.ra] | static_cast<std::uint64_t>(ins.imm);
        break;
      case Op::kXorI:
        r[ins.rd] = r[ins.ra] ^ static_cast<std::uint64_t>(ins.imm);
        break;
      case Op::kShlI: r[ins.rd] = r[ins.ra] << (ins.imm & 63); break;
      case Op::kShrLI: r[ins.rd] = r[ins.ra] >> (ins.imm & 63); break;
      case Op::kShrAI:
        r[ins.rd] = static_cast<std::uint64_t>(static_cast<std::int64_t>(r[ins.ra]) >>
                                               (ins.imm & 63));
        break;
      case Op::kSltSI:
        r[ins.rd] = static_cast<std::int64_t>(r[ins.ra]) < ins.imm;
        break;

      case Op::kMovI: r[ins.rd] = static_cast<std::uint64_t>(ins.imm); break;
      case Op::kMov: r[ins.rd] = r[ins.ra]; break;

      case Op::kFAdd: f[ins.rd] = f[ins.ra] + f[ins.rb]; break;
      case Op::kFSub: f[ins.rd] = f[ins.ra] - f[ins.rb]; break;
      case Op::kFMul: f[ins.rd] = f[ins.ra] * f[ins.rb]; break;
      case Op::kFDiv: f[ins.rd] = f[ins.ra] / f[ins.rb]; break;
      case Op::kFNeg: f[ins.rd] = -f[ins.ra]; break;
      case Op::kFAbs: f[ins.rd] = std::fabs(f[ins.ra]); break;
      case Op::kFSqrt: f[ins.rd] = std::sqrt(f[ins.ra]); break;
      case Op::kFSin: f[ins.rd] = std::sin(f[ins.ra]); break;
      case Op::kFCos: f[ins.rd] = std::cos(f[ins.ra]); break;
      case Op::kFMov: f[ins.rd] = f[ins.ra]; break;
      case Op::kFMovI: f[ins.rd] = std::bit_cast<double>(ins.imm); break;
      case Op::kFMin: f[ins.rd] = std::fmin(f[ins.ra], f[ins.rb]); break;
      case Op::kFMax: f[ins.rd] = std::fmax(f[ins.ra], f[ins.rb]); break;

      case Op::kFCmpLt: r[ins.rd] = f[ins.ra] < f[ins.rb]; break;
      case Op::kFCmpLe: r[ins.rd] = f[ins.ra] <= f[ins.rb]; break;
      case Op::kFCmpEq: r[ins.rd] = f[ins.ra] == f[ins.rb]; break;

      case Op::kI2F:
        f[ins.rd] = static_cast<double>(static_cast<std::int64_t>(r[ins.ra]));
        break;
      case Op::kF2I:
        r[ins.rd] = static_cast<std::uint64_t>(static_cast<std::int64_t>(f[ins.ra]));
        break;

      case Op::kLoad: {
        const std::uint64_t ea = r[ins.ra] + static_cast<std::uint64_t>(ins.imm);
        r[ins.rd] = memory_.load(ea, ins.size);
        break;
      }
      case Op::kLoadS: {
        const std::uint64_t ea = r[ins.ra] + static_cast<std::uint64_t>(ins.imm);
        std::uint64_t value = memory_.load(ea, ins.size);
        const unsigned bits = ins.size * 8;
        if (bits < 64 && (value >> (bits - 1)) & 1) {
          value |= ~((1ull << bits) - 1);
        }
        r[ins.rd] = value;
        break;
      }
      case Op::kStore: {
        const std::uint64_t ea = r[ins.ra] + static_cast<std::uint64_t>(ins.imm);
        memory_.store(ea, r[ins.rb], ins.size);
        break;
      }
      case Op::kFLoad: {
        const std::uint64_t ea = r[ins.ra] + static_cast<std::uint64_t>(ins.imm);
        f[ins.rd] = memory_.load_f64(ea);
        break;
      }
      case Op::kFStore: {
        const std::uint64_t ea = r[ins.ra] + static_cast<std::uint64_t>(ins.imm);
        memory_.store_f64(ea, f[ins.rb]);
        break;
      }
      case Op::kFLoad4: {
        const std::uint64_t ea = r[ins.ra] + static_cast<std::uint64_t>(ins.imm);
        float value;
        const std::uint32_t raw = static_cast<std::uint32_t>(memory_.load(ea, 4));
        std::memcpy(&value, &raw, 4);
        f[ins.rd] = static_cast<double>(value);
        break;
      }
      case Op::kFStore4: {
        const std::uint64_t ea = r[ins.ra] + static_cast<std::uint64_t>(ins.imm);
        const float value = static_cast<float>(f[ins.rb]);
        std::uint32_t raw;
        std::memcpy(&raw, &value, 4);
        memory_.store(ea, raw, 4);
        break;
      }
      case Op::kPrefetch:
        // Architecturally a no-op; only the event matters.
        break;
      case Op::kMovs: {
        std::uint8_t buf[64];
        TQUAD_DCHECK(ins.size <= sizeof buf, "movs size out of range");
        memory_.read(r[ins.ra], std::span<std::uint8_t>(buf, ins.size));
        memory_.write(r[ins.rd], std::span<const std::uint8_t>(buf, ins.size));
        r[ins.ra] += ins.size;
        r[ins.rd] += ins.size;
        break;
      }

      case Op::kJmp:
        cpu_.pc = static_cast<std::uint32_t>(ins.imm);
        continue;
      case Op::kBrZ:
        if (r[ins.ra] == 0) {
          cpu_.pc = static_cast<std::uint32_t>(ins.imm);
          continue;
        }
        break;
      case Op::kBrNZ:
        if (r[ins.ra] != 0) {
          cpu_.pc = static_cast<std::uint32_t>(ins.imm);
          continue;
        }
        break;

      case Op::kCall: {
        const std::uint64_t ret_addr =
            (static_cast<std::uint64_t>(cpu_.func) << 32) | (cpu_.pc + 1);
        cpu_.sp() -= 8;
        if (cpu_.sp_value() < kStackLimit) trap("guest stack overflow");
        memory_.store(cpu_.sp_value(), ret_addr, 8);
        cpu_.func = static_cast<std::uint32_t>(ins.imm);
        cpu_.pc = 0;
        fn = &program_.functions()[cpu_.func];
        if constexpr (kTraced) listener->on_rtn_enter(cpu_.func);
        check_entry_fault();
        continue;
      }
      case Op::kRet: {
        if (cpu_.sp_value() >= kStackBase) trap("return with empty call stack");
        const std::uint64_t ret_addr = memory_.load(cpu_.sp_value(), 8);
        cpu_.sp() += 8;
        const auto ret_func = static_cast<std::uint32_t>(ret_addr >> 32);
        const auto ret_pc = static_cast<std::uint32_t>(ret_addr & 0xffffffffu);
        if (ret_func >= program_.functions().size()) {
          trap("corrupted return address");
        }
        cpu_.func = ret_func;
        cpu_.pc = ret_pc;
        fn = &program_.functions()[cpu_.func];
        continue;
      }

      case Op::kSys:
        do_sys(ins);
        break;

      case Op::kOpCount_:
        trap("invalid opcode");
    }
    ++cpu_.pc;
  }
}

template RunOutcome Machine::run_loop<false>(ExecListener*);
template RunOutcome Machine::run_loop<true>(ExecListener*);

}  // namespace tq::vm
