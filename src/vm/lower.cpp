#include "vm/lower.hpp"

#include "support/check.hpp"

namespace tq::vm {

namespace {

using isa::Instr;
using isa::Op;

// The COpId enum lists the unfused ops in isa::Op order so lowering a plain
// instruction is a cast; keep the two enums pinned together.
static_assert(static_cast<int>(COpId::kNop) == static_cast<int>(Op::kNop));
static_assert(static_cast<int>(COpId::kAdd) == static_cast<int>(Op::kAdd));
static_assert(static_cast<int>(COpId::kMovI) == static_cast<int>(Op::kMovI));
static_assert(static_cast<int>(COpId::kLoad) == static_cast<int>(Op::kLoad));
static_assert(static_cast<int>(COpId::kMovs) == static_cast<int>(Op::kMovs));
static_assert(static_cast<int>(COpId::kJmp) == static_cast<int>(Op::kJmp));
static_assert(static_cast<int>(COpId::kSys) == static_cast<int>(Op::kSys));
static_assert(static_cast<int>(COpId::kPastEnd) ==
              static_cast<int>(Op::kOpCount_));

/// Superinstruction selection. Candidate firsts never trap, never transfer
/// control and always fall through; candidate seconds are plain ALU ops or
/// the branch consuming the value the first just produced. Returns kCount_
/// (the sentinel) when the pair does not fuse.
COpId fuse_pair(const Instr& a, const Instr& b) noexcept {
  switch (a.op) {
    case Op::kAddI:
      if (b.op == Op::kAddI) return COpId::kFuseAddIAddI;
      if (b.op == Op::kSltSI) return COpId::kFuseAddISltSI;
      if (b.op == Op::kBrNZ && b.ra == a.rd) return COpId::kFuseAddIBrNZ;
      break;
    case Op::kSltSI:
      if (b.op == Op::kBrNZ && b.ra == a.rd) return COpId::kFuseSltSIBrNZ;
      break;
    case Op::kSltS:
      if (b.op == Op::kBrNZ && b.ra == a.rd) return COpId::kFuseSltSBrNZ;
      break;
    case Op::kSltU:
      if (b.op == Op::kBrNZ && b.ra == a.rd) return COpId::kFuseSltUBrNZ;
      break;
    case Op::kSeq:
      if (b.op == Op::kBrZ && b.ra == a.rd) return COpId::kFuseSeqBrZ;
      if (b.op == Op::kBrNZ && b.ra == a.rd) return COpId::kFuseSeqBrNZ;
      break;
    default:
      break;
  }
  return COpId::kCount_;
}

bool fused_is_branch(COpId id) noexcept {
  switch (id) {
    case COpId::kFuseAddIBrNZ:
    case COpId::kFuseSltSIBrNZ:
    case COpId::kFuseSltSBrNZ:
    case COpId::kFuseSltUBrNZ:
    case COpId::kFuseSeqBrZ:
    case COpId::kFuseSeqBrNZ:
      return true;
    default:
      return false;
  }
}

bool has_probes(const std::vector<std::vector<InsProbe>>* per_ins,
                std::uint32_t pc) noexcept {
  return per_ins != nullptr && pc < per_ins->size() && !(*per_ins)[pc].empty();
}

}  // namespace

CompiledRoutine lower_routine(const Program& program, std::uint32_t func,
                              const std::vector<std::vector<InsProbe>>* per_ins) {
  const std::vector<Instr>& code = program.functions()[func].code;
  const auto size = static_cast<std::uint32_t>(code.size());
  CompiledRoutine rtn;
  rtn.ops.reserve(size + 1);
  rtn.pc_to_op.assign(size + 1, 0);

  // Entry points: pcs a transfer of control can land on. A fused pair must
  // be entered only at its first pc, so these never fuse as seconds. The
  // set covers the routine entry (pc 0), every branch target, and every
  // return site (return addresses are call_pc + 1).
  std::vector<std::uint8_t> entry_point(size + 1, 0);
  if (size != 0) entry_point[0] = 1;
  for (std::uint32_t pc = 0; pc < size; ++pc) {
    const Instr& ins = code[pc];
    if (isa::is_branch(ins.op)) {
      entry_point[static_cast<std::uint32_t>(ins.imm)] = 1;
    } else if (isa::is_call(ins.op)) {
      entry_point[pc + 1] = 1;
    }
  }

  // Pass 1: emit ops in pc order, fusing eligible pairs; branch targets are
  // still pc values (patched in pass 2 once pc_to_op is complete).
  std::vector<std::uint32_t> needs_target_patch;  // op indices
  for (std::uint32_t pc = 0; pc < size; ++pc) {
    const Instr& ins = code[pc];
    TQUAD_CHECK(ins.op < Op::kOpCount_, "invalid opcode reached lowering");
    const auto op_index = static_cast<std::uint32_t>(rtn.ops.size());
    rtn.pc_to_op[pc] = op_index;

    COp op;
    op.pc = pc;
    op.rd = ins.rd;
    op.ra = ins.ra;
    op.rb = ins.rb;
    op.size = ins.size;
    op.pr = ins.pr;
    op.flags = ins.flags;
    op.imm = ins.imm;
    if (has_probes(per_ins, pc)) {
      op.probes = (*per_ins)[pc].data();
      op.probe_count = static_cast<std::uint16_t>((*per_ins)[pc].size());
    }

    COpId fused = COpId::kCount_;
    if (pc + 1 < size && !ins.predicated() && op.probes == nullptr &&
        !entry_point[pc + 1] && !code[pc + 1].predicated() &&
        !has_probes(per_ins, pc + 1)) {
      fused = fuse_pair(ins, code[pc + 1]);
    }
    if (fused != COpId::kCount_) {
      const Instr& second = code[pc + 1];
      op.id = fused;
      if (fused_is_branch(fused)) {
        op.target = static_cast<std::uint32_t>(second.imm);  // pc; patched
        needs_target_patch.push_back(op_index);
      } else {
        op.rd2 = second.rd;
        op.ra2 = second.ra;
        op.imm2 = second.imm;
      }
      rtn.pc_to_op[pc + 1] = op_index;  // unreachable; see entry_point
      ++rtn.fused;
      ++pc;  // the pair consumed two instructions
    } else {
      op.id = static_cast<COpId>(static_cast<std::uint8_t>(ins.op));
      if (isa::is_branch(ins.op)) {
        op.target = static_cast<std::uint32_t>(ins.imm);  // pc; patched
        needs_target_patch.push_back(op_index);
      }
    }
    rtn.ops.push_back(op);
  }

  // The synthetic past-the-end op: falling through the last instruction (or
  // a return landing beyond the code) traps exactly like the interpreter's
  // per-iteration bounds check.
  COp past_end;
  past_end.id = COpId::kPastEnd;
  past_end.pc = size;
  rtn.pc_to_op[size] = static_cast<std::uint32_t>(rtn.ops.size());
  rtn.ops.push_back(past_end);

  // Pass 2: branch targets from pc space to op indices.
  for (const std::uint32_t op_index : needs_target_patch) {
    COp& op = rtn.ops[op_index];
    op.target = rtn.pc_to_op[op.target];
  }

  rtn.lowered = true;
  return rtn;
}

}  // namespace tq::vm
