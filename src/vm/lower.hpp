// The lowering pass: one routine's decoded isa::Instr stream plus its
// subscribed instrumentation, down to the compiled engine's fused-op form.
#pragma once

#include <cstdint>

#include "vm/compiled.hpp"
#include "vm/probe.hpp"
#include "vm/program.hpp"

namespace tq::vm {

/// Lower `func` of `program`. `per_ins` is the routine's subscriber table
/// (indexed by pc; may be null or shorter than the code when nothing is
/// subscribed) — instructions with probes are never fused, and each COp's
/// probe list pointer resolves into it, so the table must outlive the
/// returned routine.
CompiledRoutine lower_routine(const Program& program, std::uint32_t func,
                              const std::vector<std::vector<InsProbe>>* per_ins);

}  // namespace tq::vm
