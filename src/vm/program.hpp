// Guest program representation: a set of named functions plus initialised
// data, the moral equivalent of a loaded executable image.
//
// Functions carry an ImageKind so tools can distinguish the main image from
// library/OS-like code — tQUAD's `-ignore_libs` option filters call-stack
// updates on exactly this attribute (Section IV-C).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/isa.hpp"

namespace tq::vm {

/// Where a routine lives, mirroring Pin's image model.
enum class ImageKind : std::uint8_t {
  kMain = 0,     ///< the application's own image
  kLibrary = 1,  ///< shared-library-like helper code
  kOs = 2,       ///< OS/runtime stubs
};

const char* image_kind_name(ImageKind kind) noexcept;

/// One guest routine.
struct Function {
  std::string name;
  ImageKind image = ImageKind::kMain;
  std::vector<isa::Instr> code;
};

/// Initialised data copied into guest memory before execution.
struct DataInit {
  std::uint64_t addr = 0;
  std::vector<std::uint8_t> bytes;
};

/// A named global variable (the image's "symbol table" for data): lets
/// analysis tools report per-buffer instead of per-address.
struct GlobalVar {
  std::string name;
  std::uint64_t addr = 0;
  std::uint64_t size = 0;
};

/// Guest address-space layout constants. The stack grows down from
/// kStackBase; tools classify `addr >= SP && addr < kStackBase` as the
/// local stack area (the same SP-relative heuristic the tQUAD pintool uses).
inline constexpr std::uint64_t kGlobalBase = 0x1000'0000ull;
inline constexpr std::uint64_t kHeapBase = 0x4000'0000ull;
inline constexpr std::uint64_t kStackLimit = 0x7000'0000ull;
inline constexpr std::uint64_t kStackBase = 0x7fff'fff0ull;

/// A complete loadable guest program.
class Program {
 public:
  /// Append a function; returns its id (the call-target index).
  std::uint32_t add_function(Function function);

  /// Append an initialised data block.
  void add_data(DataInit init) { data_.push_back(std::move(init)); }

  /// Register a named global (data-symbol information for tools).
  void add_global(GlobalVar var) { globals_.push_back(std::move(var)); }
  const std::vector<GlobalVar>& globals() const noexcept { return globals_; }

  void set_entry(std::uint32_t function_id);

  const std::vector<Function>& functions() const noexcept { return functions_; }
  const Function& function(std::uint32_t id) const;
  const std::vector<DataInit>& data() const noexcept { return data_; }
  std::uint32_t entry() const noexcept { return entry_; }

  /// Find a function id by name; nullopt when absent.
  std::optional<std::uint32_t> find(const std::string& name) const noexcept;

  /// Total static instruction count across all functions.
  std::uint64_t static_instructions() const noexcept;

  /// Structural validation of every function (see isa::validate). Throws
  /// tq::Error naming the offending function on failure.
  void validate() const;

  /// Serialise to a flat image ("TQIM" format) and back. The round trip is
  /// exact; deserialisation throws tq::Error on malformed input.
  std::vector<std::uint8_t> serialize() const;
  static Program deserialize(std::span<const std::uint8_t> bytes);

 private:
  std::vector<Function> functions_;
  std::vector<DataInit> data_;
  std::vector<GlobalVar> globals_;
  std::uint32_t entry_ = 0;
};

}  // namespace tq::vm
