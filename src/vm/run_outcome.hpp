// Structured result of a Machine/Engine/ProfileSession run.
//
// A guest fault (trap) and an instruction-budget cut are *outcomes*, not
// host errors: everything observed up to that point is valid profile data,
// and the paper's long-running guests (wfs retires billions of instructions)
// make discarding it unacceptable. Host/tool failures still throw tq::Error.
#pragma once

#include <cstdint>
#include <string>

namespace tq::vm {

enum class RunStatus : std::uint8_t {
  kHalted = 0,       ///< the guest reached kHalt; the profile is complete
  kTrapped = 1,      ///< guest-attributable fault; the profile is a prefix
  kTruncated = 2,    ///< instruction budget exhausted; graceful cut, a prefix
  kInterrupted = 3,  ///< host asked to stop (SIGINT/SIGTERM); a prefix
};

/// What a run produced. `retired` is always the number of instructions whose
/// events were delivered, so a trapped/truncated outcome describes exactly
/// which prefix of the clean execution the consumers observed.
struct RunOutcome {
  RunStatus status = RunStatus::kHalted;
  std::uint64_t retired = 0;  ///< total retired instructions

  // Trap details (kTrapped only).
  std::string trap_kind;      ///< e.g. "integer division by zero"
  std::string trap_function;  ///< name of the faulting function
  std::uint32_t trap_func = 0;
  std::uint32_t trap_pc = 0;

  bool complete() const noexcept { return status == RunStatus::kHalted; }

  /// One-line human description, e.g. for report stamps and CLI stderr.
  std::string summary() const {
    switch (status) {
      case RunStatus::kTrapped:
        return "guest trap: " + trap_kind + " (in '" + trap_function +
               "' at pc " + std::to_string(trap_pc) + ", retired " +
               std::to_string(retired) + ")";
      case RunStatus::kTruncated:
        return "instruction budget exhausted (retired " +
               std::to_string(retired) + ")";
      case RunStatus::kInterrupted:
        return "interrupted by signal (retired " + std::to_string(retired) +
               ")";
      case RunStatus::kHalted:
        break;
    }
    return "halted (retired " + std::to_string(retired) + ")";
  }
};

/// Backwards-compatible name: callers that only read `.retired` keep working.
using RunResult = RunOutcome;

}  // namespace tq::vm
