// The host side of the guest's syscall boundary.
//
// Input "files" are byte blobs attached before the run; output files are
// collected byte buffers. None of the copies performed here are visible to
// instrumentation, matching Pin's user-level-only view (the kernel writing a
// read() buffer is invisible to a pintool).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace tq::vm {

/// Host services reachable from guest code via Op::kSys.
class HostEnv {
 public:
  /// Attach an input file; returns its descriptor. Reads consume from a
  /// per-file cursor that kSeek can reposition.
  int attach_input(std::vector<std::uint8_t> bytes);

  /// Create an (initially empty) output file; returns its descriptor.
  /// Output descriptors share the same number space as inputs.
  int create_output();

  bool is_input(int fd) const noexcept;
  bool is_output(int fd) const noexcept;

  /// Read up to `out.size()` bytes from the input file cursor.
  std::size_t read(int fd, std::span<std::uint8_t> out);

  /// Append bytes to an output file.
  void write(int fd, std::span<const std::uint8_t> in);

  /// Reposition an input file cursor (absolute).
  void seek(int fd, std::uint64_t pos);

  /// Size of an attached input file.
  std::uint64_t file_size(int fd) const;

  /// Retrieve an output file's accumulated bytes.
  const std::vector<std::uint8_t>& output(int fd) const;

  /// Debug prints from the guest (Sys::kPrintI64 / kPrintF64) accumulate here.
  const std::vector<std::string>& log() const noexcept { return log_; }
  void append_log(std::string line) { log_.push_back(std::move(line)); }

 private:
  struct File {
    bool is_output = false;
    std::vector<std::uint8_t> bytes;
    std::uint64_t cursor = 0;
  };

  const File& file_at(int fd) const;
  File& file_at(int fd);

  std::vector<File> files_;
  std::vector<std::string> log_;
};

}  // namespace tq::vm
