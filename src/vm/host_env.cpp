#include "vm/host_env.hpp"

#include <algorithm>
#include <cstring>

#include "support/check.hpp"

namespace tq::vm {

int HostEnv::attach_input(std::vector<std::uint8_t> bytes) {
  files_.push_back(File{false, std::move(bytes), 0});
  return static_cast<int>(files_.size() - 1);
}

int HostEnv::create_output() {
  files_.push_back(File{true, {}, 0});
  return static_cast<int>(files_.size() - 1);
}

const HostEnv::File& HostEnv::file_at(int fd) const {
  if (fd < 0 || static_cast<std::size_t>(fd) >= files_.size()) {
    TQUAD_THROW("guest used bad file descriptor " + std::to_string(fd));
  }
  return files_[static_cast<std::size_t>(fd)];
}

HostEnv::File& HostEnv::file_at(int fd) {
  return const_cast<File&>(static_cast<const HostEnv*>(this)->file_at(fd));
}

bool HostEnv::is_input(int fd) const noexcept {
  return fd >= 0 && static_cast<std::size_t>(fd) < files_.size() &&
         !files_[static_cast<std::size_t>(fd)].is_output;
}

bool HostEnv::is_output(int fd) const noexcept {
  return fd >= 0 && static_cast<std::size_t>(fd) < files_.size() &&
         files_[static_cast<std::size_t>(fd)].is_output;
}

std::size_t HostEnv::read(int fd, std::span<std::uint8_t> out) {
  File& file = file_at(fd);
  if (file.is_output) TQUAD_THROW("guest read from output file");
  const std::uint64_t available = file.bytes.size() - std::min<std::uint64_t>(
                                                          file.cursor, file.bytes.size());
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(available, out.size()));
  if (n > 0) {
    std::memcpy(out.data(), file.bytes.data() + file.cursor, n);
    file.cursor += n;
  }
  return n;
}

void HostEnv::write(int fd, std::span<const std::uint8_t> in) {
  File& file = file_at(fd);
  if (!file.is_output) TQUAD_THROW("guest wrote to input file");
  file.bytes.insert(file.bytes.end(), in.begin(), in.end());
}

void HostEnv::seek(int fd, std::uint64_t pos) {
  File& file = file_at(fd);
  if (file.is_output) TQUAD_THROW("guest seek on output file");
  file.cursor = std::min<std::uint64_t>(pos, file.bytes.size());
}

std::uint64_t HostEnv::file_size(int fd) const {
  const File& file = file_at(fd);
  if (file.is_output) TQUAD_THROW("guest asked size of output file");
  return file.bytes.size();
}

const std::vector<std::uint8_t>& HostEnv::output(int fd) const {
  const File& file = file_at(fd);
  TQUAD_CHECK(file.is_output, "output() on input descriptor");
  return file.bytes;
}

}  // namespace tq::vm
