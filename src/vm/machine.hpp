// The interpreter core: executes a Program and streams retirement events to
// an ExecListener — the substrate on which the minipin DBI layer, and thus
// the QUAD/tQUAD tools, are built.
//
// Design notes:
//   * One architectural memory access per instruction (RISC); calls write
//     and returns read the 8-byte return address on the guest stack, so the
//     event stream has stack traffic exactly where an x86 trace does.
//   * The instruction counter is the platform-independent time base the
//     paper advocates; it is exact and deterministic.
//   * Syscalls copy data between guest memory and the HostEnv without
//     emitting events (Pin never sees kernel-side copies).
#pragma once

#include <cstdint>
#include <string>

#include "support/paged_memory.hpp"
#include "vm/engine.hpp"
#include "vm/host_env.hpp"
#include "vm/program.hpp"
#include "vm/run_outcome.hpp"

namespace tq::vm {

/// Architectural register state.
struct Cpu {
  std::uint64_t regs[isa::kNumIntRegs] = {};
  double fregs[isa::kNumFpRegs] = {};
  std::uint32_t func = 0;  ///< current function id
  std::uint32_t pc = 0;    ///< instruction index within the function

  std::uint64_t& sp() noexcept { return regs[isa::kSp]; }
  std::uint64_t sp_value() const noexcept { return regs[isa::kSp]; }
};

/// One memory operand of an instruction. `size == 0` means absent. Plain
/// loads/stores have one operand; kMovs (string move) has both; kCall has a
/// write (return-address push) and kRet a read (pop).
struct MemRef {
  std::uint64_t ea = 0;    ///< effective byte address
  std::uint32_t size = 0;  ///< access width in bytes (0 = no operand)
};

/// Everything a DBI layer needs to know about one retired instruction.
struct InstrEvent {
  std::uint32_t func = 0;            ///< function id (the IP's image half)
  std::uint32_t pc = 0;              ///< instruction index (the IP's offset)
  const isa::Instr* ins = nullptr;   ///< decoded instruction
  std::uint64_t sp = 0;              ///< SP *before* execution
  std::uint64_t retired = 0;         ///< instructions retired before this one
  bool executed = true;              ///< false when predicated off
  bool prefetch = false;             ///< `read` is a prefetch touch
  MemRef read;                       ///< read operand, if any
  MemRef write;                      ///< write operand, if any
  std::uint32_t callee = kNoCallee;  ///< target function for executed calls

  static constexpr std::uint32_t kNoCallee = 0xffffffffu;
};

/// Observer of guest execution. Implemented by the minipin engine; may also
/// be implemented directly for lightweight ad-hoc tools and tests.
class ExecListener {
 public:
  virtual ~ExecListener() = default;

  /// Before the first instruction. The program outlives the run.
  virtual void on_program_start(const Program& program) { (void)program; }

  /// A routine is entered (program entry, or an executed call). Fires after
  /// the call instruction's own on_instr event.
  virtual void on_rtn_enter(std::uint32_t func) { (void)func; }

  /// Every retired instruction, including predicated-off ones.
  virtual void on_instr(const InstrEvent& event) = 0;

  /// After kHalt; `retired` is the final instruction count.
  virtual void on_program_end(std::uint64_t retired) { (void)retired; }
};

/// Guest trap: unrecoverable runtime fault (bad descriptor, stack overflow,
/// division by zero, runaway execution). Carries the faulting location.
/// Machine::run converts it into a RunOutcome{kTrapped}; it only escapes when
/// thrown outside the run loop.
class TrapError : public Error {
 public:
  TrapError(std::string message, std::string reason, std::uint32_t func,
            std::uint32_t pc)
      : Error(std::move(message)),
        reason_(std::move(reason)),
        func_(func),
        pc_(pc) {}
  /// The bare fault kind (e.g. "guest stack overflow"), without location.
  const std::string& reason() const noexcept { return reason_; }
  std::uint32_t func() const noexcept { return func_; }
  std::uint32_t pc() const noexcept { return pc_; }

 private:
  std::string reason_;
  std::uint32_t func_;
  std::uint32_t pc_;
};

/// Deterministic fault injection: make the guest trap at a precise point so
/// tests can prove that partial profiles equal the prefix of a clean run.
/// Zero / kNoFunc fields disable the corresponding trigger. All triggers
/// fire *after* the events of every earlier instruction were delivered, so a
/// plan that traps with N instructions retired produces exactly the event
/// stream of a budget-N truncated run.
struct FaultPlan {
  static constexpr std::uint32_t kNoFunc = 0xffffffffu;

  /// Trap before retiring instruction N (so exactly N instructions retire).
  std::uint64_t trap_at_retired = 0;
  /// Trap inside the K-th executed syscall (1-based), as if the host call
  /// had failed mid-flight.
  std::uint64_t fail_syscall = 0;
  /// Trap once `fail_func` has been entered `fail_func_entries` times.
  std::uint32_t fail_func = kNoFunc;
  std::uint64_t fail_func_entries = 1;

  bool armed() const noexcept {
    return trap_at_retired != 0 || fail_syscall != 0 || fail_func != kNoFunc;
  }
};

/// The interpreter engine. Bind a validated Program and a HostEnv, then
/// run(). The compiled counterpart (vm::CompiledMachine) lives behind the
/// same GuestEngine seam.
class Machine : public GuestEngine {
 public:
  /// `program` and `host` must outlive the Machine.
  Machine(const Program& program, HostEnv& host);

  /// Execute from the program entry until kHalt, a guest trap, or budget
  /// exhaustion — all three are RunOutcome statuses, not exceptions, and on
  /// every path `listener->on_program_end()` fires so tools can flush what
  /// they observed. Host/tool errors still throw. If `listener` is null the
  /// uninstrumented fast path runs (the "native execution" baseline of the
  /// paper's overhead numbers). Can be called once per Machine.
  RunOutcome run(ExecListener* listener = nullptr);

  /// Stop the run gracefully (RunStatus::kTruncated) once this many
  /// instructions retire. Zero (default) means unlimited.
  void set_instruction_budget(std::uint64_t budget) noexcept override {
    budget_ = budget;
  }

  /// Arm deterministic fault injection (see FaultPlan).
  void set_fault_plan(const FaultPlan& plan) noexcept override { fault_ = plan; }

  /// Arm cooperative interruption (see GuestEngine::set_interrupt_flag).
  void set_interrupt_flag(
      const volatile std::sig_atomic_t* flag) noexcept override {
    interrupt_ = flag;
  }

  /// Post-run inspection.
  const Cpu& cpu() const noexcept override { return cpu_; }
  const PagedMemory& memory() const noexcept { return memory_; }
  PagedMemory& memory() noexcept { return memory_; }
  std::uint64_t retired() const noexcept override { return retired_; }
  std::uint64_t heap_used() const noexcept override {
    return heap_ptr_ - kHeapBase;
  }

 private:
  template <bool kTraced>
  RunOutcome run_loop(ExecListener* listener);

  [[noreturn]] void trap(const std::string& why) const;
  void check_entry_fault();
  void do_sys(const isa::Instr& ins);

  const Program& program_;
  HostEnv& host_;
  Cpu cpu_;
  PagedMemory memory_;
  std::uint64_t retired_ = 0;
  std::uint64_t budget_ = 0;
  const volatile std::sig_atomic_t* interrupt_ = nullptr;
  std::uint64_t heap_ptr_ = kHeapBase;
  FaultPlan fault_;
  std::uint64_t syscalls_seen_ = 0;
  std::uint64_t fault_entries_seen_ = 0;
  bool ran_ = false;
};

}  // namespace tq::vm
