// The compiled execution engine: guest routines are lowered — together with
// whatever instrumentation is already subscribed — into flat arrays of fused
// op structs executed by a tight computed-goto/threaded dispatch loop.
//
// What lowering buys over the interpreter (see lower.cpp for the pass):
//   * superinstructions: common probe-free pairs (compare+branch, addi+addi,
//     ...) retire two guest instructions per dispatch;
//   * pre-resolved analysis-callback lists: each COp carries a pointer into
//     the subscriber table, so an uninstrumented instruction costs one null
//     check — no virtual ExecListener hop, no InsArgs construction;
//   * pre-resolved control flow: branch targets are op-array indices, and a
//     synthetic trailing op materialises the "pc past end of function" trap
//     so the loop needs no per-instruction bounds check;
//   * batched memory-event emission (EventSink mode): per-instruction ticks
//     accumulate into spans flushed at attribution boundaries, with the
//     SP/stack-range classification inlined at the access site.
//
// Observable behaviour is byte-identical to vm::Machine: event order,
// instruction budgets, FaultPlan triggers, trap messages and RunOutcome all
// follow the interpreter exactly (enforced by test_engine_differential).
#pragma once

#include <cstdint>
#include <vector>

#include "support/paged_memory.hpp"
#include "vm/engine.hpp"
#include "vm/host_env.hpp"
#include "vm/machine.hpp"
#include "vm/probe.hpp"
#include "vm/program.hpp"
#include "vm/run_outcome.hpp"

namespace tq::vm {

// Every fused-dispatch opcode. The X-macro keeps the enum, the dispatch
// label table and the switch fallback in lockstep — order matters.
// clang-format off
#define TQ_COP_LIST(X)                                                        \
  X(kNop) X(kHalt)                                                            \
  X(kAdd) X(kSub) X(kMul) X(kDivS) X(kRemS) X(kAnd) X(kOr) X(kXor)            \
  X(kShl) X(kShrL) X(kShrA) X(kSltS) X(kSltU) X(kSeq)                         \
  X(kAddI) X(kMulI) X(kAndI) X(kOrI) X(kXorI) X(kShlI) X(kShrLI) X(kShrAI)    \
  X(kSltSI)                                                                   \
  X(kMovI) X(kMov)                                                            \
  X(kFAdd) X(kFSub) X(kFMul) X(kFDiv) X(kFNeg) X(kFAbs) X(kFSqrt) X(kFSin)    \
  X(kFCos) X(kFMov) X(kFMovI) X(kFMin) X(kFMax)                               \
  X(kFCmpLt) X(kFCmpLe) X(kFCmpEq) X(kI2F) X(kF2I)                            \
  X(kLoad) X(kLoadS) X(kStore) X(kFLoad) X(kFStore) X(kFLoad4) X(kFStore4)    \
  X(kPrefetch) X(kMovs)                                                       \
  X(kJmp) X(kBrZ) X(kBrNZ) X(kCall) X(kRet) X(kSys)                           \
  X(kPastEnd)            /* synthetic: fall-through past the last pc */       \
  X(kFuseAddIAddI)       /* addi ; addi                    */                 \
  X(kFuseAddISltSI)      /* addi ; sltsi                   */                 \
  X(kFuseAddIBrNZ)       /* addi rd ; brnz rd  (countdown) */                 \
  X(kFuseSltSIBrNZ)      /* sltsi rd ; brnz rd             */                 \
  X(kFuseSltSBrNZ)       /* slts rd ; brnz rd              */                 \
  X(kFuseSltUBrNZ)       /* sltu rd ; brnz rd              */                 \
  X(kFuseSeqBrZ)         /* seq rd ; brz rd                */                 \
  X(kFuseSeqBrNZ)        /* seq rd ; brnz rd               */
// clang-format on

enum class COpId : std::uint8_t {
#define TQ_COP_ENUM(name) name,
  TQ_COP_LIST(TQ_COP_ENUM)
#undef TQ_COP_ENUM
      kCount_,
};

/// One lowered op. 48 bytes; a fused op carries its second instruction's
/// fields in rd2/ra2/imm2 (the chosen pairs never need rb2 or a size2).
struct COp {
  COpId id = COpId::kNop;
  std::uint8_t rd = 0;
  std::uint8_t ra = 0;
  std::uint8_t rb = 0;
  std::uint8_t size = 0;   ///< memory access width
  std::uint8_t pr = 0;     ///< predicate register (flags != 0)
  std::uint8_t flags = 0;  ///< isa::kFlagPredicated, if set
  std::uint8_t rd2 = 0;    ///< fused second destination
  std::uint8_t ra2 = 0;    ///< fused second source
  std::uint16_t probe_count = 0;
  std::uint32_t pc = 0;      ///< original pc of the (first) instruction
  std::uint32_t target = 0;  ///< branch target as an op-array index
  std::int64_t imm = 0;
  std::int64_t imm2 = 0;               ///< fused second immediate
  const InsProbe* probes = nullptr;    ///< pre-resolved callback list
};

/// One routine lowered to threaded-dispatch form. `pc_to_op[pc]` maps every
/// original instruction index (plus the one-past-the-end slot) to its op;
/// the final op is always the synthetic kPastEnd trap.
struct CompiledRoutine {
  bool lowered = false;
  std::uint32_t fused = 0;  ///< pairs fused away in this routine
  std::vector<COp> ops;
  std::vector<std::uint32_t> pc_to_op;
  const std::vector<EntryProbe>* entry_probes = nullptr;
};

/// The compiled engine. Same contract as vm::Machine: bind a validated
/// Program and a HostEnv, run() once; budgets, fault plans and outcomes are
/// identical. Routines are lowered lazily on first dynamic entry, which is
/// also when the ProbeProvider (if any) instruments them.
class CompiledMachine final : public GuestEngine {
 public:
  CompiledMachine(const Program& program, HostEnv& host);

  /// Uninstrumented run (the "native execution" baseline).
  RunOutcome run();

  /// Run with per-instruction analysis probes lowered into the op stream
  /// (the minipin-backed path).
  RunOutcome run(ProbeProvider& probes);

  /// Run emitting batched profiling events (the session fast path).
  RunOutcome run(EventSink& sink);

  // GuestEngine.
  void set_instruction_budget(std::uint64_t budget) noexcept override {
    budget_ = budget;
  }
  void set_fault_plan(const FaultPlan& plan) noexcept override { fault_ = plan; }
  void set_interrupt_flag(
      const volatile std::sig_atomic_t* flag) noexcept override {
    interrupt_ = flag;
  }
  const Cpu& cpu() const noexcept override { return cpu_; }
  std::uint64_t retired() const noexcept override { return retired_; }
  std::uint64_t heap_used() const noexcept override {
    return heap_ptr_ - kHeapBase;
  }

  const PagedMemory& memory() const noexcept { return memory_; }
  PagedMemory& memory() noexcept { return memory_; }

  /// Lowering diagnostics (valid during/after a run).
  std::size_t lowered_routines() const noexcept { return lowered_count_; }
  std::uint64_t fused_pairs() const noexcept { return fused_pairs_; }

 private:
  enum class Mode { kNative, kProbed, kSinked };

  template <Mode M>
  RunOutcome exec(ProbeProvider* probes, EventSink* sink);
  RunOutcome start(ProbeProvider* probes, EventSink* sink);

  /// Lower (and, with a provider, instrument) a routine on first entry.
  const CompiledRoutine& routine_for_entry(std::uint32_t func,
                                           ProbeProvider* probes);

  void dispatch_probes(const COp& op, std::uint32_t func, std::uint64_t read_ea,
                       std::uint32_t read_size, std::uint64_t write_ea,
                       std::uint32_t write_size, bool is_prefetch,
                       bool executed, std::uint64_t retired) const;
  void dispatch_entry_probes(const CompiledRoutine& rtn, std::uint32_t func,
                             std::uint64_t retired) const;

  [[noreturn]] void trap(const std::string& why) const;
  void check_entry_fault();
  void do_sys(std::int64_t imm);

  const Program& program_;
  HostEnv& host_;
  Cpu cpu_;
  PagedMemory memory_;
  std::uint64_t retired_ = 0;
  std::uint64_t budget_ = 0;
  const volatile std::sig_atomic_t* interrupt_ = nullptr;
  std::uint64_t heap_ptr_ = kHeapBase;
  FaultPlan fault_;
  std::uint64_t syscalls_seen_ = 0;
  std::uint64_t fault_entries_seen_ = 0;
  bool ran_ = false;

  std::vector<CompiledRoutine> routines_;
  std::size_t lowered_count_ = 0;
  std::uint64_t fused_pairs_ = 0;
};

}  // namespace tq::vm
