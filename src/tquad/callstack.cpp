#include "tquad/callstack.hpp"

namespace tq::tquad {

CallStack::CallStack(const vm::Program& program, LibraryPolicy policy)
    : policy_(policy) {
  const auto& functions = program.functions();
  tracked_.resize(functions.size());
  excluded_.resize(functions.size());
  for (std::size_t i = 0; i < functions.size(); ++i) {
    const bool main_image = functions[i].image == vm::ImageKind::kMain;
    tracked_[i] = main_image || policy == LibraryPolicy::kTrack;
    excluded_[i] = !main_image && policy == LibraryPolicy::kExclude;
  }
  frames_.reserve(64);
}

void CallStack::on_enter(std::uint32_t func) {
  TQUAD_DCHECK(func < tracked_.size(), "function id out of range");
  if (!tracked_[func] && policy_ == LibraryPolicy::kAttributeToCaller) {
    return;  // invisible frame: accesses fall through to the caller
  }
  // Tracked kernels and kExclude suspension markers are both pushed so that
  // their returns pop symmetrically.
  frames_.push_back(func);
  max_depth_ = std::max(max_depth_, frames_.size());
}

void CallStack::on_ret(std::uint32_t func) {
  if (!frames_.empty() && frames_.back() == func) {
    frames_.pop_back();
    return;
  }
  if (!tracked_[func] && policy_ == LibraryPolicy::kAttributeToCaller) {
    return;  // was never pushed
  }
  ++mismatched_pops_;
}

}  // namespace tq::tquad
