// Report construction over a completed TQuadTool run: flat profiles,
// per-kernel bandwidth statistics (the Table IV columns) and dense series
// extraction for the running-time graphs (Figures 6 and 7).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/table.hpp"
#include "tquad/tquad_tool.hpp"

namespace tq::tquad {

/// One row of tQUAD's instruction-count flat profile.
struct FlatRow {
  std::uint32_t kernel = 0;
  std::string name;
  std::uint64_t instructions = 0;  ///< retired while on top of the call stack
  std::uint64_t calls = 0;
  double time_fraction = 0.0;      ///< share of all retired instructions
};

/// Flat profile sorted by descending instruction share. Only reported
/// kernels with at least one call appear.
std::vector<FlatRow> flat_profile(const TQuadTool& tool);

/// Per-kernel bandwidth statistics in bytes-per-instruction, the
/// platform-independent unit of Section V-B / Table IV.
struct BandwidthStats {
  std::uint64_t activity_span = 0;  ///< number of active slices
  std::uint64_t first_slice = 0;
  std::uint64_t last_slice = 0;
  double avg_read_incl = 0.0;   ///< mean bytes/instr over active slices
  double avg_read_excl = 0.0;
  double avg_write_incl = 0.0;
  double avg_write_excl = 0.0;
  double max_rw_incl = 0.0;  ///< peak (read+write)/interval over slices
  double max_rw_excl = 0.0;
};

/// Per-kernel bandwidth summary. With `total_retired` > 0 the run's final
/// slice is weighted by its true width (`total_retired` may end mid-slice),
/// so a kernel active in a short tail slice is not averaged as if the tail
/// had a full `slice_interval` of instructions; 0 keeps the uniform-width
/// behaviour for callers that aggregate without a run length.
BandwidthStats bandwidth_stats(const KernelBandwidth& kernel,
                               std::uint64_t slice_interval,
                               std::uint64_t total_retired = 0);

/// Which per-slice metric to extract as a dense series.
enum class Metric : std::uint8_t {
  kReadIncl,
  kReadExcl,
  kWriteIncl,
  kWriteExcl,
  kReadWriteIncl,
  kReadWriteExcl,
};

/// Dense per-slice values (bytes moved in the slice) over
/// [0, tool.bandwidth().max_slice()] for one kernel.
std::vector<double> dense_series(const TQuadTool& tool, std::uint32_t kernel,
                                 Metric metric);

/// Render the flat profile as a table ("%time", "instructions", "calls").
TextTable flat_profile_table(const TQuadTool& tool);

/// Target-architecture parameters for unit conversion. The paper: "If a
/// more specific unit of measurement is needed, additional parameters for
/// the target architecture should be provided for tQUAD, such as the number
/// of PE cycles required to execute each instruction. It is also possible
/// to derive different measurement units, such as bytes-per-cycle or
/// bytes-per-second."
struct CpuModel {
  double clock_ghz = 2.83;  ///< the paper's Core 2 Quad Q9550
  double cpi = 1.0;         ///< cycles per instruction of the target PE

  /// bytes/instruction -> bytes/cycle on the modelled target.
  double to_bytes_per_cycle(double bytes_per_instruction) const noexcept {
    return bytes_per_instruction / cpi;
  }
  /// bytes/instruction -> bytes/second on the modelled target.
  double to_bytes_per_second(double bytes_per_instruction) const noexcept {
    return bytes_per_instruction * (clock_ghz * 1e9) / cpi;
  }
  /// instruction count -> seconds on the modelled target.
  double to_seconds(std::uint64_t instructions) const noexcept {
    return static_cast<double>(instructions) * cpi / (clock_ghz * 1e9);
  }
};

/// Table IV-style per-kernel bandwidth rows converted through a CpuModel
/// (columns in MB/s instead of bytes/instruction).
TextTable bandwidth_table(const TQuadTool& tool, const CpuModel& model);

}  // namespace tq::tquad
