// Execution-phase identification (Section V-B, "Phase identification").
//
// The paper partitions the hArtes-wfs run into five phases from the overlap
// structure of kernel activity spans ("the kernels that are active at the
// same time interval are possibly relevant"). This module automates that
// analysis:
//
//   1. The timeline is divided into fixed windows; each kernel gets the set
//      of windows in which it touches memory.
//   2. Kernels are compared pairwise on those sets — Jaccard similarity for
//      kernels with substantial activity, overlap coefficient for kernels
//      active only briefly (a two-window initialisation kernel should attach
//      to whatever phase contains it, not be penalised for its size).
//   3. Kernels whose similarity exceeds a threshold are merged (union-find,
//      single linkage); each cluster is one phase.
//   4. A phase's *span* is computed from its member kernels' core activity
//      spans — core meaning the 2nd..98th percentile of active slices, which
//      discards brief out-of-phase blips exactly as the paper does (r2c
//      waking once in slice 145 is ignored). Because spans come from
//      members, adjacent phase spans may overlap, as they do in Table IV.
//
// Phases are ordered by (span begin, span end), so enclosing phases (e.g. a
// driver active throughout) sort after the early phases they contain.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tquad/tquad_tool.hpp"

namespace tq::tquad {

/// Tuning knobs for the detector.
struct PhaseOptions {
  /// Similarity at or above which two kernels land in the same phase.
  double merge_threshold = 0.6;
  /// Fine analysis windows (clamped to the slice count): used to place
  /// briefly-active kernels precisely.
  std::uint64_t windows = 1024;
  /// Substantially-active kernels are compared at windows/coarse_factor
  /// granularity, so kernels that interleave within one application
  /// iteration (e.g. the per-chunk kernels of hArtes wfs) share windows.
  /// Rule of thumb: a coarse window (timeline / (windows/coarse_factor))
  /// must span at least one iteration of the application's main loop; raise
  /// this when brief per-iteration kernels split away from their phase.
  std::uint64_t coarse_factor = 16;
  /// Kernels active in at most max(3, tiny_fraction * windows) fine windows
  /// are compared with the overlap coefficient instead of Jaccard.
  double tiny_fraction = 0.01;
  /// Percentile trimmed from each side of a kernel's active-slice list when
  /// computing its core span.
  double core_trim = 0.02;
};

/// A detected phase.
struct Phase {
  std::uint64_t segment_begin = 0;  ///< first active window, in slice units
  std::uint64_t segment_end = 0;    ///< last active window, in slice units
  std::uint64_t span_begin = 0;     ///< member-derived span (may overlap others)
  std::uint64_t span_end = 0;
  std::vector<std::uint32_t> kernels;  ///< member kernel ids, by first activity
  double span_fraction = 0.0;          ///< span length / total slices
};

/// A kernel's trimmed activity interval.
struct CoreSpan {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t active_slices = 0;
};

/// Core (percentile-trimmed) span of one kernel's activity.
CoreSpan core_span(const KernelBandwidth& kernel, double trim);

/// Run phase detection over a completed tQUAD run.
std::vector<Phase> detect_phases(const TQuadTool& tool, const PhaseOptions& options = {});

/// Human-readable summary (one line per phase with member kernel names).
std::string describe_phases(const TQuadTool& tool, const std::vector<Phase>& phases);

}  // namespace tq::tquad
