#include "tquad/address_map.hpp"

#include <algorithm>
#include <vector>

#include "support/check.hpp"
#include "tquad/callstack.hpp"

namespace tq::tquad {

AddressMapTool::AddressMapTool(const vm::Program& program,
                               AddressMapOptions options)
    : program_(program), options_(options) {
  TQUAD_CHECK(options_.slice_interval > 0, "slice interval must be positive");
  TQUAD_CHECK(options_.bucket_bytes > 0, "bucket size must be positive");
}

void AddressMapTool::on_access(const session::AccessEvent& event) {
  KernelMap& map = kernels_[event.kernel];
  ++map.accesses;
  ++total_accesses_;
  if (event.is_stack) {
    ++map.stack_accesses;
    return;
  }
  const CellKey key{event.retired / options_.slice_interval,
                    event.ea / options_.bucket_bytes};
  CellCounts& cell = map.cells[key];
  if (event.is_read) {
    ++cell.reads;
  } else {
    ++cell.writes;
  }
}

std::string AddressMapTool::kernel_label(std::uint32_t kernel) const {
  if (kernel == kNoKernel) return "(unattributed)";
  return program_.functions()[kernel].name;
}

std::string AddressMapTool::render_json() const {
  // Kernels render sorted by label so the output is stable regardless of
  // function-id assignment order.
  std::vector<std::uint32_t> order;
  order.reserve(kernels_.size());
  for (const auto& [kernel, map] : kernels_) order.push_back(kernel);
  std::sort(order.begin(), order.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return kernel_label(a) < kernel_label(b);
            });

  std::string out;
  auto number = [](std::uint64_t v) { return std::to_string(v); };
  out += "{\"address_map\": {";
  out += "\"bucket_bytes\": " + number(options_.bucket_bytes) + ", ";
  out += "\"kernels\": [";
  bool first_kernel = true;
  for (const std::uint32_t kernel : order) {
    const KernelMap& map = kernels_.at(kernel);
    if (!first_kernel) out += ", ";
    first_kernel = false;
    out += "{\"accesses\": " + number(map.accesses) + ", ";
    out += "\"cells\": [";
    bool first_cell = true;
    for (const auto& [key, cell] : map.cells) {
      if (!first_cell) out += ", ";
      first_cell = false;
      out += "[" + number(key.first) + ", " + number(key.second) + ", " +
             number(cell.reads) + ", " + number(cell.writes) + "]";
    }
    out += "], ";
    out += "\"name\": \"" + kernel_label(kernel) + "\", ";
    out += "\"stack_accesses\": " + number(map.stack_accesses) + "}";
  }
  out += "], ";
  out += "\"slice_interval\": " + number(options_.slice_interval) + ", ";
  out += "\"total_accesses\": " + number(total_accesses_) + "}}\n";
  return out;
}

}  // namespace tq::tquad
